// Command deeplens is the interactive CLI over a DeepLens database: it
// generates the benchmark datasets, runs the ETL pipelines into a
// persistent database file, executes the six benchmark queries, and
// inspects catalog state.
//
//	deeplens -db dl.db ingest            generate datasets + run ETL
//	deeplens -db dl.db query q2          run one benchmark query
//	deeplens -db dl.db catalog           list collections and sizes
//	deeplens -db dl.db backtrace <id>    show a patch's lineage chain
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/video"
)

func main() {
	dbPath := flag.String("db", "deeplens.db", "database file")
	scale := flag.String("scale", "tiny", "dataset scale for ingest: tiny | default | paper")
	device := flag.String("device", "cpu", "execution device: cpu | avx | gpu")
	tuned := flag.Bool("tuned", true, "use the tuned physical design for queries")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deeplens [flags] <command> [args]\n\ncommands: ingest | query {q1..q6} | catalog | backtrace <patch-id> | advise [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	dev := exec.CPU
	switch *device {
	case "avx":
		dev = exec.AVX
	case "gpu":
		dev = exec.GPU
	case "cpu":
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}
	if err := run(flag.Args(), *dbPath, *scale, dev, *tuned); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string, dbPath, scale string, dev exec.Kind, tuned bool) error {
	switch args[0] {
	case "ingest":
		return ingest(dbPath, scale, dev)
	case "query":
		if len(args) != 2 {
			return fmt.Errorf("usage: deeplens query {q1..q6}")
		}
		return query(dbPath, scale, dev, args[1], tuned)
	case "catalog":
		return catalog(dbPath)
	case "backtrace":
		if len(args) != 2 {
			return fmt.Errorf("usage: deeplens backtrace <patch-id>")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return backtrace(dbPath, core.PatchID(id))
	case "advise":
		return advise(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func cfgFor(scale string) (dataset.Config, error) {
	cfg := dataset.Default()
	switch scale {
	case "paper":
		cfg = dataset.Paper()
	case "tiny":
		cfg.TrafficFrames = 150
		cfg.PCImages = 80
		cfg.FootballClips = 2
		cfg.FootballClipLen = 30
	case "default":
	default:
		return cfg, fmt.Errorf("unknown scale %q", scale)
	}
	return cfg, nil
}

// envAt builds (or reuses) the benchmark environment rooted at the db
// file's directory. Ingest state is keyed by the db file itself: if it
// already holds the collections, ETL is skipped by NewEnv failing on
// CreateCollection — so ingest requires a fresh path.
func envAt(dbPath, scale string, dev exec.Kind) (*bench.Env, error) {
	cfg, err := cfgFor(scale)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(dbPath)
	return bench.NewEnvAt(dbPath, dir, cfg, exec.New(dev))
}

func ingest(dbPath, scale string, dev exec.Kind) error {
	if _, err := os.Stat(dbPath); err == nil {
		return fmt.Errorf("%s already exists; ingest needs a fresh database file", dbPath)
	}
	fmt.Printf("ingesting %s-scale datasets into %s...\n", scale, dbPath)
	e, err := envAt(dbPath, scale, dev)
	if err != nil {
		return err
	}
	defer e.Close()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collection\tpatches\tetl time")
	for _, name := range []string{bench.ColTrafficDets, bench.ColPCImages, bench.ColPCWords, bench.ColFBDets, bench.ColFBWords} {
		col, err := e.DB.Collection(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%v\n", name, col.Len(), e.ETLTime[name])
	}
	return w.Flush()
}

func query(dbPath, scale string, dev exec.Kind, q string, tuned bool) error {
	e, err := envAt(dbPath, scale, dev)
	if err != nil {
		return err
	}
	defer e.Close()
	var res bench.QueryResult
	switch q {
	case "q1":
		res, err = e.Q1(tuned)
	case "q2":
		res, err = e.Q2(tuned)
	case "q3":
		res, err = e.Q3(tuned)
	case "q4":
		res, err = e.Q4(tuned)
	case "q5":
		res, err = e.Q5(e.PC.Vocabulary[0], tuned)
	case "q6":
		res, err = e.Q6(tuned)
	default:
		return fmt.Errorf("unknown query %q (want q1..q6)", q)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: value=%d plan=%q time=%v\n", res.Query, res.Value, res.Plan, res.Duration)
	return nil
}

// advise runs the storage advisor (paper §3 future work) on a workload
// described by its own flag set.
func advise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	frames := fs.Int("frames", 35280, "video length in frames")
	width := fs.Int("width", 1920, "frame width")
	height := fs.Int("height", 1080, "frame height")
	scans := fs.Float64("scans-per-day", 10, "how often the video is scanned")
	selectivity := fs.Float64("selectivity", 0.05, "fraction of the video a scan touches")
	minAcc := fs.Float64("min-accuracy", 0.97, "accuracy floor relative to RAW (1.0 = lossless)")
	budget := fs.Int64("budget-bytes", 0, "storage cap in bytes (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	adv, err := video.Advise(video.Workload{
		Frames:              *frames,
		FrameBytes:          *width * *height * 3,
		ScansPerDay:         *scans,
		TemporalSelectivity: *selectivity,
		MinAccuracy:         *minAcc,
		StorageBudgetBytes:  *budget,
	}, video.DefaultCostProfile())
	if err != nil {
		return err
	}
	fmt.Printf("recommended format: %v\n", adv.Format)
	if adv.Format != video.FormatRaw {
		fmt.Printf("quality: %v\n", adv.Quality)
	}
	if adv.Format == video.FormatSegmented {
		fmt.Printf("clip length: %d frames\n", adv.ClipLen)
	}
	fmt.Println(adv.Rationale)
	return nil
}

func catalog(dbPath string) error {
	db, err := core.Open(dbPath, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "collection\tpatches\tdeclared fields")
	for _, name := range db.Collections() {
		col, err := db.Collection(name)
		if err != nil {
			return err
		}
		fields := ""
		for i, f := range col.Schema().Fields {
			if i > 0 {
				fields += ", "
			}
			fields += f.Name
		}
		fmt.Fprintf(w, "%s\t%d\t%s\n", name, col.Len(), fields)
	}
	return w.Flush()
}

func backtrace(dbPath string, id core.PatchID) error {
	db, err := core.Open(dbPath, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer db.Close()
	p, err := db.GetPatch(id)
	if err != nil {
		return err
	}
	fmt.Printf("patch %d: source=%s frame=%d parent=%d\n", p.ID, p.Ref.Source, p.Ref.Frame, p.Ref.Parent)
	chain, err := db.Backtrace(p)
	if err != nil {
		return err
	}
	for i, anc := range chain {
		fmt.Printf("  ancestor %d: patch %d source=%s frame=%d\n", i+1, anc.ID, anc.Ref.Source, anc.Ref.Frame)
	}
	if len(chain) == 0 {
		fmt.Println("  (derived directly from the base image)")
	}
	return nil
}
