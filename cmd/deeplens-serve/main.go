// deeplens-serve runs the DeepLens query service: it ingests (or reuses)
// a benchmark database, registers the TrafficCam frame source for
// inference sweeps, and serves the HTTP JSON API.
//
//	deeplens-serve -addr :8080 -workers 8 -frames 240
//
// With -loadgen N it instead drives the in-process service with N
// concurrent closed-loop clients over a mixed query workload, in a cold
// phase (flushed caches) and a warm phase, and prints the throughput and
// cache table — the serving analog of the paper's query benchmarks.
//
//	deeplens-serve -loadgen 16 -loadgen-requests 400
//
// With -ingest N it drives the live-ingest path instead: a streaming
// appender pushes N rows frame-at-a-time through the service's append
// API into a fresh live collection while query clients keep hitting it,
// proving the serving path stays warm — every post-append query extends
// the columnar store in place instead of rebuilding it, and the report
// prints the sealed-block reuse alongside the query latencies.
//
//	deeplens-serve -ingest 8000 -loadgen 4 -shards 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func parseDevice(s string) (exec.Kind, error) {
	switch strings.ToLower(s) {
	case "cpu":
		return exec.CPU, nil
	case "avx":
		return exec.AVX, nil
	case "gpu":
		return exec.GPU, nil
	default:
		return 0, fmt.Errorf("unknown device %q (want cpu, avx or gpu)", s)
	}
}

// trafficSource adapts the deterministic TrafficCam generator to the
// service's FrameSource.
type trafficSource struct{ tr *dataset.Traffic }

func (t trafficSource) Frames() int { return t.tr.Frames }
func (t trafficSource) Render(i int) (*codec.Image, error) {
	img, _ := t.tr.Render(i)
	return img, nil
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		dir        = flag.String("dir", "", "data directory (default: a fresh temp dir)")
		shards     = flag.Int("shards", 1, "partition collections across N DB shards (shard subdirectories under -dir; queries run scatter-gather)")
		replicas   = flag.Int("replicas", 1, "replicas per shard (appends write all replicas of the home shard; reads hedge across them)")
		queryTO    = flag.Duration("query-timeout", 0, "server-side query deadline (0 = none; requests may override with timeout_ms; exceeded = HTTP 504)")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge-budget floor before the fragment p99 takes over (0 = default 25ms, negative disables hedging)")
		resyncIvl  = flag.Duration("resync-interval", 0, "anti-entropy sweep cadence: how often demoted replicas are re-synced from their primary (0 = default 200ms, negative disables; only with -replicas > 1)")
		faultSpec  = flag.String("fault", "", "comma-separated failpoint rules point[@shard[.replica]]:prob[:stall_ms], e.g. fragment-stall:0.2 or append-error@*.1:1 (points: fragment-error, fragment-stall, append-error, device-stall, resync-error, resync-stall)")
		faultSeed  = flag.Int64("fault-seed", 1, "deterministic seed for failpoint probability draws")
		workers    = flag.Int("workers", 8, "executor pool size")
		queue      = flag.Int("queue", 64, "admission queue depth")
		device     = flag.String("device", "cpu", "execution backend: cpu, avx or gpu")
		devices    = flag.Int("devices", 0, "physical devices backing the pool (0 = one per worker; fewer shares devices through the kernel batcher)")
		batchMax   = flag.Int("batch-max", 0, "kernel batcher: flush at this many kernels (0 = default)")
		batchWin   = flag.Duration("batch-window", 0, "kernel batcher: partial-batch flush deadline (0 = default)")
		cacheMB    = flag.Int("cache-mb", 32, "result cache budget (MiB)")
		colMemMB   = flag.Int("column-mem-budget", 0, "tiered column store: resident spilled-segment budget in MiB (0 disables tiering and keeps columns purely in memory; negative spills for restart-warm columns but never evicts)")
		udfCacheMB = flag.Int("udf-cache-mb", 128, "UDF materialization cache budget (MiB)")
		ttl        = flag.Duration("ttl", 5*time.Minute, "result cache TTL (0 = never expire)")
		slowMS     = flag.Int("slow-query-ms", 250, "slow-query log threshold in milliseconds (negative disables GET /debug/slow)")
		traceSmp   = flag.Float64("trace-sample", 0, "background trace sampling rate in (0,1]: capture spans for ~1 in 1/rate queries that did not ask for a trace (0 = off)")

		frames  = flag.Int("frames", 240, "TrafficCam frames to ingest")
		pcImgs  = flag.Int("pc-images", 120, "PC corpus images to ingest")
		clips   = flag.Int("clips", 2, "football clips to ingest")
		clipLen = flag.Int("clip-len", 30, "football clip length")

		loadgen         = flag.Int("loadgen", 0, "run N concurrent load-generator clients instead of serving")
		loadgenReqs     = flag.Int("loadgen-requests", 400, "total requests per load-generator phase")
		loadgenDistinct = flag.Bool("loadgen-distinct", false, "jitter every request's parameters (defeats the result cache and coalescing) to exercise the compute path — the workload where cross-request kernel fusion shows")

		ingest     = flag.Int("ingest", 0, "stream-append N rows through /append-style live ingest while queries run, then print the ingest + extension report (instead of serving)")
		ingestBase = flag.Int("ingest-base", 12000, "rows pre-materialized in the live collection before the ingest stream starts")
	)
	flag.Parse()

	kind, err := parseDevice(*device)
	if err != nil {
		return err
	}
	if *dir == "" {
		d, err := os.MkdirTemp("", "deeplens-serve")
		if err != nil {
			return err
		}
		*dir = d
	} else if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	cfg := dataset.Default()
	cfg.TrafficFrames = *frames
	cfg.PCImages = *pcImgs
	cfg.FootballClips = *clips
	cfg.FootballClipLen = *clipLen

	svcCfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		Device:           kind,
		Devices:          *devices,
		BatchMaxKernels:  *batchMax,
		BatchWindow:      *batchWin,
		ResultCacheBytes: int64(*cacheMB) << 20,
		ResultTTL:        *ttl,
		UDFCacheBytes:    int64(*udfCacheMB) << 20,
		ModelSeed:        bench.ModelSeed,

		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		TraceSample:        *traceSmp,

		QueryTimeout:   *queryTO,
		HedgeAfter:     *hedgeAfter,
		ResyncInterval: *resyncIvl,

		ColumnMemBudget: int64(*colMemMB) << 20,
	}
	if *faultSpec != "" {
		rules, err := fault.ParseRules(*faultSpec)
		if err != nil {
			return err
		}
		svcCfg.Faults = fault.Config{Seed: *faultSeed, Rules: rules}
		log.Printf("fault injection armed (seed %d): %s", *faultSeed, *faultSpec)
	}

	if *replicas < 1 {
		return fmt.Errorf("-replicas %d: want >= 1", *replicas)
	}
	useSharded, err := checkDirLayout(*dir, *shards, *replicas)
	if err != nil {
		return err
	}

	var (
		env *bench.Env
		svc *service.Service
	)
	start := time.Now()
	if useSharded {
		log.Printf("ingesting into %s across %d shards x %d replicas (reused if already materialized)...",
			*dir, *shards, *replicas)
		env, err = bench.NewShardedReplicaEnv(*dir, cfg, *shards, *replicas, exec.New(kind))
		if err != nil {
			return err
		}
		defer env.Close()
		log.Printf("sharded catalog ready in %v: collections %v across %d shards x %d replicas",
			time.Since(start).Round(time.Millisecond), env.Shards.Collections(),
			env.Shards.NumShards(), env.Shards.Replicas())
		svc, err = service.NewSharded(env.Shards, svcCfg)
	} else {
		log.Printf("ingesting into %s (reused if already materialized)...", *dir)
		env, err = bench.NewEnv(*dir, cfg, exec.New(kind))
		if err != nil {
			return err
		}
		defer env.Close()
		log.Printf("catalog ready in %v: collections %v", time.Since(start).Round(time.Millisecond), env.DB.Collections())
		svc, err = service.New(env.DB, svcCfg)
	}
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.RegisterSource("trafficcam", trafficSource{env.Traffic})

	if *ingest > 0 {
		clients := *loadgen
		if clients <= 0 {
			clients = 4
		}
		return runIngest(svc, env, clients, *ingest, *ingestBase)
	}
	if *loadgen > 0 {
		return runLoadgen(svc, *loadgen, *loadgenReqs, *frames, *loadgenDistinct)
	}

	// The service API plus Go's profiling handlers (heap, goroutine,
	// 30-second CPU profiles) for diagnosing serving hot paths in place.
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	log.Printf("serving on %s (%d workers on %d %s devices, queue %d, pprof at /debug/pprof/)",
		*addr, *workers, svc.Stats().Devices, kind, *queue)
	return http.ListenAndServe(*addr, mux)
}

// checkDirLayout reconciles the -shards flag with the -dir's on-disk
// layout and reports whether the sharded path should be used.
// core.OpenSharded already rejects a sharded directory reopened at a
// different count; the cases it cannot see are sharded vs unsharded
// transitions, which would otherwise silently re-ingest a second
// database alongside the existing one.
func checkDirLayout(dir string, shards, replicas int) (useSharded bool, err error) {
	wantSharded := shards > 1 || replicas > 1
	raw, readErr := os.ReadFile(filepath.Join(dir, "SHARDS.json"))
	if readErr == nil {
		var m struct {
			Shards int `json:"shards"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			// Route into the sharded opener, whose corruption diagnosis
			// names the file; guessing a count here would mislead.
			return true, nil
		}
		if !wantSharded && m.Shards != 1 {
			return false, fmt.Errorf("%s holds a sharded database (%d shards): pass -shards %d, or re-ingest into a fresh -dir",
				dir, m.Shards, m.Shards)
		}
		return true, nil // existing sharded layout (OpenShardedReplicas re-validates the topology)
	}
	if wantSharded {
		if _, err := os.Stat(filepath.Join(dir, "deeplens.db")); err == nil {
			return false, fmt.Errorf("%s holds an unsharded database: drop -shards/-replicas, or re-ingest into a fresh -dir", dir)
		}
		return true, nil
	}
	return false, nil
}

// workload returns the mixed request set the load generator cycles
// through: indexed and scan filters, similarity joins with and without a
// prebuilt index, identity dedup, and a memoizable inference sweep.
func workload(frames int) []service.Request {
	str := func(s string) *string { return &s }
	sweep := frames / 4
	if sweep < 1 {
		sweep = 1
	}
	return []service.Request{
		{Collection: bench.ColTrafficDets,
			Filter: &service.FilterSpec{Field: "label", Str: str("pedestrian"), UseIndex: true}},
		{Collection: bench.ColTrafficDets,
			Filter: &service.FilterSpec{Field: "label", Str: str("car")}},
		{Collection: bench.ColTrafficDets,
			Filter:   &service.FilterSpec{Field: "label", Str: str("pedestrian")},
			SimJoin:  &service.SimJoinSpec{Field: "emb", Eps: 0.15, MinCluster: 2},
			Distinct: true},
		{Collection: bench.ColPCImages,
			SimJoin: &service.SimJoinSpec{Field: "ghist", Eps: 0.066, UseIndex: true}},
		{Collection: bench.ColPCWords,
			Filter:  &service.FilterSpec{Field: "text", Str: str("query")},
			OrderBy: "frameno", Limit: 1},
		{Infer: &service.InferSpec{Source: "trafficcam", From: 0, To: sweep,
			UDF: "detect", Label: "car"}},
	}
}

type phaseResult struct {
	name     string
	total    time.Duration
	lats     obs.Summary
	ok       int
	shed     int // cost-based sheds (admission said "expensive, come back later")
	rejected int // hard rejections (physical queue full) and retry budgets exhausted
	retried  int // re-submissions after an overload, Retry-After honored
}

// Closed-loop clients honor the service's Retry-After hint on overload,
// but cap the sleep — a load generator that sleeps the full server hint
// (1s+) stops generating load. Bounded attempts keep one hot request
// from wedging a client forever.
const (
	loadgenRetryCap = 250 * time.Millisecond
	loadgenAttempts = 4
)

// queryRetry runs one request against the service, retrying overloads
// with a capped Retry-After backoff, and folds the outcome into res
// under mu. Successful retries count in both retried and ok; requests
// that exhaust their attempts land in rejected.
func queryRetry(svc *service.Service, req service.Request, res *phaseResult, mu *sync.Mutex, tag string) {
	for attempt := 1; ; attempt++ {
		t0 := time.Now()
		_, err := svc.Query(context.Background(), req)
		lat := time.Since(t0)
		var oe *service.OverloadError
		switch {
		case err == nil:
			mu.Lock()
			res.ok++
			res.lats.ObserveDuration(lat)
			mu.Unlock()
			return
		case errors.Is(err, service.ErrOverloaded):
			backoff := loadgenRetryCap
			if errors.As(err, &oe) {
				mu.Lock()
				if oe.Shed {
					res.shed++
				}
				mu.Unlock()
				if oe.RetryAfter > 0 && oe.RetryAfter < backoff {
					backoff = oe.RetryAfter
				}
			}
			if attempt >= loadgenAttempts {
				mu.Lock()
				res.rejected++
				mu.Unlock()
				return
			}
			time.Sleep(backoff)
			mu.Lock()
			res.retried++
			mu.Unlock()
		default:
			log.Printf("%s: %v", tag, err)
			return
		}
	}
}

func (p *phaseResult) qps() float64 {
	if p.total <= 0 {
		return 0
	}
	return float64(p.ok) / p.total.Seconds()
}

func (p *phaseResult) pct(q float64) time.Duration {
	return time.Duration(p.lats.Quantile(q) * float64(time.Second))
}

func (p *phaseResult) mean() time.Duration {
	return time.Duration(p.lats.Mean() * float64(time.Second))
}

// distinctReq perturbs request i so no two requests share a fingerprint:
// simjoin thresholds get a result-preserving jitter and inference sweeps
// rotate their frame window. NoCache keeps the result cache out of the
// way; the UDF materialization cache still works (the paper's argument),
// so the remaining per-request cost is device kernels — the regime the
// cross-request batcher optimizes.
func distinctReq(req service.Request, i, frames int) service.Request {
	req.NoCache = true
	if req.SimJoin != nil {
		sj := *req.SimJoin
		sj.Eps += float64(i%997) * 1e-9
		req.SimJoin = &sj
	}
	if req.Infer != nil {
		in := *req.Infer
		span := in.To - in.From
		if frames > span {
			in.From = i % (frames - span)
			in.To = in.From + span
		}
		req.Infer = &in
	}
	return req
}

func runPhase(svc *service.Service, name string, clients, total int, reqs []service.Request, distinct bool, frames int) phaseResult {
	var (
		mu  sync.Mutex
		res = phaseResult{name: name}
		wg  sync.WaitGroup
		seq = make(chan int)
	)
	start := time.Now()
	go func() {
		for i := 0; i < total; i++ {
			seq <- i
		}
		close(seq)
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range seq {
				req := reqs[i%len(reqs)]
				if distinct {
					req = distinctReq(req, i, frames)
				}
				queryRetry(svc, req, &res, &mu, "loadgen")
			}
		}()
	}
	wg.Wait()
	res.total = time.Since(start)
	return res
}

func runLoadgen(svc *service.Service, clients, total, frames int, distinct bool) error {
	reqs := workload(frames)
	mode := "repeating"
	if distinct {
		mode = "distinct (no result-cache reuse)"
	}
	log.Printf("load generator: %d clients, %d requests per phase, %d query shapes, %s",
		clients, total, len(reqs), mode)

	svc.FlushCaches()
	cold := runPhase(svc, "cold", clients, total, reqs, distinct, frames)
	warm := runPhase(svc, "warm", clients, total, reqs, distinct, frames)

	st := svc.Stats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\treqs\tok\tshed\tretried\trejected\tQPS\tmean\tp50\tp95\tp99")
	for _, p := range []phaseResult{cold, warm} {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%v\t%v\t%v\t%v\n",
			p.name, total, p.ok, p.shed, p.retried, p.rejected, p.qps(),
			p.mean().Round(time.Microsecond),
			p.pct(0.50).Round(time.Microsecond), p.pct(0.95).Round(time.Microsecond),
			p.pct(0.99).Round(time.Microsecond))
	}
	w.Flush()
	fmt.Printf("\nwarm/cold speedup: %.1fx\n", warm.qps()/cold.qps())
	fmt.Printf("result cache: %d hits / %d misses (%.0f%% hit rate), %d entries, %d KiB\n",
		st.ResultCache.Hits, st.ResultCache.Misses, 100*st.ResultHitRate,
		st.ResultCache.Entries, st.ResultCache.Bytes>>10)
	fmt.Printf("udf cache: %d hits / %d misses, %d entries, %d KiB\n",
		st.UDFCache.Hits, st.UDFCache.Misses, st.UDFCache.Entries, st.UDFCache.Bytes>>10)
	fmt.Printf("pool: %d workers on %d %s devices, peak in-flight %d, coalesced %d\n",
		st.Workers, st.Devices, st.Device, st.PeakInFlight, st.Coalesced)
	fmt.Printf("kernels: %d executed in %d launches (%d size / %d deadline / %d idle flushes), overhead %.1f ms\n",
		st.DeviceKernels, st.DeviceLaunches,
		st.Batcher.FlushSize, st.Batcher.FlushDeadline, st.Batcher.FlushIdle, st.DeviceOverheadMS)
	if st.Shards > 1 {
		fmt.Printf("shards: %d, %d scatter queries fanned into %d tasks, merge %.2f ms total\n",
			st.Shards, st.ScatterQueries, st.ScatterTasks, st.MergeTimeMS)
		for _, si := range st.ShardInfo {
			fmt.Printf("  shard %d: %d rows, %d versions\n", si.Shard, si.Rows, si.Versions)
		}
	}
	fmt.Printf("fusion factor: %.2fx\n", st.FusionFactor)

	// Scrape the service's own /metrics over loopback HTTP — the same
	// bytes Prometheus would see — and cross-check the server-side
	// histogram percentiles against the client-side raw summaries. The
	// server buckets (fixed bounds, interpolated), the client keeps every
	// sample, so agreement is "same bucket", not equality.
	exp, err := scrapeMetrics(svc)
	if err != nil {
		return fmt.Errorf("loadgen: /metrics scrape: %w", err)
	}
	var client obs.Summary
	client.Merge(&cold.lats)
	client.Merge(&warm.lats)
	fmt.Printf("\nserver (/metrics histogram) vs client (raw samples) latency:\n")
	for _, q := range []float64{0.50, 0.95, 0.99} {
		sv, ok := obs.PromHistogramQuantile(exp, "deeplens_query_duration_seconds", nil, q)
		if !ok {
			return fmt.Errorf("loadgen: /metrics has no deeplens_query_duration_seconds histogram")
		}
		fmt.Printf("  p%.0f: server %v, client %v\n", q*100,
			time.Duration(sv*float64(time.Second)).Round(time.Microsecond),
			time.Duration(client.Quantile(q)*float64(time.Second)).Round(time.Microsecond))
	}
	if n, ok := exp.Value("deeplens_query_duration_seconds_count", nil); ok {
		fmt.Printf("  server observed %.0f queries, client %d\n", n, client.Count())
	}
	return nil
}

// scrapeMetrics serves the service's handler on an ephemeral loopback
// listener and fetches one /metrics page through a real HTTP round
// trip, so the loadgen validates the exposition exactly as an external
// scraper would receive it.
func scrapeMetrics(svc *service.Service) (*obs.PromExposition, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.CheckExposition(resp.Body)
}

// liveCol names the collection the -ingest mode streams into.
const liveCol = "live.dets"

// livePatchSpec is ingest row i as a client would POST it (the colscan
// field shapes: low-cardinality label, dense float score, small-domain
// int rank).
func livePatchSpec(i int) service.PatchSpec {
	p := bench.ColScanPatch(i)
	return service.PatchSpec{
		Source: p.Ref.Source,
		Frame:  p.Ref.Frame,
		Meta: map[string]any{
			"label": p.Meta["label"].S,
			"score": p.Meta["score"].F,
			"rank":  float64(p.Meta["rank"].I),
		},
	}
}

// ingestQueries is the query mix the clients run against the live
// collection while the appender streams: selective equality, ordered
// top-k, and a numeric range — all on the columnar path, all NoCache so
// every request exercises the engine rather than the result cache
// (appends move the version every batch anyway).
func ingestQueries() []service.Request {
	str := func(s string) *string { return &s }
	f := func(v float64) *float64 { return &v }
	return []service.Request{
		{Collection: liveCol, Filter: &service.FilterSpec{Field: "label", Str: str("cls03")}, NoCache: true},
		{Collection: liveCol, OrderBy: "score", Desc: true, Limit: 10, NoCache: true},
		{Collection: liveCol, Filter: &service.FilterSpec{Field: "score", Min: f(0.25), Max: f(0.75)},
			OrderBy: "rank", Limit: 5, NoCache: true},
	}
}

// runIngest seeds the live collection with base rows, then interleaves
// a frame-at-a-time append stream of total rows with clients*queries
// concurrent query traffic, and reports both sides: ingest throughput,
// query latency during ingest, and the columnar extension's
// sealed-block reuse (the "stays warm" proof).
func runIngest(svc *service.Service, env *bench.Env, clients, total, base int) error {
	schema := bench.ColScanSchema()
	var appendSeed func(*core.Patch) error
	if env.Shards != nil {
		sc, err := env.Shards.CreateCollection(liveCol, schema)
		if err != nil {
			return err
		}
		appendSeed = sc.Append
	} else {
		c, err := env.DB.CreateCollection(liveCol, schema)
		if err != nil {
			return err
		}
		appendSeed = c.Append
	}
	log.Printf("seeding %s with %d rows...", liveCol, base)
	for i := 0; i < base; i++ {
		if err := appendSeed(bench.ColScanPatch(i)); err != nil {
			return err
		}
	}
	// Warm the columnar store so the stream upgrades instead of building.
	warm := ingestQueries()[0]
	if _, err := svc.Query(context.Background(), warm); err != nil {
		return err
	}

	const batch = 64
	reqs := ingestQueries()
	queryTotal := clients * 64
	log.Printf("ingest: streaming %d rows in %d-row batches against %d query clients (%d queries)...",
		total, batch, clients, queryTotal)

	var (
		appendLats    []time.Duration
		appendErr     error
		appendRetried int
		res           = phaseResult{name: "during-ingest"}
		mu            sync.Mutex
		wg            sync.WaitGroup
		seq           = make(chan int)
	)
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i += batch {
			req := service.AppendRequest{Collection: liveCol}
			for j := i; j < i+batch && j < total; j++ {
				req.Patches = append(req.Patches, livePatchSpec(base+j))
			}
			// A producer must deliver every row, so overloads from the
			// write gate retry indefinitely with the same capped backoff
			// the query clients use; only hard errors abort the stream.
			t0 := time.Now()
			for {
				_, err := svc.Append(context.Background(), req)
				if err == nil {
					break
				}
				if !errors.Is(err, service.ErrOverloaded) {
					appendErr = err
					return
				}
				backoff := loadgenRetryCap
				var oe *service.OverloadError
				if errors.As(err, &oe) && oe.RetryAfter > 0 && oe.RetryAfter < backoff {
					backoff = oe.RetryAfter
				}
				appendRetried++
				time.Sleep(backoff)
			}
			appendLats = append(appendLats, time.Since(t0))
		}
	}()
	go func() {
		for i := 0; i < queryTotal; i++ {
			seq <- i
		}
		close(seq)
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range seq {
				queryRetry(svc, reqs[i%len(reqs)], &res, &mu, "ingest query")
			}
		}()
	}
	wg.Wait()
	res.total = time.Since(start)
	if appendErr != nil {
		return appendErr
	}

	st := svc.Stats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\treqs\tok\tshed\tretried\trejected\tQPS\tmean\tp50\tp95\tp99")
	fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%v\t%v\t%v\t%v\n",
		res.name, queryTotal, res.ok, res.shed, res.retried, res.rejected, res.qps(),
		res.mean().Round(time.Microsecond),
		res.pct(0.50).Round(time.Microsecond), res.pct(0.95).Round(time.Microsecond),
		res.pct(0.99).Round(time.Microsecond))
	w.Flush()
	var appendSum time.Duration
	for _, l := range appendLats {
		appendSum += l
	}
	perRow := time.Duration(0)
	if st.AppendedRows > 0 {
		perRow = appendSum / time.Duration(st.AppendedRows)
	}
	fmt.Printf("\ningest: %d rows in %d appends over %v (%v/row), %d overload retries\n",
		st.AppendedRows, st.Appends, res.total.Round(time.Millisecond), perRow.Round(100*time.Nanosecond), appendRetried)
	reusePct := 0.0
	if st.ExtendTotalBlocks > 0 {
		reusePct = 100 * float64(st.ExtendReuseBlocks) / float64(st.ExtendTotalBlocks)
	}
	fmt.Printf("columnar extension: %d in-place upgrades, %d/%d sealed blocks reused (%.1f%%)\n",
		st.ColumnExtends, st.ExtendReuseBlocks, st.ExtendTotalBlocks, reusePct)
	if st.Shards > 1 {
		fmt.Printf("shards: %d, appends hash-routed:\n", st.Shards)
		for _, si := range st.ShardInfo {
			fmt.Printf("  shard %d: %d rows, %d versions\n", si.Shard, si.Rows, si.Versions)
		}
	}
	return nil
}
