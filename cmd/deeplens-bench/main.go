// Command deeplens-bench regenerates every table and figure from the
// DeepLens paper's evaluation (§7) against the synthetic benchmark
// datasets. One subcommand per experiment:
//
//	deeplens-bench fig2               encoding: storage vs accuracy
//	deeplens-bench fig3               storage formats: filtered-scan latency
//	deeplens-bench fig4               query time with vs without indexes
//	deeplens-bench fig5               full pipeline incl. on-the-fly indexes
//	deeplens-bench fig6               index construction cost vs #tuples
//	deeplens-bench fig7               ball-tree join cost vs relation size
//	deeplens-bench fig8               CPU / AVX / GPU execution comparison
//	deeplens-bench table1             q4 plan order: accuracy vs runtime
//	deeplens-bench ablation-lsh       exact vs approximate matching
//	deeplens-bench ablation-segment   segmented-file clip-length sweep
//	deeplens-bench ablation-buildside similarity-join build-side choice
//	deeplens-bench shard-scaling      scatter-gather latency vs shard count
//	deeplens-bench columnar-scan      columnar scan engine vs iterator path
//	deeplens-bench tiered-scan        tiered column store under a memory budget
//	deeplens-bench ann-knn            ANN-indexed kNN probes vs brute-force scan
//	deeplens-bench all                everything above
//
// Flags scale the datasets; -scale=paper restores paper-scale frame and
// image counts (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/exec"
)

func main() {
	os.Exit(realMain())
}

// realMain returns the process exit code so deferred cleanup (flushing
// an in-progress CPU profile) runs even on experiment errors.
func realMain() int {
	scale := flag.String("scale", "default", "dataset scale: default | paper | tiny")
	trafficFrames := flag.Int("traffic-frames", 0, "override TrafficCam frame count")
	pcImages := flag.Int("pc-images", 0, "override PC corpus size")
	seed := flag.Int64("seed", 1, "generator seed")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the experiment run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deeplens-bench [flags] <experiment>\n\nexperiments: fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1 ablation-lsh ablation-segment ablation-buildside ablation-kdtree shard-scaling columnar-scan tiered-scan ann-knn all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := dataset.Default()
	switch *scale {
	case "paper":
		cfg = dataset.Paper()
	case "tiny":
		cfg.TrafficFrames = 120
		cfg.PCImages = 60
		cfg.FootballClips = 2
		cfg.FootballClipLen = 25
	case "default":
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	if *trafficFrames > 0 {
		cfg.TrafficFrames = *trafficFrames
	}
	if *pcImages > 0 {
		cfg.PCImages = *pcImages
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Printf("# deeplens-bench: %s\n", dataset.Describe(cfg))
	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	}
	return 0
}

func run(experiment string, cfg dataset.Config) error {
	switch experiment {
	case "fig2":
		return runFig2(cfg)
	case "fig3":
		return runFig3(cfg)
	case "fig4":
		return withEnv(cfg, runFig4)
	case "fig5":
		return withEnv(cfg, runFig5)
	case "fig6":
		return runFig6()
	case "fig7":
		return runFig7()
	case "fig8":
		return runFig8(cfg)
	case "table1":
		return withEnv(cfg, runTable1)
	case "ablation-lsh":
		return withEnv(cfg, runAblationLSH)
	case "ablation-segment":
		return runAblationSegment(cfg)
	case "ablation-buildside":
		return withEnv(cfg, runAblationBuildSide)
	case "ablation-kdtree":
		return runAblationKDTree()
	case "shard-scaling":
		return runShardScaling()
	case "columnar-scan":
		return runColumnarScan()
	case "tiered-scan":
		return runTieredScan()
	case "ann-knn":
		return runANNKNN()
	case "all":
		if err := runFig2(cfg); err != nil {
			return err
		}
		if err := runFig3(cfg); err != nil {
			return err
		}
		if err := withEnv(cfg, func(e *bench.Env) error {
			if err := runFig4(e); err != nil {
				return err
			}
			if err := runFig5(e); err != nil {
				return err
			}
			if err := runTable1(e); err != nil {
				return err
			}
			if err := runAblationLSH(e); err != nil {
				return err
			}
			return runAblationBuildSide(e)
		}); err != nil {
			return err
		}
		if err := runFig6(); err != nil {
			return err
		}
		if err := runFig7(); err != nil {
			return err
		}
		if err := runFig8(cfg); err != nil {
			return err
		}
		if err := runAblationKDTree(); err != nil {
			return err
		}
		return runAblationSegment(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func withEnv(cfg dataset.Config, fn func(*bench.Env) error) error {
	dir, err := os.MkdirTemp("", "deeplens-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Println("## ingesting datasets (ETL)...")
	e, err := bench.NewEnv(dir, cfg, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	defer e.Close()
	for col, d := range e.ETLTime {
		fmt.Printf("   etl %-14s %v\n", col, d)
	}
	return fn(e)
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func runFig2(cfg dataset.Config) error {
	fmt.Println("\n## Figure 2: encoding vs storage and accuracy (paper: H.264 saves 50x at negligible high-quality accuracy cost)")
	rows, err := bench.Fig2Encoding(cfg, 8, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "format\tstorage\tratio\tq2 accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1fx\t%.3f\n", r.Format, fmtBytes(r.Bytes), r.Ratio, r.Accuracy)
	}
	return w.Flush()
}

func runFig3(cfg dataset.Config) error {
	fmt.Println("\n## Figure 3: storage formats under a temporal filter (paper: hybrid gets coarse pushdown + compression)")
	rows, err := bench.Fig3Formats(cfg, cfg.TrafficFrames/10, exec.New(exec.CPU))
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "format\tlatency\tframes decoded")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\n", r.Format, r.Latency, r.Frames)
	}
	return w.Flush()
}

func runFig4(e *bench.Env) error {
	fmt.Println("\n## Figure 4: query time with vs without indexes (paper: up to 612x for q4, 59x q1, 41x q3, 2.5x q6, ~1x q5)")
	rows, err := bench.Fig4Indexes(e)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "query\tbaseline\ttuned\tspeedup\ttuned plan")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%.1fx\t%s\n", r.Query, r.Baseline, r.Tuned, r.Speedup, r.TunedPlan)
	}
	return w.Flush()
}

func runFig5(e *bench.Env) error {
	fmt.Println("\n## Figure 5: full pipeline incl. ETL and on-the-fly indexing (paper: q1 ~5x, q4 ~3.5x)")
	rows, err := bench.Fig5Pipeline(e)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "query\tBL (baseline)\tDL (indexed)\tindex build\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%.2fx\n", r.Query, r.BL, r.DL, r.IndexCost, r.Speedup)
	}
	return w.Flush()
}

func runFig6() error {
	fmt.Println("\n## Figure 6: index construction time vs #tuples (paper: R-tree ~20x slower than B+ tree)")
	rows, err := bench.Fig6IndexBuild([]int{1000, 2000, 5000, 10000, 20000, 50000}, 1)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "index\tn\tbuild time")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%v\n", r.Index, r.N, r.Build)
	}
	return w.Flush()
}

func runFig7() error {
	fmt.Println("\n## Figure 7: ball-tree join vs indexed-relation size (paper: non-linear growth, worse in high dim)")
	rows, err := bench.Fig7BallTreeJoin([]int{1000, 2000, 5000, 10000, 20000, 40000}, []int{4, 64}, 2000, 1)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "dim\tbuild size\tprobe side\tjoin time")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\n", r.Dim, r.BuildSize, r.Probe, r.Join)
	}
	return w.Flush()
}

func runFig8(cfg dataset.Config) error {
	fmt.Println("\n## Figure 8: CPU vs AVX vs GPU for ETL and query time (paper: GPU wins ETL, mixed at query time)")
	rows, err := bench.Fig8Devices(cfg, []exec.Kind{exec.CPU, exec.AVX, exec.GPU})
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "query\tdevice\tETL time\tquery time")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\n", r.Query, r.Device, r.ETL, r.Query_)
	}
	return w.Flush()
}

func runTable1(e *bench.Env) error {
	fmt.Println("\n## Table 1: q4 plan order vs accuracy (paper: filter-first R=0.73 P=0.97 34.6s; match-first R=0.82 P=0.98 62.1s)")
	rows, err := bench.Table1Plans(e)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "execution method\trecall\tprecision\truntime\tdistinct")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%v\t%d\n", r.Plan, r.Recall, r.Precision, r.Runtime, r.Distinct)
	}
	return w.Flush()
}

func runAblationLSH(e *bench.Env) error {
	fmt.Println("\n## Ablation: exact ball tree vs approximate LSH on q4 matching (paper §7.3 future work)")
	rows, err := bench.AblationLSH(e)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "method\tpairs\tpair recall\ttime")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%v\n", r.Method, r.Pairs, r.Recall, r.Duration)
	}
	return w.Flush()
}

func runAblationSegment(cfg dataset.Config) error {
	fmt.Println("\n## Ablation: segmented-file clip length (paper §7.1 'manually tuned granularity')")
	rows, err := bench.AblationSegment(cfg, []uint64{8, 16, 32, 64, 128}, cfg.TrafficFrames/10)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "clip length\tstorage\tfiltered-scan latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%v\n", r.ClipLen, fmtBytes(r.Bytes), r.Latency)
	}
	return w.Flush()
}

func runAblationKDTree() error {
	fmt.Println("\n## Ablation: KD-tree vs ball tree across dimensionality (paper §3.2's index choice)")
	rows, err := bench.AblationKDTree([]int{2, 4, 8, 16, 32, 64}, 10000, 1000, 1)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "dim\tkd-tree\tball tree")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%v\n", r.Dim, r.KDTree, r.BallTree)
	}
	return w.Flush()
}

func runAblationBuildSide(e *bench.Env) error {
	fmt.Println("\n## Ablation: similarity-join build side (on-the-fly index over smaller vs larger relation)")
	rows, err := bench.AblationBuildSide(e)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "build side\ttime\tpairs")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\n", r.BuildSide, r.Duration, r.Pairs)
	}
	return w.Flush()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
