package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
)

// runTieredScan measures the tiered column store under a constrained
// segment-cache budget — the selective filter cold, warm and
// zone-pruned against the unbudgeted in-memory store, swept from 12k
// to 200k rows (the same fixture BenchmarkTieredColumns snapshots for
// CI) — and writes the curve to BENCH_tiered_columns.json in the
// working directory.
func runTieredScan() error {
	const iters = 10
	dir, err := os.MkdirTemp("", "deeplens-tiered")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	points, err := bench.MeasureTieredScan(dir, bench.TieredScanRowsSweep, bench.TieredScanBudget, iters)
	if err != nil {
		return err
	}
	if err := bench.WriteTieredScanJSON("BENCH_tiered_columns.json", bench.TieredScanBudget, points); err != nil {
		return err
	}

	fmt.Printf("\n## Tiered column store under a %d KiB budget (%.1f%% selective filter, block %d)\n",
		bench.TieredScanBudget>>10, 100.0/bench.ColScanLabels, core.ColumnBlockSize)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rows\tcold\twarm\tpruned\tin-mem\tspills\tloads\tevictions\tresident")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.0f ns\t%.0f ns\t%.0f ns\t%.0f ns\t%d\t%d\t%d\t%d B\n",
			p.Rows, p.ColdFilterNS, p.WarmFilterNS, p.PrunedFilterNS, p.InMemFilterNS,
			p.SegmentSpills, p.SegmentLoads, p.SegmentEvictions, p.ResidentBytes)
	}
	w.Flush()
	fmt.Println("\nwrote BENCH_tiered_columns.json")
	return nil
}
