package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
)

// runANNKNN measures the ANN physical path against the brute-force
// vector scan on the kNN probe workload (the same fixture
// BenchmarkANNKNN snapshots for CI — shared via internal/bench's annknn
// fixture) and writes the curve to BENCH_ann_knn.json in the working
// directory.
func runANNKNN() error {
	const iters = 10
	dir, err := os.MkdirTemp("", "deeplens-annknn")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	f, err := bench.NewANNKNNFixture(dir, bench.ANNKNNRows)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.ANNKNNCheck(); err != nil {
		return err
	}

	measure := func(run func(qi int)) (float64, error) {
		total, err := bench.MinWallNS(iters, func() error {
			for qi := 0; qi < bench.ANNKNNQueries; qi++ {
				run(qi)
			}
			return nil
		})
		return total / bench.ANNKNNQueries, err
	}
	points := []bench.ANNKNNPoint{
		{Method: "brute-scan"}, {Method: "index-exact"}, {Method: "index-lsh"},
	}
	if points[0].NS, err = measure(func(qi int) { f.Brute(qi) }); err != nil {
		return err
	}
	if points[1].NS, err = measure(func(qi int) { f.ExactKNN(qi) }); err != nil {
		return err
	}
	if points[2].NS, err = measure(func(qi int) { f.ApproxKNN(qi) }); err != nil {
		return err
	}
	points[2].Recall = f.ANNKNNRecall()
	if err := bench.WriteANNKNNJSON("BENCH_ann_knn.json", bench.ANNKNNRows, points); err != nil {
		return err
	}

	fmt.Printf("\n## ANN-indexed kNN vs brute scan (%d rows, dim %d, k=%d, %d queries)\n",
		bench.ANNKNNRows, bench.ANNKNNDim, bench.ANNKNNK, bench.ANNKNNQueries)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tns/query\tspeedup\trecall")
	for _, p := range points {
		speedup := "-"
		if p.Method != "brute-scan" && p.NS > 0 {
			speedup = fmt.Sprintf("%.1fx", points[0].NS/p.NS)
		}
		recall := "-"
		if p.Method == "index-lsh" {
			recall = fmt.Sprintf("%.3f", p.Recall)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%s\t%s\n", p.Method, p.NS, speedup, recall)
	}
	w.Flush()
	fmt.Println("\nwrote BENCH_ann_knn.json")
	return nil
}
