package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/shardbench"
)

// runShardScaling measures the scatter-gather scan-heavy query through
// the full serving path at 1..8 shards (the same workload
// BenchmarkShardScaling snapshots for CI — shared via
// internal/shardbench) and writes the curve to BENCH_shard_scaling.json
// in the working directory. On a host with spare cores the scatter wave
// parallelizes the per-shard scans; on a single core the curve shows
// the fan-out overhead instead (the gomaxprocs field records which
// regime was measured).
func runShardScaling() error {
	const iters = 50
	req := shardbench.ScanRequest()
	ctx := context.Background()

	var points []shardbench.Point
	for _, n := range []int{1, 2, 4, 8} {
		dir, err := os.MkdirTemp("", "deeplens-shardscale")
		if err != nil {
			return err
		}
		svc, cleanup, err := shardbench.NewService(dir, n, shardbench.DefaultRows)
		if err != nil {
			return err
		}
		if _, err := svc.Query(ctx, req); err != nil { // warm snapshot caches
			cleanup()
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := svc.Query(ctx, req); err != nil {
				cleanup()
				return err
			}
		}
		elapsed := time.Since(start)
		st := svc.Stats()
		cleanup()
		os.RemoveAll(dir)
		points = append(points, shardbench.Point{
			Shards:             n,
			NsPerQuery:         float64(elapsed.Nanoseconds()) / iters,
			ScatterTasksPerQry: float64(st.ScatterTasks) / float64(st.ScatterQueries),
			MergeMSTotal:       st.MergeTimeMS,
		})
	}
	if err := shardbench.WriteJSON("BENCH_shard_scaling.json", shardbench.DefaultRows, points); err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\tns/query\tspeedup vs 1\ttasks/query\tmerge ms")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.0f\t%.3f\n",
			p.Shards, p.NsPerQuery, p.SpeedupVs1, p.ScatterTasksPerQry, p.MergeMSTotal)
	}
	w.Flush()
	fmt.Println("\nwrote BENCH_shard_scaling.json")
	return nil
}
