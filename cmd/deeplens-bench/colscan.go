package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/core"
)

// runColumnarScan measures the columnar scan engine against the
// row-at-a-time iterator path on the selective-filter and top-k
// workloads (the same fixture BenchmarkColumnarScan snapshots for CI —
// shared via internal/bench's colscan fixture) and writes the curve to
// BENCH_columnar_scan.json in the working directory.
func runColumnarScan() error {
	const iters = 20
	dir, err := os.MkdirTemp("", "deeplens-colscan")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, col, err := bench.NewColScanCollection(dir, bench.ColScanRows)
	if err != nil {
		return err
	}
	defer db.Close()

	// Warm both paths (snapshot cache + column projection) so the
	// measurement isolates scan execution.
	if _, err := bench.ColScanFilterColumnar(db, col); err != nil {
		return err
	}
	points := []bench.ColScanPoint{{Workload: "selective-filter"}, {Workload: "top-k"}}
	if points[0].IteratorNS, err = bench.MinWallNS(iters, func() error {
		_, err := bench.ColScanFilterIter(db, col)
		return err
	}); err != nil {
		return err
	}
	if points[0].ColumnarNS, err = bench.MinWallNS(iters, func() error {
		_, err := bench.ColScanFilterColumnar(db, col)
		return err
	}); err != nil {
		return err
	}
	if points[1].IteratorNS, err = bench.MinWallNS(iters, func() error {
		_, err := bench.ColScanTopKIter(col)
		return err
	}); err != nil {
		return err
	}
	if points[1].ColumnarNS, err = bench.MinWallNS(iters, func() error {
		_, err := bench.ColScanTopKColumnar(col)
		return err
	}); err != nil {
		return err
	}
	if err := bench.WriteColScanJSON("BENCH_columnar_scan.json", bench.ColScanRows, points); err != nil {
		return err
	}

	fmt.Printf("\n## Columnar scan engine vs iterator path (%d rows, %.1f%% selective, block %d)\n",
		bench.ColScanRows, 100.0/bench.ColScanLabels, core.ColumnBlockSize)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\titerator\tcolumnar\tspeedup")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%.0f ns\t%.0f ns\t%.1fx\n",
			p.Workload, p.IteratorNS, p.ColumnarNS, p.IteratorNS/p.ColumnarNS)
	}
	w.Flush()
	fmt.Println("\nwrote BENCH_columnar_scan.json")
	return nil
}
