// Package nn is DeepLens's minimal neural-network inference engine. The
// paper's ETL stage is dominated by neural network inference (SSD object
// detection, depth prediction); this package supplies the corresponding
// compute: convolutional feature extractors whose dense kernels run on an
// exec.Device, so the CPU/AVX/GPU comparison of Figure 8 exercises real
// GEMM work. Weights are fixed pseudo-random (seeded): the simulated
// detector heads consume the features deterministically, standing in for
// trained parameters we cannot ship.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/tensor"
)

// Layer transforms a CHW float32 tensor on a device.
type Layer interface {
	Forward(dev exec.Device, x *tensor.Tensor) *tensor.Tensor
	Name() string
	// OutShape computes the output shape for a given input shape, used by
	// the pipeline validator.
	OutShape(in []int) ([]int, error)
}

// BatchLayer is implemented by layers with a fused multi-sample forward
// pass. Batching is how real inference amortizes kernel-launch overhead on
// accelerators; the Figure 8 GPU-vs-CPU ETL gap depends on it.
type BatchLayer interface {
	ForwardBatch(dev exec.Device, xs []*tensor.Tensor) []*tensor.Tensor
}

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// Forward runs x through all layers on dev.
func (n *Network) Forward(dev exec.Device, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(dev, x)
	}
	return x
}

// ForwardBatch runs equal-shaped inputs through all layers, fusing each
// batch-capable layer into one device kernel. The caller's slice and its
// input tensors are left untouched; intermediate activations are recycled
// through the tensor pool as soon as the next layer has consumed them.
// The returned output tensors are pool-backed: callers that drop them may
// hand them back with tensor.PutF32 (ReleaseTensors) but never have to.
func (n *Network) ForwardBatch(dev exec.Device, xs []*tensor.Tensor) []*tensor.Tensor {
	owned := false // xs are intermediates this call allocated
	for _, l := range n.Layers {
		var next []*tensor.Tensor
		if bl, ok := l.(BatchLayer); ok {
			next = bl.ForwardBatch(dev, xs)
		} else {
			next = make([]*tensor.Tensor, len(xs))
			for i := range xs {
				next[i] = l.Forward(dev, xs[i])
			}
		}
		if owned {
			for i := range xs {
				if i >= len(next) || next[i] != xs[i] {
					tensor.PutF32(xs[i])
				}
			}
		}
		xs = next
		owned = true
	}
	return xs
}

// ReleaseTensors recycles pool-backed tensors a caller is done with (e.g.
// backbone activations after their features have been copied out). The
// tensors must not be used afterwards.
func ReleaseTensors(ts []*tensor.Tensor) {
	for _, t := range ts {
		tensor.PutF32(t)
	}
}

// OutShape propagates a shape through the stack.
func (n *Network) OutShape(in []int) ([]int, error) {
	var err error
	for _, l := range n.Layers {
		if in, err = l.OutShape(in); err != nil {
			return nil, fmt.Errorf("nn: layer %s: %w", l.Name(), err)
		}
	}
	return in, nil
}

// ---------------------------------------------------------------- Conv ----

// Conv2D is a 2-D convolution with square stride and zero padding,
// executed as im2col + GEMM on the device.
type Conv2D struct {
	OutC, InC, KH, KW int
	Stride, Pad       int
	W                 []float32 // OutC × (InC*KH*KW)
	B                 []float32 // OutC
}

// NewConv2D builds a conv layer with Kaiming-style random weights drawn
// from rng.
func NewConv2D(outC, inC, kh, kw, stride, pad int, rng *rand.Rand) *Conv2D {
	w := make([]float32, outC*inC*kh*kw)
	scale := float32(1.0) / float32(inC*kh*kw)
	for i := range w {
		w[i] = float32(rng.NormFloat64()) * scale * 3
	}
	b := make([]float32, outC)
	for i := range b {
		b[i] = float32(rng.NormFloat64()) * 0.01
	}
	return &Conv2D{OutC: outC, InC: inC, KH: kh, KW: kw, Stride: stride, Pad: pad, W: w, B: b}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%d(%d->%d)", c.KH, c.KW, c.InC, c.OutC) }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, fmt.Errorf("want CHW input with C=%d, got %v", c.InC, in)
	}
	oh := (in[1]+2*c.Pad-c.KH)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("input %v too small for kernel", in)
	}
	return []int{c.OutC, oh, ow}, nil
}

// Forward implements Layer.
func (c *Conv2D) Forward(dev exec.Device, x *tensor.Tensor) *tensor.Tensor {
	return c.ForwardBatch(dev, []*tensor.Tensor{x})[0]
}

// im2col fills dst (stride n columns) for one input at column offset off.
func (c *Conv2D) im2col(x *tensor.Tensor, dst []float32, n, off, oh, ow int) {
	h, w := x.Shape[1], x.Shape[2]
	for ic := 0; ic < c.InC; ic++ {
		cho := ic * h * w
		for ky := 0; ky < c.KH; ky++ {
			for kx := 0; kx < c.KW; kx++ {
				row := (ic*c.KH+ky)*c.KW + kx
				base := row*n + off
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						continue // zero padding already in place
					}
					srcRow := cho + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[base+oy*ow+ox] = x.F32s[srcRow+ix]
					}
				}
			}
		}
	}
}

// ForwardBatch implements BatchLayer: all inputs (which must share one
// shape) are im2col-packed side by side and convolved with a single GEMM.
func (c *Conv2D) ForwardBatch(dev exec.Device, xs []*tensor.Tensor) []*tensor.Tensor {
	if len(xs) == 0 {
		return nil
	}
	shape, err := c.OutShape(xs[0].Shape)
	if err != nil {
		panic(err)
	}
	oh, ow := shape[1], shape[2]
	k := c.InC * c.KH * c.KW
	per := oh * ow
	n := per * len(xs)
	// Pooled scratch: the im2col matrix and the GEMM result are the two
	// dominant ETL allocations; under serving load they recycle across
	// every frame. GetScratch zeroes, which im2col's padding and the
	// accumulating GEMM both rely on.
	cols := tensor.GetScratch(k * n)
	for i, x := range xs {
		c.im2col(x, cols, n, i*per, oh, ow)
	}
	big := tensor.GetScratch(c.OutC * n)
	dev.GEMM(c.OutC, n, k, c.W, cols, big)
	tensor.PutScratch(cols)
	outs := make([]*tensor.Tensor, len(xs))
	for i := range xs {
		out := tensor.GetF32(shape...)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B[oc]
			src := big[oc*n+i*per : oc*n+(i+1)*per]
			dst := out.F32s[oc*per : (oc+1)*per]
			for j := range dst {
				dst[j] = src[j] + bias
			}
		}
		outs[i] = out
	}
	tensor.PutScratch(big)
	return outs
}

// ---------------------------------------------------------------- ReLU ----

// ReLU applies max(0, x) elementwise.
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (ReLU) Forward(_ exec.Device, x *tensor.Tensor) *tensor.Tensor {
	out := tensor.GetF32(x.Shape...)
	for i, v := range x.F32s {
		if v > 0 {
			out.F32s[i] = v
		}
	}
	return out
}

// ------------------------------------------------------------- MaxPool ----

// MaxPool2 is a 2x2 max pooling with stride 2 (floor semantics).
type MaxPool2 struct{}

// Name implements Layer.
func (MaxPool2) Name() string { return "maxpool2" }

// OutShape implements Layer.
func (MaxPool2) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("want CHW input, got %v", in)
	}
	if in[1] < 2 || in[2] < 2 {
		return nil, fmt.Errorf("input %v too small to pool", in)
	}
	return []int{in[0], in[1] / 2, in[2] / 2}, nil
}

// Forward implements Layer.
func (MaxPool2) Forward(_ exec.Device, x *tensor.Tensor) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	out := tensor.GetF32(c, oh, ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				i0 := ch*h*w + 2*oy*w + 2*ox
				m := x.F32s[i0]
				if v := x.F32s[i0+1]; v > m {
					m = v
				}
				if v := x.F32s[i0+w]; v > m {
					m = v
				}
				if v := x.F32s[i0+w+1]; v > m {
					m = v
				}
				out.F32s[ch*oh*ow+oy*ow+ox] = m
			}
		}
	}
	return out
}

// ------------------------------------------------------- GlobalAvgPool ----

// GlobalAvgPool reduces CHW to a length-C vector.
type GlobalAvgPool struct{}

// Name implements Layer.
func (GlobalAvgPool) Name() string { return "gap" }

// OutShape implements Layer.
func (GlobalAvgPool) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("want CHW input, got %v", in)
	}
	return []int{in[0]}, nil
}

// Forward implements Layer.
func (GlobalAvgPool) Forward(_ exec.Device, x *tensor.Tensor) *tensor.Tensor {
	c, hw := x.Shape[0], x.Shape[1]*x.Shape[2]
	out := tensor.GetF32(c)
	for ch := 0; ch < c; ch++ {
		var s float32
		for _, v := range x.F32s[ch*hw : (ch+1)*hw] {
			s += v
		}
		out.F32s[ch] = s / float32(hw)
	}
	return out
}

// --------------------------------------------------------------- Dense ----

// Dense is a fully connected layer over a flat vector.
type Dense struct {
	In, Out int
	W       []float32 // In × Out
	B       []float32
}

// NewDense builds a dense layer with random weights from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := make([]float32, in*out)
	scale := float32(1.0) / float32(in)
	for i := range w {
		w[i] = float32(rng.NormFloat64()) * scale * 3
	}
	b := make([]float32, out)
	return &Dense{In: in, Out: out, W: w, B: b}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if tensor.Numel(in) != d.In {
		return nil, fmt.Errorf("want %d inputs, got shape %v", d.In, in)
	}
	return []int{d.Out}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(dev exec.Device, x *tensor.Tensor) *tensor.Tensor {
	out := tensor.GetF32(d.Out)
	dev.GEMM(1, d.Out, d.In, x.F32s, d.W, out.F32s)
	for i := range out.F32s {
		out.F32s[i] += d.B[i]
	}
	return out
}

// ------------------------------------------------------- Preset models ----

// NewBackbone builds the fixed-weight convolutional feature extractor the
// simulated vision models share: a stride-2 stem followed by two conv/pool
// stages over an RGB input, ending in a dim-length embedding.
// Deterministic for a given seed.
func NewBackbone(dim int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{Layers: []Layer{
		NewConv2D(6, 3, 3, 3, 2, 1, rng),
		ReLU{},
		MaxPool2{},
		NewConv2D(12, 6, 3, 3, 1, 1, rng),
		ReLU{},
		MaxPool2{},
		NewConv2D(dim, 12, 3, 3, 1, 1, rng),
		ReLU{},
		GlobalAvgPool{},
	}}
}

// ImageToCHW converts an interleaved RGB uint8 raster to a CHW float32
// tensor in [0,1].
func ImageToCHW(pix []uint8, w, h int) *tensor.Tensor {
	out := tensor.GetF32(3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := (y*w + x) * 3
			for c := 0; c < 3; c++ {
				out.F32s[c*h*w+y*w+x] = float32(pix[base+c]) / 255
			}
		}
	}
	return out
}
