package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/tensor"
)

func TestConvShapeAndIdentityKernel(t *testing.T) {
	// 1x1 identity kernel must reproduce the input channel.
	c := &Conv2D{OutC: 1, InC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0,
		W: []float32{1}, B: []float32{0}}
	x := tensor.NewF32(1, 4, 5)
	for i := range x.F32s {
		x.F32s[i] = float32(i)
	}
	y := c.Forward(exec.New(exec.CPU), x)
	if y.Shape[0] != 1 || y.Shape[1] != 4 || y.Shape[2] != 5 {
		t.Fatalf("shape %v", y.Shape)
	}
	for i := range x.F32s {
		if y.F32s[i] != x.F32s[i] {
			t.Fatalf("identity conv mismatch at %d", i)
		}
	}
}

func TestConvKnownValue(t *testing.T) {
	// 3x3 box filter over a constant image: interior outputs = 9.
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	c := &Conv2D{OutC: 1, InC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1, W: w, B: []float32{0}}
	x := tensor.NewF32(1, 5, 5)
	for i := range x.F32s {
		x.F32s[i] = 1
	}
	y := c.Forward(exec.New(exec.CPU), x)
	if got := y.AtF32(0, 2, 2); got != 9 {
		t.Fatalf("interior = %g, want 9", got)
	}
	if got := y.AtF32(0, 0, 0); got != 4 { // corner sees 2x2 ones
		t.Fatalf("corner = %g, want 4", got)
	}
}

func TestConvStridePad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(4, 3, 3, 3, 2, 1, rng)
	shape, err := c.OutShape([]int{3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 4 || shape[1] != 4 || shape[2] != 4 {
		t.Fatalf("OutShape = %v", shape)
	}
	x := tensor.NewF32(3, 8, 8)
	y := c.Forward(exec.New(exec.CPU), x)
	if y.Shape[1] != 4 || y.Shape[2] != 4 {
		t.Fatalf("forward shape %v", y.Shape)
	}
}

func TestConvRejectsWrongChannels(t *testing.T) {
	c := NewConv2D(2, 3, 3, 3, 1, 1, rand.New(rand.NewSource(1)))
	if _, err := c.OutShape([]int{1, 8, 8}); err == nil {
		t.Fatal("wrong channel count accepted")
	}
}

func TestReLU(t *testing.T) {
	x := tensor.FromF32([]float32{-1, 0, 2.5}, 3)
	y := ReLU{}.Forward(exec.New(exec.CPU), x)
	want := []float32{0, 0, 2.5}
	for i := range want {
		if y.F32s[i] != want[i] {
			t.Fatalf("relu[%d] = %g", i, y.F32s[i])
		}
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.FromF32([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}, 1, 4, 4)
	y := MaxPool2{}.Forward(exec.New(exec.CPU), x)
	want := []float32{4, 8, 9, 4}
	for i := range want {
		if y.F32s[i] != want[i] {
			t.Fatalf("pool[%d] = %g, want %g", i, y.F32s[i], want[i])
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := tensor.FromF32([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	y := GlobalAvgPool{}.Forward(exec.New(exec.CPU), x)
	if y.F32s[0] != 2.5 || y.F32s[1] != 25 {
		t.Fatalf("gap = %v", y.F32s)
	}
}

func TestDense(t *testing.T) {
	d := &Dense{In: 2, Out: 2, W: []float32{1, 2, 3, 4}, B: []float32{0.5, -0.5}}
	x := tensor.FromF32([]float32{1, 1}, 2)
	y := d.Forward(exec.New(exec.CPU), x)
	if y.F32s[0] != 4.5 || y.F32s[1] != 5.5 {
		t.Fatalf("dense = %v", y.F32s)
	}
}

func TestBackboneDeterministicAndDeviceAgnostic(t *testing.T) {
	net1 := NewBackbone(32, 7)
	net2 := NewBackbone(32, 7)
	pix := make([]uint8, 32*32*3)
	rand.New(rand.NewSource(5)).Read(pix)
	x := ImageToCHW(pix, 32, 32)

	cpuOut := net1.Forward(exec.New(exec.CPU), x)
	sameSeed := net2.Forward(exec.New(exec.CPU), x)
	avxOut := net1.Forward(exec.New(exec.AVX), x)

	if len(cpuOut.F32s) != 32 {
		t.Fatalf("backbone output dim %d", len(cpuOut.F32s))
	}
	for i := range cpuOut.F32s {
		if cpuOut.F32s[i] != sameSeed.F32s[i] {
			t.Fatal("same seed, different output")
		}
		if math.Abs(float64(cpuOut.F32s[i]-avxOut.F32s[i])) > 1e-4 {
			t.Fatalf("CPU/AVX divergence at %d: %g vs %g", i, cpuOut.F32s[i], avxOut.F32s[i])
		}
	}

	other := NewBackbone(32, 8).Forward(exec.New(exec.CPU), x)
	diff := false
	for i := range cpuOut.F32s {
		if cpuOut.F32s[i] != other.F32s[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestNetworkOutShapeValidation(t *testing.T) {
	net := NewBackbone(16, 1)
	if _, err := net.OutShape([]int{3, 32, 32}); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if _, err := net.OutShape([]int{1, 32, 32}); err == nil {
		t.Fatal("wrong channels accepted")
	}
	if _, err := net.OutShape([]int{3, 2, 2}); err == nil {
		t.Fatal("too-small input accepted")
	}
}

func TestImageToCHW(t *testing.T) {
	pix := []uint8{255, 0, 0, 0, 255, 0} // two pixels: red, green (1x2? w=2,h=1)
	x := ImageToCHW(pix, 2, 1)
	if x.AtF32(0, 0, 0) != 1 || x.AtF32(1, 0, 1) != 1 {
		t.Fatalf("CHW conversion wrong: %v", x.F32s)
	}
	if x.AtF32(0, 0, 1) != 0 || x.AtF32(2, 0, 0) != 0 {
		t.Fatal("CHW zeros wrong")
	}
}
