package core

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
)

// TestSimCostMonotone checks the cost model's sanity properties: cost is
// non-decreasing in relation sizes and dimensionality for every method.
func TestSimCostMonotone(t *testing.T) {
	cm := DefaultCostModel()
	methods := []SimMethod{SimNested, SimBatched, SimOnTheFly, SimIndexed}
	f := func(nL, nR, dim uint16) bool {
		l, r, d := int(nL%5000)+1, int(nR%5000)+1, int(dim%256)+1
		for _, m := range methods {
			base := cm.simCost(m, exec.CPU, l, r, d)
			if base < 0 {
				return false
			}
			if cm.simCost(m, exec.CPU, l*2, r, d) < base {
				return false
			}
			if cm.simCost(m, exec.CPU, l, r*2, d) < base {
				return false
			}
			if cm.simCost(m, exec.CPU, l, r, d*2) < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSimCostNonLinearity: doubling the ball-tree build side beyond the
// inflation knee should more than double probe-side cost growth (Figure 7's
// non-linearity is encoded in the model).
func TestSimCostNonLinearity(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.simCost(SimIndexed, exec.CPU, 1000, 2000, 64)
	big := cm.simCost(SimIndexed, exec.CPU, 1000, 64000, 64)
	if big <= small {
		t.Fatalf("indexed cost did not grow with build side: %g vs %g", small, big)
	}
	// Pure log growth would give factor log(64000)/log(2000) ~ 1.45; the
	// non-linear inflation should push it past 2.
	if big/small < 2 {
		t.Fatalf("non-linearity too weak: factor %.2f", big/small)
	}
}

// TestPlanPrefersIndexAtScale: for large clustered joins with an index
// available, the planner must not pick the scalar nested loop.
func TestPlanPrefersIndexAtScale(t *testing.T) {
	cm := DefaultCostModel()
	for _, n := range []int{10000, 50000, 200000} {
		p := cm.PlanSimilarityJoin(n, n, 128, true)
		if p.Method == SimNested {
			t.Fatalf("n=%d: picked nested loop (%s)", n, p.Explain)
		}
	}
}

// TestPlanSmallJoinAvoidsOffload: tiny joins must stay on CPU regardless
// of index availability (launch overhead dominates).
func TestPlanSmallJoinAvoidsOffload(t *testing.T) {
	cm := DefaultCostModel()
	p := cm.PlanSimilarityJoin(8, 8, 16, false)
	if p.Device == exec.GPU {
		t.Fatalf("tiny join offloaded: %+v", p)
	}
	if p.EstCost <= 0 {
		t.Fatalf("estimate %f", p.EstCost)
	}
}

func TestPlanModeStrings(t *testing.T) {
	if PerformanceFirst.String() != "performance-first" || AccuracyFirst.String() != "accuracy-first" {
		t.Fatal("PlanMode strings wrong")
	}
}

func TestFilterMethodStrings(t *testing.T) {
	for m, want := range map[FilterMethod]string{
		FilterScan:       "scan-filter",
		FilterHashIndex:  "hash-index",
		FilterBTreeIndex: "btree-index",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestExplainListsAllCandidates(t *testing.T) {
	cm := DefaultCostModel()
	p := cm.PlanSimilarityJoin(100, 100, 64, true)
	for _, want := range []string{"nested-loop", "batched-all-pairs", "on-the-fly-balltree", "prebuilt-balltree"} {
		if !contains(p.Explain, want) {
			t.Fatalf("explain missing %q: %s", want, p.Explain)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
