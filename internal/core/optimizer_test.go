package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/exec"
)

// TestSimCostMonotone checks the cost model's sanity properties: cost is
// non-decreasing in relation sizes and dimensionality for every method.
func TestSimCostMonotone(t *testing.T) {
	cm := DefaultCostModel()
	methods := []SimMethod{SimNested, SimBatched, SimOnTheFly, SimIndexed}
	f := func(nL, nR, dim uint16) bool {
		l, r, d := int(nL%5000)+1, int(nR%5000)+1, int(dim%256)+1
		for _, m := range methods {
			base := cm.simCost(m, exec.CPU, l, r, d)
			if base < 0 {
				return false
			}
			if cm.simCost(m, exec.CPU, l*2, r, d) < base {
				return false
			}
			if cm.simCost(m, exec.CPU, l, r*2, d) < base {
				return false
			}
			if cm.simCost(m, exec.CPU, l, r, d*2) < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSimCostNonLinearity: doubling the ball-tree build side beyond the
// inflation knee should more than double probe-side cost growth (Figure 7's
// non-linearity is encoded in the model).
func TestSimCostNonLinearity(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.simCost(SimIndexed, exec.CPU, 1000, 2000, 64)
	big := cm.simCost(SimIndexed, exec.CPU, 1000, 64000, 64)
	if big <= small {
		t.Fatalf("indexed cost did not grow with build side: %g vs %g", small, big)
	}
	// Pure log growth would give factor log(64000)/log(2000) ~ 1.45; the
	// non-linear inflation should push it past 2.
	if big/small < 2 {
		t.Fatalf("non-linearity too weak: factor %.2f", big/small)
	}
}

// TestPlanPrefersIndexAtScale: for large clustered joins with an index
// available, the planner must not pick the scalar nested loop.
func TestPlanPrefersIndexAtScale(t *testing.T) {
	cm := DefaultCostModel()
	for _, n := range []int{10000, 50000, 200000} {
		p := cm.PlanSimilarityJoin(n, n, 128, true)
		if p.Method == SimNested {
			t.Fatalf("n=%d: picked nested loop (%s)", n, p.Explain)
		}
	}
}

// TestPlanSmallJoinAvoidsOffload: tiny joins must stay on CPU regardless
// of index availability (launch overhead dominates).
func TestPlanSmallJoinAvoidsOffload(t *testing.T) {
	cm := DefaultCostModel()
	p := cm.PlanSimilarityJoin(8, 8, 16, false)
	if p.Device == exec.GPU {
		t.Fatalf("tiny join offloaded: %+v", p)
	}
	if p.EstCost <= 0 {
		t.Fatalf("estimate %f", p.EstCost)
	}
}

func TestPlanModeStrings(t *testing.T) {
	if PerformanceFirst.String() != "performance-first" || AccuracyFirst.String() != "accuracy-first" {
		t.Fatal("PlanMode strings wrong")
	}
}

func TestFilterMethodStrings(t *testing.T) {
	for m, want := range map[FilterMethod]string{
		FilterScan:       "scan-filter",
		FilterHashIndex:  "hash-index",
		FilterBTreeIndex: "btree-index",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestExplainListsAllCandidates(t *testing.T) {
	cm := DefaultCostModel()
	p := cm.PlanSimilarityJoin(100, 100, 64, true)
	for _, want := range []string{"nested-loop", "batched-all-pairs", "on-the-fly-balltree", "prebuilt-balltree"} {
		if !contains(p.Explain, want) {
			t.Fatalf("explain missing %q: %s", want, p.Explain)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPlanKNNObservedOverride: the kNN planner follows the same
// feedback discipline as PlanFilter — static choice until both sides of
// a comparison carry enough ObserveKNN samples, override only for a
// strictly cheaper path the request's semantics allow, and EstCost
// always quoted from the static formulas.
func TestPlanKNNObservedOverride(t *testing.T) {
	cm := DefaultCostModel()
	const n, dim, k = 200000, 64, 10
	cold := cm.PlanKNN(n, dim, k, true, 0, false)
	if cold.Method != KNNIndex || cold.Mode != VecExact {
		t.Fatalf("cold exact plan = %v/%v, want index/exact", cold.Method, cold.Mode)
	}
	// One-sided evidence: the static winner observed pathologically slow,
	// the scan unobserved — the plan must not flip.
	for i := 0; i < minFilterObs; i++ {
		cm.ObserveKNN(KNNIndex, VecExact, n, dim, k, time.Second)
	}
	if p := cm.PlanKNN(n, dim, k, true, 0, false); p.Method != KNNIndex || p.Mode != VecExact {
		t.Fatalf("plan flipped on partially-observed comparison: %v/%v", p.Method, p.Mode)
	}
	// Both sides observed, scan measurably cheaper: override.
	for i := 0; i < minFilterObs; i++ {
		cm.ObserveKNN(KNNScan, 0, n, dim, k, time.Microsecond)
	}
	p := cm.PlanKNN(n, dim, k, true, 0, false)
	if p.Method != KNNScan {
		t.Fatalf("observed-cheaper scan not chosen: %v/%v", p.Method, p.Mode)
	}
	// EstCost is still the deterministic static formula for the winner.
	if want := float64(n)*float64(dim)*cm.CDist + float64(k)*cm.CFetch; math.Abs(p.EstCost-want) > 1e-15 {
		t.Fatalf("EstCost drifted from static formula: %g, want %g", p.EstCost, want)
	}
	// forceIndex still pins the index path regardless of observations.
	if p := cm.PlanKNN(n, dim, k, true, 0, true); p.Method != KNNIndex {
		t.Fatalf("forceIndex overridden by observations: %v", p.Method)
	}
	// The approx gate survives feedback: an exact request never takes the
	// approx mode, however fast it measured.
	for i := 0; i < minFilterObs; i++ {
		cm.ObserveKNN(KNNIndex, VecApprox, n, dim, k, time.Nanosecond)
	}
	if p := cm.PlanKNN(n, dim, k, true, 0, false); p.Mode == VecApprox {
		t.Fatal("approx mode chosen despite exact requirement")
	}
	// With approx admissible it wins on its observed cost.
	if p := cm.PlanKNN(n, dim, k, false, 0, false); p.Method != KNNIndex || p.Mode != VecApprox {
		t.Fatalf("observed-cheapest approx not chosen: %v/%v", p.Method, p.Mode)
	}
	// Degenerate durations are dropped.
	cm2 := DefaultCostModel()
	cm2.ObserveKNN(KNNScan, 0, n, dim, k, 0)
	if _, ok := cm2.ObservedKNNUnit(KNNScan, 0); ok {
		t.Fatal("zero-duration observation counted")
	}
}
