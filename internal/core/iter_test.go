package core

import (
	"errors"
	"fmt"
	"testing"
)

func intPatches(n int) []*Patch {
	ps := make([]*Patch, n)
	for i := range ps {
		ps[i] = &Patch{ID: PatchID(i + 1), Meta: Metadata{"i": IntV(int64(i))}}
	}
	return ps
}

func TestSliceIteratorAndDrain(t *testing.T) {
	it := FromPatches(intPatches(5))
	ts, err := Drain(it)
	if err != nil || len(ts) != 5 {
		t.Fatalf("Drain: %d, %v", len(ts), err)
	}
	// Drained iterator yields nothing further.
	_, ok, _ := it.Next()
	if ok {
		t.Fatal("iterator alive after Drain")
	}
}

func TestFuncIteratorCloseIdempotent(t *testing.T) {
	closed := 0
	it := NewFuncIterator(func() (Tuple, bool, error) { return nil, false, nil },
		func() error { closed++; return nil })
	it.Close()
	it.Close()
	if closed != 1 {
		t.Fatalf("closer ran %d times", closed)
	}
	// After close, Next returns exhausted.
	if _, ok, _ := it.Next(); ok {
		t.Fatal("closed iterator yielded")
	}
}

func TestTransformFanOutAndDrop(t *testing.T) {
	in := FromPatches(intPatches(4))
	out := Transform(in, func(tp Tuple) ([]Tuple, error) {
		i := tp[0].Meta["i"].I
		if i%2 == 0 {
			return nil, nil // drop evens
		}
		// Fan odd tuples out three ways.
		return []Tuple{tp, tp, tp}, nil
	})
	ts, err := Drain(out)
	if err != nil || len(ts) != 6 {
		t.Fatalf("fan-out drain: %d, %v", len(ts), err)
	}
}

func TestTransformPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	in := FromPatches(intPatches(3))
	out := Transform(in, func(Tuple) ([]Tuple, error) { return nil, boom })
	if _, err := Drain(out); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBatchTransformBatchesAndOrders(t *testing.T) {
	in := FromPatches(intPatches(10))
	var batchSizes []int
	out := BatchTransform(in, 4, func(batch []Tuple) error {
		batchSizes = append(batchSizes, len(batch))
		for _, tp := range batch {
			tp[0].Meta["seen"] = IntV(1)
		}
		return nil
	})
	ts, err := Drain(out)
	if err != nil || len(ts) != 10 {
		t.Fatalf("drain: %d, %v", len(ts), err)
	}
	if fmt.Sprint(batchSizes) != "[4 4 2]" {
		t.Fatalf("batch sizes %v", batchSizes)
	}
	for i, tp := range ts {
		if tp[0].Meta["i"].I != int64(i) {
			t.Fatalf("order broken at %d", i)
		}
		if tp[0].Meta["seen"].I != 1 {
			t.Fatalf("tuple %d not processed", i)
		}
	}
}

func TestBatchTransformError(t *testing.T) {
	boom := errors.New("boom")
	out := BatchTransform(FromPatches(intPatches(3)), 2, func([]Tuple) error { return boom })
	if _, err := Drain(out); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCountAndLimitCompose(t *testing.T) {
	n, err := Count(Limit(FromPatches(intPatches(100)), 7))
	if err != nil || n != 7 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// Limit larger than stream.
	n, _ = Count(Limit(FromPatches(intPatches(3)), 10))
	if n != 3 {
		t.Fatalf("over-limit count = %d", n)
	}
}

func TestDrainPatchesSkipsEmptyTuples(t *testing.T) {
	ts := []Tuple{{intPatches(1)[0]}, {}, {intPatches(1)[0]}}
	ps, err := DrainPatches(NewSliceIterator(ts))
	if err != nil || len(ps) != 2 {
		t.Fatalf("%d, %v", len(ps), err)
	}
}
