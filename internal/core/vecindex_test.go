package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/exec"
)

// Vector-index contract tests: exact mode byte-identical to the brute
// scan (tie boundaries and extended-tail states included), approximate
// mode recall-bounded against the brute golden, and the maintenance
// counters distinguishing prefix-certified extensions from rebuilds.

// vecTestPatch generates row i of a clustered vector fixture: i%clusters
// picks a well-separated center, a tiny deterministic jitter spreads the
// members, and a few rows per cluster repeat exactly (distance ties).
func vecTestPatch(i, dim, clusters int) *Patch {
	v := make([]float32, dim)
	c := i % clusters
	for d := range v {
		v[d] = float32((c*31+d*17)%101)/101.0*10 + float32(((i/clusters)%5)*((d*13)%7))*0.003
	}
	return &Patch{
		Ref:  Ref{Source: "vecfix", Frame: uint64(i)},
		Meta: Metadata{"emb": VecV(v)},
	}
}

func vecTestCollection(t *testing.T, rows, dim, clusters int) (*DB, *Collection) {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "vec.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	col, err := db.CreateCollection("vec.fix", Schema{
		Data:   Pixels(0, 0),
		Fields: []Field{{Name: "emb", Kind: KindVec, VecDim: dim}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(vecTestPatch(i, dim, clusters)); err != nil {
			t.Fatal(err)
		}
	}
	return db, col
}

func vecTestQuery(qi, dim, clusters int) []float32 {
	q := vecTestPatch(qi*7+3, dim, clusters).Meta["emb"].V
	out := append([]float32(nil), q...)
	out[0] += 0.001 // off-grid: the query is near, not on, a stored point
	return out
}

func neighborsEqual(a, b []VecNeighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestVectorIndexExactMatchesBrute: exact mode is the brute scan, byte
// for byte, across k values, tie-heavy data, and every maintenance
// state (fresh build, linear tail after appends, re-treed).
func TestVectorIndexExactMatchesBrute(t *testing.T) {
	const dim, clusters = 8, 7
	_, col := vecTestCollection(t, 500, dim, clusters)
	check := func(stage string) {
		t.Helper()
		snap, ver, err := col.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		vi, err := col.VectorIndexAt(snap, ver, "emb", VecExact)
		if err != nil {
			t.Fatal(err)
		}
		if vi.BuiltVersion() != ver || vi.Len() != len(snap) {
			t.Fatalf("%s: index at version %d/%d rows, snapshot %d/%d",
				stage, vi.BuiltVersion(), vi.Len(), ver, len(snap))
		}
		for qi := 0; qi < 12; qi++ {
			q := vecTestQuery(qi, dim, clusters)
			for _, k := range []int{1, 3, 10, 25, len(snap) + 5} {
				got := vi.KNN(q, k)
				want := BruteKNN(snap, "emb", q, k)
				if !neighborsEqual(got, want) {
					t.Fatalf("%s: q%d k=%d: index %v != brute %v", stage, qi, k, got, want)
				}
			}
		}
	}
	check("fresh build")
	// A small append keeps the extension in the linear tail.
	for i := 500; i < 560; i++ {
		if err := col.Append(vecTestPatch(i, dim, clusters)); err != nil {
			t.Fatal(err)
		}
	}
	check("extended tail")
	// A large append forces the tail past its bound and re-trees.
	for i := 560; i < 1200; i++ {
		if err := col.Append(vecTestPatch(i, dim, clusters)); err != nil {
			t.Fatal(err)
		}
	}
	check("re-treed")
	if k0 := (&VectorIndex{}).KNN(vecTestQuery(0, dim, clusters), 0); k0 != nil {
		t.Fatalf("k=0 returned %v", k0)
	}
}

// TestVectorIndexLSHRecall: the approximate mode's recall against the
// brute golden stays at or above the default floor across
// dimensionalities and collection sizes. Recall is tie-tolerant: any
// returned neighbor no farther than the golden kth distance counts.
func TestVectorIndexLSHRecall(t *testing.T) {
	const k, queries = 10, 20
	for _, tc := range []struct{ rows, dim, clusters int }{
		{500, 8, 7},
		{2000, 8, 24},
		{1200, 32, 16},
		{3000, 32, 48},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.rows, tc.dim), func(t *testing.T) {
			_, col := vecTestCollection(t, tc.rows, tc.dim, tc.clusters)
			snap, ver, err := col.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			vi, err := col.VectorIndexAt(snap, ver, "emb", VecApprox)
			if err != nil {
				t.Fatal(err)
			}
			hits, want := 0, 0
			for qi := 0; qi < queries; qi++ {
				q := vecTestQuery(qi, tc.dim, tc.clusters)
				golden := BruteKNN(snap, "emb", q, k)
				if len(golden) == 0 {
					continue
				}
				dk := golden[len(golden)-1].Dist
				want += len(golden)
				for _, n := range vi.KNN(q, k) {
					if n.Dist > dk {
						t.Fatalf("q%d: approx neighbor %d reports dist %g beyond its own rank window %g while claiming top-%d",
							qi, n.ID, n.Dist, dk, k)
					}
					hits++
					// Approximate distances must still be exact.
					p, err := col.Get(n.ID)
					if err != nil {
						t.Fatal(err)
					}
					if d := VecDist(p.Meta["emb"].V, q); d != n.Dist {
						t.Fatalf("q%d: neighbor %d reported dist %g, true dist %g", qi, n.ID, n.Dist, d)
					}
				}
			}
			recall := float64(hits) / float64(want)
			t.Logf("n=%d d=%d: measured recall %.3f", tc.rows, tc.dim, recall)
			if recall < ANNDefaultRecall {
				t.Fatalf("recall %.3f below the %.2f floor", recall, ANNDefaultRecall)
			}
		})
	}
}

// TestVectorIndexMaintenanceCounters: version-stable reuse costs
// nothing, prefix-certified appends extend, invalidation and first
// touches rebuild.
func TestVectorIndexMaintenanceCounters(t *testing.T) {
	const dim, clusters = 8, 7
	db, col := vecTestCollection(t, 100, dim, clusters)
	at := func() (*VectorIndex, []*Patch) {
		t.Helper()
		snap, ver, err := col.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		vi, err := col.VectorIndexAt(snap, ver, "emb", VecExact)
		if err != nil {
			t.Fatal(err)
		}
		return vi, snap
	}
	e0, r0 := db.IndexExtendStats()

	vi1, _ := at() // first touch: full build
	if e, r := db.IndexExtendStats(); e != e0 || r != r0+1 {
		t.Fatalf("first touch: extends %d rebuilds %d, want %d/%d", e, r, e0, r0+1)
	}
	vi2, _ := at() // same version: cache hit, no counter movement
	if vi2 != vi1 {
		t.Fatal("version-stable lookup did not return the cached index")
	}
	if e, r := db.IndexExtendStats(); e != e0 || r != r0+1 {
		t.Fatalf("cache hit moved counters: extends %d rebuilds %d", e, r)
	}

	for i := 100; i < 130; i++ {
		if err := col.Append(vecTestPatch(i, dim, clusters)); err != nil {
			t.Fatal(err)
		}
	}
	vi3, snap3 := at() // prefix-certified append: incremental extension
	if e, r := db.IndexExtendStats(); e != e0+1 || r != r0+1 {
		t.Fatalf("append: extends %d rebuilds %d, want %d/%d", e, r, e0+1, r0+1)
	}
	if vi3.Len() != len(snap3) {
		t.Fatalf("extended index covers %d of %d rows", vi3.Len(), len(snap3))
	}

	col.InvalidateVectorIndexes()
	at() // cache dropped: full rebuild
	if e, r := db.IndexExtendStats(); e != e0+1 || r != r0+2 {
		t.Fatalf("post-invalidate: extends %d rebuilds %d, want %d/%d", e, r, e0+1, r0+2)
	}

	// A second mode is its own cache entry and build.
	snap, ver, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.VectorIndexAt(snap, ver, "emb", VecApprox); err != nil {
		t.Fatal(err)
	}
	if e, r := db.IndexExtendStats(); e != e0+1 || r != r0+3 {
		t.Fatalf("approx first touch: extends %d rebuilds %d, want %d/%d", e, r, e0+1, r0+3)
	}
}
