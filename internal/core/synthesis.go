package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file implements the paper's §4 "Future Work: Pipeline Synthesis":
// given a library of registered generators and transformers — each scored
// with a precision/recall profile and a latency estimate — declaratively
// choose the pipeline that satisfies a query's accuracy and latency
// constraints. The type system makes this possible: each component
// declares what labels/fields it can produce, so the synthesizer knows
// which components are interchangeable for a requirement (§4.2's
// motivation).

// ComponentKind distinguishes patch generators from transformers.
type ComponentKind int

// Registered component kinds.
const (
	KindGenerator ComponentKind = iota + 1
	KindTransformer
)

// Component is a registered pipeline stage with its measured profile.
type Component struct {
	Name string
	Kind ComponentKind
	// Produces lists the metadata fields this component adds.
	Produces []string
	// Labels is the closed label domain for generators that classify
	// (empty otherwise). A requirement for a label outside every
	// component's domain is unsatisfiable — detected at synthesis time.
	Labels []string
	// Requires lists fields that must already exist (transformer inputs).
	Requires []string
	// Precision/Recall score the component on its reference dataset.
	Precision, Recall float64
	// PerPatch is the measured per-input latency.
	PerPatch time.Duration
	// Build wires the component into an iterator pipeline.
	Build func(Iterator) Iterator
}

// Library is the registry the synthesizer draws from.
type Library struct {
	components []Component
}

// Register adds a component; later registrations with the same name
// replace earlier ones.
func (l *Library) Register(c Component) error {
	if c.Name == "" || c.Kind == 0 {
		return fmt.Errorf("core: component needs a name and kind")
	}
	if c.Build == nil {
		return fmt.Errorf("core: component %q needs a Build function", c.Name)
	}
	for i := range l.components {
		if l.components[i].Name == c.Name {
			l.components[i] = c
			return nil
		}
	}
	l.components = append(l.components, c)
	return nil
}

// Components lists the registry in registration order.
func (l *Library) Components() []Component {
	return append([]Component(nil), l.components...)
}

// Requirement states what a query needs from the ETL pipeline.
type Requirement struct {
	// NeedFields are the metadata fields the query consumes.
	NeedFields []string
	// NeedLabel, when set, requires a generator whose label domain
	// contains it (the paper's car-detector example).
	NeedLabel string
	// MinPrecision/MinRecall bound the acceptable accuracy profile of the
	// chosen generator.
	MinPrecision, MinRecall float64
	// MaxPerPatch bounds total per-patch latency (0 = unbounded).
	MaxPerPatch time.Duration
}

// SynthesizedPipeline is the synthesizer's output.
type SynthesizedPipeline struct {
	Generator    Component
	Transformers []Component
	// TotalPerPatch is the summed latency estimate.
	TotalPerPatch time.Duration
	// Explain records why this pipeline was chosen.
	Explain string
}

// Build wires the synthesized pipeline over an input iterator.
func (sp SynthesizedPipeline) Build(in Iterator) Iterator {
	out := sp.Generator.Build(in)
	for _, t := range sp.Transformers {
		out = t.Build(out)
	}
	return out
}

// Synthesize picks the cheapest generator satisfying the label and
// accuracy requirements, then adds the cheapest transformer chain covering
// the required fields (resolving transformer prerequisites transitively).
func (l *Library) Synthesize(req Requirement) (SynthesizedPipeline, error) {
	// 1. Candidate generators: label domain and accuracy floor.
	var gens []Component
	for _, c := range l.components {
		if c.Kind != KindGenerator {
			continue
		}
		if req.NeedLabel != "" && !inDomain(req.NeedLabel, c.Labels) {
			continue
		}
		if c.Precision < req.MinPrecision || c.Recall < req.MinRecall {
			continue
		}
		gens = append(gens, c)
	}
	if len(gens) == 0 {
		if req.NeedLabel != "" {
			return SynthesizedPipeline{}, fmt.Errorf(
				"core: no registered generator can produce label %q at precision >= %.2f, recall >= %.2f",
				req.NeedLabel, req.MinPrecision, req.MinRecall)
		}
		return SynthesizedPipeline{}, fmt.Errorf(
			"core: no registered generator meets precision >= %.2f, recall >= %.2f",
			req.MinPrecision, req.MinRecall)
	}
	// Cheapest first; ties broken toward higher recall (the scarce
	// resource in detection pipelines).
	sort.SliceStable(gens, func(i, j int) bool {
		if gens[i].PerPatch != gens[j].PerPatch {
			return gens[i].PerPatch < gens[j].PerPatch
		}
		return gens[i].Recall > gens[j].Recall
	})

	var lastErr error
	for _, gen := range gens {
		chain, err := l.coverFields(gen, req.NeedFields)
		if err != nil {
			lastErr = err
			continue
		}
		total := gen.PerPatch
		for _, t := range chain {
			total += t.PerPatch
		}
		if req.MaxPerPatch > 0 && total > req.MaxPerPatch {
			lastErr = fmt.Errorf("core: cheapest pipeline via %q needs %v per patch, budget is %v",
				gen.Name, total, req.MaxPerPatch)
			continue
		}
		names := make([]string, 0, len(chain))
		for _, t := range chain {
			names = append(names, t.Name)
		}
		return SynthesizedPipeline{
			Generator:     gen,
			Transformers:  chain,
			TotalPerPatch: total,
			Explain: fmt.Sprintf("generator %s (P=%.2f R=%.2f, %v/patch) + transformers %v",
				gen.Name, gen.Precision, gen.Recall, gen.PerPatch, names),
		}, nil
	}
	return SynthesizedPipeline{}, lastErr
}

// coverFields greedily selects transformers until every needed field is
// produced, resolving Requires prerequisites; cheapest producer first.
func (l *Library) coverFields(gen Component, need []string) ([]Component, error) {
	have := map[string]bool{}
	for _, f := range gen.Produces {
		have[f] = true
	}
	var chain []Component
	pending := append([]string(nil), need...)
	for iter := 0; len(pending) > 0; iter++ {
		if iter > len(l.components)+len(need)+4 {
			return nil, fmt.Errorf("core: transformer prerequisite cycle while covering %v", pending)
		}
		field := pending[0]
		pending = pending[1:]
		if have[field] {
			continue
		}
		best := -1
		bestLatency := time.Duration(math.MaxInt64)
		for i, c := range l.components {
			if c.Kind != KindTransformer {
				continue
			}
			if !inDomain(field, c.Produces) {
				continue
			}
			if c.PerPatch < bestLatency {
				best, bestLatency = i, c.PerPatch
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: no registered transformer produces field %q", field)
		}
		c := l.components[best]
		// Prerequisites first, then the transformer's own outputs.
		for _, r := range c.Requires {
			if !have[r] {
				pending = append(pending, r)
			}
		}
		chain = append(chain, c)
		for _, f := range c.Produces {
			have[f] = true
		}
	}
	// Topologically order the chain so prerequisites run before their
	// consumers (Kahn's algorithm over the Requires/Produces edges).
	chain = dedupeComponents(chain)
	return topoSort(chain)
}

func dependsOn(a, b Component) bool {
	for _, r := range a.Requires {
		if inDomain(r, b.Produces) {
			return true
		}
	}
	return false
}

func topoSort(chain []Component) ([]Component, error) {
	indeg := make([]int, len(chain))
	adj := make([][]int, len(chain))
	for i := range chain {
		for j := range chain {
			if i != j && dependsOn(chain[j], chain[i]) {
				adj[i] = append(adj[i], j) // i must run before j
				indeg[j]++
			}
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue) // deterministic among independents
	out := make([]Component, 0, len(chain))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		out = append(out, chain[i])
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(out) != len(chain) {
		return nil, fmt.Errorf("core: transformer dependency cycle in synthesized chain")
	}
	return out, nil
}

func dedupeComponents(cs []Component) []Component {
	seen := map[string]bool{}
	out := cs[:0]
	for _, c := range cs {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c)
		}
	}
	return out
}
