package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/exec"
)

// This file is the visual query optimizer (§5.1 future work, §7.4): a
// cost-based physical planner over the engine's alternative operator
// implementations. The paper's central observations are encoded here:
// non-linear index-join costs (Figure 7), device placement with
// launch/transfer overheads (Figure 8), and the accuracy implications of
// plan order (Table 1), which the planner surfaces rather than hides.

// SimMethod is a physical implementation of the similarity join.
type SimMethod int

// Similarity-join physical operators.
const (
	SimNested     SimMethod = iota + 1 // all pairs, scalar
	SimBatched                         // all pairs, device-batched distance matrix
	SimOnTheFly                        // build ball tree on smaller side, probe
	SimIndexed                         // probe a prebuilt ball tree
	SimVecIndexed                      // probe the maintained per-collection vector index
)

func (m SimMethod) String() string {
	switch m {
	case SimNested:
		return "nested-loop"
	case SimBatched:
		return "batched-all-pairs"
	case SimOnTheFly:
		return "on-the-fly-balltree"
	case SimIndexed:
		return "prebuilt-balltree"
	case SimVecIndexed:
		return "join-index"
	default:
		return fmt.Sprintf("sim(%d)", int(m))
	}
}

// CostModel holds calibrated per-operation constants (seconds). The
// defaults are measured on the reference container; Calibrate refines the
// scalar-distance constant at runtime.
type CostModel struct {
	// CDist is the cost of one scalar distance component (per dimension).
	CDist float64
	// CDevFlop is the per-FLOP cost on each device for batched kernels.
	CDevFlop map[exec.Kind]float64
	// DevOverhead is the per-kernel fixed cost on each device.
	DevOverhead map[exec.Kind]time.Duration
	// CBuild scales ball-tree construction (per element per dim per log n).
	CBuild float64
	// ProbeAlpha captures the super-logarithmic growth of ball-tree probes
	// as the indexed relation grows (Figure 7's non-linearity): probe cost
	// multiplies by (n/1000)^ProbeAlpha beyond 1000 elements.
	ProbeAlpha float64
	// DimPenalty inflates ball-tree probe cost per dimension beyond 8
	// (pruning weakens in high dimensions).
	DimPenalty float64
	// CFetch is the cost of fetching one patch by id during index joins.
	CFetch float64

	// Observed per-unit filter costs (seconds), fed back by ObserveFilter
	// from executed selections. When an access path has enough samples,
	// FilterCost and PlanFilter price from these instead of the shipped
	// constants — the planner and the serving layer's admission gate then
	// quote the same observed-latency source.
	obsMu     sync.Mutex
	filterEst map[FilterMethod]*filterObs
	knnEst    map[knnObsKey]*filterObs
}

// knnObsKey identifies one kNN access path for observation feedback:
// the physical method plus, for the index, its access mode (mode is
// normalized to zero for scans).
type knnObsKey struct {
	method KNNMethod
	mode   VecIndexMode
}

// filterObs is one access path's measured per-unit cost.
type filterObs struct {
	perUnit float64 // EWMA, seconds per unit (row scanned or row fetched)
	samples int64
}

const (
	// filterObsAlpha is the EWMA weight of each new filter observation.
	filterObsAlpha = 0.2
	// minFilterObs is how many observations an access path needs before
	// its measured cost overrides the static constants in planning.
	minFilterObs = 8
	// estFilterSelectivity is the planner's matched-rows guess for an
	// equality probe when no statistics exist: 1/16 of the relation,
	// floored at one row.
	estFilterSelectivity = 16
)

// DefaultCostModel returns constants calibrated against the reference
// environment.
func DefaultCostModel() *CostModel {
	return &CostModel{
		CDist: 1.2e-9,
		CDevFlop: map[exec.Kind]float64{
			exec.CPU: 6e-10,
			exec.AVX: 1.5e-10,
			exec.GPU: 4e-11,
		},
		DevOverhead: map[exec.Kind]time.Duration{
			exec.CPU: 0,
			exec.AVX: 2 * time.Microsecond,
			exec.GPU: 200 * time.Microsecond,
		},
		CBuild:     2.5e-9,
		ProbeAlpha: 0.35,
		DimPenalty: 0.02,
		CFetch:     4e-6,
	}
}

// Calibrate measures the scalar distance constant with a short microbench
// and rescales the model's CPU-relative constants accordingly.
func (cm *CostModel) Calibrate() {
	const n, dim = 2000, 64
	a := make([]float32, n*dim)
	for i := range a {
		a[i] = float32(i%97) * 0.01
	}
	start := time.Now()
	var sink float32
	for i := 0; i < n; i++ {
		base := (i * dim) % (len(a) - dim)
		var s float32
		for d := 0; d < dim; d++ {
			diff := a[base+d] - a[d]
			s += diff * diff
		}
		sink += s
	}
	_ = sink
	perComponent := time.Since(start).Seconds() / float64(n*dim)
	if perComponent > 0 {
		ratio := perComponent / cm.CDist
		cm.CDist = perComponent
		cm.CBuild *= ratio
		cm.CDevFlop[exec.CPU] *= ratio
	}
}

// simCost estimates the wall time of one similarity-join method.
// nL/nR are the relation sizes, dim the vector dimensionality.
func (cm *CostModel) simCost(m SimMethod, dev exec.Kind, nL, nR, dim int) float64 {
	nf := float64(nL)
	mf := float64(nR)
	df := float64(dim)
	switch m {
	case SimNested:
		return nf * mf * df * cm.CDist
	case SimBatched:
		flops := 3 * nf * mf * df
		kernels := math.Ceil(nf / 256)
		bytesMoved := 4 * (nf*df + mf*df + nf*mf)
		transfer := 0.0
		if dev == exec.GPU {
			transfer = bytesMoved / 6e9
		}
		return flops*cm.CDevFlop[dev] + kernels*cm.DevOverhead[dev].Seconds() + transfer
	case SimOnTheFly, SimIndexed, SimVecIndexed:
		build, probe := mf, nf
		if m == SimOnTheFly && nf < mf {
			build, probe = nf, mf
		}
		buildCost := 0.0
		if m == SimOnTheFly {
			buildCost = cm.CBuild * build * df * math.Log2(build+2)
		}
		// Probe: log(build) balls visited, inflated non-linearly with size
		// and dimension (Figure 7).
		inflate := 1.0
		if build > 1000 {
			inflate = math.Pow(build/1000, cm.ProbeAlpha)
		}
		dimInflate := 1 + cm.DimPenalty*math.Max(0, df-8)
		perProbe := cm.CDist * df * 32 * math.Log2(build+2) * inflate * dimInflate
		return buildCost + probe*perProbe + probe*cm.CFetch
	}
	return math.Inf(1)
}

// SimJoinPlan is the optimizer's physical choice for a similarity join.
type SimJoinPlan struct {
	Method  SimMethod
	Device  exec.Kind
	EstCost float64
	// Explain records the costs of every alternative considered.
	Explain string
}

// PlanSimilarityJoin picks the cheapest physical operator for a
// similarity join of the given shape. hasIndex reports a prebuilt ball
// tree on the right side.
func (cm *CostModel) PlanSimilarityJoin(nL, nR, dim int, hasIndex bool) SimJoinPlan {
	type cand struct {
		m   SimMethod
		dev exec.Kind
	}
	cands := []cand{
		{SimNested, exec.CPU},
		{SimBatched, exec.CPU},
		{SimBatched, exec.AVX},
		{SimBatched, exec.GPU},
		{SimOnTheFly, exec.CPU},
	}
	if hasIndex {
		cands = append(cands, cand{SimIndexed, exec.CPU})
	}
	best := SimJoinPlan{EstCost: math.Inf(1)}
	explain := ""
	for _, c := range cands {
		cost := cm.simCost(c.m, c.dev, nL, nR, dim)
		explain += fmt.Sprintf("%s@%s=%.4fs ", c.m, c.dev, cost)
		if cost < best.EstCost {
			best = SimJoinPlan{Method: c.m, Device: c.dev, EstCost: cost}
		}
	}
	best.Explain = explain
	return best
}

// PlanSimilarityJoinVec is PlanSimilarityJoin extended with the
// maintained vector-index alternative: hasVecIndex reports a
// per-collection VectorIndex (exact mode) covering the right side's
// join field. It probes like a prebuilt ball tree — the same Figure 7
// non-linearity — but is maintained incrementally across appends
// instead of rebuilt per version, so its build cost never lands on the
// query being planned.
func (cm *CostModel) PlanSimilarityJoinVec(nL, nR, dim int, hasVecIndex bool) SimJoinPlan {
	best := cm.PlanSimilarityJoin(nL, nR, dim, false)
	if !hasVecIndex {
		return best
	}
	cost := cm.simCost(SimVecIndexed, exec.CPU, nL, nR, dim)
	explain := best.Explain + fmt.Sprintf("%s@%s=%.4fs ", SimVecIndexed, exec.CPU, cost)
	if cost < best.EstCost {
		best = SimJoinPlan{Method: SimVecIndexed, Device: exec.CPU, EstCost: cost}
	}
	best.Explain = explain
	return best
}

// KNNMethod is a physical implementation of a k-nearest-neighbor query.
type KNNMethod int

// KNN physical operators.
const (
	KNNScan  KNNMethod = iota + 1 // brute-force exact scan over the snapshot
	KNNIndex                      // probe the maintained vector index
)

func (m KNNMethod) String() string {
	switch m {
	case KNNScan:
		return "knn-scan"
	case KNNIndex:
		return "knn-index"
	default:
		return fmt.Sprintf("knn(%d)", int(m))
	}
}

// ANNDefaultRecall is the recall the approximate index shape
// (vecLSHTables x vecLSHBits) is tuned to deliver on clustered
// embedding workloads; a request with a recall floor above it forces
// the exact path.
const ANNDefaultRecall = 0.95

// knnCandFrac estimates the fraction of the relation an LSH probe
// verifies exactly (expected candidate-union size / n).
const knnCandFrac = 0.05

// KNNPlan is the optimizer's physical choice for a kNN query.
type KNNPlan struct {
	Method KNNMethod
	// Mode is the index access mode when Method == KNNIndex: exact
	// (balltree, brute-force-identical results) or approx (LSH,
	// recall-bounded).
	Mode    VecIndexMode
	EstCost float64
	// Explain records the costs of every alternative considered.
	Explain string
}

// PlanKNN picks the physical path for a k-nearest-neighbor query over n
// indexed vectors of dimensionality dim. exact forces results identical
// to the brute-force scan; recallFloor sets the minimum acceptable
// recall (0 = no floor) — above what the LSH shape promises, the
// planner stays exact. forceIndex pins the index path regardless of
// cost (the physical knob mirroring FilterSpec.UseIndex).
func (cm *CostModel) PlanKNN(n, dim, k int, exact bool, recallFloor float64, forceIndex bool) KNNPlan {
	nf, df, kf := float64(n), float64(dim), float64(k)
	// Wider result sets keep more balls live during the descent.
	frontier := 1 + math.Log2(kf+1)
	inflate := 1.0
	if n > 1000 {
		inflate = math.Pow(nf/1000, cm.ProbeAlpha)
	}
	dimInflate := 1 + cm.DimPenalty*math.Max(0, df-8)
	scanCost := nf*df*cm.CDist + kf*cm.CFetch
	exactCost := cm.CDist*df*32*math.Log2(nf+2)*inflate*dimInflate*frontier + kf*cm.CFetch
	hashCost := float64(vecLSHTables*vecLSHBits) * df * cm.CDist
	approxCost := hashCost + knnCandFrac*nf*df*cm.CDist + kf*cm.CFetch

	allowApprox := !exact && recallFloor <= ANNDefaultRecall
	best := KNNPlan{Method: KNNScan, EstCost: scanCost}
	if forceIndex {
		best = KNNPlan{Method: KNNIndex, Mode: VecExact, EstCost: exactCost}
	}
	explain := fmt.Sprintf("knn-scan=%.6fs knn-index[exact]=%.6fs ", scanCost, exactCost)
	if exactCost < best.EstCost {
		best = KNNPlan{Method: KNNIndex, Mode: VecExact, EstCost: exactCost}
	}
	if allowApprox {
		explain += fmt.Sprintf("knn-index[approx]=%.6fs ", approxCost)
		if approxCost < best.EstCost {
			best = KNNPlan{Method: KNNIndex, Mode: VecApprox, EstCost: approxCost}
		}
	}
	best.Explain = explain

	// Observed-latency override, the PlanFilter rule applied to kNN: the
	// static choice stands until both it and a challenger have enough
	// ObserveKNN samples, and only a strictly cheaper admissible path
	// (never a semantic change — forceIndex and the approx gate still
	// bound the candidate set) replaces it. EstCost stays the static
	// formula of whatever wins: replicas must quote deterministic costs.
	type knnCand struct {
		method KNNMethod
		mode   VecIndexMode
		est    float64
	}
	var cands []knnCand
	if !forceIndex {
		cands = append(cands, knnCand{KNNScan, 0, scanCost})
	}
	cands = append(cands, knnCand{KNNIndex, VecExact, exactCost})
	if allowApprox {
		cands = append(cands, knnCand{KNNIndex, VecApprox, approxCost})
	}
	if per, ok := cm.ObservedKNNUnit(best.Method, best.Mode); ok {
		bestObs := per * cm.knnUnits(best.Method, best.Mode, n, dim, k)
		for _, c := range cands {
			if c.method == best.Method && c.mode == best.Mode {
				continue
			}
			cper, cok := cm.ObservedKNNUnit(c.method, c.mode)
			if !cok {
				continue
			}
			if obs := cper * cm.knnUnits(c.method, c.mode, n, dim, k); obs < bestObs {
				best = KNNPlan{Method: c.method, Mode: c.mode, EstCost: c.est, Explain: explain}
				bestObs = obs
			}
		}
	}
	return best
}

// knnUnits is the work-unit count a kNN access path's per-unit cost
// multiplies — the static cost formulas stripped of their calibrated
// constants, so an EWMA over (latency / units) transfers across
// relation sizes, dimensionalities and k.
func (cm *CostModel) knnUnits(method KNNMethod, mode VecIndexMode, n, dim, k int) float64 {
	nf, df, kf := float64(n), float64(dim), float64(k)
	var u float64
	switch {
	case method == KNNScan:
		u = nf * df
	case mode == VecApprox:
		u = float64(vecLSHTables*vecLSHBits)*df + knnCandFrac*nf*df
	default:
		frontier := 1 + math.Log2(kf+1)
		inflate := 1.0
		if n > 1000 {
			inflate = math.Pow(nf/1000, cm.ProbeAlpha)
		}
		dimInflate := 1 + cm.DimPenalty*math.Max(0, df-8)
		u = df * 32 * math.Log2(nf+2) * inflate * dimInflate * frontier
	}
	return math.Max(u, 1)
}

// ObserveKNN folds one executed kNN query's measured latency back into
// the model as a per-unit EWMA for its access path, exactly as
// ObserveFilter does for selections. Safe for concurrent use;
// zero-duration observations are ignored.
func (cm *CostModel) ObserveKNN(method KNNMethod, mode VecIndexMode, n, dim, k int, dur time.Duration) {
	if dur <= 0 {
		return
	}
	if method == KNNScan {
		mode = 0
	}
	per := dur.Seconds() / cm.knnUnits(method, mode, n, dim, k)
	cm.obsMu.Lock()
	defer cm.obsMu.Unlock()
	if cm.knnEst == nil {
		cm.knnEst = make(map[knnObsKey]*filterObs)
	}
	key := knnObsKey{method, mode}
	ob := cm.knnEst[key]
	if ob == nil {
		cm.knnEst[key] = &filterObs{perUnit: per, samples: 1}
		return
	}
	ob.perUnit += filterObsAlpha * (per - ob.perUnit)
	ob.samples++
}

// ObservedKNNUnit reports a kNN access path's measured per-unit cost
// and whether enough samples back it to be trusted in planning.
func (cm *CostModel) ObservedKNNUnit(method KNNMethod, mode VecIndexMode) (float64, bool) {
	if method == KNNScan {
		mode = 0
	}
	cm.obsMu.Lock()
	defer cm.obsMu.Unlock()
	ob := cm.knnEst[knnObsKey{method, mode}]
	if ob == nil || ob.samples < minFilterObs {
		return 0, false
	}
	return ob.perUnit, true
}

// CacheAwareCost folds a result cache in front of a plan into its
// expected cost: every request pays the cache lookup, and only the miss
// fraction pays the plan itself. The serving layer feeds the observed
// hit rate in, so reported plan costs reflect cross-query reuse — a plan
// that looks expensive cold can be effectively free behind a warm cache,
// which is the paper's materialization argument restated as a cost.
func (cm *CostModel) CacheAwareCost(est, hitRate, lookup float64) float64 {
	if hitRate < 0 {
		hitRate = 0
	}
	if hitRate > 1 {
		hitRate = 1
	}
	return lookup + (1-hitRate)*est
}

// PlaceDevice picks the device for a batched kernel of the given FLOP and
// byte volume — the CPU/GPU balancing the paper calls the significant
// challenge (§7.4.2).
func (cm *CostModel) PlaceDevice(flops float64, bytesMoved float64, kernels int) exec.Kind {
	best := exec.CPU
	bestCost := math.Inf(1)
	for _, dev := range []exec.Kind{exec.CPU, exec.AVX, exec.GPU} {
		cost := flops*cm.CDevFlop[dev] + float64(kernels)*cm.DevOverhead[dev].Seconds()
		if dev == exec.GPU {
			cost += bytesMoved / 6e9
		}
		if cost < bestCost {
			best, bestCost = dev, cost
		}
	}
	return best
}

// FilterMethod is a physical implementation of a selection.
type FilterMethod int

// Selection physical operators.
const (
	FilterScan FilterMethod = iota + 1
	FilterHashIndex
	FilterBTreeIndex
	// FilterColumnScan evaluates the predicate block-at-a-time over the
	// collection's columnar projection (zone-map pruning + vectorized
	// compare), falling back to the row scan when the field has no
	// column. Purely physical: results are identical to FilterScan.
	FilterColumnScan
)

func (m FilterMethod) String() string {
	switch m {
	case FilterScan:
		return "scan-filter"
	case FilterHashIndex:
		return "hash-index"
	case FilterBTreeIndex:
		return "btree-index"
	case FilterColumnScan:
		return "column-scan"
	default:
		return fmt.Sprintf("filter(%d)", int(m))
	}
}

// Per-row scan cost constants (seconds), measured on the reference
// container: the iterator path pays an interface call, a metadata map
// lookup and a predicate closure per patch; the columnar path pays one
// typed array compare, with zone maps skipping whole blocks.
const (
	CRowScanSec = 2e-8
	CColScanSec = 2e-9
)

// filterUnits is the work-unit count an access path's per-unit cost
// multiplies: rows fetched for index probes, rows scanned otherwise.
func filterUnits(method FilterMethod, n, matched int) int {
	if method == FilterHashIndex || method == FilterBTreeIndex {
		return matched
	}
	return n
}

// ObserveFilter folds one executed selection's measured latency back
// into the model as a per-unit EWMA for its access path (units = rows
// fetched for index probes, rows scanned otherwise). Safe for
// concurrent use; zero-unit or zero-duration observations are ignored.
func (cm *CostModel) ObserveFilter(method FilterMethod, units int, dur time.Duration) {
	if units <= 0 || dur <= 0 {
		return
	}
	per := dur.Seconds() / float64(units)
	cm.obsMu.Lock()
	defer cm.obsMu.Unlock()
	if cm.filterEst == nil {
		cm.filterEst = make(map[FilterMethod]*filterObs)
	}
	ob := cm.filterEst[method]
	if ob == nil {
		cm.filterEst[method] = &filterObs{perUnit: per, samples: 1}
		return
	}
	ob.perUnit += filterObsAlpha * (per - ob.perUnit)
	ob.samples++
}

// ObservedFilterUnit reports an access path's measured per-unit cost
// and whether enough samples back it to be trusted in planning.
func (cm *CostModel) ObservedFilterUnit(method FilterMethod) (float64, bool) {
	cm.obsMu.Lock()
	defer cm.obsMu.Unlock()
	ob := cm.filterEst[method]
	if ob == nil || ob.samples < minFilterObs {
		return 0, false
	}
	return ob.perUnit, true
}

// FilterCost estimates a selection's cost over n rows with the given
// access path (matched is the expected output size for index fetches).
// Deliberately static: response cost estimates must be deterministic
// functions of the plan and snapshot (replicas answering the same query
// return byte-identical responses). Observed-latency pricing lives in
// ObservedFilterCost.
func (cm *CostModel) FilterCost(method FilterMethod, n, matched int) float64 {
	switch method {
	case FilterHashIndex, FilterBTreeIndex:
		return float64(matched) * cm.CFetch
	case FilterColumnScan:
		return float64(n) * CColScanSec
	default:
		return float64(n) * CRowScanSec
	}
}

// ObservedFilterCost prices a selection from measured behavior: paths
// with enough ObserveFilter samples quote their per-unit EWMA, cold
// paths fall back to the static FilterCost constants. This is the
// estimate admission control and plan choice consume — unlike
// FilterCost it drifts with the live system, so it must never feed
// anything that has to be deterministic across replicas.
func (cm *CostModel) ObservedFilterCost(method FilterMethod, n, matched int) float64 {
	if per, ok := cm.ObservedFilterUnit(method); ok {
		return float64(filterUnits(method, n, matched)) * per
	}
	return cm.FilterCost(method, n, matched)
}

// PlanFilter chooses the access path for an equality selection, after
// validating the predicate against the schema (plan-time type checking,
// §4.2). The static preference order — hash index, then btree index,
// then columnar scan for scalar fields (declared fields are
// kind-uniform by schema validation, so the projection always succeeds
// and strictly dominates the row scan), then row scan — is the
// cold-start default. Once the DB's cost model has observed enough
// executions (ObserveFilter), a measurably cheaper available path
// overrides it: the default wins ties and all partially-observed
// comparisons, so plans never flip on noise or thin evidence.
func (db *DB) PlanFilter(col *Collection, field string, v Value) (FilterMethod, error) {
	if err := col.Schema().ValidateFilterValue(field, v); err != nil {
		return 0, err
	}
	var cands []FilterMethod
	if db.HasIndex(col, field, IdxHash) {
		cands = append(cands, FilterHashIndex)
	}
	if db.HasIndex(col, field, IdxBTree) {
		cands = append(cands, FilterBTreeIndex)
	}
	switch v.Kind {
	case KindInt, KindFloat, KindStr:
		cands = append(cands, FilterColumnScan)
	}
	cands = append(cands, FilterScan)

	best := cands[0]
	cm := db.Cost()
	if cm == nil {
		return best, nil
	}
	per, ok := cm.ObservedFilterUnit(best)
	if !ok {
		return best, nil
	}
	n := col.Len()
	matched := n / estFilterSelectivity
	if matched < 1 {
		matched = 1
	}
	bestCost := float64(filterUnits(best, n, matched)) * per
	for _, m := range cands[1:] {
		per, ok := cm.ObservedFilterUnit(m)
		if !ok {
			continue
		}
		if c := float64(filterUnits(m, n, matched)) * per; c < bestCost {
			best, bestCost = m, c
		}
	}
	return best, nil
}

// ExecuteFilter runs an equality selection with the chosen access path.
func (db *DB) ExecuteFilter(col *Collection, field string, v Value, method FilterMethod) ([]*Patch, error) {
	switch method {
	case FilterHashIndex, FilterBTreeIndex:
		kind := IdxHash
		if method == FilterBTreeIndex {
			kind = IdxBTree
		}
		idx, err := db.Index(col, field, kind)
		if err != nil {
			return nil, err
		}
		ids, err := idx.LookupEq(v)
		if err != nil {
			return nil, err
		}
		out := make([]*Patch, 0, len(ids))
		for _, id := range ids {
			p, err := col.Get(id)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	case FilterColumnScan:
		cs, err := col.Columns()
		if err != nil {
			return nil, err
		}
		if sel, ok := cs.FilterEq(field, v); ok {
			return cs.Materialize(sel), nil
		}
		// Field not columnizable (mixed kinds, vectors, all-null): the
		// row path answers every query the column can't.
		return DrainPatches(Select(col.Scan(), FieldEq(field, v)))
	default:
		return DrainPatches(Select(col.Scan(), FieldEq(field, v)))
	}
}

// PlanMode selects the optimizer's objective for plans whose order affects
// result accuracy (§7.4.3, Table 1).
type PlanMode int

// Optimizer objectives.
const (
	// PerformanceFirst applies classical rewrites (filter pushdown) for
	// the fastest plan.
	PerformanceFirst PlanMode = iota
	// AccuracyFirst suppresses rewrites that change the result's accuracy
	// profile: match on all candidates, filter afterwards.
	AccuracyFirst
)

func (m PlanMode) String() string {
	if m == AccuracyFirst {
		return "accuracy-first"
	}
	return "performance-first"
}
