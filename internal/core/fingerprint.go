package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// This file implements canonical plan fingerprinting: a stable identity
// for (dataset version, operator tree, parameters) that the serving
// layer's result cache keys on. The paper's systems argument is that
// materializing inference outputs and query results across callers is
// what makes visual analytics tractable at scale; a fingerprint that is
// insensitive to field ordering but sensitive to every semantic input is
// the precondition for that reuse being sound.

// Fingerprint is a canonical plan identity (hex-encoded SHA-256).
type Fingerprint string

// Fingerprinter accumulates the semantic components of a physical plan
// into a collision-resistant digest. Every token is length-prefixed and
// tagged, so no concatenation of values can alias another ("ab"+"c" vs
// "a"+"bc", a string "1" vs an int 1, a missing component vs an empty
// one).
type Fingerprinter struct {
	h hash.Hash
}

// NewFingerprinter starts a fingerprint of the given plan kind.
func NewFingerprinter(kind string) *Fingerprinter {
	f := &Fingerprinter{h: sha256.New()}
	f.token('K', []byte(kind))
	return f
}

func (f *Fingerprinter) token(tag byte, b []byte) {
	var hdr [9]byte
	hdr[0] = tag
	binary.BigEndian.PutUint64(hdr[1:], uint64(len(b)))
	f.h.Write(hdr[:])
	f.h.Write(b)
}

// Col folds in a dataset dependency: the collection's name and the
// version of its visible contents. Any write (or drop/re-create) bumps
// the version, so fingerprints over re-ingested data never alias stale
// cached results.
func (f *Fingerprinter) Col(name string, version uint64) *Fingerprinter {
	f.token('C', []byte(name))
	f.U64(version)
	return f
}

// Str folds in a named string parameter.
func (f *Fingerprinter) Str(key, v string) *Fingerprinter {
	f.token('k', []byte(key))
	f.token('s', []byte(v))
	return f
}

// Int folds in a named integer parameter.
func (f *Fingerprinter) Int(key string, v int64) *Fingerprinter {
	f.token('k', []byte(key))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	f.token('i', b[:])
	return f
}

// Float folds in a named float parameter (bit-exact).
func (f *Fingerprinter) Float(key string, v float64) *Fingerprinter {
	f.token('k', []byte(key))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	f.token('f', b[:])
	return f
}

// U64 folds in a raw unsigned integer (no key; for structural counts).
func (f *Fingerprinter) U64(v uint64) *Fingerprinter {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	f.token('u', b[:])
	return f
}

// Value folds in a named typed metadata value (filter constants).
func (f *Fingerprinter) Value(key string, v Value) *Fingerprinter {
	f.token('k', []byte(key))
	f.token('t', []byte{byte(v.Kind)})
	switch v.Kind {
	case KindInt:
		f.Int("", v.I)
	case KindFloat:
		f.Float("", v.F)
	case KindStr:
		f.token('s', []byte(v.S))
	case KindVec, KindRect:
		f.U64(uint64(len(v.V)))
		for _, x := range v.V {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], math.Float32bits(x))
			f.token('v', b[:])
		}
	}
	return f
}

// Sum finalizes the fingerprint. The Fingerprinter must not be reused.
func (f *Fingerprinter) Sum() Fingerprint {
	return Fingerprint(hex.EncodeToString(f.h.Sum(nil)))
}
