package core

import (
	"strings"
	"testing"
	"time"
)

func passthrough(in Iterator) Iterator { return in }

// testLibrary registers a small component zoo mirroring the paper's
// example: a general-purpose detector, a specialized car detector, an OCR
// generator, and transformers with a prerequisite chain.
func testLibrary() *Library {
	l := &Library{}
	l.Register(Component{
		Name: "ssd-general", Kind: KindGenerator,
		Produces:  []string{"label", "score", "bbox"},
		Labels:    []string{"car", "pedestrian", "player"},
		Precision: 0.90, Recall: 0.85, PerPatch: 8 * time.Millisecond,
		Build: passthrough,
	})
	l.Register(Component{
		Name: "car-detector", Kind: KindGenerator,
		Produces:  []string{"label", "score", "bbox"},
		Labels:    []string{"car"},
		Precision: 0.97, Recall: 0.95, PerPatch: 3 * time.Millisecond,
		Build: passthrough,
	})
	l.Register(Component{
		Name: "ocr", Kind: KindGenerator,
		Produces:  []string{"text", "score", "bbox"},
		Precision: 0.92, Recall: 0.80, PerPatch: 5 * time.Millisecond,
		Build: passthrough,
	})
	l.Register(Component{
		Name: "histogram", Kind: KindTransformer,
		Produces: []string{"hist"},
		PerPatch: 200 * time.Microsecond,
		Build:    passthrough,
	})
	l.Register(Component{
		Name: "embedder", Kind: KindTransformer,
		Produces: []string{"emb"},
		Requires: []string{"hist"}, // depends on the histogram stage
		PerPatch: 900 * time.Microsecond,
		Build:    passthrough,
	})
	l.Register(Component{
		Name: "depth", Kind: KindTransformer,
		Produces: []string{"depth"},
		Requires: []string{"bbox"},
		PerPatch: 700 * time.Microsecond,
		Build:    passthrough,
	})
	return l
}

func TestSynthesizePrefersSpecializedCheaperDetector(t *testing.T) {
	l := testLibrary()
	sp, err := l.Synthesize(Requirement{
		NeedLabel:    "car",
		MinPrecision: 0.9,
		MinRecall:    0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both detectors cover "car", but the specialized one is cheaper AND
	// meets the higher accuracy floor that the general one misses.
	if sp.Generator.Name != "car-detector" {
		t.Fatalf("chose %s", sp.Generator.Name)
	}
}

func TestSynthesizeFallsBackToGeneralDetector(t *testing.T) {
	l := testLibrary()
	sp, err := l.Synthesize(Requirement{NeedLabel: "pedestrian"})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Generator.Name != "ssd-general" {
		t.Fatalf("chose %s", sp.Generator.Name)
	}
}

func TestSynthesizeImpossibleLabel(t *testing.T) {
	l := testLibrary()
	_, err := l.Synthesize(Requirement{NeedLabel: "bicycle"})
	if err == nil {
		t.Fatal("synthesized a pipeline for an unproducible label")
	}
	if !strings.Contains(err.Error(), "bicycle") {
		t.Fatalf("error does not name the label: %v", err)
	}
}

func TestSynthesizeTransformerChainWithPrereqs(t *testing.T) {
	l := testLibrary()
	sp, err := l.Synthesize(Requirement{
		NeedLabel:  "car",
		NeedFields: []string{"emb", "depth"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// emb requires hist, so the chain must include histogram before
	// embedder; depth requires bbox (from the generator).
	idx := map[string]int{}
	for i, c := range sp.Transformers {
		idx[c.Name] = i
	}
	for _, want := range []string{"histogram", "embedder", "depth"} {
		if _, ok := idx[want]; !ok {
			t.Fatalf("chain missing %s: %v", want, idx)
		}
	}
	if idx["histogram"] > idx["embedder"] {
		t.Fatalf("prerequisite ordering broken: %v", idx)
	}
	if sp.TotalPerPatch <= sp.Generator.PerPatch {
		t.Fatalf("total latency %v not accumulating transformers", sp.TotalPerPatch)
	}
}

func TestSynthesizeMissingTransformer(t *testing.T) {
	l := testLibrary()
	_, err := l.Synthesize(Requirement{NeedLabel: "car", NeedFields: []string{"segmask"}})
	if err == nil || !strings.Contains(err.Error(), "segmask") {
		t.Fatalf("err = %v", err)
	}
}

func TestSynthesizeLatencyBudget(t *testing.T) {
	l := testLibrary()
	// Budget below every generator: must fail and say so.
	_, err := l.Synthesize(Requirement{NeedLabel: "car", MaxPerPatch: time.Millisecond})
	if err == nil {
		t.Fatal("impossible budget satisfied")
	}
	// Budget that fits the specialized detector only.
	sp, err := l.Synthesize(Requirement{NeedLabel: "car", MaxPerPatch: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Generator.Name != "car-detector" {
		t.Fatalf("chose %s", sp.Generator.Name)
	}
}

func TestSynthesizedPipelineBuilds(t *testing.T) {
	l := &Library{}
	gen := Component{
		Name: "fanout", Kind: KindGenerator,
		Labels: []string{"car"}, Produces: []string{"label"},
		Build: func(in Iterator) Iterator {
			return Transform(in, func(tp Tuple) ([]Tuple, error) {
				return []Tuple{tp, tp}, nil // two patches per input
			})
		},
	}
	tr := Component{
		Name: "mark", Kind: KindTransformer, Produces: []string{"marked"},
		Build: func(in Iterator) Iterator {
			return Transform(in, func(tp Tuple) ([]Tuple, error) {
				tp[0].Meta["marked"] = IntV(1)
				return []Tuple{tp}, nil
			})
		},
	}
	l.Register(gen)
	l.Register(tr)
	sp, err := l.Synthesize(Requirement{NeedLabel: "car", NeedFields: []string{"marked"}})
	if err != nil {
		t.Fatal(err)
	}
	in := FromPatches([]*Patch{{Meta: Metadata{}}, {Meta: Metadata{}}})
	out, err := Drain(sp.Build(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("pipeline emitted %d tuples, want 4", len(out))
	}
	for _, tp := range out {
		if tp[0].Meta["marked"].I != 1 {
			t.Fatal("transformer did not run")
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	l := &Library{}
	if err := l.Register(Component{Name: "", Kind: KindGenerator, Build: passthrough}); err == nil {
		t.Fatal("nameless component registered")
	}
	if err := l.Register(Component{Name: "x", Kind: KindGenerator}); err == nil {
		t.Fatal("component without Build registered")
	}
	// Replacement by name.
	l.Register(Component{Name: "x", Kind: KindGenerator, PerPatch: time.Second, Build: passthrough})
	l.Register(Component{Name: "x", Kind: KindGenerator, PerPatch: time.Millisecond, Build: passthrough})
	if cs := l.Components(); len(cs) != 1 || cs[0].PerPatch != time.Millisecond {
		t.Fatalf("replacement broken: %+v", cs)
	}
}
