package core

// Iterator is the Volcano-style tuple iterator every operator implements
// (§2.2: "operators in the system implement iterators over tuples of
// Patch objects").
type Iterator interface {
	// Next returns the next tuple; ok=false at end of stream.
	Next() (t Tuple, ok bool, err error)
	// Close releases resources; idempotent.
	Close() error
}

// sliceIter iterates an in-memory tuple slice.
type sliceIter struct {
	tuples []Tuple
	pos    int
}

// NewSliceIterator wraps tuples in an Iterator.
func NewSliceIterator(tuples []Tuple) Iterator { return &sliceIter{tuples: tuples} }

// FromPatches wraps single-patch tuples in an Iterator.
func FromPatches(patches []*Patch) Iterator {
	ts := make([]Tuple, len(patches))
	for i, p := range patches {
		ts[i] = Tuple{p}
	}
	return NewSliceIterator(ts)
}

func (s *sliceIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.tuples) {
		return nil, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

func (s *sliceIter) Close() error { return nil }

// funcIter adapts a pull function to an Iterator.
type funcIter struct {
	next   func() (Tuple, bool, error)
	closer func() error
	closed bool
}

// NewFuncIterator builds an Iterator from a pull function and optional
// closer.
func NewFuncIterator(next func() (Tuple, bool, error), closer func() error) Iterator {
	return &funcIter{next: next, closer: closer}
}

func (f *funcIter) Next() (Tuple, bool, error) {
	if f.closed {
		return nil, false, nil
	}
	return f.next()
}

func (f *funcIter) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.closer != nil {
		return f.closer()
	}
	return nil
}

// Drain consumes an iterator into a slice and closes it.
func Drain(it Iterator) ([]Tuple, error) {
	defer it.Close()
	var out []Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// DrainPatches consumes a single-patch-tuple iterator into a patch slice.
func DrainPatches(it Iterator) ([]*Patch, error) {
	ts, err := Drain(it)
	if err != nil {
		return nil, err
	}
	out := make([]*Patch, 0, len(ts))
	for _, t := range ts {
		if len(t) > 0 {
			out = append(out, t[0])
		}
	}
	return out, nil
}

// Count consumes an iterator, returning the tuple count.
func Count(it Iterator) (int, error) {
	defer it.Close()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
