package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exec"
	"repro/internal/fault"
)

func TestReplicatedLayoutAndByteEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedReplicas(dir, 3, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicas() != 2 || s.NumShards() != 3 {
		t.Fatalf("topology = %dx%d, want 3x2", s.NumShards(), s.Replicas())
	}
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Replica directories sit beside the primaries.
	for i := 0; i < 3; i++ {
		for _, sub := range []string{replicaDirName(i, 0), replicaDirName(i, 1)} {
			if _, err := os.Stat(filepath.Join(dir, sub, "deeplens.db")); err != nil {
				t.Fatalf("missing replica store %s: %v", sub, err)
			}
		}
	}
	// Every replica mirrors its primary exactly: same rows, same ids,
	// same versions, same snapshot order.
	for i := 0; i < 3; i++ {
		prim, rep := sc.Replica(i, 0), sc.Replica(i, 1)
		if prim.Len() != rep.Len() {
			t.Fatalf("shard %d: primary %d rows, replica %d rows", i, prim.Len(), rep.Len())
		}
		if prim.Version() != rep.Version() {
			t.Fatalf("shard %d: primary version %d, replica version %d", i, prim.Version(), rep.Version())
		}
		pp, _, err := prim.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		rp, _, err := rep.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for k := range pp {
			if pp[k].ID != rp[k].ID || !pp[k].Meta["label"].Equal(rp[k].Meta["label"]) {
				t.Fatalf("shard %d row %d diverges: %v vs %v", i, k, pp[k], rp[k])
			}
		}
		if got := s.InSyncReplicas(i); len(got) != 2 {
			t.Fatalf("shard %d in-sync = %v, want both", i, got)
		}
	}
	infos := s.ShardInfos()
	for _, info := range infos {
		if info.Replicas != 2 || len(info.OutOfSync) != 0 {
			t.Fatalf("ShardInfo = %+v, want 2 healthy replicas", info)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the same topology: contents intact on every replica.
	s2, err := OpenShardedReplicas(dir, 3, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sc2, err := s2.Collection("dets")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	for i := 0; i < 3; i++ {
		if sc2.Replica(i, 0).Len() != sc2.Replica(i, 1).Len() {
			t.Fatalf("shard %d replica row counts diverge after reopen", i)
		}
	}
}

func TestReplicatedReopenMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenShardedReplicas(dir, 2, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenShardedReplicas(dir, 2, 3, exec.New(exec.CPU)); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with mismatched replica count: %v, want ErrShardMismatch", err)
	}
	if _, err := OpenSharded(dir, 2, exec.New(exec.CPU)); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen R=2 directory at R=1: %v, want ErrShardMismatch", err)
	}
}

// TestSingleReplicaMetaBytesUnchanged pins the R=1 layout contract: the
// topology file of a single-replica directory is byte-identical to the
// pre-replication format, so existing directories reopen unchanged.
func TestSingleReplicaMetaBytesUnchanged(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, shardMetaFile))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(raw), "{\"shards\":2}\n"; got != want {
		t.Fatalf("R=1 %s = %q, want %q", shardMetaFile, got, want)
	}
}

func TestSecondaryAppendFailureDemotesReplica(t *testing.T) {
	s, err := OpenShardedReplicas(t.TempDir(), 2, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Arm a certain append failure on replica 1 of shard 0: appends that
	// land on shard 0 must still succeed, demoting the replica.
	s.SetFaults(fault.New(fault.Config{Seed: 1, Rules: []fault.Rule{
		{Point: fault.AppendError, Shard: 0, Replica: 1, Prob: 1},
	}}))
	hit0 := 0
	for i := 40; i < 120; i++ {
		p := shardTestPatch(i)
		if err := sc.Append(p); err != nil {
			t.Fatalf("append with failing secondary must succeed: %v", err)
		}
		if s.ShardFor(p.ID) == 0 {
			hit0++
		}
	}
	if hit0 == 0 {
		t.Fatal("no appends routed to shard 0; test is vacuous")
	}
	if got := s.InSyncReplicas(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("shard 0 in-sync = %v, want primary only", got)
	}
	if got := s.InSyncReplicas(1); len(got) != 2 {
		t.Fatalf("shard 1 in-sync = %v, want both", got)
	}
	if s.ReplicaAppendErrors() == 0 {
		t.Fatal("replica append errors not counted")
	}
	// The demoted replica is behind; the primary holds everything.
	if sc.Replica(0, 1).Len() >= sc.Replica(0, 0).Len() {
		t.Fatalf("demoted replica len %d not behind primary %d",
			sc.Replica(0, 1).Len(), sc.Replica(0, 0).Len())
	}
	infos := s.ShardInfos()
	if len(infos[0].OutOfSync) != 1 || infos[0].OutOfSync[0] != 1 {
		t.Fatalf("ShardInfo[0].OutOfSync = %v, want [1]", infos[0].OutOfSync)
	}
}

func TestPrimaryAppendFailureFailsAppend(t *testing.T) {
	s, err := OpenShardedReplicas(t.TempDir(), 1, 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(fault.New(fault.Config{Seed: 1, Rules: []fault.Rule{
		{Point: fault.AppendError, Shard: fault.Any, Replica: 0, Prob: 1},
	}}))
	err = sc.Append(shardTestPatch(0))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("primary failure must fail the append, got %v", err)
	}
	// The failed append touched no replica: neither holds the row and
	// both stay in sync (no divergence to demote).
	if sc.Replica(0, 0).Len() != 0 || sc.Replica(0, 1).Len() != 0 {
		t.Fatalf("failed append left rows: primary %d, replica %d",
			sc.Replica(0, 0).Len(), sc.Replica(0, 1).Len())
	}
	if got := s.InSyncReplicas(0); len(got) != 2 {
		t.Fatalf("in-sync after primary-failed append = %v, want both", got)
	}
}
