package core

// VectorIndex is the ANN physical path's core structure: a
// per-collection, versioned nearest-neighbor index over one declared
// vector field, maintained exactly like the columnar projection —
// cached per (field, mode) on the collection, reused while the version
// stands, incrementally extended when the previous snapshot is a
// certified prefix of the current one, rebuilt otherwise. A stale index
// can never serve a newer snapshot: the cached entry is keyed by the
// version it was built over and only the exact-version match is
// returned.
//
// Two modes share the interface. Exact mode is balltree-backed and
// returns precisely the brute-force answer (k nearest by Euclidean
// distance, ties broken by ascending patch id — the byte-identity
// contract the serving layer's golden tests pin). Approximate mode is
// LSH-backed: probes verify candidates with exact distances, so
// reported distances are always true, but a neighbor sharing no hash
// bucket with the query is missed — recall, not precision, is the
// approximation.

import (
	"fmt"
	"sort"

	"repro/internal/balltree"
	"repro/internal/lsh"
)

// VecIndexMode selects the vector-index access method.
type VecIndexMode int

// Vector index modes.
const (
	VecExact  VecIndexMode = iota + 1 // balltree: results identical to brute force
	VecApprox                         // LSH: recall-bounded approximation, exact distances
)

func (m VecIndexMode) String() string {
	switch m {
	case VecExact:
		return "exact"
	case VecApprox:
		return "approx"
	default:
		return fmt.Sprintf("vecmode(%d)", int(m))
	}
}

// LSH shape for approximate vector indexes: few hash bits keep buckets
// populous (recall over precision), multiple tables patch the residual
// misses. Probes verify candidates exactly, so low precision costs only
// distance computations, never wrong answers.
const (
	vecLSHTables = 8
	vecLSHBits   = 12
	vecLSHSeed   = 42
)

// exactTailMax bounds the un-treed append tail of an exact index: an
// extension whose accumulated tail would exceed max(exactTailMax,
// treeSize/4) re-trees instead, keeping probe cost O(log n + tail)
// with a bounded tail.
const exactTailMax = 256

// VecDist is the vector-index distance metric (Euclidean). Every
// consumer of the index — brute-force reference paths included — must
// compute distances through this one function so exact mode stays
// byte-identical to the scan it replaces.
func VecDist(a, b []float32) float64 { return balltree.Dist(a, b) }

// VecNeighbor is one nearest-neighbor result: a patch id with its exact
// distance to the query.
type VecNeighbor struct {
	ID   PatchID
	Dist float64
}

// VectorIndex indexes one vector field of one collection snapshot.
type VectorIndex struct {
	field   string
	mode    VecIndexMode
	version uint64
	dim     int

	// patches is the exact snapshot the index covers; extension
	// certification compares it against the next snapshot by element
	// identity (see snapshotExtends).
	patches []*Patch

	// Exact mode: a balltree over pts[:treeN] plus a linear tail
	// pts[treeN:] of appended points not yet re-treed. pts is
	// append-only across extensions (capacity-clamped), so concurrent
	// readers of an older extension never see their slice mutate.
	pts   []balltree.Point
	treeN int
	ball  *balltree.Tree

	// Approximate mode.
	lshI *lsh.Index
}

// NewVectorIndex builds an index over field across the snapshot ps,
// recorded as of version. Rows without the field, and rows whose vector
// dimensionality disagrees with the first one seen, are skipped (the
// same tolerance the LSH secondary index applies).
func NewVectorIndex(ps []*Patch, version uint64, field string, mode VecIndexMode) (*VectorIndex, error) {
	vi := &VectorIndex{field: field, mode: mode, version: version, patches: ps}
	for _, p := range ps {
		if vec, ok := vecOf(p, field); ok {
			if vi.dim == 0 {
				vi.dim = len(vec)
			}
			if len(vec) == vi.dim {
				vi.pts = append(vi.pts, balltree.Point{Vec: vec, ID: uint64(p.ID)})
			}
		}
	}
	switch mode {
	case VecExact:
		t, err := balltree.Build(vi.pts)
		if err != nil {
			return nil, err
		}
		vi.ball = t
		vi.treeN = len(vi.pts)
	case VecApprox:
		dim := vi.dim
		if dim == 0 {
			dim = 1 // empty index; Extend rebuilds when vectors appear
		}
		ix, err := lsh.New(dim, vecLSHTables, vecLSHBits, vecLSHSeed)
		if err != nil {
			return nil, err
		}
		for _, p := range vi.pts {
			if err := ix.Insert(lsh.Point(p)); err != nil {
				return nil, err
			}
		}
		vi.lshI = ix
	default:
		return nil, fmt.Errorf("core: unknown vector index mode %v", mode)
	}
	return vi, nil
}

// Extend returns a new index covering ps — which must extend the
// receiver's snapshot as a certified prefix — as of version. The
// receiver is never mutated, so readers holding it stay consistent.
// Exact mode appends to the linear tail and re-trees only when the tail
// outgrows its bound; approximate mode shares the hyperplanes and
// copies only the bucket maps. Returns an error when the extension
// cannot preserve the index shape (first vectors appearing, or a
// dimensionality change); the caller falls back to a full rebuild.
func (vi *VectorIndex) Extend(ps []*Patch, version uint64) (*VectorIndex, error) {
	var newPts []balltree.Point
	for _, p := range ps[len(vi.patches):] {
		if vec, ok := vecOf(p, vi.field); ok {
			if vi.dim == 0 || len(vec) != vi.dim {
				return nil, fmt.Errorf("core: vector index on %q cannot extend across dimensionality change", vi.field)
			}
			newPts = append(newPts, balltree.Point{Vec: vec, ID: uint64(p.ID)})
		}
	}
	nx := &VectorIndex{field: vi.field, mode: vi.mode, version: version, dim: vi.dim, patches: ps}
	switch vi.mode {
	case VecExact:
		nx.pts = append(vi.pts[:len(vi.pts):len(vi.pts)], newPts...)
		nx.ball, nx.treeN = vi.ball, vi.treeN
		if tail := len(nx.pts) - nx.treeN; tail > exactTailMax && tail*4 > nx.treeN {
			t, err := balltree.Build(nx.pts)
			if err != nil {
				return nil, err
			}
			nx.ball, nx.treeN = t, len(nx.pts)
		}
	case VecApprox:
		ext, err := vi.lshI.Extend(toLSHPoints(newPts))
		if err != nil {
			return nil, err
		}
		nx.pts = append(vi.pts[:len(vi.pts):len(vi.pts)], newPts...)
		nx.lshI = ext
	default:
		return nil, fmt.Errorf("core: unknown vector index mode %v", vi.mode)
	}
	return nx, nil
}

func toLSHPoints(pts []balltree.Point) []lsh.Point {
	out := make([]lsh.Point, len(pts))
	for i, p := range pts {
		out[i] = lsh.Point(p)
	}
	return out
}

// Field returns the indexed vector field.
func (vi *VectorIndex) Field() string { return vi.field }

// Mode returns the access method.
func (vi *VectorIndex) Mode() VecIndexMode { return vi.mode }

// BuiltVersion returns the collection version the index contents
// reflect — the invalidation key: a reader must only use an index whose
// BuiltVersion matches its snapshot's version.
func (vi *VectorIndex) BuiltVersion() uint64 { return vi.version }

// Len returns the number of indexed vectors.
func (vi *VectorIndex) Len() int {
	if vi.mode == VecApprox {
		return vi.lshI.Len()
	}
	return len(vi.pts)
}

// Dim returns the indexed dimensionality (0 when no vectors were seen).
func (vi *VectorIndex) Dim() int { return vi.dim }

// KNN returns the k nearest indexed vectors to q in ascending
// (distance, id) order. Exact mode returns precisely the brute-force
// answer under that ordering; approximate mode returns the best of the
// LSH candidate union (possibly fewer than k).
func (vi *VectorIndex) KNN(q []float32, k int) []VecNeighbor {
	if k <= 0 {
		return nil
	}
	if vi.mode == VecApprox {
		ns := vi.lshI.KNN(q, k)
		out := make([]VecNeighbor, len(ns))
		for i, n := range ns {
			out[i] = VecNeighbor{ID: PatchID(n.Point.ID), Dist: n.Dist}
		}
		return out
	}
	// Exact: the balltree's own top-k breaks boundary ties by traversal
	// order, not id. Candidates = tree top-k + the whole tail establish
	// an upper bound dk on the true kth distance; re-collecting every
	// tree point within (slightly inflated) dk and sorting by (dist, id)
	// then yields the canonical top-k, tied boundary included.
	cands := make([]VecNeighbor, 0, k+len(vi.pts)-vi.treeN)
	if vi.ball != nil {
		for _, n := range vi.ball.KNN(q, k) {
			cands = append(cands, VecNeighbor{ID: PatchID(n.Point.ID), Dist: n.Dist})
		}
	}
	tail := vi.pts[vi.treeN:]
	for _, p := range tail {
		cands = append(cands, VecNeighbor{ID: PatchID(p.ID), Dist: VecDist(p.Vec, q)})
	}
	sortNeighbors(cands)
	if len(cands) < k {
		// Fewer points than k: the candidates are the entire index, and
		// sorting them is already canonical.
		return cands
	}
	// At least k candidates: cands[k-1] bounds the true kth distance, but
	// the tree may hold equal-distance points it broke ties against by
	// traversal order — re-collect the full boundary before trimming.
	dk := cands[k-1].Dist
	if vi.ball != nil && vi.ball.Len() > 0 {
		eps := dk * (1 + 1e-9) // absorb sqrt/square round-trip error at the boundary
		out := make([]VecNeighbor, 0, k+len(tail))
		vi.ball.RangeSearch(q, eps, func(p balltree.Point, d float64) bool {
			out = append(out, VecNeighbor{ID: PatchID(p.ID), Dist: d})
			return true
		})
		for _, p := range tail {
			out = append(out, VecNeighbor{ID: PatchID(p.ID), Dist: VecDist(p.Vec, q)})
		}
		sortNeighbors(out)
		cands = out
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// RangeSearch calls fn for every indexed vector within eps of q
// (inclusive). Exact mode visits every true match; approximate mode
// only those in the candidate union. fn returning false stops the
// search. Visit order is unspecified.
func (vi *VectorIndex) RangeSearch(q []float32, eps float64, fn func(id PatchID, dist float64) bool) {
	if vi.mode == VecApprox {
		vi.lshI.RangeSearch(q, eps, func(p lsh.Point, d float64) bool {
			return fn(PatchID(p.ID), d)
		})
		return
	}
	stopped := false
	if vi.ball != nil {
		vi.ball.RangeSearch(q, eps, func(p balltree.Point, d float64) bool {
			if !fn(PatchID(p.ID), d) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	for _, p := range vi.pts[vi.treeN:] {
		if d := VecDist(p.Vec, q); d <= eps {
			if !fn(PatchID(p.ID), d) {
				return
			}
		}
	}
}

func sortNeighbors(ns []VecNeighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// BruteKNN is the reference scan exact mode must match byte for byte:
// the k nearest vectors under field across ps, ascending (distance,
// id), distances through VecDist. Rows without the field (or with a
// dimensionality mismatch against the query) are skipped.
func BruteKNN(ps []*Patch, field string, q []float32, k int) []VecNeighbor {
	if k <= 0 {
		return nil
	}
	out := make([]VecNeighbor, 0, len(ps))
	for _, p := range ps {
		if vec, ok := vecOf(p, field); ok && len(vec) == len(q) {
			out = append(out, VecNeighbor{ID: p.ID, Dist: VecDist(vec, q)})
		}
	}
	sortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// VectorIndexAt returns a vector index over field in the given mode,
// current exactly as of the caller's snapshot (ps, ver) — the caller
// passes the snapshot it is executing over, so index contents and query
// visibility can never skew. The index is cached per (field, mode) and
// maintained like the column store: reused while the version matches,
// incrementally extended when the cached snapshot is a certified prefix
// of ps, rebuilt otherwise. Racing builders may duplicate work; the
// cache only moves forward and the caller always receives an index at
// its own version.
func (c *Collection) VectorIndexAt(ps []*Patch, ver uint64, field string, mode VecIndexMode) (*VectorIndex, error) {
	key := field + "/" + mode.String()
	c.vecMu.Lock()
	old := c.vecIdx[key]
	if old != nil && old.version == ver {
		c.vecMu.Unlock()
		return old, nil
	}
	c.vecMu.Unlock()

	// Build or extend with vecMu free (balltree builds are O(n log n);
	// holding the lock would stall every cache-hit reader).
	var vi *VectorIndex
	var err error
	if old != nil && old.version < ver && snapshotExtends(old.patches, ps) {
		if vi, err = old.Extend(ps, ver); err == nil {
			c.db.idxExtends.Add(1)
		}
	}
	if vi == nil {
		if vi, err = NewVectorIndex(ps, ver, field, mode); err != nil {
			return nil, err
		}
		c.db.idxRebuilds.Add(1)
	}

	c.vecMu.Lock()
	switch cur := c.vecIdx[key]; {
	case cur != nil && cur.version == ver:
		vi = cur // raced an identical build: adopt the canonical index
	case cur == nil || cur.version < ver:
		if c.vecIdx == nil {
			c.vecIdx = make(map[string]*VectorIndex)
		}
		c.vecIdx[key] = vi
	}
	c.vecMu.Unlock()
	return vi, nil
}

// InvalidateVectorIndexes drops the cached vector indexes (memory
// control; the next VectorIndexAt rebuilds from scratch).
func (c *Collection) InvalidateVectorIndexes() {
	c.vecMu.Lock()
	c.vecIdx = nil
	c.vecMu.Unlock()
}

// IndexExtendStats reports the vector-index maintenance counters:
// extends is the number of prefix-certified incremental extensions,
// rebuilds the number of full builds (first touch, cache reload, or a
// shape change an extension could not absorb).
func (db *DB) IndexExtendStats() (extends, rebuilds int64) {
	return db.idxExtends.Load(), db.idxRebuilds.Load()
}
