package core

// This file implements replica re-sync: the repair path that returns a
// demoted replica to the read set. Demotion (a failed secondary append)
// freezes the replica — the append fan-out skips out-of-sync replicas —
// so a demoted replica always holds an exact prefix of its primary's
// commit sequence. Repair is therefore suffix streaming: verify the
// replica's existing prefix byte-for-byte against the primary, append
// the missing patches, and promote.
//
// The engine runs in two phases so bulk transfer never blocks writers:
//
//  1. Unlocked stream. Snapshot primary and replica per collection,
//     certify the replica's rows are a byte-exact prefix of the
//     primary's snapshot, then append the missing suffix in chunks.
//     Appends landing concurrently only ever extend the primary
//     snapshot (prefix stability), so nothing streamed here can be
//     invalidated — the replica just ends the phase slightly behind
//     again.
//  2. Catch-up under the shard's append lock. Re-snapshot the primary,
//     certify the new snapshot extends the phase-1 one (pointer
//     identity at both ends, the ColumnStore.Extend certification
//     idiom), append the remainder, verify the replica now matches the
//     primary entry-for-entry, and CAS the replica back into the
//     in-sync read set before releasing the lock. Writers blocked for
//     only the tail, and the promoted replica has missed nothing.
//
// Any failure — injected via the resync-error/resync-stall failpoints
// or real — aborts the repair and leaves the replica demoted. Aborting
// is always safe: the replica only ever gained patches the primary had
// committed, in the primary's order, so it still holds a valid (longer)
// prefix and the next repair attempt resumes from there. A replica is
// never half-promoted.

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/fault"
)

// resyncChunk is how many patches a repair streams between failpoint
// and cancellation checks.
const resyncChunk = 64

// samePatchBytes reports whether two patches serialize identically.
// Replicated appends share patch pointers across replicas, so the
// common case is a pointer compare; marshaling only happens when a
// replica was cold-loaded from its own store.
func samePatchBytes(a, b *Patch) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return bytes.Equal(a.Marshal(), b.Marshal())
}

// resyncState carries one collection's certified phase-1 snapshots into
// the locked catch-up round.
type resyncState struct {
	name      string
	primary   *Collection
	replica   *Collection
	certified []*Patch // primary snapshot phase 1 streamed from
}

// ResyncReplica repairs one demoted replica by streaming the primary's
// missing patch suffix and verifying the result byte-for-byte, then
// promotes the replica back into the read set. It returns the number
// of patches streamed. Repairing an in-sync replica is a no-op, as is
// racing a repair already in flight for the same replica. On error the
// replica stays demoted (never half-in-sync) and a later attempt can
// resume from whatever valid prefix this one reached.
func (s *Sharded) ResyncReplica(ctx context.Context, shard, replica int) (int, error) {
	if shard < 0 || shard >= len(s.shards) || replica <= 0 || replica >= s.nrep {
		return 0, fmt.Errorf("core: resync shard %d replica %d: no such secondary", shard, replica)
	}
	if s.insync[shard][replica].Load() {
		return 0, nil
	}
	if !s.resyncing[shard][replica].CompareAndSwap(false, true) {
		return 0, nil // another repair owns this replica
	}
	defer s.resyncing[shard][replica].Store(false)

	rows := 0
	var states []resyncState
	// Phase 1: unlocked bulk stream, collection by collection.
	for _, name := range s.Collections() {
		st, n, err := s.streamSuffix(ctx, shard, replica, name)
		rows += n
		if err != nil {
			return rows, err
		}
		states = append(states, st)
	}

	// Phase 2: catch-up and promotion under the shard's append lock.
	// No append can land while it is held, so once every collection
	// verifies clean the replica is exactly the primary.
	s.appendMu[shard].Lock()
	defer s.appendMu[shard].Unlock()
	for _, st := range states {
		n, err := s.catchUp(ctx, shard, replica, st)
		rows += n
		if err != nil {
			return rows, err
		}
	}
	if s.insync[shard][replica].CompareAndSwap(false, true) {
		s.resyncs.Add(1)
		s.resyncRows.Add(int64(rows))
	}
	return rows, nil
}

// streamSuffix verifies the replica's existing rows are a byte-exact
// prefix of the primary's snapshot for one collection and appends the
// missing suffix in chunks, without holding the shard's append lock.
func (s *Sharded) streamSuffix(ctx context.Context, shard, replica int, name string) (resyncState, int, error) {
	var st resyncState
	sc, err := s.Collection(name)
	if err != nil {
		return st, 0, fmt.Errorf("core: resync shard %d replica %d: open %q: %w", shard, replica, name, err)
	}
	st = resyncState{name: name, primary: sc.cols[shard][0], replica: sc.cols[shard][replica]}
	pps, _, err := st.primary.Snapshot()
	if err != nil {
		return st, 0, fmt.Errorf("core: resync shard %d replica %d: snapshot primary %q: %w", shard, replica, name, err)
	}
	st.certified = pps
	rps, _, err := st.replica.Snapshot()
	if err != nil {
		return st, 0, fmt.Errorf("core: resync shard %d replica %d: snapshot replica %q: %w", shard, replica, name, err)
	}
	// The demoted replica must hold an exact prefix of the primary's
	// commit sequence. Anything else means divergence (a replica fed
	// writes outside the Sharded layer) and is unrepairable by
	// streaming: refuse rather than promote bad bytes.
	if len(rps) > len(pps) {
		return st, 0, fmt.Errorf("core: resync shard %d replica %d: %q replica holds %d rows, primary %d — diverged",
			shard, replica, name, len(rps), len(pps))
	}
	for i, rp := range rps {
		if !samePatchBytes(rp, pps[i]) {
			return st, 0, fmt.Errorf("core: resync shard %d replica %d: %q row %d differs from primary — diverged",
				shard, replica, name, i)
		}
	}
	rows, err := s.appendRange(ctx, shard, replica, st.replica, pps[len(rps):])
	if err != nil {
		return st, rows, fmt.Errorf("core: resync shard %d replica %d: stream %q: %w", shard, replica, name, err)
	}
	return st, rows, nil
}

// catchUp appends whatever the primary committed after phase 1's
// snapshot and verifies the replica now matches the primary
// entry-for-entry. Caller holds the shard's append lock.
func (s *Sharded) catchUp(ctx context.Context, shard, replica int, st resyncState) (int, error) {
	pps, _, err := st.primary.Snapshot()
	if err != nil {
		return 0, fmt.Errorf("core: resync shard %d replica %d: re-snapshot primary %q: %w", shard, replica, st.name, err)
	}
	if !snapshotExtends(st.certified, pps) {
		return 0, fmt.Errorf("core: resync shard %d replica %d: %q snapshot no longer extends the certified prefix",
			shard, replica, st.name)
	}
	rows, err := s.appendRange(ctx, shard, replica, st.replica, pps[len(st.certified):])
	if err != nil {
		return rows, fmt.Errorf("core: resync shard %d replica %d: catch up %q: %w", shard, replica, st.name, err)
	}
	rps, _, err := st.replica.Snapshot()
	if err != nil {
		return rows, fmt.Errorf("core: resync shard %d replica %d: verify %q: %w", shard, replica, st.name, err)
	}
	if len(rps) != len(pps) {
		return rows, fmt.Errorf("core: resync shard %d replica %d: %q repaired to %d rows, primary has %d",
			shard, replica, st.name, len(rps), len(pps))
	}
	for i := range pps {
		if !samePatchBytes(rps[i], pps[i]) {
			return rows, fmt.Errorf("core: resync shard %d replica %d: %q row %d differs after repair",
				shard, replica, st.name, i)
		}
	}
	return rows, nil
}

// appendRange streams patches to a replica collection in resyncChunk
// batches, evaluating the resync failpoints and ctx between chunks.
func (s *Sharded) appendRange(ctx context.Context, shard, replica int, rcol *Collection, ps []*Patch) (int, error) {
	rows := 0
	for off := 0; off < len(ps); off += resyncChunk {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
		}
		inj := s.injector()
		if err := inj.Fail(fault.ResyncError, shard, replica); err != nil {
			return rows, err
		}
		if err := inj.Stall(ctx, fault.ResyncStall, shard, replica); err != nil {
			return rows, err
		}
		end := off + resyncChunk
		if end > len(ps) {
			end = len(ps)
		}
		for _, p := range ps[off:end] {
			if err := rcol.Append(p); err != nil {
				return rows, err
			}
			rows++
		}
	}
	return rows, nil
}
