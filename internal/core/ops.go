package core

import (
	"fmt"
	"sort"
)

// Predicate evaluates a tuple.
type Predicate func(Tuple) bool

// FieldEq builds a predicate on one metadata field of the tuple's first
// patch.
func FieldEq(field string, v Value) Predicate {
	return func(t Tuple) bool {
		got, ok := t[0].Meta[field]
		return ok && got.Equal(v)
	}
}

// FieldRange builds lo <= field < hi on the first patch (numeric fields).
func FieldRange(field string, lo, hi float64) Predicate {
	return func(t Tuple) bool {
		got, ok := t[0].Meta[field]
		if !ok {
			return false
		}
		f := got.AsFloat()
		return f >= lo && f < hi
	}
}

// Select filters tuples by pred (§5's Select operator).
func Select(in Iterator, pred Predicate) Iterator {
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			t, ok, err := in.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			if pred(t) {
				return t, true, nil
			}
		}
	}, in.Close)
}

// Transform maps each tuple through fn (patch generators and transformers
// are Transform instances over single-patch tuples). fn returning an empty
// slice drops the input; returning several fans out.
func Transform(in Iterator, fn func(Tuple) ([]Tuple, error)) Iterator {
	var pending []Tuple
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			if len(pending) > 0 {
				t := pending[0]
				pending = pending[1:]
				return t, true, nil
			}
			t, ok, err := in.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			outs, err := fn(t)
			if err != nil {
				return nil, false, err
			}
			pending = outs
		}
	}, in.Close)
}

// Project keeps only the named metadata fields (plus lineage attributes)
// and drops the dense payload — the classic width reducer before
// materialization.
func Project(in Iterator, fields ...string) Iterator {
	keep := make(map[string]bool, len(fields)+2)
	for _, f := range fields {
		keep[f] = true
	}
	keep["_source"] = true
	keep["_frame"] = true
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		out := make(Tuple, len(t))
		for i, p := range t {
			q := &Patch{ID: p.ID, Ref: p.Ref, Meta: Metadata{}}
			for k, v := range p.Meta {
				if keep[k] {
					q.Meta[k] = v
				}
			}
			out[i] = q
		}
		return []Tuple{out}, nil
	})
}

// Limit stops after n tuples.
func Limit(in Iterator, n int) Iterator {
	emitted := 0
	return NewFuncIterator(func() (Tuple, bool, error) {
		if emitted >= n {
			return nil, false, nil
		}
		t, ok, err := in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		emitted++
		return t, true, nil
	}, in.Close)
}

// OrderBy sorts (materializing) by a comparable metadata field of the
// first patch.
func OrderBy(in Iterator, field string, asc bool) Iterator {
	ts, err := Drain(in)
	if err != nil {
		return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
	}
	sort.SliceStable(ts, func(i, j int) bool {
		vi := ts[i][0].Meta[field]
		vj := ts[j][0].Meta[field]
		if asc {
			return vi.Less(vj)
		}
		return vj.Less(vi)
	})
	return NewSliceIterator(ts)
}

// TopK is OrderBy immediately followed by Limit(n), computed with a
// bounded heap: O(len·log n) compares and O(n) extra memory instead of a
// full materializing sort. The emitted tuples are exactly the first n of
// OrderBy's stable output (ties resolve in input order).
func TopK(in Iterator, field string, asc bool, n int) Iterator {
	ts, err := Drain(in)
	if err != nil {
		return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
	}
	if n > len(ts) {
		n = len(ts)
	}
	if n < 0 {
		n = 0
	}
	top := topKIndexes(len(ts), n, func(a, b int) bool {
		va, vb := ts[a][0].Meta[field], ts[b][0].Meta[field]
		if asc {
			if va.Less(vb) {
				return true
			}
			if vb.Less(va) {
				return false
			}
		} else {
			if vb.Less(va) {
				return true
			}
			if va.Less(vb) {
				return false
			}
		}
		return a < b
	})
	out := make([]Tuple, n)
	for i, idx := range top {
		out[i] = ts[idx]
	}
	return NewSliceIterator(out)
}

// TopKPatches returns the first k patches of a stable sort of ps by
// field (ties in input order), in sorted order, without sorting the
// whole input: a bounded heap keeps the best k seen. k >= len(ps)
// degenerates to a full stable sort of a copy; ps is never mutated.
// Patches missing the field order as the zero Value (before every real
// value ascending, after descending), matching the sort comparator.
func TopKPatches(ps []*Patch, field string, desc bool, k int) []*Patch {
	if k > len(ps) {
		k = len(ps)
	}
	if k <= 0 {
		return nil
	}
	top := topKIndexes(len(ps), k, func(a, b int) bool {
		va, vb := ps[a].Meta[field], ps[b].Meta[field]
		if desc {
			if vb.Less(va) {
				return true
			}
			if va.Less(vb) {
				return false
			}
		} else {
			if va.Less(vb) {
				return true
			}
			if vb.Less(va) {
				return false
			}
		}
		return a < b
	})
	out := make([]*Patch, k)
	for i, idx := range top {
		out[i] = ps[idx]
	}
	return out
}

// topKIndexes selects the k smallest of [0, n) under the strict total
// order `before` and returns them sorted. The bounded heap keeps the
// worst survivor at the root, so each of the remaining n-k candidates
// costs one compare (plus log k when it displaces).
func topKIndexes(n, k int, before func(a, b int) bool) []int {
	if k <= 0 {
		return nil
	}
	h := make([]int, k)
	for i := range h {
		h[i] = i
	}
	down := func(i int) {
		for {
			worst := i
			if l := 2*i + 1; l < k && before(h[worst], h[l]) {
				worst = l
			}
			if r := 2*i + 2; r < k && before(h[worst], h[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for i := k/2 - 1; i >= 0; i-- {
		down(i)
	}
	for i := k; i < n; i++ {
		if before(i, h[0]) {
			h[0] = i
			down(0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return before(h[i], h[j]) })
	return h
}

// GroupCount groups by a metadata field and emits one synthetic patch per
// group with fields {group, count} — the aggregation q2 needs ("count per
// frame number").
func GroupCount(in Iterator, field string) Iterator {
	ts, err := Drain(in)
	if err != nil {
		return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
	}
	type group struct {
		val Value
		n   int64
	}
	byKey := map[string]*group{}
	var order []string
	for _, t := range ts {
		v, ok := t[0].Meta[field]
		if !ok {
			continue
		}
		sk, err := v.SortKey()
		if err != nil {
			continue
		}
		k := string(sk)
		g, ok := byKey[k]
		if !ok {
			g = &group{val: v}
			byKey[k] = g
			order = append(order, k)
		}
		g.n++
	}
	sort.Strings(order)
	out := make([]Tuple, 0, len(order))
	for _, k := range order {
		g := byKey[k]
		out = append(out, Tuple{&Patch{Meta: Metadata{
			"group": g.val,
			"count": IntV(g.n),
		}}})
	}
	return NewSliceIterator(out)
}

// AggCount consumes the input and emits a single tuple {count: n}.
func AggCount(in Iterator) Iterator {
	n, err := Count(in)
	if err != nil {
		return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
	}
	return NewSliceIterator([]Tuple{{&Patch{Meta: Metadata{"count": IntV(int64(n))}}}})
}

// VecField extracts the float32 vector under field, or the Data payload
// when field is "".
func VecField(p *Patch, field string) ([]float32, error) {
	vec, ok := vecOf(p, field)
	if !ok {
		return nil, fmt.Errorf("core: patch %d has no vector under %q", p.ID, field)
	}
	return vec, nil
}
