package core

import (
	"fmt"
	"sort"

	"repro/internal/balltree"
	"repro/internal/exec"
	"repro/internal/tensor"
)

// Theta is an arbitrary join predicate over one patch from each side.
type Theta func(l, r *Patch) bool

// NestedLoopJoin compares all pairs (the generic θ-join of §5); the right
// side is materialized. Output tuples concatenate left and right patches.
func NestedLoopJoin(left, right Iterator, theta Theta) Iterator {
	rts, err := Drain(right)
	if err != nil {
		return errIter(err)
	}
	var cur Tuple
	var ri int
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			if cur == nil {
				t, ok, err := left.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				cur = t
				ri = 0
			}
			for ri < len(rts) {
				r := rts[ri]
				ri++
				if theta(cur[0], r[0]) {
					return append(append(Tuple{}, cur...), r...), true, nil
				}
			}
			cur = nil
		}
	}, left.Close)
}

func errIter(err error) Iterator {
	return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
}

// HashEquiJoin joins on equality of one metadata field, building an
// in-memory hash table on the right side.
func HashEquiJoin(left, right Iterator, leftField, rightField string) Iterator {
	rts, err := Drain(right)
	if err != nil {
		return errIter(err)
	}
	table := map[string][]Tuple{}
	for _, t := range rts {
		v, ok := t[0].Meta[rightField]
		if !ok {
			continue
		}
		sk, err := v.SortKey()
		if err != nil {
			continue
		}
		table[string(sk)] = append(table[string(sk)], t)
	}
	var matches []Tuple
	var cur Tuple
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			if len(matches) > 0 {
				r := matches[0]
				matches = matches[1:]
				return append(append(Tuple{}, cur...), r...), true, nil
			}
			t, ok, err := left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			v, has := t[0].Meta[leftField]
			if !has {
				continue
			}
			sk, err := v.SortKey()
			if err != nil {
				continue
			}
			cur = t
			matches = append([]Tuple(nil), table[string(sk)]...)
		}
	}, left.Close)
}

// IndexEquiJoin probes a persistent equality index on the right
// collection for each left tuple (the paper's index join).
func IndexEquiJoin(db *DB, left Iterator, leftField string, rightCol *Collection, idx *Index) Iterator {
	var pending []Tuple
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			if len(pending) > 0 {
				t := pending[0]
				pending = pending[1:]
				return t, true, nil
			}
			t, ok, err := left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			v, has := t[0].Meta[leftField]
			if !has {
				continue
			}
			ids, err := idx.LookupEq(v)
			if err != nil {
				return nil, false, err
			}
			for _, id := range ids {
				r, err := rightCol.Get(id)
				if err != nil {
					return nil, false, err
				}
				pending = append(pending, append(append(Tuple{}, t...), r))
			}
		}
	}, left.Close)
}

// SimilarityJoinOpts configures a feature-matching join.
type SimilarityJoinOpts struct {
	// LeftField/RightField name the vector metadata ("" = Data payload).
	LeftField, RightField string
	// Eps is the Euclidean match threshold.
	Eps float64
	// ExcludeSelf drops pairs with identical patch ids (self-joins).
	ExcludeSelf bool
	// DedupUnordered keeps only pairs with left.ID < right.ID (self-joins).
	DedupUnordered bool
	// Device overrides the database's device for batched kernels. The
	// serving layer leases one device per worker and pins joins to it, so
	// concurrent queries never oversubscribe a simulated accelerator. Nil
	// uses the database's device.
	Device exec.Device
}

// SimilarityJoinNested is the baseline all-pairs implementation: for every
// left patch, scan every right patch and compare distances one by one —
// what DeepLens runs when no index exists.
func SimilarityJoinNested(left, right []*Patch, opts SimilarityJoinOpts) ([]Tuple, error) {
	var out []Tuple
	eps2 := opts.Eps * opts.Eps
	for _, l := range left {
		lv, err := VecField(l, opts.LeftField)
		if err != nil {
			return nil, err
		}
		for _, r := range right {
			if opts.ExcludeSelf && l.ID == r.ID {
				continue
			}
			if opts.DedupUnordered && l.ID >= r.ID {
				continue
			}
			rv, err := VecField(r, opts.RightField)
			if err != nil {
				return nil, err
			}
			if len(rv) != len(lv) {
				return nil, fmt.Errorf("core: similarity join dims %d vs %d", len(lv), len(rv))
			}
			var s float64
			for i := range lv {
				d := float64(lv[i]) - float64(rv[i])
				s += d * d
				if s > eps2 {
					break
				}
			}
			if s <= eps2 {
				out = append(out, Tuple{l, r})
			}
		}
	}
	return out, nil
}

// SimilarityJoinBatched is the vectorized all-pairs implementation: the
// full distance matrix is computed with one device kernel per left block —
// the execution Figure 8 compares across CPU/AVX/GPU at query time.
func SimilarityJoinBatched(db *DB, left, right []*Patch, opts SimilarityJoinOpts) ([]Tuple, error) {
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	lv0, err := VecField(left[0], opts.LeftField)
	if err != nil {
		return nil, err
	}
	dim := len(lv0)
	// The three staging matrices (stacked left vectors, stacked right
	// vectors, per-block distance tile) are identical across calls at
	// steady state; draw them from the scratch pool instead of allocating
	// per join so concurrent serving stays allocation-steady.
	lx := tensor.GetScratch(len(left) * dim)
	defer tensor.PutScratch(lx)
	for i, p := range left {
		v, err := VecField(p, opts.LeftField)
		if err != nil {
			return nil, err
		}
		if len(v) != dim {
			return nil, fmt.Errorf("core: similarity join dims %d vs %d", dim, len(v))
		}
		copy(lx[i*dim:], v)
	}
	ry := tensor.GetScratch(len(right) * dim)
	defer tensor.PutScratch(ry)
	for i, p := range right {
		v, err := VecField(p, opts.RightField)
		if err != nil {
			return nil, err
		}
		if len(v) != dim {
			return nil, fmt.Errorf("core: similarity join dims %d vs %d", dim, len(v))
		}
		copy(ry[i*dim:], v)
	}
	dev := opts.Device
	if dev == nil {
		dev = db.Device()
	}
	eps2 := float32(opts.Eps * opts.Eps)
	var out []Tuple
	// Block the left side to bound the distance-matrix size; one pooled
	// tile is reused across every block (and across calls).
	const block = 256
	n := block
	if len(left) < n {
		n = len(left)
	}
	dists := tensor.GetScratch(n * len(right))
	defer tensor.PutScratch(dists)
	for lo := 0; lo < len(left); lo += block {
		hi := lo + block
		if hi > len(left) {
			hi = len(left)
		}
		m := hi - lo
		dev.PairwiseSqDist(lx[lo*dim:hi*dim], ry, m, len(right), dim, dists[:m*len(right)])
		for i := 0; i < m; i++ {
			l := left[lo+i]
			for j, r := range right {
				if dists[i*len(right)+j] > eps2 {
					continue
				}
				if opts.ExcludeSelf && l.ID == r.ID {
					continue
				}
				if opts.DedupUnordered && l.ID >= r.ID {
					continue
				}
				out = append(out, Tuple{l, r})
			}
		}
	}
	return out, nil
}

// SimilarityJoinIndexed probes a prebuilt similarity index on the right
// collection.
func SimilarityJoinIndexed(db *DB, left []*Patch, rightCol *Collection, idx *Index, opts SimilarityJoinOpts) ([]Tuple, error) {
	var out []Tuple
	for _, l := range left {
		lv, err := VecField(l, opts.LeftField)
		if err != nil {
			return nil, err
		}
		ids, err := idx.LookupSimilar(lv, opts.Eps)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if opts.ExcludeSelf && l.ID == PatchID(id) {
				continue
			}
			if opts.DedupUnordered && l.ID >= PatchID(id) {
				continue
			}
			r, err := rightCol.Get(id)
			if err != nil {
				return nil, err
			}
			out = append(out, Tuple{l, r})
		}
	}
	return out, nil
}

// SimilarityJoinVecIndexed probes the maintained per-collection vector
// index on the right collection — the eps-range analog of
// SimilarityJoinIndexed, but against a VectorIndex that is extended
// incrementally on append instead of rebuilt per version. With an
// exact-mode index the pair set is identical to the all-pairs methods.
func SimilarityJoinVecIndexed(left []*Patch, rightCol *Collection, vi *VectorIndex, opts SimilarityJoinOpts) ([]Tuple, error) {
	var out []Tuple
	var ferr error
	for _, l := range left {
		lv, err := VecField(l, opts.LeftField)
		if err != nil {
			return nil, err
		}
		vi.RangeSearch(lv, opts.Eps, func(id PatchID, _ float64) bool {
			if opts.ExcludeSelf && l.ID == id {
				return true
			}
			if opts.DedupUnordered && l.ID >= id {
				return true
			}
			r, err := rightCol.Get(id)
			if err != nil {
				ferr = err
				return false
			}
			out = append(out, Tuple{l, r})
			return true
		})
		if ferr != nil {
			return nil, ferr
		}
	}
	return out, nil
}

// SimilarityJoinOnTheFly implements §5's "On-The-Fly Index Similarity
// Join": build an in-memory ball tree over the smaller relation, then
// probe with the other. Index construction is charged to the query.
func SimilarityJoinOnTheFly(left, right []*Patch, opts SimilarityJoinOpts) ([]Tuple, error) {
	buildRight := len(right) <= len(left)
	build, probe := right, left
	buildField, probeField := opts.RightField, opts.LeftField
	if !buildRight {
		build, probe = left, right
		buildField, probeField = opts.LeftField, opts.RightField
	}
	pts := make([]balltree.Point, 0, len(build))
	byID := make(map[PatchID]*Patch, len(build))
	for _, p := range build {
		v, err := VecField(p, buildField)
		if err != nil {
			return nil, err
		}
		pts = append(pts, balltree.Point{Vec: v, ID: uint64(p.ID)})
		byID[p.ID] = p
	}
	bt, err := balltree.Build(pts)
	if err != nil {
		return nil, err
	}
	var out []Tuple
	for _, q := range probe {
		qv, err := VecField(q, probeField)
		if err != nil {
			return nil, err
		}
		bt.RangeSearch(qv, opts.Eps, func(pt balltree.Point, _ float64) bool {
			m := byID[PatchID(pt.ID)]
			var l, r *Patch
			if buildRight {
				l, r = q, m
			} else {
				l, r = m, q
			}
			if opts.ExcludeSelf && l.ID == r.ID {
				return true
			}
			if opts.DedupUnordered && l.ID >= r.ID {
				return true
			}
			out = append(out, Tuple{l, r})
			return true
		})
	}
	return out, nil
}

// SpatialJoinNested is the baseline bbox-intersection join: all pairs of
// patches whose rect fields overlap.
func SpatialJoinNested(left, right []*Patch, leftField, rightField string) ([]Tuple, error) {
	var out []Tuple
	for _, l := range left {
		lb, ok := l.Meta[leftField]
		if !ok || len(lb.V) != 4 {
			continue
		}
		for _, r := range right {
			rb, ok := r.Meta[rightField]
			if !ok || len(rb.V) != 4 {
				continue
			}
			if rectsIntersect(lb.V, rb.V) {
				out = append(out, Tuple{l, r})
			}
		}
	}
	return out, nil
}

// SpatialJoinIndexed probes a prebuilt R-tree on the right collection for
// every left patch — the paper's "containment and intersection" use of the
// multidimensional index (§3.2).
func SpatialJoinIndexed(db *DB, left []*Patch, rightCol *Collection, idx *Index, leftField string) ([]Tuple, error) {
	var out []Tuple
	for _, l := range left {
		lb, ok := l.Meta[leftField]
		if !ok || len(lb.V) != 4 {
			continue
		}
		ids, err := idx.LookupIntersect(float64(lb.V[0]), float64(lb.V[1]), float64(lb.V[2]), float64(lb.V[3]))
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			r, err := rightCol.Get(id)
			if err != nil {
				return nil, err
			}
			out = append(out, Tuple{l, r})
		}
	}
	return out, nil
}

func rectsIntersect(a, b []float32) bool {
	return a[0] <= b[2] && b[0] <= a[2] && a[1] <= b[3] && b[1] <= a[3]
}

// RangeThetaJoinSorted evaluates l.field > r.field + gap by sorting the
// right side and binary-searching per left tuple — the accelerated plan
// for q6's depth comparison. Results match the nested-loop θ-join.
func RangeThetaJoinSorted(left, right []*Patch, field string, gap float64) ([]Tuple, error) {
	type entry struct {
		v float64
		p *Patch
	}
	rs := make([]entry, 0, len(right))
	for _, r := range right {
		v, ok := r.Meta[field]
		if !ok {
			continue
		}
		rs = append(rs, entry{v.AsFloat(), r})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].v < rs[j].v })
	var out []Tuple
	for _, l := range left {
		lv, ok := l.Meta[field]
		if !ok {
			continue
		}
		limit := lv.AsFloat() - gap
		// All right entries with value < limit match.
		n := sort.Search(len(rs), func(i int) bool { return rs[i].v >= limit })
		for i := 0; i < n; i++ {
			if rs[i].p.ID == l.ID {
				continue
			}
			out = append(out, Tuple{l, rs[i].p})
		}
	}
	return out, nil
}

// DistinctClusters groups patches into identity clusters by single-link
// similarity (pairs within eps are the same identity) and returns one
// representative per cluster — the deduplication step of q4. pairs must
// list matching pairs (e.g. from a similarity self-join with
// DedupUnordered).
func DistinctClusters(patches []*Patch, pairs []Tuple) []*Patch {
	parent := make(map[PatchID]PatchID, len(patches))
	var find func(PatchID) PatchID
	find = func(x PatchID) PatchID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range patches {
		parent[p.ID] = p.ID
	}
	for _, pr := range pairs {
		a, b := find(pr[0].ID), find(pr[1].ID)
		if a != b {
			parent[a] = b
		}
	}
	seen := map[PatchID]bool{}
	var out []*Patch
	for _, p := range patches {
		root := find(p.ID)
		if !seen[root] {
			seen[root] = true
			out = append(out, p)
		}
	}
	return out
}
