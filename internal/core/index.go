package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/balltree"
	"repro/internal/btree"
	"repro/internal/hashidx"
	"repro/internal/kdtree"
	"repro/internal/lsh"
	"repro/internal/rtree"
)

// IndexKind selects an access method (§3.2: hash, B+ tree, sorted file on
// single attributes; R-tree and ball tree on multidimensional data; LSH as
// the approximate alternative).
type IndexKind int

// Supported index kinds.
const (
	IdxBTree IndexKind = iota + 1
	IdxHash
	IdxRTree
	IdxBallTree
	IdxKDTree
	IdxLSH
)

func (k IndexKind) String() string {
	switch k {
	case IdxBTree:
		return "btree"
	case IdxHash:
		return "hash"
	case IdxRTree:
		return "rtree"
	case IdxBallTree:
		return "balltree"
	case IdxKDTree:
		return "kdtree"
	case IdxLSH:
		return "lsh"
	default:
		return fmt.Sprintf("idx(%d)", int(k))
	}
}

// Index is a secondary index over one metadata field of a collection.
// B+ tree and hash indexes are persistent (they live in the database's
// page file); the multidimensional indexes are memory-resident and
// rebuilt on demand after reopen (descriptor-tracked).
type Index struct {
	Kind  IndexKind
	Col   string
	Field string
	// BuildTime records construction cost (Figure 6's subject).
	BuildTime time.Duration
	// BuiltVersion is the collection version the index was built over.
	// Appends bump the collection's version but never update indexes, so
	// a reader needing index/collection agreement must compare this
	// against Collection.Version() and rebuild on mismatch.
	BuiltVersion uint64

	bt   *btree.Tree
	hash *hashidx.Index
	rt   *rtree.Tree
	ball *balltree.Tree
	kd   *kdtree.Tree
	lshI *lsh.Index
}

type idxDesc struct {
	Kind    IndexKind `json:"kind"`
	Col     string    `json:"col"`
	Field   string    `json:"field"`
	Root    uint64    `json:"root,omitempty"` // btree root or hash meta page
	Version uint64    `json:"version,omitempty"`
}

func indexKey(col, field string, kind IndexKind) string {
	return fmt.Sprintf("idx.%s.%s.%s", col, field, kind)
}

// vecOf extracts the indexable vector for a field ("" = the Data payload).
func vecOf(p *Patch, field string) ([]float32, bool) {
	if field == "" {
		if p.Data != nil && p.Data.F32s != nil {
			return p.Data.F32s, true
		}
		return nil, false
	}
	v, ok := p.Meta[field]
	if !ok || (v.Kind != KindVec && v.Kind != KindRect) {
		return nil, false
	}
	return v.V, true
}

// BuildIndex constructs an index of the given kind over field on col and
// registers it. Rebuilding an existing (col, field, kind) replaces it.
func (db *DB) BuildIndex(col *Collection, field string, kind IndexKind) (*Index, error) {
	patches, version, err := col.Snapshot()
	if err != nil {
		return nil, err
	}
	idx := &Index{Kind: kind, Col: col.Name(), Field: field, BuiltVersion: version}
	start := time.Now()
	switch kind {
	case IdxBTree:
		t := btree.New(db.store.Pager())
		for _, p := range patches {
			k, err := compositeKey(p, field)
			if err != nil {
				return nil, err
			}
			if err := t.Put(k, nil); err != nil {
				return nil, err
			}
		}
		idx.bt = t
	case IdxHash:
		h, err := hashidx.Create(db.store.Pager())
		if err != nil {
			return nil, err
		}
		idx.hash = h
		for _, p := range patches {
			if err := hashPostingAdd(h, p, field); err != nil {
				return nil, err
			}
		}
		if err := h.Flush(); err != nil {
			return nil, err
		}
	case IdxRTree:
		dim := 2
		t := rtree.New(dim)
		for _, p := range patches {
			vec, ok := vecOf(p, field)
			if !ok || len(vec) != 4 {
				continue
			}
			r := rtree.BBox2D(float64(vec[0]), float64(vec[1]), float64(vec[2]), float64(vec[3]))
			if err := t.Insert(r, uint64(p.ID)); err != nil {
				return nil, err
			}
		}
		idx.rt = t
	case IdxBallTree:
		var pts []balltree.Point
		for _, p := range patches {
			if vec, ok := vecOf(p, field); ok {
				pts = append(pts, balltree.Point{Vec: vec, ID: uint64(p.ID)})
			}
		}
		t, err := balltree.Build(pts)
		if err != nil {
			return nil, err
		}
		idx.ball = t
	case IdxKDTree:
		var pts []kdtree.Point
		for _, p := range patches {
			if vec, ok := vecOf(p, field); ok {
				pts = append(pts, kdtree.Point{Vec: vec, ID: uint64(p.ID)})
			}
		}
		t, err := kdtree.Build(pts)
		if err != nil {
			return nil, err
		}
		idx.kd = t
	case IdxLSH:
		dim := 0
		for _, p := range patches {
			if vec, ok := vecOf(p, field); ok {
				dim = len(vec)
				break
			}
		}
		if dim == 0 {
			return nil, fmt.Errorf("core: no vectors under field %q to index", field)
		}
		ix, err := lsh.New(dim, 6, 16, 42)
		if err != nil {
			return nil, err
		}
		for _, p := range patches {
			if vec, ok := vecOf(p, field); ok && len(vec) == dim {
				if err := ix.Insert(lsh.Point{Vec: vec, ID: uint64(p.ID)}); err != nil {
					return nil, err
				}
			}
		}
		idx.lshI = ix
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", kind)
	}
	idx.BuildTime = time.Since(start)

	// Register.
	d := idxDesc{Kind: kind, Col: col.Name(), Field: field, Version: version}
	switch kind {
	case IdxBTree:
		d.Root = idx.bt.Root()
	case IdxHash:
		d.Root = idx.hash.Meta()
	}
	dv, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	if err := db.sys.Put([]byte(indexKey(col.Name(), field, kind)), dv); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.indexes[col.Name()] == nil {
		db.indexes[col.Name()] = make(map[string]*Index)
	}
	db.indexes[col.Name()][field+"/"+kind.String()] = idx
	db.mu.Unlock()
	return idx, nil
}

// Index returns a registered index, reopening persistent ones and
// rebuilding memory-resident ones as needed. Returns ErrNotFound when no
// such index was ever built.
func (db *DB) Index(col *Collection, field string, kind IndexKind) (*Index, error) {
	db.mu.RLock()
	if m := db.indexes[col.Name()]; m != nil {
		if idx, ok := m[field+"/"+kind.String()]; ok {
			db.mu.RUnlock()
			return idx, nil
		}
	}
	db.mu.RUnlock()
	v, err := db.sys.Get([]byte(indexKey(col.Name(), field, kind)))
	if err != nil {
		return nil, fmt.Errorf("%w: index %s on %s.%s", ErrNotFound, kind, col.Name(), field)
	}
	var d idxDesc
	if err := json.Unmarshal(v, &d); err != nil {
		return nil, err
	}
	switch kind {
	case IdxBTree:
		idx := &Index{Kind: kind, Col: d.Col, Field: d.Field, BuiltVersion: d.Version,
			bt: btree.Open(db.store.Pager(), d.Root)}
		db.registerMem(col.Name(), field, kind, idx)
		return idx, nil
	case IdxHash:
		h, err := hashidx.Open(db.store.Pager(), d.Root)
		if err != nil {
			return nil, err
		}
		idx := &Index{Kind: kind, Col: d.Col, Field: d.Field, BuiltVersion: d.Version, hash: h}
		db.registerMem(col.Name(), field, kind, idx)
		return idx, nil
	default:
		// Memory-resident: rebuild from the collection.
		return db.BuildIndex(col, field, kind)
	}
}

// HasIndex reports whether an index descriptor exists without building.
func (db *DB) HasIndex(col *Collection, field string, kind IndexKind) bool {
	db.mu.RLock()
	if m := db.indexes[col.Name()]; m != nil {
		if _, ok := m[field+"/"+kind.String()]; ok {
			db.mu.RUnlock()
			return true
		}
	}
	db.mu.RUnlock()
	_, err := db.sys.Get([]byte(indexKey(col.Name(), field, kind)))
	return err == nil
}

func (db *DB) registerMem(col, field string, kind IndexKind, idx *Index) {
	db.mu.Lock()
	if db.indexes[col] == nil {
		db.indexes[col] = make(map[string]*Index)
	}
	db.indexes[col][field+"/"+kind.String()] = idx
	db.mu.Unlock()
}

// compositeKey encodes (field value, patch id) for duplicate-tolerant
// B+ tree indexing; prefix scans give equality and range lookups.
func compositeKey(p *Patch, field string) ([]byte, error) {
	v, ok := p.Meta[field]
	if !ok {
		return nil, fmt.Errorf("core: patch %d lacks field %q", p.ID, field)
	}
	sk, err := v.SortKey()
	if err != nil {
		return nil, err
	}
	k := make([]byte, 2+len(sk)+8)
	binary.BigEndian.PutUint16(k, uint16(len(sk)))
	copy(k[2:], sk)
	binary.BigEndian.PutUint64(k[2+len(sk):], uint64(p.ID))
	return k, nil
}

func compositePrefix(v Value) ([]byte, error) {
	sk, err := v.SortKey()
	if err != nil {
		return nil, err
	}
	k := make([]byte, 2+len(sk))
	binary.BigEndian.PutUint16(k, uint16(len(sk)))
	copy(k[2:], sk)
	return k, nil
}

func compositePatchID(k []byte) PatchID {
	return PatchID(binary.BigEndian.Uint64(k[len(k)-8:]))
}

// hash posting lists: key = sortkey || chunk number; each chunk holds up
// to postingChunk ids.
const postingChunk = 400

func hashPostingAdd(h *hashidx.Index, p *Patch, field string) error {
	v, ok := p.Meta[field]
	if !ok {
		return fmt.Errorf("core: patch %d lacks field %q", p.ID, field)
	}
	sk, err := v.SortKey()
	if err != nil {
		return err
	}
	for chunk := uint32(0); ; chunk++ {
		key := postingKey(sk, chunk)
		cur, err := h.Get(key)
		if errors.Is(err, hashidx.ErrNotFound) {
			cur = nil
		} else if err != nil {
			return err
		}
		if len(cur)/8 < postingChunk {
			var idb [8]byte
			binary.LittleEndian.PutUint64(idb[:], uint64(p.ID))
			return h.Put(key, append(cur, idb[:]...))
		}
	}
}

func postingKey(sk []byte, chunk uint32) []byte {
	k := make([]byte, len(sk)+4)
	copy(k, sk)
	binary.BigEndian.PutUint32(k[len(sk):], chunk)
	return k
}

// LookupEq returns the patch ids with field == v (hash or B+ tree index).
func (idx *Index) LookupEq(v Value) ([]PatchID, error) {
	switch idx.Kind {
	case IdxHash:
		sk, err := v.SortKey()
		if err != nil {
			return nil, err
		}
		var out []PatchID
		for chunk := uint32(0); ; chunk++ {
			cur, err := idx.hash.Get(postingKey(sk, chunk))
			if errors.Is(err, hashidx.ErrNotFound) {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			for off := 0; off+8 <= len(cur); off += 8 {
				out = append(out, PatchID(binary.LittleEndian.Uint64(cur[off:])))
			}
			if len(cur)/8 < postingChunk {
				return out, nil
			}
		}
	case IdxBTree:
		prefix, err := compositePrefix(v)
		if err != nil {
			return nil, err
		}
		var out []PatchID
		end := append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		err = idx.bt.Scan(prefix, end, func(k, _ []byte) bool {
			if bytes.HasPrefix(k, prefix) {
				out = append(out, compositePatchID(k))
			}
			return true
		})
		return out, err
	default:
		return nil, fmt.Errorf("core: %v index does not support equality lookup", idx.Kind)
	}
}

// LookupRange returns patch ids with lo <= field < hi (B+ tree only).
// Nil bounds are unbounded.
func (idx *Index) LookupRange(lo, hi *Value) ([]PatchID, error) {
	if idx.Kind != IdxBTree {
		return nil, fmt.Errorf("core: %v index does not support range lookup", idx.Kind)
	}
	var loK, hiK []byte
	var err error
	if lo != nil {
		if loK, err = compositePrefix(*lo); err != nil {
			return nil, err
		}
	}
	if hi != nil {
		if hiK, err = compositePrefix(*hi); err != nil {
			return nil, err
		}
	}
	var out []PatchID
	err = idx.bt.Scan(loK, hiK, func(k, _ []byte) bool {
		out = append(out, compositePatchID(k))
		return true
	})
	return out, err
}

// LookupSimilar returns patch ids whose indexed vector lies within eps of
// q (ball tree, KD-tree or LSH).
func (idx *Index) LookupSimilar(q []float32, eps float64) ([]PatchID, error) {
	var out []PatchID
	switch idx.Kind {
	case IdxBallTree:
		idx.ball.RangeSearch(q, eps, func(p balltree.Point, _ float64) bool {
			out = append(out, PatchID(p.ID))
			return true
		})
	case IdxKDTree:
		idx.kd.RangeSearch(q, eps, func(p kdtree.Point, _ float64) bool {
			out = append(out, PatchID(p.ID))
			return true
		})
	case IdxLSH:
		idx.lshI.RangeSearch(q, eps, func(p lsh.Point, _ float64) bool {
			out = append(out, PatchID(p.ID))
			return true
		})
	default:
		return nil, fmt.Errorf("core: %v index does not support similarity lookup", idx.Kind)
	}
	return out, nil
}

// LookupIntersect returns patch ids whose indexed rect intersects the
// query box (R-tree only).
func (idx *Index) LookupIntersect(x1, y1, x2, y2 float64) ([]PatchID, error) {
	if idx.Kind != IdxRTree {
		return nil, fmt.Errorf("core: %v index does not support spatial lookup", idx.Kind)
	}
	var out []PatchID
	idx.rt.SearchIntersect(rtree.BBox2D(x1, y1, x2, y2), func(e rtree.Entry) bool {
		out = append(out, PatchID(e.ID))
		return true
	})
	return out, nil
}
