package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/exec"
	"repro/internal/kv"
	"repro/internal/video"
	"repro/internal/vision"
)

// renderScene builds a small traffic scene for ETL tests.
func renderScene(seed int64) *vision.Scene {
	rng := rand.New(rand.NewSource(seed))
	const w, h = 128, 72
	horizon := h / 4
	sc := &vision.Scene{W: w, H: h, Horizon: horizon, Focal: float64(h) / 3,
		Background: vision.NewTrafficBackground(w, h, horizon)}
	for i := 0; i < 3; i++ {
		o := vision.NewObject(uint64(i+1), vision.ClassCar, rng)
		o.X0 = float64(10 + i*25)
		o.VX = 0.5
		o.Z0 = 4 + float64(i)
		o.Appear, o.Vanish = 0, 1000
		sc.Objects = append(sc.Objects, o)
	}
	return sc
}

func TestLoadVideoPushdown(t *testing.T) {
	sc := renderScene(1)
	st, err := kv.Open(filepath.Join(t.TempDir(), "v.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b, _ := st.Bucket("vid")
	ff := video.NewFrameFile(b, true, codec.QualityHigh)
	if err := video.Ingest(ff, 30, func(i uint64) *codec.Image {
		img, _ := sc.Render(int(i))
		return img
	}); err != nil {
		t.Fatal(err)
	}
	ps, err := DrainPatches(LoadVideo("vid", ff, FrameRange{Lo: 5, Hi: 12}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 7 {
		t.Fatalf("loaded %d frames, want 7", len(ps))
	}
	for i, p := range ps {
		if p.Ref.Frame != uint64(5+i) || p.Ref.Source != "vid" {
			t.Fatalf("frame %d: ref %+v", i, p.Ref)
		}
		if p.Meta["frameno"].I != int64(5+i) {
			t.Fatal("frameno metadata wrong")
		}
		if p.Data == nil || p.Data.Shape[0] != 72 || p.Data.Shape[1] != 128 {
			t.Fatalf("payload shape %v", p.Data.Shape)
		}
	}
	// Early close does not deadlock the producer goroutine.
	it := LoadVideo("vid", ff, FrameRange{})
	if _, _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectGeneratorLineageAndSchema(t *testing.T) {
	sc := renderScene(2)
	img, gts := sc.Render(0)
	frame := &Patch{ID: 77, Ref: Ref{Source: "cam", Frame: 0}, Data: ImageToTensor(img),
		Meta: Metadata{"frameno": IntV(0)}}
	det := vision.NewDetector(exec.New(exec.CPU), 42)
	ps, err := DrainPatches(DetectGenerator(det, NewSliceIterator([]Tuple{{frame}})))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatalf("no detections (scene has %d objects)", len(gts))
	}
	schema := DetectionSchema()
	for _, p := range ps {
		if p.Ref.Parent != 77 || p.Ref.Source != "cam" {
			t.Fatalf("lineage broken: %+v", p.Ref)
		}
		p.Meta["_source"] = StrV(p.Ref.Source)
		p.Meta["_frame"] = IntV(0)
		if err := schema.ValidatePatch(p); err != nil {
			t.Fatalf("generator output fails its own schema: %v", err)
		}
		if p.Data == nil {
			t.Fatal("detection patch lost its crop")
		}
	}
}

func TestTransformersAddFields(t *testing.T) {
	sc := renderScene(3)
	img, _ := sc.Render(0)
	frame := &Patch{Ref: Ref{Source: "cam", Frame: 0}, Data: ImageToTensor(img),
		Meta: Metadata{"frameno": IntV(0), "bbox": RectV(10, 30, 40, 60)}}
	dev := exec.New(exec.CPU)
	emb := vision.NewEmbedder(dev, 42)
	dm := vision.NewDepthModel(dev, sc.Horizon, sc.Focal, 42)

	it := NewSliceIterator([]Tuple{{frame}})
	it = HistogramTransformer(it)
	it = GridHistogramTransformer(3, it)
	it = EmbedTransformer(emb, it)
	it = DepthTransformer(dm, it)
	ps, err := DrainPatches(it)
	if err != nil {
		t.Fatal(err)
	}
	p := ps[0]
	if len(p.Meta["hist"].V) != vision.HistogramDim {
		t.Fatalf("hist dim %d", len(p.Meta["hist"].V))
	}
	if len(p.Meta["ghist"].V) != 64 {
		t.Fatalf("ghist dim %d", len(p.Meta["ghist"].V))
	}
	if len(p.Meta["emb"].V) != emb.Dim() {
		t.Fatalf("emb dim %d", len(p.Meta["emb"].V))
	}
	if p.Meta["depth"].F <= 0 {
		t.Fatalf("depth %f", p.Meta["depth"].F)
	}
	// DropData strips the payload but keeps features.
	dropped, _ := DrainPatches(DropData(NewSliceIterator([]Tuple{{p}})))
	if dropped[0].Data != nil {
		t.Fatal("DropData kept payload")
	}
	if len(dropped[0].Meta["emb"].V) == 0 {
		t.Fatal("DropData lost features")
	}
}

func TestOCRGeneratorOffsetsIntoFrame(t *testing.T) {
	// A synthetic document patch positioned at (20, 10) in its frame.
	img := codec.NewImage(80, 30)
	for i := range img.Pix {
		img.Pix[i] = 250
	}
	vision.DrawString(img, "HI42", 4, 4, 2, [3]uint8{10, 10, 10})
	patch := &Patch{ID: 5, Ref: Ref{Source: "doc", Frame: 3}, Data: ImageToTensor(img),
		Meta: Metadata{"bbox": RectV(20, 10, 100, 40), "frameno": IntV(3)}}
	ps, err := DrainPatches(OCRGenerator(vision.NewDocumentOCR(), NewSliceIterator([]Tuple{{patch}})))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ps {
		if w.Meta["text"].S == "HI42" {
			found = true
			bb := w.Meta["bbox"].V
			if bb[0] < 20 || bb[1] < 10 {
				t.Fatalf("word bbox not offset into frame coords: %v", bb)
			}
			if w.Ref.Parent != 5 {
				t.Fatalf("word lineage %+v", w.Ref)
			}
		}
	}
	if !found {
		t.Fatalf("OCR did not recover the planted string; got %d words", len(ps))
	}
}

func TestFromImages(t *testing.T) {
	imgs := []*codec.Image{codec.NewImage(8, 6), codec.NewImage(10, 4)}
	ps, err := DrainPatches(FromImages("corpus", imgs))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("%d patches", len(ps))
	}
	if ps[1].Meta["width"].I != 10 || ps[1].Meta["height"].I != 4 {
		t.Fatalf("dims meta: %+v", ps[1].Meta)
	}
	if ps[0].Ref.Frame != 0 || ps[1].Ref.Frame != 1 {
		t.Fatal("frame numbering wrong")
	}
}

func TestTensorToImageRoundTrip(t *testing.T) {
	img := codec.NewImage(7, 5)
	for i := range img.Pix {
		img.Pix[i] = uint8(i * 3)
	}
	back := TensorToImage(ImageToTensor(img))
	if back.W != 7 || back.H != 5 {
		t.Fatalf("size %dx%d", back.W, back.H)
	}
	if codec.MSE(img, back) != 0 {
		t.Fatal("pixels changed in round trip")
	}
	if TensorToImage(nil) != nil {
		t.Fatal("nil tensor should give nil image")
	}
}

func TestTileGenerator(t *testing.T) {
	img := codec.NewImage(100, 60)
	for i := range img.Pix {
		img.Pix[i] = uint8(i % 251)
	}
	frame := &Patch{ID: 9, Ref: Ref{Source: "v", Frame: 4}, Data: ImageToTensor(img),
		Meta: Metadata{"frameno": IntV(4)}}
	ps, err := DrainPatches(TileGenerator(32, 32, NewSliceIterator([]Tuple{{frame}})))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(100/32) x ceil(60/32) = 4 x 2 tiles.
	if len(ps) != 8 {
		t.Fatalf("tiles = %d, want 8", len(ps))
	}
	var area float64
	for _, p := range ps {
		bb := p.Meta["bbox"].V
		w := float64(bb[2] - bb[0])
		h := float64(bb[3] - bb[1])
		area += w * h
		if p.Ref.Parent != 9 {
			t.Fatalf("tile lineage %+v", p.Ref)
		}
		tile := TensorToImage(p.Data)
		if tile.W != int(w) || tile.H != int(h) {
			t.Fatalf("tile crop %dx%d does not match bbox %v", tile.W, tile.H, bb)
		}
		// Content matches the source region.
		if tile.At(0, 0, 0) != img.At(int(bb[0]), int(bb[1]), 0) {
			t.Fatal("tile content offset wrong")
		}
	}
	if area != 100*60 {
		t.Fatalf("tiles cover %v px, want %v (no gaps/overlap)", area, 100*60)
	}
}
