package core

// Columnar scan engine. The paper's query layer assumes selections and
// top-k over patch metadata are cheap relative to vision UDFs; with the
// row-at-a-time fallback every non-indexed filter pays an interface
// iterator call, a Metadata map lookup and a predicate-closure invocation
// per patch. The ColumnStore lazily projects hot metadata fields from a
// collection snapshot into typed columnar form (int64 / float64 /
// dictionary-encoded strings, plus a null bitmap), partitioned into
// fixed-size immutable segments carrying zone maps (min/max for numerics,
// a small distinct-set for low-cardinality strings). Vectorized kernels
// evaluate equality and range predicates segment-at-a-time into selection
// index lists, skipping segments the zone map proves empty, and run
// top-k, group-count and count aggregation directly over the arrays.
// Results are byte-identical to the row-at-a-time operators by
// construction: selection lists are emitted in row (snapshot) order,
// top-k reproduces the stable sort's (value, row) order, and group-count
// groups and orders by the same SortKey encoding the row operator uses.
//
// A store is built over one immutable snapshot and carries its version;
// appends bump the collection version, so a reader comparing versions
// rebuilds — exactly the invalidation discipline the serving layer's
// caches use (see Collection.Columns).
//
// Segments are the unit of sharing and of tiering. Because snapshots are
// prefix-stable and segments are fixed-size, an older store's sealed
// (full) segments — typed arrays, zone maps, dictionary codes, null
// bitmaps — are exactly what a fresh build over the longer snapshot would
// produce for those rows. Extend therefore carries sealed segments over
// by pointer: no history memcpy at all, O(appended rows) re-projection
// for the tail, and stale readers pin only the segments they still
// reference. The same immutability makes sealed segments spillable: with
// a spill tier attached (see segment.go) their bytes serialize through
// internal/codec into a kv bucket, the resident summaries keep pruning
// exact, and the scan kernels fault surviving segments back in through a
// byte-budgeted LRU — so a collection's column footprint is bounded by
// the budget, not its history.

import (
	"math"
	"sort"
	"sync"
)

// ColumnBlockSize is the number of rows per zone-mapped segment. Small
// enough that a selective predicate skips real work on clustered data,
// large enough that the per-segment min/max test is noise.
const ColumnBlockSize = 1024

// ColumnStore holds the columnar projections of one collection snapshot.
// Columns materialize lazily per field on first use and are cached; the
// store itself is immutable once built and safe for concurrent use.
type ColumnStore struct {
	patches []*Patch
	version uint64
	spill   *columnSpill // nil: purely in-memory store

	mu   sync.RWMutex
	cols map[string]*Column
}

// NewColumnStore builds an empty in-memory store over a snapshot.
// Columns project lazily on first access.
func NewColumnStore(patches []*Patch, version uint64) *ColumnStore {
	return newColumnStoreSpill(patches, version, nil)
}

// newColumnStoreSpill builds a store whose sealed segments spill through
// sp (nil keeps the store purely in-memory). The catalog attaches a
// collection's spill handle here when the DB has a SegmentCache.
func newColumnStoreSpill(patches []*Patch, version uint64, sp *columnSpill) *ColumnStore {
	return &ColumnStore{patches: patches, version: version, spill: sp, cols: make(map[string]*Column)}
}

// Version is the collection version the store's snapshot reflects.
func (cs *ColumnStore) Version() uint64 { return cs.version }

// Len is the snapshot row count.
func (cs *ColumnStore) Len() int { return len(cs.patches) }

// Patches exposes the backing snapshot (row i of every column describes
// patches[i]).
func (cs *ColumnStore) Patches() []*Patch { return cs.patches }

// zoneMap summarizes one segment of a column for predicate pruning.
type zoneMap struct {
	lo, hi int // row range [lo, hi)
	// Numeric bounds over non-null rows (valid when !allNull).
	minI, maxI int64
	minF, maxF float64
	// codeSet is a presence bitset of dictionary codes < 64 in this segment
	// (string columns; valid while the dictionary holds at most 64 codes).
	codeSet uint64
	allNull bool
}

// Column is one metadata field projected over the snapshot: a sequence
// of fixed-size immutable segments, each a typed array plus a local null
// bitmap, summarized by an always-resident zone map. A column projects
// only when every non-missing value shares one scalar kind (int, float
// or string); mixed or vector-valued fields stay row-only. Sealed
// segments are shared by pointer with older and newer stores over the
// same collection, and — when a spill tier is attached — may have their
// data dropped from memory and reloaded from disk on demand.
type Column struct {
	kind    ValueKind
	n       int
	field   string
	patches []*Patch // backing snapshot (rebuild source if a spilled segment is unreadable)
	spill   *columnSpill
	segs    []*colSegment
	dict    []string
	dictIdx map[string]uint32 // value -> code (built during projection)
	// sharedDict marks dict/dictIdx as borrowed from an older column;
	// the first genuinely new string clones both before appending.
	sharedDict bool
	nnull      int // number of null (missing) rows
}

// Kind reports the column's uniform value kind.
func (c *Column) Kind() ValueKind { return c.kind }

// Blocks reports the zone-mapped segment count (testing and EXPLAIN).
func (c *Column) Blocks() int { return len(c.segs) }

// segRows returns a segment's row data, faulting it in from the spill
// tier when evicted. The returned segData is immutable and stays valid
// for the caller regardless of later evictions.
func (c *Column) segRows(sg *colSegment, st *ScanStats) *segData {
	if d := sg.data.Load(); d != nil {
		if c.spill != nil && sg.ondisk.Load() {
			c.spill.cache.touch(sg)
		}
		return d
	}
	return c.loadSeg(sg, st)
}

// loadSeg reloads an evicted segment from the kv bucket; if the bytes
// are missing or corrupt it falls back to re-projecting the rows from
// the resident snapshot (always possible, counted as a fault).
func (c *Column) loadSeg(sg *colSegment, st *ScanStats) *segData {
	if st != nil {
		st.SegLoads++
	}
	sp := c.spill
	var d *segData
	if sp != nil {
		if raw, err := sp.bucket.Get(segKey(c.field, sg.zone.lo/ColumnBlockSize)); err == nil {
			if dd, derr := decodeSegData(c.kind, sg.rows(), raw); derr == nil {
				d = dd
			}
		}
		if d != nil {
			sp.cache.loads.Add(1)
		} else {
			sp.cache.loadFaults.Add(1)
		}
	}
	if d == nil {
		d = c.rebuildSeg(sg)
	}
	if sg.data.CompareAndSwap(nil, d) {
		if sp != nil {
			sp.cache.insert(sg, d.bytes())
		}
		return d
	}
	if w := sg.data.Load(); w != nil {
		return w // another loader won; adopt its copy
	}
	return d // winner already evicted again; our copy is still valid
}

// rebuildSeg re-projects a segment's rows from the resident snapshot —
// the recovery path when a spilled segment's bytes are unreadable. A
// sealed prefix row can never introduce a new dictionary string (codes
// assign in first-appearance order over the whole column), so the
// rebuild is deterministic and lock-free.
func (c *Column) rebuildSeg(sg *colSegment) *segData {
	lo, hi := sg.zone.lo, sg.zone.hi
	d := &segData{nulls: make([]uint64, (hi-lo+63)/64)}
	d.alloc(c.kind, hi-lo)
	for i := lo; i < hi; i++ {
		v, ok := c.patches[i].Meta[c.field]
		if !ok {
			continue
		}
		j := i - lo
		d.setPresent(j)
		switch c.kind {
		case KindInt:
			d.ints[j] = v.I
		case KindFloat:
			d.floats[j] = v.F
		case KindStr:
			d.codes[j] = c.dictIdx[v.S]
		}
	}
	return d
}

// Column returns the projection of field, building and caching it on
// first use. ok is false when the field cannot be columnized (no
// non-missing values, vector/rect values, or mixed scalar kinds).
func (cs *ColumnStore) Column(field string) (*Column, bool) {
	cs.mu.RLock()
	col, cached := cs.cols[field]
	cs.mu.RUnlock()
	if cached {
		return col, col != nil
	}
	col = cs.buildColumn(field)
	cs.mu.Lock()
	if prev, raced := cs.cols[field]; raced {
		col = prev // another projector won; keep one canonical column
	} else {
		cs.cols[field] = col
	}
	cs.mu.Unlock()
	return col, col != nil
}

// buildColumn produces field's column: from the spill manifest when the
// disk tier already holds its sealed prefix (summaries load resident,
// data stays cold), else by full projection — which then seeds the disk
// tier for the next reopen.
func (cs *ColumnStore) buildColumn(field string) *Column {
	if cs.spill != nil {
		if col, handled := cs.spill.rehydrate(field, cs.patches); handled {
			return col
		}
	}
	col := projectColumn(cs.patches, field)
	if col != nil {
		col.spill = cs.spill
		if cs.spill != nil {
			cs.spill.persist(col)
		}
	}
	return col
}

// ExtendStats is one incremental extension's segment accounting: of the
// old store's TotalBlocks (summed over its projected columns),
// ReusedBlocks sealed segments were carried over by pointer — arrays,
// zone maps and dictionary codes untouched; only the remainder (the
// partial tail segment per column) was re-projected.
type ExtendStats struct {
	Columns      int // projected columns carried into the new store
	ReusedBlocks int // sealed old segments shared verbatim
	TotalBlocks  int // all old segments (shared + rebuilt tails)
}

// Extend builds the store for a longer snapshot that has this store's
// snapshot as a prefix (the caller must guarantee the prefix property;
// Collection.Columns checks it). Every column already projected here is
// carried forward: sealed (full) segments are shared by pointer — no
// copy of any kind — and only rows from the old tail segment's start
// onward re-project, so the result is indistinguishable from
// NewColumnStore over newPatches with the same columns accessed, at
// O(appended rows) cost. The receiver is not mutated and stays valid for
// readers still holding it; columns never projected on the old store
// stay lazy on the new one.
func (cs *ColumnStore) Extend(newPatches []*Patch, newVersion uint64) (*ColumnStore, ExtendStats) {
	next := newColumnStoreSpill(newPatches, newVersion, cs.spill)
	oldN := len(cs.patches)
	var st ExtendStats
	cs.mu.RLock()
	carried := make(map[string]*Column, len(cs.cols))
	for field, col := range cs.cols {
		// nil marks a field that was not columnizable over the old
		// snapshot. A mixed-kind or vector field stays that way, but an
		// all-null prefix can become columnizable once appended rows carry
		// values — leave those fields lazy so the new store re-projects.
		if col != nil {
			carried[field] = col
		}
	}
	cs.mu.RUnlock()
	for field, col := range carried {
		ext := extendColumn(col, field, newPatches, oldN)
		next.cols[field] = ext // nil: the suffix broke columnizability
		if ext == nil {
			continue
		}
		st.Columns++
		sealed := oldN / ColumnBlockSize
		st.ReusedBlocks += sealed
		st.TotalBlocks += len(col.segs)
		if cs.spill != nil {
			cs.spill.persist(ext) // newly sealed tail segments spill
		}
	}
	return next, st
}

// extendColumn grows one projected column over the appended suffix rows:
// sealed segments share by pointer, the old tail segment's rows onward
// re-project. Returns nil when a suffix row makes the field
// non-columnizable (vector/rect value or a kind mismatch) — the same
// verdict a fresh projection over the full snapshot would reach.
func extendColumn(old *Column, field string, patches []*Patch, oldN int) *Column {
	n := len(patches)
	sealed := oldN / ColumnBlockSize
	col := &Column{
		kind:       old.kind,
		n:          n,
		field:      field,
		patches:    patches,
		spill:      old.spill,
		dict:       old.dict,
		dictIdx:    old.dictIdx,
		sharedDict: true,
		segs:       make([]*colSegment, 0, (n+ColumnBlockSize-1)/ColumnBlockSize),
	}
	col.segs = append(col.segs, old.segs[:sealed]...)
	for _, sg := range col.segs {
		col.nnull += sg.nnull
	}
	if !col.appendRows(sealed*ColumnBlockSize, n) {
		return nil
	}
	return col
}

// projectColumn builds the segmented projection of one field, or nil
// when the field is not columnizable.
func projectColumn(patches []*Patch, field string) *Column {
	n := len(patches)
	col := &Column{
		n:       n,
		field:   field,
		patches: patches,
		dictIdx: make(map[string]uint32),
		segs:    make([]*colSegment, 0, (n+ColumnBlockSize-1)/ColumnBlockSize),
	}
	if !col.appendRows(0, n) {
		return nil
	}
	if col.kind == 0 {
		return nil // every row null: nothing to scan
	}
	return col
}

// appendRows projects rows [from, n) of c.patches into fresh segments
// appended to c.segs (from must be ColumnBlockSize-aligned). Dictionary
// codes assign in first-appearance order, so projecting rows in
// ascending order reproduces a fresh full projection's codes exactly;
// a dictionary borrowed from an older column clones copy-on-write
// before the first genuinely new string. Returns false when a row makes
// the field non-columnizable (vector/rect value or scalar kind
// mismatch) — the verdict a fresh projection would reach.
func (c *Column) appendRows(from, n int) bool {
	for lo := from; lo < n; lo += ColumnBlockSize {
		hi := lo + ColumnBlockSize
		if hi > n {
			hi = n
		}
		sg := &colSegment{zone: zoneMap{lo: lo, hi: hi}, sealed: hi-lo == ColumnBlockSize}
		d := &segData{nulls: make([]uint64, (hi-lo+63)/64)}
		d.alloc(c.kind, hi-lo)
		for i := lo; i < hi; i++ {
			v, ok := c.patches[i].Meta[c.field]
			if !ok {
				c.nnull++
				sg.nnull++
				continue
			}
			switch v.Kind {
			case KindInt, KindFloat, KindStr:
			default:
				return false // vectors/rects are not columnar
			}
			if c.kind == 0 {
				c.setKind(v.Kind)
				d.alloc(c.kind, hi-lo)
			} else if v.Kind != c.kind {
				return false // mixed kinds: row path only
			}
			j := i - lo
			d.setPresent(j)
			switch v.Kind {
			case KindInt:
				d.ints[j] = v.I
			case KindFloat:
				d.floats[j] = v.F
			case KindStr:
				d.codes[j] = c.addCode(v.S)
			}
		}
		sg.computeZone(c.kind, d)
		sg.data.Store(d)
		c.segs = append(c.segs, sg)
	}
	return true
}

// setKind records the kind discovered at the first non-null row and
// retro-allocates typed arrays on the all-null segments built before it.
// Only reachable during a fresh projection, so every earlier segment's
// data is private to this builder.
func (c *Column) setKind(k ValueKind) {
	c.kind = k
	for _, sg := range c.segs {
		if d := sg.data.Load(); d != nil {
			d.alloc(k, sg.rows())
		}
	}
}

// addCode returns s's dictionary code, allocating the next code on first
// appearance. A dictionary shared with an older column is cloned before
// its first mutation, so racing extends off one store never interfere.
func (c *Column) addCode(s string) uint32 {
	if code, ok := c.dictIdx[s]; ok {
		return code
	}
	if c.sharedDict {
		c.dict = append([]string(nil), c.dict...)
		idx := make(map[string]uint32, len(c.dictIdx)+1)
		for k, v := range c.dictIdx {
			idx[k] = v
		}
		c.dictIdx = idx
		c.sharedDict = false
	}
	code := uint32(len(c.dict))
	c.dictIdx[s] = code
	c.dict = append(c.dict, s)
	return code
}

// ---------------------------------------------------------- predicates ----

// ScanStats reports one columnar predicate evaluation's pruning work:
// how many zone-mapped segments the column holds, how many the zone maps
// skipped, how many rows the surviving segments actually swept, and how
// many cold segments had to be faulted in from the spill tier.
type ScanStats struct {
	Blocks      int // zone-mapped segments in the column
	Pruned      int // segments skipped by zone-map/dictionary pruning
	RowsScanned int // rows swept in unpruned segments
	SegLoads    int // evicted segments faulted in from the disk tier
}

// Add accumulates o into s (aggregating the fragments of one query).
func (s *ScanStats) Add(o ScanStats) {
	s.Blocks += o.Blocks
	s.Pruned += o.Pruned
	s.RowsScanned += o.RowsScanned
	s.SegLoads += o.SegLoads
}

// FilterEq evaluates field == v into a selection index list in row
// order, skipping segments whose zone map proves no row can match. ok is
// false when the field has no column (caller falls back to the row scan)
// — a kind mismatch between the column and the constant is a valid
// (empty) result, mirroring Value.Equal.
func (cs *ColumnStore) FilterEq(field string, v Value) ([]int32, bool) {
	sel, _, ok := cs.FilterEqStats(field, v)
	return sel, ok
}

// FilterEqStats is FilterEq reporting per-call pruning statistics —
// the instrumented path trace spans read, kept separate so untraced
// callers pay nothing new. Pruning tests run against the resident zone
// maps before any segment data is touched, so a pruned segment is never
// faulted in from disk.
func (cs *ColumnStore) FilterEqStats(field string, v Value) ([]int32, ScanStats, bool) {
	var st ScanStats
	col, ok := cs.Column(field)
	if !ok {
		return nil, st, false
	}
	st.Blocks = len(col.segs)
	if col.kind != v.Kind {
		st.Pruned = st.Blocks
		return nil, st, true // row path: mv.Equal(v) is false for every row
	}
	var sel []int32
	switch col.kind {
	case KindInt:
		for _, sg := range col.segs {
			z := sg.zone
			if z.allNull || v.I < z.minI || v.I > z.maxI {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqInt(sel, col.segRows(sg, &st), z.lo, z.hi-z.lo, v.I)
		}
	case KindFloat:
		for _, sg := range col.segs {
			z := sg.zone
			if z.allNull || v.F < z.minF || v.F > z.maxF {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqFloat(sel, col.segRows(sg, &st), z.lo, z.hi-z.lo, v.F)
		}
	case KindStr:
		code, present := col.code(v.S)
		if !present {
			st.Pruned = st.Blocks
			return nil, st, true // value not in the dictionary: no row matches
		}
		smallDict := len(col.dict) <= 64
		for _, sg := range col.segs {
			z := sg.zone
			if z.allNull {
				st.Pruned++
				continue
			}
			if smallDict && code < 64 && z.codeSet&(1<<code) == 0 {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqCode(sel, col.segRows(sg, &st), z.lo, z.hi-z.lo, code)
		}
	}
	return sel, st, true
}

// code looks up a string's dictionary code.
func (c *Column) code(s string) (uint32, bool) {
	code, ok := c.dictIdx[s]
	return code, ok
}

// The segment inner loops are split out so the per-segment hot path has
// no switch inside it: one bounds-checked array sweep per segment, with
// rows addressed locally (global row = base + j).

func appendEqInt(sel []int32, d *segData, base, rows int, v int64) []int32 {
	for j := 0; j < rows; j++ {
		if d.ints[j] == v && !d.null(j) {
			sel = append(sel, int32(base+j))
		}
	}
	return sel
}

func appendEqFloat(sel []int32, d *segData, base, rows int, v float64) []int32 {
	for j := 0; j < rows; j++ {
		if d.floats[j] == v && !d.null(j) {
			sel = append(sel, int32(base+j))
		}
	}
	return sel
}

func appendEqCode(sel []int32, d *segData, base, rows int, code uint32) []int32 {
	for j := 0; j < rows; j++ {
		if d.codes[j] == code && !d.null(j) {
			sel = append(sel, int32(base+j))
		}
	}
	return sel
}

// FilterRange evaluates lo <= field < hi (numeric widening, matching
// FieldRange) into a selection list in row order. ok is false when the
// field has no column. String columns return an empty selection, like
// the row predicate (AsFloat yields NaN, which fails both bounds).
func (cs *ColumnStore) FilterRange(field string, lo, hi float64) ([]int32, bool) {
	sel, _, ok := cs.FilterRangeStats(field, lo, hi)
	return sel, ok
}

// FilterRangeStats is FilterRange reporting per-call pruning
// statistics (see FilterEqStats).
func (cs *ColumnStore) FilterRangeStats(field string, lo, hi float64) ([]int32, ScanStats, bool) {
	var st ScanStats
	col, ok := cs.Column(field)
	if !ok {
		return nil, st, false
	}
	st.Blocks = len(col.segs)
	var sel []int32
	switch col.kind {
	case KindInt:
		for _, sg := range col.segs {
			z := sg.zone
			if z.allNull || float64(z.maxI) < lo || float64(z.minI) >= hi {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			d := col.segRows(sg, &st)
			for j, rows := 0, z.hi-z.lo; j < rows; j++ {
				if f := float64(d.ints[j]); f >= lo && f < hi && !d.null(j) {
					sel = append(sel, int32(z.lo+j))
				}
			}
		}
	case KindFloat:
		for _, sg := range col.segs {
			z := sg.zone
			if z.allNull || z.maxF < lo || z.minF >= hi {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			d := col.segRows(sg, &st)
			for j, rows := 0, z.hi-z.lo; j < rows; j++ {
				if f := d.floats[j]; f >= lo && f < hi && !d.null(j) {
					sel = append(sel, int32(z.lo+j))
				}
			}
		}
	case KindStr:
		// Non-numeric: the row predicate never matches.
		st.Pruned = st.Blocks
	}
	return sel, st, true
}

// Materialize resolves a selection list to its patches, preserving row
// order (the same patches, same order, the row scan would produce).
func (cs *ColumnStore) Materialize(sel []int32) []*Patch {
	out := make([]*Patch, len(sel))
	for i, idx := range sel {
		out[i] = cs.patches[idx]
	}
	return out
}

// --------------------------------------------------------------- top-k ----

// TopK returns the selection of the k smallest (asc) or largest (desc)
// rows by field, ordered exactly as a stable sort of the input would
// order them (ties resolve in row order; null rows order before any
// value ascending, after any value descending — Value.Less on the zero
// Value). sel is the candidate row set in row order; nil means all rows.
// ok is false when the field has no column.
func (cs *ColumnStore) TopK(sel []int32, field string, desc bool, k int) ([]int32, bool) {
	col, okc := cs.Column(field)
	if !okc {
		return nil, false
	}
	n := len(sel)
	all := sel == nil
	if all {
		n = len(cs.patches)
	}
	row := func(i int) int32 {
		if all {
			return int32(i)
		}
		return sel[i]
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int32{}, true
	}
	// Pin every candidate segment's data up front: the comparator then
	// reads plain arrays, and a concurrent eviction cannot stall the sort.
	datas := make([]*segData, len(col.segs))
	if all {
		for si, sg := range col.segs {
			datas[si] = col.segRows(sg, nil)
		}
	} else {
		for _, r := range sel {
			if si := int(r) / ColumnBlockSize; datas[si] == nil {
				datas[si] = col.segRows(col.segs[si], nil)
			}
		}
	}
	// before reports whether row a orders strictly before row b in the
	// output: Value.Less on the column values (null = zero Value, whose
	// kind 0 sorts below every real kind), ties in row order.
	before := func(a, b int32) bool {
		da, ja := datas[int(a)/ColumnBlockSize], int(a)%ColumnBlockSize
		db, jb := datas[int(b)/ColumnBlockSize], int(b)%ColumnBlockSize
		an, bn := da.null(ja), db.null(jb)
		if an || bn {
			if an != bn {
				// One null: ascending puts the null first, descending last.
				return an != desc
			}
			return a < b // both null: row order
		}
		var less, greater bool
		switch col.kind {
		case KindInt:
			less, greater = da.ints[ja] < db.ints[jb], da.ints[ja] > db.ints[jb]
		case KindFloat:
			less, greater = da.floats[ja] < db.floats[jb], da.floats[ja] > db.floats[jb]
		case KindStr:
			sa, sb := col.dict[da.codes[ja]], col.dict[db.codes[jb]]
			less, greater = sa < sb, sa > sb
		}
		if desc {
			less, greater = greater, less
		}
		if less {
			return true
		}
		if greater {
			return false
		}
		return a < b
	}
	// sel is in row order, so candidate-position ties and row ties agree
	// and the shared bounded heap applies directly.
	top := topKIndexes(n, k, func(a, b int) bool { return before(row(a), row(b)) })
	out := make([]int32, len(top))
	for i, idx := range top {
		out[i] = row(idx)
	}
	return out, true
}

// --------------------------------------------------------- aggregation ----

// CountEq is FilterEq without materializing a selection list: the count
// of rows with field == v. ok is false when the field has no column.
func (cs *ColumnStore) CountEq(field string, v Value) (int, bool) {
	sel, ok := cs.FilterEq(field, v)
	if !ok {
		return 0, false
	}
	return len(sel), true
}

// GroupCount groups the snapshot by field and returns {group, count}
// tuples identical (values, order) to the row operator GroupCount over
// the same rows: groups key on the value's SortKey encoding (so e.g.
// -0.0 and +0.0 stay distinct, as in the row path) and order by it
// ascending. ok is false when the field has no column; null rows drop,
// like rows missing the field. All-null segments are skipped without
// touching their data.
func (cs *ColumnStore) GroupCount(field string) ([]Tuple, bool) {
	col, okc := cs.Column(field)
	if !okc {
		return nil, false
	}
	switch col.kind {
	case KindInt:
		// SortKey order for ints is numeric order.
		counts := make(map[int64]int64)
		for _, sg := range col.segs {
			if sg.zone.allNull {
				continue
			}
			d := col.segRows(sg, nil)
			for j, rows := 0, sg.rows(); j < rows; j++ {
				if !d.null(j) {
					counts[d.ints[j]]++
				}
			}
		}
		keys := make([]int64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Tuple, len(keys))
		for i, k := range keys {
			out[i] = groupTuple(IntV(k), counts[k])
		}
		return out, true
	case KindFloat:
		// Group and order by the SortKey bit transform, not float
		// equality: the row path distinguishes bit patterns (-0.0 vs 0.0)
		// and orders NaNs by their encoding.
		counts := make(map[uint64]int64)
		vals := make(map[uint64]float64)
		for _, sg := range col.segs {
			if sg.zone.allNull {
				continue
			}
			d := col.segRows(sg, nil)
			for j, rows := 0, sg.rows(); j < rows; j++ {
				if d.null(j) {
					continue
				}
				k := floatSortBits(d.floats[j])
				counts[k]++
				vals[k] = d.floats[j]
			}
		}
		keys := make([]uint64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Tuple, len(keys))
		for i, k := range keys {
			out[i] = groupTuple(FloatV(vals[k]), counts[k])
		}
		return out, true
	case KindStr:
		counts := make([]int64, len(col.dict))
		for _, sg := range col.segs {
			if sg.zone.allNull {
				continue
			}
			d := col.segRows(sg, nil)
			for j, rows := 0, sg.rows(); j < rows; j++ {
				if !d.null(j) {
					counts[d.codes[j]]++
				}
			}
		}
		order := make([]uint32, 0, len(col.dict))
		for code := range col.dict {
			if counts[code] > 0 {
				order = append(order, uint32(code))
			}
		}
		sort.Slice(order, func(i, j int) bool { return col.dict[order[i]] < col.dict[order[j]] })
		out := make([]Tuple, len(order))
		for i, code := range order {
			out[i] = groupTuple(StrV(col.dict[code]), counts[code])
		}
		return out, true
	}
	return nil, false
}

// floatSortBits is the order-preserving bit transform Value.SortKey
// applies to floats (total order matching the row operator's key space).
func floatSortBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if f >= 0 {
		return bits ^ (1 << 63)
	}
	return ^bits
}

func groupTuple(v Value, n int64) Tuple {
	return Tuple{&Patch{Meta: Metadata{"group": v, "count": IntV(n)}}}
}

// AggCount mirrors the row AggCount over the snapshot: one tuple with
// the row count. Kept columnar for API symmetry (snapshot length is
// already O(1)).
func (cs *ColumnStore) AggCount() Tuple {
	return Tuple{&Patch{Meta: Metadata{"count": IntV(int64(len(cs.patches)))}}}
}
