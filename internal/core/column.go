package core

// Columnar scan engine. The paper's query layer assumes selections and
// top-k over patch metadata are cheap relative to vision UDFs; with the
// row-at-a-time fallback every non-indexed filter pays an interface
// iterator call, a Metadata map lookup and a predicate-closure invocation
// per patch. The ColumnStore lazily projects hot metadata fields from a
// collection snapshot into typed columnar arrays (int64 / float64 /
// dictionary-encoded strings, plus a null bitmap), partitioned into
// fixed-size blocks carrying zone maps (min/max for numerics, a small
// distinct-set for low-cardinality strings). Vectorized kernels evaluate
// equality and range predicates block-at-a-time into selection index
// lists, skipping blocks the zone map proves empty, and run top-k,
// group-count and count aggregation directly over the arrays. Results
// are byte-identical to the row-at-a-time operators by construction:
// selection lists are emitted in row (snapshot) order, top-k reproduces
// the stable sort's (value, row) order, and group-count groups and
// orders by the same SortKey encoding the row operator uses.
//
// A store is built over one immutable snapshot and carries its version;
// appends bump the collection version, so a reader comparing versions
// rebuilds — exactly the invalidation discipline the serving layer's
// caches use (see Collection.Columns).
//
// Under a live append stream a full rebuild per version bump re-projects
// every column over the whole history — a Meta map lookup (and dictionary
// probe) per row per column, per appended batch. Because snapshots are
// prefix-stable and blocks are fixed-size, an older store's sealed (full)
// blocks — typed array prefixes, zone maps, dictionary codes, null-bitmap
// words — are exactly what a fresh build over the longer snapshot would
// produce for those rows. Extend exploits that: it memcpys the sealed
// prefix, re-projects only the rows at and past the old tail block, and
// recomputes only the tail-onward zone maps. Per-row re-projection work
// drops to O(appended rows); the array copies are still O(history), but
// as flat memcpys rather than per-row map traffic — a large constant-
// factor win (~8x end-to-end on the streaming-ingest benchmark), not an
// asymptotic one. Sharing sealed blocks by reference (chunked arrays)
// would remove the copy too and is the natural follow-on.

import (
	"math"
	"sort"
	"sync"
)

// ColumnBlockSize is the number of rows per zone-mapped block. Small
// enough that a selective predicate skips real work on clustered data,
// large enough that the per-block min/max test is noise.
const ColumnBlockSize = 1024

// ColumnStore holds the columnar projections of one collection snapshot.
// Columns materialize lazily per field on first use and are cached; the
// store itself is immutable once built and safe for concurrent use.
type ColumnStore struct {
	patches []*Patch
	version uint64

	mu   sync.RWMutex
	cols map[string]*Column
}

// NewColumnStore builds an empty store over a snapshot. Columns project
// lazily on first access.
func NewColumnStore(patches []*Patch, version uint64) *ColumnStore {
	return &ColumnStore{patches: patches, version: version, cols: make(map[string]*Column)}
}

// Version is the collection version the store's snapshot reflects.
func (cs *ColumnStore) Version() uint64 { return cs.version }

// Len is the snapshot row count.
func (cs *ColumnStore) Len() int { return len(cs.patches) }

// Patches exposes the backing snapshot (row i of every column describes
// patches[i]).
func (cs *ColumnStore) Patches() []*Patch { return cs.patches }

// zoneMap summarizes one block of a column for predicate pruning.
type zoneMap struct {
	lo, hi int // row range [lo, hi)
	// Numeric bounds over non-null rows (valid when !allNull).
	minI, maxI int64
	minF, maxF float64
	// codeSet is a presence bitset of dictionary codes < 64 in this block
	// (string columns; valid while the dictionary holds at most 64 codes).
	codeSet uint64
	allNull bool
}

// Column is one metadata field projected over the snapshot: a typed
// dense array plus a null bitmap and per-block zone maps. A column
// projects only when every non-missing value shares one scalar kind
// (int, float or string); mixed or vector-valued fields stay row-only.
type Column struct {
	kind    ValueKind
	ints    []int64
	floats  []float64
	codes   []uint32
	dict    []string
	dictIdx map[string]uint32 // value -> code (built during projection)
	nulls   []uint64          // bitmap: bit set = value present
	blocks  []zoneMap
	nnull   int // number of null (missing) rows
}

// Kind reports the column's uniform value kind.
func (c *Column) Kind() ValueKind { return c.kind }

// Blocks reports the zone-mapped block count (testing and EXPLAIN).
func (c *Column) Blocks() int { return len(c.blocks) }

func (c *Column) null(i int) bool { return c.nulls[i>>6]&(1<<(uint(i)&63)) == 0 }

func (c *Column) setPresent(i int) { c.nulls[i>>6] |= 1 << (uint(i) & 63) }

// Column returns the projection of field, building and caching it on
// first use. ok is false when the field cannot be columnized (no
// non-missing values, vector/rect values, or mixed scalar kinds).
func (cs *ColumnStore) Column(field string) (*Column, bool) {
	cs.mu.RLock()
	col, cached := cs.cols[field]
	cs.mu.RUnlock()
	if cached {
		return col, col != nil
	}
	col = projectColumn(cs.patches, field)
	cs.mu.Lock()
	if prev, raced := cs.cols[field]; raced {
		col = prev // another projector won; keep one canonical column
	} else {
		cs.cols[field] = col
	}
	cs.mu.Unlock()
	return col, col != nil
}

// ExtendStats is one incremental extension's block accounting: of the
// old store's TotalBlocks (summed over its projected columns),
// ReusedBlocks sealed blocks were carried over with their arrays and
// zone maps intact; only the remainder (the partial tail block per
// column) was re-projected.
type ExtendStats struct {
	Columns      int // projected columns carried into the new store
	ReusedBlocks int // sealed old blocks reused verbatim
	TotalBlocks  int // all old blocks (reused + rebuilt tails)
}

// Extend builds the store for a longer snapshot that has this store's
// snapshot as a prefix (the caller must guarantee the prefix property;
// Collection.Columns checks it). Every column already projected here is
// carried forward: sealed (full) blocks keep their array contents, zone
// maps and dictionary codes byte-for-byte, only rows from the old tail
// block's start onward get fresh zone maps and only genuinely new rows
// project — so the result is indistinguishable from NewColumnStore over
// newPatches with the same columns accessed, at O(appended rows)
// re-projection cost plus a flat memcpy of the sealed arrays.
// The receiver is not mutated and stays valid for readers still holding
// it; columns never projected on the old store stay lazy on the new one.
func (cs *ColumnStore) Extend(newPatches []*Patch, newVersion uint64) (*ColumnStore, ExtendStats) {
	next := NewColumnStore(newPatches, newVersion)
	oldN := len(cs.patches)
	var st ExtendStats
	cs.mu.RLock()
	carried := make(map[string]*Column, len(cs.cols))
	for field, col := range cs.cols {
		// nil marks a field that was not columnizable over the old
		// snapshot. A mixed-kind or vector field stays that way, but an
		// all-null prefix can become columnizable once appended rows carry
		// values — leave those fields lazy so the new store re-projects.
		if col != nil {
			carried[field] = col
		}
	}
	cs.mu.RUnlock()
	for field, col := range carried {
		ext := extendColumn(col, field, newPatches, oldN)
		next.cols[field] = ext // nil: the suffix broke columnizability
		if ext == nil {
			continue
		}
		st.Columns++
		sealed := oldN / ColumnBlockSize
		st.ReusedBlocks += sealed
		st.TotalBlocks += len(col.blocks)
	}
	return next, st
}

// extendColumn grows one projected column over the appended suffix
// rows [oldN, len(patches)). Returns nil when a suffix row makes the
// field non-columnizable (vector/rect value or a kind mismatch) — the
// same verdict a fresh projection over the full snapshot would reach.
func extendColumn(old *Column, field string, patches []*Patch, oldN int) *Column {
	n := len(patches)
	col := &Column{
		kind:    old.kind,
		nulls:   make([]uint64, (n+63)/64),
		nnull:   old.nnull,
		dictIdx: make(map[string]uint32, len(old.dictIdx)),
	}
	copy(col.nulls, old.nulls)
	switch old.kind {
	case KindInt:
		col.ints = make([]int64, n)
		copy(col.ints, old.ints)
	case KindFloat:
		col.floats = make([]float64, n)
		copy(col.floats, old.floats)
	case KindStr:
		col.codes = make([]uint32, n)
		copy(col.codes, old.codes)
		col.dict = append(make([]string, 0, len(old.dict)), old.dict...)
		for s, code := range old.dictIdx {
			col.dictIdx[s] = code
		}
	}
	for i := oldN; i < n; i++ {
		v, ok := patches[i].Meta[field]
		if !ok {
			col.nnull++
			continue
		}
		switch v.Kind {
		case KindInt, KindFloat, KindStr:
		default:
			return nil // vectors/rects are not columnar
		}
		if v.Kind != col.kind {
			return nil // mixed kinds: row path only
		}
		col.assign(i, v)
	}
	// Sealed blocks keep their summaries; the old tail block absorbed new
	// rows, so it and everything after it recompute.
	sealed := oldN / ColumnBlockSize
	col.blocks = make([]zoneMap, 0, (n+ColumnBlockSize-1)/ColumnBlockSize)
	col.blocks = append(col.blocks, old.blocks[:sealed]...)
	col.appendZoneMaps(sealed*ColumnBlockSize, n)
	return col
}

// projectColumn builds the typed array + null bitmap + zone maps for one
// field, or nil when the field is not columnizable.
func projectColumn(patches []*Patch, field string) *Column {
	n := len(patches)
	col := &Column{nulls: make([]uint64, (n+63)/64), dictIdx: make(map[string]uint32)}
	for i, p := range patches {
		v, ok := p.Meta[field]
		if !ok {
			col.nnull++
			continue
		}
		switch v.Kind {
		case KindInt, KindFloat, KindStr:
		default:
			return nil // vectors/rects are not columnar
		}
		if col.kind == 0 {
			col.kind = v.Kind
			switch v.Kind {
			case KindInt:
				col.ints = make([]int64, n)
			case KindFloat:
				col.floats = make([]float64, n)
			case KindStr:
				col.codes = make([]uint32, n)
			}
		} else if v.Kind != col.kind {
			return nil // mixed kinds: row path only
		}
		col.assign(i, v)
	}
	if col.kind == 0 {
		return nil // every row null: nothing to scan
	}
	col.buildZoneMaps(n)
	return col
}

// assign stores a non-null value at row i. The typed array must already
// be sized past i; v.Kind must equal the column kind. Dictionary codes
// allocate in first-appearance order, so assigning rows in ascending
// order reproduces a fresh projection's code assignment exactly.
func (c *Column) assign(i int, v Value) {
	c.setPresent(i)
	switch v.Kind {
	case KindInt:
		c.ints[i] = v.I
	case KindFloat:
		c.floats[i] = v.F
	case KindStr:
		code, seen := c.dictIdx[v.S]
		if !seen {
			code = uint32(len(c.dict))
			c.dictIdx[v.S] = code
			c.dict = append(c.dict, v.S)
		}
		c.codes[i] = code
	}
}

// buildZoneMaps computes per-block summaries after projection.
func (c *Column) buildZoneMaps(n int) {
	nb := (n + ColumnBlockSize - 1) / ColumnBlockSize
	c.blocks = make([]zoneMap, 0, nb)
	c.appendZoneMaps(0, n)
}

// appendZoneMaps appends block summaries covering rows [from, n), from
// block-aligned. Extend uses it to recompute only tail-onward blocks.
func (c *Column) appendZoneMaps(from, n int) {
	for lo := from; lo < n; lo += ColumnBlockSize {
		hi := lo + ColumnBlockSize
		if hi > n {
			hi = n
		}
		z := zoneMap{lo: lo, hi: hi, allNull: true}
		for i := lo; i < hi; i++ {
			if c.null(i) {
				continue
			}
			switch c.kind {
			case KindInt:
				v := c.ints[i]
				if z.allNull || v < z.minI {
					z.minI = v
				}
				if z.allNull || v > z.maxI {
					z.maxI = v
				}
			case KindFloat:
				v := c.floats[i]
				if z.allNull || v < z.minF {
					z.minF = v
				}
				if z.allNull || v > z.maxF {
					z.maxF = v
				}
			case KindStr:
				if code := c.codes[i]; code < 64 {
					z.codeSet |= 1 << code
				}
			}
			z.allNull = false
		}
		c.blocks = append(c.blocks, z)
	}
}

// ---------------------------------------------------------- predicates ----

// ScanStats reports one columnar predicate evaluation's pruning work:
// how many zone-mapped blocks the column holds, how many the zone maps
// skipped, and how many rows the surviving blocks actually swept.
type ScanStats struct {
	Blocks      int // zone-mapped blocks in the column
	Pruned      int // blocks skipped by zone-map/dictionary pruning
	RowsScanned int // rows swept in unpruned blocks
}

// Add accumulates o into s (aggregating the fragments of one query).
func (s *ScanStats) Add(o ScanStats) {
	s.Blocks += o.Blocks
	s.Pruned += o.Pruned
	s.RowsScanned += o.RowsScanned
}

// FilterEq evaluates field == v into a selection index list in row
// order, skipping blocks whose zone map proves no row can match. ok is
// false when the field has no column (caller falls back to the row scan)
// — a kind mismatch between the column and the constant is a valid
// (empty) result, mirroring Value.Equal.
func (cs *ColumnStore) FilterEq(field string, v Value) ([]int32, bool) {
	sel, _, ok := cs.FilterEqStats(field, v)
	return sel, ok
}

// FilterEqStats is FilterEq reporting per-call pruning statistics —
// the instrumented path trace spans read, kept separate so untraced
// callers pay nothing new.
func (cs *ColumnStore) FilterEqStats(field string, v Value) ([]int32, ScanStats, bool) {
	var st ScanStats
	col, ok := cs.Column(field)
	if !ok {
		return nil, st, false
	}
	st.Blocks = len(col.blocks)
	if col.kind != v.Kind {
		st.Pruned = st.Blocks
		return nil, st, true // row path: mv.Equal(v) is false for every row
	}
	var sel []int32
	switch col.kind {
	case KindInt:
		for _, z := range col.blocks {
			if z.allNull || v.I < z.minI || v.I > z.maxI {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqInt(sel, col, z, v.I)
		}
	case KindFloat:
		for _, z := range col.blocks {
			if z.allNull || v.F < z.minF || v.F > z.maxF {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqFloat(sel, col, z, v.F)
		}
	case KindStr:
		code, present := col.code(v.S)
		if !present {
			st.Pruned = st.Blocks
			return nil, st, true // value not in the dictionary: no row matches
		}
		smallDict := len(col.dict) <= 64
		for _, z := range col.blocks {
			if z.allNull {
				st.Pruned++
				continue
			}
			if smallDict && code < 64 && z.codeSet&(1<<code) == 0 {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			sel = appendEqCode(sel, col, z, code)
		}
	}
	return sel, st, true
}

// code looks up a string's dictionary code.
func (c *Column) code(s string) (uint32, bool) {
	code, ok := c.dictIdx[s]
	return code, ok
}

// The block inner loops are split out so the per-block hot path has no
// switch inside it: one bounds-checked array sweep per block.

func appendEqInt(sel []int32, c *Column, z zoneMap, v int64) []int32 {
	for i := z.lo; i < z.hi; i++ {
		if c.ints[i] == v && !c.null(i) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

func appendEqFloat(sel []int32, c *Column, z zoneMap, v float64) []int32 {
	for i := z.lo; i < z.hi; i++ {
		if c.floats[i] == v && !c.null(i) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

func appendEqCode(sel []int32, c *Column, z zoneMap, code uint32) []int32 {
	for i := z.lo; i < z.hi; i++ {
		if c.codes[i] == code && !c.null(i) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// FilterRange evaluates lo <= field < hi (numeric widening, matching
// FieldRange) into a selection list in row order. ok is false when the
// field has no column. String columns return an empty selection, like
// the row predicate (AsFloat yields NaN, which fails both bounds).
func (cs *ColumnStore) FilterRange(field string, lo, hi float64) ([]int32, bool) {
	sel, _, ok := cs.FilterRangeStats(field, lo, hi)
	return sel, ok
}

// FilterRangeStats is FilterRange reporting per-call pruning
// statistics (see FilterEqStats).
func (cs *ColumnStore) FilterRangeStats(field string, lo, hi float64) ([]int32, ScanStats, bool) {
	var st ScanStats
	col, ok := cs.Column(field)
	if !ok {
		return nil, st, false
	}
	st.Blocks = len(col.blocks)
	var sel []int32
	switch col.kind {
	case KindInt:
		for _, z := range col.blocks {
			if z.allNull || float64(z.maxI) < lo || float64(z.minI) >= hi {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			for i := z.lo; i < z.hi; i++ {
				if f := float64(col.ints[i]); f >= lo && f < hi && !col.null(i) {
					sel = append(sel, int32(i))
				}
			}
		}
	case KindFloat:
		for _, z := range col.blocks {
			if z.allNull || z.maxF < lo || z.minF >= hi {
				st.Pruned++
				continue
			}
			st.RowsScanned += z.hi - z.lo
			for i := z.lo; i < z.hi; i++ {
				if f := col.floats[i]; f >= lo && f < hi && !col.null(i) {
					sel = append(sel, int32(i))
				}
			}
		}
	case KindStr:
		// Non-numeric: the row predicate never matches.
		st.Pruned = st.Blocks
	}
	return sel, st, true
}

// Materialize resolves a selection list to its patches, preserving row
// order (the same patches, same order, the row scan would produce).
func (cs *ColumnStore) Materialize(sel []int32) []*Patch {
	out := make([]*Patch, len(sel))
	for i, idx := range sel {
		out[i] = cs.patches[idx]
	}
	return out
}

// --------------------------------------------------------------- top-k ----

// TopK returns the selection of the k smallest (asc) or largest (desc)
// rows by field, ordered exactly as a stable sort of the input would
// order them (ties resolve in row order; null rows order before any
// value ascending, after any value descending — Value.Less on the zero
// Value). sel is the candidate row set in row order; nil means all rows.
// ok is false when the field has no column.
func (cs *ColumnStore) TopK(sel []int32, field string, desc bool, k int) ([]int32, bool) {
	col, okc := cs.Column(field)
	if !okc {
		return nil, false
	}
	n := len(sel)
	all := sel == nil
	if all {
		n = len(cs.patches)
	}
	row := func(i int) int32 {
		if all {
			return int32(i)
		}
		return sel[i]
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int32{}, true
	}
	// before reports whether row a orders strictly before row b in the
	// output: Value.Less on the column values (null = zero Value, whose
	// kind 0 sorts below every real kind), ties in row order.
	before := func(a, b int32) bool {
		an, bn := col.null(int(a)), col.null(int(b))
		if an || bn {
			if an != bn {
				// One null: ascending puts the null first, descending last.
				return an != desc
			}
			return a < b // both null: row order
		}
		var less, greater bool
		switch col.kind {
		case KindInt:
			less, greater = col.ints[a] < col.ints[b], col.ints[a] > col.ints[b]
		case KindFloat:
			less, greater = col.floats[a] < col.floats[b], col.floats[a] > col.floats[b]
		case KindStr:
			sa, sb := col.dict[col.codes[a]], col.dict[col.codes[b]]
			less, greater = sa < sb, sa > sb
		}
		if desc {
			less, greater = greater, less
		}
		if less {
			return true
		}
		if greater {
			return false
		}
		return a < b
	}
	// sel is in row order, so candidate-position ties and row ties agree
	// and the shared bounded heap applies directly.
	top := topKIndexes(n, k, func(a, b int) bool { return before(row(a), row(b)) })
	out := make([]int32, len(top))
	for i, idx := range top {
		out[i] = row(idx)
	}
	return out, true
}

// --------------------------------------------------------- aggregation ----

// CountEq is FilterEq without materializing a selection list: the count
// of rows with field == v. ok is false when the field has no column.
func (cs *ColumnStore) CountEq(field string, v Value) (int, bool) {
	sel, ok := cs.FilterEq(field, v)
	if !ok {
		return 0, false
	}
	return len(sel), true
}

// GroupCount groups the snapshot by field and returns {group, count}
// tuples identical (values, order) to the row operator GroupCount over
// the same rows: groups key on the value's SortKey encoding (so e.g.
// -0.0 and +0.0 stay distinct, as in the row path) and order by it
// ascending. ok is false when the field has no column; null rows drop,
// like rows missing the field.
func (cs *ColumnStore) GroupCount(field string) ([]Tuple, bool) {
	col, okc := cs.Column(field)
	if !okc {
		return nil, false
	}
	switch col.kind {
	case KindInt:
		// SortKey order for ints is numeric order.
		counts := make(map[int64]int64)
		for i := range col.ints {
			if !col.null(i) {
				counts[col.ints[i]]++
			}
		}
		keys := make([]int64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Tuple, len(keys))
		for i, k := range keys {
			out[i] = groupTuple(IntV(k), counts[k])
		}
		return out, true
	case KindFloat:
		// Group and order by the SortKey bit transform, not float
		// equality: the row path distinguishes bit patterns (-0.0 vs 0.0)
		// and orders NaNs by their encoding.
		counts := make(map[uint64]int64)
		vals := make(map[uint64]float64)
		for i := range col.floats {
			if col.null(i) {
				continue
			}
			k := floatSortBits(col.floats[i])
			counts[k]++
			vals[k] = col.floats[i]
		}
		keys := make([]uint64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Tuple, len(keys))
		for i, k := range keys {
			out[i] = groupTuple(FloatV(vals[k]), counts[k])
		}
		return out, true
	case KindStr:
		counts := make([]int64, len(col.dict))
		for i := range col.codes {
			if !col.null(i) {
				counts[col.codes[i]]++
			}
		}
		order := make([]uint32, 0, len(col.dict))
		for code := range col.dict {
			if counts[code] > 0 {
				order = append(order, uint32(code))
			}
		}
		sort.Slice(order, func(i, j int) bool { return col.dict[order[i]] < col.dict[order[j]] })
		out := make([]Tuple, len(order))
		for i, code := range order {
			out[i] = groupTuple(StrV(col.dict[code]), counts[code])
		}
		return out, true
	}
	return nil, false
}

// floatSortBits is the order-preserving bit transform Value.SortKey
// applies to floats (total order matching the row operator's key space).
func floatSortBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if f >= 0 {
		return bits ^ (1 << 63)
	}
	return ^bits
}

func groupTuple(v Value, n int64) Tuple {
	return Tuple{&Patch{Meta: Metadata{"group": v, "count": IntV(n)}}}
}

// AggCount mirrors the row AggCount over the snapshot: one tuple with
// the row count. Kept columnar for API symmetry (snapshot length is
// already O(1)).
func (cs *ColumnStore) AggCount() Tuple {
	return Tuple{&Patch{Meta: Metadata{"count": IntV(int64(len(cs.patches)))}}}
}
