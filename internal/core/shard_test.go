package core

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/exec"
)

func shardTestSchema() Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "label", Kind: KindStr},
			{Name: "score", Kind: KindFloat},
			{Name: "emb", Kind: KindVec, VecDim: 4},
		},
	}
}

func shardTestPatch(i int) *Patch {
	return &Patch{
		Ref: Ref{Source: "cam", Frame: uint64(i)},
		Meta: Metadata{
			"label": StrV([]string{"car", "pedestrian", "bus"}[i%3]),
			"score": FloatV(float64(i%10) / 10),
			"emb":   VecV([]float32{float32(i), float32(i % 7), 0.5, -0.5}),
		},
	}
}

func TestShardedRoutingAndCombinedCatalog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	ids := make([]PatchID, 0, n)
	for i := 0; i < n; i++ {
		p := shardTestPatch(i)
		if err := sc.Append(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	if got := sc.Len(); got != n {
		t.Fatalf("combined Len = %d, want %d", got, n)
	}
	// Every patch lives exactly on its hash-designated shard.
	nonEmpty := 0
	for i := 0; i < s.NumShards(); i++ {
		if sc.Shard(i).Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("partitioner placed all %d patches on %d shard(s)", n, nonEmpty)
	}
	for _, id := range ids {
		home := s.ShardFor(id)
		if _, err := sc.Shard(home).Get(id); err != nil {
			t.Fatalf("patch %d missing from home shard %d: %v", id, home, err)
		}
		p, err := sc.Get(id)
		if err != nil || p.ID != id {
			t.Fatalf("routed Get(%d) = %v, %v", id, p, err)
		}
		if _, err := s.GetPatch(id); err != nil {
			t.Fatalf("GetPatch(%d): %v", id, err)
		}
	}
	if names := s.Collections(); len(names) != 1 || names[0] != "dets" {
		t.Fatalf("Collections() = %v", names)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the same count: contents intact.
	s2, err := OpenSharded(dir, 4, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sc2, err := s2.Collection("dets")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
}

func TestShardedReopenCountMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenSharded(dir, 2, exec.New(exec.CPU)); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with mismatched shard count: err = %v, want ErrShardMismatch", err)
	}
}

// TestShardedSingleShardEquivalence pins the N=1 storage contract: the
// same operation sequence against a Sharded of one shard and a plain DB
// yields identical ids, versions and snapshot contents.
func TestShardedSingleShardEquivalence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "plain.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := OpenSharded(filepath.Join(dir, "sharded"), 1, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pc, err := db.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pp, sp := shardTestPatch(i), shardTestPatch(i)
		if err := pc.Append(pp); err != nil {
			t.Fatal(err)
		}
		if err := sc.Append(sp); err != nil {
			t.Fatal(err)
		}
		if pp.ID != sp.ID {
			t.Fatalf("append %d: plain id %d, sharded id %d", i, pp.ID, sp.ID)
		}
	}
	if pc.Version() != sc.Version() {
		t.Fatalf("versions diverge: plain %d, sharded composite %d", pc.Version(), sc.Version())
	}
	pps, _, err := pc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	parts, _, err := sc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || len(parts[0]) != len(pps) {
		t.Fatalf("sharded snapshot shape %d parts / %d rows, want 1 / %d", len(parts), len(parts[0]), len(pps))
	}
	for i := range pps {
		if pps[i].ID != parts[0][i].ID || !pps[i].Meta["label"].Equal(parts[0][i].Meta["label"]) {
			t.Fatalf("snapshot row %d diverges: %v vs %v", i, pps[i], parts[0][i])
		}
	}
}

func TestShardedCompositeVersionTracksSingleShardWrites(t *testing.T) {
	s, err := OpenSharded(t.TempDir(), 3, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{sc.Version(): true}
	// Each append lands on exactly one shard yet must move the composite.
	for i := 30; i < 60; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
		v := sc.Version()
		if seen[v] {
			t.Fatalf("composite version %d repeated after append %d", v, i)
		}
		seen[v] = true
	}
}

func TestShardedMaterializeAndDrop(t *testing.T) {
	s, err := OpenSharded(t.TempDir(), 4, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var tuples []Tuple
	for i := 0; i < 64; i++ {
		tuples = append(tuples, Tuple{shardTestPatch(i)})
	}
	sc, err := s.Materialize("mat", shardTestSchema(), NewSliceIterator(tuples))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 64 {
		t.Fatalf("materialized %d rows, want 64", sc.Len())
	}
	if err := s.DropCollection("mat"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumShards(); i++ {
		if _, err := s.Shard(i).Collection("mat"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("shard %d still has dropped collection: %v", i, err)
		}
	}
	// Recreate after drop works everywhere.
	if _, err := s.CreateCollection("mat", shardTestSchema()); err != nil {
		t.Fatal(err)
	}
}

func TestShardForDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		counts := make([]int, n)
		for id := PatchID(1); id <= 5000; id++ {
			h := int(shardHash(id) % uint64(n))
			counts[h]++
		}
		for i, c := range counts {
			// Uniformity within a loose band (5000/n ± 40%).
			lo, hi := 5000/n*6/10, 5000/n*14/10
			if c < lo || c > hi {
				t.Fatalf("n=%d shard %d got %d of 5000 ids (want %d..%d)", n, i, c, lo, hi)
			}
		}
	}
}

func TestShardedGetUnknownPatch(t *testing.T) {
	s, err := OpenSharded(t.TempDir(), 2, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.GetPatch(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetPatch(999) = %v, want ErrNotFound", err)
	}
	if _, err := s.Collection("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Collection(nope) = %v, want ErrNotFound", err)
	}
}
