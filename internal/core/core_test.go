package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/exec"
	"repro/internal/tensor"
)

func openDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "dl.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPatchMarshalRoundTrip(t *testing.T) {
	p := &Patch{
		ID:   42,
		Ref:  Ref{Source: "cam0", Frame: 17, Parent: 9},
		Data: tensor.FromU8([]uint8{1, 2, 3, 4, 5, 6}, 1, 2, 3),
		Meta: Metadata{
			"label": StrV("car"),
			"score": FloatV(0.83),
			"frame": IntV(-5),
			"hist":  VecV([]float32{0.1, 0.2, 0.3}),
			"bbox":  RectV(1, 2, 3, 4),
		},
	}
	got, err := UnmarshalPatch(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.Ref != p.Ref {
		t.Fatalf("identity lost: %+v", got)
	}
	if !tensor.Equal(got.Data, p.Data) {
		t.Fatal("payload lost")
	}
	for k, v := range p.Meta {
		if !got.Meta[k].Equal(v) {
			t.Fatalf("meta %q lost: %+v vs %+v", k, got.Meta[k], v)
		}
	}
}

func TestPatchMarshalQuick(t *testing.T) {
	f := func(id uint64, frame uint64, src string, label string, score float64, iv int64) bool {
		p := &Patch{ID: PatchID(id), Ref: Ref{Source: src, Frame: frame},
			Meta: Metadata{"l": StrV(label), "s": FloatV(score), "i": IntV(iv)}}
		got, err := UnmarshalPatch(p.Marshal())
		if err != nil {
			return false
		}
		return got.ID == p.ID && got.Ref.Source == src &&
			got.Meta["l"].Equal(p.Meta["l"]) && got.Meta["s"].Equal(p.Meta["s"]) &&
			got.Meta["i"].Equal(p.Meta["i"])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	p := &Patch{ID: 1, Meta: Metadata{"k": StrV("v")}}
	raw := p.Marshal()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := UnmarshalPatch(raw[:cut]); err == nil {
			// Some prefixes parse as valid shorter patches only if all
			// fields complete; a cut mid-structure must error. Allow valid
			// prefix only if it equals a full encoding, which cannot
			// happen for proper prefixes of varint streams here.
			t.Fatalf("truncated patch at %d decoded", cut)
		}
	}
}

func TestSortKeyOrderPreserving(t *testing.T) {
	fInt := func(a, b int64) bool {
		ka, _ := IntV(a).SortKey()
		kb, _ := IntV(b).SortKey()
		return (a < b) == (string(ka) < string(kb))
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Fatalf("int sort keys: %v", err)
	}
	fFloat := func(a, b float64) bool {
		ka, _ := FloatV(a).SortKey()
		kb, _ := FloatV(b).SortKey()
		return (a < b) == (string(ka) < string(kb))
	}
	cfg := &quick.Config{MaxCount: 1000, Values: nil}
	if err := quick.Check(fFloat, cfg); err != nil {
		t.Fatalf("float sort keys: %v", err)
	}
	if _, err := VecV([]float32{1}).SortKey(); err == nil {
		t.Fatal("vec sort key allowed")
	}
}

func simpleSchema() Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "label", Kind: KindStr, Domain: []string{"car", "pedestrian", "player"}},
			{Name: "frameno", Kind: KindInt},
		},
	}
}

func mkPatch(label string, frame int64) *Patch {
	return &Patch{
		Ref:  Ref{Source: "cam", Frame: uint64(frame)},
		Meta: Metadata{"label": StrV(label), "frameno": IntV(frame)},
	}
}

func TestCollectionAppendScanPersist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dl.db")
	db, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("dets", simpleSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		label := "car"
		if i%3 == 0 {
			label = "pedestrian"
		}
		if err := col.Append(mkPatch(label, int64(i%50))); err != nil {
			t.Fatal(err)
		}
	}
	if col.Len() != 500 {
		t.Fatalf("Len = %d", col.Len())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("dets")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := col2.Patches()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 500 {
		t.Fatalf("reopen: %d patches", len(ps))
	}
	// Lineage attributes auto-populated.
	if ps[0].Meta["_source"].S != "cam" {
		t.Fatalf("lineage attribute missing: %+v", ps[0].Meta)
	}
}

func TestSchemaValidation(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	// Out-of-domain label rejected.
	if err := col.Append(mkPatch("truck", 1)); err == nil {
		t.Fatal("out-of-domain label accepted")
	}
	// Missing declared field rejected.
	p := &Patch{Meta: Metadata{"label": StrV("car")}}
	if err := col.Append(p); err == nil {
		t.Fatal("missing field accepted")
	}
	// Wrong kind rejected.
	p2 := &Patch{Meta: Metadata{"label": IntV(3), "frameno": IntV(1)}}
	if err := col.Append(p2); err == nil {
		t.Fatal("wrong-kind field accepted")
	}
}

func TestFilterValidationRejectsImpossibleLabel(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	if _, err := db.PlanFilter(col, "label", StrV("car")); err != nil {
		t.Fatalf("valid filter rejected: %v", err)
	}
	if _, err := db.PlanFilter(col, "label", StrV("bicycle")); err == nil {
		t.Fatal("filter on impossible label accepted (type system should catch it)")
	}
	if _, err := db.PlanFilter(col, "nosuch", StrV("x")); err == nil {
		t.Fatal("filter on undeclared field accepted")
	}
}

func TestCreateDuplicateCollection(t *testing.T) {
	db := openDB(t)
	db.CreateCollection("c", simpleSchema())
	if _, err := db.CreateCollection("c", simpleSchema()); err == nil {
		t.Fatal("duplicate collection created")
	}
}

func TestSelectAndCount(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 90; i++ {
		label := []string{"car", "pedestrian", "player"}[i%3]
		col.Append(mkPatch(label, int64(i)))
	}
	n, err := Count(Select(col.Scan(), FieldEq("label", StrV("car"))))
	if err != nil || n != 30 {
		t.Fatalf("count = %d, %v", n, err)
	}
	n, _ = Count(Select(col.Scan(), FieldRange("frameno", 10, 20)))
	if n != 10 {
		t.Fatalf("range count = %d", n)
	}
}

func TestGroupCountAndOrderBy(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 30; i++ {
		col.Append(mkPatch("car", int64(i%3)))
	}
	groups, err := Drain(GroupCount(col.Scan(), "frameno"))
	if err != nil || len(groups) != 3 {
		t.Fatalf("groups = %d, %v", len(groups), err)
	}
	for _, g := range groups {
		if g[0].Meta["count"].I != 10 {
			t.Fatalf("group count = %d", g[0].Meta["count"].I)
		}
	}
	ordered, _ := Drain(OrderBy(col.Scan(), "frameno", false))
	if ordered[0][0].Meta["frameno"].I != 2 {
		t.Fatal("descending order broken")
	}
}

func TestLimitAndProject(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 20; i++ {
		p := mkPatch("car", int64(i))
		p.Data = tensor.NewU8(4, 4, 3)
		col.Append(p)
	}
	ts, err := Drain(Limit(Project(col.Scan(), "label"), 5))
	if err != nil || len(ts) != 5 {
		t.Fatalf("limit+project: %d, %v", len(ts), err)
	}
	p := ts[0][0]
	if p.Data != nil {
		t.Fatal("project kept payload")
	}
	if _, ok := p.Meta["frameno"]; ok {
		t.Fatal("project kept dropped field")
	}
	if _, ok := p.Meta["label"]; !ok {
		t.Fatal("project lost kept field")
	}
}

func TestHashAndBTreeIndexLookup(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	want := map[int64][]PatchID{}
	for i := 0; i < 300; i++ {
		p := mkPatch("car", int64(i%25))
		col.Append(p)
		want[int64(i%25)] = append(want[int64(i%25)], p.ID)
	}
	for _, kind := range []IndexKind{IdxHash, IdxBTree} {
		idx, err := db.BuildIndex(col, "frameno", kind)
		if err != nil {
			t.Fatalf("%v build: %v", kind, err)
		}
		for f, ids := range want {
			got, err := idx.LookupEq(IntV(f))
			if err != nil {
				t.Fatalf("%v lookup: %v", kind, err)
			}
			sortIDs(got)
			w := append([]PatchID(nil), ids...)
			sortIDs(w)
			if len(got) != len(w) {
				t.Fatalf("%v lookup(%d): %d ids, want %d", kind, f, len(got), len(w))
			}
			for i := range w {
				if got[i] != w[i] {
					t.Fatalf("%v lookup(%d) mismatch", kind, f)
				}
			}
		}
		// Missing key.
		got, err := idx.LookupEq(IntV(999))
		if err != nil || len(got) != 0 {
			t.Fatalf("%v missing key: %v, %v", kind, got, err)
		}
	}
}

func TestBTreeIndexRange(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 100; i++ {
		col.Append(mkPatch("car", int64(i)))
	}
	idx, err := db.BuildIndex(col, "frameno", IdxBTree)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := IntV(20), IntV(30)
	ids, err := idx.LookupRange(&lo, &hi)
	if err != nil || len(ids) != 10 {
		t.Fatalf("range: %d ids, %v", len(ids), err)
	}
}

func TestIndexPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dl.db")
	db, _ := Open(path, exec.New(exec.CPU))
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 100; i++ {
		col.Append(mkPatch("car", int64(i%10)))
	}
	if _, err := db.BuildIndex(col, "frameno", IdxHash); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BuildIndex(col, "frameno", IdxBTree); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, _ := Open(path, exec.New(exec.CPU))
	defer db2.Close()
	col2, _ := db2.Collection("dets")
	for _, kind := range []IndexKind{IdxHash, IdxBTree} {
		if !db2.HasIndex(col2, "frameno", kind) {
			t.Fatalf("%v index descriptor lost", kind)
		}
		idx, err := db2.Index(col2, "frameno", kind)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := idx.LookupEq(IntV(3))
		if err != nil || len(ids) != 10 {
			t.Fatalf("%v reopen lookup: %d, %v", kind, len(ids), err)
		}
	}
}

func vecSchema(dim int) Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "emb", Kind: KindVec, VecDim: dim},
			{Name: "frameno", Kind: KindInt},
		},
	}
}

func mkVecPatch(rng *rand.Rand, dim int, frame int64) *Patch {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return &Patch{Ref: Ref{Source: "s", Frame: uint64(frame)},
		Meta: Metadata{"emb": VecV(v), "frameno": IntV(frame)}}
}

func TestSimilarityJoinMethodsAgree(t *testing.T) {
	db := openDB(t)
	const dim = 16
	col, _ := db.CreateCollection("vecs", vecSchema(dim))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		col.Append(mkVecPatch(rng, dim, int64(i)))
	}
	ps, _ := col.Patches()
	opts := SimilarityJoinOpts{LeftField: "emb", RightField: "emb", Eps: 3.5, DedupUnordered: true}

	nested, err := SimilarityJoinNested(ps, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SimilarityJoinBatched(db, ps, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	fly, err := SimilarityJoinOnTheFly(ps, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildIndex(col, "emb", IdxBallTree)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := SimilarityJoinIndexed(db, ps, col, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	key := func(ts []Tuple) []string {
		out := make([]string, len(ts))
		for i, tp := range ts {
			out[i] = fmt.Sprintf("%d-%d", tp[0].ID, tp[1].ID)
		}
		sort.Strings(out)
		return out
	}
	nk := key(nested)
	if len(nk) == 0 {
		t.Fatal("no pairs at eps=3.5; test is vacuous")
	}
	for name, other := range map[string][]Tuple{"batched": batched, "onthefly": fly, "indexed": indexed} {
		ok := key(other)
		if len(ok) != len(nk) {
			t.Fatalf("%s: %d pairs, nested found %d", name, len(ok), len(nk))
		}
		for i := range nk {
			if ok[i] != nk[i] {
				t.Fatalf("%s: pair mismatch at %d: %s vs %s", name, i, ok[i], nk[i])
			}
		}
	}
}

func TestNestedLoopAndHashJoinAgree(t *testing.T) {
	db := openDB(t)
	left, _ := db.CreateCollection("l", simpleSchema())
	right, _ := db.CreateCollection("r", simpleSchema())
	for i := 0; i < 60; i++ {
		left.Append(mkPatch("car", int64(i%10)))
		right.Append(mkPatch("pedestrian", int64(i%15)))
	}
	theta := func(a, b *Patch) bool {
		return a.Meta["frameno"].I == b.Meta["frameno"].I
	}
	nl, err := Drain(NestedLoopJoin(left.Scan(), right.Scan(), theta))
	if err != nil {
		t.Fatal(err)
	}
	hj, err := Drain(HashEquiJoin(left.Scan(), right.Scan(), "frameno", "frameno"))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl) == 0 || len(nl) != len(hj) {
		t.Fatalf("nested=%d hash=%d", len(nl), len(hj))
	}
}

func TestIndexEquiJoinAgrees(t *testing.T) {
	db := openDB(t)
	left, _ := db.CreateCollection("l", simpleSchema())
	right, _ := db.CreateCollection("r", simpleSchema())
	for i := 0; i < 80; i++ {
		left.Append(mkPatch("car", int64(i%8)))
		right.Append(mkPatch("player", int64(i%12)))
	}
	idx, err := db.BuildIndex(right, "frameno", IdxHash)
	if err != nil {
		t.Fatal(err)
	}
	ij, err := Drain(IndexEquiJoin(db, left.Scan(), "frameno", right, idx))
	if err != nil {
		t.Fatal(err)
	}
	hj, _ := Drain(HashEquiJoin(left.Scan(), right.Scan(), "frameno", "frameno"))
	if len(ij) != len(hj) {
		t.Fatalf("index join %d rows, hash join %d", len(ij), len(hj))
	}
}

func TestRangeThetaJoinSortedAgreesWithNested(t *testing.T) {
	db := openDB(t)
	sch := Schema{Fields: []Field{{Name: "depth", Kind: KindFloat}}}
	col, _ := db.CreateCollection("d", sch)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		col.Append(&Patch{Ref: Ref{Source: "s", Frame: uint64(i)},
			Meta: Metadata{"depth": FloatV(rng.Float64() * 10)}})
	}
	ps, _ := col.Patches()
	const gap = 1.0
	sorted, err := RangeThetaJoinSorted(ps, ps, "depth", gap)
	if err != nil {
		t.Fatal(err)
	}
	nested, _ := Drain(NestedLoopJoin(FromPatches(ps), FromPatches(ps), func(a, b *Patch) bool {
		return a.ID != b.ID && a.Meta["depth"].F > b.Meta["depth"].F+gap
	}))
	if len(sorted) != len(nested) {
		t.Fatalf("sorted %d pairs, nested %d", len(sorted), len(nested))
	}
}

func TestDistinctClusters(t *testing.T) {
	// Three identities, several observations each; pairs connect
	// same-identity observations.
	var patches []*Patch
	var pairs []Tuple
	id := PatchID(1)
	for ident := 0; ident < 3; ident++ {
		var group []*Patch
		for obs := 0; obs < 4; obs++ {
			p := &Patch{ID: id}
			id++
			group = append(group, p)
			patches = append(patches, p)
		}
		for i := 0; i < len(group)-1; i++ {
			pairs = append(pairs, Tuple{group[i], group[i+1]})
		}
	}
	reps := DistinctClusters(patches, pairs)
	if len(reps) != 3 {
		t.Fatalf("distinct = %d, want 3", len(reps))
	}
	// No pairs: everything distinct.
	if got := DistinctClusters(patches, nil); len(got) != len(patches) {
		t.Fatalf("no-pair distinct = %d", len(got))
	}
}

func TestBacktrace(t *testing.T) {
	db := openDB(t)
	base, _ := db.CreateCollection("frames", Schema{})
	framePatch := &Patch{Ref: Ref{Source: "video0", Frame: 7}}
	base.Append(framePatch)
	dets, _ := db.CreateCollection("dets", Schema{})
	detPatch := &Patch{Ref: Ref{Source: "video0", Frame: 7, Parent: framePatch.ID}}
	dets.Append(detPatch)
	ocr, _ := db.CreateCollection("ocr", Schema{})
	ocrPatch := &Patch{Ref: Ref{Source: "video0", Frame: 7, Parent: detPatch.ID}}
	ocr.Append(ocrPatch)

	chain, err := db.Backtrace(ocrPatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length %d, want 2", len(chain))
	}
	if chain[0].ID != detPatch.ID || chain[1].ID != framePatch.ID {
		t.Fatal("chain order wrong")
	}
	if chain[1].Ref.Parent != 0 {
		t.Fatal("chain does not end at base")
	}
}

func TestOptimizerSimJoinChoices(t *testing.T) {
	cm := DefaultCostModel()
	// Tiny join: nested or batched CPU beats GPU (launch overhead).
	small := cm.PlanSimilarityJoin(20, 20, 64, false)
	if small.Device == exec.GPU {
		t.Fatalf("tiny join placed on GPU: %+v", small)
	}
	// Huge join: index or GPU should win over scalar nested loop.
	big := cm.PlanSimilarityJoin(20000, 20000, 64, false)
	if big.Method == SimNested {
		t.Fatalf("huge join planned as scalar nested loop: %s", big.Explain)
	}
	// With a prebuilt index on a large build side, indexed should be
	// competitive.
	withIdx := cm.PlanSimilarityJoin(1000, 100000, 64, true)
	if withIdx.Method == SimNested {
		t.Fatalf("indexed available but nested chosen: %s", withIdx.Explain)
	}
}

func TestOptimizerFilterPath(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 50; i++ {
		col.Append(mkPatch("car", int64(i)))
	}
	m, err := db.PlanFilter(col, "label", StrV("car"))
	if err != nil || m != FilterColumnScan {
		t.Fatalf("no-index plan = %v, %v", m, err)
	}
	db.BuildIndex(col, "label", IdxHash)
	m, _ = db.PlanFilter(col, "label", StrV("car"))
	if m != FilterHashIndex {
		t.Fatalf("hash available but plan = %v", m)
	}
	// Execution agreement across every physical method.
	scan, _ := db.ExecuteFilter(col, "label", StrV("car"), FilterScan)
	columnar, _ := db.ExecuteFilter(col, "label", StrV("car"), FilterColumnScan)
	indexed, _ := db.ExecuteFilter(col, "label", StrV("car"), FilterHashIndex)
	if len(scan) != len(indexed) || len(scan) != len(columnar) || len(scan) != 50 {
		t.Fatalf("scan %d vs columnar %d vs indexed %d", len(scan), len(columnar), len(indexed))
	}
}

func TestObservedFilterCostFeedback(t *testing.T) {
	cm := DefaultCostModel()
	// Cold model: static constants.
	if got, want := cm.FilterCost(FilterColumnScan, 1000, 0), 1000*CColScanSec; math.Abs(got-want) > 1e-12 {
		t.Fatalf("cold column-scan cost = %g, want %g", got, want)
	}
	// Below the sample floor the observation must not leak into pricing.
	for i := 0; i < minFilterObs-1; i++ {
		cm.ObserveFilter(FilterColumnScan, 1000, time.Second)
	}
	if _, ok := cm.ObservedFilterUnit(FilterColumnScan); ok {
		t.Fatal("observed cost trusted below sample floor")
	}
	cm.ObserveFilter(FilterColumnScan, 1000, time.Second)
	per, ok := cm.ObservedFilterUnit(FilterColumnScan)
	if !ok || per <= 0 {
		t.Fatalf("observed per-unit = %g, %v", per, ok)
	}
	// 1s per 1000 units observed throughout: the EWMA is exactly 1ms/unit
	// and ObservedFilterCost must quote it.
	if got := cm.ObservedFilterCost(FilterColumnScan, 2000, 0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("observed column-scan cost = %g, want 2.0", got)
	}
	// FilterCost stays the deterministic static estimator regardless —
	// it feeds response cost fields that must be byte-identical across
	// replicas.
	if got, want := cm.FilterCost(FilterColumnScan, 1000, 0), 1000*CColScanSec; math.Abs(got-want) > 1e-12 {
		t.Fatalf("static column-scan cost drifted: %g, want %g", got, want)
	}
	// Unobserved paths fall through to the static constants.
	if got, want := cm.ObservedFilterCost(FilterScan, 1000, 0), 1000*CRowScanSec; math.Abs(got-want) > 1e-12 {
		t.Fatalf("row-scan cost polluted: %g, want %g", got, want)
	}
	// Degenerate observations are dropped.
	cm.ObserveFilter(FilterScan, 0, time.Second)
	cm.ObserveFilter(FilterScan, 100, 0)
	if _, ok := cm.ObservedFilterUnit(FilterScan); ok {
		t.Fatal("degenerate observations counted")
	}
}

func TestPlanFilterObservedOverride(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("dets", simpleSchema())
	for i := 0; i < 50; i++ {
		col.Append(mkPatch("car", int64(i)))
	}
	db.BuildIndex(col, "label", IdxHash)
	// Cold start: static preference order holds.
	if m, _ := db.PlanFilter(col, "label", StrV("car")); m != FilterHashIndex {
		t.Fatalf("cold plan = %v, want hash-index", m)
	}
	cm := db.Cost()
	// Observe the hash path pathologically slow; the column scan stays
	// unobserved — the default must not flip on one-sided evidence...
	for i := 0; i < minFilterObs; i++ {
		cm.ObserveFilter(FilterHashIndex, 10, time.Second)
	}
	if m, _ := db.PlanFilter(col, "label", StrV("car")); m != FilterHashIndex {
		t.Fatalf("plan flipped on partially-observed comparison: %v", m)
	}
	// ...but once both paths are observed and the alternative is
	// measurably cheaper, the planner overrides the static order.
	for i := 0; i < minFilterObs; i++ {
		cm.ObserveFilter(FilterColumnScan, 1000, time.Microsecond)
	}
	if m, _ := db.PlanFilter(col, "label", StrV("car")); m != FilterColumnScan {
		t.Fatalf("observed-cheaper column scan not chosen: %v", m)
	}
}

func TestPlaceDevice(t *testing.T) {
	cm := DefaultCostModel()
	if dev := cm.PlaceDevice(1e4, 1e3, 1); dev == exec.GPU {
		t.Fatal("tiny kernel placed on GPU")
	}
	if dev := cm.PlaceDevice(1e12, 1e8, 10); dev != exec.GPU {
		t.Fatalf("huge kernel placed on %v", dev)
	}
}

func TestCalibrateKeepsModelSane(t *testing.T) {
	cm := DefaultCostModel()
	cm.Calibrate()
	if cm.CDist <= 0 || cm.CBuild <= 0 {
		t.Fatalf("calibration produced %+v", cm)
	}
}

func TestIndexNotFound(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("c", simpleSchema())
	if _, err := db.Index(col, "label", IdxHash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing index err = %v", err)
	}
}

func sortIDs(ids []PatchID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
