// Package core implements DeepLens's data model and query processing
// engine: unordered collections of image patches with typed key-value
// metadata, Volcano-style iterator operators (select, project, joins,
// aggregation), materialization with secondary indexes, tuple-level
// lineage, and a cost-based physical planner. This is the paper's primary
// contribution (§2-§5): a "narrow waist" that decouples how patches are
// generated (decoding, neural inference, OCR) from how they are queried.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// PatchID uniquely identifies a patch within a DB.
type PatchID uint64

// Ref is a patch's provenance pointer (the paper's ImgRef): the base
// source and frame it derives from, plus the parent patch when it was
// derived from another patch rather than directly from a base image.
// Every operator preserves Ref, maintaining a lineage chain back to raw
// data (§5.1).
type Ref struct {
	Source string  // base collection / video name
	Frame  uint64  // frame number or image index within Source
	Parent PatchID // deriving patch, 0 when derived from the base image
}

// Patch is the unit of data (§2.2): a pointer to its origin, an
// n-dimensional dense payload (pixels or features), and typed metadata.
type Patch struct {
	ID   PatchID
	Ref  Ref
	Data *tensor.Tensor
	Meta Metadata
}

// Tuple is a row flowing between operators: one patch per joined input.
type Tuple []*Patch

// ValueKind types a metadata value.
type ValueKind uint8

// Metadata value kinds.
const (
	KindInt ValueKind = iota + 1
	KindFloat
	KindStr
	KindVec  // float32 vector (features)
	KindRect // bounding box x1,y1,x2,y2
)

func (k ValueKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindStr:
		return "string"
	case KindVec:
		return "vec"
	case KindRect:
		return "rect"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a typed metadata value.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
	V    []float32
}

// Convenience constructors.
func IntV(v int64) Value     { return Value{Kind: KindInt, I: v} }
func FloatV(v float64) Value { return Value{Kind: KindFloat, F: v} }
func StrV(v string) Value    { return Value{Kind: KindStr, S: v} }
func VecV(v []float32) Value { return Value{Kind: KindVec, V: v} }
func RectV(x1, y1, x2, y2 float64) Value {
	return Value{Kind: KindRect, V: []float32{float32(x1), float32(y1), float32(x2), float32(y2)}}
}

// Equal compares two values of any kind.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindStr:
		return v.S == o.S
	case KindVec, KindRect:
		if len(v.V) != len(o.V) {
			return false
		}
		for i := range v.V {
			if v.V[i] != o.V[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Less orders comparable values (int/float/string); vec/rect are not
// ordered and always return false.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case KindInt:
		return v.I < o.I
	case KindFloat:
		return v.F < o.F
	case KindStr:
		return v.S < o.S
	}
	return false
}

// AsFloat widens numeric values; NaN for non-numeric.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return math.NaN()
}

// SortKey encodes comparable values into an order-preserving byte string
// (for B+ tree indexing). Vec/rect values are not indexable this way.
func (v Value) SortKey() ([]byte, error) {
	switch v.Kind {
	case KindInt:
		var k [9]byte
		k[0] = byte(KindInt)
		binary.BigEndian.PutUint64(k[1:], uint64(v.I)^(1<<63)) // order-preserving for signed
		return k[:], nil
	case KindFloat:
		var k [9]byte
		k[0] = byte(KindFloat)
		bits := math.Float64bits(v.F)
		if v.F >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		binary.BigEndian.PutUint64(k[1:], bits)
		return k[:], nil
	case KindStr:
		return append([]byte{byte(KindStr)}, v.S...), nil
	default:
		return nil, fmt.Errorf("core: %v values have no sort key", v.Kind)
	}
}

// Metadata is a patch's key-value dictionary.
type Metadata map[string]Value

// Clone deep-copies m.
func (m Metadata) Clone() Metadata {
	out := make(Metadata, len(m))
	for k, v := range m {
		if v.V != nil {
			v.V = append([]float32(nil), v.V...)
		}
		out[k] = v
	}
	return out
}

// Keys returns the metadata keys in sorted order.
func (m Metadata) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errCorrupt reports a malformed serialized patch.
var errCorrupt = errors.New("core: corrupt serialized patch")

// Marshal serializes a patch for storage.
func (p *Patch) Marshal() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putStr := func(s string) {
		putU(uint64(len(s)))
		buf = append(buf, s...)
	}
	putU(uint64(p.ID))
	putStr(p.Ref.Source)
	putU(p.Ref.Frame)
	putU(uint64(p.Ref.Parent))
	if p.Data != nil {
		d := p.Data.Marshal()
		putU(uint64(len(d)))
		buf = append(buf, d...)
	} else {
		putU(0)
	}
	putU(uint64(len(p.Meta)))
	for _, k := range p.Meta.Keys() {
		v := p.Meta[k]
		putStr(k)
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case KindInt:
			putU(uint64(v.I))
		case KindFloat:
			putU(math.Float64bits(v.F))
		case KindStr:
			putStr(v.S)
		case KindVec, KindRect:
			putU(uint64(len(v.V)))
			for _, f := range v.V {
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
				buf = append(buf, b[:]...)
			}
		}
	}
	return buf
}

// UnmarshalPatch parses a patch serialized by Marshal.
func UnmarshalPatch(buf []byte) (*Patch, error) {
	pos := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, errCorrupt
		}
		pos += n
		return v, nil
	}
	getStr := func() (string, error) {
		l, err := getU()
		if err != nil {
			return "", err
		}
		if pos+int(l) > len(buf) {
			return "", errCorrupt
		}
		s := string(buf[pos : pos+int(l)])
		pos += int(l)
		return s, nil
	}
	p := &Patch{Meta: Metadata{}}
	id, err := getU()
	if err != nil {
		return nil, err
	}
	p.ID = PatchID(id)
	if p.Ref.Source, err = getStr(); err != nil {
		return nil, err
	}
	if p.Ref.Frame, err = getU(); err != nil {
		return nil, err
	}
	parent, err := getU()
	if err != nil {
		return nil, err
	}
	p.Ref.Parent = PatchID(parent)
	dlen, err := getU()
	if err != nil {
		return nil, err
	}
	if dlen > 0 {
		if pos+int(dlen) > len(buf) {
			return nil, errCorrupt
		}
		t, err := tensor.Unmarshal(buf[pos : pos+int(dlen)])
		if err != nil {
			return nil, err
		}
		p.Data = t
		pos += int(dlen)
	}
	nmeta, err := getU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nmeta; i++ {
		k, err := getStr()
		if err != nil {
			return nil, err
		}
		if pos >= len(buf) {
			return nil, errCorrupt
		}
		kind := ValueKind(buf[pos])
		pos++
		var v Value
		v.Kind = kind
		switch kind {
		case KindInt:
			u, err := getU()
			if err != nil {
				return nil, err
			}
			v.I = int64(u)
		case KindFloat:
			u, err := getU()
			if err != nil {
				return nil, err
			}
			v.F = math.Float64frombits(u)
		case KindStr:
			if v.S, err = getStr(); err != nil {
				return nil, err
			}
		case KindVec, KindRect:
			l, err := getU()
			if err != nil {
				return nil, err
			}
			if pos+4*int(l) > len(buf) {
				return nil, errCorrupt
			}
			v.V = make([]float32, l)
			for j := range v.V {
				v.V[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[pos:]))
				pos += 4
			}
		default:
			return nil, errCorrupt
		}
		p.Meta[k] = v
	}
	return p, nil
}

// Clone deep-copies a patch (shared tensors are copied too).
func (p *Patch) Clone() *Patch {
	c := &Patch{ID: p.ID, Ref: p.Ref, Meta: p.Meta.Clone()}
	if p.Data != nil {
		c.Data = p.Data.Clone()
	}
	return c
}
