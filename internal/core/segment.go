package core

// Tiered column-segment storage. Columns are partitioned into immutable
// 1024-row segments shared by pointer between snapshots (Extend reuses
// sealed segments verbatim, so appends cost O(new rows), not a history
// memcpy). Sealed segments additionally spill through the kv pager into
// a per-collection bucket: the segment *summaries* — zone maps and null
// counts — always stay resident, so zone-pruned scans never fault a cold
// segment, while the row data itself lives behind an atomic pointer that
// a byte-budgeted LRU cache (SegmentCache) may drop once the bytes are
// safely on disk. Readers mid-scan hold the *segData they loaded, so an
// eviction never invalidates an in-flight kernel — the garbage collector
// is the reference count. A manifest (JSON, same bucket) records each
// spilled column's kind, dictionary and zone maps, letting a reopened
// collection rehydrate its column store from disk instead of
// re-projecting every patch.

import (
	"container/list"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/kv"
)

// segData is one segment's row data: a typed array for the column kind
// plus the local presence bitmap (bit set = value present). Rows address
// locally: global row i lives at i - seg.zone.lo. Every segData is an
// independent allocation — never a sub-slice of a store-wide array — so
// evicting one segment genuinely frees its bytes.
type segData struct {
	ints   []int64
	floats []float64
	codes  []uint32
	nulls  []uint64
}

func (d *segData) null(j int) bool  { return d.nulls[j>>6]&(1<<(uint(j)&63)) == 0 }
func (d *segData) setPresent(j int) { d.nulls[j>>6] |= 1 << (uint(j) & 63) }

// alloc sizes the typed array for kind if not already allocated (the
// kind of an all-null prefix is discovered mid-projection).
func (d *segData) alloc(kind ValueKind, rows int) {
	switch kind {
	case KindInt:
		if d.ints == nil {
			d.ints = make([]int64, rows)
		}
	case KindFloat:
		if d.floats == nil {
			d.floats = make([]float64, rows)
		}
	case KindStr:
		if d.codes == nil {
			d.codes = make([]uint32, rows)
		}
	}
}

// bytes is the cache-accounting size of the segment's arrays.
func (d *segData) bytes() int64 {
	return int64(8*len(d.ints) + 8*len(d.floats) + 4*len(d.codes) + 8*len(d.nulls) + 64)
}

// colSegment is one zone-mapped block of a column. The summary fields
// (zone, nnull, sealed) are immutable after the segment is built and
// always memory-resident; data may be dropped by the segment cache once
// ondisk is set, and reloads on demand. Sealed (full-size) segments are
// shared by pointer across every ColumnStore generation that covers
// their rows.
type colSegment struct {
	zone   zoneMap // includes the [lo, hi) row range
	nnull  int     // missing rows within the segment
	sealed bool    // full ColumnBlockSize rows: shareable and spillable
	ondisk atomic.Bool
	data   atomic.Pointer[segData]
}

func (sg *colSegment) rows() int { return sg.zone.hi - sg.zone.lo }

// computeZone fills the segment's zone map from its data.
func (sg *colSegment) computeZone(kind ValueKind, d *segData) {
	z := &sg.zone
	z.allNull = true
	for j := 0; j < sg.rows(); j++ {
		if d.null(j) {
			continue
		}
		switch kind {
		case KindInt:
			v := d.ints[j]
			if z.allNull || v < z.minI {
				z.minI = v
			}
			if z.allNull || v > z.maxI {
				z.maxI = v
			}
		case KindFloat:
			v := d.floats[j]
			if z.allNull || v < z.minF {
				z.minF = v
			}
			if z.allNull || v > z.maxF {
				z.maxF = v
			}
		case KindStr:
			if code := d.codes[j]; code < 64 {
				z.codeSet |= 1 << code
			}
		}
		z.allNull = false
	}
}

// ------------------------------------------------------ segment blobs ----

// segBlobVersion versions the on-disk segment encoding.
const segBlobVersion = 1

// encodeSegData serializes a segment's arrays: a 6-byte header (version,
// kind, bitmap length), the null bitmap, then the typed array via the
// codec package's losslessly round-tripping segment encoders.
func encodeSegData(kind ValueKind, d *segData) []byte {
	bm := codec.EncodeBitmap(d.nulls)
	var typed []byte
	switch kind {
	case KindInt:
		typed = codec.EncodeInts(d.ints)
	case KindFloat:
		typed = codec.EncodeFloats(d.floats)
	case KindStr:
		typed = codec.EncodeCodes(d.codes)
	}
	out := make([]byte, 0, 6+len(bm)+len(typed))
	out = append(out, segBlobVersion, byte(kind))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(bm)))
	out = append(out, bm...)
	out = append(out, typed...)
	return out
}

// decodeSegData reverses encodeSegData, validating the header against the
// expected kind and row count. decode(encode(d)) == d byte-for-byte.
func decodeSegData(kind ValueKind, rows int, b []byte) (*segData, error) {
	if len(b) < 6 || b[0] != segBlobVersion || ValueKind(b[1]) != kind {
		return nil, fmt.Errorf("core: segment blob header mismatch")
	}
	bl := int(binary.LittleEndian.Uint32(b[2:]))
	if bl < 0 || len(b) < 6+bl {
		return nil, fmt.Errorf("core: segment blob bitmap length")
	}
	nulls, err := codec.DecodeBitmap(b[6 : 6+bl])
	if err != nil {
		return nil, err
	}
	if len(nulls) != (rows+63)/64 {
		return nil, fmt.Errorf("core: segment bitmap rows mismatch")
	}
	d := &segData{nulls: nulls}
	typed := b[6+bl:]
	switch kind {
	case KindInt:
		if d.ints, err = codec.DecodeInts(typed); err == nil && len(d.ints) != rows {
			err = fmt.Errorf("core: segment int rows mismatch")
		}
	case KindFloat:
		if d.floats, err = codec.DecodeFloats(typed); err == nil && len(d.floats) != rows {
			err = fmt.Errorf("core: segment float rows mismatch")
		}
	case KindStr:
		if d.codes, err = codec.DecodeCodes(typed); err == nil && len(d.codes) != rows {
			err = fmt.Errorf("core: segment code rows mismatch")
		}
	default:
		err = fmt.Errorf("core: segment kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ------------------------------------------------------- segment cache ----

// SegmentCache is a byte-budgeted LRU over resident spilled segments,
// shared service-wide (one cache across every shard replica DB, like the
// shared cost model). Only segments safely on disk are tracked: evicting
// one just drops its data pointer — the bytes reload from the kv bucket
// on next touch, and any reader already holding the data keeps it alive.
// A budget of 0 disables eviction (segments still spill for restart
// rehydration, but stay resident).
type SegmentCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	elems  map[*colSegment]*list.Element

	spills      atomic.Int64
	spillErrors atomic.Int64
	loads       atomic.Int64
	loadFaults  atomic.Int64
	evictions   atomic.Int64
}

type segEntry struct {
	sg   *colSegment
	size int64
}

// NewSegmentCache builds a segment cache with the given byte budget
// (0 or negative = unlimited: spill for durability, never evict).
func NewSegmentCache(budgetBytes int64) *SegmentCache {
	return &SegmentCache{
		budget: budgetBytes,
		ll:     list.New(),
		elems:  make(map[*colSegment]*list.Element),
	}
}

// Budget returns the configured byte budget (0 = unlimited).
func (sc *SegmentCache) Budget() int64 {
	if sc == nil {
		return 0
	}
	return sc.budget
}

// insert tracks a resident spilled segment, evicting least-recently-used
// segments while over budget.
func (sc *SegmentCache) insert(sg *colSegment, size int64) {
	sc.mu.Lock()
	if e, ok := sc.elems[sg]; ok {
		sc.ll.MoveToFront(e)
		sc.mu.Unlock()
		return
	}
	e := sc.ll.PushFront(&segEntry{sg: sg, size: size})
	sc.elems[sg] = e
	sc.bytes += size
	for sc.budget > 0 && sc.bytes > sc.budget && sc.ll.Len() > 0 {
		back := sc.ll.Back()
		ent := back.Value.(*segEntry)
		sc.ll.Remove(back)
		delete(sc.elems, ent.sg)
		sc.bytes -= ent.size
		ent.sg.data.Store(nil)
		sc.evictions.Add(1)
	}
	sc.mu.Unlock()
}

// touch marks a tracked segment recently used.
func (sc *SegmentCache) touch(sg *colSegment) {
	sc.mu.Lock()
	if e, ok := sc.elems[sg]; ok {
		sc.ll.MoveToFront(e)
	}
	sc.mu.Unlock()
}

// EvictAll drops every tracked segment's data (tests and memory
// pressure): the summaries stay, the bytes reload on demand.
func (sc *SegmentCache) EvictAll() {
	sc.mu.Lock()
	for sg := range sc.elems {
		sg.data.Store(nil)
		sc.evictions.Add(1)
	}
	sc.ll.Init()
	sc.elems = make(map[*colSegment]*list.Element)
	sc.bytes = 0
	sc.mu.Unlock()
}

// SegmentCacheStats is a point-in-time snapshot of the cache counters.
type SegmentCacheStats struct {
	Spills           int64 // sealed segments written to disk
	SpillErrors      int64 // failed segment or manifest writes (segment stays pinned)
	Loads            int64 // cold segments read back from disk
	LoadFaults       int64 // unreadable spilled segments rebuilt from the row snapshot
	Evictions        int64 // resident segments dropped under budget pressure
	ResidentBytes    int64 // bytes of spilled segments currently resident
	ResidentSegments int   // spilled segments currently resident
	Budget           int64 // configured byte budget (0 = unlimited)
}

// Stats snapshots the cache counters.
func (sc *SegmentCache) Stats() SegmentCacheStats {
	if sc == nil {
		return SegmentCacheStats{}
	}
	sc.mu.Lock()
	resident, nres := sc.bytes, sc.ll.Len()
	sc.mu.Unlock()
	return SegmentCacheStats{
		Spills:           sc.spills.Load(),
		SpillErrors:      sc.spillErrors.Load(),
		Loads:            sc.loads.Load(),
		LoadFaults:       sc.loadFaults.Load(),
		Evictions:        sc.evictions.Load(),
		ResidentBytes:    resident,
		ResidentSegments: nres,
		Budget:           sc.budget,
	}
}

// --------------------------------------------------------- spill layer ----

// columnSpill is one collection's disk tier: the kv bucket holding its
// encoded segments and manifest, and the shared cache that budgets the
// resident set. Created lazily by the catalog when the DB has a segment
// cache installed; a nil *columnSpill means the column store is purely
// in-memory (the core-library default — behavior then matches the
// pre-tiered engine exactly).
type columnSpill struct {
	bucket *kv.Bucket
	cache  *SegmentCache

	mu sync.Mutex   // serializes writes and manifest read-modify-write
	m  *segManifest // cached manifest (lazily loaded)
}

// segManifest is the JSON document (bucket key "m") describing every
// spilled column: enough summary state — kind, dictionary, zone maps,
// null counts — to rebuild a column's resident skeleton without touching
// a single data segment.
type segManifest struct {
	Fields map[string]*fieldManifest `json:"fields"`
}

type fieldManifest struct {
	Kind     ValueKind `json:"kind"`
	Rows     int       `json:"rows"`      // spilled sealed prefix length (len(Segs) * ColumnBlockSize)
	DictRows int       `json:"dict_rows"` // snapshot length Dict reflects (first-appearance order)
	Dict     []string  `json:"dict,omitempty"`
	NNull    int       `json:"nnull"` // missing rows over the sealed prefix
	Segs     []segMeta `json:"segs"`
}

// segMeta mirrors one sealed segment's resident summary. Float bounds
// persist as raw bit patterns so NaN/±Inf/-0.0 zones round-trip exactly.
type segMeta struct {
	MinI    int64  `json:"min_i,omitempty"`
	MaxI    int64  `json:"max_i,omitempty"`
	MinFB   uint64 `json:"min_fb,omitempty"`
	MaxFB   uint64 `json:"max_fb,omitempty"`
	CodeSet uint64 `json:"codes,omitempty"`
	AllNull bool   `json:"all_null,omitempty"`
	NNull   int    `json:"nnull,omitempty"`
}

func zoneMeta(sg *colSegment) segMeta {
	z := sg.zone
	return segMeta{
		MinI: z.minI, MaxI: z.maxI,
		MinFB: math.Float64bits(z.minF), MaxFB: math.Float64bits(z.maxF),
		CodeSet: z.codeSet, AllNull: z.allNull, NNull: sg.nnull,
	}
}

// segment rebuilds the resident skeleton of sealed segment si: summary
// in memory, data cold on disk.
func (m segMeta) segment(si int) *colSegment {
	sg := &colSegment{
		zone: zoneMap{
			lo:   si * ColumnBlockSize,
			hi:   (si + 1) * ColumnBlockSize,
			minI: m.MinI, maxI: m.MaxI,
			minF: math.Float64frombits(m.MinFB), maxF: math.Float64frombits(m.MaxFB),
			codeSet: m.CodeSet, allNull: m.AllNull,
		},
		nnull:  m.NNull,
		sealed: true,
	}
	sg.ondisk.Store(true)
	return sg
}

var manifestKey = []byte("m")

// segKey is the bucket key of field's si-th sealed segment. Sealed
// segments are immutable and content-stable across store generations, so
// (field, index) addresses one value forever.
func segKey(field string, si int) []byte {
	k := make([]byte, 0, 3+len(field)+8)
	k = append(k, 's', 0)
	k = append(k, field...)
	k = append(k, 0)
	return append(k, kv.U64Key(uint64(si))...)
}

// manifestLocked returns the cached manifest, loading it from the bucket
// on first touch. Callers hold sp.mu.
func (sp *columnSpill) manifestLocked() *segManifest {
	if sp.m != nil {
		return sp.m
	}
	sp.m = &segManifest{Fields: make(map[string]*fieldManifest)}
	if raw, err := sp.bucket.Get(manifestKey); err == nil {
		var m segManifest
		if json.Unmarshal(raw, &m) == nil && m.Fields != nil {
			sp.m = &m
		}
	}
	return sp.m
}

// persist writes col's sealed, not-yet-spilled segments to the bucket
// and refreshes the manifest entry. Write failures count and leave the
// segment memory-pinned (never tracked by the cache, so never evicted);
// the manifest only ever describes the contiguous successfully-spilled
// prefix. Safe to call from racing builders: the first writer wins, the
// rest see ondisk and skip.
func (sp *columnSpill) persist(col *Column) {
	sealed := 0
	for _, sg := range col.segs {
		if !sg.sealed {
			break
		}
		sealed++
	}
	if sealed == 0 {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for si, sg := range col.segs[:sealed] {
		if sg.ondisk.Load() {
			continue
		}
		d := sg.data.Load()
		if d == nil {
			continue
		}
		if err := sp.bucket.Put(segKey(col.field, si), encodeSegData(col.kind, d)); err != nil {
			sp.cache.spillErrors.Add(1)
			continue
		}
		sp.cache.spills.Add(1)
		sg.ondisk.Store(true)
		sp.cache.insert(sg, d.bytes())
	}
	// Manifest covers only the contiguous on-disk prefix.
	prefix := 0
	for _, sg := range col.segs[:sealed] {
		if !sg.ondisk.Load() {
			break
		}
		prefix++
	}
	if prefix == 0 {
		return
	}
	m := sp.manifestLocked()
	mf := m.Fields[col.field]
	if mf != nil && mf.Rows >= prefix*ColumnBlockSize && mf.DictRows >= col.n {
		return // already current
	}
	nf := &fieldManifest{
		Kind:     col.kind,
		Rows:     prefix * ColumnBlockSize,
		DictRows: col.n,
		Dict:     append([]string(nil), col.dict...),
	}
	for _, sg := range col.segs[:prefix] {
		nf.NNull += sg.nnull
		nf.Segs = append(nf.Segs, zoneMeta(sg))
	}
	m.Fields[col.field] = nf
	raw, err := json.Marshal(m)
	if err == nil {
		err = sp.bucket.Put(manifestKey, raw)
	}
	if err != nil {
		sp.cache.spillErrors.Add(1)
	}
}

// rehydrate rebuilds field's column from the manifest: spilled sealed
// segments come back as cold skeletons (summary resident, data on disk)
// and only the tail past the spilled prefix re-projects from patches.
// handled is false when the manifest cannot serve this field (never
// spilled, or the snapshot is shorter than the spilled prefix) — the
// caller then runs a full projection. A nil column with handled true is
// the cached non-columnizable verdict (a tail row broke the column),
// matching what a fresh projection would conclude.
func (sp *columnSpill) rehydrate(field string, patches []*Patch) (col *Column, handled bool) {
	sp.mu.Lock()
	m := sp.manifestLocked()
	mf := m.Fields[field]
	sp.mu.Unlock()
	if mf == nil || mf.Rows == 0 || mf.Rows > len(patches) || mf.DictRows > len(patches) ||
		len(mf.Segs)*ColumnBlockSize != mf.Rows {
		return nil, false
	}
	col = &Column{
		kind:    mf.Kind,
		n:       len(patches),
		field:   field,
		patches: patches,
		spill:   sp,
		nnull:   mf.NNull,
		dict:    append([]string(nil), mf.Dict...),
		dictIdx: make(map[string]uint32, len(mf.Dict)),
	}
	for i, s := range col.dict {
		col.dictIdx[s] = uint32(i)
	}
	col.segs = make([]*colSegment, 0, (len(patches)+ColumnBlockSize-1)/ColumnBlockSize)
	for si := range mf.Segs {
		col.segs = append(col.segs, mf.Segs[si].segment(si))
	}
	if !col.appendRows(mf.Rows, len(patches)) {
		return nil, true
	}
	sp.persist(col) // tail rows may have sealed fresh segments
	return col, true
}
