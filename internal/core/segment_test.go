package core

import (
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/exec"
)

// Tiered column-store tests: spill → evict → reload must be
// byte-identical to the purely in-memory store, zone-pruned scans must
// never touch the pager, reopened collections rehydrate from disk, and
// Extend allocation stays O(new rows) regardless of history length.

var tieredFields = []string{"label", "score", "rank", "sparse", "clustered"}

// tieredCollection is columnCollection with a segment cache installed
// before any column projects, so every sealed segment spills.
func tieredCollection(t testing.TB, rows int, budget int64) (*DB, *Collection, *SegmentCache) {
	t.Helper()
	db := openDB(t)
	sc := NewSegmentCache(budget)
	db.SetSegmentCache(sc)
	col, err := db.CreateCollection("col.dets", columnTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db, col, sc
}

// assertStoreMatchesMemory compares a tiered store against a fresh
// purely in-memory projection of the same snapshot: every column byte
// for byte, plus query-level agreement on each kernel.
func assertStoreMatchesMemory(t *testing.T, cs, mem *ColumnStore) {
	t.Helper()
	for _, f := range tieredFields {
		columnsEqual(t, f, cs, mem)
	}
	se, _ := cs.FilterEq("label", StrV("car"))
	sm, _ := mem.FilterEq("label", StrV("car"))
	if !reflect.DeepEqual(se, sm) {
		t.Fatalf("FilterEq diverges: %d vs %d rows", len(se), len(sm))
	}
	re, _ := cs.FilterRange("score", 1.5, 6.25)
	rm, _ := mem.FilterRange("score", 1.5, 6.25)
	if !reflect.DeepEqual(re, rm) {
		t.Fatalf("FilterRange diverges: %d vs %d rows", len(re), len(rm))
	}
	te, _ := cs.TopK(nil, "score", true, 50)
	tm, _ := mem.TopK(nil, "score", true, 50)
	if !reflect.DeepEqual(te, tm) {
		t.Fatal("TopK diverges")
	}
	ge, _ := cs.GroupCount("label")
	gm, _ := mem.GroupCount("label")
	if !reflect.DeepEqual(ge, gm) {
		t.Fatal("GroupCount diverges")
	}
}

// TestTieredStoreByteIdenticalAfterEvict: with a budget far below the
// column footprint, results before and after a full eviction are byte
// for byte the in-memory store's.
func TestTieredStoreByteIdenticalAfterEvict(t *testing.T) {
	const rows = 4*ColumnBlockSize + 200
	_, col, sc := tieredCollection(t, rows, 24<<10)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewColumnStore(cs.Patches(), cs.Version())
	assertStoreMatchesMemory(t, cs, mem)
	if st := sc.Stats(); st.Spills == 0 {
		t.Fatalf("no segments spilled under a %d-byte budget: %+v", sc.Budget(), st)
	}
	sc.EvictAll()
	assertStoreMatchesMemory(t, cs, mem)
	st := sc.Stats()
	if st.Loads == 0 {
		t.Fatalf("post-eviction scans never reloaded a segment: %+v", st)
	}
	if st.LoadFaults != 0 {
		t.Fatalf("healthy store reported load faults: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("tight budget never evicted: %+v", st)
	}
}

// TestZonePrunedScanTouchesNoPages: after eviction, a predicate every
// zone map refutes completes with zero pager reads — the resident
// summaries alone answer it — while an unpruned predicate faults
// exactly the surviving segments back in.
func TestZonePrunedScanTouchesNoPages(t *testing.T) {
	const rows = 4 * ColumnBlockSize
	db, col, sc := tieredCollection(t, rows, 1<<20)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.Column("clustered"); !ok {
		t.Fatal("clustered did not project")
	}
	sc.EvictAll()
	pager := db.Store().Pager()

	before := pager.Reads()
	sel, st, ok := cs.FilterEqStats("clustered", IntV(99))
	if !ok || len(sel) != 0 {
		t.Fatalf("all-pruned predicate matched %d rows", len(sel))
	}
	if st.Pruned != st.Blocks || st.SegLoads != 0 {
		t.Fatalf("pruned scan stats: %+v", st)
	}
	if delta := pager.Reads() - before; delta != 0 {
		t.Fatalf("zone-pruned scan performed %d pager reads, want 0", delta)
	}

	// A surviving predicate faults exactly its one segment back in. The
	// clustered column RLE-compresses to an inline blob the btree node
	// cache can serve, so no pager assertion here — just the load count.
	sel, st, _ = cs.FilterEqStats("clustered", IntV(2))
	if len(sel) != ColumnBlockSize || st.SegLoads != 1 {
		t.Fatalf("selective scan: %d rows, %d segment loads", len(sel), st.SegLoads)
	}

	// Sanity for the counter itself: float segments spill uncompressed
	// (~8 KiB, an overflow chain), so reloading them must touch pages.
	if _, ok := cs.Column("score"); !ok {
		t.Fatal("score did not project")
	}
	sc.EvictAll()
	before = pager.Reads()
	if _, rst, ok := cs.FilterRangeStats("score", 5.0, 5.05); !ok || rst.SegLoads == 0 {
		t.Fatalf("range scan loaded no segments: %+v", rst)
	}
	if delta := pager.Reads() - before; delta == 0 {
		t.Fatal("cold float segment load performed no pager reads")
	}
}

// TestTieredStoreRehydratesOnReopen: a reopened collection rebuilds its
// columns from the spill manifest — zero re-spills, summaries resident
// before any data loads — and still answers byte-identically.
func TestTieredStoreRehydratesOnReopen(t *testing.T) {
	const rows = 3*ColumnBlockSize + 100
	path := filepath.Join(t.TempDir(), "dl.db")
	db, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	db.SetSegmentCache(NewSegmentCache(0))
	col, err := db.CreateCollection("col.dets", columnTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tieredFields {
		cs.Column(f)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sc2 := NewSegmentCache(0)
	db2.SetSegmentCache(sc2)
	col2, err := db2.Collection("col.dets")
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := col2.Columns()
	if err != nil {
		t.Fatal(err)
	}
	// Summaries alone must answer a pruned scan: no loads yet.
	if sel, st, ok := cs2.FilterEqStats("clustered", IntV(99)); !ok || len(sel) != 0 || st.SegLoads != 0 {
		t.Fatalf("rehydrated pruned scan: %d rows, %d loads", len(sel), st.SegLoads)
	}
	snap, ver, err := col2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	assertStoreMatchesMemory(t, cs2, NewColumnStore(snap, ver))
	st := sc2.Stats()
	if st.Spills != 0 {
		t.Fatalf("reopen re-spilled %d segments: rehydration fell back to full projection", st.Spills)
	}
	if st.Loads == 0 {
		t.Fatal("rehydrated store answered full scans without loading any spilled segment")
	}
	if st.LoadFaults != 0 {
		t.Fatalf("rehydrated store hit load faults: %+v", st)
	}
}

// TestCorruptSpilledSegmentRebuilds: an unreadable spilled segment is
// rebuilt from the row snapshot — a counted fault, never a wrong answer.
func TestCorruptSpilledSegmentRebuilds(t *testing.T) {
	const rows = 2 * ColumnBlockSize
	db, col, sc := tieredCollection(t, rows, 1<<20)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewColumnStore(cs.Patches(), cs.Version())
	assertStoreMatchesMemory(t, cs, mem) // project + spill everything
	b, err := db.Store().Bucket(colSegBucket("col.dets"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"rank", "label"} {
		if err := b.Put(segKey(f, 0), []byte("garbage")); err != nil {
			t.Fatal(err)
		}
	}
	sc.EvictAll()
	assertStoreMatchesMemory(t, cs, mem)
	if st := sc.Stats(); st.LoadFaults == 0 {
		t.Fatalf("corrupt segments loaded without a fault: %+v", st)
	}
}

// TestSegmentCacheBudgetEvicts: a sequential sweep over a store larger
// than the budget keeps the resident set at or under budget and evicts
// along the way.
func TestSegmentCacheBudgetEvicts(t *testing.T) {
	const rows = 8 * ColumnBlockSize
	const budget = 20 << 10
	_, col, sc := tieredCollection(t, rows, budget)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.GroupCount("rank"); !ok {
		t.Fatal("rank did not project")
	}
	st := sc.Stats()
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes over the %d budget", st.ResidentBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("sweep past the budget never evicted: %+v", st)
	}
}

// TestExtendAllocsIndependentOfHistory is the O(new-rows) regression
// guard: extending a 64-block store by the same suffix must allocate no
// more than extending a 1-block store — sealed history is shared by
// pointer, never copied.
func TestExtendAllocsIndependentOfHistory(t *testing.T) {
	measure := func(nblocks int) float64 {
		n := nblocks * ColumnBlockSize
		ps := make([]*Patch, n+64)
		for i := range ps {
			ps[i] = columnPatch(i)
			ps[i].ID = PatchID(i + 1)
		}
		cs := NewColumnStore(ps[:n], 1)
		for _, f := range tieredFields {
			cs.Column(f)
		}
		return testing.AllocsPerRun(20, func() {
			cs.Extend(ps, 2)
		})
	}
	small, large := measure(1), measure(64)
	if large > small+8 {
		t.Fatalf("Extend allocations grew with history: %.0f (1 block) -> %.0f (64 blocks)", small, large)
	}
}

// TestTieredConcurrentAppendScan hammers a spilled store with
// concurrent appends, scans and forced evictions (run under -race in
// CI): every reader must see a consistent snapshot and the final store
// must match a fresh in-memory projection.
func TestTieredConcurrentAppendScan(t *testing.T) {
	const base = 2 * ColumnBlockSize
	const extra = 600
	_, col, sc := tieredCollection(t, base, 16<<10)
	if _, err := col.Columns(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := base; i < base+extra; i++ {
			if err := col.Append(columnPatch(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				cs, err := col.Columns()
				if err != nil {
					t.Error(err)
					return
				}
				sel, _ := cs.FilterEq("label", StrV("car"))
				if len(sel) > cs.Len() {
					t.Errorf("selection larger than snapshot: %d > %d", len(sel), cs.Len())
					return
				}
				cs.TopK(nil, "score", true, 10)
				cs.GroupCount("rank")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sc.EvictAll()
			runtime.Gosched()
		}
	}()
	wg.Wait()
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != base+extra {
		t.Fatalf("final snapshot %d rows, want %d", cs.Len(), base+extra)
	}
	assertStoreMatchesMemory(t, cs, NewColumnStore(cs.Patches(), cs.Version()))
}
