package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
)

// resyncFixture builds a replicated database with rows appended, ready
// for demotion/repair scenarios.
func resyncFixture(t *testing.T, shards, replicas, rows int) (*Sharded, *ShardedCollection) {
	t.Helper()
	s, err := OpenShardedReplicas(t.TempDir(), shards, replicas, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	sc, err := s.CreateCollection("dets", shardTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s, sc
}

// requireReplicaMatchesPrimary asserts the replica serves byte-identical
// snapshots to its primary for every shard it covers.
func requireReplicaMatchesPrimary(t *testing.T, sc *ShardedCollection, shard, replica int) {
	t.Helper()
	pp, _, err := sc.Replica(shard, 0).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rp, _, err := sc.Replica(shard, replica).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(pp) != len(rp) {
		t.Fatalf("shard %d replica %d holds %d rows, primary %d", shard, replica, len(rp), len(pp))
	}
	for i := range pp {
		if !samePatchBytes(pp[i], rp[i]) {
			t.Fatalf("shard %d replica %d row %d differs from primary", shard, replica, i)
		}
	}
}

func TestResyncRepairsDemotedReplica(t *testing.T) {
	s, sc := resyncFixture(t, 2, 2, 60)

	// Demote shard 0's secondary via a certain injected append failure,
	// then keep appending: the frozen replica must receive nothing.
	s.SetFaults(fault.New(fault.Config{Seed: 1, Rules: []fault.Rule{
		{Point: fault.AppendError, Shard: 0, Replica: 1, Prob: 1},
	}}))
	hit0 := 0
	for i := 60; i < 180; i++ {
		p := shardTestPatch(i)
		if err := sc.Append(p); err != nil {
			t.Fatal(err)
		}
		if s.ShardFor(p.ID) == 0 {
			hit0++
		}
	}
	if hit0 == 0 {
		t.Fatal("no appends routed to shard 0; test is vacuous")
	}
	frozen := sc.Replica(0, 1).Len()
	if frozen >= sc.Replica(0, 0).Len() {
		t.Fatalf("demoted replica len %d not behind primary %d", frozen, sc.Replica(0, 0).Len())
	}
	// A demoted replica is out of the append fan-out: only the first
	// failed append should have fired the failpoint for shard 0.
	for i := 180; i < 200; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.Replica(0, 1).Len(); got != frozen {
		t.Fatalf("demoted replica grew %d -> %d; must be frozen", frozen, got)
	}
	if lags := s.OutOfSyncReplicas(); len(lags) != 1 || lags[0] != (ReplicaLag{Shard: 0, Replica: 1}) {
		t.Fatalf("OutOfSyncReplicas = %+v, want shard 0 replica 1", lags)
	}

	// Heal the fault and repair: the replica must rejoin with
	// byte-identical contents.
	s.SetFaults(nil)
	rows, err := s.ResyncReplica(context.Background(), 0, 1)
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	if rows == 0 {
		t.Fatal("resync streamed no rows over a lagging replica")
	}
	if got := s.InSyncReplicas(0); len(got) != 2 {
		t.Fatalf("shard 0 in-sync after resync = %v, want both", got)
	}
	if lags := s.OutOfSyncReplicas(); len(lags) != 0 {
		t.Fatalf("OutOfSyncReplicas after resync = %+v, want none", lags)
	}
	requireReplicaMatchesPrimary(t, sc, 0, 1)
	resyncs, streamed := s.ResyncStats()
	if resyncs != 1 || streamed != int64(rows) {
		t.Fatalf("ResyncStats = (%d, %d), want (1, %d)", resyncs, streamed, rows)
	}

	// The repaired replica is back in the write fan-out.
	before := sc.Replica(0, 1).Len()
	for i := 200; i < 260; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Replica(0, 1).Len() == before {
		t.Fatal("promoted replica received no post-repair appends")
	}
	requireReplicaMatchesPrimary(t, sc, 0, 1)

	// Repairing an in-sync replica is a no-op.
	if n, err := s.ResyncReplica(context.Background(), 0, 1); n != 0 || err != nil {
		t.Fatalf("resync of in-sync replica = (%d, %v), want (0, nil)", n, err)
	}
}

func TestTornResyncStaysDemoted(t *testing.T) {
	s, sc := resyncFixture(t, 1, 2, 50)
	if !s.Demote(0, 1) {
		t.Fatal("Demote(0,1) reported no transition")
	}
	// Grow the lag past one chunk so a mid-stream tear leaves a strict
	// partial repair.
	for i := 50; i < 50+3*resyncChunk; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	frozen := sc.Replica(0, 1).Len()

	// Tear the repair mid-stream: the second chunk fails.
	s.SetFaults(fault.New(fault.Config{Seed: 7, Rules: []fault.Rule{
		{Point: fault.ResyncError, Shard: 0, Replica: 1, Prob: 1},
	}}))
	_, err := s.ResyncReplica(context.Background(), 0, 1)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn resync error = %v, want injected", err)
	}
	if got := s.InSyncReplicas(0); len(got) != 1 {
		t.Fatalf("in-sync after torn resync = %v, want primary only", got)
	}
	if lags := s.OutOfSyncReplicas(); len(lags) != 1 || lags[0].Resyncing {
		t.Fatalf("OutOfSyncReplicas after torn resync = %+v, want one idle lag", lags)
	}
	// A torn repair may have streamed some rows, but never past the
	// primary, and what landed must still be a byte-exact prefix.
	partial, _, err := sc.Replica(0, 1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) < frozen || len(partial) > sc.Replica(0, 0).Len() {
		t.Fatalf("torn repair left %d rows (frozen %d, primary %d)",
			len(partial), frozen, sc.Replica(0, 0).Len())
	}
	pp, _, err := sc.Replica(0, 0).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range partial {
		if !samePatchBytes(rp, pp[i]) {
			t.Fatalf("torn repair corrupted row %d", i)
		}
	}
	if n, _ := s.ResyncStats(); n != 0 {
		t.Fatalf("torn repair counted as a resync (%d)", n)
	}

	// Heal and retry: the next attempt resumes from the partial prefix.
	s.SetFaults(nil)
	if _, err := s.ResyncReplica(context.Background(), 0, 1); err != nil {
		t.Fatalf("healed resync: %v", err)
	}
	if got := s.InSyncReplicas(0); len(got) != 2 {
		t.Fatalf("in-sync after healed resync = %v, want both", got)
	}
	requireReplicaMatchesPrimary(t, sc, 0, 1)
}

func TestResyncRejectsBadCoordinates(t *testing.T) {
	s, _ := resyncFixture(t, 1, 2, 4)
	for _, c := range [][2]int{{-1, 1}, {1, 1}, {0, 0}, {0, 2}} {
		if _, err := s.ResyncReplica(context.Background(), c[0], c[1]); err == nil {
			t.Fatalf("ResyncReplica(%d, %d) accepted bad coordinates", c[0], c[1])
		}
	}
	if s.Demote(0, 0) {
		t.Fatal("primary demotion must be refused")
	}
}

func TestResyncHonorsCancel(t *testing.T) {
	s, sc := resyncFixture(t, 1, 2, 10)
	s.Demote(0, 1)
	for i := 10; i < 10+2*resyncChunk; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ResyncReplica(ctx, 0, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled resync = %v, want context.Canceled", err)
	}
	if got := s.InSyncReplicas(0); len(got) != 1 {
		t.Fatalf("in-sync after canceled resync = %v, want primary only", got)
	}
}

// TestAppendDuringResyncHammer races live appends against a repair
// (stall-widened so the unlocked phase overlaps real writes) and
// requires the promoted replica to match the primary byte-for-byte.
// Run with -race; the catch-up round under the shard append lock is
// what keeps this sound.
func TestAppendDuringResyncHammer(t *testing.T) {
	s, sc := resyncFixture(t, 1, 2, resyncChunk)
	s.Demote(0, 1)
	// Build a multi-chunk lag while the replica is frozen.
	for i := resyncChunk; i < 3*resyncChunk; i++ {
		if err := sc.Append(shardTestPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Widen the repair window: every chunk stalls briefly so appends
	// land mid-stream.
	s.SetFaults(fault.New(fault.Config{Seed: 11, Rules: []fault.Rule{
		{Point: fault.ResyncStall, Shard: 0, Replica: 1, Prob: 1, Stall: 2 * time.Millisecond},
	}}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 10_000
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sc.Append(shardTestPatch(i)); err != nil {
				t.Errorf("append during resync: %v", err)
				return
			}
			i++
		}
	}()

	rows, err := s.ResyncReplica(context.Background(), 0, 1)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("resync under append load: %v", err)
	}
	if rows < 2*resyncChunk {
		t.Fatalf("resync streamed %d rows, want >= %d", rows, 2*resyncChunk)
	}
	if got := s.InSyncReplicas(0); len(got) != 2 {
		t.Fatalf("in-sync after hammer = %v, want both", got)
	}
	requireReplicaMatchesPrimary(t, sc, 0, 1)
}
