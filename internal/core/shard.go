package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/exec"
)

// This file implements horizontal partitioning: a Sharded database fans
// the storage entry points (CreateCollection, Append, Materialize) out
// across N independent DB instances — one kv store and directory each —
// behind a combined catalog view. Patches route to shards by a
// deterministic hash of their PatchID, so placement is stable across
// restarts and reshard-free reopens; the serving layer scatters query
// fragments across the shards and merges at the gather stage.
//
// With one shard the layer is a pass-through: IDs, versions and
// per-collection contents are byte-identical to an unsharded DB fed the
// same operations (the N=1 equivalence the service tests pin down).

// shardMetaFile persists the shard count at the root of a sharded
// directory so a reopen with a different -shards value fails loudly
// instead of silently splitting collections across disjoint layouts.
const shardMetaFile = "SHARDS.json"

type shardMeta struct {
	Shards int `json:"shards"`
}

// ErrShardMismatch reports a sharded directory reopened with a different
// shard count than it was created with.
var ErrShardMismatch = errors.New("core: shard count mismatch")

// Sharded is a horizontally partitioned database: N independent DB
// instances (shard subdirectories) behind one combined catalog. All
// writes must go through the Sharded layer (or a ShardedCollection),
// which allocates globally unique patch ids and routes each patch to
// its home shard.
type Sharded struct {
	dir    string
	shards []*DB

	mu   sync.RWMutex
	cols map[string]*ShardedCollection
}

// OpenSharded opens (or creates) a sharded database of n shards rooted
// at dir, each shard an independent DB at dir/shard-NNN/deeplens.db on
// the given device. n < 1 is treated as 1. Reopening an existing
// sharded directory with a different n fails with ErrShardMismatch:
// patches were hash-placed for the original count, and a different
// modulus would scatter every collection across the wrong shards.
func OpenSharded(dir string, n int, dev exec.Device) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, shardMetaFile)
	haveMeta := false
	raw, readErr := os.ReadFile(metaPath)
	switch {
	case readErr == nil:
		var m shardMeta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("core: corrupt %s: %w", shardMetaFile, err)
		}
		if m.Shards != n {
			return nil, fmt.Errorf("%w: directory %s holds %d shards, requested %d (reshard by re-ingesting)",
				ErrShardMismatch, dir, m.Shards, n)
		}
		haveMeta = true
	case errors.Is(readErr, fs.ErrNotExist):
		// Fresh directory: the meta file is written after every shard opens.
	default:
		// An unreadable meta file must not be mistaken for a fresh
		// directory: overwriting it would re-hash existing data under the
		// wrong modulus.
		return nil, fmt.Errorf("core: read %s: %w", shardMetaFile, readErr)
	}
	s := &Sharded{dir: dir, shards: make([]*DB, n), cols: make(map[string]*ShardedCollection)}
	for i := 0; i < n; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			s.closeOpened()
			return nil, err
		}
		db, err := Open(filepath.Join(sub, "deeplens.db"), dev)
		if err != nil {
			s.closeOpened()
			return nil, fmt.Errorf("core: open shard %d: %w", i, err)
		}
		s.shards[i] = db
	}
	// Persist the shard count only once every shard opened: a failed
	// first open must not strand a meta file that blocks a retry at a
	// different count.
	if !haveMeta {
		raw, _ := json.Marshal(shardMeta{Shards: n})
		if err := os.WriteFile(metaPath, append(raw, '\n'), 0o644); err != nil {
			s.closeOpened()
			return nil, err
		}
	}
	return s, nil
}

// WrapSharded presents already-open DB instances as one sharded database
// (tests and embedders that manage shard storage themselves). Closing
// the wrapper closes the shards.
func WrapSharded(shards ...*DB) *Sharded {
	return &Sharded{shards: shards, cols: make(map[string]*ShardedCollection)}
}

func (s *Sharded) closeOpened() {
	for _, db := range s.shards {
		if db != nil {
			db.Close()
		}
	}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's underlying DB (shard-local index builds and
// read-only introspection; writes must go through the Sharded layer).
func (s *Sharded) Shard(i int) *DB { return s.shards[i] }

// shardHash is a splitmix64 finalizer: sequential patch ids spread
// uniformly across shards, and placement is a pure function of the id.
func shardHash(id PatchID) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the home shard of a patch id — the deterministic
// partitioner every write and point lookup routes through.
func (s *Sharded) ShardFor(id PatchID) int {
	return int(shardHash(id) % uint64(len(s.shards)))
}

// NewPatchID allocates a database-wide unique patch id. Shard 0 is the
// designated allocator, so ids never collide across shards and a
// one-shard database allocates exactly the sequence an unsharded DB
// would.
func (s *Sharded) NewPatchID() PatchID { return s.shards[0].NewPatchID() }

// Close flushes and closes every shard, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, db := range s.shards {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush persists all dirty state on every shard.
func (s *Sharded) Flush() error {
	for i, db := range s.shards {
		if err := db.Flush(); err != nil {
			return fmt.Errorf("core: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// CreateCollection registers a new collection on every shard. On partial
// failure the already-created shard-local collections are dropped, so a
// collection either exists everywhere or nowhere.
func (s *Sharded) CreateCollection(name string, schema Schema) (*ShardedCollection, error) {
	cols := make([]*Collection, len(s.shards))
	for i, db := range s.shards {
		c, err := db.CreateCollection(name, schema)
		if err != nil {
			for j := 0; j < i; j++ {
				s.shards[j].DropCollection(name)
			}
			return nil, fmt.Errorf("core: create %q on shard %d: %w", name, i, err)
		}
		cols[i] = c
	}
	sc := &ShardedCollection{s: s, name: name, schema: schema, cols: cols}
	s.mu.Lock()
	s.cols[name] = sc
	s.mu.Unlock()
	return sc, nil
}

// Collection opens an existing collection's combined view by name.
func (s *Sharded) Collection(name string) (*ShardedCollection, error) {
	s.mu.RLock()
	sc, ok := s.cols[name]
	s.mu.RUnlock()
	if ok {
		return sc, nil
	}
	cols := make([]*Collection, len(s.shards))
	for i, db := range s.shards {
		c, err := db.Collection(name)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	sc = &ShardedCollection{s: s, name: name, schema: cols[0].Schema(), cols: cols}
	s.mu.Lock()
	if cached, ok := s.cols[name]; ok { // raced another opener
		sc = cached
	} else {
		s.cols[name] = sc
	}
	s.mu.Unlock()
	return sc, nil
}

// Collections lists collection names (the combined catalog; every shard
// holds the same set, shard 0 is authoritative).
func (s *Sharded) Collections() []string { return s.shards[0].Collections() }

// DropCollection removes the collection from every shard.
func (s *Sharded) DropCollection(name string) error {
	s.mu.Lock()
	delete(s.cols, name)
	s.mu.Unlock()
	var first error
	for i, db := range s.shards {
		if err := db.DropCollection(name); err != nil && first == nil {
			first = fmt.Errorf("core: drop %q on shard %d: %w", name, i, err)
		}
	}
	return first
}

// Materialize drains an iterator into a new sharded collection, routing
// every patch to its home shard (the sharded analog of DB.Materialize).
func (s *Sharded) Materialize(name string, schema Schema, it Iterator) (*ShardedCollection, error) {
	sc, err := s.CreateCollection(name, schema)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for _, p := range t {
			if err := sc.Append(p); err != nil {
				return nil, err
			}
		}
	}
	for _, c := range sc.cols {
		if err := c.saveDesc(); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// GetPatch resolves a patch id via its home shard's lineage table.
func (s *Sharded) GetPatch(id PatchID) (*Patch, error) {
	return s.shards[s.ShardFor(id)].GetPatch(id)
}

// Backtrace follows a patch's lineage chain across shards (parents were
// routed by their own ids, so each hop resolves on its home shard).
func (s *Sharded) Backtrace(p *Patch) ([]*Patch, error) {
	var chain []*Patch
	cur := p
	for cur.Ref.Parent != 0 {
		parent, err := s.GetPatch(cur.Ref.Parent)
		if err != nil {
			return chain, err
		}
		chain = append(chain, parent)
		cur = parent
	}
	return chain, nil
}

// ColumnExtendStats sums the shards' incremental column-extension
// counters (each shard extends its own partition's stores independently;
// see DB.ColumnExtendStats).
func (s *Sharded) ColumnExtendStats() (extends, reused, total int64) {
	for _, db := range s.shards {
		e, r, t := db.ColumnExtendStats()
		extends += e
		reused += r
		total += t
	}
	return extends, reused, total
}

// ShardInfo is one shard's storage snapshot (served by /stats).
type ShardInfo struct {
	Shard int `json:"shard"`
	// Rows is the total patch count across the shard's collections.
	Rows int `json:"rows"`
	// Versions is the shard's version-counter high-water mark: how many
	// writes this shard has absorbed since creation.
	Versions uint64 `json:"versions"`
}

// ShardInfos snapshots per-shard row counts and version counters.
func (s *Sharded) ShardInfos() []ShardInfo {
	infos := make([]ShardInfo, len(s.shards))
	names := s.Collections()
	for i, db := range s.shards {
		info := ShardInfo{Shard: i, Versions: db.nextVer.Load()}
		for _, name := range names {
			if c, err := db.Collection(name); err == nil {
				info.Rows += c.Len()
			}
		}
		infos[i] = info
	}
	return infos
}

// ShardedCollection is the combined view of one collection's N
// shard-local partitions.
type ShardedCollection struct {
	s      *Sharded
	name   string
	schema Schema
	cols   []*Collection
}

// Name returns the collection name.
func (c *ShardedCollection) Name() string { return c.name }

// Schema returns the collection's schema.
func (c *ShardedCollection) Schema() Schema { return c.schema }

// Shards returns the partition count.
func (c *ShardedCollection) Shards() int { return len(c.cols) }

// Shard returns partition i's shard-local collection.
func (c *ShardedCollection) Shard(i int) *Collection { return c.cols[i] }

// Len sums the partitions' patch counts.
func (c *ShardedCollection) Len() int {
	n := 0
	for _, col := range c.cols {
		n += col.Len()
	}
	return n
}

// Append ids the patch (shard 0 allocates) and routes it to its home
// shard. A single-shard append is exactly an unsharded Append.
func (c *ShardedCollection) Append(p *Patch) error {
	if p.ID == 0 {
		p.ID = c.s.NewPatchID()
	}
	return c.cols[c.s.ShardFor(p.ID)].Append(p)
}

// Get routes a point lookup to the patch's home shard.
func (c *ShardedCollection) Get(id PatchID) (*Patch, error) {
	return c.cols[c.s.ShardFor(id)].Get(id)
}

// Version folds the partitions' versions into one composite identity for
// plan fingerprinting: any single-shard write changes its shard's
// version and therefore the composite, so version-keyed caches
// invalidate exactly as in the unsharded case. With one shard the
// composite IS the shard version (fingerprints match an unsharded DB
// fed the same operations); with more it is an FNV-1a fold of the
// ordered shard versions.
func (c *ShardedCollection) Version() uint64 {
	if len(c.cols) == 1 {
		return c.cols[0].Version()
	}
	return compositeVersion(c.ShardVersions())
}

// ShardVersions returns each partition's current version, in shard order.
func (c *ShardedCollection) ShardVersions() []uint64 {
	vs := make([]uint64, len(c.cols))
	for i, col := range c.cols {
		vs[i] = col.Version()
	}
	return vs
}

// compositeVersion folds ordered shard versions into one uint64
// (FNV-1a over the 8-byte big-endian encodings).
func compositeVersion(vs []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vs {
		for shift := 56; shift >= 0; shift -= 8 {
			h ^= (v >> uint(shift)) & 0xff
			h *= prime64
		}
	}
	return h
}

// Snapshot atomically snapshots every partition and returns the per-shard
// patch slices together with the composite version they reflect. Each
// part carries the same stable-prefix guarantee as Collection.Snapshot;
// the composite is computed from the versions the per-shard snapshots
// actually returned, so it identifies exactly the visible contents.
func (c *ShardedCollection) Snapshot() ([][]*Patch, uint64, error) {
	parts := make([][]*Patch, len(c.cols))
	vs := make([]uint64, len(c.cols))
	for i, col := range c.cols {
		ps, v, err := col.Snapshot()
		if err != nil {
			return nil, 0, fmt.Errorf("core: snapshot shard %d of %q: %w", i, c.name, err)
		}
		parts[i] = ps
		vs[i] = v
	}
	if len(vs) == 1 {
		return parts, vs[0], nil
	}
	return parts, compositeVersion(vs), nil
}
