package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/fault"
)

// This file implements horizontal partitioning: a Sharded database fans
// the storage entry points (CreateCollection, Append, Materialize) out
// across N independent DB instances — one kv store and directory each —
// behind a combined catalog view. Patches route to shards by a
// deterministic hash of their PatchID, so placement is stable across
// restarts and reshard-free reopens; the serving layer scatters query
// fragments across the shards and merges at the gather stage.
//
// Each shard may additionally carry R replicas: independent DB instances
// fed the identical append sequence, so any in-sync replica serves the
// same bytes as the primary. Writes are primary-authoritative — the
// primary (replica 0) must accept the append or the whole write fails;
// a secondary that fails is demoted from the read set (out of sync)
// while the append still succeeds. Reads therefore never observe a
// missed write, and the serving layer is free to hedge a slow fragment
// to any in-sync replica.
//
// With one shard and one replica the layer is a pass-through: IDs,
// versions and per-collection contents are byte-identical to an
// unsharded DB fed the same operations (the N=1 equivalence the service
// tests pin down).

// shardMetaFile persists the shard topology at the root of a sharded
// directory so a reopen with a different -shards or -replicas value
// fails loudly instead of silently splitting collections across
// disjoint layouts.
const shardMetaFile = "SHARDS.json"

type shardMeta struct {
	Shards int `json:"shards"`
	// Replicas is omitted at R=1 so single-replica directories keep the
	// exact pre-replication meta bytes; absent means 1 on read.
	Replicas int `json:"replicas,omitempty"`
}

// ErrShardMismatch reports a sharded directory reopened with a different
// shard or replica count than it was created with.
var ErrShardMismatch = errors.New("core: shard count mismatch")

// Sharded is a horizontally partitioned database: N independent DB
// instances (shard subdirectories) behind one combined catalog, each
// optionally backed by R replicas. All writes must go through the
// Sharded layer (or a ShardedCollection), which allocates globally
// unique patch ids and routes each patch to every replica of its home
// shard.
type Sharded struct {
	dir    string
	shards []*DB   // primaries, shards[i] == reps[i][0]
	reps   [][]*DB // [shard][replica]
	nrep   int

	// insync[shard][replica]: replica serves reads. The primary
	// (replica 0) is always in sync; a secondary that misses an append
	// is demoted until a re-sync repairs it (ResyncReplica).
	insync  [][]atomic.Bool
	repErrs atomic.Int64 // secondary append failures observed

	// appendMu[shard] serializes routed appends per shard, so every
	// replica commits the identical patch sequence in the identical
	// order — the prefix property replica re-sync verifies against —
	// and gives the repair engine's final catch-up round a point of
	// mutual exclusion with concurrent writers.
	appendMu []sync.Mutex

	// resyncing[shard][replica]: a repair of this replica is in flight
	// (at most one at a time; /readyz reports these as not-ready).
	resyncing  [][]atomic.Bool
	resyncs    atomic.Int64 // completed repairs that re-promoted a replica
	resyncRows atomic.Int64 // patches streamed to replicas by repairs

	// inj is an atomic pointer because SetFaults may disarm rules at
	// runtime (chaos tests healing a fault) while the anti-entropy loop
	// and append path are concurrently reading it.
	inj atomic.Pointer[fault.Injector]

	mu   sync.RWMutex
	cols map[string]*ShardedCollection
}

// OpenSharded opens (or creates) a sharded database of n shards rooted
// at dir with one replica per shard — the pre-replication layout.
func OpenSharded(dir string, n int, dev exec.Device) (*Sharded, error) {
	return OpenShardedReplicas(dir, n, 1, dev)
}

// OpenShardedReplicas opens (or creates) a sharded database of n shards
// with r replicas each, rooted at dir. The primary of shard i is an
// independent DB at dir/shard-NNN/deeplens.db on the given device;
// replica j > 0 lives beside it at dir/shard-NNN-rJ/. n or r < 1 is
// treated as 1. Reopening an existing sharded directory with a
// different n or r fails with ErrShardMismatch: patches were hash-placed
// for the original count, and a different modulus would scatter every
// collection across the wrong shards.
func OpenShardedReplicas(dir string, n, r int, dev exec.Device) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, shardMetaFile)
	haveMeta := false
	raw, readErr := os.ReadFile(metaPath)
	switch {
	case readErr == nil:
		var m shardMeta
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("core: corrupt %s: %w", shardMetaFile, err)
		}
		if m.Replicas == 0 {
			m.Replicas = 1
		}
		if m.Shards != n || m.Replicas != r {
			return nil, fmt.Errorf("%w: directory %s holds %d shards x %d replicas, requested %dx%d (reshard by re-ingesting)",
				ErrShardMismatch, dir, m.Shards, m.Replicas, n, r)
		}
		haveMeta = true
	case errors.Is(readErr, fs.ErrNotExist):
		// Fresh directory: the meta file is written after every shard opens.
	default:
		// An unreadable meta file must not be mistaken for a fresh
		// directory: overwriting it would re-hash existing data under the
		// wrong modulus.
		return nil, fmt.Errorf("core: read %s: %w", shardMetaFile, readErr)
	}
	s := newSharded(dir, n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			sub := filepath.Join(dir, replicaDirName(i, j))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				s.closeOpened()
				return nil, err
			}
			db, err := Open(filepath.Join(sub, "deeplens.db"), dev)
			if err != nil {
				s.closeOpened()
				return nil, fmt.Errorf("core: open shard %d replica %d: %w", i, j, err)
			}
			s.reps[i][j] = db
		}
		s.shards[i] = s.reps[i][0]
	}
	// Persist the topology only once every shard opened: a failed first
	// open must not strand a meta file that blocks a retry at a
	// different count.
	if !haveMeta {
		m := shardMeta{Shards: n}
		if r > 1 {
			m.Replicas = r
		}
		raw, _ := json.Marshal(m)
		if err := os.WriteFile(metaPath, append(raw, '\n'), 0o644); err != nil {
			s.closeOpened()
			return nil, err
		}
	}
	return s, nil
}

// replicaDirName is the on-disk directory of (shard, replica): the
// primary keeps the historical shard-NNN name, replicas sit beside it.
func replicaDirName(shard, replica int) string {
	if replica == 0 {
		return fmt.Sprintf("shard-%03d", shard)
	}
	return fmt.Sprintf("shard-%03d-r%d", shard, replica)
}

func newSharded(dir string, n, r int) *Sharded {
	s := &Sharded{
		dir:       dir,
		shards:    make([]*DB, n),
		reps:      make([][]*DB, n),
		nrep:      r,
		insync:    make([][]atomic.Bool, n),
		appendMu:  make([]sync.Mutex, n),
		resyncing: make([][]atomic.Bool, n),
		cols:      make(map[string]*ShardedCollection),
	}
	for i := range s.reps {
		s.reps[i] = make([]*DB, r)
		s.insync[i] = make([]atomic.Bool, r)
		s.resyncing[i] = make([]atomic.Bool, r)
		for j := range s.insync[i] {
			s.insync[i][j].Store(true)
		}
	}
	return s
}

// WrapSharded presents already-open DB instances as one sharded database
// with a single replica per shard (tests and embedders that manage shard
// storage themselves). Closing the wrapper closes the shards.
func WrapSharded(shards ...*DB) *Sharded {
	s := newSharded("", len(shards), 1)
	for i, db := range shards {
		s.shards[i] = db
		s.reps[i][0] = db
	}
	return s
}

// SetFaults arms the append- and resync-path failpoints (nil disables).
// Safe to call while appends or repairs are in flight: in-progress
// operations finish under whichever injector they started with.
func (s *Sharded) SetFaults(inj *fault.Injector) { s.inj.Store(inj) }

// injector returns the currently armed injector (nil when disabled).
func (s *Sharded) injector() *fault.Injector { return s.inj.Load() }

// SetCostModel points every replica DB at one shared cost model, so
// observed filter latencies from any replica feed a single planner
// state (and the serving layer's admission gate prices from it too).
func (s *Sharded) SetCostModel(cm *CostModel) {
	for _, rs := range s.reps {
		for _, db := range rs {
			if db != nil {
				db.SetCostModel(cm)
			}
		}
	}
}

// SetSegmentCache points every replica DB at one shared column-segment
// cache, so a single byte budget governs the resident spilled-segment
// set across all shards and replicas (see DB.SetSegmentCache).
func (s *Sharded) SetSegmentCache(sc *SegmentCache) {
	for _, rs := range s.reps {
		for _, db := range rs {
			if db != nil {
				db.SetSegmentCache(sc)
			}
		}
	}
}

func (s *Sharded) closeOpened() {
	for _, rs := range s.reps {
		for _, db := range rs {
			if db != nil {
				db.Close()
			}
		}
	}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Replicas returns the per-shard replica count.
func (s *Sharded) Replicas() int { return s.nrep }

// Shard returns shard i's primary DB (shard-local index builds and
// read-only introspection; writes must go through the Sharded layer).
func (s *Sharded) Shard(i int) *DB { return s.shards[i] }

// ReplicaDB returns replica j of shard i (j=0 is the primary).
func (s *Sharded) ReplicaDB(i, j int) *DB { return s.reps[i][j] }

// InSyncReplicas returns the replica indices of shard i currently
// serving reads, in replica order. The primary (0) is always present.
func (s *Sharded) InSyncReplicas(i int) []int {
	rs := make([]int, 0, s.nrep)
	for j := 0; j < s.nrep; j++ {
		if s.insync[i][j].Load() {
			rs = append(rs, j)
		}
	}
	return rs
}

// ReplicaAppendErrors returns how many secondary-replica append failures
// have been absorbed (each demotes the failing replica).
func (s *Sharded) ReplicaAppendErrors() int64 { return s.repErrs.Load() }

// Demote removes a secondary replica from the read set (ops/test hook;
// the append path demotes automatically on a failed secondary write).
// It reports whether the replica transitioned from in-sync. The primary
// (replica 0) cannot be demoted.
func (s *Sharded) Demote(shard, replica int) bool {
	if shard < 0 || shard >= len(s.shards) || replica <= 0 || replica >= s.nrep {
		return false
	}
	return s.insync[shard][replica].CompareAndSwap(true, false)
}

// ReplicaLag identifies one replica needing (or undergoing) repair.
type ReplicaLag struct {
	Shard   int `json:"shard"`
	Replica int `json:"replica"`
	// Resyncing reports a repair currently in flight for this replica.
	Resyncing bool `json:"resyncing,omitempty"`
}

// OutOfSyncReplicas lists every replica currently demoted from the read
// set, in (shard, replica) order — the anti-entropy loop's work list and
// the /readyz detail. Empty means every replica serves reads.
func (s *Sharded) OutOfSyncReplicas() []ReplicaLag {
	var lags []ReplicaLag
	for i := range s.insync {
		for j := 1; j < s.nrep; j++ {
			if !s.insync[i][j].Load() {
				lags = append(lags, ReplicaLag{
					Shard:     i,
					Replica:   j,
					Resyncing: s.resyncing[i][j].Load(),
				})
			}
		}
	}
	return lags
}

// ResyncStats returns how many repairs have re-promoted a replica and
// how many patches those repairs streamed in total.
func (s *Sharded) ResyncStats() (resyncs, rows int64) {
	return s.resyncs.Load(), s.resyncRows.Load()
}

// shardHash is a splitmix64 finalizer: sequential patch ids spread
// uniformly across shards, and placement is a pure function of the id.
func shardHash(id PatchID) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardFor returns the home shard of a patch id — the deterministic
// partitioner every write and point lookup routes through.
func (s *Sharded) ShardFor(id PatchID) int {
	return int(shardHash(id) % uint64(len(s.shards)))
}

// NewPatchID allocates a database-wide unique patch id. Shard 0's
// primary is the designated allocator, so ids never collide across
// shards and a one-shard database allocates exactly the sequence an
// unsharded DB would.
func (s *Sharded) NewPatchID() PatchID { return s.shards[0].NewPatchID() }

// Close flushes and closes every replica of every shard, returning the
// first error.
func (s *Sharded) Close() error {
	var first error
	for _, rs := range s.reps {
		for _, db := range rs {
			if err := db.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Flush persists all dirty state on every replica of every shard.
func (s *Sharded) Flush() error {
	for i, rs := range s.reps {
		for j, db := range rs {
			if err := db.Flush(); err != nil {
				return fmt.Errorf("core: flush shard %d replica %d: %w", i, j, err)
			}
		}
	}
	return nil
}

// CreateCollection registers a new collection on every replica of every
// shard. On partial failure the already-created shard-local collections
// are dropped, so a collection either exists everywhere or nowhere.
func (s *Sharded) CreateCollection(name string, schema Schema) (*ShardedCollection, error) {
	cols := make([][]*Collection, len(s.reps))
	created := 0
	for i, rs := range s.reps {
		cols[i] = make([]*Collection, len(rs))
		for j, db := range rs {
			c, err := db.CreateCollection(name, schema)
			if err != nil {
				for _, prs := range s.reps[:i+1] {
					for _, pdb := range prs {
						if created == 0 {
							break
						}
						pdb.DropCollection(name)
						created--
					}
				}
				return nil, fmt.Errorf("core: create %q on shard %d replica %d: %w", name, i, j, err)
			}
			cols[i][j] = c
			created++
		}
	}
	sc := &ShardedCollection{s: s, name: name, schema: schema, cols: cols}
	s.mu.Lock()
	s.cols[name] = sc
	s.mu.Unlock()
	return sc, nil
}

// Collection opens an existing collection's combined view by name.
func (s *Sharded) Collection(name string) (*ShardedCollection, error) {
	s.mu.RLock()
	sc, ok := s.cols[name]
	s.mu.RUnlock()
	if ok {
		return sc, nil
	}
	cols := make([][]*Collection, len(s.reps))
	for i, rs := range s.reps {
		cols[i] = make([]*Collection, len(rs))
		for j, db := range rs {
			c, err := db.Collection(name)
			if err != nil {
				return nil, err
			}
			cols[i][j] = c
		}
	}
	sc = &ShardedCollection{s: s, name: name, schema: cols[0][0].Schema(), cols: cols}
	s.mu.Lock()
	if cached, ok := s.cols[name]; ok { // raced another opener
		sc = cached
	} else {
		s.cols[name] = sc
	}
	s.mu.Unlock()
	return sc, nil
}

// Collections lists collection names (the combined catalog; every shard
// holds the same set, shard 0's primary is authoritative).
func (s *Sharded) Collections() []string { return s.shards[0].Collections() }

// DropCollection removes the collection from every replica of every
// shard.
func (s *Sharded) DropCollection(name string) error {
	s.mu.Lock()
	delete(s.cols, name)
	s.mu.Unlock()
	var first error
	for i, rs := range s.reps {
		for j, db := range rs {
			if err := db.DropCollection(name); err != nil && first == nil {
				first = fmt.Errorf("core: drop %q on shard %d replica %d: %w", name, i, j, err)
			}
		}
	}
	return first
}

// Materialize drains an iterator into a new sharded collection, routing
// every patch to its home shard (the sharded analog of DB.Materialize).
func (s *Sharded) Materialize(name string, schema Schema, it Iterator) (*ShardedCollection, error) {
	sc, err := s.CreateCollection(name, schema)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for _, p := range t {
			if err := sc.Append(p); err != nil {
				return nil, err
			}
		}
	}
	for _, rs := range sc.cols {
		for _, c := range rs {
			if err := c.saveDesc(); err != nil {
				return nil, err
			}
		}
	}
	return sc, nil
}

// GetPatch resolves a patch id via its home shard's lineage table.
func (s *Sharded) GetPatch(id PatchID) (*Patch, error) {
	return s.shards[s.ShardFor(id)].GetPatch(id)
}

// Backtrace follows a patch's lineage chain across shards (parents were
// routed by their own ids, so each hop resolves on its home shard).
func (s *Sharded) Backtrace(p *Patch) ([]*Patch, error) {
	var chain []*Patch
	cur := p
	for cur.Ref.Parent != 0 {
		parent, err := s.GetPatch(cur.Ref.Parent)
		if err != nil {
			return chain, err
		}
		chain = append(chain, parent)
		cur = parent
	}
	return chain, nil
}

// ColumnExtendStats sums the primaries' incremental column-extension
// counters (each shard extends its own partition's stores independently;
// see DB.ColumnExtendStats).
func (s *Sharded) ColumnExtendStats() (extends, reused, total int64) {
	for _, db := range s.shards {
		e, r, t := db.ColumnExtendStats()
		extends += e
		reused += r
		total += t
	}
	return extends, reused, total
}

// IndexExtendStats sums the primaries' vector-index maintenance
// counters (each shard extends its own partition's indexes
// independently; see DB.IndexExtendStats).
func (s *Sharded) IndexExtendStats() (extends, rebuilds int64) {
	for _, db := range s.shards {
		e, r := db.IndexExtendStats()
		extends += e
		rebuilds += r
	}
	return extends, rebuilds
}

// ShardInfo is one shard's storage snapshot (served by /stats).
type ShardInfo struct {
	Shard int `json:"shard"`
	// Rows is the total patch count across the shard's collections.
	Rows int `json:"rows"`
	// Versions is the shard's version-counter high-water mark: how many
	// writes this shard has absorbed since creation.
	Versions uint64 `json:"versions"`
	// Replicas is the shard's configured replica count.
	Replicas int `json:"replicas"`
	// OutOfSync lists replicas demoted from the read set after a missed
	// append (empty when all replicas serve reads).
	OutOfSync []int `json:"out_of_sync,omitempty"`
	// Resyncing lists replicas with a repair currently in flight (always
	// a subset of OutOfSync: promotion happens only after repair).
	Resyncing []int `json:"resyncing,omitempty"`
}

// ShardInfos snapshots per-shard row counts, version counters and
// replica health (rows and versions come from the primary).
func (s *Sharded) ShardInfos() []ShardInfo {
	infos := make([]ShardInfo, len(s.shards))
	names := s.Collections()
	for i, db := range s.shards {
		info := ShardInfo{Shard: i, Versions: db.nextVer.Load(), Replicas: s.nrep}
		for _, name := range names {
			if c, err := db.Collection(name); err == nil {
				info.Rows += c.Len()
			}
		}
		for j := 0; j < s.nrep; j++ {
			if !s.insync[i][j].Load() {
				info.OutOfSync = append(info.OutOfSync, j)
			}
			if s.resyncing[i][j].Load() {
				info.Resyncing = append(info.Resyncing, j)
			}
		}
		infos[i] = info
	}
	return infos
}

// ShardedCollection is the combined view of one collection's N
// shard-local partitions (each held by every replica of its shard).
type ShardedCollection struct {
	s      *Sharded
	name   string
	schema Schema
	cols   [][]*Collection // [shard][replica]
}

// Name returns the collection name.
func (c *ShardedCollection) Name() string { return c.name }

// Schema returns the collection's schema.
func (c *ShardedCollection) Schema() Schema { return c.schema }

// Shards returns the partition count.
func (c *ShardedCollection) Shards() int { return len(c.cols) }

// Shard returns partition i's primary shard-local collection.
func (c *ShardedCollection) Shard(i int) *Collection { return c.cols[i][0] }

// Replica returns replica j of partition i (j=0 is the primary). The
// caller is responsible for consulting Sharded.InSyncReplicas before
// serving reads from a secondary.
func (c *ShardedCollection) Replica(i, j int) *Collection { return c.cols[i][j] }

// Len sums the partitions' patch counts (primaries).
func (c *ShardedCollection) Len() int {
	n := 0
	for _, rs := range c.cols {
		n += rs[0].Len()
	}
	return n
}

// Append ids the patch (shard 0 allocates) and routes it to every
// in-sync replica of its home shard, primary first, serialized under
// the shard's append lock. The write is primary-authoritative: a
// primary failure fails the append before any secondary is touched,
// and a secondary failure demotes that replica from the read set while
// the append succeeds — so an in-sync replica can never be missing a
// write the primary accepted. Demoted replicas are skipped entirely:
// a demoted replica freezes at an exact prefix of the primary's commit
// sequence (no holes), which is what lets ResyncReplica stream just
// the missing suffix and verify it byte-for-byte. A single-shard,
// single-replica append is exactly an unsharded Append.
func (c *ShardedCollection) Append(p *Patch) error {
	if p.ID == 0 {
		p.ID = c.s.NewPatchID()
	}
	home := c.s.ShardFor(p.ID)
	inj := c.s.injector()
	c.s.appendMu[home].Lock()
	defer c.s.appendMu[home].Unlock()
	for j, col := range c.cols[home] {
		if j > 0 && !c.s.insync[home][j].Load() {
			continue
		}
		err := inj.Fail(fault.AppendError, home, j)
		if err == nil {
			err = col.Append(p)
		}
		if err == nil {
			continue
		}
		if j == 0 {
			return err
		}
		if c.s.insync[home][j].CompareAndSwap(true, false) {
			c.s.repErrs.Add(1)
		}
	}
	return nil
}

// Get routes a point lookup to the patch's home shard (primary).
func (c *ShardedCollection) Get(id PatchID) (*Patch, error) {
	return c.cols[c.s.ShardFor(id)][0].Get(id)
}

// Version folds the partitions' versions into one composite identity for
// plan fingerprinting: any single-shard write changes its shard's
// version and therefore the composite, so version-keyed caches
// invalidate exactly as in the unsharded case. With one shard the
// composite IS the shard version (fingerprints match an unsharded DB
// fed the same operations); with more it is an FNV-1a fold of the
// ordered shard versions. Versions always come from primaries —
// replicas fed the same appends advance in lockstep, and a demoted
// replica is no longer read.
func (c *ShardedCollection) Version() uint64 {
	if len(c.cols) == 1 {
		return c.cols[0][0].Version()
	}
	return compositeVersion(c.ShardVersions())
}

// ShardVersions returns each partition's current primary version, in
// shard order.
func (c *ShardedCollection) ShardVersions() []uint64 {
	vs := make([]uint64, len(c.cols))
	for i, rs := range c.cols {
		vs[i] = rs[0].Version()
	}
	return vs
}

// compositeVersion folds ordered shard versions into one uint64
// (FNV-1a over the 8-byte big-endian encodings).
func compositeVersion(vs []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vs {
		for shift := 56; shift >= 0; shift -= 8 {
			h ^= (v >> uint(shift)) & 0xff
			h *= prime64
		}
	}
	return h
}

// Snapshot atomically snapshots every partition's primary and returns
// the per-shard patch slices together with the composite version they
// reflect. Each part carries the same stable-prefix guarantee as
// Collection.Snapshot; the composite is computed from the versions the
// per-shard snapshots actually returned, so it identifies exactly the
// visible contents.
func (c *ShardedCollection) Snapshot() ([][]*Patch, uint64, error) {
	parts := make([][]*Patch, len(c.cols))
	vs := make([]uint64, len(c.cols))
	for i, rs := range c.cols {
		ps, v, err := rs[0].Snapshot()
		if err != nil {
			return nil, 0, fmt.Errorf("core: snapshot shard %d of %q: %w", i, c.name, err)
		}
		parts[i] = ps
		vs[i] = v
	}
	if len(vs) == 1 {
		return parts, vs[0], nil
	}
	return parts, compositeVersion(vs), nil
}
