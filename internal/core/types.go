package core

import (
	"fmt"

	"repro/internal/tensor"
)

// DataSpec types a patch's dense payload. The paper's §4.2 notes that
// almost all deployed networks require fixed input resolutions, so the
// type system carries resolution and dimensionality and validates
// consumers against them.
type DataSpec struct {
	DType tensor.DType
	// For pixel data: fixed height/width (0 = variable). For feature
	// data: Dim is the vector length (0 = variable).
	H, W, Dim int
}

// Pixels describes H x W x 3 uint8 pixel payloads (0 = variable extent).
func Pixels(h, w int) DataSpec { return DataSpec{DType: tensor.U8, H: h, W: w} }

// Features describes dim-length float32 payloads.
func Features(dim int) DataSpec { return DataSpec{DType: tensor.F32, Dim: dim} }

// Field declares one metadata key: its kind, an optional closed label
// domain (for strings produced by a closed-world model), and the vector
// dimension for KindVec.
type Field struct {
	Name   string
	Kind   ValueKind
	Domain []string // optional: the closed world of values this field takes
	VecDim int      // for KindVec: expected dimension (0 = variable)
}

// Schema types a patch collection.
type Schema struct {
	Data   DataSpec
	Fields []Field
}

// FieldNamed returns the declared field, or nil.
func (s Schema) FieldNamed(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// WithField returns a copy of s with f added (replacing a same-named
// field), the schema algebra transformers use to declare their outputs.
func (s Schema) WithField(f Field) Schema {
	out := Schema{Data: s.Data, Fields: make([]Field, 0, len(s.Fields)+1)}
	replaced := false
	for _, g := range s.Fields {
		if g.Name == f.Name {
			out.Fields = append(out.Fields, f)
			replaced = true
		} else {
			out.Fields = append(out.Fields, g)
		}
	}
	if !replaced {
		out.Fields = append(out.Fields, f)
	}
	return out
}

// ValidatePatch checks p against the schema: payload dtype/shape and every
// declared metadata field's kind, domain and dimension. Undeclared
// metadata keys are permitted (schemas are open, like the paper's
// dictionaries); declared keys must be present and well-typed.
func (s Schema) ValidatePatch(p *Patch) error {
	if p.Data != nil {
		if p.Data.DType != s.Data.DType {
			return fmt.Errorf("core: payload dtype %v, schema wants %v", p.Data.DType, s.Data.DType)
		}
		switch s.Data.DType {
		case tensor.U8:
			if len(p.Data.Shape) != 3 || p.Data.Shape[2] != 3 {
				return fmt.Errorf("core: pixel payload must be HxWx3, got %v", p.Data.Shape)
			}
			if s.Data.H != 0 && p.Data.Shape[0] != s.Data.H {
				return fmt.Errorf("core: payload height %d, schema fixes %d", p.Data.Shape[0], s.Data.H)
			}
			if s.Data.W != 0 && p.Data.Shape[1] != s.Data.W {
				return fmt.Errorf("core: payload width %d, schema fixes %d", p.Data.Shape[1], s.Data.W)
			}
		case tensor.F32:
			if s.Data.Dim != 0 && p.Data.Numel() != s.Data.Dim {
				return fmt.Errorf("core: feature payload dim %d, schema fixes %d", p.Data.Numel(), s.Data.Dim)
			}
		}
	}
	for _, f := range s.Fields {
		v, ok := p.Meta[f.Name]
		if !ok {
			return fmt.Errorf("core: patch missing declared field %q", f.Name)
		}
		if v.Kind != f.Kind {
			return fmt.Errorf("core: field %q has kind %v, schema declares %v", f.Name, v.Kind, f.Kind)
		}
		if f.Kind == KindStr && len(f.Domain) > 0 && !inDomain(v.S, f.Domain) {
			return fmt.Errorf("core: field %q value %q outside closed domain %v", f.Name, v.S, f.Domain)
		}
		if f.Kind == KindVec && f.VecDim != 0 && len(v.V) != f.VecDim {
			return fmt.Errorf("core: field %q vector dim %d, schema declares %d", f.Name, len(v.V), f.VecDim)
		}
	}
	return nil
}

func inDomain(s string, domain []string) bool {
	for _, d := range domain {
		if d == s {
			return true
		}
	}
	return false
}

// ValidateFilterValue checks a filter predicate's constant against the
// schema — the paper's example of pipeline validation: a filter on a label
// that a detector can never emit is a plan-time error, not a silently
// empty result.
func (s Schema) ValidateFilterValue(field string, v Value) error {
	f := s.FieldNamed(field)
	if f == nil {
		return fmt.Errorf("core: filter on undeclared field %q", field)
	}
	if f.Kind != v.Kind {
		return fmt.Errorf("core: filter constant kind %v, field %q has kind %v", v.Kind, field, f.Kind)
	}
	if f.Kind == KindStr && len(f.Domain) > 0 && !inDomain(v.S, f.Domain) {
		return fmt.Errorf("core: filter value %q can never be produced: field %q domain is %v", v.S, field, f.Domain)
	}
	return nil
}

// ValidateFilterRange checks a range predicate's field against the
// schema: it must be declared and numeric. A range over a string or
// vector field can never match (AsFloat widens non-numerics to NaN,
// which fails both bounds), so it is a plan-time error, not a silently
// empty result — the same validation posture as ValidateFilterValue.
func (s Schema) ValidateFilterRange(field string) error {
	f := s.FieldNamed(field)
	if f == nil {
		return fmt.Errorf("core: filter on undeclared field %q", field)
	}
	if f.Kind != KindInt && f.Kind != KindFloat {
		return fmt.Errorf("core: range filter on field %q of kind %v (numeric field required)", field, f.Kind)
	}
	return nil
}
