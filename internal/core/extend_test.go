package core

import (
	"reflect"
	"testing"
)

// Incremental column extension tests: Extend must be indistinguishable
// from a fresh projection over the longer snapshot — arrays, dictionary
// codes, null bitmaps and zone maps byte for byte — while reusing every
// sealed block of the old store.

// extendPatches builds a deterministic snapshot with an interesting
// suffix: rows >= split introduce a dictionary string the prefix never
// saw, populate the prefix-all-null "late" field, and flip the "flip"
// field from int to string (breaking columnizability exactly as a fresh
// build would discover).
func extendPatches(n, split int) []*Patch {
	ps := make([]*Patch, n)
	for i := 0; i < n; i++ {
		p := columnPatch(i)
		p.ID = PatchID(i + 1)
		if i >= split {
			if i%7 == 0 {
				p.Meta["label"] = StrV("zeppelin") // new dictionary code
			}
			p.Meta["late"] = IntV(int64(i))
			p.Meta["flip"] = StrV("now-a-string")
		} else {
			p.Meta["flip"] = IntV(int64(i))
		}
		ps[i] = p
	}
	return ps
}

// columnsEqual compares one field's projection between two stores,
// including the ok verdict: column identity (kind, length, null count,
// dictionary contents and code assignment) and every segment's summary
// and row data byte for byte. Segments carry atomic data pointers (and
// may be shared between the stores), so the comparison is semantic
// rather than reflect.DeepEqual over the whole Column.
func columnsEqual(t *testing.T, field string, a, b *ColumnStore) {
	t.Helper()
	ca, oka := a.Column(field)
	cb, okb := b.Column(field)
	if oka != okb {
		t.Fatalf("field %s: columnizable %v vs %v", field, oka, okb)
	}
	if !oka {
		return
	}
	if ca.kind != cb.kind || ca.n != cb.n || ca.nnull != cb.nnull {
		t.Fatalf("field %s: identity diverges: kind %d/%d n %d/%d nnull %d/%d",
			field, ca.kind, cb.kind, ca.n, cb.n, ca.nnull, cb.nnull)
	}
	if !reflect.DeepEqual(ca.dict, cb.dict) || !reflect.DeepEqual(ca.dictIdx, cb.dictIdx) {
		t.Fatalf("field %s: dictionary diverges:\n  a: %v\n  b: %v", field, ca.dict, cb.dict)
	}
	if len(ca.segs) != len(cb.segs) {
		t.Fatalf("field %s: segment count %d vs %d", field, len(ca.segs), len(cb.segs))
	}
	for si := range ca.segs {
		sa, sb := ca.segs[si], cb.segs[si]
		if sa.zone != sb.zone || sa.nnull != sb.nnull || sa.sealed != sb.sealed {
			t.Fatalf("field %s: segment %d summary diverges:\n  a: %+v nnull=%d sealed=%v\n  b: %+v nnull=%d sealed=%v",
				field, si, sa.zone, sa.nnull, sa.sealed, sb.zone, sb.nnull, sb.sealed)
		}
		da, db := ca.segRows(sa, nil), cb.segRows(sb, nil)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("field %s: segment %d data diverges:\n  a: %+v\n  b: %+v", field, si, da, db)
		}
	}
}

// TestExtendByteIdenticalToFreshBuild pins the golden contract at the
// store level across block-boundary alignments: mid-block and
// block-aligned old tails, dictionary growth, nullable fields, a field
// that becomes columnizable only through the suffix, and one that stops
// being columnizable because of it.
func TestExtendByteIdenticalToFreshBuild(t *testing.T) {
	fields := []string{"label", "score", "rank", "sparse", "clustered", "late", "flip", "mixed"}
	for _, tc := range []struct{ oldN, n int }{
		{2*ColumnBlockSize + ColumnBlockSize/2, 4 * ColumnBlockSize},       // mid-block tail
		{2 * ColumnBlockSize, 3*ColumnBlockSize + 7},                       // block-aligned old tail
		{ColumnBlockSize / 2, ColumnBlockSize/2 + 3},                       // single partial block
		{0, ColumnBlockSize},                                               // empty prefix
		{3 * ColumnBlockSize, 3 * ColumnBlockSize},                         // no new rows (version-only)
		{ColumnBlockSize + 1, ColumnBlockSize + 1 + 2*ColumnBlockSize + 5}, // multi-block append
	} {
		ps := extendPatches(tc.n, tc.oldN)
		old := NewColumnStore(ps[:tc.oldN], 1)
		for _, f := range fields {
			old.Column(f) // project (or record nil) on the old store
		}
		ext, st := old.Extend(ps, 2)
		fresh := NewColumnStore(ps, 2)
		for _, f := range fields {
			columnsEqual(t, f, ext, fresh)
		}
		if ext.Version() != 2 || ext.Len() != tc.n {
			t.Fatalf("extended store identity: version %d len %d", ext.Version(), ext.Len())
		}
		// Sealed-block accounting: every carried column reuses exactly the
		// full blocks of the old snapshot.
		sealed := tc.oldN / ColumnBlockSize
		oldBlocks := (tc.oldN + ColumnBlockSize - 1) / ColumnBlockSize
		if tc.oldN > 0 {
			// label/score/rank/sparse/clustered project; flip carried but
			// broken by the suffix when rows straddle the split; late/mixed
			// are nil on the old store.
			if st.Columns < 5 {
				t.Fatalf("oldN=%d: carried %d columns, want >= 5", tc.oldN, st.Columns)
			}
			if st.ReusedBlocks != st.Columns*sealed || st.TotalBlocks != st.Columns*oldBlocks {
				t.Fatalf("oldN=%d: reuse %d/%d blocks over %d columns, want %d/%d",
					tc.oldN, st.ReusedBlocks, st.TotalBlocks, st.Columns, st.Columns*sealed, st.Columns*oldBlocks)
			}
		}
		// Query-level agreement over the extended store.
		for _, v := range []Value{StrV("car"), StrV("zeppelin"), StrV("tricycle")} {
			se, oke := ext.FilterEq("label", v)
			sf, okf := fresh.FilterEq("label", v)
			if oke != okf || !reflect.DeepEqual(se, sf) {
				t.Fatalf("oldN=%d FilterEq(label, %v) diverges", tc.oldN, v)
			}
		}
		re, _ := ext.FilterRange("score", 2.5, 7.5)
		rf, _ := fresh.FilterRange("score", 2.5, 7.5)
		if !reflect.DeepEqual(re, rf) {
			t.Fatalf("oldN=%d FilterRange diverges", tc.oldN)
		}
		te, _ := ext.TopK(nil, "score", true, 25)
		tf, _ := fresh.TopK(nil, "score", true, 25)
		if !reflect.DeepEqual(te, tf) {
			t.Fatalf("oldN=%d TopK diverges", tc.oldN)
		}
		ge, _ := ext.GroupCount("label")
		gf, _ := fresh.GroupCount("label")
		if !reflect.DeepEqual(ge, gf) {
			t.Fatalf("oldN=%d GroupCount diverges", tc.oldN)
		}
	}
}

// TestExtendDoesNotMutateOldStore: readers holding the stale store must
// see their snapshot's results forever, byte for byte.
func TestExtendDoesNotMutateOldStore(t *testing.T) {
	const oldN = ColumnBlockSize + 100
	ps := extendPatches(oldN+2*ColumnBlockSize, oldN)
	old := NewColumnStore(ps[:oldN], 1)
	before, _ := old.FilterEq("label", StrV("car"))
	beforeDict := append([]int32(nil), before...)
	if _, st := old.Extend(ps, 2); st.Columns == 0 {
		t.Fatal("no columns carried")
	}
	after, _ := old.FilterEq("label", StrV("car"))
	if !reflect.DeepEqual(beforeDict, after) {
		t.Fatal("Extend mutated the old store's selection results")
	}
	if _, ok := old.FilterEq("label", StrV("zeppelin")); !ok {
		t.Fatal("old store lost its label column")
	} else if sel, _ := old.FilterEq("label", StrV("zeppelin")); len(sel) != 0 {
		t.Fatal("old store's dictionary leaked a suffix-only code")
	}
	if old.Len() != oldN {
		t.Fatalf("old store length changed: %d", old.Len())
	}
}

// TestCollectionColumnsExtends: the catalog-level upgrade path — a query
// after appends extends the cached store in place (sealed blocks reused,
// counters recorded) instead of rebuilding, and a cache invalidation
// falls back to a full build.
func TestCollectionColumnsExtends(t *testing.T) {
	const base = 3000 // 2 sealed blocks + 952-row tail
	db, col := columnCollection(t, base)
	defer db.Close()

	cs0, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs0.Column("label"); !ok {
		t.Fatal("label did not project")
	}
	if _, ok := cs0.Column("rank"); !ok {
		t.Fatal("rank did not project")
	}

	for i := base; i < base+ColumnBlockSize; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs1, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if cs1 == cs0 || cs1.Len() != base+ColumnBlockSize {
		t.Fatalf("stale store served after append (len %d)", cs1.Len())
	}
	extends, reused, total := db.ColumnExtendStats()
	if extends != 1 {
		t.Fatalf("extends = %d, want 1", extends)
	}
	// Two carried columns, each 2 sealed of 3 old blocks.
	if reused != 4 || total != 6 {
		t.Fatalf("block reuse %d/%d, want 4/6", reused, total)
	}
	// Byte-identical to a fresh build over the same snapshot.
	fresh := NewColumnStore(cs1.Patches(), cs1.Version())
	for _, f := range []string{"label", "rank", "score"} {
		columnsEqual(t, f, cs1, fresh)
	}
	// Idempotent: a second Columns call at the same version returns the
	// cached store without another extension.
	cs2, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if cs2 != cs1 {
		t.Fatal("same-version Columns did not serve the cached store")
	}
	if e2, _, _ := db.ColumnExtendStats(); e2 != 1 {
		t.Fatalf("same-version Columns re-extended: %d", e2)
	}

	// After InvalidateColumns the prefix check cannot apply (no store):
	// full rebuild, extend counters unchanged.
	col.InvalidateColumns()
	if err := col.Append(columnPatch(base + ColumnBlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Columns(); err != nil {
		t.Fatal(err)
	}
	if e3, _, _ := db.ColumnExtendStats(); e3 != 1 {
		t.Fatalf("rebuild after InvalidateColumns counted as extend: %d", e3)
	}
}
