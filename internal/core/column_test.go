package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// columnTestSchema declares scalar fields of every columnar kind. The
// "extra" fields below stay undeclared so rows can omit them (nulls):
// declared fields must be present on every patch by schema validation.
func columnTestSchema() Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "label", Kind: KindStr},
			{Name: "score", Kind: KindFloat},
			{Name: "rank", Kind: KindInt},
		},
	}
}

// columnPatch generates deterministic row i. Every third row carries the
// undeclared "sparse" int field (null elsewhere); "mixed" alternates
// kinds (never columnizable); "clustered" is block-clustered so zone
// maps genuinely prune.
func columnPatch(i int) *Patch {
	p := &Patch{
		Ref: Ref{Source: "col", Frame: uint64(i)},
		Meta: Metadata{
			"label": StrV([]string{"car", "bus", "bike", "truck", "van"}[i%5]),
			"score": FloatV(float64(i%97) / 10),
			"rank":  IntV(int64(i % 13)),
		},
	}
	if i%3 == 0 {
		p.Meta["sparse"] = IntV(int64(i % 7))
	}
	if i%2 == 0 {
		p.Meta["mixed"] = IntV(int64(i))
	} else {
		p.Meta["mixed"] = StrV("odd")
	}
	p.Meta["clustered"] = IntV(int64(i / ColumnBlockSize)) // constant per block
	return p
}

func columnCollection(t testing.TB, rows int) (*DB, *Collection) {
	t.Helper()
	db := openDB(t)
	col, err := db.CreateCollection("col.dets", columnTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db, col
}

func patchIDs(ps []*Patch) []PatchID {
	ids := make([]PatchID, len(ps))
	for i, p := range ps {
		ids[i] = p.ID
	}
	return ids
}

func idsEqual(a, b []PatchID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColumnarEqMatrix is the golden equivalence matrix: for every
// columnar kind (str/int/float) and the sparse (nullable) field, the
// columnar filter must return exactly the row scan's patches in exactly
// its order — and where an index applies, the same set again.
func TestColumnarEqMatrix(t *testing.T) {
	const rows = 3 * ColumnBlockSize / 2 // spans a block boundary
	db, col := columnCollection(t, rows)

	cases := []struct {
		field string
		vals  []Value
	}{
		{"label", []Value{StrV("car"), StrV("van"), StrV("tricycle")}}, // last: not in dictionary
		{"rank", []Value{IntV(0), IntV(12), IntV(99)}},                 // last: pruned by every zone map
		{"score", []Value{FloatV(0), FloatV(9.6), FloatV(123.4)}},
		{"sparse", []Value{IntV(0), IntV(6), IntV(42)}},   // nullable field
		{"clustered", []Value{IntV(0), IntV(1), IntV(5)}}, // block-clustered
		{"mixed", []Value{IntV(2), StrV("odd")}},          // not columnizable: falls back
	}
	for _, tc := range cases {
		for _, v := range tc.vals {
			rowPath, err := db.ExecuteFilter(col, tc.field, v, FilterScan)
			if err != nil {
				t.Fatalf("%s row scan: %v", tc.field, err)
			}
			colPath, err := db.ExecuteFilter(col, tc.field, v, FilterColumnScan)
			if err != nil {
				t.Fatalf("%s column scan: %v", tc.field, err)
			}
			if !idsEqual(patchIDs(rowPath), patchIDs(colPath)) {
				t.Fatalf("field %s value %+v: columnar %d rows != row scan %d rows (or order differs)",
					tc.field, v, len(colPath), len(rowPath))
			}
		}
	}

	// Index agreement on the str field (order differs between access
	// paths only if the index is broken: both emit in ascending ID
	// order for a single-collection ingest).
	if _, err := db.BuildIndex(col, "label", IdxHash); err != nil {
		t.Fatal(err)
	}
	idxPath, err := db.ExecuteFilter(col, "label", StrV("bus"), FilterHashIndex)
	if err != nil {
		t.Fatal(err)
	}
	colPath, _ := db.ExecuteFilter(col, "label", StrV("bus"), FilterColumnScan)
	if !idsEqual(patchIDs(idxPath), patchIDs(colPath)) {
		t.Fatalf("hash index %d rows != columnar %d rows", len(idxPath), len(colPath))
	}
}

// TestColumnarRangeMatrix pins FilterRange against the row predicate.
func TestColumnarRangeMatrix(t *testing.T) {
	const rows = ColumnBlockSize + 37
	_, col := columnCollection(t, rows)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, _ := col.Snapshot()
	for _, tc := range []struct {
		field  string
		lo, hi float64
	}{
		{"score", 1.5, 4.25},
		{"score", -10, 0.05},
		{"score", 50, 40}, // empty interval
		{"rank", 3, 7},
		{"rank", 100, 200}, // pruned everywhere
		{"sparse", 0, 7},   // nullable
		{"label", 0, 10},   // string column: never matches, like AsFloat=NaN
	} {
		sel, ok := cs.FilterRange(tc.field, tc.lo, tc.hi)
		if !ok {
			t.Fatalf("field %s lost its column", tc.field)
		}
		want, err := DrainPatches(Select(FromPatches(snap), FieldRange(tc.field, tc.lo, tc.hi)))
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(patchIDs(want), patchIDs(cs.Materialize(sel))) {
			t.Fatalf("range %s [%g,%g): columnar %d != row %d",
				tc.field, tc.lo, tc.hi, len(sel), len(want))
		}
	}
}

// TestColumnarTopKGolden: the columnar heap must reproduce the stable
// sort's order exactly, including ties (low-cardinality rank) and nulls
// (sparse), ascending and descending, across k values straddling the
// input size.
func TestColumnarTopKGolden(t *testing.T) {
	const rows = 2*ColumnBlockSize + 11
	_, col := columnCollection(t, rows)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, _ := col.Snapshot()
	for _, field := range []string{"rank", "score", "label", "sparse"} {
		for _, desc := range []bool{false, true} {
			for _, k := range []int{0, 1, 7, 100, rows, rows + 5} {
				top, ok := cs.TopK(nil, field, desc, k)
				if !ok {
					t.Fatalf("field %s lost its column", field)
				}
				want := referenceTopK(snap, field, desc, k)
				if !idsEqual(patchIDs(want), patchIDs(cs.Materialize(top))) {
					t.Fatalf("topk(%s, desc=%v, k=%d) diverged from stable sort", field, desc, k)
				}
				heapRow := TopKPatches(snap, field, desc, k)
				if !idsEqual(patchIDs(want), patchIDs(heapRow)) {
					t.Fatalf("row heap topk(%s, desc=%v, k=%d) diverged from stable sort", field, desc, k)
				}
			}
		}
	}
}

// referenceTopK is the semantics both top-k implementations must match:
// stable sort, then trim.
func referenceTopK(ps []*Patch, field string, desc bool, k int) []*Patch {
	ts := make([]Tuple, len(ps))
	for i, p := range ps {
		ts[i] = Tuple{p}
	}
	sorted, err := Drain(OrderBy(NewSliceIterator(ts), field, !desc))
	if err != nil {
		panic(err)
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	if k < 0 {
		k = 0
	}
	out := make([]*Patch, k)
	for i := 0; i < k; i++ {
		out[i] = sorted[i][0]
	}
	return out
}

// TestColumnarTopKSelected: top-k over a filter's selection list equals
// filtering then sorting the survivors.
func TestColumnarTopKSelected(t *testing.T) {
	const rows = ColumnBlockSize + 200
	_, col := columnCollection(t, rows)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := cs.FilterEq("label", StrV("bike"))
	if !ok {
		t.Fatal("label lost its column")
	}
	top, ok := cs.TopK(sel, "score", true, 9)
	if !ok {
		t.Fatal("score lost its column")
	}
	want := referenceTopK(cs.Materialize(sel), "score", true, 9)
	if !idsEqual(patchIDs(want), patchIDs(cs.Materialize(top))) {
		t.Fatal("selected topk diverged from filter + stable sort")
	}
}

// TestColumnarGroupCount: columnar group-count must equal the row
// operator's output tuple for tuple, including value order.
func TestColumnarGroupCount(t *testing.T) {
	const rows = ColumnBlockSize + 77
	_, col := columnCollection(t, rows)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	snap, _, _ := col.Snapshot()
	for _, field := range []string{"label", "rank", "score", "sparse"} {
		got, ok := cs.GroupCount(field)
		if !ok {
			t.Fatalf("field %s lost its column", field)
		}
		want, err := Drain(GroupCount(FromPatches(snap), field))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("groupcount(%s): %d groups, want %d", field, len(got), len(want))
		}
		for i := range want {
			wg, wc := want[i][0].Meta["group"], want[i][0].Meta["count"]
			gg, gc := got[i][0].Meta["group"], got[i][0].Meta["count"]
			if !wg.Equal(gg) || !wc.Equal(gc) {
				t.Fatalf("groupcount(%s) group %d: got (%+v, %+v) want (%+v, %+v)",
					field, i, gg, gc, wg, wc)
			}
		}
	}
	if n := cs.AggCount()[0].Meta["count"].I; n != int64(rows) {
		t.Fatalf("aggcount = %d, want %d", n, rows)
	}
}

// TestColumnarZoneMapPruning: a block-clustered predicate must touch
// only matching blocks — verified through the all-pruned case returning
// instantly-empty and the per-block distinct-set case.
func TestColumnarZoneMapPruning(t *testing.T) {
	const rows = 4 * ColumnBlockSize
	_, col := columnCollection(t, rows)
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := cs.Column("clustered")
	if !ok {
		t.Fatal("clustered lost its column")
	}
	if c.Blocks() != 4 {
		t.Fatalf("blocks = %d, want 4", c.Blocks())
	}
	// Every row of block 2 and only block 2.
	sel, _ := cs.FilterEq("clustered", IntV(2))
	if len(sel) != ColumnBlockSize {
		t.Fatalf("clustered==2 matched %d rows, want %d", len(sel), ColumnBlockSize)
	}
	if int(sel[0]) != 2*ColumnBlockSize || int(sel[len(sel)-1]) != 3*ColumnBlockSize-1 {
		t.Fatalf("selection [%d, %d] not confined to block 2", sel[0], sel[len(sel)-1])
	}
	// All-pruned: no zone map admits 99.
	if sel, _ := cs.FilterEq("clustered", IntV(99)); len(sel) != 0 {
		t.Fatalf("all-pruned predicate matched %d rows", len(sel))
	}
	if sel, _ := cs.FilterRange("clustered", 100, 200); len(sel) != 0 {
		t.Fatalf("all-pruned range matched %d rows", len(sel))
	}
}

// TestColumnarVersionInvalidation: appends move the collection version;
// Columns must rebuild so new rows are visible, and stores handed out
// earlier must keep answering over their own snapshot.
func TestColumnarVersionInvalidation(t *testing.T) {
	_, col := columnCollection(t, 100)
	cs1, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	sel1, _ := cs1.FilterEq("label", StrV("car"))
	n1 := len(sel1)

	for i := 100; i < 200; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs2, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Version() == cs1.Version() {
		t.Fatal("append did not move the column store version")
	}
	sel2, _ := cs2.FilterEq("label", StrV("car"))
	if len(sel2) != 2*n1 {
		t.Fatalf("rebuilt store matched %d rows, want %d", len(sel2), 2*n1)
	}
	// The old store still answers over its own 100-row snapshot.
	if sel, _ := cs1.FilterEq("label", StrV("car")); len(sel) != n1 {
		t.Fatalf("stale store changed its answer: %d vs %d", len(sel), n1)
	}
	// InvalidateCache drops the store; the next build still agrees.
	col.InvalidateCache()
	cs3, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if sel3, _ := cs3.FilterEq("label", StrV("car")); len(sel3) != 2*n1 {
		t.Fatalf("post-invalidate store matched %d rows, want %d", len(sel3), 2*n1)
	}
}

// TestColumnarEmptyAndAllNull: un-columnizable shapes must report
// ok=false, never a wrong answer.
func TestColumnarEmptyAndAllNull(t *testing.T) {
	db := openDB(t)
	col, err := db.CreateCollection("empty", columnTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.FilterEq("label", StrV("car")); ok {
		t.Fatal("empty collection produced a column")
	}
	// All-null (undeclared, never set) and vector-valued fields.
	for i := 0; i < 10; i++ {
		if err := col.Append(columnPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, _ = col.Columns()
	if _, ok := cs.Column("nosuch"); ok {
		t.Fatal("all-null field produced a column")
	}
	if _, ok := cs.Column("mixed"); ok {
		t.Fatal("mixed-kind field produced a column")
	}
}

// TestSnapshotColdLoadConcurrency: after InvalidateCache, concurrent
// cold Snapshot loads racing appends must produce a duplicate-free cache
// consistent with its version (the double-checked install).
func TestSnapshotColdLoadConcurrency(t *testing.T) {
	_, col := columnCollection(t, 400)
	col.InvalidateCache()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ps, _, err := col.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				seen := make(map[PatchID]bool, len(ps))
				for _, p := range ps {
					if seen[p.ID] {
						t.Errorf("duplicate patch %d in snapshot", p.ID)
						return
					}
					seen[p.ID] = true
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 400; i < 440; i++ {
			if err := col.Append(columnPatch(i)); err != nil {
				t.Error(err)
				return
			}
			if i%10 == 0 {
				col.InvalidateCache()
			}
		}
	}()
	wg.Wait()

	col.InvalidateCache()
	ps, _, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 440 {
		t.Fatalf("final snapshot has %d rows, want 440", len(ps))
	}
}

// TestTopKOperatorEqualsOrderByLimit: the fused iterator operator is
// byte-identical to OrderBy -> Limit for random inputs.
func TestTopKOperatorEqualsOrderByLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(300)
		ps := make([]*Patch, n)
		for i := range ps {
			ps[i] = &Patch{
				ID:   PatchID(i + 1),
				Meta: Metadata{"v": IntV(int64(rng.Intn(20)))}, // heavy ties
			}
			if rng.Intn(5) == 0 {
				delete(ps[i].Meta, "v") // nulls
			}
		}
		k := rng.Intn(n + 3)
		asc := rng.Intn(2) == 0
		want, err := Drain(Limit(OrderBy(FromPatches(ps), "v", asc), k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(TopK(FromPatches(ps), "v", asc, k))
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i][0].ID != got[i][0].ID {
				t.Fatalf("trial %d row %d: id %d, want %d (n=%d k=%d asc=%v)",
					trial, i, got[i][0].ID, want[i][0].ID, n, k, asc)
			}
		}
	}
}

func ExampleColumnStore() {
	ps := []*Patch{
		{ID: 1, Meta: Metadata{"label": StrV("car"), "score": FloatV(0.9)}},
		{ID: 2, Meta: Metadata{"label": StrV("bus"), "score": FloatV(0.4)}},
		{ID: 3, Meta: Metadata{"label": StrV("car"), "score": FloatV(0.7)}},
	}
	cs := NewColumnStore(ps, 1)
	sel, _ := cs.FilterEq("label", StrV("car"))
	top, _ := cs.TopK(sel, "score", false, 1)
	for _, p := range cs.Materialize(top) {
		fmt.Println(p.ID, p.Meta["score"].F)
	}
	// Output: 3 0.7
}
