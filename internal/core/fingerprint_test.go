package core

import "testing"

func TestFingerprintStability(t *testing.T) {
	fp := func() Fingerprint {
		return NewFingerprinter("query").
			Col("traffic.dets", 7).
			Str("filter.field", "label").
			Value("filter.eq", StrV("pedestrian")).
			Float("simjoin.eps", 0.15).
			Int("limit", 10).
			Sum()
	}
	a, b := fp(), fp()
	if a != b {
		t.Fatalf("identical plans fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", len(a))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Fingerprinter {
		return NewFingerprinter("query").Col("c", 1).Str("f", "label")
	}
	ref := base().Sum()
	variants := map[string]Fingerprint{
		"version bump":   NewFingerprinter("query").Col("c", 2).Str("f", "label").Sum(),
		"other col":      NewFingerprinter("query").Col("d", 1).Str("f", "label").Sum(),
		"other kind":     NewFingerprinter("infer").Col("c", 1).Str("f", "label").Sum(),
		"other value":    NewFingerprinter("query").Col("c", 1).Str("f", "score").Sum(),
		"extra param":    base().Int("limit", 1).Sum(),
		"typed int":      NewFingerprinter("query").Col("c", 1).Value("f", IntV(1)).Sum(),
		"typed str":      NewFingerprinter("query").Col("c", 1).Value("f", StrV("1")).Sum(),
		"typed float":    NewFingerprinter("query").Col("c", 1).Value("f", FloatV(1)).Sum(),
		"vec value":      NewFingerprinter("query").Col("c", 1).Value("f", VecV([]float32{1, 2})).Sum(),
		"vec value perm": NewFingerprinter("query").Col("c", 1).Value("f", VecV([]float32{2, 1})).Sum(),
	}
	seen := map[Fingerprint]string{"": "ref"}
	seen[ref] = "ref"
	for name, v := range variants {
		if v == ref {
			t.Errorf("%s collides with reference fingerprint", name)
		}
		if prev, ok := seen[v]; ok && prev != name {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[v] = name
	}
	// Concatenation ambiguity: ("ab","c") must differ from ("a","bc").
	x := NewFingerprinter("q").Str("ab", "c").Sum()
	y := NewFingerprinter("q").Str("a", "bc").Sum()
	if x == y {
		t.Fatal("length prefixing failed: token concatenation aliases")
	}
}

func TestCacheAwareCost(t *testing.T) {
	cm := DefaultCostModel()
	const est, lookup = 2.0, 1e-6
	cold := cm.CacheAwareCost(est, 0, lookup)
	warm := cm.CacheAwareCost(est, 1, lookup)
	half := cm.CacheAwareCost(est, 0.5, lookup)
	if cold <= est-1e-9 || cold > est+lookup+1e-9 {
		t.Fatalf("cold cost = %g, want ~%g", cold, est+lookup)
	}
	if warm > 2*lookup {
		t.Fatalf("warm cost = %g, want ~%g", warm, lookup)
	}
	if half <= warm || half >= cold {
		t.Fatalf("half-warm cost %g not between %g and %g", half, warm, cold)
	}
	// Out-of-range hit rates clamp instead of producing negative costs.
	if got := cm.CacheAwareCost(est, 1.5, lookup); got < 0 {
		t.Fatalf("clamped cost = %g, want >= 0", got)
	}
	if got := cm.CacheAwareCost(est, -1, lookup); got > est+lookup+1e-9 {
		t.Fatalf("clamped cost = %g, want <= %g", got, est+lookup)
	}
}
