package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/exec"
)

func testSchema() Schema {
	return Schema{
		Data: Features(4),
		Fields: []Field{
			{Name: "label", Kind: KindStr},
			{Name: "frameno", Kind: KindInt},
		},
	}
}

func testPatch(i int) *Patch {
	return &Patch{
		Ref: Ref{Source: "src", Frame: uint64(i)},
		Meta: Metadata{
			"label":   StrV(fmt.Sprintf("l%d", i%3)),
			"frameno": IntV(int64(i)),
		},
	}
}

// TestCatalogConcurrentReadersDuringWrites exercises the catalog's shared
// read path under live appends: snapshot scans, id gets, catalog listing
// and device reads race a writer goroutine. Run with -race.
func TestCatalogConcurrentReadersDuringWrites(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "c.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("live", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := col.Append(testPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := col.Patches(); err != nil { // warm the scan cache
		t.Fatal(err)
	}

	const writes = 300
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() { // writer: appends bump the version
		defer wg.Done()
		for i := 50; i < 50+writes; i++ {
			if err := col.Append(testPatch(i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() { // readers: snapshots must be stable prefixes
			defer wg.Done()
			var lastLen int
			var lastVer uint64
			for i := 0; i < 200; i++ {
				ps, ver, err := col.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				if len(ps) < lastLen {
					errs <- fmt.Errorf("snapshot shrank: %d -> %d", lastLen, len(ps))
					return
				}
				if ver < lastVer {
					errs <- fmt.Errorf("version went backwards: %d -> %d", lastVer, ver)
					return
				}
				lastLen, lastVer = len(ps), ver
				for _, p := range ps[:min(len(ps), 10)] {
					if _, err := col.Get(p.ID); err != nil {
						errs <- err
						return
					}
				}
				_ = db.Collections()
				_ = db.Device()
				if _, err := db.Collection("live"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := col.Len(); got != 50+writes {
		t.Fatalf("final count = %d, want %d", got, 50+writes)
	}
}

// TestDropCollectionVersioning verifies re-ingest semantics: dropping and
// re-creating a collection yields a strictly newer version, and the old
// contents are gone from both the catalog and the lineage map.
func TestDropCollectionVersioning(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "d.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("x", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := testPatch(0)
	if err := col.Append(p); err != nil {
		t.Fatal(err)
	}
	v1 := col.Version()
	oldID := p.ID
	if _, err := db.BuildIndex(col, "label", IdxHash); err != nil {
		t.Fatal(err)
	}

	if err := db.DropCollection("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Collection("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped collection still opens: %v", err)
	}
	if _, err := db.GetPatch(oldID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped patch still resolves: %v", err)
	}

	col2, err := db.CreateCollection("x", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if v2 := col2.Version(); v2 <= v1 {
		t.Fatalf("re-created collection version %d not newer than %d", v2, v1)
	}
	if db.HasIndex(col2, "label", IdxHash) {
		t.Fatal("index descriptor survived the drop")
	}
	if got := col2.Len(); got != 0 {
		t.Fatalf("re-created collection has %d patches, want 0", got)
	}
	// Dropping a collection that never existed reports ErrNotFound.
	if err := db.DropCollection("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("DropCollection(missing) = %v, want ErrNotFound", err)
	}
}

// TestVersionPersistsAcrossReopen checks that versions are durable: a
// flushed database reopened from disk reports the same version, and the
// global counter never reissues old values.
func TestVersionPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.db")
	db, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("x", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := col.Append(testPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	v1 := col.Version()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := col2.Version(); got != v1 {
		t.Fatalf("version after reopen = %d, want %d", got, v1)
	}
	if err := col2.Append(testPatch(5)); err != nil {
		t.Fatal(err)
	}
	if got := col2.Version(); got <= v1 {
		t.Fatalf("post-reopen append version %d not newer than %d", got, v1)
	}
}
