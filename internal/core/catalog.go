package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/kv"
)

// DB is a DeepLens database: a page file holding materialized patch
// collections, persistent indexes, lineage state, and the catalog, plus
// the execution device query operators run on.
//
// The catalog is safe for concurrent use: readers (Collection, Device,
// HasIndex, snapshot scans) take a shared lock while writers (create,
// drop, device swap) take it exclusively, so a serving layer can run many
// queries in parallel with occasional catalog mutations.
type DB struct {
	mu    sync.RWMutex
	store *kv.Store
	dev   exec.Device

	nextID  uint64
	nextVer atomic.Uint64 // collection-version counter (cache invalidation)

	sys      *kv.Bucket // catalog + counters
	patchLoc *kv.Bucket // patch id -> collection name (global lineage resolution)
	cols     map[string]*Collection
	indexes  map[string]map[string]*Index // collection -> field -> index

	// Incremental column-extension counters (see Collection.Columns):
	// how many stale stores were upgraded in place rather than rebuilt,
	// and the sealed-block reuse they achieved.
	colExtends      atomic.Int64
	colExtendReused atomic.Int64
	colExtendTotal  atomic.Int64

	// Vector-index maintenance counters (see Collection.VectorIndexAt):
	// prefix-certified incremental extensions vs full builds.
	idxExtends  atomic.Int64
	idxRebuilds atomic.Int64

	// cost is the planner's cost model. Every DB gets its own default;
	// a serving layer shares one model across replica DBs (SetCostModel)
	// so observed filter latencies from any replica feed one state.
	cost atomic.Pointer[CostModel]

	// segCache, when installed, attaches a disk spill tier to every
	// collection's column store: sealed segments persist into a
	// per-collection bucket and the shared cache budgets the resident
	// set. Nil (the default) keeps column stores purely in-memory.
	segCache atomic.Pointer[SegmentCache]
}

// ColumnExtendStats reports the live-ingest column-extension counters:
// extends is the number of stale column stores upgraded incrementally,
// reused/total the sealed-block reuse across those upgrades (reused ==
// total except for the per-column partial tail blocks that re-projected).
func (db *DB) ColumnExtendStats() (extends, reused, total int64) {
	return db.colExtends.Load(), db.colExtendReused.Load(), db.colExtendTotal.Load()
}

// ErrNotFound reports a missing collection, patch or index.
var ErrNotFound = errors.New("core: not found")

// Open opens (or creates) a database at path on the given device.
func Open(path string, dev exec.Device) (*DB, error) {
	st, err := kv.Open(path)
	if err != nil {
		return nil, err
	}
	sys, err := st.Bucket("sys.catalog")
	if err != nil {
		st.Close()
		return nil, err
	}
	loc, err := st.Bucket("sys.patchloc")
	if err != nil {
		st.Close()
		return nil, err
	}
	db := &DB{
		store: st, dev: dev, sys: sys, patchLoc: loc,
		cols:    make(map[string]*Collection),
		indexes: make(map[string]map[string]*Index),
	}
	if v, err := sys.Get([]byte("nextid")); err == nil {
		db.nextID = kv.ParseU64Key(v)
	}
	if v, err := sys.Get([]byte("nextver")); err == nil {
		db.nextVer.Store(kv.ParseU64Key(v))
	}
	db.cost.Store(DefaultCostModel())
	// Load collection descriptors.
	if err := sys.Scan([]byte("col."), []byte("col/"), func(k, v []byte) bool {
		var d colDesc
		if json.Unmarshal(v, &d) == nil {
			db.cols[d.Name] = nil // lazily opened
		}
		return true
	}); err != nil {
		st.Close()
		return nil, err
	}
	return db, nil
}

// Cost returns the DB's cost model (never nil for an opened DB).
func (db *DB) Cost() *CostModel {
	return db.cost.Load()
}

// SetCostModel installs a shared cost model — the serving layer points
// every replica DB at one model so all observed latencies and all plan
// choices flow through the same state. Nil models are ignored.
func (db *DB) SetCostModel(cm *CostModel) {
	if cm != nil {
		db.cost.Store(cm)
	}
}

// SetSegmentCache installs the shared column-segment cache, enabling
// the tiered column store: sealed segments spill through the kv pager
// and the cache byte-budgets how many stay resident. The serving layer
// installs one cache across every replica DB so a single budget governs
// the whole process. Nil caches are ignored. Install before the first
// query: stores built without a spill tier stay in-memory until their
// collection's version moves.
func (db *DB) SetSegmentCache(sc *SegmentCache) {
	if sc != nil {
		db.segCache.Store(sc)
	}
}

// SegmentCache returns the installed segment cache (nil when the column
// stores are purely in-memory).
func (db *DB) SegmentCache() *SegmentCache {
	return db.segCache.Load()
}

// Device returns the execution device the engine runs kernels on.
func (db *DB) Device() exec.Device {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dev
}

// SetDevice swaps the execution device (the optimizer's placement choice).
func (db *DB) SetDevice(dev exec.Device) {
	db.mu.Lock()
	db.dev = dev
	db.mu.Unlock()
}

// nextVersion allocates a database-wide monotonic collection version.
// Versions never repeat, even across drop/re-create of the same name, so
// a (name, version) pair is a stable cache-key component.
func (db *DB) nextVersion() uint64 { return db.nextVer.Add(1) }

// Store exposes the underlying kv store (for persistent indexes).
func (db *DB) Store() *kv.Store { return db.store }

// Close flushes and closes the database.
func (db *DB) Close() error {
	if err := db.Flush(); err != nil {
		db.store.Close()
		return err
	}
	return db.store.Close()
}

// Flush persists all dirty state without closing, including every open
// collection's descriptor (count updates from direct Appends).
func (db *DB) Flush() error {
	db.mu.Lock()
	if err := db.sys.Put([]byte("nextid"), kv.U64Key(db.nextID)); err != nil {
		db.mu.Unlock()
		return err
	}
	if err := db.sys.Put([]byte("nextver"), kv.U64Key(db.nextVer.Load())); err != nil {
		db.mu.Unlock()
		return err
	}
	for _, c := range db.cols {
		if c == nil {
			continue
		}
		if err := c.saveDesc(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	return db.store.Flush()
}

// NewPatchID allocates a database-unique patch id.
func (db *DB) NewPatchID() PatchID {
	db.mu.Lock()
	db.nextID++
	id := db.nextID
	db.mu.Unlock()
	return PatchID(id)
}

type colDesc struct {
	Name    string `json:"name"`
	Schema  Schema `json:"schema"`
	Count   int    `json:"count"`
	Version uint64 `json:"version,omitempty"`
}

// CreateCollection registers a new (empty) materialized collection.
func (db *DB) CreateCollection(name string, schema Schema) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.cols[name]; ok {
		return nil, fmt.Errorf("core: collection %q already exists", name)
	}
	if _, err := db.sys.Get([]byte("col." + name)); err == nil {
		return nil, fmt.Errorf("core: collection %q already exists on disk", name)
	}
	b, err := db.store.Bucket("col." + name)
	if err != nil {
		return nil, err
	}
	c := &Collection{db: db, name: name, schema: schema, bucket: b, version: db.nextVersion()}
	if err := c.saveDesc(); err != nil {
		return nil, err
	}
	db.cols[name] = c
	return c, nil
}

// Collection opens an existing collection by name.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.RLock()
	if c, ok := db.cols[name]; ok && c != nil {
		db.mu.RUnlock()
		return c, nil
	}
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.cols[name]; ok && c != nil { // raced another opener
		return c, nil
	}
	v, err := db.sys.Get([]byte("col." + name))
	if err != nil {
		return nil, fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	var d colDesc
	if err := json.Unmarshal(v, &d); err != nil {
		return nil, err
	}
	b, err := db.store.Bucket("col." + name)
	if err != nil {
		return nil, err
	}
	c := &Collection{db: db, name: name, schema: d.Schema, bucket: b, count: d.Count, version: d.Version}
	if c.version == 0 {
		c.version = db.nextVersion() // pre-versioning database file
	}
	db.cols[name] = c
	return c, nil
}

// Collections lists materialized collection names.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.cols))
	for n := range db.cols {
		names = append(names, n)
	}
	return names
}

// DropCollection removes a collection: its patches, lineage entries,
// catalog descriptor, and any index descriptors. A later collection with
// the same name gets a fresh version, so plan fingerprints keyed on
// (name, version) can never alias stale cached results after re-ingest.
func (db *DB) DropCollection(name string) error {
	// The descriptor must disappear while the catalog lock is held:
	// otherwise a concurrent Collection(name) between the map delete and
	// the descriptor delete would re-open the half-dropped collection
	// and resurrect it into db.cols.
	db.mu.Lock()
	c := db.cols[name]
	_, descErr := db.sys.Get([]byte("col." + name))
	if c == nil && descErr != nil {
		db.mu.Unlock()
		return fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	delete(db.cols, name)
	delete(db.indexes, name)
	if descErr == nil {
		if err := db.sys.Delete([]byte("col." + name)); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	b, err := db.store.Bucket("col." + name)
	if err != nil {
		return err
	}
	var keys [][]byte
	if err := b.Scan(nil, nil, func(k, _ []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range keys {
		if err := b.Delete(k); err != nil {
			return err
		}
		// Lineage entries may already point elsewhere; missing is fine.
		if err := db.patchLoc.Delete(k); err != nil && !errors.Is(err, kv.ErrNotFound) {
			return err
		}
	}
	// Spilled column segments and their manifest: a re-created collection
	// of the same name must never rehydrate the dropped one's columns.
	if has, err := db.store.HasBucket(colSegBucket(name)); err == nil && has {
		sb, err := db.store.Bucket(colSegBucket(name))
		if err != nil {
			return err
		}
		var segKeys [][]byte
		if err := sb.Scan(nil, nil, func(k, _ []byte) bool {
			segKeys = append(segKeys, append([]byte(nil), k...))
			return true
		}); err != nil {
			return err
		}
		for _, k := range segKeys {
			if err := sb.Delete(k); err != nil && !errors.Is(err, kv.ErrNotFound) {
				return err
			}
		}
	}
	// Index descriptors for this collection.
	var idxKeys [][]byte
	prefix := []byte("idx." + name + ".")
	end := []byte("idx." + name + "/")
	if err := db.sys.Scan(prefix, end, func(k, _ []byte) bool {
		idxKeys = append(idxKeys, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range idxKeys {
		if err := db.sys.Delete(k); err != nil && !errors.Is(err, kv.ErrNotFound) {
			return err
		}
	}
	return nil
}

// Materialize drains it into a new collection (paper §4.1 Materialize).
func (db *DB) Materialize(name string, schema Schema, it Iterator) (*Collection, error) {
	c, err := db.CreateCollection(name, schema)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for _, p := range t {
			if err := c.Append(p); err != nil {
				return nil, err
			}
		}
	}
	if err := c.saveDesc(); err != nil {
		return nil, err
	}
	return c, nil
}

// GetPatch resolves a patch id anywhere in the database (lineage chains
// cross collections).
func (db *DB) GetPatch(id PatchID) (*Patch, error) {
	v, err := db.patchLoc.Get(kv.U64Key(uint64(id)))
	if err != nil {
		return nil, fmt.Errorf("%w: patch %d", ErrNotFound, id)
	}
	col, err := db.Collection(string(v))
	if err != nil {
		return nil, err
	}
	return col.Get(id)
}

// Backtrace follows a patch's lineage chain to its base (§5.1): the
// returned slice starts at p's parent and ends at the patch with no
// parent; the final Ref's Source/Frame identify the raw image.
func (db *DB) Backtrace(p *Patch) ([]*Patch, error) {
	var chain []*Patch
	cur := p
	for cur.Ref.Parent != 0 {
		parent, err := db.GetPatch(cur.Ref.Parent)
		if err != nil {
			return chain, err
		}
		chain = append(chain, parent)
		cur = parent
	}
	return chain, nil
}

// Collection is a named materialized set of patches persisted in one kv
// bucket, with an in-memory cache for repeated scans.
//
// Concurrent readers and writers are safe: Snapshot returns a stable view
// (appends never mutate a handed-out snapshot's visible prefix) together
// with the version it reflects.
type Collection struct {
	db     *DB
	name   string
	schema Schema
	bucket *kv.Bucket

	mu      sync.Mutex
	count   int
	version uint64
	cache   []*Patch
	byID    map[PatchID]*Patch

	// loadMu serializes cold-start cache loads so concurrent first
	// readers run one bucket scan, not N, while c.mu stays free for
	// appends and cache-hit readers (see Snapshot).
	loadMu sync.Mutex

	// colMu guards the columnar projection of the current snapshot
	// (built lazily by Columns, invalidated by version movement).
	colMu    sync.Mutex
	colStore *ColumnStore

	// spillMu guards the lazily created column spill handle — the
	// collection's disk tier for sealed column segments, present only
	// when the DB has a SegmentCache installed.
	spillMu sync.Mutex
	spillH  *columnSpill

	// vecMu guards the cached vector indexes, keyed field + "/" + mode
	// (built lazily by VectorIndexAt, maintained like colStore).
	vecMu  sync.Mutex
	vecIdx map[string]*VectorIndex
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Schema returns the collection's schema.
func (c *Collection) Schema() Schema { return c.schema }

// Len returns the number of patches.
func (c *Collection) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Version returns the collection's current version. It advances on every
// write, and a re-created collection of the same name never reuses an old
// version, so (Name, Version) canonically identifies the visible contents
// — the dataset component of a plan fingerprint.
func (c *Collection) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

func (c *Collection) saveDesc() error {
	c.mu.Lock()
	d := colDesc{Name: c.name, Schema: c.schema, Count: c.count, Version: c.version}
	c.mu.Unlock()
	v, err := json.Marshal(d)
	if err != nil {
		return err
	}
	return c.db.sys.Put([]byte("col."+c.name), v)
}

// Append validates, ids, and persists a patch. Lineage attributes _source
// and _frame are auto-populated from Ref so indexes and queries work on
// provenance natively (§5.1).
func (c *Collection) Append(p *Patch) error {
	if p.ID == 0 {
		p.ID = c.db.NewPatchID()
	}
	if p.Meta == nil {
		p.Meta = Metadata{}
	}
	// Assign lineage only when absent or stale: a replicated write-all
	// append routes the same *Patch through every replica's Append, and
	// after the primary commits it the patch is already visible to
	// concurrent snapshot readers — a secondary's re-assignment of an
	// unchanged value would race those readers' Meta map accesses.
	if v, ok := p.Meta["_source"]; !ok || v.Kind != KindStr || v.S != p.Ref.Source {
		p.Meta["_source"] = StrV(p.Ref.Source)
	}
	if v, ok := p.Meta["_frame"]; !ok || v.Kind != KindInt || v.I != int64(p.Ref.Frame) {
		p.Meta["_frame"] = IntV(int64(p.Ref.Frame))
	}
	if err := c.schema.ValidatePatch(p); err != nil {
		return fmt.Errorf("collection %q: %w", c.name, err)
	}
	// The storage write and the count/version/cache update commit as one
	// critical section: a cold Snapshot load that observed this patch's
	// bucket write is guaranteed to also observe the version bump, so its
	// raced-load version check can never install a cache that this append
	// would then double-insert into.
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.bucket.Put(kv.U64Key(uint64(p.ID)), p.Marshal()); err != nil {
		return err
	}
	if err := c.db.patchLoc.Put(kv.U64Key(uint64(p.ID)), []byte(c.name)); err != nil {
		return err
	}
	c.count++
	c.version = c.db.nextVersion()
	if c.cache != nil {
		c.cache = append(c.cache, p)
		c.byID[p.ID] = p
	}
	return nil
}

// Get fetches one patch by id, serving from the in-memory cache when the
// collection has been scanned (index joins fetch per match; disk reads
// there would dominate query time).
func (c *Collection) Get(id PatchID) (*Patch, error) {
	c.mu.Lock()
	if c.byID != nil {
		if p, ok := c.byID[id]; ok {
			c.mu.Unlock()
			return p, nil
		}
	}
	c.mu.Unlock()
	v, err := c.bucket.Get(kv.U64Key(uint64(id)))
	if err != nil {
		return nil, fmt.Errorf("%w: patch %d in %q", ErrNotFound, id, c.name)
	}
	return UnmarshalPatch(v)
}

// Patches returns all patches, loading and caching them on first use.
func (c *Collection) Patches() ([]*Patch, error) {
	ps, _, err := c.Snapshot()
	return ps, err
}

// Snapshot atomically returns the collection's patches and the version
// they reflect. The returned slice is immutable from the reader's point of
// view: concurrent Appends grow the cache beyond the snapshot's length but
// never mutate its visible prefix, so many queries can share one snapshot
// while writers proceed (the catalog's copy-on-write read path).
func (c *Collection) Snapshot() ([]*Patch, uint64, error) {
	c.mu.Lock()
	if c.cache != nil {
		ps, ver := c.cache, c.version
		c.mu.Unlock()
		return ps, ver, nil
	}
	c.mu.Unlock()

	// Cold start: the first touch after open or InvalidateCache used to
	// unmarshal the entire bucket while holding c.mu, stalling every
	// reader (and all appends) behind one load. Instead, serialize
	// loaders on loadMu, scan the bucket with c.mu free, and install
	// double-checked: if the collection version moved during the unlocked
	// scan (appends commit their bucket write and version bump atomically
	// under c.mu), the scan may hold a torn prefix — retry, falling back
	// to a fully locked scan under sustained write pressure.
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	const coldLoadRetries = 3
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.cache != nil { // populated while we waited on loadMu
			ps, ver := c.cache, c.version
			c.mu.Unlock()
			return ps, ver, nil
		}
		verBefore := c.version
		if attempt >= coldLoadRetries {
			// Appends keep landing: scan while holding c.mu, which now
			// excludes them entirely (Append's storage write is inside
			// the same critical section).
			out, byID, err := c.loadLocked()
			if err != nil {
				c.mu.Unlock()
				return nil, 0, err
			}
			c.installLocked(out, byID)
			ps, ver := c.cache, c.version
			c.mu.Unlock()
			return ps, ver, nil
		}
		c.mu.Unlock()

		out, byID, err := c.loadLocked() // bucket has its own lock
		if err != nil {
			return nil, 0, err
		}

		c.mu.Lock()
		if c.version == verBefore {
			c.installLocked(out, byID)
			ps, ver := c.cache, c.version
			c.mu.Unlock()
			return ps, ver, nil
		}
		c.mu.Unlock() // a write raced the scan: reload at the new version
	}
}

// loadLocked scans the backing bucket into a fresh cache slice. Despite
// the name it only requires the bucket's own lock; callers optionally
// hold c.mu to exclude concurrent appends.
func (c *Collection) loadLocked() ([]*Patch, map[PatchID]*Patch, error) {
	var out []*Patch
	var scanErr error
	err := c.bucket.Scan(nil, nil, func(_, v []byte) bool {
		p, err := UnmarshalPatch(v)
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, p)
		return true
	})
	if scanErr != nil {
		return nil, nil, scanErr
	}
	if err != nil {
		return nil, nil, err
	}
	byID := make(map[PatchID]*Patch, len(out))
	for _, p := range out {
		byID[p.ID] = p
	}
	return out, byID, nil
}

// installLocked publishes a loaded cache. Callers hold c.mu.
func (c *Collection) installLocked(out []*Patch, byID map[PatchID]*Patch) {
	c.cache = out
	c.byID = byID
	c.count = len(out)
}

// Scan returns an iterator over all patches.
func (c *Collection) Scan() Iterator {
	ps, err := c.Patches()
	if err != nil {
		return NewFuncIterator(func() (Tuple, bool, error) { return nil, false, err }, nil)
	}
	return FromPatches(ps)
}

// InvalidateCache drops the in-memory cache (tests and memory control).
func (c *Collection) InvalidateCache() {
	c.mu.Lock()
	c.cache = nil
	c.byID = nil
	c.mu.Unlock()
	c.InvalidateColumns()
	c.InvalidateVectorIndexes()
}

// InvalidateColumns drops only the cached columnar projection (memory
// control; the row cache stays warm). The next Columns call rebuilds
// from scratch instead of extending.
func (c *Collection) InvalidateColumns() {
	c.colMu.Lock()
	c.colStore = nil
	c.colMu.Unlock()
}

// colSegBucket is the kv bucket holding a collection's spilled column
// segments and manifest.
func colSegBucket(name string) string { return "colseg." + name }

// columnSpillHandle lazily creates the collection's disk tier for
// sealed column segments. Returns nil — pure in-memory column stores —
// when the DB has no segment cache installed or the bucket cannot open.
func (c *Collection) columnSpillHandle() *columnSpill {
	sc := c.db.SegmentCache()
	if sc == nil {
		return nil
	}
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spillH != nil {
		return c.spillH
	}
	b, err := c.db.store.Bucket(colSegBucket(c.name))
	if err != nil {
		return nil
	}
	c.spillH = &columnSpill{bucket: b, cache: sc}
	return c.spillH
}

// Columns returns the columnar projection of the collection's current
// snapshot, building it lazily and upgrading whenever the version has
// moved — the same version-keyed invalidation the serving layer's result
// cache uses, so appends can never serve a stale column. When the stale
// store's snapshot is a prefix of the current one (the live-append case:
// snapshots are prefix-stable and grow in place), the upgrade is an
// incremental Extend that reuses every sealed block and re-projects only
// the tail; otherwise (cache reload, first touch) it is a full build.
// The returned store is immutable and safe to share across queries.
func (c *Collection) Columns() (*ColumnStore, error) {
	cs, _, err := c.ColumnsWithInfo()
	return cs, err
}

// ColumnsInfo reports what one Columns call did: served the cached
// store, extended it incrementally, or built from scratch — the
// per-call view of the DB-level ColumnExtendStats aggregates, so trace
// spans can attribute extension work to the query that paid for it.
type ColumnsInfo struct {
	Built    bool        // full projection build
	Extended bool        // incremental extend of the cached store
	Extend   ExtendStats // populated when Extended
}

// ColumnsWithInfo is Columns reporting whether this call hit the
// cached store, extended it, or rebuilt it.
func (c *Collection) ColumnsWithInfo() (*ColumnStore, ColumnsInfo, error) {
	var info ColumnsInfo
	ps, ver, err := c.Snapshot()
	if err != nil {
		return nil, info, err
	}
	c.colMu.Lock()
	if c.colStore != nil && c.colStore.version == ver {
		cs := c.colStore
		c.colMu.Unlock()
		return cs, info, nil
	}
	old := c.colStore
	c.colMu.Unlock()

	// Build or extend with colMu free: a full build projects the whole
	// snapshot (and an extend still re-projects the tail), and holding
	// the lock across that would stall every concurrent cache-hit reader
	// on the collection — the same stall shape Snapshot's cold load
	// avoids on c.mu. Racing builders at most duplicate work; the
	// double-checked install below keeps one canonical store per version.
	var cs *ColumnStore
	if old != nil && old.version < ver && snapshotExtends(old.patches, ps) {
		var st ExtendStats
		cs, st = old.Extend(ps, ver)
		info.Extended = true
		info.Extend = st
		c.db.colExtends.Add(1)
		c.db.colExtendReused.Add(int64(st.ReusedBlocks))
		c.db.colExtendTotal.Add(int64(st.TotalBlocks))
	} else {
		cs = newColumnStoreSpill(ps, ver, c.columnSpillHandle())
		info.Built = true
	}

	c.colMu.Lock()
	switch {
	case c.colStore != nil && c.colStore.version == ver:
		// Another builder installed this version while we worked: adopt
		// the canonical store (mirrors Column's raced-projector rule).
		cs = c.colStore
	case c.colStore == nil || c.colStore.version < ver:
		// Cache only forward: a reader whose snapshot raced behind an
		// append gets a private store without evicting the newer one.
		c.colStore = cs
	}
	c.colMu.Unlock()
	return cs, info, nil
}

// snapshotExtends reports whether old is a prefix of next sharing the
// same patch objects. Appends grow the cache slice in place (the visible
// prefix never mutates), so element identity at the ends certifies the
// whole prefix; a cache reload after InvalidateCache allocates fresh
// Patch values and correctly fails the check, forcing a full build.
func snapshotExtends(old, next []*Patch) bool {
	if len(old) > len(next) {
		return false
	}
	if len(old) == 0 {
		return true
	}
	return old[0] == next[0] && old[len(old)-1] == next[len(old)-1]
}
