package core

import (
	"math/rand"
	"sort"
	"testing"
)

func rectSchema() Schema {
	return Schema{Fields: []Field{
		{Name: "bbox", Kind: KindRect},
		{Name: "emb", Kind: KindVec},
	}}
}

func mkSpatialPatch(rng *rand.Rand, frame int64) *Patch {
	x := rng.Float64() * 180
	y := rng.Float64() * 90
	v := make([]float32, 16)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return &Patch{
		Ref: Ref{Source: "s", Frame: uint64(frame)},
		Meta: Metadata{
			"bbox": RectV(x, y, x+5+rng.Float64()*15, y+5+rng.Float64()*10),
			"emb":  VecV(v),
		},
	}
}

func TestRTreeIndexIntersect(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("boxes", rectSchema())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		if err := col.Append(mkSpatialPatch(rng, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := db.BuildIndex(col, "bbox", IdxRTree)
	if err != nil {
		t.Fatal(err)
	}
	qx1, qy1, qx2, qy2 := 50.0, 20.0, 110.0, 60.0
	got, err := idx.LookupIntersect(qx1, qy1, qx2, qy2)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: scan.
	ps, _ := col.Patches()
	var want []PatchID
	for _, p := range ps {
		b := p.Meta["bbox"].V
		if float64(b[0]) <= qx2 && float64(b[2]) >= qx1 &&
			float64(b[1]) <= qy2 && float64(b[3]) >= qy1 {
			want = append(want, p.ID)
		}
	}
	sortIDs(got)
	sortIDs(want)
	if len(got) != len(want) {
		t.Fatalf("intersect: %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id mismatch at %d", i)
		}
	}
	if len(want) == 0 {
		t.Fatal("vacuous test: no boxes in the query window")
	}
}

func TestKDTreeAndLSHIndexSimilar(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("vecs", rectSchema())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		col.Append(mkSpatialPatch(rng, int64(i)))
	}
	ps, _ := col.Patches()
	q := ps[7].Meta["emb"].V
	const eps = 3.0
	// Reference: exact scan.
	var want []PatchID
	for _, p := range ps {
		v := p.Meta["emb"].V
		var s float64
		for i := range v {
			d := float64(v[i]) - float64(q[i])
			s += d * d
		}
		if s <= eps*eps {
			want = append(want, p.ID)
		}
	}
	sortIDs(want)
	if len(want) < 2 {
		t.Fatal("vacuous: query matches almost nothing")
	}

	kd, err := db.BuildIndex(col, "emb", IdxKDTree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kd.LookupSimilar(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	sortIDs(got)
	if len(got) != len(want) {
		t.Fatalf("kdtree: %d ids, want %d", len(got), len(want))
	}

	lshIdx, err := db.BuildIndex(col, "emb", IdxLSH)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := lshIdx.LookupSimilar(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	// LSH is approximate: everything returned must be a true match (exact
	// verification happens inside), and the query point itself must be hit.
	wantSet := map[PatchID]bool{}
	for _, id := range want {
		wantSet[id] = true
	}
	self := false
	for _, id := range approx {
		if !wantSet[id] {
			t.Fatalf("lsh returned non-match %d", id)
		}
		if id == ps[7].ID {
			self = true
		}
	}
	if !self {
		t.Fatal("lsh missed the query point itself")
	}
}

func TestIndexKindMismatchErrors(t *testing.T) {
	db := openDB(t)
	col, _ := db.CreateCollection("m", rectSchema())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		col.Append(mkSpatialPatch(rng, int64(i)))
	}
	rt, _ := db.BuildIndex(col, "bbox", IdxRTree)
	if _, err := rt.LookupEq(StrV("x")); err == nil {
		t.Fatal("rtree equality lookup allowed")
	}
	if _, err := rt.LookupSimilar([]float32{1}, 1); err == nil {
		t.Fatal("rtree similarity lookup allowed")
	}
	ball, _ := db.BuildIndex(col, "emb", IdxBallTree)
	if _, err := ball.LookupIntersect(0, 0, 1, 1); err == nil {
		t.Fatal("balltree spatial lookup allowed")
	}
	lo := IntV(1)
	if _, err := ball.LookupRange(&lo, nil); err == nil {
		t.Fatal("balltree range lookup allowed")
	}
}

func TestQuickIndexEquivalence(t *testing.T) {
	// Property: for random vector datasets and thresholds, the ball-tree
	// index returns exactly the scan result.
	db := openDB(t)
	col, _ := db.CreateCollection("q", rectSchema())
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		col.Append(mkSpatialPatch(rng, int64(i)))
	}
	ps, _ := col.Patches()
	idx, err := db.BuildIndex(col, "emb", IdxBallTree)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := ps[rng.Intn(len(ps))].Meta["emb"].V
		eps := 0.5 + rng.Float64()*4
		got, err := idx.LookupSimilar(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		var want []PatchID
		for _, p := range ps {
			v := p.Meta["emb"].V
			var s float64
			for i := range v {
				d := float64(v[i]) - float64(q[i])
				s += d * d
			}
			if s <= eps*eps {
				want = append(want, p.ID)
			}
		}
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID }) // keep ps referenced
}

func TestSpatialJoinIndexedMatchesNested(t *testing.T) {
	db := openDB(t)
	left, _ := db.CreateCollection("sl", rectSchema())
	right, _ := db.CreateCollection("sr", rectSchema())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		left.Append(mkSpatialPatch(rng, int64(i)))
		right.Append(mkSpatialPatch(rng, int64(i)))
	}
	lps, _ := left.Patches()
	idx, err := db.BuildIndex(right, "bbox", IdxRTree)
	if err != nil {
		t.Fatal(err)
	}
	rps, _ := right.Patches()
	nested, err := SpatialJoinNested(lps, rps, "bbox", "bbox")
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := SpatialJoinIndexed(db, lps, right, idx, "bbox")
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) == 0 {
		t.Fatal("vacuous: no intersecting pairs")
	}
	key := func(ts []Tuple) map[[2]PatchID]bool {
		m := map[[2]PatchID]bool{}
		for _, tp := range ts {
			m[[2]PatchID{tp[0].ID, tp[1].ID}] = true
		}
		return m
	}
	nk, ik := key(nested), key(indexed)
	if len(nk) != len(ik) {
		t.Fatalf("nested %d pairs, indexed %d", len(nk), len(ik))
	}
	for p := range nk {
		if !ik[p] {
			t.Fatalf("indexed join missing pair %v", p)
		}
	}
}
