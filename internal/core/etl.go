package core

import (
	"repro/internal/codec"
	"repro/internal/tensor"
	"repro/internal/video"
	"repro/internal/vision"
)

// This file is the Visual ETL layer (§4): patch generators turn raw frames
// into patch collections; transformers featurize or annotate patches. All
// stages are ordinary iterator operators, so any intermediate result can
// be materialized and indexed.

// FrameRange is the optional temporal filter of the Load API (§3.1).
type FrameRange struct {
	Lo, Hi uint64 // [Lo, Hi); Hi = 0 means unbounded
}

// LoadVideo returns whole-frame patches from a stored video, pushing the
// temporal filter into the storage format when it supports it (the scan
// semantics differ per format: the Frame File seeks, the Encoded File
// decodes its whole prefix, the Segmented File seeks to the covering
// clip). The iterator's patches carry pixel payloads and frameno metadata.
func LoadVideo(source string, st video.Store, filter FrameRange) Iterator {
	hi := filter.Hi
	if hi == 0 {
		hi = ^uint64(0)
	}
	ch := make(chan *Patch, 16)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		err := st.Scan(filter.Lo, hi, func(f video.Frame) bool {
			ch <- &Patch{
				Ref:  Ref{Source: source, Frame: f.Number},
				Data: imageToTensor(f.Image),
				Meta: Metadata{
					"frameno": IntV(int64(f.Number)),
					"width":   IntV(int64(f.Image.W)),
					"height":  IntV(int64(f.Image.H)),
				},
			}
			return true
		})
		errc <- err
	}()
	return NewFuncIterator(func() (Tuple, bool, error) {
		p, ok := <-ch
		if !ok {
			if err := <-errc; err != nil {
				return nil, false, err
			}
			return nil, false, nil
		}
		return Tuple{p}, true, nil
	}, func() error {
		// Drain so the producer goroutine exits.
		for range ch {
		}
		return nil
	})
}

// FromImages wraps an in-memory image list (the PC corpus) as whole-image
// patches of the named source.
func FromImages(source string, imgs []*codec.Image) Iterator {
	i := 0
	return NewFuncIterator(func() (Tuple, bool, error) {
		if i >= len(imgs) {
			return nil, false, nil
		}
		img := imgs[i]
		p := &Patch{
			Ref:  Ref{Source: source, Frame: uint64(i)},
			Data: imageToTensor(img),
			Meta: Metadata{
				"frameno": IntV(int64(i)),
				"width":   IntV(int64(img.W)),
				"height":  IntV(int64(img.H)),
			},
		}
		i++
		return Tuple{p}, true, nil
	}, nil)
}

func imageToTensor(img *codec.Image) *tensor.Tensor {
	return tensor.FromU8(append([]uint8(nil), img.Pix...), img.H, img.W, 3)
}

// ImageToTensor converts an image to the HxWx3 uint8 payload convention.
func ImageToTensor(img *codec.Image) *tensor.Tensor { return imageToTensor(img) }

// TensorToImage converts a pixel patch payload back to an image.
func TensorToImage(t *tensor.Tensor) *codec.Image {
	if t == nil || t.DType != tensor.U8 || len(t.Shape) != 3 {
		return nil
	}
	return &codec.Image{W: t.Shape[1], H: t.Shape[0], Pix: append([]uint8(nil), t.U8s...)}
}

// TileGenerator splits each whole-frame patch into a grid of tileW x
// tileH subimage patches (§2.2: patches "can be whole images, smaller
// tiled subimages, or even subimages extracted by an object detection
// neural network"). Edge tiles are clipped to the frame. Lineage points at
// the frame patch.
func TileGenerator(tileW, tileH int, in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		frame := t[0]
		img := TensorToImage(frame.Data)
		if img == nil {
			return nil, nil
		}
		var outs []Tuple
		for y := 0; y < img.H; y += tileH {
			for x := 0; x < img.W; x += tileW {
				x2, y2 := x+tileW, y+tileH
				if x2 > img.W {
					x2 = img.W
				}
				if y2 > img.H {
					y2 = img.H
				}
				crop := img.Crop(x, y, x2, y2)
				outs = append(outs, Tuple{{
					Ref:  Ref{Source: frame.Ref.Source, Frame: frame.Ref.Frame, Parent: frame.ID},
					Data: imageToTensor(crop),
					Meta: Metadata{
						"bbox":    RectV(float64(x), float64(y), float64(x2), float64(y2)),
						"frameno": IntV(int64(frame.Ref.Frame)),
					},
				}})
			}
		}
		return outs, nil
	})
}

// DetectionSchema types the SSD-sim generator's output (§4.2): a closed
// label domain, bbox rect, score and frame lineage.
func DetectionSchema() Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "label", Kind: KindStr, Domain: vision.ClassNames()},
			{Name: "score", Kind: KindFloat},
			{Name: "bbox", Kind: KindRect},
			{Name: "frameno", Kind: KindInt},
		},
	}
}

// DetectGenerator runs the object detector over whole-frame patches and
// emits one patch per detection, cropped to the bounding box, with lineage
// back to the frame patch (§4.1 Patch Generators).
func DetectGenerator(det *vision.Detector, in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		frame := t[0]
		img := TensorToImage(frame.Data)
		if img == nil {
			return nil, nil
		}
		dets := det.Detect(img)
		outs := make([]Tuple, 0, len(dets))
		for _, d := range dets {
			crop := img.Crop(d.X1, d.Y1, d.X2, d.Y2)
			outs = append(outs, Tuple{{
				Ref:  Ref{Source: frame.Ref.Source, Frame: frame.Ref.Frame, Parent: frame.ID},
				Data: imageToTensor(crop),
				Meta: Metadata{
					"label":   StrV(d.Class.String()),
					"score":   FloatV(d.Score),
					"bbox":    RectV(float64(d.X1), float64(d.Y1), float64(d.X2), float64(d.Y2)),
					"frameno": IntV(int64(frame.Ref.Frame)),
				},
			}})
		}
		return outs, nil
	})
}

// OCRSchema types the OCR generator's output.
func OCRSchema() Schema {
	return Schema{
		Data: Pixels(0, 0),
		Fields: []Field{
			{Name: "text", Kind: KindStr},
			{Name: "score", Kind: KindFloat},
			{Name: "bbox", Kind: KindRect},
			{Name: "frameno", Kind: KindInt},
		},
	}
}

// OCRGenerator runs text recognition over patches and emits one patch per
// recognized word. When the input is a detection patch (has a bbox), the
// word's bbox is offset into frame coordinates and lineage points at the
// detection patch.
func OCRGenerator(ocr *vision.OCR, in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		src := t[0]
		img := TensorToImage(src.Data)
		if img == nil {
			return nil, nil
		}
		offX, offY := 0.0, 0.0
		if bb, ok := src.Meta["bbox"]; ok && len(bb.V) == 4 {
			offX, offY = float64(bb.V[0]), float64(bb.V[1])
		}
		words := ocr.Recognize(img)
		outs := make([]Tuple, 0, len(words))
		for _, w := range words {
			crop := img.Crop(w.X1, w.Y1, w.X2, w.Y2)
			outs = append(outs, Tuple{{
				Ref:  Ref{Source: src.Ref.Source, Frame: src.Ref.Frame, Parent: src.ID},
				Data: imageToTensor(crop),
				Meta: Metadata{
					"text":  StrV(w.Text),
					"score": FloatV(w.Score),
					"bbox": RectV(offX+float64(w.X1), offY+float64(w.Y1),
						offX+float64(w.X2), offY+float64(w.Y2)),
					"frameno": IntV(int64(src.Ref.Frame)),
				},
			}})
		}
		return outs, nil
	})
}

// HistogramTransformer adds a "hist" color-histogram vector to each patch
// (§4.1 Transformers; the low-dimensional matching feature).
func HistogramTransformer(in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		p := t[0]
		img := TensorToImage(p.Data)
		if img != nil {
			p.Meta["hist"] = VecV(vision.ColorHistogram(img))
		}
		return []Tuple{t}, nil
	})
}

// GridHistogramTransformer adds a "ghist" feature to each patch: a spatial
// grid histogram projected to 64 dimensions (the whole-image
// near-duplicate feature q1 matches on; low-dimensional per the paper's
// Example 2 so multidimensional indexes stay effective).
func GridHistogramTransformer(grid int, in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		p := t[0]
		img := TensorToImage(p.Data)
		if img != nil {
			p.Meta["ghist"] = VecV(vision.RandomProject(vision.GridHistogram(img, grid), 64))
		}
		return []Tuple{t}, nil
	})
}

// transformBatchSize is the tuple batch transformers accumulate before
// one fused model invocation.
const transformBatchSize = 32

// BatchTransform buffers up to size tuples and maps them through fn
// together — how transformers batch their model inference.
func BatchTransform(in Iterator, size int, fn func([]Tuple) error) Iterator {
	var pending []Tuple
	done := false
	return NewFuncIterator(func() (Tuple, bool, error) {
		for {
			if len(pending) > 0 {
				t := pending[0]
				pending = pending[1:]
				return t, true, nil
			}
			if done {
				return nil, false, nil
			}
			batch := make([]Tuple, 0, size)
			for len(batch) < size {
				t, ok, err := in.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					done = true
					break
				}
				batch = append(batch, t)
			}
			if len(batch) == 0 {
				return nil, false, nil
			}
			if err := fn(batch); err != nil {
				return nil, false, err
			}
			pending = batch
		}
	}, in.Close)
}

// EmbedTransformer adds an "emb" backbone embedding to each patch (the
// high-dimensional matching feature; burns the NN inference the ETL phase
// is dominated by). Inference is batched across tuples.
func EmbedTransformer(e *vision.Embedder, in Iterator) Iterator {
	return BatchTransform(in, transformBatchSize, func(batch []Tuple) error {
		var imgs []*codec.Image
		var idx []int
		for i, t := range batch {
			if img := TensorToImage(t[0].Data); img != nil {
				imgs = append(imgs, img)
				idx = append(idx, i)
			}
		}
		if len(imgs) == 0 {
			return nil
		}
		embs := e.EmbedBatch(imgs)
		for j, i := range idx {
			batch[i][0].Meta["emb"] = VecV(embs[j])
		}
		return nil
	})
}

// DepthTransformer adds a "depth" prediction to each patch using its bbox
// geometry and pixels. Inference is batched across tuples.
func DepthTransformer(dm *vision.DepthModel, in Iterator) Iterator {
	return BatchTransform(in, transformBatchSize, func(batch []Tuple) error {
		var imgs []*codec.Image
		var boxes [][4]int
		var idx []int
		for i, t := range batch {
			img := TensorToImage(t[0].Data)
			bb, ok := t[0].Meta["bbox"]
			if img != nil && ok && len(bb.V) == 4 {
				imgs = append(imgs, img)
				boxes = append(boxes, [4]int{int(bb.V[0]), int(bb.V[1]), int(bb.V[2]), int(bb.V[3])})
				idx = append(idx, i)
			}
		}
		if len(imgs) == 0 {
			return nil
		}
		depths := dm.PredictBatch(imgs, boxes)
		for j, i := range idx {
			batch[i][0].Meta["depth"] = FloatV(depths[j])
		}
		return nil
	})
}

// DropData strips the dense payload (after featurization, queries that
// only touch metadata don't need pixels; §4.1 compression).
func DropData(in Iterator) Iterator {
	return Transform(in, func(t Tuple) ([]Tuple, error) {
		for _, p := range t {
			p.Data = nil
		}
		return []Tuple{t}, nil
	})
}
