package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the fixed upper bounds (seconds) for
// request-latency histograms: 100µs up to 10s in roughly 1-2.5-5
// steps, wide enough for both in-memory point lookups and cold
// scattered joins.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FanoutBuckets bounds small-integer distributions (scatter fan-out
// width, batch sizes).
var FanoutBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Counter is a monotonically increasing metric. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution with atomic per-bucket
// counts. Bucket i counts observations <= bounds[i]; one extra
// overflow bucket counts the rest (+Inf).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) by locating the bucket
// holding the target rank and interpolating linearly within it. The
// overflow bucket returns the top finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return bucketQuantile(h.bounds, counts, total, q)
}

// bucketQuantile is the shared bucket-interpolation core, also used by
// PromHistogramQuantile on scraped data. counts are per-bucket (not
// cumulative), len(counts) == len(bounds)+1.
func bucketQuantile(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(bounds) {
				// Overflow bucket: no finite upper edge.
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// metricKind discriminates family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one (labels -> value) instance inside a family.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  func() float64
	ctrF   func() float64 // function-backed counter (derived totals)
	hist   *Histogram
}

// family is one named metric with help text, a type, and its series in
// insertion order.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	index  map[string]*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Get-or-create methods panic on a name registered twice
// with different types — that is a programming error, not runtime
// input.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

func (r *Registry) get(name, help string, kind metricKind, labels map[string]string) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, index: make(map[string]*series)}
		r.families = append(r.families, f)
		r.index[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	s := f.index[key]
	if s == nil {
		s = &series{labels: key}
		f.series = append(f.series, s)
		f.index[key] = s
	}
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use. labels may be nil.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	s := r.get(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil && s.ctrF == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for totals already tracked elsewhere (device kernel
// counts, nanosecond accumulators exported as seconds).
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	s := r.get(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.ctrF = fn
	s.ctr = nil
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	s := r.get(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gauge = fn
}

// Histogram returns the fixed-bucket histogram named name, creating it
// with the given bucket upper bounds on first use.
func (r *Registry) Histogram(name, help string, labels map[string]string, buckets []float64) *Histogram {
	s := r.get(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// renderLabels renders a deterministic `{k="v",...}` suffix (sorted by
// key) or "" for no labels.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel inserts one extra label pair into a pre-rendered label
// set (for histogram `le`).
func mergeLabel(rendered, key, val string) string {
	pair := fmt.Sprintf("%s=%q", key, val)
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				v := 0.0
				if s.ctrF != nil {
					v = s.ctrF()
				} else if s.ctr != nil {
					v = float64(s.ctr.Value())
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v)); err != nil {
					return err
				}
			case kindGauge:
				v := 0.0
				if s.gauge != nil {
					v = s.gauge()
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v)); err != nil {
					return err
				}
			case kindHistogram:
				h := s.hist
				if h == nil {
					continue
				}
				var cum int64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					lbl := mergeLabel(s.labels, "le", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl, cum); err != nil {
						return err
					}
				}
				cum += h.buckets[len(h.bounds)].Load()
				lbl := mergeLabel(s.labels, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(h.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, cum); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// formatFloat renders a value the way Prometheus expects: integers
// without a decimal point, everything else in minimal form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
