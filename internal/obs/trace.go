// Package obs is DeepLens's dependency-light observability layer:
// per-query traces (timed spans carried on context.Context), a metrics
// registry of lock-cheap counters/gauges and fixed-bucket latency
// histograms exported in Prometheus text format, a bounded in-memory
// slow-query log, and the shared latency-summary helper the load
// generator and benchmark tools derive percentiles from.
//
// Everything is safe for concurrent use and nil-tolerant on the hot
// path: a nil *Trace (tracing off) makes every span operation a no-op
// branch, so instrumentation sites never check whether tracing is on.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// maxSpans bounds one trace's span count: a runaway instrumentation
// site (one span per kernel in a huge join) degrades to a drop counter
// instead of unbounded memory.
const maxSpans = 512

// Span is one timed, attributed interval of a trace. Start and
// duration are microseconds; Start is the offset from the trace's
// start, so spans are self-contained in JSON.
type Span struct {
	Name    string            `json:"name"`
	StartUS float64           `json:"start_us"`
	DurUS   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceData is a trace's immutable snapshot — what a traced /query
// response carries and what the slow-query log retains.
type TraceData struct {
	ID    string  `json:"id"`
	DurUS float64 `json:"dur_us"`
	Spans []Span  `json:"spans"`
	// Dropped counts spans discarded past the per-trace cap.
	Dropped int `json:"dropped_spans,omitempty"`
}

// Trace accumulates the timed spans of one request. Spans may be
// recorded from any goroutine (scatter fragments run in parallel). All
// methods are safe on a nil receiver, so call sites need no
// tracing-enabled branch.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace starts a trace identified by id, anchored at now.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's anchor time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// AddSpan records a completed interval. Nil-safe; attrs may be nil and
// is retained (callers must not mutate it afterwards).
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration, attrs map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{
		Name:    name,
		StartUS: float64(start.Sub(t.start).Nanoseconds()) / 1e3,
		DurUS:   float64(dur.Nanoseconds()) / 1e3,
		Attrs:   attrs,
	})
}

// Begin opens a span ending at the matching SpanHandle.End. Returns a
// nil handle on a nil trace (every handle method is nil-safe too).
func (t *Trace) Begin(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, name: name, start: time.Now(), idx: -1}
}

// Data snapshots the trace; DurUS is the wall time since the trace
// started (call it when the request completes). Returns nil on nil.
func (t *Trace) Data() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return &TraceData{
		ID:      t.id,
		DurUS:   float64(time.Since(t.start).Nanoseconds()) / 1e3,
		Spans:   spans,
		Dropped: t.dropped,
	}
}

// SpanHandle is one in-progress (or just-ended) span. Attr may be
// called before or after End: plan labels are often only known after
// the interval being timed has closed.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Time
	attrs map[string]string
	idx   int // index into t.spans once ended, -1 before
	ended bool
}

// Attr sets one attribute, before or after End. Returns the handle for
// chaining; nil-safe.
func (h *SpanHandle) Attr(key, val string) *SpanHandle {
	if h == nil {
		return nil
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	if h.ended {
		if h.idx >= 0 {
			sp := &h.t.spans[h.idx]
			if sp.Attrs == nil {
				sp.Attrs = make(map[string]string, 4)
			}
			sp.Attrs[key] = val
		}
		return h
	}
	if h.attrs == nil {
		h.attrs = make(map[string]string, 4)
	}
	h.attrs[key] = val
	return h
}

// AttrInt is Attr for integer values.
func (h *SpanHandle) AttrInt(key string, val int64) *SpanHandle {
	return h.Attr(key, strconv.FormatInt(val, 10))
}

// End records the span. Calling End twice records once; nil-safe.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	dur := time.Since(h.start)
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	if h.ended {
		return
	}
	h.ended = true
	if len(h.t.spans) >= maxSpans {
		h.t.dropped++
		return
	}
	h.idx = len(h.t.spans)
	h.t.spans = append(h.t.spans, Span{
		Name:    h.name,
		StartUS: float64(h.start.Sub(h.t.start).Nanoseconds()) / 1e3,
		DurUS:   float64(dur.Nanoseconds()) / 1e3,
		Attrs:   h.attrs,
	})
}

// ctxKey keys the trace on a context.
type ctxKey struct{}

// WithTrace returns ctx carrying tr (a nil tr returns ctx unchanged).
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the context's trace, or nil when untraced.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
