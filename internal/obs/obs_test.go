package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("req-1")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", got)
	}

	h := tr.Begin("plan")
	h.Attr("cache", "miss")
	time.Sleep(time.Millisecond)
	h.End()
	h.Attr("plan", "column-scan") // attr after End must land on the recorded span
	h.End()                       // double End must not duplicate

	tr.AddSpan("queue", tr.Start(), 2*time.Millisecond, map[string]string{"depth": "3"})

	d := tr.Data()
	if d.ID != "req-1" {
		t.Fatalf("trace id = %q", d.ID)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(d.Spans))
	}
	plan := d.Spans[0]
	if plan.Name != "plan" || plan.Attrs["cache"] != "miss" || plan.Attrs["plan"] != "column-scan" {
		t.Fatalf("plan span = %+v", plan)
	}
	if plan.DurUS < 500 {
		t.Fatalf("plan span duration %.1fus, want >= 500us", plan.DurUS)
	}
	if d.Spans[1].Name != "queue" || d.Spans[1].Attrs["depth"] != "3" {
		t.Fatalf("queue span = %+v", d.Spans[1])
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddSpan("x", time.Now(), time.Millisecond, nil)
	h := tr.Begin("y")
	h.Attr("k", "v").AttrInt("n", 7)
	h.End()
	if tr.Data() != nil {
		t.Fatal("nil trace Data should be nil")
	}
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	if ctx := WithTrace(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithTrace(nil) should carry no trace")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan("s", tr.Start(), time.Microsecond, nil)
	}
	d := tr.Data()
	if len(d.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(d.Spans), maxSpans)
	}
	if d.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", d.Dropped)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				h := tr.Begin("frag")
				h.AttrInt("j", int64(j))
				h.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Data().Spans); got != 160 {
		t.Fatalf("spans = %d, want 160", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over [0.5, 7.5]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// 12 full 0..7 cycles plus {0,1,2,3}, each shifted by 0.5.
	if math.Abs(h.Sum()-392) > 1e-9 {
		t.Fatalf("sum = %g, want 392", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Fatalf("p50 = %g, want within (2,4]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4 || p99 > 8 {
		t.Fatalf("p99 = %g, want within (4,8]", p99)
	}
	// Overflow bucket clamps to the top finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 1 {
		t.Fatalf("overflow quantile = %g, want 1", q)
	}
}

func TestSummaryMatchesLegacyPercentiles(t *testing.T) {
	// The loadgen's historical pct(): sort, index int(q*(n-1)).
	s := NewSummary(0)
	for _, v := range []float64{9, 1, 5, 3, 7} {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	if got := s.Quantile(0.95); got != 7 { // int(0.95*4) = 3 -> sorted[3] = 7
		t.Fatalf("p95 = %g, want 7", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("p100 = %g, want 9", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("min = %g, want 1", got)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %g, want 5", got)
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	l.Observe(5*time.Millisecond, "fast", "", nil) // below threshold
	for i, q := range []string{"a", "b", "c", "d"} {
		l.Observe(time.Duration(11+i)*time.Millisecond, q, "fp", nil)
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	// Newest first; "a" was evicted.
	if got[0].Query != "d" || got[1].Query != "c" || got[2].Query != "b" {
		t.Fatalf("order = %q %q %q", got[0].Query, got[1].Query, got[2].Query)
	}

	var nilLog *SlowLog
	nilLog.Observe(time.Second, "x", "", nil)
	if nilLog.Snapshot() != nil {
		t.Fatal("nil slowlog snapshot should be nil")
	}
	off := NewSlowLog(0, 4)
	off.Observe(time.Hour, "x", "", nil)
	if len(off.Snapshot()) != 0 {
		t.Fatal("disabled slowlog must not record")
	}
}

func TestRegistryPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("deeplens_queries_total", "Total queries.", nil)
	c.Add(42)
	r.Counter("deeplens_cache_ops_total", "Cache ops.", map[string]string{"cache": "result", "op": "hit"}).Add(7)
	r.GaugeFunc("deeplens_queue_depth", "Current depth.", nil, func() float64 { return 3 })
	h := r.Histogram("deeplens_query_duration_seconds", "Latency.", nil, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	exp, err := CheckExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("CheckExposition: %v\n%s", err, text)
	}
	if exp.Types["deeplens_query_duration_seconds"] != "histogram" {
		t.Fatalf("type = %q", exp.Types["deeplens_query_duration_seconds"])
	}
	if v, ok := exp.Value("deeplens_queries_total", nil); !ok || v != 42 {
		t.Fatalf("queries_total = %g, %v", v, ok)
	}
	if v, ok := exp.Value("deeplens_cache_ops_total", map[string]string{"cache": "result", "op": "hit"}); !ok || v != 7 {
		t.Fatalf("labeled counter = %g, %v", v, ok)
	}
	if v, ok := exp.Value("deeplens_queue_depth", nil); !ok || v != 3 {
		t.Fatalf("gauge = %g, %v", v, ok)
	}
	if v, ok := exp.Value("deeplens_query_duration_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("hist count = %g, %v", v, ok)
	}
	if v, ok := exp.Value("deeplens_query_duration_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %g, %v", v, ok)
	}
	if q, ok := PromHistogramQuantile(exp, "deeplens_query_duration_seconds", nil, 0.5); !ok || q <= 0.1 || q > 1 {
		t.Fatalf("scraped p50 = %g, %v", q, ok)
	}

	// Same counter handle again — must be the same series, not a dup.
	if got := r.Counter("deeplens_queries_total", "Total queries.", nil); got != c {
		t.Fatal("re-registering a counter must return the same handle")
	}
}

func TestCheckExpositionRejectsDuplicates(t *testing.T) {
	dup := "a_total 1\na_total 2\n"
	if _, err := CheckExposition(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate series must be rejected")
	}
	bad := "9bad_name 1\n"
	if _, err := CheckExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid metric name must be rejected")
	}
	noval := "a_total\n"
	if _, err := CheckExposition(strings.NewReader(noval)); err == nil {
		t.Fatal("missing value must be rejected")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(seed*j%97) / 100)
			}
		}(i + 1)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}
