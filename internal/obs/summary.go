package obs

import (
	"sort"
	"time"
)

// Summary accumulates raw samples and answers exact order statistics.
// It is the client-side counterpart to Histogram: the load generator
// and benchmark tools record every latency and report nearest-rank
// percentiles, while the server buckets. Not safe for concurrent use —
// callers own the synchronization (the loadgen aggregates per-phase
// under its own mutex).
type Summary struct {
	samples []float64
	sorted  bool
}

// NewSummary returns a summary with capacity hint n.
func NewSummary(n int) *Summary {
	return &Summary{samples: make([]float64, 0, n)}
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// ObserveDuration records a latency sample in seconds.
func (s *Summary) ObserveDuration(d time.Duration) {
	s.Observe(d.Seconds())
}

// Merge appends all of o's samples.
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	s.samples = append(s.samples, o.samples...)
	s.sorted = false
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 {
	var t float64
	for _, v := range s.samples {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean (0 with no samples).
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.samples))
}

// Min returns the smallest sample (0 with no samples) — the robust
// statistic the min-wall benchmarks report.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Quantile returns the nearest-rank q-quantile (0..1): index
// int(q*(n-1)) of the sorted samples, matching the percentile
// semantics the load generator has always reported. 0 with no samples.
func (s *Summary) Quantile(q float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.sort()
	return s.samples[int(q*float64(n-1))]
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}
