package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed series line of a text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromExposition is the parsed form of a /metrics page: declared types
// per family plus every sample, in order.
type PromExposition struct {
	Types   map[string]string // family -> counter|gauge|histogram|...
	Samples []PromSample
}

// Get returns all samples named name, in exposition order.
func (e *PromExposition) Get(name string) []PromSample {
	var out []PromSample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the first sample named name whose labels include all
// of want, and whether one was found.
func (e *PromExposition) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseProm parses Prometheus text exposition format. It accepts the
// subset this repo emits (HELP/TYPE comments, optional labels, plain
// float values) and errors on anything malformed.
func ParseProm(r io.Reader) (*PromExposition, error) {
	exp := &PromExposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				if _, dup := exp.Types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Split off the metric name (up to '{' or whitespace).
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample line: %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parsePromLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value: %q", line)
	}
	// A timestamp suffix would appear as a second field; we don't emit
	// them, but tolerate by taking the first field as the value.
	val := strings.Fields(rest)[0]
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", val)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		// Find the closing quote, honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		val, err := strconv.Unquote(rest[:i+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
		body = strings.TrimSpace(rest)
	}
	return labels, nil
}

func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

// CheckExposition parses r and additionally rejects duplicate series
// (same name + identical label set appearing twice) and samples whose
// family kind contradicts their suffix. It returns the parsed
// exposition on success — the contract the CI smoke step enforces
// against a live /metrics page.
func CheckExposition(r io.Reader) (*PromExposition, error) {
	exp, err := ParseProm(r)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(exp.Samples))
	for _, s := range exp.Samples {
		key := s.Name + renderSorted(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}
	// Histogram families must expose _bucket/_sum/_count triples.
	for name, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if len(exp.Get(name+suffix)) == 0 {
				return nil, fmt.Errorf("histogram %s missing %s series", name, suffix)
			}
		}
	}
	return exp, nil
}

func renderSorted(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// PromHistogramQuantile computes the q-quantile of a scraped
// histogram family from its _bucket samples (cumulative counts with
// an `le` label), using the same bucket interpolation as
// Histogram.Quantile. The loadgen uses this to cross-check the
// server's latency distribution against its own client-side summary.
func PromHistogramQuantile(exp *PromExposition, name string, extra map[string]string, q float64) (float64, bool) {
	type edge struct {
		le  float64
		cum int64
	}
	var edges []edge
	for _, s := range exp.Get(name + "_bucket") {
		match := true
		for k, v := range extra {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le := s.Labels["le"]
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return 0, false
			}
			bound = v
		}
		edges = append(edges, edge{le: bound, cum: int64(s.Value)})
	}
	if len(edges) == 0 {
		return 0, false
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	bounds := make([]float64, 0, len(edges)-1)
	counts := make([]int64, len(edges))
	var prev int64
	for i, e := range edges {
		if !math.IsInf(e.le, 1) {
			bounds = append(bounds, e.le)
		}
		counts[i] = e.cum - prev
		prev = e.cum
	}
	total := edges[len(edges)-1].cum
	if total == 0 {
		return 0, false
	}
	return bucketQuantile(bounds, counts, total, q), true
}
