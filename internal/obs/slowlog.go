package obs

import (
	"sync"
	"time"
)

// SlowEntry is one retained slow query.
type SlowEntry struct {
	Time        time.Time  `json:"time"`
	DurMS       float64    `json:"duration_ms"`
	Query       string     `json:"query"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Trace       *TraceData `json:"trace,omitempty"`
}

// SlowLog is a bounded ring buffer of queries slower than a threshold.
// A threshold <= 0 disables recording entirely.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowEntry // ring, len == cap once full
	next    int         // write cursor
	full    bool
}

// NewSlowLog retains the most recent size entries at or over
// threshold. size <= 0 defaults to 64.
func NewSlowLog(threshold time.Duration, size int) *SlowLog {
	if size <= 0 {
		size = 64
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowEntry, 0, size)}
}

// Threshold returns the configured slow threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records the query if it meets the threshold. Nil-safe.
func (l *SlowLog) Observe(dur time.Duration, query, fingerprint string, trace *TraceData) {
	if l == nil || l.threshold <= 0 || dur < l.threshold {
		return
	}
	e := SlowEntry{
		Time:        time.Now(),
		DurMS:       float64(dur.Nanoseconds()) / 1e6,
		Query:       query,
		Fingerprint: fingerprint,
		Trace:       trace,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
		l.next = len(l.entries) % cap(l.entries)
		l.full = len(l.entries) == cap(l.entries) && l.next == 0
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % cap(l.entries)
	l.full = true
}

// Snapshot returns the retained entries newest-first. Nil-safe.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.entries)
	if n == 0 {
		return nil
	}
	out := make([]SlowEntry, 0, n)
	// Walk backwards from the newest write.
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + n) % n
		out = append(out, l.entries[idx])
	}
	return out
}
