package balltree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		pts[i] = Point{Vec: v, ID: uint64(i)}
	}
	return pts
}

func bruteRange(pts []Point, q []float32, eps float64) []uint64 {
	var ids []uint64
	for _, p := range pts {
		if Dist(p.Vec, q) <= eps {
			ids = append(ids, p.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func treeRange(t *Tree, q []float32, eps float64) []uint64 {
	var ids []uint64
	t.RangeSearch(q, eps, func(p Point, _ float64) bool { ids = append(ids, p.ID); return true })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestEmpty(t *testing.T) {
	tr, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.RangeSearch([]float32{0}, 1, func(Point, float64) bool {
		t.Fatal("callback on empty tree")
		return true
	})
	if nn := tr.KNN([]float32{0}, 3); nn != nil {
		t.Fatalf("KNN on empty tree = %v", nn)
	}
}

func TestMixedDimensionsRejected(t *testing.T) {
	pts := []Point{{Vec: []float32{1, 2}}, {Vec: []float32{1, 2, 3}}}
	if _, err := Build(pts); err == nil {
		t.Fatal("mixed dims accepted")
	}
}

func TestRangeMatchesBruteAcrossDims(t *testing.T) {
	for _, dim := range []int{2, 4, 16, 64} {
		rng := rand.New(rand.NewSource(int64(dim)))
		pts := randPoints(rng, 3000, dim)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			q := make([]float32, dim)
			for d := range q {
				q[d] = float32(rng.NormFloat64())
			}
			eps := 0.5 + rng.Float64()*float64(dim)/4
			want := bruteRange(pts, q, eps)
			got := treeRange(tr, q, eps)
			if len(want) != len(got) {
				t.Fatalf("dim %d trial %d: range %d ids, want %d", dim, trial, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("dim %d trial %d: id mismatch at %d", dim, trial, i)
				}
			}
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 2000, 8)
	tr, _ := Build(pts)
	for trial := 0; trial < 50; trial++ {
		q := make([]float32, 8)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		k := 1 + rng.Intn(10)
		got := tr.KNN(q, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		// Reference: sort all by distance.
		type dp struct {
			d  float64
			id uint64
		}
		all := make([]dp, len(pts))
		for i, p := range pts {
			all[i] = dp{Dist(p.Vec, q), p.ID}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := range got {
			if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %g, want %g", trial, i, got[i].Dist, all[i].d)
			}
		}
		// Increasing order.
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
			t.Fatal("KNN result not sorted")
		}
	}
}

func TestKNNMoreThanN(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(1)), 5, 3)
	tr, _ := Build(pts)
	got := tr.KNN([]float32{0, 0, 0}, 50)
	if len(got) != 5 {
		t.Fatalf("KNN(k=50) over 5 points returned %d", len(got))
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{Vec: []float32{1, 2, 3}, ID: uint64(i)}
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	got := treeRange(tr, []float32{1, 2, 3}, 0)
	if len(got) != 500 {
		t.Fatalf("identical points: found %d of 500", len(got))
	}
}

func TestEarlyStop(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(2)), 1000, 4)
	tr, _ := Build(pts)
	n := 0
	tr.RangeSearch(pts[0].Vec, 100, func(Point, float64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property: the reported distance matches Dist and is within eps.
func TestQuickReportedDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 800, 6)
	tr, _ := Build(pts)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := make([]float32, 6)
		for d := range q {
			q[d] = float32(r.NormFloat64())
		}
		eps := r.Float64() * 3
		ok := true
		tr.RangeSearch(q, eps, func(p Point, d float64) bool {
			if d > eps || math.Abs(d-Dist(p.Vec, q)) > 1e-9 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every indexed point is its own nearest neighbor at eps=0.
func TestQuickSelfMatch(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(4)), 500, 10)
	tr, _ := Build(pts)
	for _, p := range pts {
		found := false
		tr.RangeSearch(p.Vec, 1e-12, func(got Point, _ float64) bool {
			if got.ID == p.ID {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("point %d not found by self-query", p.ID)
		}
	}
}
