// Package balltree implements the metric ball tree DeepLens uses for
// Euclidean threshold ("similarity") queries over high-dimensional patch
// features — the index behind the image-matching queries q1 and q4 and the
// on-the-fly index similarity join. Following Kumar et al.'s finding cited
// by the paper, the ball tree remains effective where KD-trees and R-trees
// degrade with dimensionality; its non-linear build/probe cost as the
// indexed relation grows is exactly what Figure 7 studies.
package balltree

import (
	"container/heap"
	"fmt"
	"math"
)

// Point is an indexed vector with a caller-assigned identifier.
type Point struct {
	Vec []float32
	ID  uint64
}

const leafSize = 16

type node struct {
	center []float32
	radius float64
	pts    []Point // leaf only
	left   *node
	right  *node
}

// Tree is an immutable ball tree built over a point set.
type Tree struct {
	dim  int
	root *node
	size int
}

// Dist returns the Euclidean distance between two equal-length vectors.
func Dist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// distWithin returns the distance if it is <= limit, or (0, false) after
// abandoning the accumulation early — the leaf-scan fast path for tight
// range queries.
func distWithin(a, b []float32, limit float64) (float64, bool) {
	limit2 := limit * limit
	var s float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		for k := i; k < i+8; k++ {
			d := float64(a[k]) - float64(b[k])
			s += d * d
		}
		if s > limit2 {
			return 0, false
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	if s > limit2 {
		return 0, false
	}
	return math.Sqrt(s), true
}

// Build constructs a ball tree over pts (copied slice header, shared
// backing vectors). All vectors must share one dimensionality.
func Build(pts []Point) (*Tree, error) {
	if len(pts) == 0 {
		return &Tree{}, nil
	}
	dim := len(pts[0].Vec)
	for _, p := range pts {
		if len(p.Vec) != dim {
			return nil, fmt.Errorf("balltree: mixed dimensions %d and %d", dim, len(p.Vec))
		}
	}
	cp := append([]Point(nil), pts...)
	return &Tree{dim: dim, root: build(cp), size: len(pts)}, nil
}

func centroid(pts []Point, dim int) []float32 {
	c := make([]float32, dim)
	for _, p := range pts {
		for i, v := range p.Vec {
			c[i] += v
		}
	}
	inv := 1 / float32(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}

func build(pts []Point) *node {
	dim := len(pts[0].Vec)
	c := centroid(pts, dim)
	var radius float64
	for _, p := range pts {
		if d := Dist(c, p.Vec); d > radius {
			radius = d
		}
	}
	n := &node{center: c, radius: radius}
	if len(pts) <= leafSize {
		n.pts = pts
		return n
	}
	// Split: farthest point from centroid seeds the left ball; farthest
	// point from that seed seeds the right ball.
	var l int
	var ld float64
	for i, p := range pts {
		if d := Dist(c, p.Vec); d >= ld {
			ld, l = d, i
		}
	}
	var r int
	var rd float64
	for i, p := range pts {
		if d := Dist(pts[l].Vec, p.Vec); d >= rd {
			rd, r = d, i
		}
	}
	if l == r { // all points identical: force a leaf
		n.pts = pts
		return n
	}
	lv, rv := pts[l].Vec, pts[r].Vec
	// Partition in place by closer seed, keeping both sides non-empty.
	i, j := 0, len(pts)-1
	for i <= j {
		if Dist(lv, pts[i].Vec) <= Dist(rv, pts[i].Vec) {
			i++
		} else {
			pts[i], pts[j] = pts[j], pts[i]
			j--
		}
	}
	if i == 0 || i == len(pts) { // degenerate partition: split by halves
		i = len(pts) / 2
	}
	n.left = build(pts[:i])
	n.right = build(pts[i:])
	return n
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Dim returns the vector dimensionality (0 when empty).
func (t *Tree) Dim() int { return t.dim }

// RangeSearch calls fn for every point within radius eps of q (inclusive).
// fn returning false stops the search.
func (t *Tree) RangeSearch(q []float32, eps float64, fn func(Point, float64) bool) {
	if t.root == nil {
		return
	}
	rangeSearch(t.root, q, eps, fn)
}

func rangeSearch(n *node, q []float32, eps float64, fn func(Point, float64) bool) bool {
	if _, ok := distWithin(n.center, q, n.radius+eps); !ok {
		return true // ball cannot contain any match
	}
	if n.pts != nil {
		for _, p := range n.pts {
			if d, ok := distWithin(p.Vec, q, eps); ok {
				if !fn(p, d) {
					return false
				}
			}
		}
		return true
	}
	if !rangeSearch(n.left, q, eps, fn) {
		return false
	}
	return rangeSearch(n.right, q, eps, fn)
}

// Neighbor is a kNN result.
type Neighbor struct {
	Point Point
	Dist  float64
}

// maxHeap over neighbor distances.
type nnHeap []Neighbor

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNN returns the k nearest neighbors of q in increasing distance order.
func (t *Tree) KNN(q []float32, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	h := &nnHeap{}
	knn(t.root, q, k, h)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	return out
}

func knn(n *node, q []float32, k int, h *nnHeap) {
	dc := Dist(n.center, q)
	if h.Len() == k && dc-n.radius > (*h)[0].Dist {
		return
	}
	if n.pts != nil {
		for _, p := range n.pts {
			d := Dist(p.Vec, q)
			if h.Len() < k {
				heap.Push(h, Neighbor{Point: p, Dist: d})
			} else if d < (*h)[0].Dist {
				(*h)[0] = Neighbor{Point: p, Dist: d}
				heap.Fix(h, 0)
			}
		}
		return
	}
	// Visit the child whose center is closer first for tighter pruning.
	a, b := n.left, n.right
	if Dist(a.center, q) > Dist(b.center, q) {
		a, b = b, a
	}
	knn(a, q, k, h)
	knn(b, q, k, h)
}
