package exec

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func randMat(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

// refGEMM is the trusted reference.
func refGEMM(m, n, k int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] += s
		}
	}
}

func TestGEMMAgreesAcrossDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fast := NewGPU(GPUProfile{LaunchLatency: 0, BytesPerSecond: math.Inf(1)})
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {33, 17, 65}, {100, 40, 60}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		want := make([]float32, m*n)
		refGEMM(m, n, k, a, b, want)
		for _, dev := range []Device{New(CPU), New(AVX), fast} {
			got := make([]float32, m*n)
			dev.GEMM(m, n, k, a, b, got)
			for i := range want {
				if math.Abs(float64(want[i]-got[i])) > 1e-3 {
					t.Fatalf("%v GEMM(%v) mismatch at %d: %g vs %g", dev.Kind(), dims, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGEMMAccumulates(t *testing.T) {
	dev := New(CPU)
	a := []float32{1, 0, 0, 1} // identity
	b := []float32{2, 3, 4, 5}
	c := []float32{10, 10, 10, 10}
	dev.GEMM(2, 2, 2, a, b, c)
	want := []float32{12, 13, 14, 15}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPairwiseAgreesAcrossDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fast := NewGPU(GPUProfile{LaunchLatency: 0, BytesPerSecond: math.Inf(1)})
	for _, dims := range [][3]int{{1, 1, 4}, {10, 20, 8}, {37, 53, 16}, {64, 64, 3}} {
		lx, ly, d := dims[0], dims[1], dims[2]
		x := randMat(rng, lx*d)
		y := randMat(rng, ly*d)
		want := make([]float32, lx*ly)
		for i := 0; i < lx; i++ {
			for j := 0; j < ly; j++ {
				var s float32
				for p := 0; p < d; p++ {
					dd := x[i*d+p] - y[j*d+p]
					s += dd * dd
				}
				want[i*ly+j] = s
			}
		}
		for _, dev := range []Device{New(CPU), New(AVX), fast} {
			got := make([]float32, lx*ly)
			dev.PairwiseSqDist(x, y, lx, ly, d, got)
			for i := range want {
				if math.Abs(float64(want[i]-got[i])) > 1e-3 {
					t.Fatalf("%v pairwise(%v) mismatch at %d", dev.Kind(), dims, i)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	dev := New(CPU)
	a := make([]float32, 4)
	dev.GEMM(2, 2, 1, a[:2], a[:2], a)
	dev.PairwiseSqDist(a[:2], a[:2], 1, 1, 2, a[:1])
	st := dev.Stats()
	if st.Kernels != 2 {
		t.Fatalf("Kernels = %d, want 2", st.Kernels)
	}
	if st.FLOPs <= 0 {
		t.Fatalf("FLOPs = %d", st.FLOPs)
	}
}

func TestGPUChargesOverhead(t *testing.T) {
	dev := NewGPU(GPUProfile{LaunchLatency: time.Millisecond, BytesPerSecond: 1e12})
	a := make([]float32, 16)
	start := time.Now()
	dev.GEMM(4, 4, 1, a[:4], a[:4], a)
	if time.Since(start) < time.Millisecond {
		t.Fatal("GPU launch latency not charged")
	}
	if dev.Stats().Overhead < time.Millisecond {
		t.Fatalf("Overhead = %v", dev.Stats().Overhead)
	}
}

func TestGPUFasterOnLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	// On a large GEMM the simulated GPU (all cores) should beat scalar CPU
	// despite its launch overhead; this is the Figure 8 ETL-side shape.
	const m, n, k = 256, 256, 256
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)

	cpu := New(CPU)
	gpu := New(GPU)
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)

	t0 := time.Now()
	cpu.GEMM(m, n, k, a, b, c1)
	cpuDur := time.Since(t0)

	t0 = time.Now()
	gpu.GEMM(m, n, k, a, b, c2)
	gpuDur := time.Since(t0)

	if gpuDur > cpuDur {
		t.Logf("warning: GPU (%v) not faster than CPU (%v) on %dx%dx%d GEMM", gpuDur, cpuDur, m, n, k)
	}
}

func TestBufferSizePanics(t *testing.T) {
	dev := New(CPU)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized GEMM buffers did not panic")
		}
	}()
	dev.GEMM(10, 10, 10, make([]float32, 5), make([]float32, 100), make([]float32, 100))
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || AVX.String() != "AVX" || GPU.String() != "GPU" {
		t.Fatal("Kind.String broken")
	}
}
