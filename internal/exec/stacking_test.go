package exec

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Fused GEMM stacking tests: when batched GEMMs share the rhs operand
// (one set of weights probed by concurrent queries), the launch stage
// concatenates their lhs rows into one physical product. The contract is
// the batcher's usual one — byte-identical outputs — plus the stacking
// counters in BatcherStats.

// TestStackedGEMMBitIdentical: submitters sharing one rhs must stack and
// still produce byte-for-byte the sequential unfused results, including
// non-zero initial C (GEMM accumulates; the stack copies C in and out).
func TestStackedGEMMBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][3]int{{1, 8, 16}, {3, 5, 7}, {40, 17, 65}, {100, 33, 24}}
	for _, dims := range shapes {
		m, n, k := dims[0], dims[1], dims[2]
		const submitters = 8
		shared := randMat(rng, k*n)
		as := make([][]float32, submitters)
		want := make([][]float32, submitters)
		got := make([][]float32, submitters)
		for i := 0; i < submitters; i++ {
			as[i] = randMat(rng, m*k)
			init := randMat(rng, m*n) // accumulate into non-zero C
			want[i] = append([]float32(nil), init...)
			got[i] = append([]float32(nil), init...)
			freeGPU().GEMM(m, n, k, as[i], shared, want[i])
		}
		bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: submitters, Window: 50 * time.Millisecond})
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				bat.GEMM(m, n, k, as[i], shared, got[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < submitters; i++ {
			for j := range want[i] {
				if math.Float32bits(want[i][j]) != math.Float32bits(got[i][j]) {
					t.Fatalf("GEMM(%v) submitter %d: stacked result differs at %d: %g vs %g",
						dims, i, j, got[i][j], want[i][j])
				}
			}
		}
		st := bat.BatcherStats()
		if st.Stacks < 1 {
			t.Fatalf("GEMM(%v): no stacked launch recorded: %+v", dims, st)
		}
		if st.StackedGEMMs != submitters {
			t.Fatalf("GEMM(%v): stacked %d of %d shared-rhs kernels: %+v",
				dims, st.StackedGEMMs, submitters, st)
		}
	}
}

// TestStackingRequiresSharedRHS: distinct weights must not stack (the
// fused launch still runs them, just as separate kernel bodies).
func TestStackingRequiresSharedRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const m, n, k = 6, 8, 10
	const submitters = 4
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: submitters, Window: 50 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		a, b, c := randMat(rng, m*k), randMat(rng, k*n), make([]float32, m*n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			bat.GEMM(m, n, k, a, b, c)
		}()
	}
	wg.Wait()
	if st := bat.BatcherStats(); st.Stacks != 0 || st.StackedGEMMs != 0 {
		t.Fatalf("distinct-rhs kernels stacked: %+v", st)
	}
}

// TestStackingSkipsSharedOutput: two kernels writing the same C buffer
// must not stack (the copy-in/copy-back protocol would drop one
// contribution). Exercised against buildLaunch directly to avoid racing
// real concurrent writes to one buffer.
func TestStackingSkipsSharedOutput(t *testing.T) {
	const m, n, k = 2, 3, 4
	shared := make([]float32, k*n)
	c := make([]float32, m*n)
	bat := NewBatcher(freeGPU(), BatcherConfig{})
	reqs := []fusedReq{
		{run: func() {}, m: m, n: n, k: k, a: make([]float32, m*k), bm: shared, c: c},
		{run: func() {}, m: m, n: n, k: k, a: make([]float32, m*k), bm: shared, c: c},
	}
	fns, _, nstacks, nstacked := bat.buildLaunch(reqs)
	if nstacks != 0 || nstacked != 0 {
		t.Fatalf("same-output kernels stacked: stacks=%d stacked=%d", nstacks, nstacked)
	}
	if len(fns) != 2 {
		t.Fatalf("expected 2 unstacked bodies, got %d", len(fns))
	}
}

// TestStackingMixedBatch: a batch mixing shared-rhs and private-rhs
// kernels stacks exactly the sharing subset and lowers to one body per
// remaining kernel.
func TestStackingMixedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m, n, k = 5, 6, 7
	shared := randMat(rng, k*n)
	mk := func() fusedReq {
		return fusedReq{run: func() {}, m: m, n: n, k: k,
			a: randMat(rng, m*k), bm: shared, c: make([]float32, m*n)}
	}
	reqs := []fusedReq{mk(), mk(), mk()}
	solo := fusedReq{run: func() {}, m: m, n: n, k: k,
		a: randMat(rng, m*k), bm: randMat(rng, k*n), c: make([]float32, m*n), bytes: 77}
	reqs = append(reqs, solo)
	bat := NewBatcher(freeGPU(), BatcherConfig{})
	fns, total, nstacks, nstacked := bat.buildLaunch(reqs)
	if nstacks != 1 || nstacked != 3 {
		t.Fatalf("stacks=%d stacked=%d, want 1/3", nstacks, nstacked)
	}
	if len(fns) != 2 { // one stacked body + one solo body
		t.Fatalf("lowered to %d bodies, want 2", len(fns))
	}
	// The stacked group charges one combined transfer (rhs moves once).
	wantBytes := gemmBytes(3*m, n, k) + solo.bytes
	if total != wantBytes {
		t.Fatalf("transfer bytes %d, want %d", total, wantBytes)
	}
}

// TestStackingSavesTransferBytes: N stacked kernels charge the shared
// rhs once, so the fused launch's byte total must undercut N unshared
// kernels' total.
func TestStackingSavesTransferBytes(t *testing.T) {
	const m, n, k, submitters = 8, 64, 64, 6
	unshared := submitters * gemmBytes(m, n, k)
	shared := gemmBytes(submitters*m, n, k)
	if shared >= unshared {
		t.Fatalf("stacking saves nothing: %d vs %d", shared, unshared)
	}
}
