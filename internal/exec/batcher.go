// Cross-request kernel batching. The paper's §7.4.2 finding is that GPU
// execution loses to vectorized CPU on small batches because the fixed
// per-kernel launch and transfer overhead dominates. Within one query the
// nn layers already fuse their per-frame GEMMs; the Batcher extends the
// same amortization *across* concurrent queries: independent callers
// submit kernels to a shared scheduler that stacks compatible submissions
// and executes them as one fused launch, paying one simulated launch
// latency for N requests. The trade is classic accelerator micro-batching:
// a bounded queuing delay (the flush window) buys an up-to-MaxBatch-fold
// reduction in fixed launch cost.
package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// fusedDevice is the backend contract the Batcher needs: uncharged kernel
// bodies plus a fused launch that charges once for a whole batch. Only the
// simulated GPU implements it; for CPU/AVX devices fusion buys nothing
// (they have no launch overhead), so the Batcher passes through.
type fusedDevice interface {
	Device
	launchFused(nbytes int, kernels []func())
	gemmKernel(m, n, k int, a, b, c []float32)
	pairwiseKernel(x, y []float32, lenX, lenY, dim int, out []float32)
}

// BatcherConfig tunes the flush policy. Zero values select defaults.
type BatcherConfig struct {
	// MaxBatch flushes a shape-compatible batch as soon as it holds this
	// many kernels (default 8). MaxBatch 1 disables fusion: every kernel
	// launches immediately (but launches still serialize on the device,
	// like streams on a real GPU).
	MaxBatch int
	// Window is the deadline for a partial batch: the oldest queued kernel
	// waits at most this long before its batch launches (default 50µs,
	// ~1.7 launch latencies under the default GPU profile).
	Window time.Duration
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Window <= 0 {
		c.Window = 50 * time.Microsecond
	}
	return c
}

// batchKey groups shape-compatible kernels: fused GEMMs must share (k, n)
// (they stack along m), fused pairwise distances must share the vector
// dimension (they stack along the left rows).
type batchKey struct {
	op     uint8 // 0 = GEMM, 1 = PairwiseSqDist
	d1, d2 int   // GEMM: k, n; pairwise: dim, 0
}

// fusedReq is one queued kernel: its compute body, its transfer bytes,
// and the channel its submitter blocks on. GEMM submissions also carry
// their operands so the launch stage can stack same-rhs products into
// one physical kernel (a is nil for non-GEMM kernels). Observed
// submissions (rec non-nil) also record submit→launch wait and batch
// size; launch writes rec before closing done, so the submitter reads
// it race-free.
type fusedReq struct {
	run   func()
	bytes int
	done  chan struct{}

	enq time.Time
	rec *kernelRecord

	m, n, k  int
	a, bm, c []float32
}

// kernelRecord receives one observed submission's timing: how long the
// kernel sat queued before its fused launch, and how many kernels that
// launch carried.
type kernelRecord struct {
	wait  time.Duration
	batch int
}

// pendingBatch accumulates shape-compatible kernels until a flush.
type pendingBatch struct {
	reqs  []fusedReq
	timer *time.Timer
}

// Batcher is a kernel-coalescing scheduler over one Device. It implements
// Device, so any code written against a Device (nn networks, similarity
// joins, vision models) routes through it unchanged. Concurrent
// submissions of shape-compatible kernels are stacked into one fused
// launch per flush window; incompatible kernels batch independently.
// Safe for concurrent use by any number of submitters.
type Batcher struct {
	dev Device
	fd  fusedDevice // nil: pass-through (CPU/AVX)
	cfg BatcherConfig

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
	// queuedKernels counts kernels sitting in pending batches (guarded by
	// mu). Every blocked submitter holds exactly one queued kernel, so
	// queuedKernels >= inFlight means no registered submitter is still
	// mid-query: nothing new can join a batch and waiting out the Window
	// deadline would be pure added latency.
	queuedKernels int

	// inFlight counts registered submitters currently mid-query (see
	// BeginSubmitter). Zero means no one registers, which disables the
	// idle flush and preserves the pure size/deadline policy.
	inFlight atomic.Int64

	// idleProbe, when set, vetoes the idle flush while more submitters
	// are imminent (e.g. a serving layer's admission queue is non-empty:
	// those tasks will register as submitters the moment a worker picks
	// them up, so a partial batch may still grow). Must be set before
	// the batcher is shared between goroutines.
	idleProbe func() bool

	// launchMu serializes fused launches, preserving the cost model's
	// fidelity when many workers share one simulated device: a real GPU
	// serializes kernel launches on a stream, and overlapping two
	// busy-wait charges would under-count wall time.
	launchMu sync.Mutex

	submitted     atomic.Int64
	fusedKernels  atomic.Int64
	launches      atomic.Int64
	flushSize     atomic.Int64
	flushDeadline atomic.Int64
	flushIdle     atomic.Int64
	passThrough   atomic.Int64
	maxFusion     atomic.Int64
	stacks        atomic.Int64
	stackedGEMMs  atomic.Int64
}

// NewBatcher wraps dev in a kernel-coalescing scheduler. For devices
// without launch overhead (CPU, AVX) every call passes straight through.
func NewBatcher(dev Device, cfg BatcherConfig) *Batcher {
	b := &Batcher{dev: dev, cfg: cfg.withDefaults(), pending: make(map[batchKey]*pendingBatch)}
	if fd, ok := dev.(fusedDevice); ok {
		b.fd = fd
	}
	return b
}

// Kind reports the underlying device kind.
func (b *Batcher) Kind() Kind { return b.dev.Kind() }

// Stats reports the underlying device's counters (fusion shows up as
// Launches < Kernels and a sub-linear Overhead).
func (b *Batcher) Stats() Stats { return b.dev.Stats() }

// Device returns the wrapped device.
func (b *Batcher) Device() Device { return b.dev }

// SetIdleProbe installs a check consulted before an idle flush: return
// false while more submitters are imminent (a non-empty admission
// queue), true when the registered submitters are all there is. Install
// before the batcher is shared between goroutines; a nil probe (the
// default) means the in-flight count alone decides.
func (b *Batcher) SetIdleProbe(probe func() bool) { b.idleProbe = probe }

// BeginSubmitter registers a submitter that is mid-query on this device
// (it may submit kernels until the matching EndSubmitter). The count
// drives the adaptive flush: when every registered submitter is already
// blocked inside the batcher, a partial batch cannot grow, so it
// launches immediately instead of waiting out the Window deadline — a
// lightly-loaded service stops paying the deadline per launch. Callers
// that never register keep the pure size/deadline policy.
func (b *Batcher) BeginSubmitter() { b.inFlight.Add(1) }

// EndSubmitter unregisters a BeginSubmitter registration.
func (b *Batcher) EndSubmitter() {
	if n := b.inFlight.Add(-1); n < 0 {
		panic("exec: Batcher.EndSubmitter without BeginSubmitter")
	}
	// A submitter leaving can strand a partial batch whose remaining
	// waiters are all blocked (they were waiting for this one): re-check.
	b.mu.Lock()
	idle := b.idleBatchesLocked()
	b.mu.Unlock()
	b.launchIdle(idle)
}

// GEMM submits C += A·B and blocks until the (possibly fused) launch that
// includes it completes. See Device.GEMM for the shape contract.
func (b *Batcher) GEMM(m, n, k int, a, bm, c []float32) {
	b.gemm(m, n, k, a, bm, c, nil)
}

func (b *Batcher) gemm(m, n, k int, a, bm, c []float32, rec *kernelRecord) {
	if b.fd == nil {
		b.passThrough.Add(1)
		b.dev.GEMM(m, n, k, a, bm, c)
		if rec != nil {
			rec.batch = 1
		}
		return
	}
	checkGEMM(m, n, k, a, bm, c) // fail in the submitter's goroutine
	req := fusedReq{
		run:   func() { b.fd.gemmKernel(m, n, k, a, bm, c) },
		bytes: gemmBytes(m, n, k),
		done:  make(chan struct{}),
		rec:   rec,
		m:     m, n: n, k: k, a: a, bm: bm, c: c,
	}
	if rec != nil {
		req.enq = time.Now()
	}
	b.submit(batchKey{op: 0, d1: k, d2: n}, req)
}

// PairwiseSqDist submits a distance-matrix kernel and blocks until its
// launch completes. See Device.PairwiseSqDist for the shape contract.
func (b *Batcher) PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32) {
	b.pairwise(x, y, lenX, lenY, dim, out, nil)
}

func (b *Batcher) pairwise(x, y []float32, lenX, lenY, dim int, out []float32, rec *kernelRecord) {
	if b.fd == nil {
		b.passThrough.Add(1)
		b.dev.PairwiseSqDist(x, y, lenX, lenY, dim, out)
		if rec != nil {
			rec.batch = 1
		}
		return
	}
	checkPairwise(x, y, lenX, lenY, dim, out)
	req := fusedReq{
		run:   func() { b.fd.pairwiseKernel(x, y, lenX, lenY, dim, out) },
		bytes: pairwiseBytes(lenX, lenY, dim),
		done:  make(chan struct{}),
		rec:   rec,
	}
	if rec != nil {
		req.enq = time.Now()
	}
	b.submit(batchKey{op: 1, d1: dim}, req)
}

// submit queues req under key and blocks until its batch has launched.
// The batch flushes when it reaches MaxBatch kernels (flushed by the
// submitter that filled it) or when the Window deadline set by its first
// kernel fires (flushed by the timer goroutine).
func (b *Batcher) submit(key batchKey, req fusedReq) {
	b.submitted.Add(1)
	b.mu.Lock()
	pb, ok := b.pending[key]
	if !ok {
		pb = &pendingBatch{}
		b.pending[key] = pb
		if b.cfg.MaxBatch > 1 {
			pb.timer = time.AfterFunc(b.cfg.Window, func() { b.flushDeadlined(key, pb) })
		}
	}
	pb.reqs = append(pb.reqs, req)
	b.queuedKernels++
	full := len(pb.reqs) >= b.cfg.MaxBatch
	if full {
		b.takeLocked(key, pb)
	}
	// Adaptive flush: if every registered mid-query submitter is now
	// blocked in this batcher (each holds exactly one queued kernel), no
	// pending batch can grow — launch them all now rather than letting
	// the Window deadline add latency to an already-quiet device.
	var idle []*pendingBatch
	if !full {
		idle = b.idleBatchesLocked()
	}
	b.mu.Unlock()
	if full {
		// Single-kernel "batches" (MaxBatch 1, the eager unfused mode) are
		// not size flushes: counting them would make flush_size read as
		// batching activity when no fusion is happening.
		if len(pb.reqs) > 1 {
			b.flushSize.Add(1)
		}
		b.launch(pb)
		return
	}
	if idle != nil {
		b.launchIdle(idle)
	}
	<-req.done
}

// takeLocked removes pb from the pending map, stops its deadline timer
// and releases its kernels' queue accounting. Callers hold b.mu.
func (b *Batcher) takeLocked(key batchKey, pb *pendingBatch) {
	delete(b.pending, key)
	if pb.timer != nil {
		pb.timer.Stop()
	}
	b.queuedKernels -= len(pb.reqs)
}

// idleBatchesLocked drains every pending batch when all registered
// submitters are blocked in the batcher (the queue cannot grow). Returns
// nil when submitter tracking is off (inFlight 0) or someone is still
// mid-query. Callers hold b.mu.
func (b *Batcher) idleBatchesLocked() []*pendingBatch {
	inf := b.inFlight.Load()
	if inf <= 0 || int64(b.queuedKernels) < inf || len(b.pending) == 0 {
		return nil
	}
	if b.idleProbe != nil && !b.idleProbe() {
		return nil // more submitters are imminent: let the batch grow
	}
	out := make([]*pendingBatch, 0, len(b.pending))
	for key, pb := range b.pending {
		b.takeLocked(key, pb)
		out = append(out, pb)
	}
	return out
}

// launchIdle launches batches drained by the adaptive idle flush.
func (b *Batcher) launchIdle(batches []*pendingBatch) {
	for _, pb := range batches {
		b.flushIdle.Add(1)
		b.launch(pb)
	}
}

// flushDeadlined launches pb if it is still pending (a size flush may
// have raced the timer and already taken it).
func (b *Batcher) flushDeadlined(key batchKey, pb *pendingBatch) {
	b.mu.Lock()
	if b.pending[key] != pb {
		b.mu.Unlock()
		return
	}
	b.takeLocked(key, pb)
	b.mu.Unlock()
	b.flushDeadline.Add(1)
	b.launch(pb)
}

// launch executes pb as one fused device launch and releases its waiters.
func (b *Batcher) launch(pb *pendingBatch) {
	fns, total, nstacks, nstacked := b.buildLaunch(pb.reqs)
	// Stamp observed submissions before their done channels close (the
	// close is the happens-before edge the submitter's read rides on).
	now := time.Now()
	for _, r := range pb.reqs {
		if r.rec != nil {
			r.rec.wait = now.Sub(r.enq)
			r.rec.batch = len(pb.reqs)
		}
	}
	b.launchMu.Lock()
	b.fd.launchFused(total, fns)
	b.launchMu.Unlock()
	b.launches.Add(1)
	b.fusedKernels.Add(int64(len(pb.reqs)))
	b.stacks.Add(nstacks)
	b.stackedGEMMs.Add(nstacked)
	for {
		cur := b.maxFusion.Load()
		if int64(len(pb.reqs)) <= cur || b.maxFusion.CompareAndSwap(cur, int64(len(pb.reqs))) {
			break
		}
	}
	for _, r := range pb.reqs {
		close(r.done)
	}
}

// buildLaunch lowers a flushed batch into physical launch bodies. GEMMs
// that share the rhs operand (same backing array — concurrent queries
// against one set of weights) and the batch's (k, n) are stacked: their
// lhs rows concatenate into one physical product, trading two copies for
// one kernel body and a single transfer of the shared weights. The
// caller's C rows are copied in before the kernel and back out after, so
// every output element sees exactly the accumulation sequence the
// unstacked kernel would produce — outputs are byte-identical. Kernels
// that stack with nothing launch their original bodies unchanged.
func (b *Batcher) buildLaunch(reqs []fusedReq) (fns []func(), total int, nstacks, nstacked int64) {
	var groups map[*float32][]int
	for i := range reqs {
		// Degenerate shapes (empty operands) stay unstacked: there is
		// nothing to save and the element-pointer keys need a first element.
		if reqs[i].a == nil || len(reqs[i].bm) == 0 || len(reqs[i].c) == 0 {
			continue
		}
		if groups == nil {
			groups = make(map[*float32][]int)
		}
		rhs := &reqs[i].bm[0]
		groups[rhs] = append(groups[rhs], i)
	}
	fns = make([]func(), 0, len(reqs))
	stacked := make(map[int]bool)
	for _, idxs := range groups {
		// Conservatively refuse to stack two kernels writing the same C
		// buffer: copy-in/copy-back would lose one's contribution.
		seenC := make(map[*float32]bool, len(idxs))
		grp := idxs[:0:0]
		for _, i := range idxs {
			cb := &reqs[i].c[0]
			if seenC[cb] {
				continue
			}
			seenC[cb] = true
			grp = append(grp, i)
		}
		if len(grp) < 2 {
			continue
		}
		n, k := reqs[grp[0]].n, reqs[grp[0]].k
		bm := reqs[grp[0]].bm
		rows := 0
		members := make([]fusedReq, len(grp))
		for j, i := range grp {
			rows += reqs[i].m
			members[j] = reqs[i]
			stacked[i] = true
		}
		total += gemmBytes(rows, n, k) // the shared rhs transfers once
		nstacks++
		nstacked += int64(len(grp))
		fns = append(fns, func() {
			aStk := tensor.GetScratch(rows * k)
			cStk := tensor.GetScratch(rows * n)
			off := 0
			for _, r := range members {
				copy(aStk[off*k:(off+r.m)*k], r.a)
				copy(cStk[off*n:(off+r.m)*n], r.c)
				off += r.m
			}
			b.fd.gemmKernel(rows, n, k, aStk, bm, cStk)
			off = 0
			for _, r := range members {
				copy(r.c[:r.m*n], cStk[off*n:(off+r.m)*n])
				off += r.m
			}
			tensor.PutScratch(cStk)
			tensor.PutScratch(aStk)
		})
	}
	for i := range reqs {
		if stacked[i] {
			continue
		}
		fns = append(fns, reqs[i].run)
		total += reqs[i].bytes
	}
	return fns, total, nstacks, nstacked
}

// BatcherStats is the scheduler's cumulative activity record.
type BatcherStats struct {
	Submitted     int64 `json:"submitted"`      // kernels submitted for fusion
	FusedKernels  int64 `json:"fused_kernels"`  // kernels executed via fused launches
	Launches      int64 `json:"launches"`       // fused launches issued
	FlushSize     int64 `json:"flush_size"`     // multi-kernel batches flushed by reaching MaxBatch
	FlushDeadline int64 `json:"flush_deadline"` // batches flushed by the Window deadline
	FlushIdle     int64 `json:"flush_idle"`     // batches flushed because every active submitter was already blocked
	PassThrough   int64 `json:"pass_through"`   // kernels bypassing fusion (CPU/AVX)
	MaxFusion     int64 `json:"max_fusion"`     // largest batch launched
	Stacks        int64 `json:"stacks"`         // stacked same-rhs GEMM products launched
	StackedGEMMs  int64 `json:"stacked_gemms"`  // logical GEMMs folded into stacked products
}

// FusionFactor is the mean kernels-per-launch — the launch-overhead
// amortization achieved (1.0 = no fusion).
func (s BatcherStats) FusionFactor() float64 {
	if s.Launches == 0 {
		return 0
	}
	return float64(s.FusedKernels) / float64(s.Launches)
}

// Add accumulates o into s (aggregating across a fleet of batchers).
func (s *BatcherStats) Add(o BatcherStats) {
	s.Submitted += o.Submitted
	s.FusedKernels += o.FusedKernels
	s.Launches += o.Launches
	s.FlushSize += o.FlushSize
	s.FlushDeadline += o.FlushDeadline
	s.FlushIdle += o.FlushIdle
	s.PassThrough += o.PassThrough
	s.Stacks += o.Stacks
	s.StackedGEMMs += o.StackedGEMMs
	if o.MaxFusion > s.MaxFusion {
		s.MaxFusion = o.MaxFusion
	}
}

// BatcherStats snapshots the scheduler counters.
func (b *Batcher) BatcherStats() BatcherStats {
	return BatcherStats{
		Submitted:     b.submitted.Load(),
		FusedKernels:  b.fusedKernels.Load(),
		Launches:      b.launches.Load(),
		FlushSize:     b.flushSize.Load(),
		FlushDeadline: b.flushDeadline.Load(),
		FlushIdle:     b.flushIdle.Load(),
		PassThrough:   b.passThrough.Load(),
		MaxFusion:     b.maxFusion.Load(),
		Stacks:        b.stacks.Load(),
		StackedGEMMs:  b.stackedGEMMs.Load(),
	}
}
