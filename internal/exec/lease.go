package exec

import (
	"fmt"
	"sync/atomic"
)

// Pool hands out exclusive leases over a fixed set of devices. The
// simulated accelerators charge real wall time per kernel (the GPU
// busy-waits its launch latency), so letting N concurrent queries share
// one device would oversubscribe it and melt the cost model's fidelity.
// A serving worker acquires a lease for its lifetime and pins all its
// kernels to that device.
type Pool struct {
	kind Kind
	devs []Device
	ch   chan Device

	leased atomic.Int64
}

// NewPool builds a pool of n devices of the given kind (n < 1 is
// treated as 1).
func NewPool(kind Kind, n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{kind: kind, devs: make([]Device, n), ch: make(chan Device, n)}
	for i := 0; i < n; i++ {
		d := New(kind)
		p.devs[i] = d
		p.ch <- d
	}
	return p
}

// Kind returns the pooled device kind.
func (p *Pool) Kind() Kind { return p.kind }

// Size returns the number of devices in the pool.
func (p *Pool) Size() int { return len(p.devs) }

// Leased returns how many devices are currently out on lease.
func (p *Pool) Leased() int { return int(p.leased.Load()) }

// Acquire blocks until a device lease is free and returns it.
func (p *Pool) Acquire() Device {
	d := <-p.ch
	p.leased.Add(1)
	return d
}

// TryAcquire returns a device lease if one is free.
func (p *Pool) TryAcquire() (Device, bool) {
	select {
	case d := <-p.ch:
		p.leased.Add(1)
		return d, true
	default:
		return nil, false
	}
}

// Release returns a leased device to the pool. Releasing more devices
// than were acquired is a caller bug and panics.
func (p *Pool) Release(d Device) {
	select {
	case p.ch <- d:
		p.leased.Add(-1)
	default:
		panic(fmt.Sprintf("exec: Pool.Release of un-leased %s device", d.Kind()))
	}
}

// Stats aggregates kernel counters across every device in the pool,
// leased or free.
func (p *Pool) Stats() Stats {
	var agg Stats
	for _, d := range p.devs {
		s := d.Stats()
		agg.Kernels += s.Kernels
		agg.Launches += s.Launches
		agg.FLOPs += s.FLOPs
		agg.Overhead += s.Overhead
	}
	return agg
}
