// Kernel-level observation hooks. The serving layer's tracer wants to
// know how long each kernel sat queued in the Batcher before its fused
// launch and how large that launch was — without the Batcher importing
// the observability package (exec stays dependency-light and the hot
// path stays allocation-free when nothing observes).
package exec

import "time"

// KernelObserver receives one callback per kernel submitted through an
// Observed device: the op ("gemm" or "pairwise"), the submit→launch
// queuing delay, and the number of kernels in the fused launch that
// carried it (1 on pass-through devices). Callbacks arrive on the
// submitting goroutine, after the launch completes.
type KernelObserver interface {
	ObserveKernel(op string, wait time.Duration, batch int)
}

// Observed returns a Device view of the batcher that reports every
// kernel to o. A nil observer returns the batcher itself — callers can
// thread an optional observer without branching.
func (b *Batcher) Observed(o KernelObserver) Device {
	if o == nil {
		return b
	}
	return &observedBatcher{b: b, o: o}
}

// observedBatcher decorates one Batcher with per-kernel reporting. It
// implements Device, so observed and unobserved call sites are
// interchangeable.
type observedBatcher struct {
	b *Batcher
	o KernelObserver
}

func (d *observedBatcher) Kind() Kind   { return d.b.Kind() }
func (d *observedBatcher) Stats() Stats { return d.b.Stats() }

func (d *observedBatcher) GEMM(m, n, k int, a, bm, c []float32) {
	var rec kernelRecord
	d.b.gemm(m, n, k, a, bm, c, &rec)
	d.o.ObserveKernel("gemm", rec.wait, rec.batch)
}

func (d *observedBatcher) PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32) {
	var rec kernelRecord
	d.b.pairwise(x, y, lenX, lenY, dim, out, &rec)
	d.o.ObserveKernel("pairwise", rec.wait, rec.batch)
}
