package exec

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// freeGPU is a zero-cost GPU profile: compute without busy-wait charges,
// so correctness tests run fast.
func freeGPU() Device {
	return NewGPU(GPUProfile{LaunchLatency: 0, BytesPerSecond: math.Inf(1)})
}

// TestBatchedGEMMBitIdentical is the batcher's core correctness property:
// kernels routed through a fused launch must produce byte-for-byte the
// results of sequential unfused launches, across shapes, fusion degrees
// and concurrent submitters.
func TestBatchedGEMMBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{1, 8, 16}, {3, 5, 7}, {16, 16, 16}, {40, 17, 65}, {100, 33, 24}}
	for _, dims := range shapes {
		m, n, k := dims[0], dims[1], dims[2]
		const submitters = 8
		as := make([][]float32, submitters)
		bs := make([][]float32, submitters)
		want := make([][]float32, submitters)
		for i := 0; i < submitters; i++ {
			as[i] = randMat(rng, m*k)
			bs[i] = randMat(rng, k*n)
			want[i] = make([]float32, m*n)
			freeGPU().GEMM(m, n, k, as[i], bs[i], want[i])
		}
		bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: submitters, Window: 50 * time.Millisecond})
		got := make([][]float32, submitters)
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = make([]float32, m*n)
				bat.GEMM(m, n, k, as[i], bs[i], got[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < submitters; i++ {
			for j := range want[i] {
				if math.Float32bits(want[i][j]) != math.Float32bits(got[i][j]) {
					t.Fatalf("GEMM(%v) submitter %d: fused result differs at %d: %g vs %g",
						dims, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestBatchedPairwiseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	shapes := [][3]int{{1, 1, 4}, {10, 20, 8}, {37, 53, 16}, {64, 64, 3}}
	for _, dims := range shapes {
		lx, ly, d := dims[0], dims[1], dims[2]
		const submitters = 6
		xs := make([][]float32, submitters)
		ys := make([][]float32, submitters)
		want := make([][]float32, submitters)
		for i := 0; i < submitters; i++ {
			xs[i] = randMat(rng, lx*d)
			ys[i] = randMat(rng, ly*d)
			want[i] = make([]float32, lx*ly)
			freeGPU().PairwiseSqDist(xs[i], ys[i], lx, ly, d, want[i])
		}
		bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: submitters, Window: 50 * time.Millisecond})
		got := make([][]float32, submitters)
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = make([]float32, lx*ly)
				bat.PairwiseSqDist(xs[i], ys[i], lx, ly, d, got[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < submitters; i++ {
			for j := range want[i] {
				if math.Float32bits(want[i][j]) != math.Float32bits(got[i][j]) {
					t.Fatalf("pairwise(%v) submitter %d: fused result differs at %d", dims, i, j)
				}
			}
		}
	}
}

// TestBatcherFlushOnSize: a batch that reaches MaxBatch launches
// immediately, without waiting out the window.
func TestBatcherFlushOnSize(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 4, Window: time.Hour})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float32, 4)
			bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("size flush took %v (deadline path taken?)", el)
	}
	st := bat.BatcherStats()
	if st.FlushSize != 1 || st.Launches != 1 || st.FusedKernels != 4 {
		t.Fatalf("stats after size flush: %+v", st)
	}
	if st.MaxFusion != 4 {
		t.Fatalf("max fusion = %d, want 4", st.MaxFusion)
	}
}

// TestBatcherFlushOnDeadline: a partial batch launches once the window
// lapses even though MaxBatch was never reached.
func TestBatcherFlushOnDeadline(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 100, Window: 5 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float32, 4)
			bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
		}()
	}
	wg.Wait()
	st := bat.BatcherStats()
	if st.FlushDeadline < 1 {
		t.Fatalf("no deadline flush recorded: %+v", st)
	}
	if st.Submitted != 3 || st.FusedKernels != 3 {
		t.Fatalf("stats after deadline flush: %+v", st)
	}
}

// TestBatcherShapeGroups: incompatible shapes never share a batch.
func TestBatcherShapeGroups(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 2, Window: 5 * time.Millisecond})
	var wg sync.WaitGroup
	run := func(m, n, k int) {
		defer wg.Done()
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		bat.GEMM(m, n, k, a, b, c)
	}
	wg.Add(4)
	go run(2, 4, 8)
	go run(3, 4, 8) // same (k=8, n=4): may fuse with the first
	go run(2, 5, 8) // different n: own batch
	go run(2, 4, 9) // different k: own batch
	wg.Wait()
	st := bat.BatcherStats()
	if st.Launches < 3 {
		t.Fatalf("incompatible shapes shared a launch: %+v", st)
	}
	if st.FusedKernels != 4 {
		t.Fatalf("kernels executed = %d, want 4", st.FusedKernels)
	}
}

// TestBatcherPassThroughCPU: devices without launch overhead bypass the
// queue entirely.
func TestBatcherPassThroughCPU(t *testing.T) {
	for _, kind := range []Kind{CPU, AVX} {
		bat := NewBatcher(New(kind), BatcherConfig{})
		c := make([]float32, 4)
		bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
		if c[0] != 1 || c[3] != 4 {
			t.Fatalf("%v pass-through GEMM wrong: %v", kind, c)
		}
		dist := make([]float32, 1)
		bat.PairwiseSqDist([]float32{0, 0}, []float32{3, 4}, 1, 1, 2, dist)
		if dist[0] != 25 {
			t.Fatalf("%v pass-through pairwise = %v, want 25", kind, dist[0])
		}
		st := bat.BatcherStats()
		if st.PassThrough != 2 || st.Launches != 0 {
			t.Fatalf("%v pass-through stats: %+v", kind, st)
		}
		ds := bat.Stats()
		if ds.Kernels != 2 || ds.Launches != 2 {
			t.Fatalf("%v device stats: %+v", kind, ds)
		}
	}
}

// TestFusedLaunchAmortizesOverhead is the acceptance-criterion check: the
// same kernels cost strictly less simulated Overhead fused than unfused,
// and the launch counter shows the amortization. Overhead is accounted in
// simulated nanoseconds, so this is deterministic under load and -race.
func TestFusedLaunchAmortizesOverhead(t *testing.T) {
	profile := GPUProfile{LaunchLatency: 30 * time.Microsecond, BytesPerSecond: 6e9}
	const submitters = 8
	run := func(maxBatch int) (Stats, BatcherStats) {
		dev := NewGPU(profile)
		bat := NewBatcher(dev, BatcherConfig{MaxBatch: maxBatch, Window: 10 * time.Millisecond})
		var wg sync.WaitGroup
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				a := make([]float32, 8*16)
				b := make([]float32, 16*8)
				c := make([]float32, 8*8)
				bat.GEMM(8, 8, 16, a, b, c)
			}(i)
		}
		wg.Wait()
		return dev.Stats(), bat.BatcherStats()
	}
	unfused, _ := run(1)
	fused, fstats := run(submitters)
	if unfused.Launches != submitters || unfused.Kernels != submitters {
		t.Fatalf("unfused stats: %+v", unfused)
	}
	if fused.Kernels != submitters || fused.Launches >= unfused.Launches {
		t.Fatalf("fusion did not reduce launches: fused %+v vs unfused %+v", fused, unfused)
	}
	if fused.Overhead >= unfused.Overhead {
		t.Fatalf("fused overhead %v not below unfused %v", fused.Overhead, unfused.Overhead)
	}
	// Transfer bytes are conserved; only launch latencies are saved (up
	// to sub-µs float rounding in the per-charge transfer durations).
	saved := unfused.Overhead - fused.Overhead
	wantSaved := time.Duration(unfused.Launches-fused.Launches) * profile.LaunchLatency
	if diff := saved - wantSaved; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("overhead saved %v, want %v (launch latencies)", saved, wantSaved)
	}
	if fstats.FusionFactor() <= 1 {
		t.Fatalf("fusion factor %.2f, want > 1", fstats.FusionFactor())
	}
}

// TestBatcherConcurrentSubmitRace hammers one batcher from 16 goroutines
// with mixed kernels; run under -race this is the scheduler's data-race
// certification.
func TestBatcherConcurrentSubmitRace(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 5, Window: 200 * time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					m := 1 + rng.Intn(4)
					a := randMat(rng, m*8)
					b := randMat(rng, 8*4)
					c := make([]float32, m*4)
					bat.GEMM(m, 4, 8, a, b, c)
				} else {
					lx := 1 + rng.Intn(6)
					x := randMat(rng, lx*8)
					y := randMat(rng, 3*8)
					out := make([]float32, lx*3)
					bat.PairwiseSqDist(x, y, lx, 3, 8, out)
				}
			}
		}(g)
	}
	wg.Wait()
	st := bat.BatcherStats()
	if st.Submitted != 16*20 {
		t.Fatalf("submitted = %d, want %d", st.Submitted, 16*20)
	}
	if st.FusedKernels != st.Submitted {
		t.Fatalf("executed %d of %d submitted kernels", st.FusedKernels, st.Submitted)
	}
}

// TestBatcherIdleFlushLoneSubmitter: with submitter tracking on, a lone
// registered submitter never waits out the Window deadline — its kernel
// launches immediately because the queue provably cannot grow.
func TestBatcherIdleFlushLoneSubmitter(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 8, Window: time.Hour})
	bat.BeginSubmitter()
	defer bat.EndSubmitter()
	start := time.Now()
	c := make([]float32, 4)
	bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("lone submitter waited %v (deadline path taken despite idle device)", el)
	}
	st := bat.BatcherStats()
	if st.FlushIdle != 1 || st.Launches != 1 || st.FlushDeadline != 0 {
		t.Fatalf("stats after idle flush: %+v", st)
	}
	if c[0] != 1 || c[1] != 2 || c[2] != 3 || c[3] != 4 {
		t.Fatalf("idle-flushed GEMM result wrong: %v", c)
	}
}

// TestBatcherIdleFlushWaitsForMidQuerySubmitter: while a second
// registered submitter is still mid-query, a partial batch holds (it
// might still fuse); once every registered submitter is blocked in the
// batcher, the batch launches without the deadline.
func TestBatcherIdleFlushWaitsForMidQuerySubmitter(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 8, Window: time.Hour})
	bat.BeginSubmitter() // submitter A
	bat.BeginSubmitter() // submitter B

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := make([]float32, 4)
		bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c) // A blocks
	}()
	// A alone must not flush: B is registered and still mid-query.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("batch flushed while another registered submitter was mid-query")
	default:
	}
	// B submits: now both submitters are blocked, the batch fuses and
	// launches immediately (size flush at 2 kernels would need MaxBatch;
	// here the idle rule fires).
	c := make([]float32, 4)
	bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
	<-done
	st := bat.BatcherStats()
	if st.FusedKernels != 2 || st.Launches != 1 {
		t.Fatalf("expected one fused launch of 2 kernels, got %+v", st)
	}
	if st.FlushIdle != 1 {
		t.Fatalf("idle flush not recorded: %+v", st)
	}
	bat.EndSubmitter()
	bat.EndSubmitter()
}

// TestBatcherIdleFlushOnSubmitterExit: a registered submitter that
// finishes without submitting releases batches whose waiters were
// blocked on it.
func TestBatcherIdleFlushOnSubmitterExit(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 8, Window: time.Hour})
	bat.BeginSubmitter() // A: will submit
	bat.BeginSubmitter() // B: never submits

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := make([]float32, 4)
		bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("batch flushed while B was still registered")
	default:
	}
	bat.EndSubmitter() // B exits without submitting: A's batch must release
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch not flushed after last co-submitter exited")
	}
	if st := bat.BatcherStats(); st.FlushIdle != 1 {
		t.Fatalf("idle flush not recorded: %+v", st)
	}
	bat.EndSubmitter()
}

// TestBatcherUntrackedSubmittersKeepDeadlinePolicy: without
// BeginSubmitter registrations the idle rule stays off.
func TestBatcherUntrackedSubmittersKeepDeadlinePolicy(t *testing.T) {
	bat := NewBatcher(freeGPU(), BatcherConfig{MaxBatch: 8, Window: 5 * time.Millisecond})
	c := make([]float32, 4)
	bat.GEMM(2, 2, 2, []float32{1, 0, 0, 1}, []float32{1, 2, 3, 4}, c)
	st := bat.BatcherStats()
	if st.FlushIdle != 0 || st.FlushDeadline != 1 {
		t.Fatalf("untracked submitter: %+v (want pure deadline flush)", st)
	}
}
