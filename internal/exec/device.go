// Package exec provides DeepLens's execution backends. The paper's §7.4.2
// compares a vanilla CPU implementation, a vectorized (AVX) execution, and
// a GPU implementation, finding up to 12x ETL differences and *mixed*
// results at query time because kernel-launch and transfer overhead can
// outweigh GPU throughput on small batches.
//
// Since the reproduction environment has no GPU, the GPU backend is a
// simulated accelerator: it computes with full multi-core parallelism
// (high throughput) but charges a fixed per-kernel launch latency plus a
// PCIe-like transfer cost proportional to the bytes moved. The AVX backend
// models vectorized CPU execution with blocked, unrolled kernels and
// bounded parallelism — genuinely faster than the scalar CPU backend, with
// no offload overhead. The crossover behaviour in Figure 8 emerges from
// these cost profiles rather than from hard-coded results.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies an execution backend.
type Kind int

// Available backends.
const (
	CPU Kind = iota // scalar single-threaded reference implementation
	AVX             // vectorized: blocked/unrolled kernels, bounded parallelism
	GPU             // simulated accelerator: high throughput, per-call overhead
)

func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case AVX:
		return "AVX"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device executes the dense kernels DeepLens's ETL and query operators are
// built from.
type Device interface {
	Kind() Kind
	// GEMM computes C += A·B for row-major float32 matrices:
	// A is m×k, B is k×n, C is m×n.
	GEMM(m, n, k int, a, b, c []float32)
	// PairwiseSqDist fills out (lenX×lenY, row-major) with squared
	// Euclidean distances between rows of x (lenX×dim) and y (lenY×dim).
	PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32)
	// Stats reports cumulative kernel invocations and simulated overhead.
	Stats() Stats
}

// Stats is a device's cumulative activity record.
type Stats struct {
	Kernels  int64         // logical kernels executed
	Launches int64         // physical launches charged (== Kernels unless fused by a Batcher)
	FLOPs    int64         // floating-point operations issued (approximate)
	Overhead time.Duration // simulated launch + transfer time (GPU only)
}

// New returns a device of the given kind with default cost parameters.
func New(kind Kind) Device {
	switch kind {
	case AVX:
		return &avxDevice{workers: boundedWorkers()}
	case GPU:
		return NewGPU(DefaultGPUProfile())
	default:
		return &cpuDevice{}
	}
}

func boundedWorkers() int {
	// The AVX backend models SIMD lanes with a small worker pool: wide
	// enough to beat scalar code clearly, narrow enough that the GPU's
	// full-machine parallelism still wins on large batches.
	n := runtime.NumCPU() / 2
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// ---------------------------------------------------------------- CPU ----

type cpuDevice struct {
	kernels int64
	flops   int64
}

func (d *cpuDevice) Kind() Kind { return CPU }

func (d *cpuDevice) Stats() Stats {
	k := atomic.LoadInt64(&d.kernels)
	return Stats{Kernels: k, Launches: k, FLOPs: atomic.LoadInt64(&d.flops)}
}

func (d *cpuDevice) GEMM(m, n, k int, a, b, c []float32) {
	checkGEMM(m, n, k, a, b, c)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 2*int64(m)*int64(n)*int64(k))
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] += s
		}
	}
}

func (d *cpuDevice) PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32) {
	checkPairwise(x, y, lenX, lenY, dim, out)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 3*int64(lenX)*int64(lenY)*int64(dim))
	for i := 0; i < lenX; i++ {
		for j := 0; j < lenY; j++ {
			var s float32
			for p := 0; p < dim; p++ {
				dlt := x[i*dim+p] - y[j*dim+p]
				s += dlt * dlt
			}
			out[i*lenY+j] = s
		}
	}
}

// ---------------------------------------------------------------- AVX ----

type avxDevice struct {
	workers int
	kernels int64
	flops   int64
}

func (d *avxDevice) Kind() Kind { return AVX }

func (d *avxDevice) Stats() Stats {
	k := atomic.LoadInt64(&d.kernels)
	return Stats{Kernels: k, Launches: k, FLOPs: atomic.LoadInt64(&d.flops)}
}

// parallelRows splits [0,m) across the worker pool.
func (d *avxDevice) parallelRows(m int, fn func(lo, hi int)) {
	if m < 32 { // not worth the fork/join
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + d.workers - 1) / d.workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (d *avxDevice) GEMM(m, n, k int, a, b, c []float32) {
	checkGEMM(m, n, k, a, b, c)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 2*int64(m)*int64(n)*int64(k))
	if m >= 32 || n < 256 {
		d.parallelRows(m, func(lo, hi int) {
			gemmRowsUnrolled(lo, hi, n, k, a, b, c)
		})
		return
	}
	// Wide-but-short products (batched convolutions): split columns.
	d.parallelRows(n, func(lo, hi int) {
		gemmColsUnrolled(m, lo, hi, n, k, a, b, c)
	})
}

// gemmRowsUnrolled computes rows [lo,hi) of C += A·B with 4-wide manual
// unrolling over the inner product (the scalar stand-in for SIMD lanes).
func gemmRowsUnrolled(lo, hi, n, k int, a, b, c []float32) {
	for i := lo; i < hi; i++ {
		ar := a[i*k : (i+1)*k]
		cr := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				cr[j] += av * br[j]
				cr[j+1] += av * br[j+1]
				cr[j+2] += av * br[j+2]
				cr[j+3] += av * br[j+3]
			}
			for ; j < n; j++ {
				cr[j] += av * br[j]
			}
		}
	}
}

func (d *avxDevice) PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32) {
	checkPairwise(x, y, lenX, lenY, dim, out)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 3*int64(lenX)*int64(lenY)*int64(dim))
	d.parallelRows(lenX, func(lo, hi int) {
		pairwiseRows(lo, hi, x, y, lenY, dim, out)
	})
}

func pairwiseRows(lo, hi int, x, y []float32, lenY, dim int, out []float32) {
	for i := lo; i < hi; i++ {
		xr := x[i*dim : (i+1)*dim]
		for j := 0; j < lenY; j++ {
			yr := y[j*dim : (j+1)*dim]
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= dim; p += 4 {
				d0 := xr[p] - yr[p]
				d1 := xr[p+1] - yr[p+1]
				d2 := xr[p+2] - yr[p+2]
				d3 := xr[p+3] - yr[p+3]
				s0 += d0 * d0
				s1 += d1 * d1
				s2 += d2 * d2
				s3 += d3 * d3
			}
			s := s0 + s1 + s2 + s3
			for ; p < dim; p++ {
				dd := xr[p] - yr[p]
				s += dd * dd
			}
			out[i*lenY+j] = s
		}
	}
}

// ---------------------------------------------------------------- GPU ----

// GPUProfile parameterizes the simulated accelerator.
type GPUProfile struct {
	// LaunchLatency is charged once per kernel call.
	LaunchLatency time.Duration
	// BytesPerSecond models host<->device transfer bandwidth; every kernel
	// charges (input+output bytes) / BytesPerSecond.
	BytesPerSecond float64
}

// DefaultGPUProfile matches a mid-range discrete GPU over PCIe 3.0.
func DefaultGPUProfile() GPUProfile {
	return GPUProfile{LaunchLatency: 30 * time.Microsecond, BytesPerSecond: 6e9}
}

// NewGPU builds the simulated GPU with a custom cost profile.
func NewGPU(p GPUProfile) Device {
	return &gpuDevice{profile: p, workers: runtime.NumCPU()}
}

type gpuDevice struct {
	profile  GPUProfile
	workers  int
	kernels  int64
	launches int64
	flops    int64
	overhead int64 // nanoseconds
}

func (d *gpuDevice) Kind() Kind { return GPU }

func (d *gpuDevice) Stats() Stats {
	return Stats{
		Kernels:  atomic.LoadInt64(&d.kernels),
		Launches: atomic.LoadInt64(&d.launches),
		FLOPs:    atomic.LoadInt64(&d.flops),
		Overhead: time.Duration(atomic.LoadInt64(&d.overhead)),
	}
}

// charge blocks for the simulated launch + transfer cost of a kernel
// moving nbytes across the bus. Sub-millisecond charges busy-wait: Go's
// sleep granularity under load is ~1ms, which would inflate the simulated
// overhead by an order of magnitude on kernel-heavy ETL workloads.
func (d *gpuDevice) charge(nbytes int) {
	dur := d.profile.LaunchLatency +
		time.Duration(float64(nbytes)/d.profile.BytesPerSecond*float64(time.Second))
	atomic.AddInt64(&d.overhead, int64(dur))
	if dur >= time.Millisecond {
		time.Sleep(dur)
		return
	}
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
	}
}

func (d *gpuDevice) parallelRows(m int, fn func(lo, hi int)) {
	// Cap the fan-out so each worker gets meaningful work: the simulated
	// device should not lose to goroutine fork/join on small kernels.
	workers := d.workers
	if m/64 < workers {
		workers = m / 64
		if workers < 1 {
			workers = 1
		}
	}
	if workers == 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (d *gpuDevice) GEMM(m, n, k int, a, b, c []float32) {
	atomic.AddInt64(&d.launches, 1)
	d.charge(gemmBytes(m, n, k))
	d.gemmKernel(m, n, k, a, b, c)
}

// gemmKernel is the GEMM compute body: identical math and parallel split
// as GEMM, but without the launch/transfer charge, so a fused launch can
// run many of these under one charge. Results are bit-identical to the
// unfused path: every output element is accumulated by exactly one
// goroutine in the same inner-product order regardless of the split.
func (d *gpuDevice) gemmKernel(m, n, k int, a, b, c []float32) {
	checkGEMM(m, n, k, a, b, c)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 2*int64(m)*int64(n)*int64(k))
	if m >= d.workers {
		d.parallelRows(m, func(lo, hi int) {
			gemmRowsUnrolled(lo, hi, n, k, a, b, c)
		})
		return
	}
	// Few rows (conv layers with few output channels): parallelize the
	// column dimension instead, as a massively-parallel device would.
	d.parallelRows(n, func(lo, hi int) {
		gemmColsUnrolled(m, lo, hi, n, k, a, b, c)
	})
}

// gemmColsUnrolled computes columns [lo,hi) of C += A·B.
func gemmColsUnrolled(m, lo, hi, n, k int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		cr := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b[p*n : (p+1)*n]
			for j := lo; j < hi; j++ {
				cr[j] += av * br[j]
			}
		}
	}
}

func (d *gpuDevice) PairwiseSqDist(x, y []float32, lenX, lenY, dim int, out []float32) {
	atomic.AddInt64(&d.launches, 1)
	d.charge(pairwiseBytes(lenX, lenY, dim))
	d.pairwiseKernel(x, y, lenX, lenY, dim, out)
}

// pairwiseKernel is the PairwiseSqDist compute body without the launch
// charge (see gemmKernel).
func (d *gpuDevice) pairwiseKernel(x, y []float32, lenX, lenY, dim int, out []float32) {
	checkPairwise(x, y, lenX, lenY, dim, out)
	atomic.AddInt64(&d.kernels, 1)
	atomic.AddInt64(&d.flops, 3*int64(lenX)*int64(lenY)*int64(dim))
	d.parallelRows(lenX, func(lo, hi int) {
		pairwiseRows(lo, hi, x, y, lenY, dim, out)
	})
}

// launchFused implements fusedDevice: one launch-latency and one transfer
// charge for the combined byte traffic of every queued kernel, then all
// kernel bodies run concurrently (each still fans out over the device's
// internal workers). This is the §7.4.2 amortization: N small kernels pay
// the fixed launch cost once instead of N times.
func (d *gpuDevice) launchFused(nbytes int, kernels []func()) {
	atomic.AddInt64(&d.launches, 1)
	d.charge(nbytes)
	if len(kernels) == 1 {
		kernels[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range kernels {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

// gemmBytes / pairwiseBytes are the host<->device transfer sizes a kernel
// charges (float32 inputs + outputs).
func gemmBytes(m, n, k int) int { return 4 * (m*k + k*n + m*n) }

func pairwiseBytes(lenX, lenY, dim int) int { return 4 * (lenX*dim + lenY*dim + lenX*lenY) }

// -------------------------------------------------------------- checks ----

func checkGEMM(m, n, k int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("exec: GEMM buffer sizes a=%d b=%d c=%d for m=%d n=%d k=%d",
			len(a), len(b), len(c), m, n, k))
	}
}

func checkPairwise(x, y []float32, lenX, lenY, dim int, out []float32) {
	if len(x) < lenX*dim || len(y) < lenY*dim || len(out) < lenX*lenY {
		panic(fmt.Sprintf("exec: PairwiseSqDist buffer sizes x=%d y=%d out=%d for lenX=%d lenY=%d dim=%d",
			len(x), len(y), len(out), lenX, lenY, dim))
	}
}
