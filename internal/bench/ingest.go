package bench

// Shared fixture for the streaming-ingest experiment: a warm colscan
// collection absorbing one block's worth of appended rows, queried after
// every frame-sized batch. The measured contrast is the columnar read
// side's recovery strategy — incremental extension (sealed blocks
// reused, tail re-projected) versus the pre-extension behavior of
// rebuilding the whole ColumnStore on every version move. Used by
// BenchmarkStreamingIngest (the CI-uploaded snapshot).

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
)

// IngestAppendRows is how many rows one streaming-ingest measurement
// appends: one full block, so the extension path both grows the old
// tail block and seals a new one.
const IngestAppendRows = core.ColumnBlockSize

// IngestBatch is the frame-at-a-time batch size: queries interleave
// with the stream every IngestBatch appended rows.
const IngestBatch = 128

// IngestQueries counts the interleaved queries per measurement (one
// after each batch).
const IngestQueries = IngestAppendRows / IngestBatch

// RunStreamingIngest appends IngestAppendRows rows to col in
// IngestBatch-sized batches, running the selective columnar filter
// after every batch. When extend is false the cached store is dropped
// before each query, forcing the pre-extension full rebuild the
// comparison baselines against. Returns the final query's match count
// (a correctness anchor) and the accumulated wall time of the
// interleaved queries alone — the latency the serving path pays to see
// fresh rows, with the (mode-independent) storage appends excluded.
func RunStreamingIngest(db *core.DB, col *core.Collection, from int, extend bool) (int, time.Duration, error) {
	last := 0
	var queries time.Duration
	for i := 0; i < IngestAppendRows; i += IngestBatch {
		for j := i; j < i+IngestBatch; j++ {
			if err := col.Append(ColScanPatch(from + j)); err != nil {
				return 0, 0, err
			}
		}
		if !extend {
			col.InvalidateColumns()
		}
		t0 := time.Now()
		n, err := ColScanFilterColumnar(db, col)
		if err != nil {
			return 0, 0, err
		}
		queries += time.Since(t0)
		last = n
	}
	return last, queries, nil
}

// IngestPoint is one measured mode of the streaming-ingest curve.
type IngestPoint struct {
	Mode string `json:"mode"` // "extend" | "full-rebuild"
	// TotalNS is the whole append-then-query stream (IngestQueries
	// batches including storage appends); QueryNS the mean per
	// interleaved query (store recovery + scan only).
	TotalNS float64 `json:"total_ns"`
	QueryNS float64 `json:"query_ns"`
	Speedup float64 `json:"speedup,omitempty"` // query-side vs full-rebuild
}

// WriteIngestJSON writes the streaming-ingest baseline snapshot (the
// artifact CI regenerates and uploads alongside the columnar-scan,
// kernel-batching and shard-scaling curves).
func WriteIngestJSON(path string, baseRows int, reused, total int64, points []IngestPoint) error {
	var rebuild float64
	for _, p := range points {
		if p.Mode == "full-rebuild" {
			rebuild = p.QueryNS
		}
	}
	for i := range points {
		if points[i].Mode == "extend" && points[i].QueryNS > 0 && rebuild > 0 {
			points[i].Speedup = rebuild / points[i].QueryNS
		}
	}
	out := struct {
		Description  string        `json:"description"`
		GoMaxProcs   int           `json:"gomaxprocs"`
		BaseRows     int           `json:"base_rows"`
		AppendRows   int           `json:"append_rows"`
		Batch        int           `json:"batch"`
		BlockSize    int           `json:"block_size"`
		ReusedBlocks int64         `json:"extend_reuse_blocks"`
		TotalBlocks  int64         `json:"extend_total_blocks"`
		Modes        []IngestPoint `json:"modes"`
	}{
		Description:  "streaming ingest: frame-at-a-time appends interleaved with selective columnar filters; incremental ColumnStore extension vs full per-version rebuild",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		BaseRows:     baseRows,
		AppendRows:   IngestAppendRows,
		Batch:        IngestBatch,
		BlockSize:    core.ColumnBlockSize,
		ReusedBlocks: reused,
		TotalBlocks:  total,
		Modes:        points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
