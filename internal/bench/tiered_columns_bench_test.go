package bench

import (
	"testing"

	"repro/internal/core"
)

// This file benchmarks the tiered column store under a constrained
// memory budget: the selective colscan filter measured cold (all
// segments evicted), warm, and zone-pruned, against the unbudgeted
// in-memory store, swept from 12k to 200k rows. The sweep and JSON
// encoding are shared with the `deeplens-bench tiered-scan` subcommand
// via internal/bench's tieredscan fixture; the curve is recorded to
// BENCH_tiered_columns.json — a perf baseline CI regenerates and
// uploads alongside the columnar-scan snapshot.

// BenchmarkTieredColumns runs the whole sweep per harness iteration
// (fixture builds dominate, so sub-benchmark slicing would re-ingest
// 262k rows per point; one flat run keeps CI's -benchtime 1x cheap) and
// asserts the structural shape: every sweep point spilled, the budget
// held, and the pruned filter loaded zero segments.
func BenchmarkTieredColumns(b *testing.B) {
	const iters = 5
	var points []TieredScanPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = MeasureTieredScan(b.TempDir(), TieredScanRowsSweep, TieredScanBudget, iters)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		if pt.SegmentSpills == 0 {
			b.Fatalf("%d rows: no segments spilled under the %d-byte budget", pt.Rows, int64(TieredScanBudget))
		}
		if pt.ResidentBytes > TieredScanBudget {
			b.Fatalf("%d rows: resident %d bytes over the %d budget", pt.Rows, pt.ResidentBytes, int64(TieredScanBudget))
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.ColdFilterNS, "cold-ns")
	b.ReportMetric(last.WarmFilterNS, "warm-ns")
	b.ReportMetric(last.PrunedFilterNS, "pruned-ns")
	b.ReportMetric(last.InMemFilterNS, "inmem-ns")
	if err := WriteTieredScanJSON("BENCH_tiered_columns.json", TieredScanBudget, points); err != nil {
		b.Logf("baseline not written: %v", err)
	}
}

// TestTieredScanWorkloadsAgree guards the benchmark's correctness side
// at a cheap size: the budgeted store's filter matches the in-memory
// store's count, and the pruned predicate performs zero segment loads.
func TestTieredScanWorkloadsAgree(t *testing.T) {
	const rows = 3200 // divisible by ColScanLabels: exact per-label count
	db, col, sc, err := NewTieredCollection(t.TempDir(), rows, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	sc.EvictAll()
	sel, ok := cs.FilterEq("label", ColScanTarget())
	if !ok {
		t.Fatal("label lost its column")
	}
	mem := core.NewColumnStore(cs.Patches(), cs.Version())
	msel, _ := mem.FilterEq("label", ColScanTarget())
	if len(sel) != len(msel) || len(sel) != rows/ColScanLabels {
		t.Fatalf("budgeted %d vs in-memory %d matches, want %d", len(sel), len(msel), rows/ColScanLabels)
	}
	sc.EvictAll()
	psel, st, ok := cs.FilterEqStats("rank", core.IntV(TieredScanPrunedRank))
	if !ok || len(psel) != 0 || st.SegLoads != 0 {
		t.Fatalf("pruned predicate: %d rows, %d segment loads", len(psel), st.SegLoads)
	}
}
