package bench

// Shared fixture for the ANN-kNN experiment: one synthetic clustered
// vector collection, the brute-scan / exact-balltree / approximate-LSH
// probe workloads, recall measurement against the brute golden, and the
// baseline-JSON encoding — used by both BenchmarkANNKNN (the
// CI-uploaded snapshot) and the `deeplens-bench ann-knn` subcommand so
// the two surfaces cannot drift apart.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/exec"
)

// ANNKNNRows is the ingested row count: large enough that the brute
// scan's n·d distance computations dominate and the index's sublinear
// probe shows.
const ANNKNNRows = 12000

// ANNKNNDim is the vector dimensionality (the embedding regime, not the
// toy one).
const ANNKNNDim = 32

// ANNKNNClusters spreads the rows over well-separated centers; ~125
// rows per cluster keeps every top-k inside one cluster.
const ANNKNNClusters = 96

// ANNKNNK is the probe depth.
const ANNKNNK = 10

// ANNKNNQueries is the query-set size each measurement cycles through.
const ANNKNNQueries = 32

// ANNKNNCol names the synthetic collection.
const ANNKNNCol = "annknn.vecs"

// ANNKNNSchema declares the indexed vector field.
func ANNKNNSchema() core.Schema {
	return core.Schema{
		Data:   core.Pixels(0, 0),
		Fields: []core.Field{{Name: "emb", Kind: core.KindVec, VecDim: ANNKNNDim}},
	}
}

// ANNKNNPatch generates row i deterministically: i%ANNKNNClusters picks
// a center, a tiny per-row jitter spreads the members without leaving
// the cluster's neighborhood. Centers straddle the origin — random-
// hyperplane signatures separate by direction, so an all-positive cloud
// would pile every cluster into the same few buckets and turn the LSH
// probe into a disguised linear scan.
func ANNKNNPatch(i int) *core.Patch {
	v := make([]float32, ANNKNNDim)
	c := i % ANNKNNClusters
	for d := range v {
		v[d] = float32((c*31+d*17)%101)/101.0*10 - 5 + float32(((i/ANNKNNClusters)%23)*((d*13)%7))*0.0007
	}
	return &core.Patch{
		Ref:  core.Ref{Source: "annknn", Frame: uint64(i)},
		Meta: core.Metadata{"emb": core.VecV(v)},
	}
}

// ANNKNNQuery returns query qi: a stored row's vector nudged off-grid,
// so probes search near, not on, an indexed point.
func ANNKNNQuery(qi int) []float32 {
	src := ANNKNNPatch((qi * 379) % ANNKNNRows).Meta["emb"].V
	q := append([]float32(nil), src...)
	q[qi%ANNKNNDim] += 0.0003
	return q
}

// ANNKNNFixture is the materialized experiment state: one warm snapshot
// with both index modes prebuilt, so measurements isolate probe
// execution from build cost.
type ANNKNNFixture struct {
	DB     *core.DB
	Col    *core.Collection
	Snap   []*core.Patch
	Exact  *core.VectorIndex
	Approx *core.VectorIndex
}

// NewANNKNNFixture ingests rows synthetic vectors under dir and builds
// both vector indexes over the warm snapshot.
func NewANNKNNFixture(dir string, rows int) (*ANNKNNFixture, error) {
	db, err := core.Open(filepath.Join(dir, "annknn.db"), exec.New(exec.CPU))
	if err != nil {
		return nil, err
	}
	col, err := db.CreateCollection(ANNKNNCol, ANNKNNSchema())
	if err != nil {
		db.Close()
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(ANNKNNPatch(i)); err != nil {
			db.Close()
			return nil, err
		}
	}
	snap, ver, err := col.Snapshot()
	if err != nil {
		db.Close()
		return nil, err
	}
	f := &ANNKNNFixture{DB: db, Col: col, Snap: snap}
	if f.Exact, err = col.VectorIndexAt(snap, ver, "emb", core.VecExact); err != nil {
		db.Close()
		return nil, err
	}
	if f.Approx, err = col.VectorIndexAt(snap, ver, "emb", core.VecApprox); err != nil {
		db.Close()
		return nil, err
	}
	return f, nil
}

// Close releases the fixture's database.
func (f *ANNKNNFixture) Close() { f.DB.Close() }

// Brute answers query qi by scanning the snapshot (the reference path).
func (f *ANNKNNFixture) Brute(qi int) []core.VecNeighbor {
	return core.BruteKNN(f.Snap, "emb", ANNKNNQuery(qi%ANNKNNQueries), ANNKNNK)
}

// ExactKNN answers query qi through the balltree index.
func (f *ANNKNNFixture) ExactKNN(qi int) []core.VecNeighbor {
	return f.Exact.KNN(ANNKNNQuery(qi%ANNKNNQueries), ANNKNNK)
}

// ApproxKNN answers query qi through the LSH index.
func (f *ANNKNNFixture) ApproxKNN(qi int) []core.VecNeighbor {
	return f.Approx.KNN(ANNKNNQuery(qi%ANNKNNQueries), ANNKNNK)
}

// ANNKNNRecall measures the approximate path's tie-tolerant recall over
// the whole query set: an approximate neighbor no farther than the
// brute kth distance counts as found.
func (f *ANNKNNFixture) ANNKNNRecall() float64 {
	hits, want := 0, 0
	for qi := 0; qi < ANNKNNQueries; qi++ {
		golden := f.Brute(qi)
		if len(golden) == 0 {
			continue
		}
		dk := golden[len(golden)-1].Dist
		want += len(golden)
		for _, n := range f.ApproxKNN(qi) {
			if n.Dist <= dk {
				hits++
			}
		}
	}
	if want == 0 {
		return 0
	}
	return float64(hits) / float64(want)
}

// ANNKNNPoint is one measured probe method of the ann-knn curve.
type ANNKNNPoint struct {
	Method  string  `json:"method"` // "brute-scan" | "index-exact" | "index-lsh"
	NS      float64 `json:"ns_per_query"`
	Speedup float64 `json:"speedup_vs_brute,omitempty"`
	Recall  float64 `json:"recall,omitempty"`
}

// WriteANNKNNJSON fills in speedups against the brute-scan point and
// writes the baseline snapshot (the artifact CI uploads alongside the
// other perf curves).
func WriteANNKNNJSON(path string, rows int, points []ANNKNNPoint) error {
	brute := 0.0
	for _, p := range points {
		if p.Method == "brute-scan" {
			brute = p.NS
		}
	}
	for i := range points {
		if points[i].Method != "brute-scan" && points[i].NS > 0 && brute > 0 {
			points[i].Speedup = brute / points[i].NS
		}
	}
	out := struct {
		Description string        `json:"description"`
		GoMaxProcs  int           `json:"gomaxprocs"`
		Rows        int           `json:"rows"`
		Dim         int           `json:"dim"`
		K           int           `json:"k"`
		RecallFloor float64       `json:"recall_floor"`
		Methods     []ANNKNNPoint `json:"methods"`
	}{
		Description: "ANN-indexed kNN probes vs brute-force scan: exact balltree and approximate LSH over a clustered vector collection, warm prebuilt indexes",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Rows:        rows,
		Dim:         ANNKNNDim,
		K:           ANNKNNK,
		RecallFloor: core.ANNDefaultRecall,
		Methods:     points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ANNKNNCheck verifies the fixture's correctness contract once per
// process: exact probes byte-identical to brute, approximate recall at
// or above the floor.
func (f *ANNKNNFixture) ANNKNNCheck() error {
	for qi := 0; qi < ANNKNNQueries; qi++ {
		got, want := f.ExactKNN(qi), f.Brute(qi)
		if len(got) != len(want) {
			return fmt.Errorf("bench: exact knn q%d returned %d of %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("bench: exact knn q%d diverges from brute at rank %d: %v != %v",
					qi, i, got[i], want[i])
			}
		}
	}
	if r := f.ANNKNNRecall(); r < core.ANNDefaultRecall {
		return fmt.Errorf("bench: lsh recall %.3f below the %.2f floor", r, core.ANNDefaultRecall)
	}
	return nil
}
