package bench

// Shared fixture for the tiered-column experiment: the colscan
// collection rebuilt under a constrained segment-cache budget, swept
// across row counts, measuring the selective filter cold (all segments
// evicted), warm (whatever the budget keeps resident), and zone-pruned
// (no segment ever faults), against the unbudgeted in-memory store.
// Used by both BenchmarkTieredColumns (the CI-uploaded snapshot) and
// the `deeplens-bench tiered-scan` subcommand so the two surfaces
// cannot drift apart.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/exec"
)

// TieredScanRowsSweep is the ingested-row sweep: from the colscan
// default up to a column footprint ~17x the budget.
var TieredScanRowsSweep = []int{12000, 50000, 200000}

// TieredScanBudget is the constrained resident-segment budget (bytes):
// far below the column footprint at every sweep point, so scans
// continuously fault and evict.
const TieredScanBudget = 256 << 10

// TieredScanPrunedRank is an equality constant above every rank zone
// map's maximum (ranks are i % 1009), so the predicate prunes every
// segment without loading one.
const TieredScanPrunedRank = 2000

// NewTieredCollection ingests rows of the colscan fixture under dir
// with a budgeted segment cache installed, and projects the scanned
// columns so every sealed segment has spilled before measurement.
func NewTieredCollection(dir string, rows int, budget int64) (*core.DB, *core.Collection, *core.SegmentCache, error) {
	db, err := core.Open(filepath.Join(dir, "tiered.db"), exec.New(exec.CPU))
	if err != nil {
		return nil, nil, nil, err
	}
	sc := core.NewSegmentCache(budget)
	db.SetSegmentCache(sc)
	col, err := db.CreateCollection(ColScanCol, ColScanSchema())
	if err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(ColScanPatch(i)); err != nil {
			db.Close()
			return nil, nil, nil, err
		}
	}
	cs, err := col.Columns()
	if err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	for _, f := range []string{"label", "score", "rank"} {
		cs.Column(f)
	}
	return db, col, sc, nil
}

// TieredScanPoint is one sweep size's measured workloads and the cache
// activity they generated.
type TieredScanPoint struct {
	Rows int `json:"rows"`
	// ColdFilterNS: selective label filter with every segment evicted
	// first — pays segment reload on top of the scan.
	ColdFilterNS float64 `json:"cold_filter_ns"`
	// WarmFilterNS: the same filter immediately re-run — only whatever
	// the budget kept resident is free; the rest faults again.
	WarmFilterNS float64 `json:"warm_filter_ns"`
	// PrunedFilterNS: an equality no zone map can satisfy — answered
	// from resident summaries, zero segment loads at any budget.
	PrunedFilterNS float64 `json:"pruned_filter_ns"`
	// InMemFilterNS: the same selective filter on an unbudgeted
	// in-memory store over the same snapshot (the tier's overhead
	// reference).
	InMemFilterNS float64 `json:"inmem_filter_ns"`

	SegmentSpills    int64 `json:"segment_spills"`
	SegmentLoads     int64 `json:"segment_loads"`
	SegmentEvictions int64 `json:"segment_evictions"`
	ResidentBytes    int64 `json:"resident_bytes"`
}

// WriteTieredScanJSON writes the baseline snapshot (the artifact CI
// uploads alongside the columnar-scan curve).
func WriteTieredScanJSON(path string, budget int64, points []TieredScanPoint) error {
	out := struct {
		Description string            `json:"description"`
		GoMaxProcs  int               `json:"gomaxprocs"`
		BudgetBytes int64             `json:"budget_bytes"`
		BlockSize   int               `json:"block_size"`
		Selectivity float64           `json:"selectivity"`
		Sweep       []TieredScanPoint `json:"sweep"`
	}{
		Description: "tiered column store under a constrained memory budget: selective filter cold/warm/zone-pruned vs the unbudgeted in-memory store, swept over ingested rows",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		BudgetBytes: budget,
		BlockSize:   core.ColumnBlockSize,
		Selectivity: 1.0 / ColScanLabels,
		Sweep:       points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MeasureTieredScan runs the full sweep and returns one point per row
// count. iters is the min-wall repetition count per workload.
func MeasureTieredScan(dir string, sizes []int, budget int64, iters int) ([]TieredScanPoint, error) {
	points := make([]TieredScanPoint, 0, len(sizes))
	for _, rows := range sizes {
		sub, err := os.MkdirTemp(dir, "tiered")
		if err != nil {
			return nil, err
		}
		db, col, sc, err := NewTieredCollection(sub, rows, budget)
		if err != nil {
			return nil, err
		}
		pt := TieredScanPoint{Rows: rows}
		cs, err := col.Columns()
		if err != nil {
			db.Close()
			return nil, err
		}
		filter := func() error {
			if _, ok := cs.FilterEq("label", ColScanTarget()); !ok {
				return fmt.Errorf("bench: label lost its column at %d rows", rows)
			}
			return nil
		}
		if pt.ColdFilterNS, err = MinWallNS(iters, func() error {
			sc.EvictAll()
			return filter()
		}); err != nil {
			db.Close()
			return nil, err
		}
		if pt.WarmFilterNS, err = MinWallNS(iters, filter); err != nil {
			db.Close()
			return nil, err
		}
		if pt.PrunedFilterNS, err = MinWallNS(iters, func() error {
			if sel, ok := cs.FilterEq("rank", core.IntV(TieredScanPrunedRank)); !ok || len(sel) != 0 {
				return fmt.Errorf("bench: pruned predicate matched %d rows", len(sel))
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, err
		}
		mem := core.NewColumnStore(cs.Patches(), cs.Version())
		if pt.InMemFilterNS, err = MinWallNS(iters, func() error {
			if _, ok := mem.FilterEq("label", ColScanTarget()); !ok {
				return fmt.Errorf("bench: in-memory label column missing at %d rows", rows)
			}
			return nil
		}); err != nil {
			db.Close()
			return nil, err
		}
		st := sc.Stats()
		pt.SegmentSpills = st.Spills
		pt.SegmentLoads = st.Loads
		pt.SegmentEvictions = st.Evictions
		pt.ResidentBytes = st.ResidentBytes
		if err := db.Close(); err != nil {
			return nil, err
		}
		if err := os.RemoveAll(sub); err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}
