package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/balltree"
	"repro/internal/btree"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/hashidx"
	"repro/internal/kdtree"
	"repro/internal/kv"
	"repro/internal/rtree"
	"repro/internal/sortedfile"
	"repro/internal/video"
	"repro/internal/vision"
)

// ------------------------------------------------------------- Figure 2 ----

// Fig2Row is one encoding configuration: storage footprint and the
// downstream accuracy after decoding.
type Fig2Row struct {
	Format   string
	Bytes    int64
	Ratio    float64 // RAW bytes / Bytes
	Accuracy float64 // detection F1 against ground truth (sampled frames)
	Q2Agree  float64 // q2 frame-level vehicle-presence agreement
}

// Fig2Encoding reproduces Figure 2: RAW vs inter-coded video at three
// quality levels, reporting storage and q2 accuracy. Frames are sampled
// at the given stride for the accuracy measurement to bound detector cost.
func Fig2Encoding(cfg dataset.Config, accuracyStride int, dev exec.Device) ([]Fig2Row, error) {
	tr := dataset.NewTraffic(cfg)
	det := vision.NewDetector(dev, ModelSeed)
	frames := make([]*codec.Image, tr.Frames)
	var rawBytes int64
	for t := 0; t < tr.Frames; t++ {
		img, _ := tr.Render(t)
		frames[t] = img
		rawBytes += int64(img.RawSize())
	}
	// Accuracy has two facets: per-frame vehicle presence (q2's answer)
	// and full detection F1 (all classes, IoU >= 0.3 against visible
	// ground truth). Small pedestrians lose recall first as quantization
	// grows — the degradation the paper reports for aggressive encodings.
	measure := func(decoded []*codec.Image) (f1, q2 float64) {
		agree, total := 0, 0
		var f1sum float64
		for t := 0; t < len(decoded); t += accuracyStride {
			dets := det.Detect(decoded[t])
			pred := false
			for _, d := range dets {
				if d.Class == vision.ClassCar {
					pred = true
					break
				}
			}
			if pred == tr.VehiclePresent(t) {
				agree++
			}
			gts := tr.Scene.GroundTruth(t)
			f1sum += detectionF1(dets, gts)
			total++
		}
		return f1sum / float64(total), float64(agree) / float64(total)
	}
	f1, q2 := measure(frames)
	rows := []Fig2Row{{Format: "RAW", Bytes: rawBytes, Ratio: 1, Accuracy: f1, Q2Agree: q2}}
	for _, q := range []codec.Quality{codec.QualityHigh, codec.QualityMedium, codec.QualityLow} {
		enc, err := codec.EncodeDLV(frames, q, codec.DefaultGOP)
		if err != nil {
			return nil, err
		}
		dec, err := codec.DecodeDLV(enc)
		if err != nil {
			return nil, err
		}
		f1, q2 := measure(dec)
		rows = append(rows, Fig2Row{
			Format:   "DLV-" + q.String(),
			Bytes:    int64(len(enc)),
			Ratio:    float64(rawBytes) / float64(len(enc)),
			Accuracy: f1,
			Q2Agree:  q2,
		})
	}
	return rows, nil
}

// detectionF1 scores one frame's detections against visible ground truth
// (IoU >= 0.3, class must match, visibility >= 0.6 to count as expected).
func detectionF1(dets []vision.Detection, gts []vision.GT) float64 {
	used := make([]bool, len(gts))
	tp := 0
	for _, d := range dets {
		for gi, gt := range gts {
			if used[gi] || gt.Class != d.Class || gt.Visibility < 0.6 {
				continue
			}
			if vision.IoU(d.X1, d.Y1, d.X2, d.Y2, gt.X1, gt.Y1, gt.X2, gt.Y2) >= 0.3 {
				used[gi] = true
				tp++
				break
			}
		}
	}
	expected := 0
	for _, gt := range gts {
		if gt.Visibility >= 0.6 {
			expected++
		}
	}
	if expected == 0 && len(dets) == 0 {
		return 1
	}
	prec := 1.0
	if len(dets) > 0 {
		prec = float64(tp) / float64(len(dets))
	}
	rec := 1.0
	if expected > 0 {
		rec = float64(tp) / float64(expected)
	}
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

// ------------------------------------------------------------- Figure 3 ----

// Fig3Row is one storage format's end-to-end latency for the
// temporally-filtered q2.
type Fig3Row struct {
	Format  string
	Latency time.Duration
	Frames  int // frames actually decoded to answer the query
}

// Fig3Formats reproduces Figure 3: q2 with a temporal filter across the
// four storage formats. The filter selects window frames starting at 2/3
// of the video; formats with pushdown decode only (approximately) that
// window, the sequential format decodes the whole prefix.
func Fig3Formats(cfg dataset.Config, window int, dev exec.Device) ([]Fig3Row, error) {
	tr := dataset.NewTraffic(cfg)
	det := vision.NewDetector(dev, ModelSeed)
	dir, err := tmpDir()
	if err != nil {
		return nil, err
	}
	st, err := kv.Open(filepath.Join(dir, "fig3.db"))
	if err != nil {
		return nil, err
	}
	defer st.Close()

	gen := func(i uint64) *codec.Image {
		img, _ := tr.Render(int(i))
		return img
	}
	n := uint64(tr.Frames)
	bRaw, _ := st.Bucket("raw")
	bDLJ, _ := st.Bucket("dlj")
	bSeg, _ := st.Bucket("seg")
	ef, err := video.NewEncodedFile(filepath.Join(dir, "fig3.dlv"), codec.QualityHigh, codec.DefaultGOP)
	if err != nil {
		return nil, err
	}
	stores := []video.Store{
		video.NewFrameFile(bRaw, false, codec.QualityHigh),
		video.NewFrameFile(bDLJ, true, codec.QualityHigh),
		ef,
		video.NewSegmentedFile(bSeg, codec.QualityHigh, codec.DefaultGOP, 32),
	}
	for _, s := range stores {
		if err := video.Ingest(s, n, gen); err != nil {
			return nil, fmt.Errorf("%v ingest: %w", s.Format(), err)
		}
	}
	lo := n * 2 / 3
	hi := lo + uint64(window)
	if hi > n {
		hi = n
	}
	var rows []Fig3Row
	for _, s := range stores {
		start := time.Now()
		decoded := 0
		count := 0
		err := s.Scan(lo, hi, func(f video.Frame) bool {
			decoded++
			for _, d := range det.Detect(f.Image) {
				if d.Class == vision.ClassCar {
					count++
					break
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		// The encoded file pays decode cost for the whole prefix even
		// though Scan only surfaces [lo,hi); count those frames.
		if s.Format() == video.FormatDLV {
			decoded = int(hi)
		}
		rows = append(rows, Fig3Row{Format: s.Format().String(), Latency: time.Since(start), Frames: decoded})
	}
	return rows, nil
}

// ------------------------------------------------------------- Figure 4 ----

// Fig4Row compares query time without and with indexes for one query.
type Fig4Row struct {
	Query     string
	Baseline  time.Duration
	Tuned     time.Duration
	Speedup   float64
	BasePlan  string
	TunedPlan string
}

// Fig4Indexes reproduces Figure 4 on an ingested environment.
func Fig4Indexes(e *Env) ([]Fig4Row, error) {
	res, err := e.RunAll()
	if err != nil {
		return nil, err
	}
	var rows []Fig4Row
	for _, q := range []string{"q1", "q2", "q3", "q4", "q5", "q6"} {
		pair := res[q]
		sp := float64(pair[0].Duration) / float64(pair[1].Duration)
		rows = append(rows, Fig4Row{
			Query: q, Baseline: pair[0].Duration, Tuned: pair[1].Duration,
			Speedup: sp, BasePlan: pair[0].Plan, TunedPlan: pair[1].Plan,
		})
	}
	return rows, nil
}

// ------------------------------------------------------------- Figure 5 ----

// Fig5Row is the full-pipeline comparison for one query: ETL + on-the-fly
// index construction + query (DL) vs ETL + baseline query (BL).
type Fig5Row struct {
	Query     string
	BL        time.Duration
	DL        time.Duration
	IndexCost time.Duration
	Speedup   float64
}

// Fig5Pipeline reproduces Figure 5. The shared ETL cost is the recorded
// materialization time of each query's input collection; DL adds measured
// on-the-fly index construction.
func Fig5Pipeline(e *Env) ([]Fig5Row, error) {
	etlFor := map[string]time.Duration{
		"q1": e.ETLTime[ColPCImages],
		"q2": e.ETLTime[ColTrafficDets],
		"q3": e.ETLTime[ColFBDets],
		"q4": e.ETLTime[ColTrafficDets],
		"q5": e.ETLTime[ColPCImages],
		"q6": e.ETLTime[ColTrafficDets],
	}
	res, err := e.RunAll()
	if err != nil {
		return nil, err
	}
	idxCost := map[string]time.Duration{}
	// Measure on-the-fly build costs for the tuned designs.
	pcCol, err := e.DB.Collection(ColPCImages)
	if err != nil {
		return nil, err
	}
	if idx, err := e.DB.BuildIndex(pcCol, "ghist", core.IdxBallTree); err == nil {
		idxCost["q1"] = idx.BuildTime
	}
	trCol, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return nil, err
	}
	if idx, err := e.DB.BuildIndex(trCol, "label", core.IdxHash); err == nil {
		idxCost["q2"] = idx.BuildTime
		idxCost["q4"] = idx.BuildTime
		idxCost["q6"] = idx.BuildTime
	}
	var rows []Fig5Row
	for _, q := range []string{"q1", "q2", "q3", "q4", "q5", "q6"} {
		pair := res[q]
		bl := etlFor[q] + pair[0].Duration
		dl := etlFor[q] + idxCost[q] + pair[1].Duration
		rows = append(rows, Fig5Row{
			Query: q, BL: bl, DL: dl, IndexCost: idxCost[q],
			Speedup: float64(bl) / float64(dl),
		})
	}
	return rows, nil
}

// ------------------------------------------------------------- Figure 6 ----

// Fig6Row is one (index, n) construction-time measurement.
type Fig6Row struct {
	Index string
	N     int
	Build time.Duration
}

// Fig6IndexBuild reproduces Figure 6: construction time of every index
// kind as a function of the number of tuples. Synthetic tuples carry an
// integer key, a 2-D bounding box and a 64-d feature vector.
func Fig6IndexBuild(sizes []int, seed int64) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, n)
		rects := make([]rtree.Rect, n)
		vecs := make([][]float32, n)
		for i := 0; i < n; i++ {
			keys[i] = uint64(rng.Int63n(int64(n) * 4))
			x := rng.Float64() * 1000
			y := rng.Float64() * 1000
			rects[i] = rtree.BBox2D(x, y, x+5+rng.Float64()*20, y+5+rng.Float64()*20)
			v := make([]float32, 64)
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			vecs[i] = v
		}
		dir, err := tmpDir()
		if err != nil {
			return nil, err
		}

		// Hash.
		p, err := kv.OpenPager(filepath.Join(dir, "hash.db"))
		if err != nil {
			return nil, err
		}
		h, err := hashidx.Create(p)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := h.Put(u64le(keys[i], uint64(i)), u64bytes(uint64(i))); err != nil {
				return nil, err
			}
		}
		h.Flush()
		rows = append(rows, Fig6Row{"hash", n, time.Since(start)})
		p.Close()

		// B+ tree.
		p, err = kv.OpenPager(filepath.Join(dir, "btree.db"))
		if err != nil {
			return nil, err
		}
		bt := btree.New(p)
		start = time.Now()
		for i := 0; i < n; i++ {
			if err := bt.Put(u64le(keys[i], uint64(i)), nil); err != nil {
				return nil, err
			}
		}
		rows = append(rows, Fig6Row{"btree", n, time.Since(start)})
		p.Close()

		// Sorted file.
		recs := make([]sortedfile.Record, n)
		for i := 0; i < n; i++ {
			recs[i] = sortedfile.Record{Key: keys[i], Val: u64bytes(uint64(i))}
		}
		start = time.Now()
		if err := sortedfile.Build(filepath.Join(dir, "sorted.sf"), recs); err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{"sortedfile", n, time.Since(start)})

		// R-tree (one-at-a-time insertion, as in the paper's prototype).
		rt := rtree.New(2)
		start = time.Now()
		for i := 0; i < n; i++ {
			if err := rt.Insert(rects[i], uint64(i)); err != nil {
				return nil, err
			}
		}
		rows = append(rows, Fig6Row{"rtree", n, time.Since(start)})

		// Ball tree.
		pts := make([]balltree.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = balltree.Point{Vec: vecs[i], ID: uint64(i)}
		}
		start = time.Now()
		if _, err := balltree.Build(pts); err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{"balltree", n, time.Since(start)})
	}
	return rows, nil
}

// ------------------------------------------------------------- Figure 7 ----

// Fig7Row is one ball-tree join timing at a given build size and dim.
type Fig7Row struct {
	BuildSize int
	Dim       int
	Probe     int
	Join      time.Duration
}

// Fig7BallTreeJoin reproduces Figure 7: ball-tree join execution time as
// a function of the indexed relation's size, in low- and high-dimensional
// feature spaces. Data is a Gaussian-mixture (clustered, like patch
// features); the probe side is fixed.
func Fig7BallTreeJoin(sizes []int, dims []int, probeN int, seed int64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, dim := range dims {
		rng := rand.New(rand.NewSource(seed + int64(dim)))
		// Mixture centers.
		const k = 20
		centers := make([][]float32, k)
		for c := range centers {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64() * 3)
			}
			centers[c] = v
		}
		sample := func(n int) []balltree.Point {
			pts := make([]balltree.Point, n)
			for i := range pts {
				c := centers[rng.Intn(k)]
				v := make([]float32, dim)
				for d := range v {
					v[d] = c[d] + float32(rng.NormFloat64()*0.3)
				}
				pts[i] = balltree.Point{Vec: v, ID: uint64(i)}
			}
			return pts
		}
		probes := sample(probeN)
		eps := 0.5 * float64(dim) / 8
		for _, n := range sizes {
			build := sample(n)
			bt, err := balltree.Build(build)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			matches := 0
			for _, q := range probes {
				bt.RangeSearch(q.Vec, eps, func(balltree.Point, float64) bool {
					matches++
					return true
				})
			}
			rows = append(rows, Fig7Row{BuildSize: n, Dim: dim, Probe: probeN, Join: time.Since(start)})
		}
	}
	return rows, nil
}

// ------------------------------------------------------------- Figure 8 ----

// Fig8Row reports one query's ETL and query time on one device.
type Fig8Row struct {
	Query  string
	Device exec.Kind
	ETL    time.Duration
	Query_ time.Duration
}

// Fig8Devices reproduces Figure 8: ETL time (inference-dominated) and
// query time for each benchmark query on CPU, AVX and the simulated GPU.
// ETL is measured per dataset pipeline; the image-matching queries' query
// time uses the device-batched all-pairs implementation (as the paper's
// vectorized/GPU variants do), the rest run their tuned scalar plans.
func Fig8Devices(cfg dataset.Config, devices []exec.Kind) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, kind := range devices {
		dev := exec.New(kind)
		dir, err := tmpDir()
		if err != nil {
			return nil, err
		}
		etlStart := time.Now()
		e, err := NewEnv(dir, cfg, dev)
		if err != nil {
			return nil, err
		}
		_ = etlStart
		etlFor := map[string]time.Duration{
			"q1": e.ETLTime[ColPCImages],
			"q2": e.ETLTime[ColTrafficDets],
			"q3": e.ETLTime[ColFBDets],
			"q4": e.ETLTime[ColTrafficDets],
			"q5": e.ETLTime[ColPCImages],
			"q6": e.ETLTime[ColTrafficDets],
		}
		// Query time: q1 and q4 use the batched all-pairs matcher on this
		// device; the others use their tuned plans (device-independent).
		qt := map[string]time.Duration{}
		pcCol, err := e.DB.Collection(ColPCImages)
		if err != nil {
			return nil, err
		}
		pcPs, _ := pcCol.Patches()
		start := time.Now()
		if _, err := core.SimilarityJoinBatched(e.DB, pcPs, pcPs, core.SimilarityJoinOpts{
			LeftField: "emb", RightField: "emb", Eps: epsNearDup, DedupUnordered: true}); err != nil {
			return nil, err
		}
		qt["q1"] = time.Since(start)

		trCol, err := e.DB.Collection(ColTrafficDets)
		if err != nil {
			return nil, err
		}
		peds, err := e.DB.ExecuteFilter(trCol, "label", core.StrV("pedestrian"), core.FilterScan)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		pairs, err := core.SimilarityJoinBatched(e.DB, peds, peds, core.SimilarityJoinOpts{
			LeftField: "emb", RightField: "emb", Eps: epsSameIdentity, DedupUnordered: true})
		if err != nil {
			return nil, err
		}
		core.DistinctClusters(peds, pairs)
		qt["q4"] = time.Since(start)

		for _, q := range []string{"q2", "q3", "q5", "q6"} {
			var r QueryResult
			var err error
			switch q {
			case "q2":
				r, err = e.Q2(true)
			case "q3":
				r, err = e.Q3(true)
			case "q5":
				r, err = e.Q5(e.PC.Vocabulary[0], true)
			case "q6":
				r, err = e.Q6(true)
			}
			if err != nil {
				return nil, err
			}
			qt[q] = r.Duration
		}
		for _, q := range []string{"q1", "q2", "q3", "q4", "q5", "q6"} {
			rows = append(rows, Fig8Row{Query: q, Device: kind, ETL: etlFor[q], Query_: qt[q]})
		}
		e.Close()
	}
	return rows, nil
}

// -------------------------------------------------------------- Table 1 ----

// Table1Row is one q4 execution strategy with its accuracy profile.
type Table1Row struct {
	Plan      string
	Recall    float64
	Precision float64
	Runtime   time.Duration
	Distinct  int
}

// scoreThreshold is the detection confidence cut used by the
// performance-first plan's filter.
const scoreThreshold = 0.35

// minClusterSize drops singleton clusters (spurious one-off detections)
// from q4's distinct count in both plans.
const minClusterSize = 2

// Table1Plans reproduces Table 1: q4 under the two execution orders.
//
//	Patch, Filter, Match: filter to confident pedestrian detections, then
//	  deduplicate — the classical pushdown plan; identities whose every
//	  observation fell below the confidence cut are lost.
//	Patch, Match, Filter: deduplicate all detections first, then keep
//	  clusters containing at least one pedestrian-labeled member — slower
//	  (matches everything) but recovers weakly-detected identities.
func Table1Plans(e *Env) ([]Table1Row, error) {
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return nil, err
	}
	all, err := col.Patches()
	if err != nil {
		return nil, err
	}
	opts := core.SimilarityJoinOpts{LeftField: "emb", RightField: "emb",
		Eps: epsSameIdentity, DedupUnordered: true}

	// Plan A: Patch, Filter, Match.
	startA := time.Now()
	var filtered []*core.Patch
	for _, p := range all {
		if p.Meta["label"].S == "pedestrian" && p.Meta["score"].F >= scoreThreshold {
			filtered = append(filtered, p)
		}
	}
	pairsA, err := core.SimilarityJoinOnTheFly(filtered, filtered, opts)
	if err != nil {
		return nil, err
	}
	clustersA := dropSmall(clusterMembers(filtered, pairsA), minClusterSize)
	durA := time.Since(startA)

	// Plan B: Patch, Match, Filter.
	startB := time.Now()
	pairsB, err := core.SimilarityJoinOnTheFly(all, all, opts)
	if err != nil {
		return nil, err
	}
	clustersAll := clusterMembers(all, pairsB)
	var clustersB [][]*core.Patch
	for _, cl := range clustersAll {
		hasPed := false
		for _, p := range cl {
			if p.Meta["label"].S == "pedestrian" {
				hasPed = true
				break
			}
		}
		if hasPed {
			clustersB = append(clustersB, cl)
		}
	}
	clustersB = dropSmall(clustersB, minClusterSize)
	durB := time.Since(startB)

	recA, precA := e.q4ClusterAccuracy(clustersA)
	recB, precB := e.q4ClusterAccuracy(clustersB)
	return []Table1Row{
		{Plan: "Patch, Filter, Match", Recall: recA, Precision: precA, Runtime: durA, Distinct: len(clustersA)},
		{Plan: "Patch, Match, Filter", Recall: recB, Precision: precB, Runtime: durB, Distinct: len(clustersB)},
	}, nil
}

// dropSmall removes clusters below the minimum size.
func dropSmall(clusters [][]*core.Patch, minSize int) [][]*core.Patch {
	out := clusters[:0]
	for _, cl := range clusters {
		if len(cl) >= minSize {
			out = append(out, cl)
		}
	}
	return out
}

// clusterMembers groups patches into similarity clusters (union-find over
// match pairs) and returns the member lists.
func clusterMembers(patches []*core.Patch, pairs []core.Tuple) [][]*core.Patch {
	reps := core.DistinctClusters(patches, pairs)
	_ = reps
	parent := map[core.PatchID]core.PatchID{}
	var find func(core.PatchID) core.PatchID
	find = func(x core.PatchID) core.PatchID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range patches {
		parent[p.ID] = p.ID
	}
	for _, pr := range pairs {
		a, b := find(pr[0].ID), find(pr[1].ID)
		if a != b {
			parent[a] = b
		}
	}
	groups := map[core.PatchID][]*core.Patch{}
	for _, p := range patches {
		r := find(p.ID)
		groups[r] = append(groups[r], p)
	}
	out := make([][]*core.Patch, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].ID < out[j][0].ID })
	return out
}

// q4ClusterAccuracy scores predicted identity clusters against the
// simulator's pedestrian identities: each cluster maps to the ground-truth
// identity that the majority of its members overlap (IoU >= 0.3 at their
// frames); recall counts GT identities claimed by >= 1 cluster, precision
// counts clusters that map to a not-yet-claimed true identity.
func (e *Env) q4ClusterAccuracy(clusters [][]*core.Patch) (recall, precision float64) {
	// Ground-truth boxes per frame, pedestrians only.
	gtIdentity := func(p *core.Patch) uint64 {
		f := int(p.Meta["frameno"].I)
		bb := p.Meta["bbox"].V
		best := uint64(0)
		bestIoU := 0.3
		for _, gt := range e.Traffic.Scene.GroundTruth(f) {
			if gt.Class != vision.ClassPedestrian {
				continue
			}
			iou := vision.IoU(int(bb[0]), int(bb[1]), int(bb[2]), int(bb[3]), gt.X1, gt.Y1, gt.X2, gt.Y2)
			if iou > bestIoU {
				bestIoU = iou
				best = gt.ID
			}
		}
		return best
	}
	truthIDs := map[uint64]bool{}
	for _, o := range e.Traffic.Scene.Objects {
		if o.Class == vision.ClassPedestrian && o.Appear < e.Traffic.Frames {
			truthIDs[o.ID] = true
		}
	}
	claimed := map[uint64]bool{}
	real := 0 // clusters whose majority maps to a true pedestrian identity
	for _, cl := range clusters {
		votes := map[uint64]int{}
		for _, p := range cl {
			if id := gtIdentity(p); id != 0 {
				votes[id]++
			}
		}
		bestID, bestVotes := uint64(0), 0
		for id, v := range votes {
			if v > bestVotes {
				bestID, bestVotes = id, v
			}
		}
		if bestID != 0 {
			real++
			claimed[bestID] = true
		}
	}
	// Recall: identities recovered by at least one cluster. Precision:
	// returned clusters that are real pedestrian groups (an identity split
	// across clusters costs count accuracy, not precision — matching the
	// paper's high-precision readings for both plans).
	if len(truthIDs) > 0 {
		recall = float64(len(claimed)) / float64(len(truthIDs))
	}
	if len(clusters) > 0 {
		precision = float64(real) / float64(len(clusters))
	}
	return recall, precision
}

// ------------------------------------------------------------ Ablations ----

// AblationLSHRow compares exact ball-tree matching to approximate LSH on
// the q4 matching step (§7.3's suggestion).
type AblationLSHRow struct {
	Method   string
	Pairs    int
	Recall   float64 // of the exact pair set
	Duration time.Duration
}

// AblationLSH runs the q4 matching step with the exact ball tree and with
// LSH, reporting speed and pair recall.
func AblationLSH(e *Env) ([]AblationLSHRow, error) {
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return nil, err
	}
	peds, err := e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterScan)
	if err != nil {
		return nil, err
	}
	opts := core.SimilarityJoinOpts{LeftField: "emb", RightField: "emb",
		Eps: epsSameIdentity, DedupUnordered: true}
	start := time.Now()
	exact, err := core.SimilarityJoinOnTheFly(peds, peds, opts)
	if err != nil {
		return nil, err
	}
	exactDur := time.Since(start)
	exactSet := map[[2]core.PatchID]bool{}
	for _, p := range exact {
		exactSet[[2]core.PatchID{p[0].ID, p[1].ID}] = true
	}

	if !e.DB.HasIndex(col, "emb", core.IdxLSH) {
		if _, err := e.DB.BuildIndex(col, "emb", core.IdxLSH); err != nil {
			return nil, err
		}
	}
	lshIdx, err := e.DB.Index(col, "emb", core.IdxLSH)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	approx, err := core.SimilarityJoinIndexed(e.DB, peds, col, lshIdx, opts)
	if err != nil {
		return nil, err
	}
	lshDur := time.Since(start)
	hit := 0
	for _, p := range approx {
		if exactSet[[2]core.PatchID{p[0].ID, p[1].ID}] {
			hit++
		}
	}
	lshRecall := 1.0
	if len(exactSet) > 0 {
		lshRecall = float64(hit) / float64(len(exactSet))
	}
	return []AblationLSHRow{
		{Method: "balltree (exact)", Pairs: len(exact), Recall: 1, Duration: exactDur},
		{Method: "lsh (approx)", Pairs: len(approx), Recall: lshRecall, Duration: lshDur},
	}, nil
}

// AblationSegmentRow sweeps the segmented file's clip length (§7.1's
// manually tuned granularity).
type AblationSegmentRow struct {
	ClipLen uint64
	Bytes   int64
	Latency time.Duration // temporally-filtered scan
}

// AblationSegment measures storage and filtered-scan latency across clip
// lengths.
func AblationSegment(cfg dataset.Config, clipLens []uint64, window int) ([]AblationSegmentRow, error) {
	tr := dataset.NewTraffic(cfg)
	n := uint64(tr.Frames)
	gen := func(i uint64) *codec.Image {
		img, _ := tr.Render(int(i))
		return img
	}
	dir, err := tmpDir()
	if err != nil {
		return nil, err
	}
	st, err := kv.Open(filepath.Join(dir, "seg.db"))
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var rows []AblationSegmentRow
	lo := n * 2 / 3
	hi := lo + uint64(window)
	if hi > n {
		hi = n
	}
	for _, cl := range clipLens {
		b, _ := st.Bucket(fmt.Sprintf("seg%d", cl))
		sf := video.NewSegmentedFile(b, codec.QualityHigh, codec.DefaultGOP, cl)
		if err := video.Ingest(sf, n, gen); err != nil {
			return nil, err
		}
		bytes, err := sf.StorageBytes()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sf.Scan(lo, hi, func(video.Frame) bool { return true }); err != nil {
			return nil, err
		}
		rows = append(rows, AblationSegmentRow{ClipLen: cl, Bytes: bytes, Latency: time.Since(start)})
	}
	return rows, nil
}

// AblationBuildSideRow compares indexing the smaller vs larger relation
// in the on-the-fly similarity join.
type AblationBuildSideRow struct {
	BuildSide string
	Duration  time.Duration
	Pairs     int
}

// AblationBuildSide measures both build-side choices for an asymmetric
// similarity join (PC embeddings vs a small probe subset).
func AblationBuildSide(e *Env) ([]AblationBuildSideRow, error) {
	col, err := e.DB.Collection(ColPCImages)
	if err != nil {
		return nil, err
	}
	ps, err := col.Patches()
	if err != nil {
		return nil, err
	}
	small := ps
	if len(ps) > 12 {
		small = ps[:12]
	}
	opts := core.SimilarityJoinOpts{LeftField: "ghist", RightField: "ghist", Eps: epsNearDup}
	// Build on the small side (probe with the large side).
	start := time.Now()
	a, err := core.SimilarityJoinOnTheFly(ps, small, opts)
	if err != nil {
		return nil, err
	}
	durSmall := time.Since(start)
	// Force building on the large side by flipping operands: OnTheFly
	// always builds the smaller, so emulate the bad plan directly.
	start = time.Now()
	bigIdx := make([]balltree.Point, 0, len(ps))
	byID := map[core.PatchID]*core.Patch{}
	for _, p := range ps {
		v, err := core.VecField(p, "ghist")
		if err != nil {
			return nil, err
		}
		bigIdx = append(bigIdx, balltree.Point{Vec: v, ID: uint64(p.ID)})
		byID[p.ID] = p
	}
	bt, err := balltree.Build(bigIdx)
	if err != nil {
		return nil, err
	}
	b := 0
	for _, q := range small {
		qv, _ := core.VecField(q, "ghist")
		bt.RangeSearch(qv, opts.Eps, func(pt balltree.Point, _ float64) bool {
			b++
			return true
		})
	}
	durLarge := time.Since(start)
	return []AblationBuildSideRow{
		{BuildSide: "smaller relation", Duration: durSmall, Pairs: len(a)},
		{BuildSide: "larger relation", Duration: durLarge, Pairs: b},
	}, nil
}

// AblationKDTreeRow compares KD-tree and ball-tree range-probe cost at one
// dimensionality (the §3.2 design choice: "a Ball-Tree was the most
// effective at answering Euclidean threshold queries in high-dimensional
// spaces").
type AblationKDTreeRow struct {
	Dim      int
	KDTree   time.Duration
	BallTree time.Duration
}

// AblationKDTree measures both trees on the same clustered data across
// dimensionalities; the KD-tree wins low-dim, the ball tree degrades far
// more slowly as dimension grows.
func AblationKDTree(dims []int, n, probes int, seed int64) ([]AblationKDTreeRow, error) {
	var rows []AblationKDTreeRow
	for _, dim := range dims {
		rng := rand.New(rand.NewSource(seed + int64(dim)))
		const k = 15
		centers := make([][]float32, k)
		for c := range centers {
			v := make([]float32, dim)
			for d := range v {
				v[d] = float32(rng.NormFloat64() * 3)
			}
			centers[c] = v
		}
		sample := func(cnt int) [][]float32 {
			out := make([][]float32, cnt)
			for i := range out {
				c := centers[rng.Intn(k)]
				v := make([]float32, dim)
				for d := range v {
					v[d] = c[d] + float32(rng.NormFloat64()*0.3)
				}
				out[i] = v
			}
			return out
		}
		data := sample(n)
		qs := sample(probes)
		eps := 0.5 * float64(dim) / 8

		kdPts := make([]kdtree.Point, n)
		ballPts := make([]balltree.Point, n)
		for i, v := range data {
			kdPts[i] = kdtree.Point{Vec: v, ID: uint64(i)}
			ballPts[i] = balltree.Point{Vec: v, ID: uint64(i)}
		}
		kt, err := kdtree.Build(kdPts)
		if err != nil {
			return nil, err
		}
		bt, err := balltree.Build(ballPts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, q := range qs {
			kt.RangeSearch(q, eps, func(kdtree.Point, float64) bool { return true })
		}
		kdDur := time.Since(start)
		start = time.Now()
		for _, q := range qs {
			bt.RangeSearch(q, eps, func(balltree.Point, float64) bool { return true })
		}
		ballDur := time.Since(start)
		rows = append(rows, AblationKDTreeRow{Dim: dim, KDTree: kdDur, BallTree: ballDur})
	}
	return rows, nil
}

// ---------------------------------------------------------------- misc ----

func u64bytes(v uint64) []byte { return kv.U64Key(v) }

// u64le builds a composite key of (key, uniquifier) for index sweeps.
func u64le(key, uniq uint64) []byte {
	out := make([]byte, 16)
	copy(out, kv.U64Key(key))
	copy(out[8:], kv.U64Key(uniq))
	return out
}

func tmpDir() (string, error) { return os.MkdirTemp("", "dl-bench-") }

// PrintRows writes any experiment's rows as an aligned table.
func PrintRows(w io.Writer, header string, lines []string) {
	fmt.Fprintln(w, header)
	for _, l := range lines {
		fmt.Fprintln(w, "  "+l)
	}
}
