package bench

// Shared fixture for the columnar-scan experiment: one synthetic
// metadata-heavy collection, the selective-filter and top-k workloads,
// min-wall measurement and baseline-JSON encoding, used by both
// BenchmarkColumnarScan (the CI-uploaded snapshot) and the
// `deeplens-bench columnar-scan` subcommand so the two surfaces cannot
// drift apart.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
)

// ColScanRows is the default ingested row count: comfortably past the
// 10k mark where the per-patch iterator overhead dominates scan time.
const ColScanRows = 12000

// ColScanLabels is the label cardinality; a single-label equality
// predicate passes 1/16 ≈ 6% of rows (the "selective" regime).
const ColScanLabels = 16

// ColScanTopK is the top-k workload's limit.
const ColScanTopK = 10

// ColScanCol names the synthetic collection.
const ColScanCol = "colscan.dets"

// ColScanSchema declares the scanned metadata fields.
func ColScanSchema() core.Schema {
	return core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "label", Kind: core.KindStr},
			{Name: "score", Kind: core.KindFloat},
			{Name: "rank", Kind: core.KindInt},
		},
	}
}

// ColScanPatch generates row i deterministically.
func ColScanPatch(i int) *core.Patch {
	return &core.Patch{
		Ref: core.Ref{Source: "colscan", Frame: uint64(i)},
		Meta: core.Metadata{
			"label": core.StrV(fmt.Sprintf("cls%02d", i%ColScanLabels)),
			"score": core.FloatV(float64((i*7919)%104729) / 104729),
			"rank":  core.IntV(int64(i % 1009)),
		},
	}
}

// ColScanTarget is the selective predicate's constant (≈6% of rows).
func ColScanTarget() core.Value { return core.StrV("cls03") }

// NewColScanCollection ingests rows synthetic rows under dir and warms
// the snapshot cache (both paths scan memory-resident patches; the
// experiment isolates scan execution, not storage I/O).
func NewColScanCollection(dir string, rows int) (*core.DB, *core.Collection, error) {
	db, err := core.Open(filepath.Join(dir, "colscan.db"), exec.New(exec.CPU))
	if err != nil {
		return nil, nil, err
	}
	col, err := db.CreateCollection(ColScanCol, ColScanSchema())
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(ColScanPatch(i)); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	if _, _, err := col.Snapshot(); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, col, nil
}

// ColScanFilterIter runs the selective filter through the row-at-a-time
// iterator path and returns the match count.
func ColScanFilterIter(db *core.DB, col *core.Collection) (int, error) {
	out, err := db.ExecuteFilter(col, "label", ColScanTarget(), core.FilterScan)
	return len(out), err
}

// ColScanFilterColumnar runs the same filter through the columnar scan.
func ColScanFilterColumnar(db *core.DB, col *core.Collection) (int, error) {
	out, err := db.ExecuteFilter(col, "label", ColScanTarget(), core.FilterColumnScan)
	return len(out), err
}

// ColScanTopKIter runs the top-k workload the pre-columnar way: full
// materializing sort, then trim.
func ColScanTopKIter(col *core.Collection) (int, error) {
	it := core.Limit(core.OrderBy(col.Scan(), "score", true), ColScanTopK)
	ts, err := core.Drain(it)
	return len(ts), err
}

// ColScanTopKColumnar runs the top-k workload over the column store.
func ColScanTopKColumnar(col *core.Collection) (int, error) {
	cs, err := col.Columns()
	if err != nil {
		return 0, err
	}
	top, ok := cs.TopK(nil, "score", false, ColScanTopK)
	if !ok {
		return 0, fmt.Errorf("bench: score field lost its column")
	}
	return len(cs.Materialize(top)), nil
}

// MinWallNS returns the fastest of iters runs of fn in nanoseconds —
// robust against scheduler noise, like the shard-scaling fixture.
func MinWallNS(iters int, fn func() error) (float64, error) {
	var s obs.Summary
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		s.ObserveDuration(time.Since(t0))
	}
	return s.Min() * 1e9, nil
}

// ColScanPoint is one measured workload of the columnar-scan curve.
type ColScanPoint struct {
	Workload   string  `json:"workload"` // "selective-filter" | "top-k"
	IteratorNS float64 `json:"iterator_ns"`
	ColumnarNS float64 `json:"columnar_ns"`
	Speedup    float64 `json:"speedup"`
}

// WriteColScanJSON fills in speedups and writes the baseline snapshot
// (the artifact CI uploads alongside the kernel-batching and
// shard-scaling curves).
func WriteColScanJSON(path string, rows int, points []ColScanPoint) error {
	for i := range points {
		if points[i].ColumnarNS > 0 {
			points[i].Speedup = points[i].IteratorNS / points[i].ColumnarNS
		}
	}
	out := struct {
		Description string         `json:"description"`
		GoMaxProcs  int            `json:"gomaxprocs"`
		Rows        int            `json:"rows"`
		Selectivity float64        `json:"selectivity"`
		BlockSize   int            `json:"block_size"`
		Workloads   []ColScanPoint `json:"workloads"`
	}{
		Description: "columnar scan engine vs row-at-a-time iterator: selective equality filter and top-k over patch metadata, warm snapshot",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Rows:        rows,
		Selectivity: 1.0 / ColScanLabels,
		BlockSize:   core.ColumnBlockSize,
		Workloads:   points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
