package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/shardbench"
)

// This file benchmarks scatter-gather shard scaling: the same scan-heavy
// query against the same rows partitioned across 1..8 shards, measured
// through the full serving path (admission, scatter wave, gather). The
// workload and JSON encoding are shared with the `deeplens-bench
// shard-scaling` subcommand via internal/shardbench; the curve is
// recorded to BENCH_shard_scaling.json — the perf baseline CI uploads
// alongside the kernel-batching snapshot.

var (
	ssMu    sync.Mutex
	ssCurve []shardbench.Point
)

// ssRecord upserts a curve point (the harness re-invokes sub-benchmarks
// with growing b.N; the final measurement per shard count wins).
func ssRecord(p shardbench.Point) {
	ssMu.Lock()
	defer ssMu.Unlock()
	for i, q := range ssCurve {
		if q.Shards == p.Shards {
			ssCurve[i] = p
			return
		}
	}
	ssCurve = append(ssCurve, p)
}

func ssService(tb testing.TB, n, rows int) *service.Service {
	tb.Helper()
	svc, cleanup, err := shardbench.NewService(tb.TempDir(), n, rows)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cleanup)
	return svc
}

// BenchmarkShardScaling measures the scan-heavy query through the full
// serving path at 1, 2, 4 and 8 shards. With spare cores the scatter
// wave runs the per-shard scans in parallel, so N=4 beats N=1 on wall
// clock; the shape assertion is skipped under the race detector (its
// instrumentation skews ratios) and on a single-core host (nothing to
// parallelize onto).
func BenchmarkShardScaling(b *testing.B) {
	const rows = shardbench.DefaultRows
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			svc := ssService(b, n, rows)
			req := shardbench.ScanRequest()
			ctx := context.Background()
			if _, err := svc.Query(ctx, req); err != nil { // warm the snapshot caches
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Query(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			st := svc.Stats()
			perQuery := float64(elapsed.Nanoseconds()) / float64(b.N)
			b.ReportMetric(perQuery, "ns/query")
			ssRecord(shardbench.Point{
				Shards:             n,
				NsPerQuery:         perQuery,
				ScatterTasksPerQry: float64(st.ScatterTasks) / float64(st.ScatterQueries),
				MergeMSTotal:       st.MergeTimeMS,
			})
		})
	}
	ssMu.Lock()
	if len(ssCurve) > 0 {
		if err := shardbench.WriteJSON("BENCH_shard_scaling.json", rows, ssCurve); err != nil {
			b.Logf("baseline not written: %v", err)
		}
	}
	ssMu.Unlock()

	// Shape assertion on dedicated fixed-iteration measurements (min of
	// 30), independent of the harness's b.N choice.
	if raceEnabled {
		b.Log("race detector on: skipping shard-scaling shape assertion")
		return
	}
	if runtime.GOMAXPROCS(0) < 2 || runtime.NumCPU() < 2 {
		b.Log("single-core host: skipping shard-scaling shape assertion (scatter wave has no spare cores)")
		return
	}
	svc1 := ssService(b, 1, rows)
	svc4 := ssService(b, 4, rows)
	ssWarm(b, svc1)
	ssWarm(b, svc4)
	w1 := ssMinWall(b, svc1, 30)
	w4 := ssMinWall(b, svc4, 30)
	b.Logf("scan-heavy wall per query: 1 shard %v, 4 shards %v", w1, w4)
	if w4 >= w1 {
		b.Errorf("scatter-gather at 4 shards (%v) did not beat 1 shard (%v) on the scan-heavy workload", w4, w1)
	}
}

func ssWarm(tb testing.TB, svc *service.Service) { ssMinWall(tb, svc, 3) }

func ssMinWall(tb testing.TB, svc *service.Service, iters int) time.Duration {
	tb.Helper()
	d, err := shardbench.MinWall(svc, iters)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestShardScalingCountsInvariant guards the benchmark's correctness
// side: the scan-heavy query returns the same count at every shard
// fan-out (the merge is pure concatenation of disjoint partitions).
func TestShardScalingCountsInvariant(t *testing.T) {
	const rows = 400
	want := -1
	for _, n := range []int{1, 3, 5} {
		svc := ssService(t, n, rows)
		r, err := svc.Query(context.Background(), shardbench.ScanRequest())
		if err != nil {
			t.Fatal(err)
		}
		if want == -1 {
			want = r.Value
		} else if r.Value != want {
			t.Fatalf("scan count at %d shards = %d, want %d", n, r.Value, want)
		}
	}
	if want != rows/4 {
		t.Fatalf("scan count = %d, want %d", want, rows/4)
	}
}
