package bench

import (
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/vision"
)

// tinyCfg keeps the test-time ETL under a couple of seconds.
func tinyCfg() dataset.Config {
	c := dataset.Default()
	c.TrafficFrames = 240
	c.PCImages = 150
	c.FootballClips = 2
	c.FootballClipLen = 25
	return c
}

var (
	sharedEnv     *Env
	sharedEnvErr  error
	sharedEnvOnce sync.Once
)

// newTestEnv returns a process-shared environment: the ETL phase is
// expensive, and every query here is read-only (or idempotently
// materializes views/indexes), so tests can share it safely.
func newTestEnv(t *testing.T) *Env {
	t.Helper()
	sharedEnvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dl-bench-test")
		if err != nil {
			sharedEnvErr = err
			return
		}
		sharedEnv, sharedEnvErr = NewEnv(dir, tinyCfg(), exec.New(exec.CPU))
	})
	if sharedEnvErr != nil {
		t.Fatal(sharedEnvErr)
	}
	return sharedEnv
}

func TestETLMaterializesAllCollections(t *testing.T) {
	e := newTestEnv(t)
	for _, name := range []string{ColTrafficDets, ColPCImages, ColPCWords, ColFBDets, ColFBWords} {
		col, err := e.DB.Collection(name)
		if err != nil {
			t.Fatalf("collection %s: %v", name, err)
		}
		if col.Len() == 0 {
			t.Fatalf("collection %s is empty", name)
		}
	}
}

func TestQ1BaselineAndTunedAgree(t *testing.T) {
	e := newTestEnv(t)
	base, err := e.Q1(false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.Q1(true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != tuned.Value {
		t.Fatalf("q1 baseline=%d tuned=%d", base.Value, tuned.Value)
	}
	if base.Value == 0 {
		t.Fatal("q1 found no near-duplicate pairs")
	}
	r, p, err := e.Q1Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.7 {
		t.Fatalf("q1 recall %.2f below 0.7 (precision %.2f)", r, p)
	}
	if p < 0.5 {
		t.Fatalf("q1 precision %.2f below 0.5 (recall %.2f)", p, r)
	}
}

func TestQ2CountsAndAccuracy(t *testing.T) {
	e := newTestEnv(t)
	base, err := e.Q2(false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.Q2(true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != tuned.Value {
		t.Fatalf("q2 baseline=%d tuned=%d", base.Value, tuned.Value)
	}
	if base.Value == 0 || base.Value > e.Traffic.Frames {
		t.Fatalf("q2 value %d implausible", base.Value)
	}
	acc, err := e.Q2Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("q2 frame accuracy %.2f below 0.8", acc)
	}
}

func TestQ3LineageVsRescan(t *testing.T) {
	e := newTestEnv(t)
	base, err := e.Q3(false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.Q3(true)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Value == 0 {
		t.Fatal("q3 tracked nothing")
	}
	if base.Value != tuned.Value {
		t.Fatalf("q3 baseline=%d tuned=%d (plans disagree)", base.Value, tuned.Value)
	}
	cov, err := e.Q3Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0.3 {
		t.Fatalf("q3 trajectory coverage %.2f below 0.3", cov)
	}
}

func TestQ4DistinctPlausible(t *testing.T) {
	e := newTestEnv(t)
	base, err := e.Q4(false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.Q4(true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != tuned.Value {
		t.Fatalf("q4 baseline=%d tuned=%d", base.Value, tuned.Value)
	}
	truth := e.Traffic.DistinctPedestrians
	if base.Value == 0 {
		t.Fatal("q4 found no pedestrians")
	}
	// Appearance windows of one identity can sit at very different depths,
	// where embeddings legitimately drift apart (the paper's q4 recall is
	// 0.73-0.82 for the same reason). The dedup must still collapse the
	// hundreds of per-frame observations to at most ~2 clusters per
	// appearance window, and never below the true identity count.
	windows := 0
	for _, o := range e.Traffic.Scene.Objects {
		if o.Class == vision.ClassPedestrian && o.Appear < e.Traffic.Frames {
			windows++
		}
	}
	col, _ := e.DB.Collection(ColTrafficDets)
	peds, _ := e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterScan)
	if base.Value > windows*2 {
		t.Fatalf("q4 = %d clusters from %d observations, but only %d appearance windows exist (under-deduplicated)",
			base.Value, len(peds), windows)
	}
	if base.Value < truth {
		t.Fatalf("q4 = %d below the %d true identities (over-merged)", base.Value, truth)
	}
}

func TestQ5FindsPlantedString(t *testing.T) {
	e := newTestEnv(t)
	// Pick a word that actually occurs.
	target := ""
	for _, im := range e.PC.Images {
		if len(im.Words) > 0 {
			target = im.Words[0]
			break
		}
	}
	if target == "" {
		t.Skip("no words at this scale")
	}
	res, err := e.Q5(target, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 0 {
		t.Fatalf("q5 did not find %q", target)
	}
	truth := e.Q5Truth(target)
	if res.Value != truth {
		// OCR can find the word earlier via a screenshot; tolerate earlier
		// finds only if that image also truly contains the word.
		found := false
		for _, w := range e.PC.Images[res.Value].Words {
			if w == target {
				found = true
			}
		}
		if !found {
			t.Fatalf("q5 returned image %d which does not contain %q (truth %d)", res.Value, target, truth)
		}
	}
}

func TestQ6PairsAgree(t *testing.T) {
	e := newTestEnv(t)
	base, err := e.Q6(false)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := e.Q6(true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != tuned.Value {
		t.Fatalf("q6 baseline=%d tuned=%d", base.Value, tuned.Value)
	}
}

func TestRunAll(t *testing.T) {
	e := newTestEnv(t)
	res, err := e.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("RunAll returned %d queries", len(res))
	}
	for q, pair := range res {
		if pair[0].Value != pair[1].Value {
			t.Fatalf("%s: baseline %d != tuned %d", q, pair[0].Value, pair[1].Value)
		}
	}
}
