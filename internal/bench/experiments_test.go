package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/video"
)

func TestFig2EncodingShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.TrafficFrames = 90
	rows, err := Fig2Encoding(cfg, 6, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	raw, high, low := rows[0], rows[1], rows[3]
	if raw.Format != "RAW" || raw.Ratio != 1 {
		t.Fatalf("first row %+v", raw)
	}
	// Paper shape: encoded is dramatically smaller; high quality keeps
	// accuracy within a whisker of RAW; low quality degrades.
	if high.Ratio < 10 {
		t.Fatalf("high-quality compression ratio %.1f below 10x", high.Ratio)
	}
	if low.Bytes >= high.Bytes {
		t.Fatalf("low (%d B) not smaller than high (%d B)", low.Bytes, high.Bytes)
	}
	if high.Accuracy < raw.Accuracy-0.05 {
		t.Fatalf("high-quality accuracy %.3f dropped more than 0.05 from RAW %.3f", high.Accuracy, raw.Accuracy)
	}
	if low.Accuracy > high.Accuracy+1e-9 {
		t.Fatalf("low quality accuracy %.3f not <= high %.3f", low.Accuracy, high.Accuracy)
	}
}

func TestFig3FormatsShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.TrafficFrames = 150
	rows, err := Fig3Formats(cfg, 20, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	byFmt := map[string]Fig3Row{}
	for _, r := range rows {
		byFmt[r.Format] = r
	}
	// Pushdown formats decode only the window; the sequential stream
	// decodes its whole prefix.
	if byFmt[video.FormatRaw.String()].Frames != 20 {
		t.Fatalf("raw decoded %d frames", byFmt[video.FormatRaw.String()].Frames)
	}
	if byFmt[video.FormatDLV.String()].Frames <= 20 {
		t.Fatalf("sequential DLV decoded only %d frames (pushdown impossible)",
			byFmt[video.FormatDLV.String()].Frames)
	}
	seg := byFmt[video.FormatSegmented.String()].Frames
	if seg < 20 || seg > 80 {
		t.Fatalf("segmented decoded %d frames, want coarse window", seg)
	}
	if byFmt[video.FormatDLV.String()].Latency <= byFmt[video.FormatSegmented.String()].Latency {
		t.Fatal("sequential DLV not slower than segmented on filtered scan")
	}
}

func TestFig4And5Shapes(t *testing.T) {
	e := newTestEnv(t)
	rows, err := Fig4Indexes(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
	// The image-matching and lineage queries must benefit; q5 must not
	// meaningfully. (Factors grow with scale — the paper reports 612x at
	// full scale; this guards the direction at test scale.) Single runs
	// are microsecond-scale on a warm env, so take min-of-N to de-noise.
	minSpeedup := func(fn func(bool) (QueryResult, error)) float64 {
		t.Helper()
		best := func(tuned bool) float64 {
			m := 1e18
			for i := 0; i < 5; i++ {
				r, err := fn(tuned)
				if err != nil {
					t.Fatal(err)
				}
				if d := float64(r.Duration); d < m {
					m = d
				}
			}
			return m
		}
		return best(false) / best(true)
	}
	if raceEnabled {
		t.Log("race detector: running plans for correctness, skipping wall-clock speedup assertions")
		if _, err := e.Q4(true); err != nil {
			t.Fatal(err)
		}
	} else {
		if sp := minSpeedup(e.Q4); sp < 1.2 {
			t.Fatalf("q4 speedup %.1fx below 1.2x", sp)
		}
		if sp := minSpeedup(e.Q1); sp < 1.2 {
			t.Fatalf("q1 speedup %.1fx below 1.2x", sp)
		}
		if sp := minSpeedup(e.Q3); sp < 1.2 {
			t.Fatalf("q3 speedup %.1fx below 1.2x", sp)
		}
	}

	rows5, err := Fig5Pipeline(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != 6 {
		t.Fatalf("fig5 rows = %d", len(rows5))
	}
	for _, r := range rows5 {
		if r.BL <= 0 || r.DL <= 0 {
			t.Fatalf("fig5 %s nonpositive times %+v", r.Query, r)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6IndexBuild([]int{1000, 4000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]map[int]float64{}
	for _, r := range rows {
		if times[r.Index] == nil {
			times[r.Index] = map[int]float64{}
		}
		times[r.Index][r.N] = r.Build.Seconds()
	}
	for _, name := range []string{"hash", "btree", "sortedfile", "rtree", "balltree"} {
		if times[name][1000] <= 0 || times[name][4000] <= 0 {
			t.Fatalf("%s missing measurements: %v", name, times[name])
		}
		if times[name][4000] <= times[name][1000]/2 {
			t.Fatalf("%s build time did not grow with n: %v", name, times[name])
		}
	}
	// Paper shape: R-tree construction is far slower than the B+ tree
	// (ratio grows with n; 1.5x is the conservative floor at this size
	// that holds under parallel-suite load). The race detector distorts
	// the two structures' costs non-uniformly, so skip the ratio there.
	if !raceEnabled && times["rtree"][4000] < 1.5*times["btree"][4000] {
		t.Fatalf("rtree (%.4fs) not clearly slower than btree (%.4fs)",
			times["rtree"][4000], times["btree"][4000])
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7BallTreeJoin([]int{500, 4000}, []int{4, 64}, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(n, dim int) float64 {
		for _, r := range rows {
			if r.BuildSize == n && r.Dim == dim {
				return r.Join.Seconds()
			}
		}
		t.Fatalf("missing row n=%d dim=%d", n, dim)
		return 0
	}
	// Join time grows with build size, and high dimension is costlier.
	if get(4000, 64) <= get(500, 64) {
		t.Fatal("high-dim join did not grow with build size")
	}
	if get(4000, 64) <= get(4000, 4) {
		t.Fatal("high-dim join not costlier than low-dim")
	}
}

func TestTable1Shape(t *testing.T) {
	e := newTestEnv(t)
	rows, err := Table1Plans(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	a, b := rows[0], rows[1]
	// Paper shape: match-before-filter is slower but at least as accurate
	// in recall.
	if b.Runtime < a.Runtime {
		t.Fatalf("match-first (%v) faster than filter-first (%v)", b.Runtime, a.Runtime)
	}
	if b.Recall < a.Recall-1e-9 {
		t.Fatalf("match-first recall %.3f below filter-first %.3f", b.Recall, a.Recall)
	}
	if a.Recall <= 0 || a.Precision <= 0 {
		t.Fatalf("degenerate accuracy %+v", a)
	}
}

func TestAblations(t *testing.T) {
	e := newTestEnv(t)
	lshRows, err := AblationLSH(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(lshRows) != 2 || lshRows[1].Recall < 0.3 {
		t.Fatalf("lsh ablation %+v", lshRows)
	}
	segRows, err := AblationSegment(tinyCfg(), []uint64{8, 64}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(segRows) != 2 {
		t.Fatalf("segment ablation rows = %d", len(segRows))
	}
	// Longer clips compress better (fewer I-frames).
	if segRows[1].Bytes >= segRows[0].Bytes {
		t.Fatalf("clip 64 (%d B) not smaller than clip 8 (%d B)", segRows[1].Bytes, segRows[0].Bytes)
	}
	bsRows, err := AblationBuildSide(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(bsRows) != 2 || bsRows[0].Pairs != bsRows[1].Pairs {
		t.Fatalf("build-side ablation %+v", bsRows)
	}
}

func TestAblationKDTreeShape(t *testing.T) {
	rows, err := AblationKDTree([]int{4, 64}, 3000, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// High dimension must favor the ball tree (the paper's §3.2 finding).
	high := rows[1]
	if high.Dim != 64 {
		t.Fatalf("row order: %+v", rows)
	}
	if high.BallTree >= high.KDTree {
		t.Fatalf("dim 64: ball tree (%v) not faster than kd-tree (%v)", high.BallTree, high.KDTree)
	}
}

func TestSynthesizedQ6Pipeline(t *testing.T) {
	e := newTestEnv(t)
	sp, err := e.SynthesizeQ6Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Generator.Name != "ssd-sim" {
		t.Fatalf("generator %s", sp.Generator.Name)
	}
	found := false
	for _, tr := range sp.Transformers {
		if tr.Name == "depth" {
			found = true
		}
	}
	if !found {
		t.Fatalf("depth transformer missing: %s", sp.Explain)
	}
	// The synthesized pipeline must actually run: one frame in, detection
	// patches with depth out.
	img, _ := e.Traffic.Render(30)
	frame := framePatch("synth", 30, img)
	ps, err := core.DrainPatches(sp.Build(core.NewSliceIterator([]core.Tuple{{frame}})))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("synthesized pipeline produced no patches")
	}
	for _, p := range ps {
		if _, ok := p.Meta["depth"]; !ok {
			t.Fatalf("patch lacks depth: %v", p.Meta.Keys())
		}
	}
}

func TestEnvReuseSkipsETL(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyCfg()
	cfg.TrafficFrames = 60
	cfg.PCImages = 20
	cfg.FootballClips = 1
	cfg.FootballClipLen = 10
	e1, err := NewEnv(dir, cfg, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	col, _ := e1.DB.Collection(ColTrafficDets)
	want := col.Len()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	e2, err := NewEnv(dir, cfg, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if time.Since(start) > 2*time.Second {
		t.Fatal("reopen appears to have re-run ETL")
	}
	col2, err := e2.DB.Collection(ColTrafficDets)
	if err != nil {
		t.Fatal(err)
	}
	if col2.Len() != want {
		t.Fatalf("reused collection has %d patches, want %d", col2.Len(), want)
	}
	// Queries work against the reused database.
	res, err := e2.Q2(false)
	if err != nil || res.Value == 0 {
		t.Fatalf("q2 on reused env: %+v, %v", res, err)
	}
}
