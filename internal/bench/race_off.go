//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock shape assertions (relative plan speedups) are skipped under
// the detector: its per-access instrumentation slows code paths
// non-uniformly, so measured ratios no longer reflect the figures.
const raceEnabled = false
