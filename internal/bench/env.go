// Package bench implements the paper's benchmark (§6): the six queries
// q1-q6 over the PC, TrafficCam and Football datasets, with baseline and
// hand-tuned physical designs, plus one experiment runner per paper figure
// and table (§7). The deeplens-bench command and the repository's
// bench_test.go both drive this package.
package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/vision"
)

// Env is a fully ingested benchmark environment: datasets generated,
// ETL executed, patch collections materialized.
type Env struct {
	Cfg dataset.Config
	DB  *core.DB
	// Shards is set instead of DB when the environment was ingested into
	// a horizontally partitioned database (NewShardedEnv): the same ETL
	// pipelines run, but every patch routes to its hash-designated shard.
	Shards *core.Sharded
	Dir    string

	Traffic  *dataset.Traffic
	Football *dataset.Football
	PC       *dataset.PC

	Det               *vision.Detector
	Emb               *vision.Embedder
	Depth             *vision.DepthModel
	DocOCR, JerseyOCR *vision.OCR

	// ETLTime records the patch-generation cost per collection (the
	// paper separates "ETL time" from "query time", §7.2).
	ETLTime map[string]time.Duration
}

// Collections materialized by the ETL phase.
const (
	ColTrafficDets = "traffic.dets" // detections: label, score, bbox, emb, depth
	ColPCImages    = "pc.images"    // whole images: hist, emb
	ColPCWords     = "pc.words"     // OCR words from PC images
	ColFBDets      = "fb.dets"      // football player detections
	ColFBWords     = "fb.words"     // jersey OCR words (lineage -> fb.dets)
)

// ModelSeed fixes all model weights.
const ModelSeed = 42

// NewEnv generates datasets and runs the full ETL on the given device,
// materializing every collection the queries need.
func NewEnv(dir string, cfg dataset.Config, dev exec.Device) (*Env, error) {
	return NewEnvAt(filepath.Join(dir, "deeplens.db"), dir, cfg, dev)
}

// NewEnvAt is NewEnv with an explicit database path. When the database
// already holds the materialized collections (a prior ingest), the ETL
// phase is skipped and the existing collections are reused.
func NewEnvAt(dbPath, dir string, cfg dataset.Config, dev exec.Device) (*Env, error) {
	db, err := core.Open(dbPath, dev)
	if err != nil {
		return nil, err
	}
	e := newEnvModels(cfg, dir, dev)
	e.DB = db
	if _, err := db.Collection(ColTrafficDets); err == nil {
		return e, nil // already ingested: reuse materialized collections
	}
	if err := e.runETL(dbTarget{db}); err != nil {
		db.Close()
		return nil, err
	}
	return e, nil
}

// NewShardedEnv generates datasets and runs the full ETL into an
// n-shard partitioned database rooted at dir (shard subdirectories
// dir/shard-NNN). A prior sharded ingest is reused; a prior ingest with
// a different shard count fails with core.ErrShardMismatch.
func NewShardedEnv(dir string, cfg dataset.Config, n int, dev exec.Device) (*Env, error) {
	return NewShardedReplicaEnv(dir, cfg, n, 1, dev)
}

// NewShardedReplicaEnv is NewShardedEnv with r replicas per shard
// (replica directories dir/shard-NNN-rK beside the primaries): the ETL
// runs once and every append fans out to all replicas of its home
// shard, so the replicas come up byte-identical and the hedged-read
// serving path has somewhere to fail over to.
func NewShardedReplicaEnv(dir string, cfg dataset.Config, n, r int, dev exec.Device) (*Env, error) {
	sdb, err := core.OpenShardedReplicas(dir, n, r, dev)
	if err != nil {
		return nil, err
	}
	e := newEnvModels(cfg, dir, dev)
	e.Shards = sdb
	if _, err := sdb.Collection(ColTrafficDets); err == nil {
		return e, nil // already ingested: reuse materialized shards
	}
	if err := e.runETL(shardTarget{sdb}); err != nil {
		sdb.Close()
		return nil, err
	}
	return e, nil
}

// newEnvModels builds the dataset generators and UDF models shared by
// every environment flavor.
func newEnvModels(cfg dataset.Config, dir string, dev exec.Device) *Env {
	e := &Env{
		Cfg: cfg, Dir: dir,
		Traffic:   dataset.NewTraffic(cfg),
		Football:  dataset.NewFootball(cfg),
		PC:        dataset.NewPC(cfg),
		Det:       vision.NewDetector(dev, ModelSeed),
		Emb:       vision.NewEmbedder(dev, ModelSeed),
		DocOCR:    vision.NewDocumentOCR(),
		JerseyOCR: vision.NewJerseyOCR(),
		ETLTime:   map[string]time.Duration{},
	}
	e.Depth = vision.NewDepthModel(dev, e.Traffic.Scene.Horizon, e.Traffic.Scene.Focal, ModelSeed)
	return e
}

// Close releases the environment.
func (e *Env) Close() error {
	if e.Shards != nil {
		return e.Shards.Close()
	}
	return e.DB.Close()
}

// ingestTarget abstracts where the ETL materializes: one DB or a
// sharded set (patches routed to their home shards).
type ingestTarget interface {
	materialize(name string, schema core.Schema, it core.Iterator) error
	create(name string, schema core.Schema) (patchAppender, error)
	flush() error
}

// patchAppender is the slice of the collection API the ETL needs
// (satisfied by *core.Collection and *core.ShardedCollection).
type patchAppender interface{ Append(*core.Patch) error }

type dbTarget struct{ db *core.DB }

func (t dbTarget) materialize(name string, schema core.Schema, it core.Iterator) error {
	_, err := t.db.Materialize(name, schema, it)
	return err
}
func (t dbTarget) create(name string, schema core.Schema) (patchAppender, error) {
	return t.db.CreateCollection(name, schema)
}
func (t dbTarget) flush() error { return t.db.Flush() }

type shardTarget struct{ s *core.Sharded }

func (t shardTarget) materialize(name string, schema core.Schema, it core.Iterator) error {
	_, err := t.s.Materialize(name, schema, it)
	return err
}
func (t shardTarget) create(name string, schema core.Schema) (patchAppender, error) {
	return t.s.CreateCollection(name, schema)
}
func (t shardTarget) flush() error { return t.s.Flush() }

// trafficFrames iterates rendered TrafficCam frames as whole-frame patches.
func (e *Env) trafficFrames() core.Iterator {
	t := 0
	return core.NewFuncIterator(func() (core.Tuple, bool, error) {
		if t >= e.Traffic.Frames {
			return nil, false, nil
		}
		img, _ := e.Traffic.Render(t)
		p := framePatch("trafficcam", uint64(t), img)
		t++
		return core.Tuple{p}, true, nil
	}, nil)
}

func framePatch(source string, frame uint64, img *codec.Image) *core.Patch {
	return &core.Patch{
		Ref:  core.Ref{Source: source, Frame: frame},
		Data: core.ImageToTensor(img),
		Meta: core.Metadata{
			"frameno": core.IntV(int64(frame)),
			"width":   core.IntV(int64(img.W)),
			"height":  core.IntV(int64(img.H)),
		},
	}
}

// runETL executes every pipeline and materializes the outputs into
// the given target (a single DB or a sharded set).
func (e *Env) runETL(tg ingestTarget) error {
	// TrafficCam: detect -> embed -> depth (pedestrian geometry).
	start := time.Now()
	dets := core.DetectGenerator(e.Det, e.trafficFrames())
	dets = core.EmbedTransformer(e.Emb, dets)
	dets = core.DepthTransformer(e.Depth, dets)
	trafficSchema := core.DetectionSchema().
		WithField(core.Field{Name: "emb", Kind: core.KindVec, VecDim: e.Emb.Dim()}).
		WithField(core.Field{Name: "depth", Kind: core.KindFloat})
	dets = core.DropData(dets)
	dets = ensureDepth(dets)
	if err := tg.materialize(ColTrafficDets, trafficSchema, dets); err != nil {
		return fmt.Errorf("traffic ETL: %w", err)
	}
	e.ETLTime[ColTrafficDets] = time.Since(start)

	// PC corpus: whole images with hist + emb; OCR words.
	start = time.Now()
	imgs := make([]*codec.Image, len(e.PC.Images))
	for i := range e.PC.Images {
		imgs[i] = e.PC.Images[i].Image
	}
	pcIt := core.FromImages("pc", imgs)
	pcIt = core.HistogramTransformer(pcIt)
	pcIt = core.GridHistogramTransformer(3, pcIt)
	pcIt = core.EmbedTransformer(e.Emb, pcIt)
	pcIt = core.DropData(pcIt)
	pcSchema := core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "frameno", Kind: core.KindInt},
			{Name: "hist", Kind: core.KindVec, VecDim: vision.HistogramDim},
			{Name: "ghist", Kind: core.KindVec, VecDim: 64},
			{Name: "emb", Kind: core.KindVec, VecDim: e.Emb.Dim()},
		},
	}
	if err := tg.materialize(ColPCImages, pcSchema, pcIt); err != nil {
		return fmt.Errorf("pc images ETL: %w", err)
	}
	words := core.OCRGenerator(e.DocOCR, core.FromImages("pc", imgs))
	words = core.DropData(words)
	if err := tg.materialize(ColPCWords, core.OCRSchema(), words); err != nil {
		return fmt.Errorf("pc words ETL: %w", err)
	}
	e.ETLTime[ColPCImages] = time.Since(start)

	// Football: per-clip detection; jersey OCR over detection patches
	// (lineage: word.Parent -> detection patch).
	start = time.Now()
	fbSchema := core.DetectionSchema().
		WithField(core.Field{Name: "clip", Kind: core.KindInt})
	fbDets, err := tg.create(ColFBDets, fbSchema)
	if err != nil {
		return err
	}
	fbWords, err := tg.create(ColFBWords,
		core.OCRSchema().WithField(core.Field{Name: "clip", Kind: core.KindInt}))
	if err != nil {
		return err
	}
	for c, clip := range e.Football.Clips {
		source := fmt.Sprintf("football%02d", c)
		for t := 0; t < e.Football.ClipLen; t++ {
			img, _ := clip.Render(t)
			frame := framePatch(source, uint64(t), img)
			detIt := core.DetectGenerator(e.Det, core.NewSliceIterator([]core.Tuple{{frame}}))
			detPatches, err := core.DrainPatches(detIt)
			if err != nil {
				return err
			}
			for _, dp := range detPatches {
				dp.Meta["clip"] = core.IntV(int64(c))
				// Keep pixels on the detection only until OCR has run.
				wordIt := core.OCRGenerator(e.JerseyOCR, core.NewSliceIterator([]core.Tuple{{dp}}))
				// Materialize the detection first so words' Parent resolves.
				data := dp.Data
				dp.Data = nil
				if err := fbDets.Append(dp); err != nil {
					return err
				}
				dp.Data = data
				wordPatches, err := core.DrainPatches(wordIt)
				if err != nil {
					return err
				}
				for _, wp := range wordPatches {
					wp.Meta["clip"] = core.IntV(int64(c))
					wp.Data = nil
					wp.Ref.Parent = dp.ID
					if err := fbWords.Append(wp); err != nil {
						return err
					}
				}
				dp.Data = nil
			}
		}
	}
	e.ETLTime[ColFBDets] = time.Since(start)
	return tg.flush()
}

// ensureDepth fills a zero depth for non-pedestrian detections whose bbox
// geometry the depth model was not applied to, keeping the schema total.
func ensureDepth(in core.Iterator) core.Iterator {
	return core.Transform(in, func(t core.Tuple) ([]core.Tuple, error) {
		if _, ok := t[0].Meta["depth"]; !ok {
			t[0].Meta["depth"] = core.FloatV(0)
		}
		return []core.Tuple{t}, nil
	})
}
