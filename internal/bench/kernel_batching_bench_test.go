package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file benchmarks the cross-request kernel batcher (§7.4.2's
// launch-overhead amortization applied across concurrent queries) and
// records the amortization curve to BENCH_kernel_batching.json — the
// perf baseline CI uploads as an artifact.

// kbPoint is one measured point on the amortization curve.
type kbPoint struct {
	Op                  string  `json:"op"`
	Submitters          int     `json:"submitters"`
	Fused               bool    `json:"fused"`
	Kernels             int64   `json:"kernels"`
	Launches            int64   `json:"launches"`
	FusionFactor        float64 `json:"fusion_factor"`
	NsPerKernel         float64 `json:"ns_per_kernel"`
	OverheadNsPerKernel float64 `json:"overhead_ns_per_kernel"`
}

type kbBaseline struct {
	Description string    `json:"description"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	LaunchUS    float64   `json:"gpu_launch_latency_us"`
	Curve       []kbPoint `json:"curve"`
	NNAllocs    *kbAllocs `json:"nn_forward_allocs,omitempty"`
}

type kbAllocs struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Note        string  `json:"note"`
}

var (
	kbMu       sync.Mutex
	kbSnapshot kbBaseline
)

// kbRecord upserts a curve point: the harness re-invokes sub-benchmarks
// with growing b.N (warm-up runs included), and only the final, largest
// measurement per configuration belongs in the baseline.
func kbRecord(p kbPoint) {
	kbMu.Lock()
	defer kbMu.Unlock()
	for i, q := range kbSnapshot.Curve {
		if q.Op == p.Op && q.Submitters == p.Submitters && q.Fused == p.Fused {
			kbSnapshot.Curve[i] = p
			return
		}
	}
	kbSnapshot.Curve = append(kbSnapshot.Curve, p)
}

// kbWrite persists the snapshot next to the package (the committed
// BENCH_kernel_batching.json baseline; CI regenerates and uploads it).
func kbWrite(b *testing.B) {
	kbMu.Lock()
	defer kbMu.Unlock()
	if len(kbSnapshot.Curve) == 0 {
		return
	}
	kbSnapshot.Description = "fused vs unfused GPU kernel launches, N concurrent submitters of small GEMMs"
	kbSnapshot.GoMaxProcs = runtime.GOMAXPROCS(0)
	kbSnapshot.LaunchUS = float64(exec.DefaultGPUProfile().LaunchLatency.Microseconds())
	data, err := json.MarshalIndent(kbSnapshot, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernel_batching.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("baseline not written: %v", err)
	}
}

// BenchmarkBatchedKernels measures per-kernel latency for N concurrent
// submitters of small GEMMs against one simulated GPU, unfused (every
// kernel pays its own launch, launches serialized as on a real stream)
// vs fused through the Batcher (one launch per batch). The fused rows
// beat the unfused rows from 2 submitters up, and the gap widens with
// concurrency — the amortization curve.
func BenchmarkBatchedKernels(b *testing.B) {
	// Small per-query kernels: launch latency dominates compute, the
	// regime where the paper reports GPUs losing to vectorized CPUs.
	const m, n, k = 8, 32, 32
	for _, submitters := range []int{1, 2, 4, 8, 16} {
		for _, fused := range []bool{false, true} {
			name := fmt.Sprintf("op=gemm/submitters=%d/fused=%t", submitters, fused)
			b.Run(name, func(b *testing.B) {
				dev := exec.NewGPU(exec.DefaultGPUProfile())
				cfg := exec.BatcherConfig{MaxBatch: 1}
				if fused {
					cfg = exec.BatcherConfig{MaxBatch: submitters, Window: 200 * time.Microsecond}
				}
				bat := exec.NewBatcher(dev, cfg)
				rng := rand.New(rand.NewSource(7))
				as := make([][]float32, submitters)
				bs := make([][]float32, submitters)
				cs := make([][]float32, submitters)
				for g := 0; g < submitters; g++ {
					as[g] = randVec(rng, m*k)
					bs[g] = randVec(rng, k*n)
					cs[g] = make([]float32, m*n)
				}
				b.ResetTimer()
				start := time.Now()
				var wg sync.WaitGroup
				for g := 0; g < submitters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							bat.GEMM(m, n, k, as[g], bs[g], cs[g])
						}
					}(g)
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()

				st := dev.Stats()
				bst := bat.BatcherStats()
				perKernel := float64(elapsed.Nanoseconds()) / float64(st.Kernels)
				b.ReportMetric(perKernel, "ns/kernel")
				b.ReportMetric(bst.FusionFactor(), "kernels/launch")
				b.ReportMetric(float64(st.Overhead.Nanoseconds())/float64(st.Kernels), "overhead-ns/kernel")
				kbRecord(kbPoint{
					Op:                  "gemm",
					Submitters:          submitters,
					Fused:               fused,
					Kernels:             st.Kernels,
					Launches:            st.Launches,
					FusionFactor:        bst.FusionFactor(),
					NsPerKernel:         perKernel,
					OverheadNsPerKernel: float64(st.Overhead.Nanoseconds()) / float64(st.Kernels),
				})
			})
		}
	}
	kbWrite(b)
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// BenchmarkNNForwardBatchAllocs tracks the allocation profile of the
// pooled inference hot path (backbone ForwardBatch over 8 32x32 inputs
// on CPU). Pre-pooling baseline on the reference container: 229
// allocs/op, ~741 KB/op. With the sync.Pool scratch + tensor-header
// reuse: ~90 allocs/op, ~2.6 KB/op — the im2col/GEMM matrices and every
// intermediate activation recycle instead of churning the GC.
func BenchmarkNNForwardBatchAllocs(b *testing.B) {
	net := nn.NewBackbone(64, 42)
	dev := exec.New(exec.CPU)
	xs := make([]*tensor.Tensor, 8)
	for i := range xs {
		pix := make([]uint8, 32*32*3)
		rand.New(rand.NewSource(int64(i))).Read(pix)
		xs[i] = nn.ImageToCHW(pix, 32, 32)
	}
	step := func() {
		outs := net.ForwardBatch(dev, xs)
		nn.ReleaseTensors(outs)
	}
	step() // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const probes = 20
	for i := 0; i < probes; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	kbMu.Lock()
	kbSnapshot.NNAllocs = &kbAllocs{
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / probes,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / probes,
		Note:        "backbone ForwardBatch, 8x 32x32 CPU; pre-pooling baseline: 229 allocs/op, ~741 KB/op",
	}
	kbMu.Unlock()
	kbWrite(b) // refresh the baseline with the alloc snapshot included
}

// TestBatchedServiceKernelsMatchUnbatched cross-checks the batcher at
// the query level: the same similarity join produces identical pairs on
// a bare device and through a shared fused batcher.
func TestBatchedServiceKernelsMatchUnbatched(t *testing.T) {
	e := newTestEnv(t)
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		t.Fatal(err)
	}
	patches, _, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) > 400 {
		patches = patches[:400]
	}
	run := func(dev exec.Device) int {
		pairs, err := core.SimilarityJoinBatched(e.DB, patches, patches, core.SimilarityJoinOpts{
			LeftField: "emb", RightField: "emb",
			Eps: 0.15, DedupUnordered: true, Device: dev,
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(pairs)
	}
	plain := run(exec.NewGPU(exec.GPUProfile{LaunchLatency: time.Microsecond, BytesPerSecond: 1e12}))
	bat := exec.NewBatcher(
		exec.NewGPU(exec.GPUProfile{LaunchLatency: time.Microsecond, BytesPerSecond: 1e12}),
		exec.BatcherConfig{MaxBatch: 4, Window: time.Millisecond})
	var fusedPairs [4]int
	var wg sync.WaitGroup
	for i := range fusedPairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fusedPairs[i] = run(bat)
		}(i)
	}
	wg.Wait()
	for i, got := range fusedPairs {
		if got != plain {
			t.Fatalf("submitter %d: fused join found %d pairs, unfused %d", i, got, plain)
		}
	}
}
