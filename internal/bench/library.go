package bench

import (
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/vision"
)

// NewLibrary registers the environment's real vision components for the
// pipeline synthesizer (paper §4 future work), with latency profiles
// measured against a sample frame on the environment's device and
// accuracy profiles from the reference calibration.
func (e *Env) NewLibrary() (*core.Library, error) {
	l := &core.Library{}
	sample, _ := e.Traffic.Render(0)
	patch := sample.Crop(20, 20, 52, 52)

	detLat := measure(func() { e.Det.Detect(sample) })
	ocrLat := measure(func() { e.DocOCR.Recognize(sample) })
	jerseyLat := measure(func() { e.JerseyOCR.Recognize(patch) })
	histLat := measure(func() { vision.ColorHistogram(patch) })
	ghistLat := measure(func() { vision.RandomProject(vision.GridHistogram(patch, 3), 64) })
	embLat := measure(func() { e.Emb.Embed(patch) })
	depthLat := measure(func() { e.Depth.Predict(patch, 20, 20, 52, 52) })

	components := []core.Component{
		{
			Name: "ssd-sim", Kind: core.KindGenerator,
			Produces: []string{"label", "score", "bbox", "frameno"},
			Labels:   vision.ClassNames(),
			// Reference calibration: clean-frame detection accuracy from
			// the vision test suite.
			Precision: 0.90, Recall: 0.85,
			PerPatch: detLat,
			Build:    func(in core.Iterator) core.Iterator { return core.DetectGenerator(e.Det, in) },
		},
		{
			Name: "doc-ocr", Kind: core.KindGenerator,
			Produces:  []string{"text", "score", "bbox", "frameno"},
			Precision: 0.95, Recall: 0.85,
			PerPatch: ocrLat,
			Build:    func(in core.Iterator) core.Iterator { return core.OCRGenerator(e.DocOCR, in) },
		},
		{
			Name: "jersey-ocr", Kind: core.KindGenerator,
			Produces:  []string{"text", "score", "bbox", "frameno"},
			Precision: 0.90, Recall: 0.70,
			PerPatch: jerseyLat,
			Build:    func(in core.Iterator) core.Iterator { return core.OCRGenerator(e.JerseyOCR, in) },
		},
		{
			Name: "histogram", Kind: core.KindTransformer,
			Produces: []string{"hist"},
			PerPatch: histLat,
			Build:    core.HistogramTransformer,
		},
		{
			Name: "grid-histogram", Kind: core.KindTransformer,
			Produces: []string{"ghist"},
			PerPatch: ghistLat,
			Build: func(in core.Iterator) core.Iterator {
				return core.GridHistogramTransformer(3, in)
			},
		},
		{
			Name: "embedder", Kind: core.KindTransformer,
			Produces: []string{"emb"},
			PerPatch: embLat,
			Build: func(in core.Iterator) core.Iterator {
				return core.EmbedTransformer(e.Emb, in)
			},
		},
		{
			Name: "depth", Kind: core.KindTransformer,
			Produces: []string{"depth"},
			Requires: []string{"bbox"},
			PerPatch: depthLat,
			Build: func(in core.Iterator) core.Iterator {
				return core.DepthTransformer(e.Depth, in)
			},
		},
	}
	for _, c := range components {
		if err := l.Register(c); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// measure times fn over a few runs (coarse per-call latency for the
// synthesizer's cost model).
func measure(fn func()) time.Duration {
	const runs = 3
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	d := time.Since(start) / runs
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

// SynthesizeQ6Pipeline demonstrates the synthesizer end to end: q6 needs
// pedestrian labels with per-patch depth, so the synthesized pipeline must
// be detector -> depth transformer. Used by tests and the example.
func (e *Env) SynthesizeQ6Pipeline() (core.SynthesizedPipeline, error) {
	l, err := e.NewLibrary()
	if err != nil {
		return core.SynthesizedPipeline{}, err
	}
	return l.Synthesize(core.Requirement{
		NeedLabel:  "pedestrian",
		NeedFields: []string{"depth"},
	})
}

// EncodeFrames is a small convenience used by tests: DLV-encode rendered
// traffic frames [0, n).
func (e *Env) EncodeFrames(n int, q codec.Quality) ([]byte, error) {
	frames := make([]*codec.Image, n)
	for t := 0; t < n; t++ {
		frames[t], _ = e.Traffic.Render(t)
	}
	return codec.EncodeDLV(frames, q, codec.DefaultGOP)
}
