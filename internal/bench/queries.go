package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// QueryResult is one benchmark-query execution.
type QueryResult struct {
	Query    string
	Plan     string
	Duration time.Duration
	// Value is the query's answer (count, pair count, trajectory length,
	// frame index — query dependent).
	Value int
}

// Matching thresholds, tuned once against the generators and shared by
// baseline and optimized plans so both compute the same logical query.
const (
	// q1: near-duplicate threshold on whole-image embeddings.
	epsNearDup = 0.066
	// q4: same-pedestrian threshold on detection embeddings.
	epsSameIdentity = 0.15
	// q6: required depth separation for "behind".
	depthGap = 1.0
)

// --------------------------------------------------------------- q1 ----

// Q1 finds all near-duplicate pairs in the PC dataset. The baseline
// compares all image pairs; the tuned plan probes a prebuilt ball tree
// over the embeddings.
func (e *Env) Q1(useIndex bool) (QueryResult, error) {
	col, err := e.DB.Collection(ColPCImages)
	if err != nil {
		return QueryResult{}, err
	}
	ps, err := col.Patches()
	if err != nil {
		return QueryResult{}, err
	}
	opts := core.SimilarityJoinOpts{LeftField: "ghist", RightField: "ghist",
		Eps: epsNearDup, DedupUnordered: true}
	// Index construction is physical design, amortized across queries
	// (§7.2 separates it from query time; Figure 5 adds it back).
	var idx *core.Index
	if useIndex {
		if !e.DB.HasIndex(col, "ghist", core.IdxBallTree) {
			if _, err := e.DB.BuildIndex(col, "ghist", core.IdxBallTree); err != nil {
				return QueryResult{}, err
			}
		}
		if idx, err = e.DB.Index(col, "ghist", core.IdxBallTree); err != nil {
			return QueryResult{}, err
		}
	}
	start := time.Now()
	var pairs []core.Tuple
	plan := "nested-loop all-pairs"
	if useIndex {
		pairs, err = core.SimilarityJoinIndexed(e.DB, ps, col, idx, opts)
		if err != nil {
			return QueryResult{}, err
		}
		plan = "prebuilt ball tree probe"
	} else {
		pairs, err = core.SimilarityJoinNested(ps, ps, opts)
		if err != nil {
			return QueryResult{}, err
		}
	}
	return QueryResult{Query: "q1", Plan: plan, Duration: time.Since(start), Value: len(pairs)}, nil
}

// Q1Accuracy evaluates q1's pairs against the generator's planted
// near-duplicates.
func (e *Env) Q1Accuracy() (recall, precision float64, err error) {
	col, err := e.DB.Collection(ColPCImages)
	if err != nil {
		return 0, 0, err
	}
	ps, err := col.Patches()
	if err != nil {
		return 0, 0, err
	}
	pairs, err := core.SimilarityJoinNested(ps, ps, core.SimilarityJoinOpts{
		LeftField: "ghist", RightField: "ghist", Eps: epsNearDup, DedupUnordered: true})
	if err != nil {
		return 0, 0, err
	}
	truth := map[[2]int]bool{}
	for _, p := range e.PC.NearDupPairs {
		truth[[2]int{p[0], p[1]}] = true
	}
	tp := 0
	for _, pr := range pairs {
		a := int(pr[0].Meta["frameno"].I)
		b := int(pr[1].Meta["frameno"].I)
		if a > b {
			a, b = b, a
		}
		if truth[[2]int{a, b}] {
			tp++
		}
	}
	if len(truth) == 0 {
		return 1, 1, nil
	}
	recall = float64(tp) / float64(len(truth))
	precision = 1
	if len(pairs) > 0 {
		precision = float64(tp) / float64(len(pairs))
	}
	return recall, precision, nil
}

// --------------------------------------------------------------- q2 ----

// Q2 counts frames with at least one vehicle. The tuned plan uses a hash
// index on the label; the baseline scans.
func (e *Env) Q2(useIndex bool) (QueryResult, error) {
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return QueryResult{}, err
	}
	method := core.FilterScan
	plan := "scan filter label=car + distinct frameno"
	if useIndex {
		method = core.FilterHashIndex
		if !e.DB.HasIndex(col, "label", core.IdxHash) {
			if _, err := e.DB.BuildIndex(col, "label", core.IdxHash); err != nil {
				return QueryResult{}, err
			}
		}
		plan = "hash-index label=car + distinct frameno"
	}
	start := time.Now()
	cars, err := e.DB.ExecuteFilter(col, "label", core.StrV("car"), method)
	if err != nil {
		return QueryResult{}, err
	}
	frames := map[int64]bool{}
	for _, p := range cars {
		frames[p.Meta["frameno"].I] = true
	}
	return QueryResult{Query: "q2", Plan: plan, Duration: time.Since(start), Value: len(frames)}, nil
}

// Q2Accuracy compares the detected vehicle-frame set to ground truth.
func (e *Env) Q2Accuracy() (accuracy float64, err error) {
	res, err := e.Q2(false)
	if err != nil {
		return 0, err
	}
	_ = res
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return 0, err
	}
	cars, err := e.DB.ExecuteFilter(col, "label", core.StrV("car"), core.FilterScan)
	if err != nil {
		return 0, err
	}
	pred := map[int]bool{}
	for _, p := range cars {
		pred[int(p.Meta["frameno"].I)] = true
	}
	agree := 0
	for t := 0; t < e.Traffic.Frames; t++ {
		if pred[t] == e.Traffic.VehiclePresent(t) {
			agree++
		}
	}
	return float64(agree) / float64(e.Traffic.Frames), nil
}

// --------------------------------------------------------------- q3 ----

// Q3 tracks the target player's trajectory: jersey-number words matching
// the target are related back to their generating detection patch. The
// baseline re-scans the detection collection per word, matching by frame
// and bbox containment in pixel coordinates (the "rescan the base data"
// plan); the tuned plan follows the indexed lineage pointer.
func (e *Env) Q3(useLineage bool) (QueryResult, error) {
	words, err := e.DB.Collection(ColFBWords)
	if err != nil {
		return QueryResult{}, err
	}
	dets, err := e.DB.Collection(ColFBDets)
	if err != nil {
		return QueryResult{}, err
	}
	target := core.StrV(e.Football.TargetJersey)
	start := time.Now()
	hits, err := core.DrainPatches(core.Select(words.Scan(), core.FieldEq("text", target)))
	if err != nil {
		return QueryResult{}, err
	}
	trajectory := 0
	if useLineage {
		// Tuned: lineage pointer resolves the generating detection in O(1).
		for _, w := range hits {
			if w.Ref.Parent == 0 {
				continue
			}
			if _, err := e.DB.GetPatch(w.Ref.Parent); err == nil {
				trajectory++
			}
		}
		dur := time.Since(start)
		return QueryResult{Query: "q3", Plan: "lineage-pointer join", Duration: dur, Value: trajectory}, nil
	}
	// Baseline: nested-loop rematch on (clip, frame, containment).
	detPs, err := dets.Patches()
	if err != nil {
		return QueryResult{}, err
	}
	for _, w := range hits {
		wb := w.Meta["bbox"].V
		for _, d := range detPs {
			if d.Meta["clip"].I != w.Meta["clip"].I ||
				d.Meta["frameno"].I != w.Meta["frameno"].I {
				continue
			}
			db := d.Meta["bbox"].V
			if wb[0] >= db[0]-1 && wb[1] >= db[1]-1 && wb[2] <= db[2]+1 && wb[3] <= db[3]+1 {
				trajectory++
				break
			}
		}
	}
	return QueryResult{Query: "q3", Plan: "rescan base detections", Duration: time.Since(start), Value: trajectory}, nil
}

// Q3Accuracy measures how much of the target's ground-truth trajectory
// the tracked boxes recover (fraction of visible-target frames with a
// matching tracked detection).
func (e *Env) Q3Accuracy() (float64, error) {
	words, err := e.DB.Collection(ColFBWords)
	if err != nil {
		return 0, err
	}
	hits, err := core.DrainPatches(core.Select(words.Scan(),
		core.FieldEq("text", core.StrV(e.Football.TargetJersey))))
	if err != nil {
		return 0, err
	}
	got := map[[2]int]bool{} // (clip, frame) tracked
	for _, w := range hits {
		got[[2]int{int(w.Meta["clip"].I), int(w.Meta["frameno"].I)}] = true
	}
	total, covered := 0, 0
	for c := range e.Football.Clips {
		traj := e.Football.TargetTrajectory(c)
		for t := range traj {
			total++
			if got[[2]int{c, t}] {
				covered++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("bench: empty ground-truth trajectory")
	}
	return float64(covered) / float64(total), nil
}

// --------------------------------------------------------------- q4 ----

// Q4 counts distinct pedestrians. Plans (Table 1 and Figure 4):
//   - baseline: scan filter, then nested-loop all-pairs matching;
//   - tuned: hash-index filter, then prebuilt-ball-tree matching.
func (e *Env) Q4(useIndex bool) (QueryResult, error) {
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return QueryResult{}, err
	}
	// Tuned physical design (amortized, as in Figure 4): materialize the
	// pedestrian view and build a ball tree over its embeddings — the
	// hand-selected design the paper compares against the index-free
	// baseline.
	var view *core.Collection
	var ballIdx *core.Index
	if useIndex {
		if view, err = e.pedestrianView(col); err != nil {
			return QueryResult{}, err
		}
		if !e.DB.HasIndex(view, "emb", core.IdxBallTree) {
			if _, err := e.DB.BuildIndex(view, "emb", core.IdxBallTree); err != nil {
				return QueryResult{}, err
			}
		}
		if ballIdx, err = e.DB.Index(view, "emb", core.IdxBallTree); err != nil {
			return QueryResult{}, err
		}
	}
	opts := core.SimilarityJoinOpts{LeftField: "emb", RightField: "emb",
		Eps: epsSameIdentity, DedupUnordered: true}
	if useIndex {
		start := time.Now()
		peds, err := view.Patches()
		if err != nil {
			return QueryResult{}, err
		}
		pairs, err := core.SimilarityJoinIndexed(e.DB, peds, view, ballIdx, opts)
		if err != nil {
			return QueryResult{}, err
		}
		distinct := dropSmall(clusterMembers(peds, pairs), minClusterSize)
		return QueryResult{Query: "q4", Plan: "materialized view + prebuilt ball-tree match",
			Duration: time.Since(start), Value: len(distinct)}, nil
	}
	start := time.Now()
	peds, err := e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterScan)
	if err != nil {
		return QueryResult{}, err
	}
	pairs, err := core.SimilarityJoinNested(peds, peds, opts)
	if err != nil {
		return QueryResult{}, err
	}
	// Singleton clusters are one-off detection noise, not identities; q4
	// drops them exactly as Table 1's plans do.
	distinct := dropSmall(clusterMembers(peds, pairs), minClusterSize)
	return QueryResult{Query: "q4", Plan: "scan filter + nested-loop match",
		Duration: time.Since(start), Value: len(distinct)}, nil
}

// pedestrianView returns (materializing on first use) the filtered view
// of pedestrian detections — q4's tuned physical design.
func (e *Env) pedestrianView(col *core.Collection) (*core.Collection, error) {
	const name = "traffic.peds"
	if v, err := e.DB.Collection(name); err == nil {
		return v, nil
	}
	it := core.Select(col.Scan(), core.FieldEq("label", core.StrV("pedestrian")))
	// Clone patches so ids stay unique across collections.
	it = core.Transform(it, func(t core.Tuple) ([]core.Tuple, error) {
		q := t[0].Clone()
		q.ID = 0 // reassign in the view
		return []core.Tuple{{q}}, nil
	})
	return e.DB.Materialize(name, col.Schema(), it)
}

// --------------------------------------------------------------- q5 ----

// Q5 looks up the first PC image containing a target string. No available
// index helps this predicate in the paper's tuned design; both plans scan
// the OCR words (the tuned plan differs only in ordering shortcuts).
func (e *Env) Q5(target string, useIndex bool) (QueryResult, error) {
	words, err := e.DB.Collection(ColPCWords)
	if err != nil {
		return QueryResult{}, err
	}
	start := time.Now()
	it := core.Select(words.Scan(), core.FieldEq("text", core.StrV(target)))
	it = core.TopK(it, "frameno", true, 1) // order-by + limit fused: bounded heap, no full sort
	ts, err := core.Drain(it)
	if err != nil {
		return QueryResult{}, err
	}
	frame := -1
	if len(ts) > 0 {
		frame = int(ts[0][0].Meta["frameno"].I)
	}
	plan := "scan filter text + min frameno"
	return QueryResult{Query: "q5", Plan: plan, Duration: time.Since(start), Value: frame}, nil
}

// Q5Truth returns the ground-truth first image index containing target.
func (e *Env) Q5Truth(target string) int {
	for i, im := range e.PC.Images {
		for _, w := range im.Words {
			if w == target {
				return i
			}
		}
	}
	return -1
}

// --------------------------------------------------------------- q6 ----

// Q6 finds pedestrian pairs (p1 behind p2) within each frame. The
// baseline runs a per-frame nested-loop θ-join; the tuned plan sorts each
// frame's pedestrians by depth and range-scans (plus the indexed filter).
func (e *Env) Q6(useIndex bool) (QueryResult, error) {
	col, err := e.DB.Collection(ColTrafficDets)
	if err != nil {
		return QueryResult{}, err
	}
	if useIndex && !e.DB.HasIndex(col, "label", core.IdxHash) {
		if _, err := e.DB.BuildIndex(col, "label", core.IdxHash); err != nil {
			return QueryResult{}, err
		}
	}
	start := time.Now()
	var peds []*core.Patch
	if useIndex {
		peds, err = e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterHashIndex)
	} else {
		peds, err = e.DB.ExecuteFilter(col, "label", core.StrV("pedestrian"), core.FilterScan)
	}
	if err != nil {
		return QueryResult{}, err
	}
	byFrame := map[int64][]*core.Patch{}
	for _, p := range peds {
		f := p.Meta["frameno"].I
		byFrame[f] = append(byFrame[f], p)
	}
	pairs := 0
	if useIndex {
		for _, group := range byFrame {
			out, err := core.RangeThetaJoinSorted(group, group, "depth", depthGap)
			if err != nil {
				return QueryResult{}, err
			}
			pairs += len(out)
		}
		return QueryResult{Query: "q6", Plan: "hash filter + per-frame sorted range join",
			Duration: time.Since(start), Value: pairs}, nil
	}
	for _, group := range byFrame {
		for _, a := range group {
			for _, b := range group {
				if a.ID != b.ID && a.Meta["depth"].F > b.Meta["depth"].F+depthGap {
					pairs++
				}
			}
		}
	}
	return QueryResult{Query: "q6", Plan: "scan filter + nested θ-join",
		Duration: time.Since(start), Value: pairs}, nil
}

// RunAll executes every query in both physical designs, returning
// (baseline, tuned) pairs keyed by query name.
func (e *Env) RunAll() (map[string][2]QueryResult, error) {
	out := map[string][2]QueryResult{}
	target := e.PC.Vocabulary[0]
	type runner struct {
		name string
		fn   func(bool) (QueryResult, error)
	}
	runners := []runner{
		{"q1", e.Q1},
		{"q2", e.Q2},
		{"q3", e.Q3},
		{"q4", e.Q4},
		{"q5", func(b bool) (QueryResult, error) { return e.Q5(target, b) }},
		{"q6", e.Q6},
	}
	for _, r := range runners {
		base, err := r.fn(false)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", r.name, err)
		}
		tuned, err := r.fn(true)
		if err != nil {
			return nil, fmt.Errorf("%s tuned: %w", r.name, err)
		}
		out[r.name] = [2]QueryResult{base, tuned}
	}
	return out, nil
}
