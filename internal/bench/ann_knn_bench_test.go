package bench

import (
	"sync"
	"testing"
)

// This file benchmarks the ANN physical path against the brute-force
// vector scan on the kNN probe workload: exact balltree and approximate
// LSH probes over a warm 12k-row, 32-dim clustered collection with
// prebuilt indexes. The measured curve is recorded to
// BENCH_ann_knn.json — the perf baseline CI regenerates and uploads
// alongside the columnar-scan, kernel-batching, shard-scaling and
// streaming-ingest snapshots.

var (
	akMu     sync.Mutex
	akPoints = map[string]*ANNKNNPoint{}
)

// akRecord upserts one method's measurement (the harness re-invokes
// sub-benchmarks with growing b.N; the final value wins).
func akRecord(method string, ns float64) {
	akMu.Lock()
	defer akMu.Unlock()
	p, ok := akPoints[method]
	if !ok {
		p = &ANNKNNPoint{Method: method}
		akPoints[method] = p
	}
	p.NS = ns
}

func akFixture(tb testing.TB) *ANNKNNFixture {
	tb.Helper()
	f, err := NewANNKNNFixture(tb.TempDir(), ANNKNNRows)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(f.Close)
	return f
}

// BenchmarkANNKNN measures all three probe methods, writes the baseline
// JSON with the LSH path's measured recall, then asserts the acceptance
// shape — the exact index at least 5x faster than the brute scan, LSH
// recall at or above the default floor — on dedicated min-wall
// measurements (speedup skipped under the race detector, whose
// instrumentation skews the ratio).
func BenchmarkANNKNN(b *testing.B) {
	sides := []struct {
		method string
		run    func(f *ANNKNNFixture, qi int) int
	}{
		{"brute-scan", func(f *ANNKNNFixture, qi int) int { return len(f.Brute(qi)) }},
		{"index-exact", func(f *ANNKNNFixture, qi int) int { return len(f.ExactKNN(qi)) }},
		{"index-lsh", func(f *ANNKNNFixture, qi int) int { return len(f.ApproxKNN(qi)) }},
	}
	for _, s := range sides {
		b.Run(s.method, func(b *testing.B) {
			f := akFixture(b)
			if got := s.run(f, 0); got != ANNKNNK { // warm probe + sanity
				b.Fatalf("%s returned %d of %d", s.method, got, ANNKNNK)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.run(f, i)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp, "ns/query")
			akRecord(s.method, perOp)
		})
	}

	f := akFixture(b)
	recall := f.ANNKNNRecall()
	akMu.Lock()
	var points []ANNKNNPoint
	for _, m := range []string{"brute-scan", "index-exact", "index-lsh"} {
		if p, ok := akPoints[m]; ok {
			if m == "index-lsh" {
				p.Recall = recall
			}
			points = append(points, *p)
		}
	}
	akMu.Unlock()
	if len(points) > 0 {
		if err := WriteANNKNNJSON("BENCH_ann_knn.json", ANNKNNRows, points); err != nil {
			b.Logf("baseline not written: %v", err)
		}
	}

	// Correctness side holds under any instrumentation.
	if err := f.ANNKNNCheck(); err != nil {
		b.Fatal(err)
	}
	if raceEnabled {
		b.Log("race detector on: skipping ann-knn speedup assertion")
		return
	}
	// Acceptance shape on dedicated min-wall measurements over the whole
	// query set.
	bruteNS, err := MinWallNS(5, func() error {
		for qi := 0; qi < ANNKNNQueries; qi++ {
			f.Brute(qi)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	exactNS, err := MinWallNS(5, func() error {
		for qi := 0; qi < ANNKNNQueries; qi++ {
			f.ExactKNN(qi)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("knn probes: brute %.0fns, exact index %.0fns (%.1fx), lsh recall %.3f",
		bruteNS/ANNKNNQueries, exactNS/ANNKNNQueries, bruteNS/exactNS, recall)
	if exactNS*5 > bruteNS {
		b.Errorf("exact index only %.2fx faster than the brute scan (want >= 5x): %v vs %v",
			bruteNS/exactNS, bruteNS, exactNS)
	}
}

// TestANNKNNFixtureContract guards the benchmark's correctness side at
// test time: exact probes byte-identical to brute force, LSH recall at
// the floor — on a smaller fixture so the suite stays fast.
func TestANNKNNFixtureContract(t *testing.T) {
	f, err := NewANNKNNFixture(t.TempDir(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.ANNKNNCheck(); err != nil {
		t.Fatal(err)
	}
}
