package bench

import (
	"testing"
	"time"

	"repro/internal/core"
)

// This file benchmarks the live-ingest serving path: frame-at-a-time
// appends interleaved with selective columnar filters over a warm
// 12k-row collection, comparing the incremental ColumnStore extension
// (sealed blocks reused, only the tail re-projected) against the
// pre-extension behavior of rebuilding the store on every version move.
// The measured curve is recorded to BENCH_streaming_ingest.json — the
// perf baseline CI regenerates and uploads alongside the columnar-scan,
// kernel-batching and shard-scaling snapshots.

// BenchmarkStreamingIngest alternates extend-mode and rebuild-mode
// streams over one growing collection (alternation keeps the two modes'
// row counts within one append window of each other, so neither is
// systematically measured over a larger table). b.N is deliberately not
// multiplied into the workload: each invocation measures a fixed number
// of alternating rounds min-wall, like the shard-scaling fixture, so
// -benchtime only affects harness reruns.
func BenchmarkStreamingIngest(b *testing.B) {
	db, col := csCollection(b)
	if _, err := ColScanFilterColumnar(db, col); err != nil { // warm store
		b.Fatal(err)
	}
	const rounds = 4
	from := ColScanRows
	minExtend, minRebuild := time.Duration(1<<62-1), time.Duration(1<<62-1)
	var extTotal, rebTotal time.Duration
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		n, q, err := RunStreamingIngest(db, col, from, true)
		extStream := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		from += IngestAppendRows
		// Rows cycle labels with period ColScanLabels; the final query saw
		// all `from` rows.
		if want := (from + ColScanLabels - 1 - 3) / ColScanLabels; n != want {
			b.Fatalf("extend stream count %d, want %d at %d rows", n, want, from)
		}
		if q < minExtend {
			minExtend, extTotal = q, extStream
		}

		t0 = time.Now()
		n2, q2, err := RunStreamingIngest(db, col, from, false)
		rebStream := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		from += IngestAppendRows
		if n2 <= n {
			b.Fatalf("rebuild stream count %d did not grow past %d", n2, n)
		}
		if q2 < minRebuild {
			minRebuild, rebTotal = q2, rebStream
		}
		// The rebuild rounds leave no cached store; re-warm so the next
		// extend round upgrades instead of cold-building.
		if _, err := ColScanFilterColumnar(db, col); err != nil {
			b.Fatal(err)
		}
	}
	extQ := float64(minExtend.Nanoseconds()) / IngestQueries
	rebQ := float64(minRebuild.Nanoseconds()) / IngestQueries
	b.ReportMetric(extQ, "ns/extend-query")
	b.ReportMetric(rebQ, "ns/rebuild-query")
	b.ReportMetric(rebQ/extQ, "x-speedup")

	extends, reused, total := db.ColumnExtendStats()
	if extends == 0 || reused == 0 {
		b.Fatalf("extension path never ran: extends=%d reused=%d", extends, reused)
	}
	points := []IngestPoint{
		{Mode: "extend", TotalNS: float64(extTotal.Nanoseconds()), QueryNS: extQ},
		{Mode: "full-rebuild", TotalNS: float64(rebTotal.Nanoseconds()), QueryNS: rebQ},
	}
	if err := WriteIngestJSON("BENCH_streaming_ingest.json", ColScanRows, reused, total, points); err != nil {
		b.Logf("baseline not written: %v", err)
	}

	if raceEnabled {
		b.Log("race detector on: skipping streaming-ingest shape assertion")
		return
	}
	b.Logf("interleaved query: rebuild %.0fns, extend %.0fns (%.1fx), reuse %d/%d blocks",
		rebQ, extQ, rebQ/extQ, reused, total)
	// Acceptance shape: serving a fresh-row query off an extended store
	// must clearly beat rebuilding the store (the quadratic-cliff fix).
	if extQ*2 > rebQ {
		b.Errorf("extension query only %.2fx faster than full rebuild (want >= 2x): %v vs %v",
			rebQ/extQ, extQ, rebQ)
	}
}

// TestStreamingIngestExtendReuse pins the acceptance criterion at the
// benchmark's scale: appending one block's worth of rows to a 12k-row
// collection leaves the next query re-projecting only the tail — at
// least 11 of the 12 existing blocks reused — with results
// byte-identical to a fresh ColumnStore build.
func TestStreamingIngestExtendReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("12k-row fixture")
	}
	db, col, err := NewColScanCollection(t.TempDir(), ColScanRows)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := ColScanFilterColumnar(db, col); err != nil { // warm the label column
		t.Fatal(err)
	}
	for i := 0; i < core.ColumnBlockSize; i++ {
		if err := col.Append(ColScanPatch(ColScanRows + i)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := ColScanFilterColumnar(db, col)
	if err != nil {
		t.Fatal(err)
	}
	extends, reused, total := db.ColumnExtendStats()
	if extends != 1 {
		t.Fatalf("extends = %d, want 1", extends)
	}
	// 12000 rows = 11 sealed blocks + a 736-row tail: 11 of 12 reused.
	if total != 12 || reused < 11 {
		t.Fatalf("block reuse %d/%d, want >= 11/12", reused, total)
	}
	// Byte-identical to a fresh store over the same snapshot.
	cs, err := col.Columns()
	if err != nil {
		t.Fatal(err)
	}
	fresh := core.NewColumnStore(cs.Patches(), cs.Version())
	selExt, okExt := cs.FilterEq("label", ColScanTarget())
	selFresh, okFresh := fresh.FilterEq("label", ColScanTarget())
	if !okExt || !okFresh || len(selExt) != len(selFresh) || len(selExt) != n {
		t.Fatalf("extended selection %d (ok=%v) != fresh %d (ok=%v)", len(selExt), okExt, len(selFresh), okFresh)
	}
	for i := range selExt {
		if selExt[i] != selFresh[i] {
			t.Fatalf("selection diverges at %d: %d != %d", i, selExt[i], selFresh[i])
		}
	}
}
