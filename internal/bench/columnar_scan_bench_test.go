package bench

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// This file benchmarks the columnar scan engine against the
// row-at-a-time iterator path on the two hot serving-path workloads: a
// selective (≈6% pass) equality filter and an ordered top-k, both over a
// warm 12k-row snapshot. The measured curve is recorded to
// BENCH_columnar_scan.json — the perf baseline CI regenerates and
// uploads alongside the kernel-batching and shard-scaling snapshots.

var (
	csMu     sync.Mutex
	csPoints = map[string]*ColScanPoint{}
)

// csRecord upserts one side of a workload's measurement (the harness
// re-invokes sub-benchmarks with growing b.N; the final value wins).
func csRecord(workload string, columnar bool, ns float64) {
	csMu.Lock()
	defer csMu.Unlock()
	p, ok := csPoints[workload]
	if !ok {
		p = &ColScanPoint{Workload: workload}
		csPoints[workload] = p
	}
	if columnar {
		p.ColumnarNS = ns
	} else {
		p.IteratorNS = ns
	}
}

func csCollection(tb testing.TB) (*core.DB, *core.Collection) {
	tb.Helper()
	d, c, err := NewColScanCollection(tb.TempDir(), ColScanRows)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { d.Close() })
	return d, c
}

// BenchmarkColumnarScan measures both paths of both workloads and
// writes the baseline JSON, then asserts the acceptance shape — the
// columnar filter at least 3x faster than the iterator scan on the
// selective predicate — on dedicated min-wall measurements (skipped
// under the race detector, whose instrumentation skews the ratio).
func BenchmarkColumnarScan(b *testing.B) {
	type side struct {
		name     string
		workload string
		columnar bool
		run      func(db *core.DB, col *core.Collection) error
	}
	sides := []side{
		{"selective-filter/iterator", "selective-filter", false,
			func(db *core.DB, col *core.Collection) error { _, err := ColScanFilterIter(db, col); return err }},
		{"selective-filter/columnar", "selective-filter", true,
			func(db *core.DB, col *core.Collection) error { _, err := ColScanFilterColumnar(db, col); return err }},
		{"top-k/iterator", "top-k", false,
			func(db *core.DB, col *core.Collection) error { _, err := ColScanTopKIter(col); return err }},
		{"top-k/columnar", "top-k", true,
			func(db *core.DB, col *core.Collection) error { _, err := ColScanTopKColumnar(col); return err }},
	}
	for _, s := range sides {
		b.Run(s.name, func(b *testing.B) {
			db, col := csCollection(b)
			if err := s.run(db, col); err != nil { // warm snapshot + column
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.run(db, col); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp, "ns/scan")
			csRecord(s.workload, s.columnar, perOp)
		})
	}
	csMu.Lock()
	var points []ColScanPoint
	for _, w := range []string{"selective-filter", "top-k"} {
		if p, ok := csPoints[w]; ok {
			points = append(points, *p)
		}
	}
	csMu.Unlock()
	if len(points) > 0 {
		if err := WriteColScanJSON("BENCH_columnar_scan.json", ColScanRows, points); err != nil {
			b.Logf("baseline not written: %v", err)
		}
	}

	if raceEnabled {
		b.Log("race detector on: skipping columnar-scan shape assertion")
		return
	}
	// Acceptance shape on dedicated min-wall measurements.
	db, col := csCollection(b)
	if _, err := ColScanFilterColumnar(db, col); err != nil { // build the column once
		b.Fatal(err)
	}
	iterNS, err := MinWallNS(10, func() error { _, err := ColScanFilterIter(db, col); return err })
	if err != nil {
		b.Fatal(err)
	}
	colNS, err := MinWallNS(10, func() error { _, err := ColScanFilterColumnar(db, col); return err })
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("selective filter: iterator %.0fns, columnar %.0fns (%.1fx)", iterNS, colNS, iterNS/colNS)
	if colNS*3 > iterNS {
		b.Errorf("columnar filter only %.2fx faster than the iterator scan (want >= 3x): %v vs %v",
			iterNS/colNS, iterNS, colNS)
	}
}

// TestColumnarScanWorkloadsAgree guards the benchmark's correctness
// side: both paths of both workloads return identical result sizes (the
// deep equivalence matrix lives in internal/core's golden tests).
func TestColumnarScanWorkloadsAgree(t *testing.T) {
	db, col, err := NewColScanCollection(t.TempDir(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ni, err := ColScanFilterIter(db, col)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := ColScanFilterColumnar(db, col)
	if err != nil {
		t.Fatal(err)
	}
	if ni != nc || ni != 2000/ColScanLabels {
		t.Fatalf("filter counts: iterator %d, columnar %d, want %d", ni, nc, 2000/ColScanLabels)
	}
	ti, err := ColScanTopKIter(col)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := ColScanTopKColumnar(col)
	if err != nil {
		t.Fatal(err)
	}
	if ti != tc || ti != ColScanTopK {
		t.Fatalf("top-k sizes: iterator %d, columnar %d, want %d", ti, tc, ColScanTopK)
	}
}
