package kv

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentBucketAccess exercises the store's locking: concurrent
// writers on separate buckets plus readers on a shared bucket.
func TestConcurrentBucketAccess(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	shared, _ := s.Bucket("shared")
	for i := 0; i < 100; i++ {
		shared.Put(U64Key(uint64(i)), []byte("v"))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers: one bucket each.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := s.Bucket(fmt.Sprintf("writer-%d", w))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 300; i++ {
				if err := b.Put(U64Key(uint64(i)), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers on the shared bucket.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := shared.Get(U64Key(uint64(i % 100))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All writer data landed.
	for w := 0; w < 4; w++ {
		b, _ := s.Bucket(fmt.Sprintf("writer-%d", w))
		n, err := b.Len()
		if err != nil || n != 300 {
			t.Fatalf("writer-%d len = %d, %v", w, n, err)
		}
	}
}

// TestConcurrentPagerAlloc checks the pager's allocation path under
// parallel load.
func TestConcurrentPagerAlloc(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, err := p.Alloc()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[id] {
					t.Errorf("page %d allocated twice", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 1600 {
		t.Fatalf("allocated %d unique pages, want 1600", len(seen))
	}
}
