// Package kv implements the embedded page-based storage engine DeepLens
// uses wherever the original prototype used BerkeleyDB: the Frame File,
// materialized patch collections, and persistent single-dimensional
// indexes. A Store is a single file of fixed-size pages with a meta page,
// a free list, and a directory of named buckets; each bucket is an on-disk
// B+ tree (see internal/btree) rooted at a page in this file.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed size of all pages in a store file.
const PageSize = 4096

// Magic identifies a DeepLens store file.
const Magic = 0xD331E45D

const metaPage = 0

// Errors returned by the pager.
var (
	ErrBadMagic   = errors.New("kv: not a deeplens store file")
	ErrBadPage    = errors.New("kv: page id out of range")
	ErrClosed     = errors.New("kv: store is closed")
	ErrCorruptVal = errors.New("kv: corrupt overflow chain")
)

// Pager manages fixed-size pages in a single file with an in-memory
// write-back cache. It is safe for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	npages   uint64
	freeHead uint64 // first page of free list, 0 = none
	cache    map[uint64]*cachedPage
	maxCache int
	clock    uint64
	closed   bool
	// rootDir holds the page id of the bucket-directory tree root; it is
	// owned by Store but persisted via the meta page alongside pager state.
	rootDir uint64

	// reads counts every page read served (cache hit or disk), so callers
	// can assert access patterns — e.g. that a zone-map-pruned columnar
	// scan never faults a spilled segment in from the page file.
	reads atomic.Int64
}

type cachedPage struct {
	buf   []byte
	dirty bool
	used  uint64
}

// OpenPager opens (or creates) the page file at path.
func OpenPager(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: open %s: %w", path, err)
	}
	p := &Pager{f: f, cache: make(map[uint64]*cachedPage), maxCache: 4096}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		p.npages = 1
		if err := p.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *Pager) writeMeta() error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint64(buf[4:], p.npages)
	binary.LittleEndian.PutUint64(buf[12:], p.freeHead)
	binary.LittleEndian.PutUint64(buf[20:], p.rootDir)
	_, err := p.f.WriteAt(buf, metaPage*PageSize)
	return err
}

func (p *Pager) readMeta() error {
	buf := make([]byte, PageSize)
	if _, err := p.f.ReadAt(buf, metaPage*PageSize); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return ErrBadMagic
	}
	p.npages = binary.LittleEndian.Uint64(buf[4:])
	p.freeHead = binary.LittleEndian.Uint64(buf[12:])
	p.rootDir = binary.LittleEndian.Uint64(buf[20:])
	return nil
}

// Read returns the contents of page id. The returned slice is the cached
// page buffer: callers must copy before mutating, or use Write.
func (p *Pager) Read(id uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLocked(id)
}

func (p *Pager) readLocked(id uint64) ([]byte, error) {
	if p.closed {
		return nil, ErrClosed
	}
	if id == 0 || id >= p.npages {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrBadPage, id, p.npages)
	}
	p.reads.Add(1)
	if cp, ok := p.cache[id]; ok {
		p.clock++
		cp.used = p.clock
		return cp.buf, nil
	}
	buf := make([]byte, PageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, err
	}
	p.insertCache(id, buf, false)
	return buf, nil
}

// Write stores buf (length PageSize) as the contents of page id.
func (p *Pager) Write(id uint64, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeLocked(id, buf)
}

func (p *Pager) writeLocked(id uint64, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if len(buf) != PageSize {
		return fmt.Errorf("kv: write of %d bytes, want %d", len(buf), PageSize)
	}
	if id == 0 || id >= p.npages {
		return fmt.Errorf("%w: %d (have %d)", ErrBadPage, id, p.npages)
	}
	if cp, ok := p.cache[id]; ok {
		copy(cp.buf, buf)
		cp.dirty = true
		p.clock++
		cp.used = p.clock
		return nil
	}
	cp := make([]byte, PageSize)
	copy(cp, buf)
	p.insertCache(id, cp, true)
	return nil
}

func (p *Pager) insertCache(id uint64, buf []byte, dirty bool) {
	if len(p.cache) >= p.maxCache {
		p.evictLocked()
	}
	p.clock++
	p.cache[id] = &cachedPage{buf: buf, dirty: dirty, used: p.clock}
}

// evictLocked writes back and drops roughly the least recently used quarter
// of the cache. Approximate LRU keeps the hot working set without the cost
// of a full ordering.
func (p *Pager) evictLocked() {
	var sum uint64
	for _, cp := range p.cache {
		sum += cp.used
	}
	cutoff := sum / uint64(len(p.cache)) // evict pages older than mean use time
	for id, cp := range p.cache {
		if cp.used <= cutoff {
			if cp.dirty {
				p.f.WriteAt(cp.buf, int64(id)*PageSize)
			}
			delete(p.cache, id)
		}
	}
}

// Alloc returns a fresh zeroed page, reusing the free list when possible.
func (p *Pager) Alloc() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	if p.freeHead != 0 {
		id := p.freeHead
		buf, err := p.readLocked(id)
		if err != nil {
			return 0, err
		}
		p.freeHead = binary.LittleEndian.Uint64(buf)
		zero := make([]byte, PageSize)
		if err := p.writeLocked(id, zero); err != nil {
			return 0, err
		}
		return id, nil
	}
	id := p.npages
	p.npages++
	zero := make([]byte, PageSize)
	p.insertCache(id, zero, true)
	return id, nil
}

// Free returns page id to the free list.
func (p *Pager) Free(id uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id == 0 || id >= p.npages {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint64(buf, p.freeHead)
	if err := p.writeLocked(id, buf); err != nil {
		return err
	}
	p.freeHead = id
	return nil
}

// Reads returns the cumulative count of page reads served (cache hits
// included) since the pager opened. Deltas around an operation bound the
// page traffic it generated.
func (p *Pager) Reads() int64 { return p.reads.Load() }

// NumPages returns the current page count including the meta page.
func (p *Pager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npages
}

// Flush writes all dirty cached pages and the meta page to the file.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pager) flushLocked() error {
	if p.closed {
		return ErrClosed
	}
	for id, cp := range p.cache {
		if cp.dirty {
			if _, err := p.f.WriteAt(cp.buf, int64(id)*PageSize); err != nil {
				return err
			}
			cp.dirty = false
		}
	}
	if err := p.writeMeta(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Close flushes and closes the underlying file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		p.f.Close()
		p.closed = true
		return err
	}
	p.closed = true
	return p.f.Close()
}

// SetRootDir records the bucket-directory root page in the meta page state.
func (p *Pager) SetRootDir(id uint64) {
	p.mu.Lock()
	p.rootDir = id
	p.mu.Unlock()
}

// RootDir returns the bucket-directory root page recorded in the meta page.
func (p *Pager) RootDir() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rootDir
}

// Overflow chains store values too large for one tree node. Layout of an
// overflow page: [8 bytes next page id][4 bytes payload length][payload].
const overflowCap = PageSize - 12

// WriteOverflow stores val in a chain of overflow pages, returning the head.
func (p *Pager) WriteOverflow(val []byte) (uint64, error) {
	var head, prev uint64
	for off := 0; ; off += overflowCap {
		id, err := p.Alloc()
		if err != nil {
			return 0, err
		}
		if head == 0 {
			head = id
		}
		if prev != 0 {
			buf, err := p.Read(prev)
			if err != nil {
				return 0, err
			}
			pb := append([]byte(nil), buf...)
			binary.LittleEndian.PutUint64(pb, id)
			if err := p.Write(prev, pb); err != nil {
				return 0, err
			}
		}
		chunk := val[off:]
		if len(chunk) > overflowCap {
			chunk = chunk[:overflowCap]
		}
		buf := make([]byte, PageSize)
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(chunk)))
		copy(buf[12:], chunk)
		if err := p.Write(id, buf); err != nil {
			return 0, err
		}
		prev = id
		if off+len(chunk) >= len(val) {
			break
		}
	}
	return head, nil
}

// ReadOverflow reassembles a value stored by WriteOverflow.
func (p *Pager) ReadOverflow(head uint64, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	id := head
	for id != 0 {
		buf, err := p.Read(id)
		if err != nil {
			return nil, err
		}
		next := binary.LittleEndian.Uint64(buf)
		n := int(binary.LittleEndian.Uint32(buf[8:]))
		if n > overflowCap {
			return nil, ErrCorruptVal
		}
		out = append(out, buf[12:12+n]...)
		id = next
		if len(out) > total {
			return nil, ErrCorruptVal
		}
	}
	if len(out) != total {
		return nil, ErrCorruptVal
	}
	return out, nil
}

// FreeOverflow releases an overflow chain back to the free list.
func (p *Pager) FreeOverflow(head uint64) error {
	id := head
	for id != 0 {
		buf, err := p.Read(id)
		if err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(buf)
		if err := p.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
