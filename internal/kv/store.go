package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/btree"
)

// Store is a named-bucket key-value database on a single page file. Each
// bucket is a B+ tree; the directory mapping bucket names to tree roots is
// itself a B+ tree whose root lives in the meta page.
type Store struct {
	mu      sync.Mutex
	p       *Pager
	dir     *btree.Tree
	buckets map[string]*Bucket
}

// ErrNotFound is returned for missing keys and buckets.
var ErrNotFound = errors.New("kv: not found")

// Open opens (or creates) the store at path.
func Open(path string) (*Store, error) {
	p, err := OpenPager(path)
	if err != nil {
		return nil, err
	}
	s := &Store{p: p, buckets: make(map[string]*Bucket)}
	s.dir = btree.Open(p, p.RootDir())
	return s, nil
}

// Pager exposes the underlying pager, e.g. for index structures that manage
// their own pages inside the same file.
func (s *Store) Pager() *Pager { return s.p }

// Bucket returns the named bucket, creating it on first use.
func (s *Store) Bucket(name string) (*Bucket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.buckets[name]; ok {
		return b, nil
	}
	var root uint64
	v, err := s.dir.Get([]byte(name))
	switch {
	case err == nil:
		root = binary.LittleEndian.Uint64(v)
	case errors.Is(err, btree.ErrNotFound):
		root = 0
	default:
		return nil, err
	}
	b := &Bucket{s: s, name: name, t: btree.Open(s.p, root)}
	s.buckets[name] = b
	return b, nil
}

// HasBucket reports whether a bucket exists without creating it.
func (s *Store) HasBucket(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return true, nil
	}
	_, err := s.dir.Get([]byte(name))
	if errors.Is(err, btree.ErrNotFound) {
		return false, nil
	}
	return err == nil, err
}

// Buckets lists all bucket names in the directory plus any created in memory.
func (s *Store) Buckets() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var names []string
	err := s.dir.Scan(nil, nil, func(k, _ []byte) bool {
		seen[string(k)] = true
		names = append(names, string(k))
		return true
	})
	if err != nil {
		return nil, err
	}
	for n := range s.buckets {
		if !seen[n] {
			names = append(names, n)
		}
	}
	return names, nil
}

// saveRoot records a bucket's (possibly changed) tree root in the directory.
func (s *Store) saveRoot(name string, root uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], root)
	if err := s.dir.Put([]byte(name), v[:]); err != nil {
		return err
	}
	s.p.SetRootDir(s.dir.Root())
	return nil
}

// Flush persists all dirty state to disk.
func (s *Store) Flush() error {
	s.mu.Lock()
	for name, b := range s.buckets {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], b.t.Root())
		if err := s.dir.Put([]byte(name), v[:]); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.p.SetRootDir(s.dir.Root())
	s.mu.Unlock()
	return s.p.Flush()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		s.p.Close()
		return err
	}
	return s.p.Close()
}

// Bucket is an ordered key-value namespace within a Store.
type Bucket struct {
	mu   sync.Mutex
	s    *Store
	name string
	t    *btree.Tree
}

// Name returns the bucket's name.
func (b *Bucket) Name() string { return b.name }

// Put stores val under key, replacing any existing value.
func (b *Bucket) Put(key, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.t.Root()
	if err := b.t.Put(key, val); err != nil {
		return err
	}
	if b.t.Root() != old {
		return b.s.saveRoot(b.name, b.t.Root())
	}
	return nil
}

// Get returns the value under key, or ErrNotFound.
func (b *Bucket) Get(key []byte) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, err := b.t.Get(key)
	if errors.Is(err, btree.ErrNotFound) {
		return nil, fmt.Errorf("%w: bucket %q key %x", ErrNotFound, b.name, key)
	}
	return v, err
}

// Delete removes key; missing keys are reported as ErrNotFound.
func (b *Bucket) Delete(key []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.t.Delete(key)
	if errors.Is(err, btree.ErrNotFound) {
		return fmt.Errorf("%w: bucket %q key %x", ErrNotFound, b.name, key)
	}
	return err
}

// Scan calls fn over entries with key in [lo, hi) in key order; nil bounds
// are unbounded. fn returning false stops the scan.
func (b *Bucket) Scan(lo, hi []byte, fn func(k, v []byte) bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.t.Scan(lo, hi, fn)
}

// Len counts entries (O(n)).
func (b *Bucket) Len() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.t.Len()
}

// U64Key encodes an integer as a big-endian sortable key, the store-wide
// convention for frame numbers and patch ids.
func U64Key(v uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], v)
	return k[:]
}

// ParseU64Key decodes a key written by U64Key.
func ParseU64Key(k []byte) uint64 {
	if len(k) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(k)
}
