package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func openTemp(t testing.TB) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "s.db"))
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPagerAllocFree(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("alloc returned %d, %d", a, b)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Alloc()
	if c != a {
		t.Fatalf("freed page %d not reused (got %d)", a, c)
	}
}

func TestPagerReadBadPage(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Read(999); !errors.Is(err, ErrBadPage) {
		t.Fatalf("Read(999) err = %v, want ErrBadPage", err)
	}
	if _, err := p.Read(0); !errors.Is(err, ErrBadPage) {
		t.Fatalf("Read(0) err = %v, want ErrBadPage (meta page is private)", err)
	}
}

func TestPagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	p, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Alloc()
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i % 251)
	}
	if err := p.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got, err := p2.Read(id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("page content lost across reopen (err=%v)", err)
	}
}

func TestPagerNotAStoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.db")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPager(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("OpenPager(junk) err = %v, want ErrBadMagic", err)
	}
}

func writeJunk(path string) error {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xAB
	}
	return os.WriteFile(path, buf, 0o644)
}

func TestOverflowRoundTrip(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, n := range []int{0, 1, overflowCap, overflowCap + 1, 3*overflowCap + 17, 1 << 20} {
		val := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(val)
		head, err := p.WriteOverflow(val)
		if err != nil {
			t.Fatalf("WriteOverflow(%d): %v", n, err)
		}
		got, err := p.ReadOverflow(head, n)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("ReadOverflow(%d) mismatch (err=%v)", n, err)
		}
		if err := p.FreeOverflow(head); err != nil {
			t.Fatalf("FreeOverflow(%d): %v", n, err)
		}
	}
}

func TestBucketBasic(t *testing.T) {
	s := openTemp(t)
	b, err := s.Bucket("frames")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := b.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := b.Get([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v, want ErrNotFound", err)
	}
}

func TestBucketIsolation(t *testing.T) {
	s := openTemp(t)
	b1, _ := s.Bucket("one")
	b2, _ := s.Bucket("two")
	b1.Put([]byte("k"), []byte("from-one"))
	b2.Put([]byte("k"), []byte("from-two"))
	v1, _ := b1.Get([]byte("k"))
	v2, _ := b2.Get([]byte("k"))
	if string(v1) != "from-one" || string(v2) != "from-two" {
		t.Fatalf("buckets not isolated: %q / %q", v1, v2)
	}
}

func TestStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Bucket("payloads")
	for i := 0; i < 2000; i++ {
		if err := b.Put(U64Key(uint64(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ok, err := s2.HasBucket("payloads")
	if err != nil || !ok {
		t.Fatalf("HasBucket after reopen = %v, %v", ok, err)
	}
	b2, _ := s2.Bucket("payloads")
	for i := 0; i < 2000; i += 37 {
		v, err := b2.Get(U64Key(uint64(i)))
		if err != nil || string(v) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("reopen Get(%d) = %q, %v", i, v, err)
		}
	}
	names, err := s2.Buckets()
	if err != nil || len(names) != 1 || names[0] != "payloads" {
		t.Fatalf("Buckets = %v, %v", names, err)
	}
}

func TestBucketScanOrderedByU64Key(t *testing.T) {
	s := openTemp(t)
	b, _ := s.Bucket("ordered")
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		b.Put(U64Key(uint64(i)), nil)
	}
	var got []uint64
	b.Scan(nil, nil, func(k, _ []byte) bool {
		got = append(got, ParseU64Key(k))
		return true
	})
	if len(got) != 500 {
		t.Fatalf("scan count = %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("U64Key scan not in numeric order")
	}
}

func TestBucketRangeScanPushdown(t *testing.T) {
	s := openTemp(t)
	b, _ := s.Bucket("frames")
	for i := 0; i < 1000; i++ {
		b.Put(U64Key(uint64(i)), []byte{1})
	}
	n := 0
	b.Scan(U64Key(250), U64Key(260), func(_, _ []byte) bool { n++; return true })
	if n != 10 {
		t.Fatalf("range scan visited %d entries, want 10", n)
	}
}

func TestU64KeyRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool { return ParseU64Key(U64Key(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64KeyOrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		return (a < b) == (bytes.Compare(U64Key(a), U64Key(b)) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.db"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Bucket("b")
	b.Put([]byte("k"), []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Put([]byte("k2"), []byte("v")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
}
