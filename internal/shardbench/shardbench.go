// Package shardbench is the shared fixture for the shard-scaling
// experiment: one synthetic scan-heavy workload, service construction
// and baseline-JSON encoding used by both BenchmarkShardScaling
// (internal/bench, the CI-uploaded snapshot) and the `deeplens-bench
// shard-scaling` subcommand, so the two surfaces cannot drift apart.
//
// It lives outside internal/bench because that package's own in-package
// tests are imported by internal/service's tests; importing service
// from internal/bench's non-test files would close an import cycle.
package shardbench

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/service"
)

// Col is the synthetic collection the sweep scans.
const Col = "scale.dets"

// DefaultRows is the ingested row count: large enough that the
// unindexed scan dominates per-query serving overhead.
const DefaultRows = 6000

// Schema declares the synthetic detection metadata.
func Schema() core.Schema {
	return core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "label", Kind: core.KindStr},
			{Name: "score", Kind: core.KindFloat},
			{Name: "rank", Kind: core.KindInt},
		},
	}
}

// Patch generates row i deterministically (label cycles over four
// values, so the scan filter matches a quarter of every partition).
func Patch(i int) *core.Patch {
	return &core.Patch{
		Ref: core.Ref{Source: "scale", Frame: uint64(i)},
		Meta: core.Metadata{
			"label": core.StrV([]string{"car", "pedestrian", "bus", "truck"}[i%4]),
			"score": core.FloatV(float64(i%100) / 100),
			"rank":  core.IntV(int64(i % 17)),
		},
	}
}

// NewService ingests rows synthetic rows into an n-shard database under
// dir and starts a sharded service over it (one worker: the measured
// parallelism is the scatter wave inside a single query, not
// inter-query concurrency). The returned cleanup closes both.
func NewService(dir string, n, rows int) (*service.Service, func(), error) {
	sdb, err := core.OpenSharded(dir, n, exec.New(exec.CPU))
	if err != nil {
		return nil, nil, err
	}
	sc, err := sdb.CreateCollection(Col, Schema())
	if err != nil {
		sdb.Close()
		return nil, nil, err
	}
	for i := 0; i < rows; i++ {
		if err := sc.Append(Patch(i)); err != nil {
			sdb.Close()
			return nil, nil, err
		}
	}
	svc, err := service.NewSharded(sdb, service.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		sdb.Close()
		return nil, nil, err
	}
	return svc, func() { svc.Close(); sdb.Close() }, nil
}

// ScanRequest is the scan-heavy workload: an unindexed, uncacheable
// filter that touches every row of every partition.
func ScanRequest() service.Request {
	car := "car"
	return service.Request{
		Collection: Col,
		Filter:     &service.FilterSpec{Field: "label", Str: &car},
		NoCache:    true,
	}
}

// Point is one measured point of the shard-scaling curve.
type Point struct {
	Shards             int     `json:"shards"`
	NsPerQuery         float64 `json:"ns_per_query"`
	SpeedupVs1         float64 `json:"speedup_vs_1"`
	ScatterTasksPerQry float64 `json:"scatter_tasks_per_query"`
	MergeMSTotal       float64 `json:"merge_time_ms_total"`
}

// MinWall runs iters queries and returns the fastest wall time —
// robust against scheduler noise for shape assertions.
func MinWall(svc *service.Service, iters int) (time.Duration, error) {
	req := ScanRequest()
	ctx := context.Background()
	var s obs.Summary
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if _, err := svc.Query(ctx, req); err != nil {
			return 0, err
		}
		s.ObserveDuration(time.Since(t0))
	}
	return time.Duration(s.Min() * float64(time.Second)), nil
}

// WriteJSON fills in speedups relative to the 1-shard point and writes
// the baseline snapshot (the artifact CI uploads).
func WriteJSON(path string, rows int, curve []Point) error {
	var base float64
	for _, p := range curve {
		if p.Shards == 1 {
			base = p.NsPerQuery
		}
	}
	for i := range curve {
		if base > 0 {
			curve[i].SpeedupVs1 = base / curve[i].NsPerQuery
		}
	}
	out := struct {
		Description string  `json:"description"`
		GoMaxProcs  int     `json:"gomaxprocs"`
		Rows        int     `json:"rows"`
		Curve       []Point `json:"curve"`
	}{
		Description: "scatter-gather scan-heavy query latency vs shard count, single client, full serving path",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Rows:        rows,
		Curve:       curve,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
