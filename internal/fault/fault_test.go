package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if err := in.Fail(FragmentError, 0, 0); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if err := in.Stall(context.Background(), FragmentStall, 0, 0); err != nil {
		t.Fatalf("nil injector stalled: %v", err)
	}
	if got := in.Fired(AppendError); got != 0 {
		t.Fatalf("nil injector Fired = %d", got)
	}
	if New(Config{Seed: 1}) != nil {
		t.Fatal("New with no rules should return nil")
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"fragment-stall:0.2", Rule{Point: FragmentStall, Shard: Any, Replica: Any, Prob: 0.2}},
		{"fragment-stall:1:50", Rule{Point: FragmentStall, Shard: Any, Replica: Any, Prob: 1, Stall: 50 * time.Millisecond}},
		{"append-error@2:0.5", Rule{Point: AppendError, Shard: 2, Replica: Any, Prob: 0.5}},
		{"fragment-stall@*.0:1:25", Rule{Point: FragmentStall, Shard: Any, Replica: 0, Prob: 1, Stall: 25 * time.Millisecond}},
		{"fragment-error@1.1:1", Rule{Point: FragmentError, Shard: 1, Replica: 1, Prob: 1}},
		{"device-stall:0", Rule{Point: DeviceStall, Shard: Any, Replica: Any, Prob: 0}},
		{"resync-error@0.1:1", Rule{Point: ResyncError, Shard: 0, Replica: 1, Prob: 1}},
		{"resync-stall:0.5:20", Rule{Point: ResyncStall, Shard: Any, Replica: Any, Prob: 0.5, Stall: 20 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseRule(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	bad := []string{
		"", "fragment-stall", "bogus-point:1", "fragment-stall:2",
		"fragment-stall:x", "fragment-stall:1:-5", "fragment-stall@-1:1",
		"fragment-stall@0.q:1", "fragment-stall:1:50:9",
	}
	for _, spec := range bad {
		if _, err := ParseRule(spec); err == nil {
			t.Fatalf("ParseRule(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("fragment-stall:0.2, append-error@1:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Point != FragmentStall || rules[1].Shard != 1 {
		t.Fatalf("ParseRules = %+v", rules)
	}
	if got, err := ParseRules("  "); err != nil || got != nil {
		t.Fatalf("empty spec list: %v %v", got, err)
	}
	if _, err := ParseRules("fragment-stall:0.2,nope:1"); err == nil {
		t.Fatal("bad member accepted")
	}
}

func TestScopeMatching(t *testing.T) {
	in := New(Config{Seed: 7, Rules: []Rule{
		{Point: FragmentError, Shard: 1, Replica: 0, Prob: 1},
	}})
	if err := in.Fail(FragmentError, 0, 0); err != nil {
		t.Fatalf("wrong shard fired: %v", err)
	}
	if err := in.Fail(FragmentError, 1, 1); err != nil {
		t.Fatalf("wrong replica fired: %v", err)
	}
	if err := in.Fail(AppendError, 1, 0); err != nil {
		t.Fatalf("wrong point fired: %v", err)
	}
	err := in.Fail(FragmentError, 1, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matching site did not fire: %v", err)
	}
	if got := in.Fired(FragmentError); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

// TestResyncPointsFireIndependently pins the resync failpoints' counter
// slots: firing one must not bleed into any other point's Fired count.
func TestResyncPointsFireIndependently(t *testing.T) {
	in := New(Config{Seed: 3, Rules: []Rule{
		{Point: ResyncError, Shard: Any, Replica: Any, Prob: 1},
		{Point: ResyncStall, Shard: Any, Replica: Any, Prob: 1, Stall: time.Millisecond},
	}})
	if err := in.Fail(ResyncError, 2, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed resync-error did not fire: %v", err)
	}
	if err := in.Stall(context.Background(), ResyncStall, 0, 1); err != nil {
		t.Fatalf("completed resync stall returned error: %v", err)
	}
	if got := in.Fired(ResyncError); got != 1 {
		t.Fatalf("Fired(resync-error) = %d, want 1", got)
	}
	if got := in.Fired(ResyncStall); got != 1 {
		t.Fatalf("Fired(resync-stall) = %d, want 1", got)
	}
	for _, p := range []Point{FragmentError, FragmentStall, AppendError, DeviceStall} {
		if got := in.Fired(p); got != 0 {
			t.Fatalf("Fired(%s) = %d, want 0 (resync counters bled)", p, got)
		}
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []bool {
		in := New(Config{Seed: 42, Rules: []Rule{
			{Point: FragmentError, Shard: Any, Replica: Any, Prob: 0.5},
		}})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fail(FragmentError, 0, 0) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged across identical runs", i)
		}
		if a[i] {
			fired++
		}
	}
	// p=0.5 over 64 draws: both outcomes must appear.
	if fired == 0 || fired == len(a) {
		t.Fatalf("degenerate fire count %d/64 at p=0.5", fired)
	}
	// A different seed must produce a different schedule.
	in2 := New(Config{Seed: 43, Rules: []Rule{
		{Point: FragmentError, Shard: Any, Replica: Any, Prob: 0.5},
	}})
	same := true
	for i := range a {
		if (in2.Fail(FragmentError, 0, 0) != nil) != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}
}

func TestStallDelaysThenContinues(t *testing.T) {
	in := New(Config{Seed: 1, Rules: []Rule{
		{Point: FragmentStall, Shard: Any, Replica: Any, Prob: 1, Stall: 30 * time.Millisecond},
	}})
	start := time.Now()
	if err := in.Stall(context.Background(), FragmentStall, 0, 0); err != nil {
		t.Fatalf("completed stall returned error: %v", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("stall returned after %v, want >= 30ms", el)
	}
	if got := in.Fired(FragmentStall); got != 1 {
		t.Fatalf("Fired = %d", got)
	}
}

func TestStallHonorsCancel(t *testing.T) {
	in := New(Config{Seed: 1, Rules: []Rule{
		{Point: FragmentStall, Shard: Any, Replica: Any, Prob: 1, Stall: 10 * time.Second},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Stall(ctx, FragmentStall, 0, 0) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled stall returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled stall did not unblock")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	// A shard-scoped certain rule ahead of a never-fire wildcard:
	// scoped sites fire, others fall through to the p=0 rule and don't.
	in := New(Config{Seed: 9, Rules: []Rule{
		{Point: FragmentStall, Shard: 0, Replica: Any, Prob: 1, Stall: time.Millisecond},
		{Point: FragmentStall, Shard: Any, Replica: Any, Prob: 0},
	}})
	if err := in.Stall(context.Background(), FragmentStall, 1, 0); err != nil {
		t.Fatalf("p=0 wildcard fired: %v", err)
	}
	if got := in.Fired(FragmentStall); got != 0 {
		t.Fatalf("Fired = %d, want 0", got)
	}
	if err := in.Stall(context.Background(), FragmentStall, 0, 1); err != nil {
		t.Fatalf("scoped stall errored: %v", err)
	}
	if got := in.Fired(FragmentStall); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}
