// Package fault is the deterministic fault-injection substrate for the
// serving stack: named failpoints compiled into the shard, scatter and
// append paths fire injected errors or stalls with configured
// probability, so chaos tests and CI can exercise every recovery branch
// (hedged reads, fragment retries, replica demotion, graceful
// degradation) without real hardware failures.
//
// Design constraints, in order:
//
//   - Zero cost when disabled: every production call site holds a nil
//     *Injector and every method is nil-receiver-safe, so the disabled
//     path is one pointer compare.
//   - Deterministic: outcomes derive from a seeded counter-based PRNG
//     (splitmix64 over seed x failpoint x invocation ordinal), so a
//     single-threaded test replays the same fault schedule every run.
//     Concurrent call sites still get a seed-stable sequence of
//     decisions; only their interleaving varies.
//   - Targetable: a rule can scope itself to one shard and/or one
//     replica, so a test can stall "replica 0 of every shard" or kill
//     "both replicas of shard 1" precisely.
//
// Stalls are delays, not failures: a stalled call sleeps for the rule's
// duration (context-aware, so hedge losers and canceled queries unblock
// immediately) and then proceeds normally. Errors return ErrInjected
// wrapped with the failpoint coordinates.
package fault

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names a compiled-in failpoint.
type Point string

// The failpoint catalog. Each constant is referenced by exactly one
// call site family; the spec grammar uses these names verbatim.
const (
	// FragmentError fails a scatter filter-fragment attempt on
	// (shard, replica) before it reads the snapshot.
	FragmentError Point = "fragment-error"
	// FragmentStall delays a scatter filter-fragment attempt, modeling a
	// slow or wedged shard (the hedge trigger).
	FragmentStall Point = "fragment-stall"
	// AppendError fails one replica's write during a routed append.
	// On the primary replica the whole append fails; on a secondary the
	// replica is demoted from the read set (core.Sharded semantics).
	AppendError Point = "append-error"
	// DeviceStall delays a similarity-join task before it submits
	// kernels, modeling a slow device queue.
	DeviceStall Point = "device-stall"
	// ResyncError fails a replica re-sync mid-stream on (shard, replica):
	// the repair aborts, leaving the replica demoted with whatever valid
	// prefix it had reached (torn-repair chaos testing).
	ResyncError Point = "resync-error"
	// ResyncStall delays a replica re-sync batch, modeling a slow repair
	// stream (the anti-entropy loop's backoff trigger).
	ResyncStall Point = "resync-stall"
)

// ErrInjected is the sentinel every injected failure wraps.
var ErrInjected = errors.New("fault: injected failure")

// Any matches every shard or replica in a rule scope.
const Any = -1

// DefaultStall is a stall rule's delay when the spec names none.
const DefaultStall = 500 * time.Millisecond

// Rule arms one failpoint: fire with probability Prob at call sites
// matching the Shard/Replica scope (Any matches all). Stall is the
// delay for stall points (DefaultStall when zero).
type Rule struct {
	Point   Point
	Shard   int
	Replica int
	Prob    float64
	Stall   time.Duration
}

// Config arms a set of rules under one deterministic seed.
type Config struct {
	Seed  int64
	Rules []Rule
}

// Enabled reports whether any rule is armed.
func (c Config) Enabled() bool { return len(c.Rules) > 0 }

// ParseRule parses one flag-style rule spec:
//
//	point:prob               fragment-stall:0.2
//	point:prob:stallMS       fragment-stall:1:50
//	point@shard:prob         append-error@2:0.5
//	point@shard.replica:prob fragment-stall@*.0:1:50
//
// shard and replica accept * (any). prob is in [0, 1].
func ParseRule(spec string) (Rule, error) {
	r := Rule{Shard: Any, Replica: Any}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return r, fmt.Errorf("fault: bad rule %q (want point[@shard[.replica]]:prob[:stallMS])", spec)
	}
	name := parts[0]
	if at := strings.IndexByte(name, '@'); at >= 0 {
		scope := name[at+1:]
		name = name[:at]
		shard, replica := scope, ""
		if dot := strings.IndexByte(scope, '.'); dot >= 0 {
			shard, replica = scope[:dot], scope[dot+1:]
		}
		var err error
		if r.Shard, err = parseScope(shard); err != nil {
			return r, fmt.Errorf("fault: bad shard scope in %q: %w", spec, err)
		}
		if replica != "" {
			if r.Replica, err = parseScope(replica); err != nil {
				return r, fmt.Errorf("fault: bad replica scope in %q: %w", spec, err)
			}
		}
	}
	switch Point(name) {
	case FragmentError, FragmentStall, AppendError, DeviceStall, ResyncError, ResyncStall:
		r.Point = Point(name)
	default:
		return r, fmt.Errorf("fault: unknown failpoint %q (want %s, %s, %s, %s, %s or %s)",
			name, FragmentError, FragmentStall, AppendError, DeviceStall, ResyncError, ResyncStall)
	}
	prob, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || prob < 0 || prob > 1 {
		return r, fmt.Errorf("fault: bad probability %q in %q (want [0,1])", parts[1], spec)
	}
	r.Prob = prob
	if len(parts) == 3 {
		ms, err := strconv.Atoi(parts[2])
		if err != nil || ms < 0 {
			return r, fmt.Errorf("fault: bad stall duration %q in %q (want milliseconds)", parts[2], spec)
		}
		r.Stall = time.Duration(ms) * time.Millisecond
	}
	return r, nil
}

func parseScope(s string) (int, error) {
	if s == "*" || s == "" {
		return Any, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative integer or *, got %q", s)
	}
	return n, nil
}

// ParseRules parses a comma-separated rule list (the -fault flag form).
func ParseRules(specs string) ([]Rule, error) {
	var rules []Rule
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		r, err := ParseRule(spec)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Injector evaluates armed rules at failpoints. The zero-value pointer
// (nil) is the disabled injector: every method no-ops.
type Injector struct {
	seed  uint64
	rules []Rule
	seq   atomic.Uint64
	fired [6]atomic.Int64 // per-point fired counters, indexed by pointIdx
}

func pointIdx(p Point) int {
	switch p {
	case FragmentError:
		return 0
	case FragmentStall:
		return 1
	case AppendError:
		return 2
	case ResyncError:
		return 4
	case ResyncStall:
		return 5
	default:
		return 3
	}
}

// New arms cfg's rules. With no rules it returns nil — the disabled
// injector every method treats as "never fire".
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{seed: uint64(cfg.Seed), rules: cfg.Rules}
}

// Enabled reports whether any rule is armed.
func (in *Injector) Enabled() bool { return in != nil && len(in.rules) > 0 }

// Fired returns how many times the failpoint has fired.
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.fired[pointIdx(p)].Load()
}

// splitmix64 finalizer: decorrelates sequential draw ordinals.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns a deterministic uniform in [0, 1) for this invocation.
func (in *Injector) draw(p Point) float64 {
	n := in.seq.Add(1)
	h := splitmix64(in.seed ^ splitmix64(n) ^ uint64(pointIdx(p))<<56)
	return float64(h>>11) / (1 << 53)
}

// match returns the first armed rule covering (p, shard, replica) whose
// probability draw fires.
func (in *Injector) match(p Point, shard, replica int) *Rule {
	if in == nil {
		return nil
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != p {
			continue
		}
		if r.Shard != Any && r.Shard != shard {
			continue
		}
		if r.Replica != Any && r.Replica != replica {
			continue
		}
		if r.Prob >= 1 || in.draw(p) < r.Prob {
			return r
		}
	}
	return nil
}

// Fail evaluates an error failpoint: a non-nil return means the call
// site must fail with it.
func (in *Injector) Fail(p Point, shard, replica int) error {
	r := in.match(p, shard, replica)
	if r == nil {
		return nil
	}
	in.fired[pointIdx(p)].Add(1)
	return fmt.Errorf("%w: %s at shard %d replica %d", ErrInjected, p, shard, replica)
}

// Stall evaluates a stall failpoint: if armed it sleeps for the rule's
// duration (DefaultStall when unset) or until ctx is done, returning
// ctx.Err() in the canceled case so hedge losers abandon the attempt.
// A completed stall returns nil and the call site proceeds normally —
// stalls model slowness, not failure.
func (in *Injector) Stall(ctx context.Context, p Point, shard, replica int) error {
	r := in.match(p, shard, replica)
	if r == nil {
		return nil
	}
	in.fired[pointIdx(p)].Add(1)
	d := r.Stall
	if d <= 0 {
		d = DefaultStall
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
