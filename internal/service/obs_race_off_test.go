//go:build !race

package service

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock assertions (the tracing-overhead bound) are skipped under
// the detector: its per-access instrumentation slows code paths
// non-uniformly, so measured ratios no longer reflect production.
const raceEnabled = false
