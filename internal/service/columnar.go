package service

// Columnar execution glue: the service-side bridge between the request
// pipeline and core's columnar scan engine. Both the unsharded executor
// and the per-shard scatter fragments route their non-indexed filter and
// order-by stages through these helpers, so the two paths stay
// byte-identical (the N=1 golden contract) while sharing the vectorized
// block-at-a-time kernels.

import (
	"repro/internal/core"
)

// columnSelection carries a columnar filter stage's outcome forward so
// the order-by stage can stay columnar: the store, the matching rows as
// an ascending selection list, and their materialized patches. The scan
// record (blocks visited, zone-pruned, rows actually compared) and the
// store's build/extend outcome ride along for trace annotation.
type columnSelection struct {
	cs      *core.ColumnStore
	sel     []int32
	rows    []*core.Patch
	scan    core.ScanStats
	colInfo core.ColumnsInfo
}

// columnFilterEq evaluates the non-indexed equality filter over col's
// columnar projection, clipped to the first n rows (the query's
// snapshot length — the cached store may already reflect rows appended
// after this query's snapshot was taken; snapshot prefixes are stable,
// so clipping by row index is exact). ok is false when the field has no
// column and the caller must run the row scan.
func columnFilterEq(col *core.Collection, field string, v core.Value, n int) (*columnSelection, bool) {
	cs, info, err := col.ColumnsWithInfo()
	if err != nil {
		return nil, false
	}
	sel, st, ok := cs.FilterEqStats(field, v)
	if !ok {
		return nil, false
	}
	csel := clipSelection(cs, sel, n)
	csel.scan, csel.colInfo = st, info
	return csel, true
}

// columnFilterRange is columnFilterEq for the half-open numeric range
// lo <= field < hi (core.FilterRange semantics, matching the row
// predicate core.FieldRange under numeric widening). ok is false when
// the field has no column and the caller must run the row scan.
func columnFilterRange(col *core.Collection, field string, lo, hi float64, n int) (*columnSelection, bool) {
	cs, info, err := col.ColumnsWithInfo()
	if err != nil {
		return nil, false
	}
	sel, st, ok := cs.FilterRangeStats(field, lo, hi)
	if !ok {
		return nil, false
	}
	csel := clipSelection(cs, sel, n)
	csel.scan, csel.colInfo = st, info
	return csel, true
}

// rowFilterRange is the row-scan fallback for a range filter (fields
// the store cannot columnize): core.FieldRange semantics — missing
// fields never match, non-numerics widen to NaN and fail both bounds.
// Shared by the unsharded executor and the scatter fragments so the two
// paths cannot drift (the N=1 byte-identity contract).
func rowFilterRange(snap []*core.Patch, field string, lo, hi float64) []*core.Patch {
	filtered := make([]*core.Patch, 0, len(snap)/4)
	for _, p := range snap {
		if mv, ok := p.Meta[field]; ok {
			if fv := mv.AsFloat(); fv >= lo && fv < hi {
				filtered = append(filtered, p)
			}
		}
	}
	return filtered
}

// clipSelection trims a selection list to the query's snapshot length
// and materializes it (the cached store may already reflect rows
// appended after this query's snapshot; prefixes are stable, so
// clipping by row index is exact).
func clipSelection(cs *core.ColumnStore, sel []int32, n int) *columnSelection {
	for len(sel) > 0 && int(sel[len(sel)-1]) >= n {
		sel = sel[:len(sel)-1]
	}
	if sel == nil {
		sel = []int32{}
	}
	return &columnSelection{cs: cs, sel: sel, rows: cs.Materialize(sel)}
}

// topKRows computes the ordered top-k of filtered, byte-identical to a
// stable sort + trim (sortRows semantics: ties in input order, missing
// fields order as the zero Value). It prefers the columnar heap — over
// the filter stage's selection when there was one, or over the whole
// snapshot for unfiltered queries (ocol non-nil) — and falls back to
// the bounded-heap row top-k, which still avoids sorting rows that can
// never reach the limit.
func topKRows(ocol *core.Collection, csel *columnSelection, filtered []*core.Patch, field string, desc bool, k, snapLen int) []*core.Patch {
	if csel != nil {
		if top, ok := csel.cs.TopK(csel.sel, field, desc, k); ok {
			return csel.cs.Materialize(top)
		}
	} else if ocol != nil {
		// Unfiltered: the store must cover exactly this query's snapshot
		// for nil-selection (all rows) to be correct.
		if cs, err := ocol.Columns(); err == nil && cs.Len() == snapLen {
			if top, ok := cs.TopK(nil, field, desc, k); ok {
				return cs.Materialize(top)
			}
		}
	}
	return core.TopKPatches(filtered, field, desc, k)
}
