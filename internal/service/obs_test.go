package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Observability tests: per-query trace capture on the scattered path,
// the /metrics Prometheus surface, the /stats JSON contract, the
// slow-query log, and the traced-vs-untraced overhead bound.

// obsFixture builds a service over `rows` synthetic rows — sharded when
// shards > 1 — usable from both tests and benchmarks.
func obsFixture(tb testing.TB, shards, rows int, cfg Config) *Service {
	tb.Helper()
	if shards > 1 {
		sdb, err := core.OpenSharded(filepath.Join(tb.TempDir(), "sharded"), shards, exec.New(exec.CPU))
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { sdb.Close() })
		sc, err := sdb.CreateCollection(shardTestCol, synthSchema())
		if err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if err := sc.Append(synthPatch(i)); err != nil {
				tb.Fatal(err)
			}
		}
		s, err := NewSharded(sdb, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(s.Close)
		return s
	}
	db, err := core.Open(filepath.Join(tb.TempDir(), "plain.db"), exec.New(exec.CPU))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	col, err := db.CreateCollection(shardTestCol, synthSchema())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := col.Append(synthPatch(i)); err != nil {
			tb.Fatal(err)
		}
	}
	s, err := New(db, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

func spansByName(data *obs.TraceData) map[string][]obs.Span {
	out := make(map[string][]obs.Span)
	for _, sp := range data.Spans {
		out[sp.Name] = append(out[sp.Name], sp)
	}
	return out
}

// TestTracedScatterSpans: a traced scattered top-k query must return a
// trace whose spans cover the whole request path — plan, queue wait,
// execution, one fragment per shard (carrying shard id and scan record),
// the k-way merge, and the cache store — and the named spans must cover
// nearly all of the measured wall time (best of 5 attempts, since a
// single run can be descheduled between spans).
func TestTracedScatterSpans(t *testing.T) {
	const nsh = 3
	s := obsFixture(t, nsh, 600, Config{Workers: 2})
	str := "car"

	best := 0.0
	var data *obs.TraceData
	for attempt := 0; attempt < 5; attempt++ {
		// A fresh limit each attempt keeps the fingerprint distinct, so
		// every traced run executes instead of hitting the result cache.
		resp, err := s.Query(context.Background(), Request{
			Collection: shardTestCol,
			Filter:     &FilterSpec{Field: "label", Str: &str},
			OrderBy:    "score", Limit: 5 + attempt,
			Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.TraceID == "" || resp.TraceData == nil {
			t.Fatalf("traced query returned no trace: id=%q data=%v", resp.TraceID, resp.TraceData)
		}
		d := resp.TraceData
		// plan/queue/execute/cache-store partition the request lifetime;
		// fragment and merge spans nest inside execute and must not be
		// double-counted.
		var covered float64
		for _, sp := range d.Spans {
			switch sp.Name {
			case "plan", "queue", "execute", "cache-store":
				covered += sp.DurUS
			}
		}
		if d.DurUS > 0 && covered/d.DurUS > best {
			best = covered / d.DurUS
			data = d
		}
	}
	if data == nil {
		t.Fatal("no trace captured")
	}
	byName := spansByName(data)
	for _, want := range []string{"plan", "queue", "execute", "fragment", "merge", "cache-store"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace is missing a %q span; got %v", want, data.Spans)
		}
	}
	if got := len(byName["fragment"]); got != nsh {
		t.Fatalf("fragment spans = %d, want one per shard (%d)", got, nsh)
	}
	shardsSeen := make(map[string]bool)
	for _, sp := range byName["fragment"] {
		if sp.Attrs["shard"] == "" {
			t.Fatalf("fragment span has no shard attr: %+v", sp)
		}
		shardsSeen[sp.Attrs["shard"]] = true
		if sp.Attrs["path"] == "" || sp.Attrs["rows"] == "" {
			t.Fatalf("fragment span is missing path/rows attrs: %+v", sp)
		}
	}
	if len(shardsSeen) != nsh {
		t.Fatalf("fragment spans cover shards %v, want %d distinct", shardsSeen, nsh)
	}
	if got := byName["plan"][0].Attrs["cache"]; got != "miss" {
		t.Fatalf("first execution's plan span says cache=%q, want miss", got)
	}
	if byName["execute"][0].Attrs["plan"] == "" {
		t.Fatal("execute span carries no plan label")
	}
	if best < 0.90 {
		t.Fatalf("named spans cover %.1f%% of traced wall time, want >= 90%%", 100*best)
	}
}

// TestTraceOnCachedResponse: tracing a cache hit must report the hit in
// the plan span, attach the trace to a caller-private copy, and leave
// the shared cached response untouched for untraced callers.
func TestTraceOnCachedResponse(t *testing.T) {
	s := obsFixture(t, 1, 120, Config{Workers: 1})
	str := "bus"
	req := Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: &str},
		Trace:      true,
	}
	first, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.TraceID == "" || first.CacheHit {
		t.Fatalf("first traced query: id=%q hit=%v, want traced miss", first.TraceID, first.CacheHit)
	}
	second, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.TraceData == nil {
		t.Fatalf("second traced query: hit=%v trace=%v, want traced hit", second.CacheHit, second.TraceData)
	}
	if got := spansByName(second.TraceData)["plan"][0].Attrs["cache"]; got != "hit" {
		t.Fatalf("cached query's plan span says cache=%q, want hit", got)
	}
	// The untraced caller must see the pristine shared object.
	req.Trace = false
	third, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.TraceID != "" || third.TraceData != nil {
		t.Fatalf("untraced query leaked trace state: id=%q data=%v", third.TraceID, third.TraceData)
	}
}

// TestTraceSampling: with TraceSample set and no per-request opt-in, a
// stride of queries gets span capture — visible only in the slow log
// (responses stay trace-free).
func TestTraceSampling(t *testing.T) {
	s := obsFixture(t, 1, 60, Config{
		Workers:            1,
		TraceSample:        0.5,
		SlowQueryThreshold: time.Nanosecond, // everything is "slow"
	})
	str := "car"
	for i := 0; i < 4; i++ {
		resp, err := s.Query(context.Background(), Request{
			Collection: shardTestCol,
			Filter:     &FilterSpec{Field: "label", Str: &str},
			Limit:      1 + i, // distinct fingerprints: each query executes
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.TraceID != "" || resp.TraceData != nil {
			t.Fatal("sampled trace must not attach to the response without an explicit request")
		}
	}
	traced := 0
	for _, e := range s.SlowQueries() {
		if e.Trace != nil {
			traced++
		}
	}
	if traced != 2 {
		t.Fatalf("1-in-2 sampling over 4 queries captured %d traces, want 2", traced)
	}
}

// TestSlowQueryLog: the ring keeps the newest entries, newest first,
// each carrying the request description and fingerprint.
func TestSlowQueryLog(t *testing.T) {
	s := obsFixture(t, 1, 120, Config{
		Workers:            1,
		SlowQueryThreshold: time.Nanosecond,
		SlowLogEntries:     4,
	})
	str := "pedestrian"
	for i := 0; i < 6; i++ {
		if _, err := s.Query(context.Background(), Request{
			Collection: shardTestCol,
			Filter:     &FilterSpec{Field: "label", Str: &str},
			Limit:      1 + i,
		}); err != nil {
			t.Fatal(err)
		}
	}
	entries := s.SlowQueries()
	if len(entries) != 4 {
		t.Fatalf("slow log holds %d entries, want the newest 4", len(entries))
	}
	for i, e := range entries {
		if e.Query == "" || e.Fingerprint == "" {
			t.Fatalf("entry %d is missing query/fingerprint: %+v", i, e)
		}
		if i > 0 && e.Time.After(entries[i-1].Time) {
			t.Fatalf("entries not newest-first: %v after %v", e.Time, entries[i-1].Time)
		}
	}
	// The newest entry is the limit=6 query.
	if want := "limit(6)"; !strings.Contains(entries[0].Query, want) {
		t.Fatalf("newest entry %q does not mention %s", entries[0].Query, want)
	}
}

// TestMetricsEndpoint: GET /metrics must emit well-formed Prometheus
// text (no duplicate series, complete histogram families) whose
// counters agree with the queries this test ran.
func TestMetricsEndpoint(t *testing.T) {
	s := obsFixture(t, 2, 200, Config{Workers: 2})
	str := "car"
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := s.Query(context.Background(), Request{
			Collection: shardTestCol,
			Filter:     &FilterSpec{Field: "label", Str: &str},
			NoCache:    true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	exp, err := obs.CheckExposition(rec.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	if v, ok := exp.Value("deeplens_queries_completed_total", nil); !ok || v != n {
		t.Fatalf("deeplens_queries_completed_total = %v (found=%v), want %d", v, ok, n)
	}
	if v, ok := exp.Value("deeplens_query_duration_seconds_count", nil); !ok || v != n {
		t.Fatalf("deeplens_query_duration_seconds_count = %v (found=%v), want %d", v, ok, n)
	}
	if v, ok := exp.Value("deeplens_scatter_fanout_count", nil); !ok || v != n {
		t.Fatalf("deeplens_scatter_fanout_count = %v (found=%v), want %d", v, ok, n)
	}
	if _, ok := exp.Value("deeplens_cache_hit_rate", map[string]string{"cache": "result"}); !ok {
		t.Fatal("deeplens_cache_hit_rate{cache=\"result\"} is missing")
	}
	// The server-side histogram quantile must reconstruct from the
	// scraped buckets (the loadgen's cross-check path).
	if q, ok := obs.PromHistogramQuantile(exp, "deeplens_query_duration_seconds", nil, 0.5); !ok || q < 0 {
		t.Fatalf("p50 from scraped histogram = %v (found=%v)", q, ok)
	}
}

// TestDebugSlowAndHealthz: the slow-log endpoint serves JSON and the
// liveness probe reports uptime without building a Stats snapshot.
func TestDebugSlowAndHealthz(t *testing.T) {
	s := obsFixture(t, 1, 60, Config{Workers: 1, SlowQueryThreshold: time.Nanosecond})
	str := "car"
	if _, err := s.Query(context.Background(), Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: &str},
	}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	var slow struct {
		ThresholdMS float64         `json:"threshold_ms"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("/debug/slow: %v", err)
	}
	if len(slow.Entries) == 0 {
		t.Fatal("/debug/slow has no entries after a slow query")
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		Status    string  `json:"status"`
		UptimeSec float64 `json:"uptime_sec"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if health.Status != "ok" || health.UptimeSec < 0 {
		t.Fatalf("/healthz = %+v", health)
	}
}

// statsContract mirrors every JSON field Stats currently exposes. The
// decoder below runs with DisallowUnknownFields, so renaming or adding
// a /stats field fails this test until the contract (and any dashboards
// reading it) are updated deliberately; the key check catches drops.
type statsContract struct {
	UptimeSec         float64           `json:"uptime_sec"`
	Workers           int               `json:"workers"`
	QueueCap          int               `json:"queue_cap"`
	QueueDepth        int               `json:"queue_depth"`
	QueueLen          int               `json:"queue_len"`
	Sources           int               `json:"sources"`
	Admitted          int64             `json:"admitted"`
	Rejected          int64             `json:"rejected"`
	Coalesced         int64             `json:"coalesced"`
	Completed         int64             `json:"completed"`
	Failed            int64             `json:"failed"`
	InFlight          int64             `json:"in_flight"`
	PeakInFlight      int64             `json:"peak_in_flight"`
	Appends           int64             `json:"appends"`
	AppendedRows      int64             `json:"appended_rows"`
	ColumnExtends     int64             `json:"column_extends"`
	ExtendReuseBlocks int64             `json:"extend_reuse_blocks"`
	ExtendTotalBlocks int64             `json:"extend_total_blocks"`
	SegmentSpills     int64             `json:"segment_spills"`
	SegmentLoads      int64             `json:"segment_loads"`
	SegmentLoadFaults int64             `json:"segment_load_faults"`
	SegmentEvictions  int64             `json:"segment_evictions"`
	SegmentResBytes   int64             `json:"segment_resident_bytes"`
	ColumnMemBudget   int64             `json:"column_mem_budget"`
	KNNQueries        int64             `json:"knn_queries"`
	IndexExtends      int64             `json:"index_extends"`
	IndexRebuilds     int64             `json:"index_rebuilds"`
	ResultCache       CacheStats        `json:"result_cache"`
	UDFCache          CacheStats        `json:"udf_cache"`
	ResultHitRate     float64           `json:"result_hit_rate"`
	Device            string            `json:"device"`
	Devices           int               `json:"devices"`
	DeviceKernels     int64             `json:"device_kernels"`
	DeviceLaunches    int64             `json:"device_launches"`
	DeviceFLOPs       int64             `json:"device_flops"`
	DeviceOverheadMS  float64           `json:"device_overhead_ms"`
	Batcher           exec.BatcherStats `json:"batcher"`
	FusionFactor      float64           `json:"fusion_factor"`
	Shards            int               `json:"shards"`
	Replicas          int               `json:"replicas"`
	ShardInfo         []core.ShardInfo  `json:"shard_info"`
	ScatterQueries    int64             `json:"scatter_queries"`
	ScatterTasks      int64             `json:"scatter_tasks"`
	MergeTimeMS       float64           `json:"merge_time_ms"`
	HedgedFragments   int64             `json:"hedged_fragments"`
	FragmentRetries   int64             `json:"fragment_retries"`
	DegradedQueries   int64             `json:"degraded_queries"`
	ReplicaAppendErrs int64             `json:"replica_append_errors"`
	ReplicaResyncs    int64             `json:"replica_resyncs"`
	ResyncRows        int64             `json:"resync_rows"`
	OutOfSyncReplicas int               `json:"out_of_sync_replicas"`
	AdmissionShed     int64             `json:"admission_shed"`
	QueueCostSec      float64           `json:"queue_cost_sec"`
	EffQueueDepth     int               `json:"effective_queue_depth"`
}

// TestStatsJSONContract pins the /stats response shape: every field the
// contract lists must be present (drops and renames fail), and no field
// may appear that the contract does not know (renames surface as
// unknowns).
func TestStatsJSONContract(t *testing.T) {
	s := obsFixture(t, 2, 100, Config{Workers: 1})
	str := "car"
	if _, err := s.Query(context.Background(), Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: &str},
	}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/stats returned %d", rec.Code)
	}
	raw := rec.Body.Bytes()

	strict := json.NewDecoder(bytes.NewReader(raw))
	strict.DisallowUnknownFields()
	var got statsContract
	if err := strict.Decode(&got); err != nil {
		t.Fatalf("/stats no longer matches the contract (renamed or new field?): %v", err)
	}

	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"uptime_sec", "workers", "queue_cap", "queue_depth", "queue_len", "sources",
		"admitted", "rejected", "coalesced", "completed", "failed",
		"in_flight", "peak_in_flight",
		"appends", "appended_rows", "column_extends", "extend_reuse_blocks", "extend_total_blocks",
		"segment_spills", "segment_loads", "segment_load_faults",
		"segment_evictions", "segment_resident_bytes", "column_mem_budget",
		"knn_queries", "index_extends", "index_rebuilds",
		"result_cache", "udf_cache", "result_hit_rate",
		"device", "devices", "device_kernels", "device_launches", "device_flops", "device_overhead_ms",
		"batcher", "fusion_factor",
		"shards", "replicas", "shard_info", "scatter_queries", "scatter_tasks", "merge_time_ms",
		"hedged_fragments", "fragment_retries", "degraded_queries", "replica_append_errors",
		"replica_resyncs", "resync_rows", "out_of_sync_replicas",
		"admission_shed", "queue_cost_sec", "effective_queue_depth",
	} {
		if _, ok := keys[want]; !ok {
			t.Errorf("/stats dropped field %q", want)
		}
	}
	if got.Completed < 1 || got.Admitted < 1 {
		t.Fatalf("counters did not move: %+v", got)
	}
}

// TestTracingOverheadBound: with sampling off, an untraced query pays
// only nil-trace branches; its min-wall must stay close to a build
// where the same query runs traced. The margin is deliberately loose —
// this is a regression tripwire for accidentally putting allocation or
// locking on the untraced path, not a benchmark.
func TestTracingOverheadBound(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock ratios are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	s := obsFixture(t, 1, 2000, Config{Workers: 2})
	str := "car"
	run := func(traced bool) float64 {
		var sum obs.Summary
		for i := 0; i < 40; i++ {
			req := Request{
				Collection: shardTestCol,
				Filter:     &FilterSpec{Field: "label", Str: &str},
				NoCache:    true,
				Trace:      traced,
			}
			t0 := time.Now()
			if _, err := s.Query(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			sum.ObserveDuration(time.Since(t0))
		}
		return sum.Min()
	}
	run(false) // warm both paths (snapshot + column store)
	run(true)
	untraced := run(false)
	traced := run(true)
	if untraced <= 0 {
		t.Skip("clock resolution too coarse for this machine")
	}
	// Span capture costs a handful of microseconds absolute (mutex, span
	// records, the Data() copy), which dwarfs a microsecond-scale test
	// query but vanishes on production ones — so the bound is relative
	// plus a small absolute allowance.
	if traced > untraced*1.25+100e-6 {
		t.Fatalf("traced min-wall %.0fµs vs untraced %.0fµs: tracing overhead out of bounds",
			traced*1e6, untraced*1e6)
	}
}

func BenchmarkUntracedQuery(b *testing.B) {
	benchmarkQuery(b, false)
}

func BenchmarkTracedQuery(b *testing.B) {
	benchmarkQuery(b, true)
}

func benchmarkQuery(b *testing.B, traced bool) {
	s := obsFixture(b, 1, 2000, Config{Workers: 2})
	str := "car"
	req := Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: &str},
		NoCache:    true,
		Trace:      traced,
	}
	ctx := context.Background()
	if _, err := s.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
