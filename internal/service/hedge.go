package service

import (
	"context"
	"math/rand/v2"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// Hedged, deadline-aware fragment execution. Every shard of a scatter
// runs its fragment against one in-sync replica; if that attempt is
// slower than the hedge budget (a live p99 of past fragment latencies,
// seeded by Config.HedgeAfter until enough samples exist), a second
// attempt launches on the next replica and the first response wins —
// the loser's context is canceled so it stops scanning. A fragment
// that fails outright gets one retry with jittered backoff before the
// shard is declared missing.
//
// The single-replica, no-fault-injection case takes a separate inline
// path: no goroutine, no channel, no timer — the N=1/R=1 golden tests
// see exactly the pre-hedging execution.

const (
	// hedgeHeadroom scales the observed p99 into the hedge budget: an
	// attempt twice as slow as the 99th percentile is presumed stuck.
	hedgeHeadroom = 2.0
	// hedgeMinSamples gates the p99-derived budget; below it the
	// configured HedgeAfter floor applies (cold-start histograms are
	// noise).
	hedgeMinSamples = 32
	// hedgeBudgetMin/Max clamp the derived budget: never hedge inside
	// a millisecond (fragment startup costs that much), never wait
	// more than a second to try the other replica.
	hedgeBudgetMin = time.Millisecond
	hedgeBudgetMax = time.Second
	// retryBaseDelay/retryJitter space the single error-retry so a
	// deterministic failure (full disk, poisoned block) isn't hammered
	// back-to-back, with jitter to de-correlate shards retrying at once.
	retryBaseDelay = 2 * time.Millisecond
	retryJitter    = 2 * time.Millisecond
)

// hedgeBudget returns how long a fragment attempt may run before a
// hedge launches, or 0 when hedging is disabled. Once the fragment
// latency histogram has hedgeMinSamples observations the budget tracks
// 2x its live p99 (clamped); before that it is the configured floor.
func (s *Service) hedgeBudget() time.Duration {
	if s.cfg.HedgeAfter <= 0 {
		return 0
	}
	h := s.tel.fragmentDur
	if h.Count() < hedgeMinSamples {
		return s.cfg.HedgeAfter
	}
	b := time.Duration(h.Quantile(0.99) * hedgeHeadroom * float64(time.Second))
	if b < hedgeBudgetMin {
		b = hedgeBudgetMin
	}
	if b > hedgeBudgetMax {
		b = hedgeBudgetMax
	}
	return b
}

// retryDelay returns the jittered backoff before the single fragment
// error-retry.
func retryDelay() time.Duration {
	return retryBaseDelay + time.Duration(rand.Int64N(int64(retryJitter)))
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// fragmentAttempt runs shard i's whole fragment — snapshot, filter,
// shard-local sort/trim — against replica r. It passes the fragment
// failpoints first, so injected faults behave exactly like a slow or
// failing replica would.
func (s *Service) fragmentAttempt(ctx context.Context, req *Request, fval core.Value, scol *core.ShardedCollection, i, r, limit int, wantRows bool) (*shardFragment, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if err := s.inj.Fail(fault.FragmentError, i, r); err != nil {
		return nil, 0, err
	}
	if err := s.inj.Stall(ctx, fault.FragmentStall, i, r); err != nil {
		return nil, 0, err
	}
	col := scol.Replica(i, r)
	snap, _, err := col.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	frag, err := s.filterFragment(ctx, req, fval, scol, i, r, snap)
	if err != nil {
		return nil, 0, err
	}
	if req.SimJoin == nil && wantRows {
		frag.rows = frag.filtered
		if req.OrderBy != "" {
			// Shard-local top-limit instead of a full sort: the merge
			// stage only ever consumes the first `limit` rows of each
			// fragment, and the bounded heap reproduces the stable
			// sort's order exactly.
			var ocol *core.Collection
			if req.Filter == nil {
				ocol = col
			}
			frag.rows = topKRows(ocol, frag.csel, frag.filtered, req.OrderBy, req.Desc, limit, len(snap))
		}
		if len(frag.rows) > limit {
			frag.rows = frag.rows[:limit]
		}
	}
	return frag, len(snap), nil
}

// hedgedFragment produces shard i's fragment from whichever in-sync
// replica answers first. Policy: start on one replica; hedge to the
// next after the budget elapses; on an error, retry once (jittered)
// on the next replica in line; first success wins and cancels the
// loser. Returns the parent context's error verbatim when the query
// was canceled or timed out.
func (s *Service) hedgedFragment(ctx context.Context, req *Request, fval core.Value, scol *core.ShardedCollection, i, limit int, wantRows bool) (*shardFragment, error) {
	replicas := s.shards.InSyncReplicas(i)
	sp := req.tr.Begin("fragment")

	// Inline path: a single healthy replica and no fault injection has
	// nothing to hedge against — run the attempt on the caller's
	// goroutine (the R=1 golden path), keeping the one error-retry.
	if len(replicas) == 1 && s.inj == nil {
		start := time.Now()
		frag, snapLen, err := s.fragmentAttempt(ctx, req, fval, scol, i, replicas[0], limit, wantRows)
		if err != nil && ctx.Err() == nil {
			s.tel.fragmentRetries.Inc()
			if serr := sleepCtx(ctx, retryDelay()); serr != nil {
				sp.End()
				return nil, serr
			}
			start = time.Now()
			frag, snapLen, err = s.fragmentAttempt(ctx, req, fval, scol, i, replicas[0], limit, wantRows)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		s.tel.fragmentDur.Observe(time.Since(start).Seconds())
		frag.annotate(sp, i, snapLen)
		return frag, nil
	}

	type attempt struct {
		frag    *shardFragment
		snapLen int
		replica int
		dur     time.Duration
		err     error
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	// Buffered past the maximum launch count (initial + hedge + retry)
	// so late losers never block on send after the winner returns.
	resCh := make(chan attempt, 4)
	next := 0
	launch := func() int {
		r := replicas[next%len(replicas)]
		next++
		go func() {
			start := time.Now()
			frag, snapLen, err := s.fragmentAttempt(actx, req, fval, scol, i, r, limit, wantRows)
			resCh <- attempt{frag: frag, snapLen: snapLen, replica: r, dur: time.Since(start), err: err}
		}()
		return r
	}
	outstanding := 1
	launch()

	budget := s.hedgeBudget()
	var hedgeC <-chan time.Time
	if budget > 0 && len(replicas) > 1 {
		ht := time.NewTimer(budget)
		defer ht.Stop()
		hedgeC = ht.C
	}
	var (
		retried      bool
		retryC       <-chan time.Time
		hedged       bool
		hedgeStart   time.Time
		hedgeReplica int
		lastErr      error
	)
	for {
		select {
		case res := <-resCh:
			outstanding--
			if res.err == nil {
				acancel() // stop the losing attempt, if one is running
				s.tel.fragmentDur.Observe(res.dur.Seconds())
				sp.End()
				res.frag.annotate(sp, i, res.snapLen)
				sp.AttrInt("replica", int64(res.replica))
				if hedged {
					winner := "original"
					if res.replica == hedgeReplica {
						winner = "hedge"
					}
					req.tr.AddSpan("hedge", hedgeStart, time.Since(hedgeStart), map[string]string{
						"shard":   strconv.Itoa(i),
						"replica": strconv.Itoa(hedgeReplica),
						"budget":  budget.String(),
						"winner":  winner,
					})
				}
				return res.frag, nil
			}
			if err := ctx.Err(); err != nil {
				if outstanding == 0 {
					sp.End()
					return nil, err
				}
				continue // drain the remaining attempt
			}
			lastErr = res.err
			if !retried {
				// One retry, on the next replica in line, after a
				// jittered backoff.
				retried = true
				s.tel.fragmentRetries.Inc()
				rt := time.NewTimer(retryDelay())
				defer rt.Stop()
				retryC = rt.C
				continue
			}
			if outstanding == 0 && retryC == nil {
				sp.End()
				return nil, lastErr
			}
		case <-retryC:
			retryC = nil
			outstanding++
			launch()
		case <-hedgeC:
			hedgeC = nil
			if outstanding == 0 {
				continue // an error beat the budget; the retry path owns recovery
			}
			hedged = true
			hedgeStart = time.Now()
			s.tel.hedgedFragments.Inc()
			outstanding++
			hedgeReplica = launch()
		case <-ctx.Done():
			sp.End()
			return nil, ctx.Err()
		}
	}
}
