package service

// Live ingest: the streaming append path. ETL materializes collections
// in batch; this file lets clients keep appending — one patch or a
// frame's worth at a time — while the same collections serve queries.
// Appends route through the storage layer's placement (unsharded
// Collection.Append, or core.Sharded's deterministic PatchID-hash
// routing), bump the collection version so version-keyed fingerprints
// can never serve stale results, and eagerly reclaim the collection's
// result-cache entries by prefix. The columnar read side absorbs the
// stream incrementally: the next query's Collection.Columns() call
// extends the cached ColumnStore in place (sealed blocks reused, only
// the tail re-projected) instead of rebuilding from scratch — the
// counters in /stats (appends, column_extends, extend_reuse_blocks)
// make that visible.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// ErrAppendStorage reports a storage-layer failure while committing an
// already-validated append batch. Patches before the failing one are
// committed (the error text says how many); the HTTP layer maps it to a
// 500 so clients and load balancers treat it as a retryable server
// fault rather than a malformed request.
var ErrAppendStorage = errors.New("service: append storage failure")

// AppendRequest appends patches to a materialized collection: a single
// Patch, a batched Patches list (frame-at-a-time ingest), or both
// (Patch is appended first).
type AppendRequest struct {
	Collection string      `json:"collection"`
	Patch      *PatchSpec  `json:"patch,omitempty"`
	Patches    []PatchSpec `json:"patches,omitempty"`
}

// PatchSpec is the JSON shape of one ingested patch: lineage reference
// plus scalar/vector metadata. Pixel payloads are not carried over the
// ingest API — upstream UDFs run before ingest, so what streams in is
// their structured output (the paper's ETL split, applied live).
//
// Meta values map to core kinds by the collection schema: numbers
// coerce to the declared int/float kind (int fields reject fractional
// values), strings to str, arrays of numbers to vec/rect. Values for
// undeclared fields infer their kind from JSON (integral numbers
// become ints, others floats).
type PatchSpec struct {
	Source string         `json:"source,omitempty"`
	Frame  uint64         `json:"frame,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Meta   map[string]any `json:"meta"`
}

// AppendResponse reports one append request's outcome.
type AppendResponse struct {
	Collection string `json:"collection"`
	// Appended is the number of patches committed (on error, patches
	// before the failing one may have committed; the error names it).
	Appended int `json:"appended"`
	// IDs are the allocated patch ids, in append order.
	IDs []uint64 `json:"ids"`
	// Version is the collection version after the batch (the composite
	// version when sharded) — the dataset identity subsequent query
	// fingerprints will carry.
	Version    uint64  `json:"version"`
	DurationMS float64 `json:"duration_ms"`
}

// specs flattens the single-patch and batched forms.
func (r *AppendRequest) specs() []PatchSpec {
	if r.Patch == nil {
		return r.Patches
	}
	return append([]PatchSpec{*r.Patch}, r.Patches...)
}

// Append validates, converts and commits the request's patches. The
// whole batch is schema-checked before the first write, so a malformed
// spec rejects the batch without partial commit; only a storage failure
// can leave a prefix committed (reported in the error). Sharded
// backends route every patch to its hash-designated home shard via
// core.Sharded placement — with one shard the sequence of ids and
// versions is exactly the unsharded one.
func (s *Service) Append(ctx context.Context, req AppendRequest) (*AppendResponse, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if req.Collection == "" {
		return nil, errors.New("service: append needs a collection")
	}
	specs := req.specs()
	if len(specs) == 0 {
		return nil, errors.New("service: append needs a patch or a patches batch")
	}
	// Appends commit inline on the caller's goroutine — they never enter
	// the worker queue, so a write burst can't deadlock behind queued
	// reads — but they pass the same admission gate via a concurrency
	// cap: past it, reject immediately with a cost-aware Retry-After
	// (HTTP 429) instead of letting unbounded writers pile in.
	release, err := s.adm.admitAppend()
	if err != nil {
		s.tel.rejected.Inc()
		s.tel.admissionShed.Inc()
		return nil, err
	}
	defer release()

	var (
		schema   core.Schema
		appendFn func(*core.Patch) error
		version  func() uint64
	)
	if s.shards != nil {
		sc, err := s.shards.Collection(req.Collection)
		if err != nil {
			return nil, err
		}
		schema, appendFn, version = sc.Schema(), sc.Append, sc.Version
	} else {
		col, err := s.db.Collection(req.Collection)
		if err != nil {
			return nil, err
		}
		schema, appendFn, version = col.Schema(), col.Append, col.Version
	}

	start := time.Now()
	patches := make([]*core.Patch, len(specs))
	for i, sp := range specs {
		p, err := sp.patch(schema)
		if err != nil {
			return nil, fmt.Errorf("service: append patch %d: %w", i, err)
		}
		patches[i] = p
	}
	ids := make([]uint64, 0, len(patches))
	for i, p := range patches {
		if err := appendFn(p); err != nil {
			// The batch pre-validated, so this is a storage-layer fault,
			// not a bad request: wrap the sentinel so the HTTP layer can
			// answer 500 (retryable server fault with a committed prefix)
			// instead of 400.
			s.noteAppended(req.Collection, len(ids))
			return nil, fmt.Errorf("%w: patch %d (after %d committed): %v", ErrAppendStorage, i, len(ids), err)
		}
		ids = append(ids, uint64(p.ID))
	}
	s.noteAppended(req.Collection, len(ids))
	dur := time.Since(start)
	s.tel.appendDur.Observe(dur.Seconds())
	s.adm.observe(classAppend, dur)
	return &AppendResponse{
		Collection: req.Collection,
		Appended:   len(ids),
		IDs:        ids,
		Version:    version(),
		DurationMS: float64(dur.Microseconds()) / 1000,
	}, nil
}

// noteAppended records ingest counters and performs the precise
// result-cache invalidation: version-keyed fingerprints already make
// stale hits impossible, so only this collection's entries — identified
// by their key prefix — are dropped to reclaim their bytes; every other
// collection's hot results stay cached.
func (s *Service) noteAppended(collection string, n int) {
	if n == 0 {
		return
	}
	s.tel.appends.Inc()
	s.tel.appendedRows.Add(int64(n))
	s.results.InvalidatePrefix("q:" + collection + ":")
}

// patch converts a spec against the collection schema. Lineage fields
// _source/_frame are stamped here (Collection.Append re-stamps them
// identically) so the pre-commit schema validation sees the same patch
// the storage layer will.
func (sp PatchSpec) patch(schema core.Schema) (*core.Patch, error) {
	p := &core.Patch{
		Ref:  core.Ref{Source: sp.Source, Frame: sp.Frame, Parent: core.PatchID(sp.Parent)},
		Meta: make(core.Metadata, len(sp.Meta)+2),
	}
	for k, v := range sp.Meta {
		val, err := metaValue(schema, k, v)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", k, err)
		}
		p.Meta[k] = val
	}
	p.Meta["_source"] = core.StrV(p.Ref.Source)
	p.Meta["_frame"] = core.IntV(int64(p.Ref.Frame))
	if err := schema.ValidatePatch(p); err != nil {
		return nil, err
	}
	return p, nil
}

// metaValue coerces one JSON metadata value to its core.Value, schema
// kind first, JSON shape second.
func metaValue(schema core.Schema, field string, v any) (core.Value, error) {
	fd := schema.FieldNamed(field)
	switch x := v.(type) {
	case string:
		return core.StrV(x), nil
	case float64:
		if fd != nil && fd.Kind == core.KindInt {
			if x != math.Trunc(x) {
				return core.Value{}, fmt.Errorf("declared int, got fractional %g", x)
			}
			// Past 2^53 a float64 no longer represents every integer, and
			// past MaxInt64 the conversion itself is implementation-defined
			// — reject rather than commit a garbage value.
			if math.Abs(x) >= 1<<53 {
				return core.Value{}, fmt.Errorf("declared int, got %g (outside the exactly-representable range)", x)
			}
			return core.IntV(int64(x)), nil
		}
		if fd != nil && fd.Kind == core.KindFloat {
			return core.FloatV(x), nil
		}
		// Undeclared: integral JSON numbers ingest as ints, like the ETL
		// generators write counters, others as floats.
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return core.IntV(int64(x)), nil
		}
		return core.FloatV(x), nil
	case []any:
		vec := make([]float32, len(x))
		for i, e := range x {
			f, ok := e.(float64)
			if !ok {
				return core.Value{}, fmt.Errorf("vector element %d is %T, want number", i, e)
			}
			vec[i] = float32(f)
		}
		if fd != nil && fd.Kind == core.KindRect {
			if len(vec) != 4 {
				return core.Value{}, fmt.Errorf("declared rect, got %d elements", len(vec))
			}
			return core.Value{Kind: core.KindRect, V: vec}, nil
		}
		return core.VecV(vec), nil
	default:
		return core.Value{}, fmt.Errorf("unsupported JSON value %T", v)
	}
}
