package service

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
)

// Scatter-gather tests: the sharded execution path against synthetic
// collections built directly through the storage layer (no ETL), so the
// matrix runs in milliseconds and the N=1 golden comparison can pin
// byte-identical behavior against the unsharded path.

const shardTestCol = "synth.dets"

func synthSchema() core.Schema {
	return core.Schema{
		Data: core.Pixels(0, 0),
		Fields: []core.Field{
			{Name: "label", Kind: core.KindStr},
			{Name: "score", Kind: core.KindFloat},
			{Name: "rank", Kind: core.KindInt},
			{Name: "emb", Kind: core.KindVec, VecDim: 8},
		},
	}
}

// synthPatch generates row i deterministically: clustered embeddings
// (i%7 picks the cluster center; members sit within 0.1 of it) so
// similarity joins produce pairs, and low-cardinality score/rank fields
// so order-by queries tie heavily across shards.
func synthPatch(i int) *core.Patch {
	emb := make([]float32, 8)
	cluster := i % 7
	for d := range emb {
		emb[d] = float32(cluster*10) + float32((i/7)%3)*0.03
	}
	return &core.Patch{
		Ref: core.Ref{Source: "synth", Frame: uint64(i)},
		Meta: core.Metadata{
			"label": core.StrV([]string{"car", "pedestrian", "bus"}[i%3]),
			"score": core.FloatV(float64(i % 4)),
			"rank":  core.IntV(int64(i % 6)),
			"emb":   core.VecV(emb),
		},
	}
}

func fillSynth(t *testing.T, appendFn func(*core.Patch) error, rows int) {
	t.Helper()
	for i := 0; i < rows; i++ {
		if err := appendFn(synthPatch(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// synthUnsharded builds a plain DB + service over `rows` synthetic rows.
func synthUnsharded(t *testing.T, rows int, cfg Config) (*core.DB, *Service) {
	t.Helper()
	db, err := core.Open(filepath.Join(t.TempDir(), "plain.db"), exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	col, err := db.CreateCollection(shardTestCol, synthSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillSynth(t, col.Append, rows)
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return db, s
}

// synthSharded builds an n-shard Sharded + service over the same rows.
func synthSharded(t *testing.T, n, rows int, cfg Config) (*core.Sharded, *Service) {
	t.Helper()
	sdb, err := core.OpenSharded(filepath.Join(t.TempDir(), "sharded"), n, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	sc, err := sdb.CreateCollection(shardTestCol, synthSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillSynth(t, sc.Append, rows)
	s, err := NewSharded(sdb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return sdb, s
}

// queryMatrix is the full shape matrix the golden comparison runs:
// counts, indexed and scan filters, ordered and unordered projections
// with ties, empty results, similarity joins (scan, indexed, filtered)
// and distinct clustering.
func queryMatrix() []Request {
	str := func(s string) *string { return &s }
	return []Request{
		{Collection: shardTestCol},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("car")}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("pedestrian"), UseIndex: true}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("tricycle")}}, // empty result
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "score", Float: fp(2)}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "score", Min: fp(1), Max: fp(3)}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Min: fp(2)}, OrderBy: "score", Limit: 6},
		{Collection: shardTestCol, Limit: 7},
		{Collection: shardTestCol, OrderBy: "score", Limit: 5},
		{Collection: shardTestCol, OrderBy: "rank", Desc: true, Limit: 9},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("bus")}, OrderBy: "rank", Limit: 4},
		{Collection: shardTestCol, OrderBy: "score"}, // order without explicit limit (maxRows cap)
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}},
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2, UseIndex: true}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("car")},
			SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}},
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2, MinCluster: 2}, Distinct: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("pedestrian"), UseIndex: true},
			SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.25, MinCluster: 1}, Distinct: true},
		// B-tree range probes (float, int, fractional bounds over ints).
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "score", Min: fp(1), Max: fp(3), UseIndex: true}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Min: fp(1.5), Max: fp(4.5), UseIndex: true}},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Min: fp(2), UseIndex: true}},
		// kNN: planned, pinned-exact, and forced-index forms.
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 5, Query: knnQ(3)}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 8, Query: knnQ(1), Exact: true}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 4, Query: knnQ(5), UseIndex: true}},
	}
}

func fp(f float64) *float64 { return &f }

// goldenKey reduces a response to the bytes that must match between the
// unsharded path and sharded N=1: answer, rows, plan, fingerprint and
// cost estimate (serving metadata like durations naturally differs).
func goldenKey(t *testing.T, r *Response) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"value": r.Value,
		"rows":  r.Rows,
		"plan":  r.Plan,
		"fp":    r.Fingerprint,
		"cost":  r.EstCostSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedN1GoldenEquivalence: a one-shard sharded service must be
// byte-identical to the unsharded path on the full query matrix —
// values, rows, plan strings, fingerprints and cost estimates.
func TestShardedN1GoldenEquivalence(t *testing.T) {
	const rows = 240
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, rows, cfg)
	_, sharded := synthSharded(t, 1, rows, cfg)
	ctx := context.Background()
	for qi, req := range queryMatrix() {
		pr, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d unsharded: %v", qi, err)
		}
		sr, err := sharded.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d sharded N=1: %v", qi, err)
		}
		if pg, sg := goldenKey(t, pr), goldenKey(t, sr); pg != sg {
			t.Errorf("query %d diverges:\n  unsharded: %s\n  sharded-1: %s", qi, pg, sg)
		}
	}
}

// TestScatterGatherValueEquivalence: counts, pair counts and cluster
// counts are shard-count invariant (row order may differ, answers may
// not) — checked at N=2..5 against the unsharded reference.
func TestScatterGatherValueEquivalence(t *testing.T) {
	const rows = 240
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, rows, cfg)
	ctx := context.Background()
	want := make([]int, 0, len(queryMatrix()))
	for qi, req := range queryMatrix() {
		r, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d unsharded: %v", qi, err)
		}
		want = append(want, r.Value)
	}
	for _, n := range []int{2, 3, 5} {
		_, sharded := synthSharded(t, n, rows, cfg)
		for qi, req := range queryMatrix() {
			r, err := sharded.Query(ctx, req)
			if err != nil {
				t.Fatalf("query %d sharded N=%d: %v", qi, n, err)
			}
			if r.Value != want[qi] {
				t.Errorf("query %d: sharded N=%d value %d, unsharded %d (plan %s)",
					qi, n, r.Value, want[qi], r.Plan)
			}
		}
	}
}

// TestScatterTopKTiesAcrossShards: the k-way heap merge must produce
// globally sorted rows under heavy cross-shard ties, deterministically.
func TestScatterTopKTiesAcrossShards(t *testing.T) {
	const rows = 200
	_, svc := synthSharded(t, 4, rows, Config{Workers: 2})
	ctx := context.Background()
	req := Request{Collection: shardTestCol, OrderBy: "score", Limit: 20, NoCache: true}
	first, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 20 {
		t.Fatalf("top-k returned %d rows, want 20", len(first.Rows))
	}
	// Globally sorted: the merged scores are the 20 smallest, ascending.
	var all []float64
	for i := 0; i < rows; i++ {
		all = append(all, float64(i%4))
	}
	sort.Float64s(all)
	for i, row := range first.Rows {
		got := row["score"].(float64)
		if got != all[i] {
			t.Fatalf("row %d score %g, want %g (merge not globally sorted)", i, got, all[i])
		}
	}
	// Deterministic under ties: reruns yield the identical row sequence.
	for run := 0; run < 3; run++ {
		again, err := svc.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Fatalf("tie-broken merge order not deterministic (run %d)", run)
		}
	}
}

// TestScatterEmptyShard: shard counts far above the row count leave
// shards empty; every merge (count, rows, pairs, clusters) must cope.
func TestScatterEmptyShard(t *testing.T) {
	_, svc := synthSharded(t, 6, 5, Config{Workers: 2})
	ctx := context.Background()
	str := func(s string) *string { return &s }
	for qi, req := range []Request{
		{Collection: shardTestCol},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("car")}},
		{Collection: shardTestCol, OrderBy: "score", Limit: 10},
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}},
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2, MinCluster: 1}, Distinct: true},
	} {
		if _, err := svc.Query(ctx, req); err != nil {
			t.Fatalf("query %d over sparse shards: %v", qi, err)
		}
	}
	// Fully empty collection: zero rows everywhere.
	sdb2, svc2 := synthSharded(t, 4, 0, Config{Workers: 1})
	if got := mustQuery(t, svc2, Request{Collection: shardTestCol}).Value; got != 0 {
		t.Fatalf("empty sharded collection count = %d", got)
	}
	if got := mustQuery(t, svc2, Request{Collection: shardTestCol,
		SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.5}}).Value; got != 0 {
		t.Fatalf("empty sharded simjoin pairs = %d", got)
	}
	_ = sdb2
}

func mustQuery(t *testing.T, s *Service, req Request) *Response {
	t.Helper()
	r, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestScatterPlanDecoration: multi-shard plans surface the fan-out and
// gather stages; single-shard plans stay bare (the N=1 contract).
func TestScatterPlanDecoration(t *testing.T) {
	_, svc := synthSharded(t, 4, 120, Config{Workers: 2})
	r := mustQuery(t, svc, Request{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}})
	if want := "scatter[4+"; len(r.Plan) < len(want) || r.Plan[:len(want)] != want {
		t.Fatalf("sharded simjoin plan %q does not surface cross-shard fan-out", r.Plan)
	}
	st := svc.Stats()
	if st.Shards != 4 || len(st.ShardInfo) != 4 {
		t.Fatalf("stats shards = %d / %d infos", st.Shards, len(st.ShardInfo))
	}
	rowsTotal := 0
	for _, si := range st.ShardInfo {
		rowsTotal += si.Rows
	}
	if rowsTotal != 120 {
		t.Fatalf("per-shard row counts sum to %d, want 120", rowsTotal)
	}
	if st.ScatterQueries < 1 || st.ScatterTasks < 4 {
		t.Fatalf("scatter counters not recorded: %+v", st)
	}
}

// TestScatterAppendInvalidatesComposite: an append that lands on a
// single shard must invalidate version-keyed cached results exactly
// like an unsharded append.
func TestScatterAppendInvalidatesComposite(t *testing.T) {
	sdb, svc := synthSharded(t, 3, 90, Config{Workers: 1})
	ctx := context.Background()
	req := Request{Collection: shardTestCol}
	r1, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || r2.Value != 90 {
		t.Fatalf("second query not served from cache: hit=%v value=%d", r2.CacheHit, r2.Value)
	}
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Append(synthPatch(90)); err != nil {
		t.Fatal(err)
	}
	r3, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("stale cache hit after single-shard append (composite version did not move)")
	}
	if r3.Value != 91 {
		t.Fatalf("post-append count = %d, want 91", r3.Value)
	}
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("fingerprint unchanged after append")
	}
}

// TestScatterConcurrentAppendsHammer: scattered queries race appends
// across every shard; run under -race this doubles as the memory-model
// check for per-shard snapshots feeding parallel fragments.
func TestScatterConcurrentAppendsHammer(t *testing.T) {
	sdb, svc := synthSharded(t, 3, 60, Config{Workers: 4})
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const appends = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := sc.Append(synthPatch(60 + i)); err != nil {
				panic(fmt.Sprintf("append during scatter: %v", err))
			}
		}
	}()
	str := func(s string) *string { return &s }
	reqs := []Request{
		{Collection: shardTestCol, NoCache: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("car")}, NoCache: true},
		{Collection: shardTestCol, OrderBy: "score", Limit: 8, NoCache: true},
		{Collection: shardTestCol, SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}, NoCache: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Int: ip(2)}, OrderBy: "rank", Limit: 3, NoCache: true},
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := reqs[(c+i)%len(reqs)]
				if _, err := svc.Query(ctx, req); err != nil {
					panic(fmt.Sprintf("scattered query during appends: %v", err))
				}
			}
		}(c)
	}
	wg.Wait()
	// Quiesced: the final count reflects every append.
	r := mustQuery(t, svc, Request{Collection: shardTestCol, NoCache: true})
	if r.Value != 60+appends {
		t.Fatalf("post-hammer count = %d, want %d", r.Value, 60+appends)
	}
}

func ip(i int64) *int64 { return &i }

// TestShardedServiceRejectsNil guards the constructor contract.
func TestShardedServiceRejectsNil(t *testing.T) {
	if _, err := NewSharded(nil, Config{}); err == nil {
		t.Fatal("NewSharded(nil) succeeded")
	}
}
