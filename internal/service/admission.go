package service

// Adaptive shard-aware admission: the cost-classed gate that replaced
// the fixed-depth FIFO. Every request is classified (filter / join /
// knn / infer / append) and priced in estimated seconds before it may
// enter the worker queue:
//
//   - The per-class estimate is an EWMA of observed service times,
//     seeded with plan-model priors so a cold service still
//     discriminates a 50ms similarity join from a 2ms point filter.
//   - Scattered queries are floored at the live widest-fragment p99
//     (the same histogram the hedger derives its budget from): a
//     scatter's wall time is its slowest fragment.
//   - Cacheable requests are discounted by their collection's observed
//     cache hit rate via core.CostModel.CacheAwareCost — a family that
//     hits 90% of the time amortizes this one execution across the
//     hits it will serve, so it sheds last.
//
// The queue's effective depth adapts to the observed drain rate:
// holding more work than the pool can drain within targetQueueDelay
// only manufactures queue-wait, so beyond that point expensive
// requests (priced at or above expensiveCostFloorSec) are shed with a
// cost-aware Retry-After while cheap ones still admit. A physically
// full channel rejects everything — the hard limit the soft watermark
// approaches under slowdown. Appends never enter the worker queue
// (they commit inline on the caller's goroutine) but pass the same
// gate via a concurrency cap, so a write burst backpressures at the
// door instead of starving reads — and can never deadlock behind them.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Admission classes: every request maps to exactly one.
const (
	classFilter = "filter"
	classJoin   = "join"
	classKNN    = "knn"
	classInfer  = "infer"
	classAppend = "append"
)

// classSeeds are the cold-start per-class service-time priors, in
// seconds (plan-model orders of magnitude; replaced by observation).
var classSeeds = map[string]float64{
	classFilter: 2e-3,
	classJoin:   50e-3,
	classKNN:    5e-3,
	classInfer:  200e-3,
	classAppend: 2e-3,
}

const (
	// ewmaAlpha weights new service-time observations.
	ewmaAlpha = 0.2
	// targetQueueDelay caps how much queue-wait the adaptive depth is
	// willing to manufacture: effective depth = drain rate x this.
	targetQueueDelay = 250 * time.Millisecond
	// expensiveCostFloorSec is the priced cost at or above which a
	// request is sheddable once the queue crosses its effective depth.
	expensiveCostFloorSec = 25e-3
	// retryAfterMin/Max clamp the cost-aware Retry-After hint.
	retryAfterMin = 1 * time.Second
	retryAfterMax = 60 * time.Second
)

// OverloadError is the typed admission rejection: it unwraps to
// ErrOverloaded (so errors.Is keeps working) and carries the class and
// cost-aware Retry-After the HTTP layer surfaces.
type OverloadError struct {
	// RetryAfter estimates when the backlog will have drained enough to
	// admit this class of request.
	RetryAfter time.Duration
	// Class is the admission class of the rejected request.
	Class string
	// Shed distinguishes a cost-based shed at the adaptive watermark
	// (expensive request, queue still physically has room) from a hard
	// queue-full rejection.
	Shed bool
}

func (e *OverloadError) Error() string {
	kind := "queue full"
	if e.Shed {
		kind = "expensive request shed"
	}
	return fmt.Sprintf("service: admission rejected %s request (%s), retry after %s",
		e.Class, kind, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// admission holds the adaptive gate's learned state. One per Service.
type admission struct {
	workers   int
	hardDepth int // cap(queue): the physical bound

	mu       sync.Mutex
	classEst map[string]float64 // class -> EWMA service seconds
	svcEWMA  float64            // all-class EWMA task service seconds
	svcSeen  bool               // any observation yet (else seeds only)

	queuedCost float64 // summed priced cost of tasks now queued
	appending  int     // appends currently committing inline
}

func newAdmission(workers, depth int) *admission {
	est := make(map[string]float64, len(classSeeds))
	for c, s := range classSeeds {
		est[c] = s
	}
	return &admission{workers: workers, hardDepth: depth, classEst: est}
}

// classOf maps a query request to its admission class.
func classOf(req *Request) string {
	switch {
	case req.Infer != nil:
		return classInfer
	case req.KNN != nil:
		return classKNN
	case req.SimJoin != nil:
		return classJoin
	default:
		return classFilter
	}
}

// observe folds one completed request's service time into its class
// estimator.
func (a *admission) observe(class string, d time.Duration) {
	sec := d.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	if est, ok := a.classEst[class]; ok {
		a.classEst[class] = est + ewmaAlpha*(sec-est)
	} else {
		a.classEst[class] = sec
	}
}

// observeDrain folds one worker-queue task's service time into the
// drain estimator (inline appends are excluded: they never occupy the
// queue, so they must not inflate its apparent drain rate).
func (a *admission) observeDrain(d time.Duration) {
	sec := d.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.svcSeen {
		a.svcEWMA, a.svcSeen = sec, true
	} else {
		a.svcEWMA += ewmaAlpha * (sec - a.svcEWMA)
	}
}

// estimate returns the current expected service seconds for a class.
func (a *admission) estimate(class string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.classEst[class]
}

// effectiveDepth is the adaptive queue bound: the deepest backlog the
// pool can drain within targetQueueDelay at the observed service rate,
// clamped to [workers, hardDepth]. Before any observation it is the
// hard depth (no evidence to shrink on).
func (a *admission) effectiveDepth() int {
	a.mu.Lock()
	svc, seen := a.svcEWMA, a.svcSeen
	a.mu.Unlock()
	if !seen || svc <= 0 {
		return a.hardDepth
	}
	depth := int(targetQueueDelay.Seconds() / svc * float64(a.workers))
	if depth < a.workers {
		depth = a.workers
	}
	if depth > a.hardDepth {
		depth = a.hardDepth
	}
	return depth
}

// retryAfter estimates the backlog drain time for a rejection: how long
// until `queued` tasks of the observed mean cost clear the pool,
// clamped to [retryAfterMin, retryAfterMax] whole seconds.
func (a *admission) retryAfter(queued int) time.Duration {
	a.mu.Lock()
	svc := a.svcEWMA
	a.mu.Unlock()
	if svc <= 0 {
		svc = classSeeds[classFilter]
	}
	d := time.Duration(float64(queued+1) * svc / float64(a.workers) * float64(time.Second))
	d = d.Round(time.Second)
	if d < retryAfterMin {
		d = retryAfterMin
	}
	if d > retryAfterMax {
		d = retryAfterMax
	}
	return d
}

// noteQueued/noteDequeued maintain the queued-cost gauge.
func (a *admission) noteQueued(cost float64) {
	a.mu.Lock()
	a.queuedCost += cost
	a.mu.Unlock()
}

func (a *admission) noteDequeued(cost float64) {
	a.mu.Lock()
	a.queuedCost -= cost
	if a.queuedCost < 0 {
		a.queuedCost = 0 // float drift guard
	}
	a.mu.Unlock()
}

// QueuedCostSec is the summed priced cost (estimated seconds of work)
// of everything currently in the admission queue — the gauge /metrics
// exports.
func (a *admission) QueuedCostSec() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queuedCost
}

// appendLimit bounds concurrent inline append commits: enough to keep
// the storage layer busy, few enough that a write flood queues at the
// client instead of monopolizing the process.
func (a *admission) appendLimit() int {
	n := a.workers
	if n < 2 {
		n = 2
	}
	return n
}

// admitAppend claims an inline-append slot, or rejects with a
// cost-aware OverloadError when the write gate is saturated. The
// returned release must be called when the commit finishes. Appends
// never block: a full gate rejects immediately, so a write burst can
// never deadlock behind queued reads.
func (a *admission) admitAppend() (release func(), err error) {
	a.mu.Lock()
	limit := a.appendLimit()
	if a.appending >= limit {
		waiting := a.appending
		est := a.classEst[classAppend]
		a.mu.Unlock()
		if est <= 0 {
			est = classSeeds[classAppend]
		}
		d := time.Duration(float64(waiting) * est * float64(time.Second)).Round(time.Second)
		if d < retryAfterMin {
			d = retryAfterMin
		}
		if d > retryAfterMax {
			d = retryAfterMax
		}
		return nil, &OverloadError{RetryAfter: d, Class: classAppend, Shed: true}
	}
	a.appending++
	a.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.appending--
			a.mu.Unlock()
		})
	}, nil
}

// priceQuery estimates a query's cost in seconds at admission time.
// The class EWMA is the base; scattered collection queries are floored
// at the live widest-fragment p99 (a scatter waits for its slowest
// fragment); cacheable requests are discounted by their family's
// observed hit rate (the execution is amortized over the hits the
// cached result will serve).
func (s *Service) priceQuery(req *Request, key string) (class string, cost float64) {
	class = classOf(req)
	est := s.adm.estimate(class)
	if s.shards != nil && req.Infer == nil {
		if p99, ok := s.fragmentP99(); ok && p99 > est {
			est = p99
		}
	}
	cost = est
	if key != "" {
		hitRate := s.results.FamilyHitRate("q:" + req.Collection + ":")
		cost = s.cost.CacheAwareCost(est, hitRate, cacheLookupCostSec)
	}
	return class, cost
}

// fragmentP99 returns the live widest-fragment latency once enough
// fragments have been observed to trust it (the hedger's threshold).
func (s *Service) fragmentP99() (float64, bool) {
	if s.tel.fragmentDur.Count() < hedgeMinSamples {
		return 0, false
	}
	p99 := s.tel.fragmentDur.Quantile(0.99)
	if math.IsNaN(p99) || p99 <= 0 {
		return 0, false
	}
	return p99, true
}
