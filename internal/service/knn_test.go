package service

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// kNN serving tests: request validation and fingerprint semantics, the
// N=1 golden contract against the unsharded path, exact-mode shard
// invariance, the approximate scatter path's plan decoration and
// recall, and the append-vs-knn race hammer.

// knnQ returns a query vector sitting at synthPatch cluster c's center,
// nudged off-grid so the query is near, not on, a stored point.
func knnQ(c int) []float32 {
	q := make([]float32, 8)
	for d := range q {
		q[d] = float32(c*10) + 0.01
	}
	return q
}

func TestKNNValidation(t *testing.T) {
	_, svc := synthUnsharded(t, 50, Config{Workers: 1})
	ctx := context.Background()
	str := func(s string) *string { return &s }
	for name, req := range map[string]Request{
		"no field":        {Collection: shardTestCol, KNN: &KNNSpec{K: 3, Query: knnQ(1)}},
		"k zero":          {Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 0, Query: knnQ(1)}},
		"k over cap":      {Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 101, Query: knnQ(1)}},
		"no query source": {Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 3}},
		"both query and source": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1), SourceID: 1}},
		"bad metric": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1), Metric: "cosine"}},
		"recall floor over one": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1), RecallFloor: 1.5}},
		"nan component": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: []float32{1, float32(math.NaN()), 0, 0, 0, 0, 0, 0}}},
		"inf component": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: []float32{float32(math.Inf(1)), 0, 0, 0, 0, 0, 0, 0}}},
		"composed with filter": {Collection: shardTestCol,
			KNN:    &KNNSpec{Field: "emb", K: 3, Query: knnQ(1)},
			Filter: &FilterSpec{Field: "label", Str: str("car")}},
		"composed with simjoin": {Collection: shardTestCol,
			KNN:     &KNNSpec{Field: "emb", K: 3, Query: knnQ(1)},
			SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}},
		"composed with order": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1)}, OrderBy: "score"},
		"composed with limit": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1)}, Limit: 5},
		"composed with distinct": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1)}, Distinct: true},
		"dim mismatch": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "emb", K: 3, Query: []float32{1, 2, 3}}},
		"non-vector field": {Collection: shardTestCol,
			KNN: &KNNSpec{Field: "score", K: 3, Query: knnQ(1)}},
	} {
		if _, err := svc.Query(ctx, req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The explicit metric name is the default spelled out, not an error.
	r, err := svc.Query(ctx, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: 3, Query: knnQ(1), Metric: "l2"}})
	if err != nil {
		t.Fatalf("explicit l2 metric rejected: %v", err)
	}
	if r.Value != 3 {
		t.Fatalf("knn value %d, want 3", r.Value)
	}
}

func TestKNNFingerprintSemantics(t *testing.T) {
	mk := func(mut func(*KNNSpec)) Request {
		spec := &KNNSpec{Field: "emb", K: 5, Query: knnQ(2)}
		mut(spec)
		return Request{Collection: "c", KNN: spec}
	}
	base := mk(func(*KNNSpec) {})
	distinct := map[string]Request{
		"k":      mk(func(s *KNNSpec) { s.K = 6 }),
		"query":  mk(func(s *KNNSpec) { s.Query = knnQ(3) }),
		"field":  mk(func(s *KNNSpec) { s.Field = "emb2" }),
		"exact":  mk(func(s *KNNSpec) { s.Exact = true }),
		"recall": mk(func(s *KNNSpec) { s.RecallFloor = 0.5 }),
		"source": mk(func(s *KNNSpec) { s.Query = nil; s.SourceID = 7 }),
	}
	for name, req := range distinct {
		if base.fingerprint(3, 42) == req.fingerprint(3, 42) {
			t.Errorf("%s variant collides with the base fingerprint", name)
		}
	}
	// The explicit default metric and execution-only knobs must not
	// fragment the cache key.
	for name, req := range map[string]Request{
		"metric l2": mk(func(s *KNNSpec) { s.Metric = "l2" }),
		"use_index": mk(func(s *KNNSpec) { s.UseIndex = true }),
	} {
		if base.fingerprint(3, 42) != req.fingerprint(3, 42) {
			t.Errorf("%s fragments the fingerprint", name)
		}
	}
}

// knnMatrix is the request matrix the golden and invariance tests
// share: planner-chosen, pinned-exact, forced-index, recall-floored and
// source-patch forms.
func knnMatrix() []Request {
	return []Request{
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 5, Query: knnQ(3)}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 8, Query: knnQ(1), Exact: true}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 4, Query: knnQ(5), UseIndex: true}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 6, Query: knnQ(0), RecallFloor: 0.99}},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 3, SourceID: 1}},
	}
}

// TestKNNGoldenN1: a one-shard sharded service answers kNN requests
// byte-identically to the unsharded path — values, rows (including
// _dist), plan strings, fingerprints and cost estimates.
func TestKNNGoldenN1(t *testing.T) {
	const rows = 240
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, rows, cfg)
	_, sharded := synthSharded(t, 1, rows, cfg)
	ctx := context.Background()
	for qi, req := range knnMatrix() {
		pr, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("knn %d unsharded: %v", qi, err)
		}
		sr, err := sharded.Query(ctx, req)
		if err != nil {
			t.Fatalf("knn %d sharded N=1: %v", qi, err)
		}
		if pg, sg := goldenKey(t, pr), goldenKey(t, sr); pg != sg {
			t.Errorf("knn %d diverges:\n  unsharded: %s\n  sharded-1: %s", qi, pg, sg)
		}
	}
}

// TestKNNShardInvariance: kNN answers — values AND rows — are
// shard-count invariant across the whole matrix: every fragment reports
// exact distances, LSH candidacy is a per-point property under the
// fixed hyperplane seed, so per-shard local top-k merges to exactly the
// unsharded answer.
func TestKNNShardInvariance(t *testing.T) {
	const rows = 240
	cfg := Config{Workers: 2}
	_, plain := synthUnsharded(t, rows, cfg)
	ctx := context.Background()
	want := make([]*Response, 0, len(knnMatrix()))
	for qi, req := range knnMatrix() {
		r, err := plain.Query(ctx, req)
		if err != nil {
			t.Fatalf("knn %d unsharded: %v", qi, err)
		}
		want = append(want, r)
	}
	_, sharded := synthSharded(t, 3, rows, cfg)
	for qi, req := range knnMatrix() {
		r, err := sharded.Query(ctx, req)
		if err != nil {
			t.Fatalf("knn %d sharded N=3: %v", qi, err)
		}
		if r.Value != want[qi].Value {
			t.Errorf("knn %d: N=3 value %d, unsharded %d", qi, r.Value, want[qi].Value)
		}
		if !reflect.DeepEqual(r.Rows, want[qi].Rows) {
			t.Errorf("knn %d: N=3 rows diverge from unsharded\n  N=3: %v\n  N=1: %v",
				qi, r.Rows, want[qi].Rows)
		}
	}
}

// TestKNNRowsShape: neighbor rows carry the projection plus _dist,
// ascending, trimmed to k, and a source-id query never returns its own
// source.
func TestKNNRowsShape(t *testing.T) {
	_, svc := synthUnsharded(t, 200, Config{Workers: 2})
	ctx := context.Background()
	r, err := svc.Query(ctx, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: 10, Query: knnQ(2), Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 10 || len(r.Rows) != 10 {
		t.Fatalf("value %d rows %d, want 10/10", r.Value, len(r.Rows))
	}
	prev := -1.0
	for i, row := range r.Rows {
		d, ok := row["_dist"].(float64)
		if !ok {
			t.Fatalf("row %d has no _dist: %v", i, row)
		}
		if d < prev {
			t.Fatalf("rows not ascending by distance: %g after %g", d, prev)
		}
		prev = d
		if _, ok := row["_id"]; !ok {
			t.Fatalf("row %d lost its projection: %v", i, row)
		}
	}
	// The query sits at cluster 2's center: every neighbor is a member.
	if prev > 1 {
		t.Fatalf("kth distance %g: neighbors escaped the query's cluster", prev)
	}

	// Source-id form: the source never appears among its own neighbors.
	first, err := svc.Query(ctx, Request{Collection: shardTestCol, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	srcID := first.Rows[0]["_id"].(uint64)
	r, err = svc.Query(ctx, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: 5, SourceID: srcID, Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 5 {
		t.Fatalf("source knn value %d, want 5", r.Value)
	}
	for _, row := range r.Rows {
		if row["_id"].(uint64) == srcID {
			t.Fatal("source patch returned as its own neighbor")
		}
	}
}

// TestKNNApproxScatter: at a size where the planner picks LSH, the
// sharded plan surfaces the approximate fragments and the re-rank
// gather, and the answer's recall against the exact result holds the
// default floor.
func TestKNNApproxScatter(t *testing.T) {
	const rows, k = 600, 10
	cfg := Config{Workers: 2}
	_, sharded := synthSharded(t, 3, rows, cfg)
	ctx := context.Background()
	approx, err := sharded.Query(ctx, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: k, Query: knnQ(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(approx.Plan, "knn-index[approx]") {
		t.Fatalf("plan %q does not surface the approximate index path", approx.Plan)
	}
	if !strings.Contains(approx.Plan, "gather-knn(rerank)") {
		t.Fatalf("plan %q does not surface the re-rank gather", approx.Plan)
	}
	exact, err := sharded.Query(ctx, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: k, Query: knnQ(4), Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exact.Plan, "knn-") {
		t.Fatalf("exact plan %q lost the knn label", exact.Plan)
	}
	// Tie-tolerant recall: an approximate neighbor within the exact kth
	// distance counts as found.
	dk := exact.Rows[len(exact.Rows)-1]["_dist"].(float64)
	hits := 0
	for _, row := range approx.Rows {
		if row["_dist"].(float64) <= dk {
			hits++
		}
	}
	if recall := float64(hits) / float64(len(exact.Rows)); recall < 0.9 {
		t.Fatalf("approximate scatter recall %.2f below 0.9 (approx %v / exact %v)",
			recall, approx.Rows, exact.Rows)
	}
}

// TestKNNStatsAndMaintenanceCounters: cold kNN executions count,
// cache hits do not, and the index maintenance counters surface
// through Stats on both backends.
func TestKNNStatsAndMaintenanceCounters(t *testing.T) {
	db, svc := synthUnsharded(t, 120, Config{Workers: 1})
	ctx := context.Background()
	req := Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: 5, Query: knnQ(1), UseIndex: true}}
	if _, err := svc.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("identical knn request missed the result cache")
	}
	st := svc.Stats()
	if st.KNNQueries != 1 {
		t.Fatalf("knn_queries = %d after one cold + one cached, want 1", st.KNNQueries)
	}
	if st.IndexRebuilds < 1 {
		t.Fatalf("index_rebuilds = %d after an indexed probe", st.IndexRebuilds)
	}
	col, err := db.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Append(synthPatch(120)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	st2 := svc.Stats()
	if st2.IndexExtends != st.IndexExtends+1 {
		t.Fatalf("index_extends %d -> %d across a prefix-certified append, want +1",
			st.IndexExtends, st2.IndexExtends)
	}
	if st2.KNNQueries != 2 {
		t.Fatalf("knn_queries = %d after two cold executions, want 2", st2.KNNQueries)
	}
}

// TestKNNConcurrentAppendsHammer: kNN scatters race appends across
// every shard; under -race this is the memory-model check for the
// versioned index cache feeding parallel fragments.
func TestKNNConcurrentAppendsHammer(t *testing.T) {
	sdb, svc := synthSharded(t, 3, 60, Config{Workers: 4})
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const appends = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := sc.Append(synthPatch(60 + i)); err != nil {
				panic(fmt.Sprintf("append during knn scatter: %v", err))
			}
		}
	}()
	reqs := []Request{
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 5, Query: knnQ(1)}, NoCache: true},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 8, Query: knnQ(3), Exact: true}, NoCache: true},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 4, Query: knnQ(6), UseIndex: true}, NoCache: true},
		{Collection: shardTestCol, KNN: &KNNSpec{Field: "emb", K: 6, Query: knnQ(2), RecallFloor: 0.5}, NoCache: true},
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := reqs[(c+i)%len(reqs)]
				r, err := svc.Query(ctx, req)
				if err != nil {
					panic(fmt.Sprintf("knn during appends: %v", err))
				}
				if r.Value > req.KNN.K {
					panic(fmt.Sprintf("knn returned %d rows for k=%d", r.Value, req.KNN.K))
				}
			}
		}(c)
	}
	wg.Wait()
	// Quiesced: every index path answers over the full row set.
	r := mustQuery(t, svc, Request{Collection: shardTestCol,
		KNN: &KNNSpec{Field: "emb", K: 10, Query: knnQ(0), UseIndex: true}, NoCache: true})
	if r.Value != 10 {
		t.Fatalf("post-hammer knn value = %d, want 10", r.Value)
	}
}
