package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// Handler returns the service's HTTP JSON API:
//
//	POST /query      — execute a Request (JSON body), returns a Response
//	POST /append     — live-ingest an AppendRequest (single patch or a
//	                   frame-at-a-time batch), returns an AppendResponse
//	GET  /stats      — serving + cache + device + ingest counters (JSON)
//	GET  /metrics    — the same state as Prometheus text exposition
//	GET  /debug/slow — recent slow queries, newest first (JSON)
//	GET  /healthz    — liveness probe
//	GET  /readyz     — readiness probe: 503 with per-shard detail while
//	                   any replica is out-of-sync or a resync is running
//
// Admission overflow maps to 429 so load balancers can back off; unknown
// collections/fields map to 400 (the plan-time type checking the paper
// argues for, §4.2).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/append", s.handleAppend)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slow", s.handleSlow)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{"POST a JSON request body"})
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{"bad request body: " + err.Error()})
		return
	}
	resp, err := s.Query(r.Context(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterHeader(err))
		writeJSON(w, http.StatusTooManyRequests, httpError{err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, httpError{err.Error()})
	case errors.Is(err, core.ErrNotFound):
		writeJSON(w, http.StatusNotFound, httpError{err.Error()})
	case errors.Is(err, ErrQueryTimeout):
		// The server's own deadline fired (client is still waiting):
		// gateway timeout, and worth retrying once load drains.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusGatewayTimeout, httpError{err.Error()})
	case errors.Is(err, r.Context().Err()):
		writeJSON(w, http.StatusRequestTimeout, httpError{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, httpError{err.Error()})
	}
}

func (s *Service) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{"POST a JSON append body"})
		return
	}
	var req AppendRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{"bad append body: " + err.Error()})
		return
	}
	resp, err := s.Append(r.Context(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrOverloaded):
		// The write gate is saturated: same backpressure contract as
		// /query, so load balancers slow the producer instead of the
		// producer starving reads.
		w.Header().Set("Retry-After", retryAfterHeader(err))
		writeJSON(w, http.StatusTooManyRequests, httpError{err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, httpError{err.Error()})
	case errors.Is(err, ErrAppendStorage):
		// Server-side fault after validation (a prefix may be committed;
		// the message says how much): retryable, unlike a 400.
		writeJSON(w, http.StatusInternalServerError, httpError{err.Error()})
	case errors.Is(err, core.ErrNotFound):
		writeJSON(w, http.StatusNotFound, httpError{err.Error()})
	case errors.Is(err, r.Context().Err()):
		writeJSON(w, http.StatusRequestTimeout, httpError{err.Error()})
	default:
		// Schema violations and malformed specs: the ingest-time type
		// checking mirroring /query's plan-time 400s.
		writeJSON(w, http.StatusBadRequest, httpError{err.Error()})
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics().WritePrometheus(w)
}

func (s *Service) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": float64(s.cfg.SlowQueryThreshold.Microseconds()) / 1000,
		"entries":      s.SlowQueries(),
	})
}

// retryAfterHeader renders an overload rejection's cost-aware backoff
// hint in whole seconds (minimum 1, the pre-typed-error contract).
func retryAfterHeader(err error) string {
	var oe *OverloadError
	if errors.As(err, &oe) {
		secs := int(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return strconv.Itoa(secs)
	}
	return "1"
}

// handleReady is the readiness probe: unlike /healthz (pure liveness),
// it reports not-ready (503) while any replica is out of the read set
// or a repair is in flight, with per-shard detail — so rolling deploys
// and load balancers wait for the fleet to heal before routing traffic
// that expects full hedge headroom.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "status": "closed"})
		return
	}
	if s.shards == nil || s.shards.Replicas() < 2 {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
		return
	}
	lags := s.shards.OutOfSyncReplicas()
	if len(lags) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"ready":       false,
		"out_of_sync": lags,
	})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closed"})
		return
	}
	// The liveness probe reads the start timestamp directly — building a
	// full Stats() snapshot (merge locks, cache sweeps) just for uptime
	// made the cheapest endpoint the most expensive one.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}
