package service

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Scatter-gather execution over a sharded backend. The plan is made
// once; its fragment runs on every shard in parallel, each shard pinned
// to its own batcher-fronted device (so concurrent fragments' kernels
// fuse exactly like concurrent requests'); the partial results merge at
// the service layer:
//
//   - filters/projections: per-shard counts sum, row sets concatenate in
//     shard order;
//   - ordered top-k: each shard sorts and trims its own rows, the
//     service runs a k-way heap merge over the sorted streams;
//   - similarity joins: one local self-join task per shard plus one
//     cross task per shard pair (left rows from shard i probe shard j),
//     pair lists concatenate;
//   - cluster/distinct queries: pairs from every task re-cluster at the
//     gather stage (union-find over the concatenated fragments).
//
// With one shard the fragment IS the whole plan and the merge is the
// identity, so results (values, rows, plan strings, cost estimates) are
// byte-identical to the unsharded execution path — the equivalence the
// golden tests in shard_test.go pin down.

// shardFragment is one shard's partial result after the filter stage.
type shardFragment struct {
	filtered []*core.Patch
	rows     []*core.Patch // sorted/trimmed projection input (order/limit)
	csel     *columnSelection
	planOps  []string
	cost     float64
}

// annotate attaches the fragment's work record to its trace span:
// which shard ran, how many rows it held and matched, the access path,
// and — when the filter ran columnar — the zone-map pruning and
// column-extension outcome. No-op on untraced queries (nil handle).
func (f *shardFragment) annotate(sp *obs.SpanHandle, shard, snapRows int) {
	if sp == nil {
		return
	}
	sp.AttrInt("shard", int64(shard))
	sp.AttrInt("rows", int64(snapRows))
	sp.AttrInt("matched", int64(len(f.filtered)))
	path := "full-scan"
	if len(f.planOps) > 0 {
		path = f.planOps[0]
	}
	sp.Attr("path", path)
	if c := f.csel; c != nil {
		sp.AttrInt("blocks", int64(c.scan.Blocks))
		sp.AttrInt("blocks_pruned", int64(c.scan.Pruned))
		sp.AttrInt("rows_scanned", int64(c.scan.RowsScanned))
		sp.AttrInt("seg_loads", int64(c.scan.SegLoads))
		switch {
		case c.colInfo.Extended:
			sp.Attr("columns", "extended")
		case c.colInfo.Built:
			sp.Attr("columns", "built")
		default:
			sp.Attr("columns", "cached")
		}
	}
}

// shardDev returns the batcher-fronted device scatter task t is pinned
// to. Shard-local task i maps to device i%Devices, so a shard's kernels
// always land on the same scheduler; cross tasks continue round-robin.
func (s *Service) shardDev(t int) *exec.Batcher {
	return s.batchers[t%len(s.batchers)]
}

// scatterWave runs n independent scatter tasks concurrently and returns
// the first error. A single task runs inline (the N=1 path adds no
// goroutine overhead).
func (s *Service) scatterWave(n int, fn func(t int) error) error {
	s.tel.scatterTasks.Add(int64(n))
	if n == 1 {
		return fn(0)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			if err := fn(t); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	return first
}

// executeScatter runs the filter -> simjoin -> distinct -> order/limit
// pipeline as plan-once, scatter-everywhere, merge-at-the-top. Each
// shard's fragment runs as a hedged, deadline-aware read over the
// shard's in-sync replicas (see hedge.go); when every replica of a
// shard fails and the request allows partial results, the gather stage
// degrades instead of erroring.
func (s *Service) executeScatter(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scol, err := s.shards.Collection(req.Collection)
	if err != nil {
		return nil, err
	}
	nsh := scol.Shards()
	s.tel.scatterQueries.Inc()
	s.tel.fanout.Observe(float64(nsh))

	// Plan once: resolve and type-check the filter constant (or range
	// bounds) against the schema before fanning anything out.
	var fval core.Value
	if f := req.Filter; f != nil {
		if f.isRange() {
			if err := scol.Schema().ValidateFilterRange(f.Field); err != nil {
				return nil, err
			}
		} else {
			fval, err = f.value()
			if err != nil {
				return nil, err
			}
			if err := scol.Schema().ValidateFilterValue(f.Field, fval); err != nil {
				return nil, err
			}
		}
	}

	// Effective row limit (mirrors the unsharded path: requests cap at
	// maxRows, zero means "rows only if order/limit was asked for").
	limit := req.Limit
	if limit <= 0 || limit > maxRows {
		limit = maxRows
	}
	wantRows := req.OrderBy != "" || req.Limit > 0

	// Partial-tolerant queries under a deadline cut their fragments
	// slightly early, so the gather stage still has time to assemble and
	// return the surviving shards' answer before the 504 would fire.
	fctx := ctx
	if req.AllowPartial {
		if dl, ok := ctx.Deadline(); ok {
			margin := time.Until(dl) / 10
			if margin < time.Millisecond {
				margin = time.Millisecond
			}
			if margin > 100*time.Millisecond {
				margin = 100 * time.Millisecond
			}
			var fcancel context.CancelFunc
			fctx, fcancel = context.WithDeadline(ctx, dl.Add(-margin))
			defer fcancel()
		}
	}

	// ---- scatter: per-shard hedged filter (+ local sort/trim) fragments ----
	frags := make([]*shardFragment, nsh)
	errs := make([]error, nsh)
	s.scatterWave(nsh, func(i int) error {
		frags[i], errs[i] = s.hedgedFragment(fctx, req, fval, scol, i, limit, wantRows)
		return nil // per-shard outcomes are judged below, not first-error
	})
	if err := ctx.Err(); err != nil {
		return nil, err // timeout/cancel dominates any per-shard outcome
	}
	var missing []int
	var shardErr error
	for i, e := range errs {
		if e != nil {
			missing = append(missing, i)
			if shardErr == nil {
				shardErr = fmt.Errorf("shard %d: %w", i, e)
			}
		}
	}
	if len(missing) > 0 && (!req.AllowPartial || len(missing) == nsh) {
		return nil, shardErr
	}
	if len(missing) > 0 {
		s.tel.degradedQueries.Inc()
	}

	if req.SimJoin != nil {
		return s.simJoinScatter(ctx, req, scol, frags, missing)
	}

	// ---- gather: sum counts, merge rows (nil frags = missing shards) ----
	mergeStart := time.Now()
	mg := req.tr.Begin("merge")
	resp := &Response{Degraded: len(missing) > 0, MissingShards: missing}
	total := 0
	var planOps []string
	for _, frag := range frags {
		if frag == nil {
			continue
		}
		if planOps == nil {
			planOps = append([]string{}, frag.planOps...)
		}
		total += len(frag.filtered)
		resp.EstCostSec += frag.cost
	}
	resp.Value = total

	if wantRows {
		var merged []*core.Patch
		if req.OrderBy != "" {
			merged, err = mergeSortedRows(ctx, frags, req.OrderBy, req.Desc, limit)
			if err != nil {
				mg.End()
				return nil, err
			}
			planOps = append(planOps, "order-by("+req.OrderBy+")")
		} else {
			for _, frag := range frags {
				if frag == nil {
					continue
				}
				merged = append(merged, frag.rows...)
				if len(merged) >= limit {
					merged = merged[:limit]
					break
				}
			}
		}
		resp.Rows = projectRows(merged)
		if req.Limit > 0 {
			planOps = append(planOps, fmt.Sprintf("limit(%d)", req.Limit))
		}
	}
	if len(planOps) == 0 {
		planOps = append(planOps, "scan-count")
	}
	resp.Plan = s.scatterPlan(nsh, 0, planOps, gatherLabel(req))
	mg.Attr("gather", gatherLabel(req)).AttrInt("rows", int64(len(resp.Rows))).End()
	s.mergeNS.Add(time.Since(mergeStart).Nanoseconds())
	return resp, nil
}

// gatherLabel names the merge strategy for plain (non-join) queries.
func gatherLabel(req *Request) string {
	switch {
	case req.OrderBy != "":
		return "gather-merge"
	case req.Limit > 0:
		return "gather-concat"
	default:
		return "gather-count"
	}
}

// scatterPlan renders the physical plan string. One shard reproduces
// the unsharded plan byte for byte (the N=1 contract); more shards wrap
// the fragment pipeline in a scatter[N(+C)] -> gather decoration, C
// being the cross-shard join task count.
func (s *Service) scatterPlan(nsh, cross int, fragOps []string, gather string) string {
	if nsh == 1 {
		return joinPlan(fragOps)
	}
	fan := fmt.Sprintf("%d", nsh)
	if cross > 0 {
		fan = fmt.Sprintf("%d+%d", nsh, cross)
	}
	return fmt.Sprintf("scatter[%s](%s) -> %s", fan, joinPlan(fragOps), gather)
}

// filterFragment runs the filter stage of the plan on replica r of
// shard i's snapshot, using the replica-local hash index when the plan
// asks for it. It checks ctx between blocks of row work so a canceled
// caller (or a hedge loser) stops promptly instead of burning the
// full scan.
func (s *Service) filterFragment(ctx context.Context, req *Request, fval core.Value, scol *core.ShardedCollection, i, r int, snap []*core.Patch) (*shardFragment, error) {
	frag := &shardFragment{filtered: snap}
	f := req.Filter
	if f == nil {
		return frag, nil
	}
	// Fragments feed the same observed-latency state as the unsharded
	// path: each replica's filter stage reports its access path and
	// duration to the shared cost model.
	fltStart := time.Now()
	var fltMethod core.FilterMethod
	fltUnits := 0
	defer func() {
		if fltMethod != 0 {
			s.cost.ObserveFilter(fltMethod, fltUnits, time.Since(fltStart))
		}
	}()
	col := scol.Replica(i, r)
	if f.isRange() {
		lo, hi := f.bounds()
		if f.UseIndex {
			idx, err := s.ensureIndexOn(s.shards.ReplicaDB(i, r), replicaScope(i, r), col, f.Field, core.IdxBTree)
			if err != nil {
				return nil, err
			}
			ids, err := btreeRangeIDs(idx, lo, hi)
			if err != nil {
				return nil, err
			}
			filtered := make([]*core.Patch, 0, len(ids))
			for k, id := range ids {
				if k%ctxCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				p, err := col.Get(id)
				if err != nil {
					return nil, err
				}
				filtered = append(filtered, p)
			}
			frag.filtered = filtered
			frag.planOps = append(frag.planOps, fmt.Sprintf("btree-index(%s)", f.Field))
			frag.cost += s.cost.FilterCost(core.FilterBTreeIndex, len(snap), len(ids))
			fltMethod, fltUnits = core.FilterBTreeIndex, len(ids)
		} else if cf, ok := columnFilterRange(col, f.Field, lo, hi, len(snap)); ok {
			frag.filtered = cf.rows
			frag.csel = cf
			frag.planOps = append(frag.planOps, fmt.Sprintf("column-scan(%s)", f.Field))
			frag.cost += s.cost.FilterCost(core.FilterColumnScan, len(snap), 0)
			fltMethod, fltUnits = core.FilterColumnScan, len(snap)
		} else {
			frag.filtered = rowFilterRange(snap, f.Field, lo, hi)
			frag.planOps = append(frag.planOps, fmt.Sprintf("scan-filter(%s)", f.Field))
			frag.cost += float64(len(snap)) * scanCmpCostSec
			fltMethod, fltUnits = core.FilterScan, len(snap)
		}
		return frag, nil
	}
	if f.UseIndex {
		idx, err := s.ensureIndexOn(s.shards.ReplicaDB(i, r), replicaScope(i, r), col, f.Field, core.IdxHash)
		if err != nil {
			return nil, err
		}
		ids, err := idx.LookupEq(fval)
		if err != nil {
			return nil, err
		}
		filtered := make([]*core.Patch, 0, len(ids))
		for k, id := range ids {
			if k%ctxCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			p, err := col.Get(id)
			if err != nil {
				return nil, err
			}
			filtered = append(filtered, p)
		}
		frag.filtered = filtered
		frag.planOps = append(frag.planOps, fmt.Sprintf("hash-index(%s)", f.Field))
		frag.cost += float64(len(ids)) * s.cost.CFetch
		fltMethod, fltUnits = core.FilterHashIndex, len(ids)
	} else if cf, ok := columnFilterEq(col, f.Field, fval, len(snap)); ok {
		// Columnar fragment: each replica prunes and scans its own blocks
		// (same kernels, labels and cost accounting as the unsharded
		// path, so N=1 plans stay byte-identical).
		frag.filtered = cf.rows
		frag.csel = cf
		frag.planOps = append(frag.planOps, fmt.Sprintf("column-scan(%s)", f.Field))
		frag.cost += s.cost.FilterCost(core.FilterColumnScan, len(snap), 0)
		fltMethod, fltUnits = core.FilterColumnScan, len(snap)
	} else {
		filtered := make([]*core.Patch, 0, len(snap)/4)
		for k, p := range snap {
			if k%ctxCheckRows == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if mv, ok := p.Meta[f.Field]; ok && mv.Equal(fval) {
				filtered = append(filtered, p)
			}
		}
		frag.filtered = filtered
		frag.planOps = append(frag.planOps, fmt.Sprintf("scan-filter(%s)", f.Field))
		frag.cost += float64(len(snap)) * scanCmpCostSec
		fltMethod, fltUnits = core.FilterScan, len(snap)
	}
	return frag, nil
}

// ctxCheckRows is the row stride between cancellation checks in scan
// loops: frequent enough to abandon a dead query promptly, sparse
// enough that the atomic ctx.Err() load never shows up in profiles.
const ctxCheckRows = 4096

// shardScope disambiguates per-shard index-build locks.
func shardScope(i int) string { return fmt.Sprintf("shard%d", i) }

// replicaScope disambiguates per-replica index-build locks. The primary
// keeps the historical shard-scope key.
func replicaScope(i, r int) string {
	if r == 0 {
		return shardScope(i)
	}
	return fmt.Sprintf("shard%d-r%d", i, r)
}

// joinTask is one unit of the similarity-join scatter wave: a shard's
// local self-join, or the cross join between a pair of shards.
type joinTask struct {
	left, right int // shard indexes; left == right is a local self-join
	pairs       []core.Tuple
	cost        float64
	label       string
}

// simJoinScatter executes the similarity-join stage: every shard
// self-joins its own fragment and every shard pair cross-joins (left
// fragment against right fragment), all tasks in parallel on their
// pinned devices; pair lists concatenate at the gather stage, and
// distinct queries re-cluster over the union. Shards listed in missing
// have nil fragments (every replica failed under allow_partial): they
// contribute no tasks, and the degraded pair set covers only the
// surviving shards.
func (s *Service) simJoinScatter(ctx context.Context, req *Request, scol *core.ShardedCollection, frags []*shardFragment, missing []int) (*Response, error) {
	sj := req.SimJoin
	nsh := len(frags)

	// Vector dimensionality, from the schema or the first surviving row.
	dim := 0
	if fd := scol.Schema().FieldNamed(sj.Field); fd != nil {
		dim = fd.VecDim
	}
	if dim == 0 {
		for _, frag := range frags {
			if frag != nil && len(frag.filtered) > 0 {
				if mv, ok := frag.filtered[0].Meta[sj.Field]; ok {
					dim = len(mv.V)
				}
				break
			}
		}
	}
	// A prebuilt (shard-local) index can only serve an unfiltered join.
	hasIndex := sj.UseIndex && req.Filter == nil

	// Task list: one local self-join per surviving shard, then one cross
	// task per non-empty surviving shard pair.
	tasks := make([]*joinTask, 0, nsh+nsh*(nsh-1)/2)
	for i := 0; i < nsh; i++ {
		if frags[i] == nil {
			continue
		}
		tasks = append(tasks, &joinTask{left: i, right: i})
	}
	cross := 0
	for i := 0; i < nsh; i++ {
		for j := i + 1; j < nsh; j++ {
			if frags[i] == nil || frags[j] == nil {
				continue
			}
			if len(frags[i].filtered) == 0 || len(frags[j].filtered) == 0 {
				continue // an empty side can contribute no cross pairs
			}
			tasks = append(tasks, &joinTask{left: i, right: j})
			cross++
		}
	}

	err := s.scatterWave(len(tasks), func(t int) error {
		task := tasks[t]
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.inj.Stall(ctx, fault.DeviceStall, task.left, 0); err != nil {
			return err
		}
		dev := s.shardDev(t)
		// Join tasks submit kernels: register with the device's batcher so
		// its adaptive flush knows a submitter is mid-query (default flush
		// policy only — an explicit BatchWindow is honored strictly).
		if s.adaptive {
			dev.BeginSubmitter()
			defer dev.EndSubmitter()
		}
		sp := req.tr.Begin("join-task")
		odev := s.observedDev(dev, req.tr)
		var err error
		if task.left == task.right {
			err = s.runLocalJoin(task, sj, frags[task.left].filtered, scol, dim, hasIndex, dev, odev)
		} else {
			err = s.runCrossJoin(task, sj, frags[task.left].filtered, frags[task.right].filtered, scol, dim, hasIndex, dev, odev)
		}
		sp.End()
		if err == nil {
			sp.AttrInt("left", int64(task.left)).
				AttrInt("right", int64(task.right)).
				AttrInt("pairs", int64(len(task.pairs)))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// ---- gather: concatenate pairs, re-cluster for distinct ----
	mergeStart := time.Now()
	mg := req.tr.Begin("merge")
	resp := &Response{Degraded: len(missing) > 0, MissingShards: missing}
	var pairs []core.Tuple
	label := ""
	var planOps []string
	for _, frag := range frags {
		if frag == nil {
			continue
		}
		if planOps == nil {
			planOps = append([]string{}, frag.planOps...)
		}
		resp.EstCostSec += frag.cost
	}
	for _, task := range tasks {
		pairs = append(pairs, task.pairs...)
		resp.EstCostSec += task.cost
		if label == "" && task.label != "" {
			label = task.label
		}
	}

	planOps = append(planOps, label)
	gather := "gather-pairs"
	if req.Distinct {
		var all []*core.Patch
		for _, frag := range frags {
			if frag == nil {
				continue
			}
			all = append(all, frag.filtered...)
		}
		resp.Value = clusterCount(all, pairs, sj.MinCluster)
		planOps = append(planOps, fmt.Sprintf("distinct(min=%d)", sj.MinCluster))
		gather = fmt.Sprintf("gather-cluster(min=%d)", sj.MinCluster)
	} else {
		resp.Value = len(pairs)
	}
	resp.Plan = s.scatterPlan(nsh, cross, planOps, gather)
	mg.Attr("gather", gather).AttrInt("pairs", int64(len(pairs))).End()
	s.mergeNS.Add(time.Since(mergeStart).Nanoseconds())
	return resp, nil
}

// shardVectorIndex resolves the shard-local maintained vector index at
// the shard's current snapshot (exact mode — join results must be
// byte-identical to the scan-based methods).
func shardVectorIndex(col *core.Collection, field string) (*core.VectorIndex, error) {
	snap, ver, err := col.Snapshot()
	if err != nil {
		return nil, err
	}
	return col.VectorIndexAt(snap, ver, field, core.VecExact)
}

// runLocalJoin is shard i's self-join over its own fragment — exactly
// the unsharded similarity join, shard-local index and all.
func (s *Service) runLocalJoin(task *joinTask, sj *SimJoinSpec, filtered []*core.Patch, scol *core.ShardedCollection, dim int, hasIndex bool, dev *exec.Batcher, odev exec.Device) error {
	i := task.left
	col := scol.Shard(i)
	db := s.shards.Shard(i)
	n := len(filtered)
	sp := s.cost.PlanSimilarityJoinVec(n, n, dim, hasIndex)
	task.cost = sp.EstCost
	opts := core.SimilarityJoinOpts{
		LeftField: sj.Field, RightField: sj.Field,
		Eps: sj.Eps, DedupUnordered: true, Device: odev,
	}
	var pairs []core.Tuple
	var err error
	switch sp.Method {
	case core.SimVecIndexed:
		vi, ierr := shardVectorIndex(col, sj.Field)
		if ierr != nil {
			return ierr
		}
		pairs, err = core.SimilarityJoinVecIndexed(filtered, col, vi, opts)
	case core.SimOnTheFly:
		pairs, err = core.SimilarityJoinOnTheFly(filtered, filtered, opts)
	case core.SimBatched:
		pairs, err = core.SimilarityJoinBatched(db, filtered, filtered, opts)
	default:
		pairs, err = core.SimilarityJoinNested(filtered, filtered, opts)
	}
	if err != nil {
		return err
	}
	task.pairs = pairs
	task.label = fmt.Sprintf("simjoin[%s@%s](%s, eps=%g)", sp.Method, dev.Kind(), sj.Field, sj.Eps)
	return nil
}

// runCrossJoin joins shard i's fragment against shard j's. The two row
// sets are disjoint (every patch has one home shard), so no dedup is
// needed: each qualifying cross-shard pair materializes exactly once,
// which together with the deduped local self-joins reproduces the
// unsharded DedupUnordered pair set.
func (s *Service) runCrossJoin(task *joinTask, sj *SimJoinSpec, left, right []*core.Patch, scol *core.ShardedCollection, dim int, hasIndex bool, dev *exec.Batcher, odev exec.Device) error {
	j := task.right
	dbR, colR := s.shards.Shard(j), scol.Shard(j)
	sp := s.cost.PlanSimilarityJoinVec(len(left), len(right), dim, hasIndex)
	task.cost = sp.EstCost
	opts := core.SimilarityJoinOpts{
		LeftField: sj.Field, RightField: sj.Field,
		Eps: sj.Eps, Device: odev,
	}
	var pairs []core.Tuple
	var err error
	switch sp.Method {
	case core.SimVecIndexed:
		vi, ierr := shardVectorIndex(colR, sj.Field)
		if ierr != nil {
			return ierr
		}
		pairs, err = core.SimilarityJoinVecIndexed(left, colR, vi, opts)
	case core.SimOnTheFly:
		pairs, err = core.SimilarityJoinOnTheFly(left, right, opts)
	case core.SimBatched:
		pairs, err = core.SimilarityJoinBatched(dbR, left, right, opts)
	default:
		pairs, err = core.SimilarityJoinNested(left, right, opts)
	}
	if err != nil {
		return err
	}
	task.pairs = pairs
	return nil
}

// sortRows returns a stably sorted copy of ps by the metadata field.
// The serving paths now run bounded top-k (topKRows) instead of a full
// sort; this remains the reference semantics both top-k implementations
// are golden-tested against.
func sortRows(ps []*core.Patch, field string, desc bool) []*core.Patch {
	rows := append([]*core.Patch(nil), ps...)
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].Meta[field], rows[j].Meta[field]
		if desc {
			return b.Less(a)
		}
		return a.Less(b)
	})
	return rows
}

// rowStream is one shard's sorted, trimmed row list being consumed by
// the k-way merge.
type rowStream struct {
	shard int
	rows  []*core.Patch
	pos   int
}

// rowHeap orders streams by their head row (ties resolve in shard
// order, mirroring the stable concatenate-then-sort the unsharded path
// would produce).
type rowHeap struct {
	streams []*rowStream
	field   string
	desc    bool
}

func (h *rowHeap) Len() int { return len(h.streams) }
func (h *rowHeap) Less(i, j int) bool {
	a := h.streams[i].rows[h.streams[i].pos].Meta[h.field]
	b := h.streams[j].rows[h.streams[j].pos].Meta[h.field]
	if h.desc {
		if b.Less(a) {
			return true
		}
		if a.Less(b) {
			return false
		}
	} else {
		if a.Less(b) {
			return true
		}
		if b.Less(a) {
			return false
		}
	}
	return h.streams[i].shard < h.streams[j].shard
}
func (h *rowHeap) Swap(i, j int) { h.streams[i], h.streams[j] = h.streams[j], h.streams[i] }
func (h *rowHeap) Push(x any)    { h.streams = append(h.streams, x.(*rowStream)) }
func (h *rowHeap) Pop() any {
	old := h.streams
	n := len(old)
	x := old[n-1]
	h.streams = old[:n-1]
	return x
}

// mergeSortedRows k-way heap-merges the shards' sorted row fragments
// into the global top-limit rows. Each shard trimmed its fragment to
// the limit already, so the merge touches at most nsh*limit rows no
// matter how large the collection is. Nil fragments (missing shards on
// a degraded query) contribute no stream; the merge checks ctx
// periodically so a query that times out mid-gather stops there.
func mergeSortedRows(ctx context.Context, frags []*shardFragment, field string, desc bool, limit int) ([]*core.Patch, error) {
	h := &rowHeap{field: field, desc: desc}
	for i, frag := range frags {
		if frag != nil && len(frag.rows) > 0 {
			h.streams = append(h.streams, &rowStream{shard: i, rows: frag.rows})
		}
	}
	heap.Init(h)
	out := make([]*core.Patch, 0, limit)
	for h.Len() > 0 && len(out) < limit {
		if len(out)%mergeCtxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		st := h.streams[0]
		out = append(out, st.rows[st.pos])
		st.pos++
		if st.pos < len(st.rows) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, nil
}

// mergeCtxCheckRows is the output-row stride between cancellation
// checks in the k-way merge (heap steps are pricier than scan steps,
// so the stride is tighter than ctxCheckRows).
const mergeCtxCheckRows = 32
