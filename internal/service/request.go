package service

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
)

// Request is the declarative query the service executes: a pipeline of
// filter -> similarity self-join -> distinct-identity clustering ->
// order/limit over one materialized collection, or an inference sweep
// over a registered frame source. The service compiles it to a physical
// plan through the cost-based optimizer and keys its result cache on the
// request's canonical fingerprint.
type Request struct {
	// Collection names the materialized collection to query. Exactly one
	// of Collection and Infer must be set.
	Collection string `json:"collection,omitempty"`

	Filter  *FilterSpec  `json:"filter,omitempty"`
	SimJoin *SimJoinSpec `json:"simjoin,omitempty"`

	// KNN asks for the k nearest neighbors of a query vector. It is a
	// complete query shape on its own and composes with none of the
	// other stages (filter/simjoin/distinct/order_by/limit).
	KNN *KNNSpec `json:"knn,omitempty"`

	// Distinct clusters the similarity-join pairs into identities and
	// returns the cluster count (q4's dedup step). Requires SimJoin.
	Distinct bool `json:"distinct,omitempty"`

	// OrderBy/Desc/Limit shape row output for plain filter queries.
	OrderBy string `json:"order_by,omitempty"`
	Desc    bool   `json:"desc,omitempty"`
	Limit   int    `json:"limit,omitempty"`

	// Infer runs a UDF sweep over rendered frames instead of a
	// collection query.
	Infer *InferSpec `json:"infer,omitempty"`

	// NoCache bypasses the result cache (the plan still executes and the
	// UDF cache still applies).
	NoCache bool `json:"no_cache,omitempty"`

	// TimeoutMS overrides Config.QueryTimeout for this request (0 keeps
	// the service default). Purely physical — it bounds wall time, never
	// the result — so it is excluded from the fingerprint.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// AllowPartial opts into graceful degradation: when every replica of
	// a shard fails, the gather stage returns the surviving shards'
	// partial result (annotated Degraded + MissingShards) instead of an
	// error. Changes the result contract, so it IS folded into the
	// fingerprint (only when set — default fingerprints are unchanged).
	AllowPartial bool `json:"allow_partial,omitempty"`

	// Trace requests full span capture for this query; the response then
	// carries the trace (TraceID/TraceData). Purely observational: it
	// never changes the result and is excluded from the fingerprint, so
	// traced and untraced runs share one cache entry.
	Trace bool `json:"trace,omitempty"`

	// tr is the span collector for this execution, set by the service
	// when the query is traced (requested or sampled). Nil otherwise —
	// every span call on a nil trace is a no-op.
	tr *obs.Trace
}

// FilterSpec is a selection on one metadata field: either an equality
// against exactly one constant (Str/Int/Float), or a half-open numeric
// range Min <= field < Max (either bound may be omitted for an open
// side). Equality and range are mutually exclusive.
type FilterSpec struct {
	Field string   `json:"field"`
	Str   *string  `json:"str,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	// Min/Max select rows with Min <= field < Max under numeric widening
	// (ints compare as floats, matching core.FieldRange). The field must
	// be a declared numeric field.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// UseIndex requests the indexed access path, built on first use: a
	// hash index for equality, a B-tree for ranges. Purely physical: it
	// never changes the result.
	UseIndex bool `json:"use_index,omitempty"`
}

// isRange reports whether the filter is a range selection.
func (f *FilterSpec) isRange() bool { return f.Min != nil || f.Max != nil }

// bounds resolves the range's half-open interval, open sides widening
// to infinity.
func (f *FilterSpec) bounds() (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if f.Min != nil {
		lo = *f.Min
	}
	if f.Max != nil {
		hi = *f.Max
	}
	return lo, hi
}

func (f *FilterSpec) value() (core.Value, error) {
	set := 0
	var v core.Value
	if f.Str != nil {
		set++
		v = core.StrV(*f.Str)
	}
	if f.Int != nil {
		set++
		v = core.IntV(*f.Int)
	}
	if f.Float != nil {
		set++
		v = core.FloatV(*f.Float)
	}
	if set != 1 {
		return core.Value{}, fmt.Errorf("service: filter on %q needs exactly one of str/int/float", f.Field)
	}
	return v, nil
}

// SimJoinSpec is a similarity self-join on a vector field: all pairs
// within Eps. The optimizer picks the physical method; UseIndex
// additionally allows probing a prebuilt ball tree when the join runs
// over the whole collection.
type SimJoinSpec struct {
	Field string  `json:"field"`
	Eps   float64 `json:"eps"`
	// UseIndex permits the prebuilt-ball-tree method (built on first
	// use). Only effective without a preceding filter: an index over the
	// full collection cannot serve a filtered subset. Purely physical.
	UseIndex bool `json:"use_index,omitempty"`
	// MinCluster drops identity clusters smaller than this when Distinct
	// is set (detection-noise suppression; q4 uses 2).
	MinCluster int `json:"min_cluster,omitempty"`
}

// KNNSpec is a k-nearest-neighbor query on a vector field: the K rows
// closest to a query vector under Euclidean distance, ascending, ties
// broken by patch id. The query vector is given inline (Query) or named
// by an existing patch (SourceID, which is excluded from its own
// result). The optimizer picks the physical method — brute-force scan,
// exact ball-tree index, or approximate LSH index — bounded by Exact
// and RecallFloor.
type KNNSpec struct {
	Field string `json:"field"`
	K     int    `json:"k"`

	// Query is the inline query vector. Exactly one of Query and
	// SourceID must be set.
	Query []float32 `json:"query,omitempty"`
	// SourceID names an existing patch whose Field vector is the query.
	// The source patch never appears in its own neighbor list.
	SourceID uint64 `json:"source_id,omitempty"`

	// Metric names the distance; "l2" (Euclidean) is the only metric
	// served and the empty string means l2.
	Metric string `json:"metric,omitempty"`

	// Exact demands results byte-identical to the brute-force scan: the
	// planner may still use the exact index, never the approximate one.
	Exact bool `json:"exact,omitempty"`
	// RecallFloor is the minimum acceptable expected recall in [0, 1].
	// Above what the approximate index promises, the planner stays
	// exact. Zero means no floor. Logical — it changes which results are
	// admissible — so it IS folded into the fingerprint.
	RecallFloor float64 `json:"recall_floor,omitempty"`
	// UseIndex pins the vector-index path regardless of estimated cost.
	// Purely physical, excluded from the fingerprint.
	UseIndex bool `json:"use_index,omitempty"`
}

// InferSpec sweeps a UDF over frames [From, To) of a registered frame
// source, counting matching outputs: detections with Label (or all), OCR
// words equal to Text (or all), or embeddings computed. Repeated sweeps
// over overlapping ranges hit the UDF materialization cache frame by
// frame.
type InferSpec struct {
	Source string `json:"source"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	UDF    string `json:"udf"` // "detect" | "embed" | "ocr"
	Label  string `json:"label,omitempty"`
	Text   string `json:"text,omitempty"`
}

// validate checks structural request sanity (schema checks happen at
// plan time against the live catalog).
func (r *Request) validate() error {
	switch {
	case r.Collection == "" && r.Infer == nil:
		return errors.New("service: request needs a collection or an infer spec")
	case r.Collection != "" && r.Infer != nil:
		return errors.New("service: collection query and infer sweep are mutually exclusive")
	}
	if r.Infer != nil {
		i := r.Infer
		if i.Source == "" {
			return errors.New("service: infer needs a source")
		}
		if i.To <= i.From || i.From < 0 {
			return fmt.Errorf("service: infer frame range [%d, %d) is empty", i.From, i.To)
		}
		switch i.UDF {
		case "detect", "embed", "ocr":
		default:
			return fmt.Errorf("service: unknown UDF %q (want detect, embed or ocr)", i.UDF)
		}
		return nil
	}
	if q := r.KNN; q != nil {
		if r.Filter != nil || r.SimJoin != nil || r.Distinct || r.OrderBy != "" || r.Limit != 0 {
			return errors.New("service: knn composes with none of filter/simjoin/distinct/order_by/limit")
		}
		if q.Field == "" {
			return errors.New("service: knn needs a field")
		}
		if q.K < 1 {
			return fmt.Errorf("service: knn k must be >= 1, got %d", q.K)
		}
		if q.K > maxRows {
			return fmt.Errorf("service: knn k %d exceeds the row cap %d", q.K, maxRows)
		}
		if (len(q.Query) > 0) == (q.SourceID != 0) {
			return errors.New("service: knn needs exactly one of query and source_id")
		}
		for _, x := range q.Query {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return fmt.Errorf("service: knn query vector on %q has non-finite component", q.Field)
			}
		}
		switch q.Metric {
		case "", "l2":
		default:
			return fmt.Errorf("service: knn metric %q unsupported (only l2)", q.Metric)
		}
		if q.RecallFloor < 0 || q.RecallFloor > 1 || math.IsNaN(q.RecallFloor) {
			return fmt.Errorf("service: knn recall_floor %g outside [0, 1]", q.RecallFloor)
		}
	}
	if r.Distinct && r.SimJoin == nil {
		return errors.New("service: distinct requires a simjoin")
	}
	if r.SimJoin != nil && r.SimJoin.Eps <= 0 {
		return errors.New("service: simjoin eps must be positive")
	}
	if f := r.Filter; f != nil {
		if f.isRange() {
			if f.Str != nil || f.Int != nil || f.Float != nil {
				return fmt.Errorf("service: filter on %q mixes equality and range bounds", f.Field)
			}
			if f.Min != nil && f.Max != nil && *f.Min >= *f.Max {
				return fmt.Errorf("service: filter on %q has empty range [%g, %g)", f.Field, *f.Min, *f.Max)
			}
			if (f.Min != nil && math.IsNaN(*f.Min)) || (f.Max != nil && math.IsNaN(*f.Max)) {
				return fmt.Errorf("service: filter on %q has NaN bound", f.Field)
			}
		} else if _, err := f.value(); err != nil {
			return err
		}
	}
	if r.Limit < 0 {
		return errors.New("service: negative limit")
	}
	if r.TimeoutMS < 0 {
		return errors.New("service: negative timeout_ms")
	}
	return nil
}

// fingerprint canonicalizes the request's *logical* content plus the
// dataset version. Physical knobs (UseIndex) are deliberately excluded:
// all physical plans compute the same result, so they share one cache
// entry. The returned key embeds the collection/source name in clear so
// prefix invalidation can purge per-dataset entries.
func (r *Request) fingerprint(version uint64, modelSeed int64) string {
	if r.Infer != nil {
		i := r.Infer
		fp := core.NewFingerprinter("infer").
			Str("source", i.Source).
			Int("from", int64(i.From)).
			Int("to", int64(i.To)).
			Str("udf", i.UDF).
			Str("label", i.Label).
			Str("text", i.Text).
			Int("seed", modelSeed).
			U64(version).
			Sum()
		return "q:" + i.Source + ":" + string(fp)
	}
	f := core.NewFingerprinter("query").Col(r.Collection, version)
	if q := r.KNN; q != nil {
		// All logical knn content: the field, k, metric (canonicalized),
		// the query vector or source patch, and the exactness contract.
		// UseIndex is physical (exact plans agree byte-for-byte; approx
		// admissibility is governed by Exact/RecallFloor, not the knob).
		metric := q.Metric
		if metric == "" {
			metric = "l2"
		}
		f.Str("knn.field", q.Field).
			Int("knn.k", int64(q.K)).
			Str("knn.metric", metric)
		if len(q.Query) > 0 {
			f.Value("knn.query", core.VecV(q.Query))
		} else {
			f.Int("knn.source", int64(q.SourceID))
		}
		if q.Exact {
			f.Int("knn.exact", 1)
		}
		if q.RecallFloor > 0 {
			f.Float("knn.recall_floor", q.RecallFloor)
		}
		if r.AllowPartial {
			f.Int("allow_partial", 1)
		}
		return "q:" + r.Collection + ":" + string(f.Sum())
	}
	if r.Filter != nil {
		f.Str("filter.field", r.Filter.Field)
		if r.Filter.isRange() {
			// Named tokens keep an absent bound distinct from any set one.
			if r.Filter.Min != nil {
				f.Float("filter.min", *r.Filter.Min)
			}
			if r.Filter.Max != nil {
				f.Float("filter.max", *r.Filter.Max)
			}
		} else {
			v, _ := r.Filter.value()
			f.Value("filter.eq", v)
		}
	}
	// Canonicalize before folding the output shape: similarity-join (and
	// distinct) requests return before the order/limit stage, so OrderBy/
	// Desc/Limit never influence their result. Folding them anyway would
	// fragment the cache — identical answers under distinct keys.
	orderBy, desc, limit := r.OrderBy, r.Desc, r.Limit
	if r.SimJoin != nil {
		orderBy, desc, limit = "", false, 0
		f.Str("sim.field", r.SimJoin.Field).
			Float("sim.eps", r.SimJoin.Eps).
			Int("sim.mincluster", int64(r.SimJoin.MinCluster))
	}
	if r.Distinct {
		f.Int("distinct", 1)
	}
	if r.AllowPartial {
		// A partial-tolerant request may legitimately return a different
		// (degraded) answer; never share a cache entry with strict ones.
		f.Int("allow_partial", 1)
	}
	if orderBy != "" {
		d := int64(0)
		if desc {
			d = 1
		}
		f.Str("order", orderBy).Int("desc", d)
	}
	if limit > 0 {
		f.Int("limit", int64(limit))
	}
	return "q:" + r.Collection + ":" + string(f.Sum())
}

// Response is one query's answer plus its serving metadata.
type Response struct {
	// Value is the scalar answer: row count, pair count, cluster count,
	// or matching-inference count, depending on the request shape.
	Value int `json:"value"`
	// Rows carries up to Limit projected result rows for plain filter
	// queries (scalar metadata only).
	Rows []map[string]any `json:"rows,omitempty"`

	Plan        string `json:"plan"`
	Fingerprint string `json:"fingerprint"`
	CacheHit    bool   `json:"cache_hit"`

	// EstCostSec is the optimizer's cold estimate for the chosen plan;
	// CacheAwareCostSec folds in the result cache's observed hit rate
	// (CostModel.CacheAwareCost), so a hot plan reports near-zero.
	EstCostSec        float64 `json:"est_cost_sec"`
	CacheAwareCostSec float64 `json:"cache_aware_cost_sec"`

	DurationMS float64 `json:"duration_ms"`

	// Degraded marks a partial result: every replica of the shards in
	// MissingShards failed, the request allowed partial results, and
	// Value/Rows cover only the surviving shards. Degraded responses are
	// never cached.
	Degraded      bool  `json:"degraded,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`

	// TraceID/TraceData carry the per-query trace when the request asked
	// for one ("trace": true). Always attached to a caller-private copy:
	// cached and coalesced responses are shared objects and are never
	// mutated.
	TraceID   string         `json:"trace_id,omitempty"`
	TraceData *obs.TraceData `json:"trace,omitempty"`
}

// sizeBytes estimates the response's cache footprint, including row
// values (string metadata can dominate the fixed row overhead).
func (r *Response) sizeBytes() int64 {
	size := int64(160) + int64(len(r.Plan)) + int64(len(r.Fingerprint))
	for _, row := range r.Rows {
		size += 48
		for k, v := range row {
			size += int64(len(k)) + valueBytes(v)
		}
	}
	return size
}

// valueBytes estimates one row value's in-memory footprint: the
// interface header plus its payload, recursing into containers. Flat
// 8-byte accounting undercounts values wider than a machine word —
// nested maps or slices surfaced via map[string]any, wide strings
// inside them — letting wide rows occupy the LRU nearly for free and
// evict honestly-accounted entries.
func valueBytes(v any) int64 {
	const header = 16 // interface value: type word + data word
	switch x := v.(type) {
	case nil:
		return header
	case string:
		return header + 16 + int64(len(x)) // string header + bytes
	case []any:
		n := int64(header + 24) // slice header
		for _, e := range x {
			n += valueBytes(e)
		}
		return n
	case map[string]any:
		n := int64(header + 48) // map header + bucket overhead
		for k, e := range x {
			n += 16 + int64(len(k)) + valueBytes(e)
		}
		return n
	default:
		return header + 8 // scalar payload (int64, float64, bool, ...)
	}
}
