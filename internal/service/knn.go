package service

// First-class kNN serving over the maintained vector indexes. The
// unsharded path plans once (brute scan vs exact ball tree vs
// approximate LSH, by size/dimensionality/recall target) and probes the
// collection's versioned VectorIndex; the sharded path scatters the
// probe — every shard answers its local top-k from its own shard-local
// index — and k-way merges the candidate streams at the gather stage,
// optionally re-verifying the merged pool's distances before the global
// trim. With one shard the fragment is the whole plan and the merge is
// the identity, so N=1 responses are byte-identical to the unsharded
// path — the same golden contract every other query shape honors.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// patchGetter resolves a patch id against whichever backend is serving
// (a single collection or the sharded set).
type patchGetter func(core.PatchID) (*core.Patch, error)

// knnQueryVec resolves the request's query vector: the inline vector,
// or the source patch's vector under the query field.
func knnQueryVec(spec *KNNSpec, get patchGetter) ([]float32, error) {
	if len(spec.Query) > 0 {
		return spec.Query, nil
	}
	p, err := get(core.PatchID(spec.SourceID))
	if err != nil {
		return nil, fmt.Errorf("service: knn source patch %d: %w", spec.SourceID, err)
	}
	mv, ok := p.Meta[spec.Field]
	if !ok || mv.Kind != core.KindVec {
		return nil, fmt.Errorf("service: knn source patch %d has no vector field %q", spec.SourceID, spec.Field)
	}
	return mv.V, nil
}

// knnCheckDim validates the query field and vector against the schema:
// the field must be a declared vector field, and the query must match
// its dimensionality when one is declared.
func knnCheckDim(schema core.Schema, field string, q []float32) error {
	fd := schema.FieldNamed(field)
	if fd == nil {
		return fmt.Errorf("service: knn field %q is not declared in the schema", field)
	}
	if fd.Kind != core.KindVec {
		return fmt.Errorf("service: knn field %q is not a vector field", field)
	}
	if fd.VecDim > 0 && len(q) != fd.VecDim {
		return fmt.Errorf("service: knn query vector on %q has dim %d, schema declares %d",
			field, len(q), fd.VecDim)
	}
	return nil
}

// knnLabel renders the physical plan operator.
func knnLabel(plan core.KNNPlan, spec *KNNSpec) string {
	if plan.Method == core.KNNIndex {
		return fmt.Sprintf("knn-index[%s](%s, k=%d)", plan.Mode, spec.Field, spec.K)
	}
	return fmt.Sprintf("knn-scan(%s, k=%d)", spec.Field, spec.K)
}

// knnProbe executes the planned probe over one collection snapshot. A
// source-patch query probes one extra neighbor and drops the source
// itself, so the source never appears in its own result.
func knnProbe(col *core.Collection, snap []*core.Patch, ver uint64, spec *KNNSpec, q []float32, plan core.KNNPlan) ([]core.VecNeighbor, error) {
	k := spec.K
	if spec.SourceID != 0 {
		k++
	}
	var ns []core.VecNeighbor
	if plan.Method == core.KNNIndex {
		vi, err := col.VectorIndexAt(snap, ver, spec.Field, plan.Mode)
		if err != nil {
			return nil, err
		}
		ns = vi.KNN(q, k)
	} else {
		ns = core.BruteKNN(snap, spec.Field, q, k)
	}
	if spec.SourceID != 0 {
		src := core.PatchID(spec.SourceID)
		kept := ns[:0]
		for _, n := range ns {
			if n.ID != src {
				kept = append(kept, n)
			}
		}
		ns = kept
	}
	if len(ns) > spec.K {
		ns = ns[:spec.K]
	}
	return ns, nil
}

// knnRows materializes the neighbor list as response rows: the usual
// scalar projection plus a _dist column with the (exact) distance.
func knnRows(ns []core.VecNeighbor, get patchGetter) ([]map[string]any, error) {
	ps := make([]*core.Patch, len(ns))
	for i, n := range ns {
		p, err := get(n.ID)
		if err != nil {
			return nil, err
		}
		ps[i] = p
	}
	rows := projectRows(ps)
	for i := range rows {
		rows[i]["_dist"] = ns[i].Dist
	}
	return rows, nil
}

// sortKNN orders neighbors canonically: ascending (distance, id).
func sortKNN(ns []core.VecNeighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// executeKNN serves a kNN request over the unsharded backend.
func (s *Service) executeKNN(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := req.KNN
	s.tel.knnQueries.Inc()
	col, err := s.db.Collection(req.Collection)
	if err != nil {
		return nil, err
	}
	snap, ver, err := col.Snapshot()
	if err != nil {
		return nil, err
	}
	q, err := knnQueryVec(spec, col.Get)
	if err != nil {
		return nil, err
	}
	if err := knnCheckDim(col.Schema(), spec.Field, q); err != nil {
		return nil, err
	}
	plan := s.cost.PlanKNN(len(snap), len(q), spec.K, spec.Exact, spec.RecallFloor, spec.UseIndex)
	probeStart := time.Now()
	ns, err := knnProbe(col, snap, ver, spec, q, plan)
	if err != nil {
		return nil, err
	}
	// Feed the probe's measured latency back into the planner (the same
	// observed-cost loop filters run through ObserveFilter).
	s.cost.ObserveKNN(plan.Method, plan.Mode, len(snap), len(q), spec.K, time.Since(probeStart))
	resp := &Response{Value: len(ns), EstCostSec: plan.EstCost}
	if resp.Rows, err = knnRows(ns, col.Get); err != nil {
		return nil, err
	}
	resp.Plan = knnLabel(plan, spec)
	return resp, nil
}

// knnFragment is one shard's partial kNN answer: its local top-k
// candidates with exact distances, plus the fragment's plan record.
type knnFragment struct {
	ns    []core.VecNeighbor
	label string
	cost  float64
	mode  core.VecIndexMode // index access mode; 0 on the scan path
}

// executeKNNScatter serves a kNN request over the sharded backend:
// plan-per-shard (each shard's snapshot has its own size), probe every
// shard's local index in parallel, k-way merge the candidate streams by
// (distance, id), and trim to the global k. When any shard answered
// approximately and more than one shard contributed, the merged pool's
// distances are re-verified against the stored vectors before the trim
// (the exact re-rank stage), so cross-shard ordering never depends on a
// fragment's internals.
func (s *Service) executeKNNScatter(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := req.KNN
	s.tel.knnQueries.Inc()
	scol, err := s.shards.Collection(req.Collection)
	if err != nil {
		return nil, err
	}
	nsh := scol.Shards()
	s.tel.scatterQueries.Inc()
	s.tel.fanout.Observe(float64(nsh))

	q, err := knnQueryVec(spec, scol.Get)
	if err != nil {
		return nil, err
	}
	if err := knnCheckDim(scol.Schema(), spec.Field, q); err != nil {
		return nil, err
	}

	// ---- scatter: per-shard planned probes against shard-local indexes ----
	frags := make([]*knnFragment, nsh)
	errs := make([]error, nsh)
	s.scatterWave(nsh, func(i int) error {
		sp := req.tr.Begin("knn-fragment")
		frags[i], errs[i] = s.knnShardProbe(ctx, scol, i, spec, q)
		sp.End()
		if f := frags[i]; f != nil {
			sp.AttrInt("shard", int64(i)).
				AttrInt("candidates", int64(len(f.ns))).
				Attr("path", f.label)
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var missing []int
	var shardErr error
	for i, e := range errs {
		if e != nil {
			missing = append(missing, i)
			if shardErr == nil {
				shardErr = fmt.Errorf("shard %d: %w", i, e)
			}
		}
	}
	if len(missing) > 0 && (!req.AllowPartial || len(missing) == nsh) {
		return nil, shardErr
	}
	if len(missing) > 0 {
		s.tel.degradedQueries.Inc()
	}

	// ---- gather: k-way merge by (distance, id), re-rank, global trim ----
	mergeStart := time.Now()
	mg := req.tr.Begin("knn-merge")
	resp := &Response{Degraded: len(missing) > 0, MissingShards: missing}
	var merged []core.VecNeighbor
	label := ""
	approx := false
	for _, frag := range frags {
		if frag == nil {
			continue
		}
		merged = append(merged, frag.ns...)
		resp.EstCostSec += frag.cost
		if label == "" {
			label = frag.label
		}
		if frag.mode == core.VecApprox {
			approx = true
		}
	}
	if nsh > 1 && approx {
		// Re-rank: re-verify every merged candidate's distance against its
		// stored vector before the global trim. Approximate fragments
		// already report exact distances, so this is a defensive identity
		// today — but it pins the contract that cross-shard ordering never
		// trusts a fragment's internals.
		rr := req.tr.Begin("knn-rerank")
		for i := range merged {
			p, err := scol.Get(merged[i].ID)
			if err != nil {
				rr.End()
				mg.End()
				return nil, err
			}
			if mv, ok := p.Meta[spec.Field]; ok && mv.Kind == core.KindVec && len(mv.V) == len(q) {
				merged[i].Dist = core.VecDist(mv.V, q)
			}
		}
		rr.AttrInt("candidates", int64(len(merged))).End()
	}
	sortKNN(merged)
	if len(merged) > spec.K {
		merged = merged[:spec.K]
	}
	resp.Value = len(merged)
	if resp.Rows, err = knnRows(merged, scol.Get); err != nil {
		mg.End()
		return nil, err
	}
	gather := "gather-knn"
	if nsh > 1 && approx {
		gather = "gather-knn(rerank)"
	}
	resp.Plan = s.scatterPlan(nsh, 0, []string{label}, gather)
	mg.Attr("gather", gather).AttrInt("rows", int64(len(resp.Rows))).End()
	s.mergeNS.Add(time.Since(mergeStart).Nanoseconds())
	return resp, nil
}

// knnShardProbe plans and runs shard i's fragment over its own snapshot
// and shard-local vector index. Fragment plans are made over the local
// row count, so with one shard the fragment's plan, label and cost are
// exactly the unsharded ones.
func (s *Service) knnShardProbe(ctx context.Context, scol *core.ShardedCollection, i int, spec *KNNSpec, q []float32) (*knnFragment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	col := scol.Shard(i)
	snap, ver, err := col.Snapshot()
	if err != nil {
		return nil, err
	}
	plan := s.cost.PlanKNN(len(snap), len(q), spec.K, spec.Exact, spec.RecallFloor, spec.UseIndex)
	probeStart := time.Now()
	ns, err := knnProbe(col, snap, ver, spec, q, plan)
	if err != nil {
		return nil, err
	}
	s.cost.ObserveKNN(plan.Method, plan.Mode, len(snap), len(q), spec.K, time.Since(probeStart))
	frag := &knnFragment{ns: ns, label: knnLabel(plan, spec), cost: plan.EstCost}
	if plan.Method == core.KNNIndex {
		frag.mode = plan.Mode
	}
	return frag, nil
}
