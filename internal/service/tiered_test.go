package service

import (
	"context"
	"testing"
)

// Tiered-column serving tests: a memory budget far below the column
// footprint must be invisible in every response byte — the spill tier
// is purely physical. The fixture is sized so every shard seals at
// least one block (rows/shard > core.ColumnBlockSize), so segments
// genuinely spill and reload under the budget.

// TestTieredBudgetGoldenEquivalence runs the full query matrix against
// a budgeted and an unbudgeted service over identical data, unsharded
// (N=1) and 3-way sharded, comparing values, rows, plan strings,
// fingerprints and cost estimates byte for byte.
func TestTieredBudgetGoldenEquivalence(t *testing.T) {
	const rows = 3*1024 + 300
	const budget = 32 << 10
	base := Config{Workers: 2}
	tiered := Config{Workers: 2, ColumnMemBudget: budget}
	ctx := context.Background()

	compare := func(name string, plain, budgeted *Service) {
		t.Helper()
		for qi, req := range queryMatrix() {
			pr, err := plain.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s q%d unbudgeted: %v", name, qi, err)
			}
			br, err := budgeted.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s q%d budgeted: %v", name, qi, err)
			}
			if pk, bk := goldenKey(t, pr), goldenKey(t, br); pk != bk {
				t.Fatalf("%s q%d diverges under memory budget:\n  unbudgeted: %s\n  budgeted:   %s", name, qi, pk, bk)
			}
		}
		st := budgeted.Stats()
		if st.SegmentSpills == 0 {
			t.Fatalf("%s: no segments spilled under a %d-byte budget", name, budget)
		}
		if st.SegmentResidentBytes > budget {
			t.Fatalf("%s: resident %d bytes over the %d budget", name, st.SegmentResidentBytes, budget)
		}
		if st.SegmentLoadFaults != 0 {
			t.Fatalf("%s: healthy store reported %d load faults", name, st.SegmentLoadFaults)
		}
		if st.Failed != 0 {
			t.Fatalf("%s: %d queries failed under budget", name, st.Failed)
		}
		if ust := plain.Stats(); ust.SegmentSpills != 0 || ust.ColumnMemBudget != 0 {
			t.Fatalf("%s: unbudgeted service engaged the spill tier: %+v", name, ust)
		}
	}

	_, plain := synthUnsharded(t, rows, base)
	_, budgeted := synthUnsharded(t, rows, tiered)
	compare("N=1", plain, budgeted)

	_, plainSh := synthSharded(t, 3, rows, base)
	_, budgetedSh := synthSharded(t, 3, rows, tiered)
	compare("N=3", plainSh, budgetedSh)
}
