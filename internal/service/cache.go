package service

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// CacheStats is a cache's cumulative activity record, exposed via /stats.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Evictions   int64 `json:"evictions"`   // capacity pressure
	Expirations int64 `json:"expirations"` // TTL lapses observed on Get
	Invalidated int64 `json:"invalidated"` // explicit prefix invalidation
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	CapBytes    int64 `json:"cap_bytes"`
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key     string
	val     any
	bytes   int64
	expires time.Time // zero = never
}

// Cache is a thread-safe LRU cache with byte-budget accounting and
// optional TTL expiry. It backs both the plan-keyed result cache and the
// UDF materialization cache (it satisfies vision.MemoCache). Entries are
// evicted least-recently-used when the byte budget is exceeded; expired
// entries are dropped lazily on access.
type Cache struct {
	mu  sync.Mutex
	cap int64
	ttl time.Duration // zero = no expiry
	now func() time.Time

	ll    *list.List // front = most recently used; values are *cacheEntry
	index map[string]*list.Element
	bytes int64

	hits, misses, puts, evictions, expirations, invalidated int64
}

// NewCache builds a cache holding at most capBytes of accounted value
// bytes; entries older than ttl expire (ttl <= 0 disables expiry).
func NewCache(capBytes int64, ttl time.Duration) *Cache {
	if capBytes < 1 {
		capBytes = 1
	}
	return &Cache{
		cap:   capBytes,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		index: make(map[string]*list.Element),
	}
}

// Get returns the value under key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expirations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.val, true
}

// Put stores val under key with the given size estimate, evicting LRU
// entries until the byte budget holds. A value larger than the whole
// budget is not cached.
func (c *Cache) Put(key string, val any, bytes int64) {
	if bytes < 1 {
		bytes = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if bytes > c.cap {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes, e.expires = val, bytes, expires
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, val: val, bytes: bytes, expires: expires})
		c.index[key] = el
		c.bytes += bytes
	}
	for c.bytes > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// InvalidatePrefix drops every entry whose key starts with prefix (the
// stale-data hook: result keys embed the collection name, so re-ingesting
// a dataset can purge its cached results eagerly). Returns the number of
// entries dropped.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if strings.HasPrefix(el.Value.(*cacheEntry).key, prefix) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
	}
	c.invalidated += int64(len(doomed))
	return len(doomed)
}

// Flush drops every entry, keeping counters.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.index = make(map[string]*list.Element)
	c.bytes = 0
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.bytes
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Evictions: c.evictions, Expirations: c.expirations, Invalidated: c.invalidated,
		Entries: c.ll.Len(), Bytes: c.bytes, CapBytes: c.cap,
	}
}

// setClock injects a fake clock (tests).
func (c *Cache) setClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
