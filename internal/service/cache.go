package service

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// CacheStats is a cache's cumulative activity record, exposed via /stats.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Evictions   int64 `json:"evictions"`   // capacity pressure
	Expirations int64 `json:"expirations"` // TTL lapses observed on Get
	Invalidated int64 `json:"invalidated"` // explicit prefix invalidation
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	CapBytes    int64 `json:"cap_bytes"`
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key     string
	val     any
	bytes   int64
	expires time.Time // zero = never
}

// Cache is a thread-safe LRU cache with byte-budget accounting and
// optional TTL expiry. It backs both the plan-keyed result cache and the
// UDF materialization cache (it satisfies vision.MemoCache). Entries are
// evicted least-recently-used when the byte budget is exceeded; expired
// entries are dropped lazily on access.
type Cache struct {
	mu  sync.Mutex
	cap int64
	ttl time.Duration // zero = no expiry
	now func() time.Time

	ll    *list.List // front = most recently used; values are *cacheEntry
	index map[string]*list.Element
	bytes int64

	hits, misses, puts, evictions, expirations, invalidated int64

	// families tracks hit/miss per key family (the key up to and
	// including its last ':' — "q:<collection>:" for result keys), so
	// admission can price a request by how often ITS collection hits
	// rather than the cache-wide average. Bounded; see maxCacheFamilies.
	families map[string]*familyStat
}

// familyStat is one key family's hit/miss record.
type familyStat struct {
	hits, misses int64
}

// maxCacheFamilies bounds the per-family stats map: past this many
// distinct families new ones go untracked (FamilyHitRate returns the
// cache-wide rate for them) rather than growing without bound.
const maxCacheFamilies = 1024

// familyOf derives a key's family: everything up to and including the
// last ':' ("" when the key has none — those keys share one family).
func familyOf(key string) string {
	if i := strings.LastIndexByte(key, ':'); i >= 0 {
		return key[:i+1]
	}
	return ""
}

func (c *Cache) noteFamilyLocked(key string, hit bool) {
	fam := familyOf(key)
	st, ok := c.families[fam]
	if !ok {
		if len(c.families) >= maxCacheFamilies {
			return
		}
		st = &familyStat{}
		c.families[fam] = st
	}
	if hit {
		st.hits++
	} else {
		st.misses++
	}
}

// FamilyHitRate returns the observed hit rate of one key family (e.g.
// "q:traffic.dets:"), falling back to the cache-wide rate for families
// with no record yet.
func (c *Cache) FamilyHitRate(family string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.families[family]; ok && st.hits+st.misses > 0 {
		return float64(st.hits) / float64(st.hits+st.misses)
	}
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// NewCache builds a cache holding at most capBytes of accounted value
// bytes; entries older than ttl expire (ttl <= 0 disables expiry).
func NewCache(capBytes int64, ttl time.Duration) *Cache {
	if capBytes < 1 {
		capBytes = 1
	}
	return &Cache{
		cap:      capBytes,
		ttl:      ttl,
		now:      time.Now,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
		families: make(map[string]*familyStat),
	}
}

// Get returns the value under key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		c.noteFamilyLocked(key, false)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expirations++
		c.misses++
		c.noteFamilyLocked(key, false)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	c.noteFamilyLocked(key, true)
	return e.val, true
}

// Put stores val under key with the given size estimate, evicting LRU
// entries until the byte budget holds. A value larger than the whole
// budget is not cached.
func (c *Cache) Put(key string, val any, bytes int64) {
	if bytes < 1 {
		bytes = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if bytes > c.cap {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes, e.expires = val, bytes, expires
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, val: val, bytes: bytes, expires: expires})
		c.index[key] = el
		c.bytes += bytes
	}
	for c.bytes > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// InvalidatePrefix drops every entry whose key starts with prefix (the
// stale-data hook: result keys embed the collection name, so re-ingesting
// a dataset can purge its cached results eagerly). Returns the number of
// entries dropped.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if strings.HasPrefix(el.Value.(*cacheEntry).key, prefix) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
	}
	c.invalidated += int64(len(doomed))
	return len(doomed)
}

// Flush drops every entry, keeping counters.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.index = make(map[string]*list.Element)
	c.bytes = 0
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.bytes
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Evictions: c.evictions, Expirations: c.expirations, Invalidated: c.invalidated,
		Entries: c.ll.Len(), Bytes: c.bytes, CapBytes: c.cap,
	}
}

// setClock injects a fake clock (tests).
func (c *Cache) setClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
