package service

// The anti-entropy loop: the service-side driver that turns
// core.Sharded's replica re-sync engine into self-healing. Every
// ResyncInterval it sweeps the out-of-sync list and repairs each
// demoted replica via core's two-phase suffix stream. A replica whose
// repair fails (injected resync-error faults, real storage trouble)
// backs off exponentially with jitter — a wedged replica must not turn
// the loop into a hot retry spin — and re-enters the normal cadence on
// its next success. The loop owns no correctness: ResyncReplica is
// safe to call at any time, refuses concurrent repairs of the same
// replica, and promotes only byte-verified state.

import (
	"context"
	"math/rand/v2"
	"time"
)

const (
	// defaultResyncInterval is the anti-entropy sweep cadence when
	// Config.ResyncInterval is zero.
	defaultResyncInterval = 200 * time.Millisecond
	// resyncBackoffMax caps the per-replica retry backoff.
	resyncBackoffMax = 30 * time.Second
)

// replicaKey identifies one replica's backoff state.
type replicaKey struct{ shard, replica int }

// runAntiEntropy is the background repair loop; it exits when the
// service closes. Started only for replicated sharded backends.
func (s *Service) runAntiEntropy(interval time.Duration) {
	defer s.wg.Done()
	// Repairs must abandon their streams promptly on Close: derive a
	// context that dies with s.quit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-s.quit:
			cancel()
		case <-ctx.Done():
		}
	}()

	backoff := make(map[replicaKey]time.Duration) // failed replicas' current delay
	next := make(map[replicaKey]time.Time)        // earliest next attempt
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for _, lag := range s.shards.OutOfSyncReplicas() {
			if lag.Resyncing {
				continue
			}
			k := replicaKey{lag.Shard, lag.Replica}
			if t, ok := next[k]; ok && now.Before(t) {
				continue
			}
			if _, err := s.shards.ResyncReplica(ctx, lag.Shard, lag.Replica); err != nil {
				// Exponential backoff with jitter: double the delay (from
				// one interval) and scatter attempts across [1x, 1.5x] so
				// replicas failing in lockstep don't retry in lockstep.
				d := backoff[k]
				if d <= 0 {
					d = interval
				} else {
					d *= 2
				}
				if d > resyncBackoffMax {
					d = resyncBackoffMax
				}
				backoff[k] = d
				next[k] = now.Add(d + time.Duration(rand.Int64N(int64(d/2)+1)))
				continue
			}
			delete(backoff, k)
			delete(next, k)
		}
	}
}
