// Package service is DeepLens's concurrent query-serving subsystem: a
// thread-safe, embeddable layer that wraps the catalog, cost-based
// optimizer and execution devices behind a Service type. It adds what a
// single-caller library lacks for production traffic:
//
//   - a bounded worker pool with an admission queue, so N concurrent
//     callers execute plans in parallel without oversubscribing the
//     simulated devices (workers hold device leases; with Config.Devices
//     below Workers, several workers share one device through a
//     kernel-coalescing exec.Batcher that fuses concurrent queries'
//     kernels into one launch, amortizing GPU launch overhead across
//     requests);
//   - an LRU+TTL result cache keyed by a canonical plan fingerprint
//     (dataset version + operator tree + parameters) with byte
//     accounting and hit/miss/eviction metrics;
//   - a UDF materialization cache memoizing per-frame inference outputs
//     (detect/embed/ocr), the paper's core argument applied across
//     queries: inference is computed once, reused forever;
//   - in-flight request coalescing (identical cold queries run once);
//   - cache-aware plan costing: reported costs fold in the observed hit
//     rate via CostModel.CacheAwareCost;
//   - scatter-gather execution over a horizontally partitioned backend
//     (NewSharded over core.Sharded): the plan is made once, its
//     fragment runs on every shard in parallel on shard-pinned batcher
//     devices, and partial results merge at the service layer — counts
//     sum, ordered top-k rows k-way heap-merge, similarity joins fan
//     out one task per shard pair and re-cluster at the gather stage.
//
// The cmd/deeplens-serve binary exposes it over HTTP JSON.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vision"
)

// Service errors.
var (
	// ErrOverloaded reports admission-queue overflow: the caller should
	// back off and retry (HTTP 429).
	ErrOverloaded = errors.New("service: admission queue full")
	// ErrClosed reports a query against a closed service.
	ErrClosed = errors.New("service: closed")
	// ErrQueryTimeout reports a query that exceeded the server-side
	// deadline (Config.QueryTimeout or the request's TimeoutMS): the
	// result was abandoned, the caller may retry (HTTP 504). Client
	// cancellation is NOT mapped here — a caller that gave up keeps its
	// own context error.
	ErrQueryTimeout = errors.New("service: query deadline exceeded")
)

// DefaultModelSeed fixes UDF model weights when Config.ModelSeed is zero
// (matches the benchmark environment's seed).
const DefaultModelSeed = 42

// FrameSource renders frames for inference sweeps. Implementations must
// be safe for concurrent use (the dataset generators render
// deterministically from immutable scene state).
type FrameSource interface {
	// Frames returns the number of renderable frames.
	Frames() int
	// Render draws frame t.
	Render(t int) (*codec.Image, error)
}

// Config parameterizes a Service. Zero values select sensible defaults.
type Config struct {
	// Workers is the executor pool size (default: min(NumCPU, 16)).
	Workers int
	// QueueDepth bounds the admission queue beyond the workers
	// (default 64). A full queue rejects with ErrOverloaded.
	QueueDepth int
	// Device is the execution backend each worker leases (default CPU).
	Device exec.Kind
	// Devices sets how many physical devices back the worker pool
	// (default: one per worker, exclusive leases). Setting Devices below
	// Workers shares each device among Workers/Devices workers through a
	// kernel-coalescing exec.Batcher, which fuses concurrent queries'
	// GEMM/pairwise kernels into one launch per flush window — the
	// cross-request analog of within-query batching, amortizing the
	// simulated GPU's launch overhead. Fusion buys nothing on CPU/AVX
	// (the batcher passes through).
	Devices int
	// BatchMaxKernels and BatchWindow tune the per-device batcher's flush
	// policy (zero values pick exec.BatcherConfig defaults). With the
	// default window the service runs the batcher's adaptive flush:
	// partial batches launch as soon as every mid-query submitter is
	// blocked and the admission queue is empty, so a lightly-loaded
	// service never pays the deadline wait. An explicit BatchWindow is
	// honored strictly (pure size/deadline policy).
	BatchMaxKernels int
	BatchWindow     time.Duration
	// ResultCacheBytes budgets the plan-keyed result cache (default 32 MiB).
	ResultCacheBytes int64
	// ResultTTL expires cached results (default 5m; negative disables
	// expiry).
	ResultTTL time.Duration
	// UDFCacheBytes budgets the inference materialization cache
	// (default 128 MiB).
	UDFCacheBytes int64
	// ModelSeed fixes UDF weights (default DefaultModelSeed).
	ModelSeed int64
	// SlowQueryThreshold records queries at or over this duration in the
	// in-memory slow-query log served at /debug/slow (default 250ms;
	// negative disables the log).
	SlowQueryThreshold time.Duration
	// SlowLogEntries bounds the slow-query ring buffer (default 64).
	SlowLogEntries int
	// TraceSample captures full span traces for this fraction of
	// queries even without an explicit "trace": true request (0 = only
	// explicit traces; 1 = every query). Sampled traces feed the
	// slow-query log; explicit traces are additionally returned on the
	// response.
	TraceSample float64
	// QueryTimeout bounds each query's wall time server-side (0 = no
	// deadline, today's behavior; a request's timeout_ms overrides).
	// An exceeded deadline fails the query with ErrQueryTimeout
	// (HTTP 504) — unless the request set allow_partial, in which case
	// fragments are cut slightly early and the shards that made it in
	// time still answer.
	QueryTimeout time.Duration
	// HedgeAfter is the fragment latency budget before a scatter
	// fragment is hedged to another in-sync replica (first response
	// wins, loser canceled). Used until enough fragments have been
	// observed to derive the budget from the live p99 (default 25ms;
	// negative disables hedging). Only effective with > 1 replica.
	HedgeAfter time.Duration
	// ResyncInterval is the anti-entropy sweep cadence: how often the
	// background repair loop checks for demoted replicas and re-syncs
	// them (default 200ms; negative disables the loop). Failed repairs
	// back off exponentially per replica regardless of the cadence.
	// Only effective with a replicated sharded backend.
	ResyncInterval time.Duration
	// Faults arms the deterministic fault-injection failpoints in the
	// scatter/append/resync paths (chaos tests, `deeplens-serve -fault`).
	// Zero value: no faults.
	Faults fault.Config
	// ColumnMemBudget enables the tiered column store: sealed column
	// segments spill through the kv pager and at most this many bytes of
	// them stay resident (LRU-evicted beyond it; zone maps and null
	// summaries always stay in memory, so pruned scans never fault cold
	// segments). Results are byte-identical to the in-memory store at
	// any budget. 0 (default) keeps columns purely in memory; negative
	// spills for restart-warm columns but never evicts.
	ColumnMemBudget int64
}

// withDefaults resolves zero values. shards is the backing partition
// count (1 for an unsharded DB): it raises the device ceiling, since a
// scattered query runs up to one kernel-submitting fragment per shard
// per worker.
func (c Config) withDefaults(shards int) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 16 {
			c.Workers = 16
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	maxDevices := c.Workers * shards
	if c.Devices <= 0 {
		c.Devices = c.Workers
	}
	if c.Devices > maxDevices {
		c.Devices = maxDevices
	}
	if c.ResultCacheBytes <= 0 {
		c.ResultCacheBytes = 32 << 20
	}
	switch {
	case c.ResultTTL == 0:
		c.ResultTTL = 5 * time.Minute
	case c.ResultTTL < 0:
		c.ResultTTL = 0 // never expire
	}
	if c.UDFCacheBytes <= 0 {
		c.UDFCacheBytes = 128 << 20
	}
	if c.ModelSeed == 0 {
		c.ModelSeed = DefaultModelSeed
	}
	switch {
	case c.SlowQueryThreshold == 0:
		c.SlowQueryThreshold = 250 * time.Millisecond
	case c.SlowQueryThreshold < 0:
		c.SlowQueryThreshold = 0 // slow log disabled
	}
	if c.SlowLogEntries <= 0 {
		c.SlowLogEntries = 64
	}
	switch {
	case c.HedgeAfter == 0:
		c.HedgeAfter = 25 * time.Millisecond
	case c.HedgeAfter < 0:
		c.HedgeAfter = 0 // hedging disabled
	}
	switch {
	case c.ResyncInterval == 0:
		c.ResyncInterval = defaultResyncInterval
	case c.ResyncInterval < 0:
		c.ResyncInterval = 0 // anti-entropy loop disabled
	}
	return c
}

// task is one admitted query awaiting a worker.
type task struct {
	ctx   context.Context
	req   *Request
	key   string    // result-cache key ("" = uncacheable)
	enq   time.Time // admission time (queue-wait telemetry)
	class string    // admission class (filter/join/knn/infer)
	cost  float64   // priced cost at admission, in estimated seconds
	resp  *Response
	err   error
	done  chan struct{}
}

// flight is an in-progress computation identical cold queries coalesce on.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// worker is one executor: a (possibly shared, batcher-fronted) device
// plus memoized UDF models bound to it.
type worker struct {
	id  int
	dev *exec.Batcher // kernel scheduler over the leased device
	det *vision.MemoDetector
	emb *vision.MemoEmbedder
	ocr *vision.MemoOCR
}

// Service is the concurrent query-serving layer over one DB or a
// sharded set of DBs (scatter-gather execution; see NewSharded).
type Service struct {
	db       *core.DB      // unsharded backend (nil when sharded)
	shards   *core.Sharded // sharded backend (nil when unsharded)
	cfg      Config
	cost     *core.CostModel
	start    time.Time
	adaptive bool // default flush window: track submitters for idle flush

	results *Cache // plan fingerprint -> *Response
	udfMemo *Cache // image key -> inference output

	devPool  *exec.Pool
	batchers []*exec.Batcher // one kernel scheduler per leased device
	queue    chan *task
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	srcMu   sync.RWMutex
	sources map[string]FrameSource

	flightMu sync.Mutex
	inflight map[string]*flight

	buildMu sync.Mutex
	builds  map[string]*sync.Mutex // per-(col,field,kind) index-build locks

	// tel owns the metrics registry (the serving counters live there as
	// registry-backed obs.Counters), the slow-query log, and the trace
	// sampler; /metrics and /stats read the same source.
	tel *telemetry

	// inj evaluates the armed fault-injection failpoints on the scatter
	// and join paths (nil = disabled, one pointer compare per site).
	inj *fault.Injector

	// adm is the adaptive cost-classed admission gate fronting the
	// worker queue and the inline append path.
	adm *admission

	// segCache is the tiered column store's byte-budgeted residency
	// cache, installed on every backing DB when Config.ColumnMemBudget
	// enables tiering (nil otherwise). /stats and /metrics read its
	// spill/load/eviction counters.
	segCache *core.SegmentCache

	inFlight, peakInFlight atomic.Int64

	// statsMu makes (queue depth, in-flight count) observable as one
	// consistent pair: enqueue/dequeue update the in-flight counter while
	// holding it, and Stats reads both under it. Without this, /stats
	// could report a task as neither queued nor in flight (or both).
	statsMu sync.Mutex

	mergeNS atomic.Int64 // cumulative scatter gather/merge wall time
}

// New starts a service over db with cfg.Workers executors. Close releases
// the pool.
func New(db *core.DB, cfg Config) (*Service, error) {
	if db == nil {
		return nil, errors.New("service: nil db")
	}
	return buildService(db, nil, cfg)
}

// NewSharded starts a service over a horizontally partitioned database.
// Collection queries execute scatter-gather: the plan is made once, its
// fragment runs on every shard in parallel — each shard pinned to its
// own batcher-fronted device, so sharding composes with cross-request
// kernel fusion — and the partial results merge at the service layer
// (concatenation for filters, a k-way heap merge for ordered top-k,
// re-clustering for distinct, pairwise cross-shard tasks for similarity
// joins). With one shard, execution is byte-identical to New over the
// same data.
func NewSharded(sdb *core.Sharded, cfg Config) (*Service, error) {
	if sdb == nil || sdb.NumShards() < 1 {
		return nil, errors.New("service: nil or empty sharded db")
	}
	return buildService(nil, sdb, cfg)
}

func buildService(db *core.DB, sdb *core.Sharded, cfg Config) (*Service, error) {
	nshards := 1
	if sdb != nil {
		nshards = sdb.NumShards()
	}
	cfg = cfg.withDefaults(nshards)
	s := &Service{
		db:       db,
		shards:   sdb,
		cfg:      cfg,
		adaptive: cfg.BatchWindow == 0,
		cost:     core.DefaultCostModel(),
		start:    time.Now(),
		results:  NewCache(cfg.ResultCacheBytes, cfg.ResultTTL),
		udfMemo:  NewCache(cfg.UDFCacheBytes, 0),
		devPool:  exec.NewPool(cfg.Device, cfg.Devices),
		queue:    make(chan *task, cfg.QueueDepth),
		quit:     make(chan struct{}),
		sources:  make(map[string]FrameSource),
		inflight: make(map[string]*flight),
		builds:   make(map[string]*sync.Mutex),
	}
	s.inj = fault.New(cfg.Faults)
	if sdb != nil {
		sdb.SetFaults(s.inj)
	}
	// One cost model across the service and every backing DB: observed
	// filter latencies feed the same state that PlanFilter, admission
	// pricing and /stats cost estimates all read from.
	if db != nil {
		db.SetCostModel(s.cost)
	}
	if sdb != nil {
		sdb.SetCostModel(s.cost)
	}
	// Tiered columns: one segment cache across every backing DB, so the
	// budget bounds total column residency service-wide (negative budget
	// = spill without eviction).
	if cfg.ColumnMemBudget != 0 {
		budget := cfg.ColumnMemBudget
		if budget < 0 {
			budget = 0
		}
		s.segCache = core.NewSegmentCache(budget)
		if db != nil {
			db.SetSegmentCache(s.segCache)
		}
		if sdb != nil {
			sdb.SetSegmentCache(s.segCache)
		}
	}
	s.adm = newAdmission(cfg.Workers, cfg.QueueDepth)
	s.tel = newTelemetry(s, cfg)
	// Lease every device for the service's lifetime and front each with a
	// kernel batcher. Workers are assigned round-robin: with Devices ==
	// Workers this degenerates to PR-1's exclusive leases (a batch of one
	// submitter); with fewer devices, co-resident workers' kernels fuse.
	s.batchers = make([]*exec.Batcher, cfg.Devices)
	for i := range s.batchers {
		bcfg := exec.BatcherConfig{MaxBatch: cfg.BatchMaxKernels, Window: cfg.BatchWindow}
		if bcfg.MaxBatch == 0 {
			// A blocked submitter holds at most one pending kernel, so a
			// batch can never exceed the submitters sharing this device:
			// default MaxBatch to exactly that count (round-robin gives
			// device i one extra worker when i < Workers%Devices), so
			// flush-on-size fires as soon as every co-worker's kernel has
			// arrived instead of waiting out the window. With one worker
			// per device that is an eager MaxBatch of 1 — PR-1's
			// exclusive-lease behavior. Under scatter-gather each worker
			// fans out up to nshards kernel-submitting fragments, so the
			// per-device submitter bound scales by the shard count (capped:
			// the adaptive idle flush releases partial batches early, but
			// MaxBatch still bounds worst-case queuing delay).
			if nshards > 1 {
				// Sharded: total concurrent kernel-submitting fragments are
				// bounded by Workers*shards, spread round-robin over the
				// devices (Devices may exceed Workers here).
				bcfg.MaxBatch = (cfg.Workers*nshards + cfg.Devices - 1) / cfg.Devices
				if bcfg.MaxBatch > 16 {
					bcfg.MaxBatch = 16
				}
			} else {
				bcfg.MaxBatch = cfg.Workers / cfg.Devices
				if i < cfg.Workers%cfg.Devices {
					bcfg.MaxBatch++
				}
			}
			if bcfg.MaxBatch < 1 {
				bcfg.MaxBatch = 1
			}
		}
		s.batchers[i] = exec.NewBatcher(s.devPool.Acquire(), bcfg)
		// Admitted-but-unclaimed tasks become submitters the moment a
		// worker dequeues them: hold partial batches while the queue is
		// non-empty so imminent kernels can still fuse.
		s.batchers[i].SetIdleProbe(func() bool { return len(s.queue) == 0 })
	}
	ns := fmt.Sprintf("seed%d", cfg.ModelSeed)
	for i := 0; i < cfg.Workers; i++ {
		dev := s.batchers[i%cfg.Devices]
		w := &worker{
			id:  i,
			dev: dev,
			det: vision.NewMemoDetector(vision.NewDetector(dev, cfg.ModelSeed), ns, s.udfMemo),
			emb: vision.NewMemoEmbedder(vision.NewEmbedder(dev, cfg.ModelSeed), ns, s.udfMemo),
			ocr: vision.NewMemoOCR(vision.NewDocumentOCR(), "doc", s.udfMemo),
		}
		s.wg.Add(1)
		go s.run(w)
	}
	// Self-healing: with replicated shards, the anti-entropy loop
	// repairs demoted replicas in the background so a fault's blast
	// radius is one repair interval of reduced hedge headroom, not a
	// restart.
	if sdb != nil && sdb.Replicas() > 1 && cfg.ResyncInterval > 0 {
		s.wg.Add(1)
		go s.runAntiEntropy(cfg.ResyncInterval)
	}
	return s, nil
}

// Close drains the pool and releases every device lease. In-flight
// waiters receive ErrClosed.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.quit)
	s.wg.Wait()
	for _, b := range s.batchers {
		s.devPool.Release(b.Device())
	}
}

// RegisterSource makes a frame source available to inference sweeps
// under the given name.
func (s *Service) RegisterSource(name string, src FrameSource) {
	s.srcMu.Lock()
	s.sources[name] = src
	s.srcMu.Unlock()
}

func (s *Service) source(name string) FrameSource {
	s.srcMu.RLock()
	defer s.srcMu.RUnlock()
	return s.sources[name]
}

// InvalidateCollection eagerly drops cached results over the named
// collection (or source). Version-keyed fingerprints already make stale
// hits impossible after re-ingest; this reclaims the bytes immediately.
func (s *Service) InvalidateCollection(name string) int {
	return s.results.InvalidatePrefix("q:" + name + ":")
}

// FlushCaches empties both caches (benchmark cold starts).
func (s *Service) FlushCaches() {
	s.results.Flush()
	s.udfMemo.Flush()
}

// fingerprintFor resolves the request's cache key against the live
// catalog (collection version for queries, source identity for sweeps).
func (s *Service) fingerprintFor(req *Request) (string, error) {
	if req.Infer != nil {
		return req.fingerprint(0, s.cfg.ModelSeed), nil
	}
	if s.shards != nil {
		scol, err := s.shards.Collection(req.Collection)
		if err != nil {
			return "", err
		}
		// The composite version folds every shard's version, so a write
		// to a single shard invalidates exactly like an unsharded append.
		return req.fingerprint(scol.Version(), s.cfg.ModelSeed), nil
	}
	col, err := s.db.Collection(req.Collection)
	if err != nil {
		return "", err
	}
	return req.fingerprint(col.Version(), s.cfg.ModelSeed), nil
}

// Query executes one request: result-cache lookup, in-flight coalescing,
// bounded admission, parallel execution on a leased device. It blocks
// until the result is ready, ctx is done, or the service closes.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Server-side deadline: Config.QueryTimeout, overridable per request.
	// Exceeding it surfaces as ErrQueryTimeout (HTTP 504) — but only when
	// the caller's own context is still live, so a client that hung up
	// keeps its own cancellation error.
	parent := ctx
	timeout := s.cfg.QueryTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	// tr is nil for untraced queries; every span operation on it is a
	// no-op branch, keeping the hot path's instrumentation cost at two
	// clock reads plus one histogram observe.
	tr := s.tel.startTrace(&req)
	req.tr = tr
	resp, err := s.doQuery(ctx, &req, tr)
	if err != nil {
		if timeout > 0 && parent.Err() == nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded)) {
			return nil, ErrQueryTimeout
		}
		return nil, err
	}
	return s.tel.finishQuery(resp, &req, tr, time.Since(start)), nil
}

// doQuery is Query's cache/coalesce/admit pipeline.
func (s *Service) doQuery(ctx context.Context, req *Request, tr *obs.Trace) (*Response, error) {
	var key string
	if !req.NoCache {
		plan := tr.Begin("plan")
		var err error
		if key, err = s.fingerprintFor(req); err != nil {
			plan.End()
			return nil, err
		}
		if v, ok := s.results.Get(key); ok {
			plan.Attr("cache", "hit").End()
			resp := cachedResponse(v.(*Response), s)
			plan.Attr("plan", resp.Plan)
			return resp, nil
		}
		// Coalesce identical cold queries onto one execution.
		s.flightMu.Lock()
		if fl, ok := s.inflight[key]; ok {
			s.flightMu.Unlock()
			s.tel.coalesced.Inc()
			plan.Attr("cache", "coalesced").End()
			select {
			case <-fl.done:
				if fl.err != nil {
					return nil, fl.err
				}
				resp := cachedResponse(fl.resp, s)
				plan.Attr("plan", resp.Plan)
				return resp, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-s.quit:
				return nil, ErrClosed
			}
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.flightMu.Unlock()
		plan.Attr("cache", "miss").End()
		t, err := s.enqueue(ctx, req, key)
		if err != nil {
			s.finishFlight(key, fl, nil, err)
			return nil, err
		}
		// The worker, not the leader's context, completes the flight: a
		// leader that gives up must not fail coalesced waiters whose own
		// contexts are still live.
		go func() {
			select {
			case <-t.done:
				s.finishFlight(key, fl, t.resp, t.err)
			case <-s.quit:
				s.finishFlight(key, fl, nil, ErrClosed)
			}
		}()
		select {
		case <-fl.done:
			if fl.resp != nil {
				plan.Attr("plan", fl.resp.Plan)
			}
			return fl.resp, fl.err
		case <-ctx.Done():
			return nil, ctx.Err() // the worker still completes it; result is cached
		case <-s.quit:
			return nil, ErrClosed
		}
	}
	plan := tr.Begin("plan")
	plan.Attr("cache", "bypass").End()
	resp, err := s.admit(ctx, req, "")
	if err == nil {
		plan.Attr("plan", resp.Plan)
	}
	return resp, err
}

// finishFlight publishes an in-flight computation's outcome exactly once.
func (s *Service) finishFlight(key string, fl *flight, resp *Response, err error) {
	fl.resp, fl.err = resp, err
	s.flightMu.Lock()
	delete(s.inflight, key)
	s.flightMu.Unlock()
	close(fl.done)
}

// enqueue runs the adaptive admission gate and, if the request passes,
// places the task on the worker queue. Rejections are typed
// *OverloadError (unwrapping to ErrOverloaded): a hard rejection when
// the channel is physically full, a cost-based shed when the queue has
// crossed its drain-rate-derived effective depth and this request
// prices as expensive. Cheap requests keep admitting past the soft
// watermark — under pressure the service degrades by shedding the work
// that would hold the queue longest.
func (s *Service) enqueue(ctx context.Context, req *Request, key string) (*task, error) {
	class, cost := s.priceQuery(req, key)
	t := &task{
		ctx: ctx, req: req, key: key, enq: time.Now(),
		class: class, cost: cost, done: make(chan struct{}),
	}
	// The queue send and the in-flight increment happen under statsMu so
	// Stats observes them as one event (a task is never visible in the
	// queue without being counted in flight, or vice versa).
	s.statsMu.Lock()
	queued := len(s.queue)
	if queued >= s.adm.effectiveDepth() && cost >= expensiveCostFloorSec {
		s.statsMu.Unlock()
		s.tel.rejected.Inc()
		s.tel.admissionShed.Inc()
		return nil, &OverloadError{RetryAfter: s.adm.retryAfter(queued), Class: class, Shed: true}
	}
	select {
	case s.queue <- t:
		n := s.inFlight.Add(1)
		s.statsMu.Unlock()
		s.adm.noteQueued(cost)
		for {
			peak := s.peakInFlight.Load()
			if n <= peak || s.peakInFlight.CompareAndSwap(peak, n) {
				break
			}
		}
		s.tel.admitted.Inc()
		return t, nil
	default:
		s.statsMu.Unlock()
		s.tel.rejected.Inc()
		return nil, &OverloadError{RetryAfter: s.adm.retryAfter(queued), Class: class}
	}
}

// admit enqueues the task and waits for its completion.
func (s *Service) admit(ctx context.Context, req *Request, key string) (*Response, error) {
	t, err := s.enqueue(ctx, req, key)
	if err != nil {
		return nil, err
	}
	select {
	case <-t.done:
		return t.resp, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.quit:
		return nil, ErrClosed
	}
}

// run is a worker's executor loop. The worker's device is a shared
// batcher; its lease is released by Close, not here.
func (s *Service) run(w *worker) {
	defer s.wg.Done()
	for {
		select {
		case t := <-s.queue:
			s.process(w, t)
		case <-s.quit:
			return
		}
	}
}

func (s *Service) process(w *worker, t *task) {
	s.adm.noteDequeued(t.cost)
	defer func() {
		s.statsMu.Lock()
		s.inFlight.Add(-1)
		s.statsMu.Unlock()
	}()
	// An uncacheable task whose caller already gave up has no one to
	// deliver to and nothing to materialize — don't burn a device on it.
	// Cacheable tasks still run: the result serves coalesced waiters and
	// future fingerprint hits.
	if t.key == "" && t.ctx != nil && t.ctx.Err() != nil {
		s.tel.failed.Inc()
		t.err = t.ctx.Err()
		close(t.done)
		return
	}
	start := time.Now()
	wait := start.Sub(t.enq)
	s.tel.queueWait.Observe(wait.Seconds())
	tr := t.req.tr
	tr.AddSpan("queue", t.enq, wait, nil)
	ex := tr.Begin("execute")
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := s.execute(ctx, w, t.req)
	// Feed the admission estimators from what execution actually cost —
	// the same observed-latency source the planner's feedback uses — so
	// the gate's class prices and drain rate track the live workload.
	svc := time.Since(start)
	s.adm.observe(t.class, svc)
	s.adm.observeDrain(svc)
	if err != nil {
		ex.End()
		s.tel.failed.Inc()
		t.err = err
		close(t.done)
		return
	}
	ex.AttrInt("worker", int64(w.id)).End()
	ex.Attr("plan", resp.Plan)
	resp.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Fingerprint = t.key
	resp.CacheAwareCostSec = s.cost.CacheAwareCost(
		resp.EstCostSec, s.results.Stats().HitRate(), cacheLookupCostSec)
	// Degraded (partial) responses are never cached: the missing shards
	// may be back for the very next query, and a cached partial answer
	// would keep serving under a fingerprint that promises the full one.
	if t.key != "" && !resp.Degraded {
		cs := tr.Begin("cache-store")
		s.results.Put(t.key, resp, resp.sizeBytes())
		cs.End()
	}
	s.tel.completed.Inc()
	t.resp = resp
	close(t.done)
}

// cacheLookupCostSec is the measured order-of-magnitude cost of one
// result-cache probe (fingerprint + map + LRU bump).
const cacheLookupCostSec = 2e-6

// cachedResponse returns a caller-private copy of a cached response,
// marked as a hit and re-costed at the current hit rate.
func cachedResponse(r *Response, s *Service) *Response {
	out := *r
	out.Rows = r.Rows // shared, treated as immutable
	out.CacheHit = true
	out.DurationMS = 0
	out.CacheAwareCostSec = s.cost.CacheAwareCost(
		r.EstCostSec, s.results.Stats().HitRate(), cacheLookupCostSec)
	return &out
}

// ---------------------------------------------------------- execution ----

func (s *Service) execute(ctx context.Context, w *worker, req *Request) (*Response, error) {
	if req.Infer != nil {
		// The sweep may submit kernels for the whole request: register as
		// a mid-query submitter so the batcher's idle flush knows when the
		// device has gone quiet (adaptive policy only — an explicit
		// BatchWindow is honored strictly).
		if s.adaptive {
			w.dev.BeginSubmitter()
			defer w.dev.EndSubmitter()
		}
		return s.executeInfer(ctx, w, req.Infer)
	}
	if req.KNN != nil {
		// kNN has its own scatter shape (per-shard index probes, k-way
		// candidate merge) and submits no kernels.
		if s.shards != nil {
			return s.executeKNNScatter(ctx, req)
		}
		return s.executeKNN(ctx, req)
	}
	if s.shards != nil {
		return s.executeScatter(ctx, req)
	}
	if s.adaptive {
		w.dev.BeginSubmitter()
		defer w.dev.EndSubmitter()
	}
	return s.executeQuery(ctx, w, req)
}

// executeQuery runs the filter -> simjoin -> distinct -> order/limit
// pipeline over a collection snapshot.
func (s *Service) executeQuery(ctx context.Context, w *worker, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	col, err := s.db.Collection(req.Collection)
	if err != nil {
		return nil, err
	}
	snap, ver, err := col.Snapshot()
	if err != nil {
		return nil, err
	}
	resp := &Response{}
	var plan []string
	filtered := snap
	var csel *columnSelection // non-nil when the filter stage ran columnar

	// The filter stage reports its access path and measured latency back
	// into the cost model (CostModel.ObserveFilter), so future plans and
	// admission estimates price from observed behavior.
	fltStart := time.Now()
	var fltMethod core.FilterMethod
	fltUnits := 0

	if f := req.Filter; f != nil && f.isRange() {
		lo, hi := f.bounds()
		if err := col.Schema().ValidateFilterRange(f.Field); err != nil {
			return nil, err
		}
		if f.UseIndex {
			idx, err := s.ensureIndex(col, f.Field, core.IdxBTree)
			if err != nil {
				return nil, err
			}
			ids, err := btreeRangeIDs(idx, lo, hi)
			if err != nil {
				return nil, err
			}
			filtered = make([]*core.Patch, 0, len(ids))
			for _, id := range ids {
				p, err := col.Get(id)
				if err != nil {
					return nil, err
				}
				filtered = append(filtered, p)
			}
			plan = append(plan, fmt.Sprintf("btree-index(%s)", f.Field))
			resp.EstCostSec += s.cost.FilterCost(core.FilterBTreeIndex, len(snap), len(ids))
			fltMethod, fltUnits = core.FilterBTreeIndex, len(ids)
		} else if cf, ok := columnFilterRange(col, f.Field, lo, hi, len(snap)); ok {
			// Same vectorized block-at-a-time path as equality: zone maps
			// prune blocks whose min/max cannot intersect the interval.
			filtered = cf.rows
			csel = cf
			plan = append(plan, fmt.Sprintf("column-scan(%s)", f.Field))
			resp.EstCostSec += s.cost.FilterCost(core.FilterColumnScan, len(snap), 0)
			fltMethod, fltUnits = core.FilterColumnScan, len(snap)
		} else {
			filtered = rowFilterRange(snap, f.Field, lo, hi)
			plan = append(plan, fmt.Sprintf("scan-filter(%s)", f.Field))
			resp.EstCostSec += float64(len(snap)) * scanCmpCostSec
			fltMethod, fltUnits = core.FilterScan, len(snap)
		}
	} else if f != nil {
		v, err := f.value()
		if err != nil {
			return nil, err
		}
		if err := col.Schema().ValidateFilterValue(f.Field, v); err != nil {
			return nil, err
		}
		if f.UseIndex {
			idx, err := s.ensureIndex(col, f.Field, core.IdxHash)
			if err != nil {
				return nil, err
			}
			ids, err := idx.LookupEq(v)
			if err != nil {
				return nil, err
			}
			filtered = make([]*core.Patch, 0, len(ids))
			for _, id := range ids {
				p, err := col.Get(id)
				if err != nil {
					return nil, err
				}
				filtered = append(filtered, p)
			}
			plan = append(plan, fmt.Sprintf("hash-index(%s)", f.Field))
			resp.EstCostSec += float64(len(ids)) * s.cost.CFetch
			fltMethod, fltUnits = core.FilterHashIndex, len(ids)
		} else if cf, ok := columnFilterEq(col, f.Field, v, len(snap)); ok {
			// Vectorized block-at-a-time evaluation over the collection's
			// columnar projection: zone maps skip blocks that cannot
			// match, surviving blocks compare typed arrays instead of
			// paying a map lookup per patch. Results are byte-identical
			// to the row scan (selection lists are in snapshot order).
			filtered = cf.rows
			csel = cf
			plan = append(plan, fmt.Sprintf("column-scan(%s)", f.Field))
			resp.EstCostSec += s.cost.FilterCost(core.FilterColumnScan, len(snap), 0)
			fltMethod, fltUnits = core.FilterColumnScan, len(snap)
		} else {
			filtered = make([]*core.Patch, 0, len(snap)/4)
			for _, p := range snap {
				if mv, ok := p.Meta[f.Field]; ok && mv.Equal(v) {
					filtered = append(filtered, p)
				}
			}
			plan = append(plan, fmt.Sprintf("scan-filter(%s)", f.Field))
			resp.EstCostSec += float64(len(snap)) * scanCmpCostSec
			fltMethod, fltUnits = core.FilterScan, len(snap)
		}
	}
	if fltMethod != 0 {
		s.cost.ObserveFilter(fltMethod, fltUnits, time.Since(fltStart))
	}

	if sj := req.SimJoin; sj != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dim := 0
		if fd := col.Schema().FieldNamed(sj.Field); fd != nil {
			dim = fd.VecDim
		}
		if dim == 0 && len(filtered) > 0 {
			if mv, ok := filtered[0].Meta[sj.Field]; ok {
				dim = len(mv.V)
			}
		}
		// A maintained index over the whole collection can only serve an
		// unfiltered join.
		hasIndex := sj.UseIndex && req.Filter == nil
		n := len(filtered)
		sp := s.cost.PlanSimilarityJoinVec(n, n, dim, hasIndex)
		resp.EstCostSec += sp.EstCost
		opts := core.SimilarityJoinOpts{
			LeftField: sj.Field, RightField: sj.Field,
			Eps: sj.Eps, DedupUnordered: true,
			Device: s.observedDev(w.dev, req.tr),
		}
		var pairs []core.Tuple
		switch sp.Method {
		case core.SimVecIndexed:
			// The maintained per-collection vector index at exactly this
			// query's snapshot: reused across versions, incrementally
			// extended on appends, never rebuilt per query.
			vi, err := col.VectorIndexAt(snap, ver, sj.Field, core.VecExact)
			if err != nil {
				return nil, err
			}
			pairs, err = core.SimilarityJoinVecIndexed(filtered, col, vi, opts)
			if err != nil {
				return nil, err
			}
		case core.SimOnTheFly:
			pairs, err = core.SimilarityJoinOnTheFly(filtered, filtered, opts)
			if err != nil {
				return nil, err
			}
		case core.SimBatched:
			pairs, err = core.SimilarityJoinBatched(s.db, filtered, filtered, opts)
			if err != nil {
				return nil, err
			}
		default:
			pairs, err = core.SimilarityJoinNested(filtered, filtered, opts)
			if err != nil {
				return nil, err
			}
		}
		plan = append(plan, fmt.Sprintf("simjoin[%s@%s](%s, eps=%g)",
			sp.Method, w.dev.Kind(), sj.Field, sj.Eps))
		if req.Distinct {
			resp.Value = clusterCount(filtered, pairs, sj.MinCluster)
			plan = append(plan, fmt.Sprintf("distinct(min=%d)", sj.MinCluster))
		} else {
			resp.Value = len(pairs)
		}
		resp.Plan = joinPlan(plan)
		return resp, nil
	}

	resp.Value = len(filtered)
	if req.OrderBy != "" || req.Limit > 0 {
		limit := req.Limit
		if limit <= 0 || limit > maxRows {
			limit = maxRows
		}
		rows := filtered
		if req.OrderBy != "" {
			// Bounded top-k instead of sort-everything-then-trim: the
			// columnar path when the filter stage left a selection (or
			// the whole snapshot has a column), a bounded-heap row top-k
			// otherwise. Output is identical to a stable sort + trim.
			var ocol *core.Collection
			if req.Filter == nil {
				ocol = col // unfiltered: the snapshot itself may have a column
			}
			rows = topKRows(ocol, csel, filtered, req.OrderBy, req.Desc, limit, len(snap))
			plan = append(plan, "order-by("+req.OrderBy+")")
		}
		if len(rows) > limit {
			rows = rows[:limit]
		}
		resp.Rows = projectRows(rows)
		if req.Limit > 0 {
			plan = append(plan, fmt.Sprintf("limit(%d)", req.Limit))
		}
	}
	if len(plan) == 0 {
		plan = append(plan, "scan-count")
	}
	resp.Plan = joinPlan(plan)
	return resp, nil
}

// scanCmpCostSec is the estimated cost of one metadata comparison during
// a scan filter.
const scanCmpCostSec = 2e-8

// maxRows caps projected row output per response.
const maxRows = 100

func joinPlan(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

// projectRows converts patches to JSON-friendly rows (scalar metadata
// plus identity and lineage columns; vectors are elided).
func projectRows(ps []*core.Patch) []map[string]any {
	rows := make([]map[string]any, len(ps))
	for i, p := range ps {
		row := map[string]any{
			"_id":     uint64(p.ID),
			"_source": p.Ref.Source,
			"_frame":  p.Ref.Frame,
		}
		for k, v := range p.Meta {
			switch v.Kind {
			case core.KindInt:
				row[k] = v.I
			case core.KindFloat:
				row[k] = v.F
			case core.KindStr:
				row[k] = v.S
			}
		}
		rows[i] = row
	}
	return rows
}

// clusterCount unions similarity pairs into identity clusters and counts
// those with at least minSize members (q4's dedup; minSize <= 1 keeps
// singletons).
func clusterCount(ps []*core.Patch, pairs []core.Tuple, minSize int) int {
	idx := make(map[core.PatchID]int, len(ps))
	for i, p := range ps {
		idx[p.ID] = i
	}
	parent := make([]int, len(ps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pr := range pairs {
		if len(pr) != 2 {
			continue
		}
		a, aok := idx[pr[0].ID]
		b, bok := idx[pr[1].ID]
		if !aok || !bok {
			continue
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	sizes := make(map[int]int)
	for i := range parent {
		sizes[find(i)]++
	}
	count := 0
	for _, n := range sizes {
		if n >= minSize {
			count++
		}
	}
	return count
}

// estInferPerFrameSec is the rough cold cost of one frame's inference
// (backbone GEMMs dominate; calibrated against the reference container).
const estInferPerFrameSec = 4e-3

// executeInfer sweeps a memoized UDF over rendered frames.
func (s *Service) executeInfer(ctx context.Context, w *worker, spec *InferSpec) (*Response, error) {
	src := s.source(spec.Source)
	if src == nil {
		return nil, fmt.Errorf("service: unknown frame source %q", spec.Source)
	}
	if spec.To > src.Frames() {
		return nil, fmt.Errorf("service: source %q has %d frames, sweep wants [%d, %d)",
			spec.Source, src.Frames(), spec.From, spec.To)
	}
	count := 0
	for t := spec.From; t < spec.To; t++ {
		// Frames are the sweep's natural cancellation boundary: a caller
		// that gave up (or a fired deadline) stops burning inference here.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		img, err := src.Render(t)
		if err != nil {
			return nil, fmt.Errorf("service: render %s[%d]: %w", spec.Source, t, err)
		}
		switch spec.UDF {
		case "detect":
			for _, d := range w.det.Detect(img) {
				if spec.Label == "" || d.Class.String() == spec.Label {
					count++
				}
			}
		case "embed":
			w.emb.Embed(img)
			count++
		case "ocr":
			for _, word := range w.ocr.Recognize(img) {
				if spec.Text == "" || word.Text == spec.Text {
					count++
				}
			}
		}
	}
	frames := spec.To - spec.From
	return &Response{
		Value:      count,
		Plan:       fmt.Sprintf("udf-sweep[%s@%s](%s[%d:%d))", spec.UDF, w.dev.Kind(), spec.Source, spec.From, spec.To),
		EstCostSec: float64(frames) * estInferPerFrameSec,
	}, nil
}

// ensureIndex returns an index that agrees with the collection's current
// version, building or rebuilding as needed (unsharded backend).
func (s *Service) ensureIndex(col *core.Collection, field string, kind core.IndexKind) (*core.Index, error) {
	return s.ensureIndexOn(s.db, "", col, field, kind)
}

// ensureIndexOn is ensureIndex against an explicit DB — the shard-local
// form: every shard builds and serves its own indexes over its own
// partition (scope disambiguates same-named collections across shards in
// the build-lock table). Appends bump the version but never maintain
// indexes incrementally, so serving a stale index would silently drop
// the newest patches from indexed plans (and poison the version-keyed
// result cache). Concurrent builders of the same (scope, collection,
// field, kind) are serialized.
func (s *Service) ensureIndexOn(db *core.DB, scope string, col *core.Collection, field string, kind core.IndexKind) (*core.Index, error) {
	if db.HasIndex(col, field, kind) {
		idx, err := db.Index(col, field, kind)
		if err != nil {
			return nil, err
		}
		if idx.BuiltVersion == col.Version() {
			return idx, nil
		}
	}
	key := scope + "\x00" + col.Name() + "\x00" + field + "\x00" + kind.String()
	s.buildMu.Lock()
	mu, ok := s.builds[key]
	if !ok {
		mu = &sync.Mutex{}
		s.builds[key] = mu
	}
	s.buildMu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	if db.HasIndex(col, field, kind) { // raced another builder
		idx, err := db.Index(col, field, kind)
		if err != nil {
			return nil, err
		}
		if idx.BuiltVersion == col.Version() {
			return idx, nil
		}
	}
	return db.BuildIndex(col, field, kind)
}

// btreeRangeIDs resolves the numeric half-open range [lo, hi) against a
// B-tree index. Sort keys are kind-prefixed, so int-keyed and
// float-keyed rows occupy disjoint key regions and one key-space scan
// cannot serve the numeric-widening semantics ("ints compare as
// floats") the scan paths implement — the range runs as two probes, one
// per numeric kind, with the bounds converted into each kind's key
// space. The id union is returned ascending, which is snapshot order
// for the append paths that allocate ids in commit order (the service's
// own), so the indexed path returns rows in the same order as the scan
// it replaces.
func btreeRangeIDs(idx *core.Index, lo, hi float64) ([]core.PatchID, error) {
	// 2^63: one past MaxInt64, and exactly -MinInt64. Conversion guard —
	// float64 bounds at or beyond it have no int64 equivalent.
	const intEdge = float64(1 << 63)

	// Int probe: int64 values v with lo <= v < hi. Ceiling converts both
	// float bounds to the int key space (v >= lo <=> v >= ceil(lo);
	// v < hi <=> v < ceil(hi), the integral-hi case included since
	// ceil(h) == h). Bounds past int64's range clamp to the kind's
	// edges; the float -Inf key is the first key after the int region,
	// so it serves as the open upper fence.
	var ids []core.PatchID
	intLo, intHi := core.IntV(math.MinInt64), core.FloatV(math.Inf(-1))
	skipInt := false
	if c := math.Ceil(lo); c >= intEdge {
		skipInt = true // no int64 is >= 2^63
	} else if c > -intEdge {
		intLo = core.IntV(int64(c))
	}
	if c := math.Ceil(hi); c <= -intEdge {
		skipInt = true // no int64 is < -2^63
	} else if c < intEdge {
		intHi = core.IntV(int64(c))
	}
	if !skipInt {
		got, err := idx.LookupRange(&intLo, &intHi)
		if err != nil {
			return nil, err
		}
		ids = append(ids, got...)
	}

	// Float probe: an inclusive -Inf low and an exclusive +Inf high are
	// exactly the scan semantics at open sides (a stored +Inf fails
	// v < +Inf; NaN keys sort past +Inf and are excluded with it).
	fLo, fHi := core.FloatV(lo), core.FloatV(hi)
	got, err := idx.LookupRange(&fLo, &fHi)
	if err != nil {
		return nil, err
	}
	ids = append(ids, got...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// ------------------------------------------------------------- stats ----

// Stats is the service's activity snapshot (served by /stats).
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`

	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	// QueueDepth is the admitted-but-unclaimed task count, snapshotted
	// under the same lock as the in-flight counter so the pair is
	// consistent. QueueLen mirrors it for backward compatibility.
	QueueDepth int `json:"queue_depth"`
	QueueLen   int `json:"queue_len"`
	Sources    int `json:"sources"`

	Admitted     int64 `json:"admitted"`
	Rejected     int64 `json:"rejected"`
	Coalesced    int64 `json:"coalesced"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	InFlight     int64 `json:"in_flight"`
	PeakInFlight int64 `json:"peak_in_flight"`

	// Live ingest: append requests served, rows committed, and the
	// columnar read side's incremental-extension record — how many stale
	// column stores were upgraded in place and the sealed-block reuse
	// those upgrades achieved (ExtendReuseBlocks of ExtendTotalBlocks
	// carried over without re-projection).
	Appends           int64 `json:"appends"`
	AppendedRows      int64 `json:"appended_rows"`
	ColumnExtends     int64 `json:"column_extends"`
	ExtendReuseBlocks int64 `json:"extend_reuse_blocks"`
	ExtendTotalBlocks int64 `json:"extend_total_blocks"`

	// Tiered columns: the spilled-segment record (all zero when
	// Config.ColumnMemBudget leaves tiering off). SegmentLoadFaults
	// counts segments rebuilt from the row snapshot after an unreadable
	// spill blob — never a failed query, always a counted repair.
	SegmentSpills        int64 `json:"segment_spills"`
	SegmentLoads         int64 `json:"segment_loads"`
	SegmentLoadFaults    int64 `json:"segment_load_faults"`
	SegmentEvictions     int64 `json:"segment_evictions"`
	SegmentResidentBytes int64 `json:"segment_resident_bytes"`
	ColumnMemBudget      int64 `json:"column_mem_budget"`

	// ANN serving: knn queries executed (cold; cache hits excluded like
	// every execution counter) and the vector-index maintenance record —
	// prefix-certified incremental extensions vs full builds.
	KNNQueries    int64 `json:"knn_queries"`
	IndexExtends  int64 `json:"index_extends"`
	IndexRebuilds int64 `json:"index_rebuilds"`

	ResultCache   CacheStats `json:"result_cache"`
	UDFCache      CacheStats `json:"udf_cache"`
	ResultHitRate float64    `json:"result_hit_rate"`

	Device           string  `json:"device"`
	Devices          int     `json:"devices"`
	DeviceKernels    int64   `json:"device_kernels"`
	DeviceLaunches   int64   `json:"device_launches"`
	DeviceFLOPs      int64   `json:"device_flops"`
	DeviceOverheadMS float64 `json:"device_overhead_ms"`

	// Batcher is the aggregate kernel-coalescing record across every
	// device's scheduler; FusionFactor is its mean kernels-per-launch.
	Batcher      exec.BatcherStats `json:"batcher"`
	FusionFactor float64           `json:"fusion_factor"`

	// Sharding: partition count, per-shard storage snapshots, and the
	// scatter-gather activity record. ScatterTasks is the cumulative
	// fan-out (filter fragments + local and cross-shard join tasks);
	// MergeTimeMS is the cumulative wall time spent in the gather stage.
	Shards         int              `json:"shards"`
	ShardInfo      []core.ShardInfo `json:"shard_info,omitempty"`
	ScatterQueries int64            `json:"scatter_queries"`
	ScatterTasks   int64            `json:"scatter_tasks"`
	MergeTimeMS    float64          `json:"merge_time_ms"`

	// Fault tolerance: per-shard replica count, the hedged-read and
	// retry activity record, partial (degraded) responses served, and
	// secondary-replica append failures absorbed (each demotes the
	// failing replica from the read set).
	Replicas            int   `json:"replicas"`
	HedgedFragments     int64 `json:"hedged_fragments"`
	FragmentRetries     int64 `json:"fragment_retries"`
	DegradedQueries     int64 `json:"degraded_queries"`
	ReplicaAppendErrors int64 `json:"replica_append_errors"`

	// Self-healing: completed replica repairs, the rows they streamed,
	// and how many replicas are currently out of the read set (the
	// /readyz gate; zero when the fleet is fully healed).
	ReplicaResyncs    int64 `json:"replica_resyncs"`
	ResyncRows        int64 `json:"resync_rows"`
	OutOfSyncReplicas int   `json:"out_of_sync_replicas"`

	// Adaptive admission: deliberate load sheds (the slice of Rejected
	// taken while the queue still had room), the summed priced cost of
	// the queued work, and the current drain-rate-derived queue bound.
	AdmissionShed       int64   `json:"admission_shed"`
	QueueCostSec        float64 `json:"queue_cost_sec"`
	EffectiveQueueDepth int     `json:"effective_queue_depth"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.srcMu.RLock()
	nsrc := len(s.sources)
	s.srcMu.RUnlock()
	rc := s.results.Stats()
	ds := s.devPool.Stats()
	var bs exec.BatcherStats
	for _, b := range s.batchers {
		bs.Add(b.BatcherStats())
	}
	s.statsMu.Lock()
	queueDepth := len(s.queue)
	inFlight := s.inFlight.Load()
	s.statsMu.Unlock()
	nshards, nreplicas := 1, 1
	var shardInfo []core.ShardInfo
	var extends, extReused, extTotal int64
	var repErrs, resyncs, resyncRows int64
	var outOfSync int
	if s.shards != nil {
		nshards = s.shards.NumShards()
		nreplicas = s.shards.Replicas()
		shardInfo = s.shards.ShardInfos()
		extends, extReused, extTotal = s.shards.ColumnExtendStats()
		repErrs = s.shards.ReplicaAppendErrors()
		resyncs, resyncRows = s.shards.ResyncStats()
		outOfSync = len(s.shards.OutOfSyncReplicas())
	} else {
		extends, extReused, extTotal = s.db.ColumnExtendStats()
	}
	idxExtends, idxRebuilds := s.indexExtendStats()
	scs := s.segCache.Stats() // nil-safe: zero record when tiering is off
	return Stats{
		UptimeSec:  time.Since(s.start).Seconds(),
		Workers:    s.cfg.Workers,
		QueueCap:   cap(s.queue),
		QueueDepth: queueDepth,
		QueueLen:   queueDepth,
		Sources:    nsrc,

		Admitted:     s.tel.admitted.Value(),
		Rejected:     s.tel.rejected.Value(),
		Coalesced:    s.tel.coalesced.Value(),
		Completed:    s.tel.completed.Value(),
		Failed:       s.tel.failed.Value(),
		InFlight:     inFlight,
		PeakInFlight: s.peakInFlight.Load(),

		Appends:           s.tel.appends.Value(),
		AppendedRows:      s.tel.appendedRows.Value(),
		ColumnExtends:     extends,
		ExtendReuseBlocks: extReused,
		ExtendTotalBlocks: extTotal,

		SegmentSpills:        scs.Spills,
		SegmentLoads:         scs.Loads,
		SegmentLoadFaults:    scs.LoadFaults,
		SegmentEvictions:     scs.Evictions,
		SegmentResidentBytes: scs.ResidentBytes,
		ColumnMemBudget:      s.cfg.ColumnMemBudget,

		KNNQueries:    s.tel.knnQueries.Value(),
		IndexExtends:  idxExtends,
		IndexRebuilds: idxRebuilds,

		ResultCache:   rc,
		UDFCache:      s.udfMemo.Stats(),
		ResultHitRate: rc.HitRate(),

		Device:           s.devPool.Kind().String(),
		Devices:          s.cfg.Devices,
		DeviceKernels:    ds.Kernels,
		DeviceLaunches:   ds.Launches,
		DeviceFLOPs:      ds.FLOPs,
		DeviceOverheadMS: float64(ds.Overhead.Microseconds()) / 1000,
		// Device contention no longer shows up as pool waits (leases are
		// held for the service lifetime); it shows up in Batcher flush
		// counters and launch serialization instead.

		Batcher:      bs,
		FusionFactor: bs.FusionFactor(),

		Shards:         nshards,
		ShardInfo:      shardInfo,
		ScatterQueries: s.tel.scatterQueries.Value(),
		ScatterTasks:   s.tel.scatterTasks.Value(),
		MergeTimeMS:    float64(s.mergeNS.Load()) / 1e6,

		Replicas:            nreplicas,
		HedgedFragments:     s.tel.hedgedFragments.Value(),
		FragmentRetries:     s.tel.fragmentRetries.Value(),
		DegradedQueries:     s.tel.degradedQueries.Value(),
		ReplicaAppendErrors: repErrs,

		ReplicaResyncs:    resyncs,
		ResyncRows:        resyncRows,
		OutOfSyncReplicas: outOfSync,

		AdmissionShed:       s.tel.admissionShed.Value(),
		QueueCostSec:        s.adm.QueuedCostSec(),
		EffectiveQueueDepth: s.adm.effectiveDepth(),
	}
}

// Metrics returns the service's metrics registry (the source behind
// GET /metrics). Exposed so embedding binaries can add their own
// families or render the exposition out-of-band.
func (s *Service) Metrics() *obs.Registry { return s.tel.reg }

// SlowQueries returns the retained slow-query log entries, newest
// first (the source behind GET /debug/slow).
func (s *Service) SlowQueries() []obs.SlowEntry { return s.tel.slow.Snapshot() }
