package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
)

var (
	envOnce sync.Once
	testEnv *bench.Env
	envErr  error
)

// getEnv lazily ingests one small shared benchmark environment.
func getEnv(t *testing.T) *bench.Env {
	t.Helper()
	envOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dl-service-test")
		if err != nil {
			envErr = err
			return
		}
		cfg := dataset.Default()
		cfg.TrafficFrames = 60
		cfg.PCImages = 40
		cfg.FootballClips = 1
		cfg.FootballClipLen = 10
		testEnv, envErr = bench.NewEnv(dir, cfg, exec.New(exec.CPU))
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	e := getEnv(t)
	s, err := New(e.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func strp(s string) *string { return &s }

func pedCountReq() Request {
	return Request{
		Collection: bench.ColTrafficDets,
		Filter:     &FilterSpec{Field: "label", Str: strp("pedestrian")},
	}
}

func TestQueryFilterAndResultCache(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	ctx := context.Background()

	r1, err := s.Query(ctx, pedCountReq())
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if r1.Value <= 0 {
		t.Fatalf("pedestrian count = %d, want > 0", r1.Value)
	}
	r2, err := s.Query(ctx, pedCountReq())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if r2.Value != r1.Value {
		t.Fatalf("cached value %d != computed %d", r2.Value, r1.Value)
	}
	st := s.Stats()
	if st.ResultCache.Hits < 1 {
		t.Fatalf("result cache hits = %d, want >= 1", st.ResultCache.Hits)
	}
	// Cache-aware cost shrinks as the hit rate climbs. (The columnar
	// scan's cold estimate can undercut the fixed cache-lookup charge, so
	// compare against the first query's cache-aware cost at hit rate 0,
	// not the bare plan estimate.)
	if r2.CacheAwareCostSec >= r1.CacheAwareCostSec && r1.EstCostSec > 0 {
		t.Fatalf("cache-aware cost %g did not shrink from %g as the hit rate climbed",
			r2.CacheAwareCostSec, r1.CacheAwareCostSec)
	}
}

func TestQueryPhysicalPlansAgree(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	ctx := context.Background()

	scan, err := s.Query(ctx, Request{
		Collection: bench.ColTrafficDets,
		Filter:     &FilterSpec{Field: "label", Str: strp("car")},
		NoCache:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := s.Query(ctx, Request{
		Collection: bench.ColTrafficDets,
		Filter:     &FilterSpec{Field: "label", Str: strp("car"), UseIndex: true},
		NoCache:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Value != indexed.Value {
		t.Fatalf("scan=%d indexed=%d: physical plans disagree", scan.Value, indexed.Value)
	}
	if scan.Plan == indexed.Plan {
		t.Fatalf("plans identical (%q): index path not taken", scan.Plan)
	}
	// Same logical query => same fingerprint regardless of physical plan.
	a := pedCountReq()
	b := pedCountReq()
	b.Filter.UseIndex = true
	fa, err := s.fingerprintFor(&a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := s.fingerprintFor(&b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatal("physical knob changed the logical fingerprint")
	}
}

func TestQuerySimJoinDistinct(t *testing.T) {
	s := newService(t, Config{Workers: 4})
	ctx := context.Background()
	req := Request{
		Collection: bench.ColTrafficDets,
		Filter:     &FilterSpec{Field: "label", Str: strp("pedestrian")},
		SimJoin:    &SimJoinSpec{Field: "emb", Eps: 0.15, MinCluster: 2},
		Distinct:   true,
	}
	r, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value <= 0 {
		t.Fatalf("distinct pedestrians = %d, want > 0", r.Value)
	}
	if r.EstCostSec <= 0 {
		t.Fatal("optimizer reported zero plan cost")
	}
	// The unfiltered indexed variant also runs (prebuilt ball tree path).
	r2, err := s.Query(ctx, Request{
		Collection: bench.ColPCImages,
		SimJoin:    &SimJoinSpec{Field: "ghist", Eps: 0.066, UseIndex: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value < 0 {
		t.Fatalf("pair count = %d", r2.Value)
	}
}

func TestQueryRowsOrderLimit(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	r, err := s.Query(context.Background(), Request{
		Collection: bench.ColTrafficDets,
		Filter:     &FilterSpec{Field: "label", Str: strp("car")},
		OrderBy:    "frameno",
		Limit:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Rows) > 5 {
		t.Fatalf("rows = %d, want 1..5", len(r.Rows))
	}
	var last int64 = -1
	for _, row := range r.Rows {
		fn := row["frameno"].(int64)
		if fn < last {
			t.Fatalf("rows out of order: %d after %d", fn, last)
		}
		last = fn
	}
}

func TestQueryValidationErrors(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []Request{
		{},                   // no target
		{Collection: "nope"}, // unknown collection
		{Collection: bench.ColPCWords, // undeclared field -> plan-time type error
			Filter: &FilterSpec{Field: "nosuch", Str: strp("x")}},
		{Collection: bench.ColPCWords, // two constants
			Filter: &FilterSpec{Field: "text", Str: strp("x"), Int: new(int64)}},
		{Collection: bench.ColPCWords, Distinct: true},                                // distinct without simjoin
		{Collection: bench.ColPCWords, SimJoin: &SimJoinSpec{Field: "x"}},             // eps <= 0
		{Infer: &InferSpec{Source: "s", From: 3, To: 3, UDF: "detect"}},               // empty range
		{Infer: &InferSpec{Source: "s", From: 0, To: 1, UDF: "segmentation"}},         // unknown udf
		{Collection: "c", Infer: &InferSpec{Source: "s", From: 0, To: 1, UDF: "ocr"}}, // both
	}
	for i, req := range cases {
		if _, err := s.Query(ctx, req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

// trafficSource adapts the dataset generator to a FrameSource.
type trafficSource struct{ tr *dataset.Traffic }

func (t trafficSource) Frames() int { return t.tr.Frames }
func (t trafficSource) Render(i int) (*codec.Image, error) {
	img, _ := t.tr.Render(i)
	return img, nil
}

func TestInferSweepUDFMemoization(t *testing.T) {
	e := getEnv(t)
	s := newService(t, Config{Workers: 2})
	s.RegisterSource("trafficcam", trafficSource{e.Traffic})

	req := Request{
		Infer:   &InferSpec{Source: "trafficcam", From: 0, To: 8, UDF: "detect", Label: "car"},
		NoCache: true, // bypass the result cache so the UDF cache does the work
	}
	r1, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	misses := s.Stats().UDFCache.Misses
	if misses < 8 {
		t.Fatalf("first sweep recorded %d UDF misses, want >= 8", misses)
	}
	r2, err := s.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value != r1.Value {
		t.Fatalf("memoized sweep value %d != cold value %d", r2.Value, r1.Value)
	}
	st := s.Stats()
	if st.UDFCache.Hits < 8 {
		t.Fatalf("second sweep recorded %d UDF hits, want >= 8", st.UDFCache.Hits)
	}
	if st.UDFCache.Misses != misses {
		t.Fatalf("second sweep re-ran inference: misses %d -> %d", misses, st.UDFCache.Misses)
	}
	// An overlapping sweep reuses the shared frames.
	r3, err := s.Query(context.Background(), Request{
		Infer:   &InferSpec{Source: "trafficcam", From: 4, To: 12, UDF: "detect", Label: "car"},
		NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r3
	if got := s.Stats().UDFCache.Misses - misses; got != 4 {
		t.Fatalf("overlapping sweep ran %d fresh inferences, want 4", got)
	}
}

// gateSource is a FrameSource whose renders block until released,
// letting the test observe steady-state concurrency deterministically.
type gateSource struct {
	release chan struct{}
	mu      sync.Mutex
	cur     int
	peak    int
}

func (g *gateSource) Frames() int { return 1 << 20 }

func (g *gateSource) Render(int) (*codec.Image, error) {
	g.mu.Lock()
	g.cur++
	if g.cur > g.peak {
		g.peak = g.cur
	}
	g.mu.Unlock()
	<-g.release
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
	return &codec.Image{W: 8, H: 8, Pix: make([]uint8, 8*8*3)}, nil
}

func (g *gateSource) peakConcurrency() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

func TestConcurrentQueriesSustainSixteenInFlight(t *testing.T) {
	s := newService(t, Config{Workers: 16, QueueDepth: 128})
	gate := &gateSource{release: make(chan struct{})}
	s.RegisterSource("gated", gate)
	ctx := context.Background()
	const callers = 48

	var done sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			req := Request{
				Infer:   &InferSpec{Source: "gated", From: i, To: i + 1, UDF: "detect"},
				NoCache: true,
			}
			if _, err := s.Query(ctx, req); err != nil {
				errs <- fmt.Errorf("caller %d: %w", i, err)
			}
		}(i)
	}
	// Wait for steady state: all 48 admitted, all 16 workers mid-query.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if gate.peakConcurrency() >= 16 && s.Stats().InFlight >= callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached steady state: executing=%d in-flight=%d",
				gate.peakConcurrency(), s.Stats().InFlight)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PeakInFlight < callers {
		t.Fatalf("peak in-flight = %d, want >= %d", st.PeakInFlight, callers)
	}
	if got := gate.peakConcurrency(); got != 16 {
		t.Fatalf("concurrent executions peaked at %d, want exactly the 16 leased workers", got)
	}
	if st.Completed != callers {
		t.Fatalf("completed = %d, want %d", st.Completed, callers)
	}
}

func TestAdmissionControlRejectsWhenSaturated(t *testing.T) {
	s := newService(t, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	const callers = 32

	var start, done sync.WaitGroup
	var rejected, succeeded atomic64
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			req := Request{
				Collection: bench.ColTrafficDets,
				SimJoin:    &SimJoinSpec{Field: "emb", Eps: 0.10 + float64(i)*1e-4},
				NoCache:    true,
			}
			_, err := s.Query(ctx, req)
			switch {
			case err == nil:
				succeeded.add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.add(1)
			default:
				t.Errorf("caller %d: %v", i, err)
			}
		}(i)
	}
	start.Done()
	done.Wait()
	if rejected.load() == 0 {
		t.Fatal("saturated 1-worker/1-slot service rejected nothing")
	}
	if succeeded.load() == 0 {
		t.Fatal("no query succeeded under load")
	}
	st := s.Stats()
	if st.Rejected != rejected.load() {
		t.Fatalf("stats.Rejected = %d, callers saw %d", st.Rejected, rejected.load())
	}
}

func TestCoalescingRunsIdenticalColdQueriesOnce(t *testing.T) {
	s := newService(t, Config{Workers: 8})
	ctx := context.Background()
	const callers = 8

	var start, done sync.WaitGroup
	start.Add(1)
	values := make([]int, callers)
	errsl := make([]error, callers)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			r, err := s.Query(ctx, Request{
				Collection: bench.ColTrafficDets,
				SimJoin:    &SimJoinSpec{Field: "emb", Eps: 0.123},
			})
			if err != nil {
				errsl[i] = err
				return
			}
			values[i] = r.Value
		}(i)
	}
	start.Done()
	done.Wait()
	for i, err := range errsl {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if values[i] != values[0] {
			t.Fatalf("divergent results: %v", values)
		}
	}
	st := s.Stats()
	if st.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1 (coalescing failed)", st.Admitted)
	}
	if st.Coalesced+st.ResultCache.Hits < callers-1 {
		t.Fatalf("coalesced=%d + hits=%d, want >= %d",
			st.Coalesced, st.ResultCache.Hits, callers-1)
	}
}

func TestReingestInvalidatesStaleResults(t *testing.T) {
	e := getEnv(t)
	s := newService(t, Config{Workers: 2})
	ctx := context.Background()
	const colName = "service.reingest"

	schema := core.Schema{Fields: []core.Field{
		{Name: "label", Kind: core.KindStr},
		{Name: "frameno", Kind: core.KindInt},
	}}
	mkPatch := func(i int, label string) *core.Patch {
		return &core.Patch{
			Ref:  core.Ref{Source: "synthetic", Frame: uint64(i)},
			Meta: core.Metadata{"label": core.StrV(label), "frameno": core.IntV(int64(i))},
		}
	}
	col, err := e.DB.CreateCollection(colName, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := col.Append(mkPatch(i, "cat")); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{Collection: colName, Filter: &FilterSpec{Field: "label", Str: strp("cat")}}
	r1, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != 5 {
		t.Fatalf("pre-reingest count = %d, want 5", r1.Value)
	}

	// Re-ingest: drop, purge cached results, re-create with fewer cats.
	if err := e.DB.DropCollection(colName); err != nil {
		t.Fatal(err)
	}
	s.InvalidateCollection(colName)
	col2, err := e.DB.CreateCollection(colName, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := col2.Append(mkPatch(i, "cat")); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("post-reingest query served a stale cache hit")
	}
	if r2.Value != 2 {
		t.Fatalf("post-reingest count = %d, want 2", r2.Value)
	}
	if r1.Fingerprint == r2.Fingerprint {
		t.Fatal("fingerprint did not change across re-ingest")
	}
	if err := e.DB.DropCollection(colName); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedPlanSeesAppendsAfterBuild(t *testing.T) {
	e := getEnv(t)
	s := newService(t, Config{Workers: 2})
	ctx := context.Background()
	const colName = "service.growing"

	schema := core.Schema{Fields: []core.Field{
		{Name: "label", Kind: core.KindStr},
		{Name: "frameno", Kind: core.KindInt},
	}}
	col, err := e.DB.CreateCollection(colName, schema)
	if err != nil {
		t.Fatal(err)
	}
	defer e.DB.DropCollection(colName)
	mk := func(i int) *core.Patch {
		return &core.Patch{
			Ref:  core.Ref{Source: "synthetic", Frame: uint64(i)},
			Meta: core.Metadata{"label": core.StrV("cat"), "frameno": core.IntV(int64(i))},
		}
	}
	for i := 0; i < 5; i++ {
		if err := col.Append(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{Collection: colName,
		Filter: &FilterSpec{Field: "label", Str: strp("cat"), UseIndex: true}}
	r1, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != 5 {
		t.Fatalf("indexed count = %d, want 5", r1.Value)
	}
	// Appends after the index build must be visible to the indexed plan
	// (the service rebuilds when Index.BuiltVersion lags the collection).
	for i := 5; i < 8; i++ {
		if err := col.Append(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := s.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("version bump did not miss the result cache")
	}
	if r2.Value != 8 {
		t.Fatalf("indexed count after appends = %d, want 8 (stale index served)", r2.Value)
	}
	// The scan plan must agree — a poisoned cache entry would be shared.
	scan := req
	scan.Filter = &FilterSpec{Field: "label", Str: strp("cat")}
	r3, err := s.Query(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Value != 8 {
		t.Fatalf("scan count = %d, want 8", r3.Value)
	}
	if !r3.CacheHit {
		t.Fatal("logically identical scan did not share the indexed plan's cache entry")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	e := getEnv(t)
	s := newService(t, Config{Workers: 2})
	s.RegisterSource("trafficcam", trafficSource{e.Traffic})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// /healthz
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", hr.StatusCode)
	}
	hr.Body.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Valid query.
	resp, body := post(`{"collection":"` + bench.ColTrafficDets + `","filter":{"field":"label","str":"pedestrian"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query = %d: %s", resp.StatusCode, body)
	}
	var qr Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Value <= 0 {
		t.Fatalf("HTTP value = %d", qr.Value)
	}

	// Unknown collection -> 404.
	resp, _ = post(`{"collection":"no.such"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown collection = %d, want 404", resp.StatusCode)
	}
	// Malformed body -> 400.
	resp, _ = post(`{"collection":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Unknown field (typo'd request) -> 400.
	resp, _ = post(`{"colection":"x"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown request field = %d, want 400", resp.StatusCode)
	}
	// GET /query -> 405.
	gr, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", gr.StatusCode)
	}

	// /stats reflects the traffic above.
	sr, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed < 1 {
		t.Fatalf("stats completed = %d, want >= 1", st.Completed)
	}
	if st.Workers != 2 {
		t.Fatalf("stats workers = %d, want 2", st.Workers)
	}
}

// TestSharedDeviceBatcherFusesAcrossWorkers: with fewer devices than
// workers, concurrent queries' kernels route through the shared
// exec.Batcher and (given a generous flush window) fuse into common
// launches. Counts stay correct; /stats exposes the fusion record.
func TestSharedDeviceBatcherFusesAcrossWorkers(t *testing.T) {
	e := getEnv(t)
	s := newService(t, Config{
		Workers:         4,
		Devices:         1,
		Device:          exec.GPU,
		BatchMaxKernels: 4,
		BatchWindow:     5 * time.Millisecond,
	})
	s.RegisterSource("trafficcam", trafficSource{e.Traffic})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct frame ranges: no result-cache hits, no coalescing,
			// no shared UDF-memo entries — every worker computes.
			r, err := s.Query(context.Background(), Request{
				Infer:   &InferSpec{Source: "trafficcam", From: i * 8, To: i*8 + 8, UDF: "embed"},
				NoCache: true,
			})
			if err != nil {
				errs <- err
				return
			}
			if r.Value != 8 {
				errs <- fmt.Errorf("worker %d embedded %d frames, want 8", i, r.Value)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Devices != 1 {
		t.Fatalf("devices = %d, want 1", st.Devices)
	}
	if st.Batcher.Submitted == 0 || st.Batcher.FusedKernels != st.Batcher.Submitted {
		t.Fatalf("batcher did not carry the kernels: %+v", st.Batcher)
	}
	if st.Batcher.MaxFusion < 2 {
		t.Fatalf("no cross-worker fusion observed: %+v", st.Batcher)
	}
	if st.DeviceLaunches >= st.DeviceKernels {
		t.Fatalf("launches %d not amortized below kernels %d",
			st.DeviceLaunches, st.DeviceKernels)
	}
	if st.FusionFactor <= 1 {
		t.Fatalf("fusion factor %.2f, want > 1", st.FusionFactor)
	}
}

func TestClosedServiceRefuses(t *testing.T) {
	e := getEnv(t)
	s, err := New(e.DB, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Query(context.Background(), pedCountReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed service = %v, want ErrClosed", err)
	}
}

// atomic64 is a tiny test counter (avoids importing sync/atomic with a
// name collision in the service package's tests).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
