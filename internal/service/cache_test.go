package service

import (
	"fmt"
	"testing"
	"time"
)

func TestCacheLRUEvictionUnderPressure(t *testing.T) {
	c := NewCache(100, 0)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	if got := c.Stats().Bytes; got != 100 {
		t.Fatalf("bytes = %d, want 100", got)
	}
	// Touch k0 so it is MRU, then overflow: k1 (the LRU) must go first.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before pressure")
	}
	c.Put("k10", 10, 10)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 100 {
		t.Fatalf("bytes = %d exceeds cap", st.Bytes)
	}
	// A value larger than the whole budget is not cached.
	c.Put("huge", 0, 1000)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversize value was cached")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewCache(1<<20, time.Minute)
	c.setClock(func() time.Time { return now })
	c.Put("k", "v", 10)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Second) // past the refreshed deadline? no: TTL counts from Put
	// The Get above did not extend TTL; entry is now 61s old.
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry still served")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", st.Expirations)
	}
	if st.Entries != 0 {
		t.Fatalf("entries = %d after expiry, want 0", st.Entries)
	}
	// Re-putting refreshes the deadline.
	c.Put("k", "v2", 10)
	now = now.Add(30 * time.Second)
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Fatalf("re-put entry = %v, %v", v, ok)
	}
}

func TestCacheUpdateAccounting(t *testing.T) {
	c := NewCache(100, 0)
	c.Put("k", "a", 30)
	c.Put("k", "b", 50) // replace, not duplicate
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 50 {
		t.Fatalf("entries=%d bytes=%d, want 1/50", st.Entries, st.Bytes)
	}
	if v, _ := c.Get("k"); v.(string) != "b" {
		t.Fatalf("value = %v, want b", v)
	}
}

func TestCacheInvalidatePrefix(t *testing.T) {
	c := NewCache(1<<20, 0)
	c.Put("q:traffic.dets:abc", 1, 10)
	c.Put("q:traffic.dets:def", 2, 10)
	c.Put("q:pc.images:abc", 3, 10)
	if n := c.InvalidatePrefix("q:traffic.dets:"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get("q:traffic.dets:abc"); ok {
		t.Fatal("invalidated entry still present")
	}
	if _, ok := c.Get("q:pc.images:abc"); !ok {
		t.Fatal("unrelated entry was invalidated")
	}
	if got := c.Stats().Invalidated; got != 2 {
		t.Fatalf("invalidated counter = %d, want 2", got)
	}
}

func TestCacheFlushKeepsCounters(t *testing.T) {
	c := NewCache(1<<20, 0)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Get("miss")
	c.Flush()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("flush left entries=%d bytes=%d", st.Entries, st.Bytes)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("flush reset counters: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", st.HitRate())
	}
}
