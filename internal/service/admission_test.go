package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// Admission suite: the adaptive cost-classed gate. Slow observed drain
// shrinks the effective queue; past that watermark expensive classes
// shed with a cost-aware Retry-After while cheap point lookups still
// admit; appends pass a separate non-blocking gate so a wedged read
// path can never deadlock writes.

// wedgeUntilFull launches stalled queries via launch until the worker
// and at least one queue slot both hold one, retrying rejections — a
// wedger can race the worker's dequeue and bounce off the hard limit.
func wedgeUntilFull(t *testing.T, svc *Service, wg *sync.WaitGroup, launch func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.InFlight >= 1 && st.QueueDepth >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("worker + queue never filled")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			launch()
		}()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionShedsExpensiveFirst: wedge a one-worker service with
// stalled similarity joins until the drain estimator shrinks the
// effective depth to the worker count, then probe with an expensive
// join (shed, 429-class rejection) and a cheap point filter (admitted
// and answered).
func TestAdmissionShedsExpensiveFirst(t *testing.T) {
	stallAll := fault.Config{Seed: 31, Rules: []fault.Rule{
		{Point: fault.FragmentStall, Shard: fault.Any, Replica: fault.Any, Prob: 1, Stall: 400 * time.Millisecond},
	}}
	_, svc := synthReplicated(t, 1, 1, 60, Config{Workers: 1, QueueDepth: 8, Faults: stallAll})
	ctx := context.Background()
	join := Request{Collection: shardTestCol, NoCache: true,
		SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}}

	// One stalled join completes (~400ms): the drain EWMA now says the
	// pool clears ~0.6 tasks per targetQueueDelay, so the effective
	// depth collapses to the worker count.
	if _, err := svc.Query(ctx, join); err != nil {
		t.Fatal(err)
	}
	if d := svc.Stats().EffectiveQueueDepth; d != 1 {
		t.Fatalf("effective depth after slow drain = %d, want 1", d)
	}

	// Wedge: one join on the worker, one in the queue. Launch wedgers
	// until both spots hold — a wedger arriving before the worker
	// dequeues its predecessor is rejected and simply retried.
	var wg sync.WaitGroup
	defer wg.Wait()
	wedgeUntilFull(t, svc, &wg, func() { _, _ = svc.Query(ctx, join) })

	// The expensive probe is priced at the join class EWMA (far above
	// the shed floor) and the queue is past its effective depth: shed,
	// with room still left in the physical queue.
	_, err := svc.Query(ctx, join)
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.Shed {
		t.Fatalf("expensive join under pressure = %v, want cost-based shed", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("OverloadError does not unwrap to ErrOverloaded: %v", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("shed Retry-After = %v, want >= 1s", oe.RetryAfter)
	}
	if oe.Class != classJoin {
		t.Fatalf("shed class = %q, want %q", oe.Class, classJoin)
	}

	// A cheap point filter (2ms class seed, below the shed floor) still
	// admits into the remaining physical queue and gets answered.
	cheapDone := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctx, Request{Collection: shardTestCol, NoCache: true,
			Filter: &FilterSpec{Field: "label", Str: strp("car")}})
		cheapDone <- err
	}()
	select {
	case err := <-cheapDone:
		if errors.Is(err, ErrOverloaded) {
			t.Fatalf("cheap filter shed alongside the expensive join: %v", err)
		}
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cheap filter never drained")
	}
	if svc.Stats().AdmissionShed == 0 {
		t.Fatal("admission_shed counter did not move")
	}
}

// TestAppendsNeverDeadlockBehindWedgedReads: with the worker and the
// whole queue wedged on stalled reads, appends must still commit
// promptly — the write gate is a separate non-blocking concurrency cap,
// not a spot in the read queue.
func TestAppendsNeverDeadlockBehindWedgedReads(t *testing.T) {
	stallAll := fault.Config{Seed: 37, Rules: []fault.Rule{
		{Point: fault.FragmentStall, Shard: fault.Any, Replica: fault.Any, Prob: 1, Stall: 2 * time.Second},
	}}
	_, svc := synthReplicated(t, 1, 1, 30, Config{Workers: 1, QueueDepth: 1, Faults: stallAll})
	ctx := context.Background()

	var wg sync.WaitGroup
	defer wg.Wait()
	wedgeUntilFull(t, svc, &wg, func() {
		_, _ = svc.Query(ctx, Request{Collection: shardTestCol, NoCache: true})
	})

	start := time.Now()
	for i := 0; i < 10; i++ {
		resp, err := svc.Append(ctx, AppendRequest{Collection: shardTestCol, Patch: &PatchSpec{
			Source: "synth", Frame: uint64(1000 + i),
			Meta: map[string]any{"label": "car", "score": 1.0, "rank": 1.0,
				"emb": []any{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}},
		}})
		if err != nil {
			t.Fatalf("append %d behind wedged reads: %v", i, err)
		}
		if resp.Appended != 1 {
			t.Fatalf("append %d committed %d patches", i, resp.Appended)
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("10 appends took %v behind wedged reads (write path queued behind reads)", el)
	}
}

// TestAdmissionUnitBehavior pins the gate's arithmetic: effective depth
// clamps, retry-after clamps, and the append gate's capacity.
func TestAdmissionUnitBehavior(t *testing.T) {
	a := newAdmission(2, 64)
	// No observations: no evidence to shrink on.
	if d := a.effectiveDepth(); d != 64 {
		t.Fatalf("cold effective depth = %d, want hard depth 64", d)
	}
	// Fast drain: depth grows past the hard cap and clamps to it.
	for i := 0; i < 10; i++ {
		a.observeDrain(100 * time.Microsecond)
	}
	if d := a.effectiveDepth(); d != 64 {
		t.Fatalf("fast-drain effective depth = %d, want clamp at 64", d)
	}
	// Slow drain: depth collapses but never below the worker count.
	for i := 0; i < 64; i++ {
		a.observeDrain(10 * time.Second)
	}
	if d := a.effectiveDepth(); d != 2 {
		t.Fatalf("slow-drain effective depth = %d, want worker floor 2", d)
	}
	// Retry-After scales with backlog and clamps to [1s, 60s].
	if ra := a.retryAfter(0); ra < retryAfterMin {
		t.Fatalf("retryAfter(0) = %v, below minimum", ra)
	}
	if ra := a.retryAfter(1 << 20); ra != retryAfterMax {
		t.Fatalf("retryAfter(huge) = %v, want clamp at %v", ra, retryAfterMax)
	}
	// The append gate admits exactly appendLimit() concurrent commits,
	// rejects the next without blocking, and frees on release.
	var releases []func()
	for i := 0; i < a.appendLimit(); i++ {
		rel, err := a.admitAppend()
		if err != nil {
			t.Fatalf("append slot %d rejected: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := a.admitAppend(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated append gate = %v, want overload", err)
	}
	releases[0]()
	releases[0]() // double release is a no-op, not a double free
	if rel, err := a.admitAppend(); err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	} else {
		rel()
	}
	for _, rel := range releases[1:] {
		rel()
	}
}

// TestCacheFamilyHitRate pins the per-family hit accounting that
// admission's cache-aware discount reads.
func TestCacheFamilyHitRate(t *testing.T) {
	c := NewCache(1<<20, time.Minute)
	c.Put("q:a:1", 1, 8)
	c.Put("q:b:1", 1, 8)
	// Family a: two hits, no misses. Family b: one hit, three misses.
	c.Get("q:a:1")
	c.Get("q:a:1")
	c.Get("q:b:1")
	c.Get("q:b:2")
	c.Get("q:b:3")
	c.Get("q:b:4")
	if hr := c.FamilyHitRate("q:a:"); hr != 1 {
		t.Fatalf("family a hit rate = %g, want 1", hr)
	}
	if hr := c.FamilyHitRate("q:b:"); hr != 0.25 {
		t.Fatalf("family b hit rate = %g, want 0.25", hr)
	}
	// Unknown family falls back to the cache-wide rate (3 hits / 6 gets).
	if hr := c.FamilyHitRate("q:zzz:"); hr != 0.5 {
		t.Fatalf("unknown family fell back to %g, want cache-wide 0.5", hr)
	}
}
