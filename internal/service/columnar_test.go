package service

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// Columnar serving-path tests. The scatter/golden matrix in
// shard_test.go already runs every scan filter through the columnar
// engine (it is the default non-indexed path now); these tests pin the
// plan surface and the cross-shard-count row identity that the matrix
// only checks at N=1.

// TestColumnarPlanSurface: non-indexed filters report the column-scan
// physical operator, and its result agrees with the indexed path.
func TestColumnarPlanSurface(t *testing.T) {
	_, svc := synthUnsharded(t, 300, Config{Workers: 2})
	ctx := context.Background()
	str := func(s string) *string { return &s }

	scan, err := svc.Query(ctx, Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: str("car")},
		NoCache:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scan.Plan, "column-scan(label)") {
		t.Fatalf("non-indexed filter plan %q does not use the columnar scan", scan.Plan)
	}
	indexed, err := svc.Query(ctx, Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: str("car"), UseIndex: true},
		NoCache:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Value != indexed.Value {
		t.Fatalf("columnar count %d != indexed count %d", scan.Value, indexed.Value)
	}
}

// TestColumnarRowsShardCountInvariant: ordered top-k output is globally
// sorted at every shard count, so the ordered field's value sequence
// (and the result count) must match the unsharded reference exactly.
// Tie ORDER legitimately differs at N>1 (ties break by shard, PR-3
// contract), so the assertion compares the sort-key sequence, not row
// identity.
func TestColumnarRowsShardCountInvariant(t *testing.T) {
	const rows = 260
	str := func(s string) *string { return &s }
	reqs := []Request{
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: str("bus")},
			OrderBy: "rank", Limit: 11, NoCache: true},
		{Collection: shardTestCol, OrderBy: "score", Desc: true, Limit: 17, NoCache: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "rank", Int: ip(3)},
			OrderBy: "score", Limit: 9, NoCache: true},
	}
	keySeq := func(r *Response, field string) []any {
		out := make([]any, len(r.Rows))
		for i, row := range r.Rows {
			out[i] = row[field]
		}
		return out
	}
	_, ref := synthUnsharded(t, rows, Config{Workers: 2})
	ctx := context.Background()
	want := make([]*Response, len(reqs))
	for i, req := range reqs {
		r, err := ref.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, n := range []int{1, 3, 4} {
		_, svc := synthSharded(t, n, rows, Config{Workers: 2})
		for i, req := range reqs {
			r, err := svc.Query(ctx, req)
			if err != nil {
				t.Fatalf("N=%d query %d: %v", n, i, err)
			}
			if n == 1 {
				// One shard must reproduce the unsharded rows exactly.
				if !reflect.DeepEqual(want[i].Rows, r.Rows) {
					t.Errorf("N=1 query %d: rows diverge from unsharded reference", i)
				}
			} else if !reflect.DeepEqual(keySeq(want[i], reqs[i].OrderBy), keySeq(r, reqs[i].OrderBy)) {
				t.Errorf("N=%d query %d: ordered %s sequence diverges from unsharded reference",
					n, i, reqs[i].OrderBy)
			}
			if r.Value != want[i].Value {
				t.Errorf("N=%d query %d: value %d, want %d", n, i, r.Value, want[i].Value)
			}
		}
	}
}

// TestTopKRowsMatchesSortTrim: the service's top-k helper must
// reproduce the old sortRows + trim pipeline exactly (heap fallback
// path; the columnar path is pinned by internal/core's golden tests).
func TestTopKRowsMatchesSortTrim(t *testing.T) {
	ps := make([]*core.Patch, 150)
	for i := range ps {
		ps[i] = synthPatch(i)
		ps[i].ID = core.PatchID(i + 1)
	}
	for _, field := range []string{"score", "rank", "label"} {
		for _, desc := range []bool{false, true} {
			for _, k := range []int{1, 10, 150, 200} {
				want := sortRows(ps, field, desc)
				if len(want) > k {
					want = want[:k]
				}
				got := topKRows(nil, nil, ps, field, desc, k, len(ps))
				if len(want) != len(got) {
					t.Fatalf("%s desc=%v k=%d: %d rows, want %d", field, desc, k, len(got), len(want))
				}
				for i := range want {
					if want[i].ID != got[i].ID {
						t.Fatalf("%s desc=%v k=%d row %d: id %d, want %d",
							field, desc, k, i, got[i].ID, want[i].ID)
					}
				}
			}
		}
	}
}

// TestColumnarScatterConcurrentAppends: columnar scatter fragments under
// concurrent appends must stay internally consistent (every query sees
// some complete snapshot: counts are multiples of the per-append batch
// pattern's car fraction bounds, never torn).
func TestColumnarScatterConcurrentAppends(t *testing.T) {
	const base = 120
	sdb, svc := synthSharded(t, 3, base, Config{Workers: 4, QueueDepth: 64})
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	str := func(s string) *string { return &s }
	req := Request{
		Collection: shardTestCol,
		Filter:     &FilterSpec{Field: "label", Str: str("car")},
		OrderBy:    "rank", Limit: 5,
		NoCache: true,
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := base; i < base+90; i++ {
			if err := sc.Append(synthPatch(i)); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := svc.Query(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				// label cycles car/pedestrian/bus: a consistent snapshot
				// holds between base/3 and (base+90)/3 cars.
				if r.Value < base/3 || r.Value > (base+90)/3 {
					t.Errorf("torn columnar scatter count %d", r.Value)
					return
				}
			}
		}()
	}
	wg.Wait()

	final, err := svc.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if final.Value != (base+90)/3 {
		t.Fatalf("final car count %d, want %d", final.Value, (base+90)/3)
	}
}
