package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
)

// Chaos suite: the fault-injection harness drives every recovery branch
// of the replicated scatter path — hedged reads around stalled
// replicas, error retries, graceful degradation under a dead shard,
// deadline enforcement, and appends during replica failure — all with
// deterministic failpoints (internal/fault), no sleeps-and-hope.

// synthReplicated builds an n-shard, r-replica Sharded + service over
// the same synthetic rows the golden matrix uses.
func synthReplicated(t *testing.T, n, r, rows int, cfg Config) (*core.Sharded, *Service) {
	t.Helper()
	sdb, err := core.OpenShardedReplicas(filepath.Join(t.TempDir(), "replicated"), n, r, exec.New(exec.CPU))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	sc, err := sdb.CreateCollection(shardTestCol, synthSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillSynth(t, sc.Append, rows)
	s, err := NewSharded(sdb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return sdb, s
}

// TestHedgedReadsSurviveStalledReplica: with every shard's primary
// replica 100%-stalled (plus jittery device stalls on join tasks), the
// full query matrix must still return results byte-identical to a
// fault-free twin — the hedge to the healthy replica wins every
// fragment.
func TestHedgedReadsSurviveStalledReplica(t *testing.T) {
	const rows = 240
	faulted := Config{Workers: 2, HedgeAfter: 5 * time.Millisecond, Faults: fault.Config{
		Seed: 7,
		Rules: []fault.Rule{
			{Point: fault.FragmentStall, Shard: fault.Any, Replica: 0, Prob: 1, Stall: 300 * time.Millisecond},
			{Point: fault.DeviceStall, Shard: fault.Any, Replica: fault.Any, Prob: 0.3, Stall: 2 * time.Millisecond},
		},
	}}
	_, chaotic := synthReplicated(t, 3, 2, rows, faulted)
	_, healthy := synthReplicated(t, 3, 2, rows, Config{Workers: 2})
	ctx := context.Background()
	for qi, req := range queryMatrix() {
		hr, err := healthy.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d fault-free: %v", qi, err)
		}
		cr, err := chaotic.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d with stalled primaries: %v", qi, err)
		}
		if hg, cg := goldenKey(t, hr), goldenKey(t, cr); hg != cg {
			t.Errorf("query %d diverges under stalls:\n  healthy: %s\n  chaotic: %s", qi, hg, cg)
		}
		if cr.Degraded || len(cr.MissingShards) != 0 {
			t.Errorf("query %d reported degraded despite a healthy replica", qi)
		}
	}
	st := chaotic.Stats()
	if st.HedgedFragments == 0 {
		t.Fatal("stalled primaries produced zero hedged fragments")
	}
	// A traced query over the stalled primaries surfaces the hedge
	// decision as a span: which shard hedged, the budget, the winner.
	tr := mustQuery(t, chaotic, Request{Collection: shardTestCol, NoCache: true, Trace: true})
	if tr.TraceData == nil {
		t.Fatal("traced query returned no spans")
	}
	hedgeSpans := 0
	for _, sp := range tr.TraceData.Spans {
		if sp.Name != "hedge" {
			continue
		}
		hedgeSpans++
		for _, attr := range []string{"shard", "replica", "budget", "winner"} {
			if _, ok := sp.Attrs[attr]; !ok {
				t.Fatalf("hedge span missing %q attr: %v", attr, sp.Attrs)
			}
		}
	}
	if hedgeSpans == 0 {
		t.Fatal("no hedge span on a traced query with stalled primaries")
	}
	if st.Replicas != 2 {
		t.Fatalf("stats replicas = %d, want 2", st.Replicas)
	}
	// A fault-free service may hedge occasionally by design — once the
	// histogram is warm the budget tracks 2x the live p99, so ~1% of
	// fat-tail fragments race a hedge — but hedges must stay rare next
	// to a service whose primaries are all stalled.
	if hh := healthy.Stats().HedgedFragments; hh*10 > st.HedgedFragments {
		t.Fatalf("fault-free twin hedged %d times vs %d under stalls (healthy budget too tight)",
			hh, st.HedgedFragments)
	}
}

// TestFragmentErrorRetriesToSecondReplica: a fragment whose first
// attempt fails outright gets one jittered retry on the next replica —
// the query succeeds and the retry counter moves.
func TestFragmentErrorRetriesToSecondReplica(t *testing.T) {
	const rows = 120
	_, svc := synthReplicated(t, 2, 2, rows, Config{Workers: 2, Faults: fault.Config{
		Seed:  11,
		Rules: []fault.Rule{{Point: fault.FragmentError, Shard: 0, Replica: 0, Prob: 1}},
	}})
	r := mustQuery(t, svc, Request{Collection: shardTestCol, NoCache: true})
	if r.Value != rows {
		t.Fatalf("count with failing primary = %d, want %d", r.Value, rows)
	}
	if st := svc.Stats(); st.FragmentRetries == 0 {
		t.Fatal("failing primary produced zero fragment retries")
	}
}

// TestDeadShardDegradedResults: with both replicas of shard 1 erroring,
// a default query fails while allow_partial returns the surviving
// shards' answer annotated degraded + missing-shard list — and the
// degraded response never enters the result cache.
func TestDeadShardDegradedResults(t *testing.T) {
	const rows = 240
	deadShard1 := fault.Config{Seed: 3, Rules: []fault.Rule{
		{Point: fault.FragmentError, Shard: 1, Replica: 0, Prob: 1},
		{Point: fault.FragmentError, Shard: 1, Replica: 1, Prob: 1},
	}}
	sdb, svc := synthReplicated(t, 3, 2, rows, Config{Workers: 2, Faults: deadShard1})
	ctx := context.Background()

	if _, err := svc.Query(ctx, Request{Collection: shardTestCol}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("default query over a dead shard = %v, want the injected fault", err)
	}

	wantPartial := rows - sdb.ShardInfos()[1].Rows
	r, err := svc.Query(ctx, Request{Collection: shardTestCol, AllowPartial: true})
	if err != nil {
		t.Fatalf("allow_partial query over a dead shard: %v", err)
	}
	if !r.Degraded || len(r.MissingShards) != 1 || r.MissingShards[0] != 1 {
		t.Fatalf("partial annotation = degraded=%v missing=%v, want shard 1", r.Degraded, r.MissingShards)
	}
	if r.Value != wantPartial {
		t.Fatalf("partial count = %d, want %d (surviving shards only)", r.Value, wantPartial)
	}
	// Degraded responses are not cached: the rerun recomputes.
	r2, err := svc.Query(ctx, Request{Collection: shardTestCol, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("degraded response was served from the result cache")
	}
	// Ordered rows and joins degrade the same way.
	or, err := svc.Query(ctx, Request{Collection: shardTestCol, OrderBy: "score", Limit: 10, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !or.Degraded || len(or.Rows) != 10 {
		t.Fatalf("degraded ordered query: degraded=%v rows=%d", or.Degraded, len(or.Rows))
	}
	jr, err := svc.Query(ctx, Request{Collection: shardTestCol,
		SimJoin: &SimJoinSpec{Field: "emb", Eps: 0.2}, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !jr.Degraded {
		t.Fatal("degraded simjoin lost its annotation")
	}
	if st := svc.Stats(); st.DegradedQueries < 4 {
		t.Fatalf("degraded_queries = %d, want >= 4", st.DegradedQueries)
	}

	// On a healthy service allow_partial changes the fingerprint (a
	// possibly-partial answer must never share a cache entry with the
	// full one) but not the result.
	_, healthy := synthReplicated(t, 3, 2, rows, Config{Workers: 2})
	full := mustQuery(t, healthy, Request{Collection: shardTestCol})
	part := mustQuery(t, healthy, Request{Collection: shardTestCol, AllowPartial: true})
	if full.Fingerprint == part.Fingerprint {
		t.Fatal("allow_partial does not alter the fingerprint")
	}
	if part.Value != full.Value || part.Degraded {
		t.Fatalf("healthy allow_partial = %d degraded=%v, want full %d", part.Value, part.Degraded, full.Value)
	}
}

// TestAllReplicasStalledTimeoutVsPartial: every replica of shard 1
// wedged beyond the query deadline — the default query fails fast with
// ErrQueryTimeout at its deadline, while allow_partial sacrifices the
// wedged shard early and still answers inside the budget.
func TestAllReplicasStalledTimeoutVsPartial(t *testing.T) {
	const rows = 240
	wedged := fault.Config{Seed: 5, Rules: []fault.Rule{
		{Point: fault.FragmentStall, Shard: 1, Replica: 0, Prob: 1, Stall: 5 * time.Second},
		{Point: fault.FragmentStall, Shard: 1, Replica: 1, Prob: 1, Stall: 5 * time.Second},
	}}
	sdb, svc := synthReplicated(t, 3, 2, rows, Config{
		Workers: 2, QueryTimeout: 250 * time.Millisecond, Faults: wedged,
	})
	ctx := context.Background()

	start := time.Now()
	_, err := svc.Query(ctx, Request{Collection: shardTestCol, NoCache: true})
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("default query over a wedged shard = %v, want ErrQueryTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v, want ~250ms (deadline not propagated into the stall)", el)
	}

	r, err := svc.Query(ctx, Request{Collection: shardTestCol, NoCache: true, AllowPartial: true})
	if err != nil {
		t.Fatalf("allow_partial under a wedged shard: %v", err)
	}
	if !r.Degraded || len(r.MissingShards) != 1 || r.MissingShards[0] != 1 {
		t.Fatalf("partial annotation = degraded=%v missing=%v, want shard 1", r.Degraded, r.MissingShards)
	}
	if want := rows - sdb.ShardInfos()[1].Rows; r.Value != want {
		t.Fatalf("partial count = %d, want %d", r.Value, want)
	}
}

// TestQueryCancellation (regression for the deadline-propagation bug):
// a pre-canceled context never reaches the scatter wave, and a context
// canceled mid-wave aborts stalled fragments promptly instead of
// burning the full fan-out.
func TestQueryCancellation(t *testing.T) {
	stallAll := fault.Config{Seed: 9, Rules: []fault.Rule{
		{Point: fault.FragmentStall, Shard: fault.Any, Replica: fault.Any, Prob: 1, Stall: 2 * time.Second},
	}}
	_, svc := synthReplicated(t, 2, 1, 120, Config{Workers: 2, Faults: stallAll})

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Query(pre, Request{Collection: shardTestCol, NoCache: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query = %v, want context.Canceled", err)
	}

	mid, cancelMid := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := svc.Query(mid, Request{Collection: shardTestCol, NoCache: true})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancelMid()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-wave canceled query = %v, want context.Canceled", err)
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("cancel honored after %v; fragments kept running", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query never returned (stall ignored ctx)")
	}
}

// TestAppendDuringReplicaFailureHammer: appends race scattered queries
// while a flaky secondary replica drops writes. Appends and queries
// must all succeed (primary-authoritative write-all demotes the broken
// replica instead of failing), the demoted replica leaves the read
// set, and the quiesced count is exact. Run under -race this is the
// memory-model check for the insync/demotion machinery.
func TestAppendDuringReplicaFailureHammer(t *testing.T) {
	const initial, appends = 60, 120
	flakySecondary := fault.Config{Seed: 13, Rules: []fault.Rule{
		{Point: fault.AppendError, Shard: fault.Any, Replica: 1, Prob: 0.4},
	}}
	sdb, svc := synthReplicated(t, 3, 2, initial, Config{Workers: 4, Faults: flakySecondary})
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := sc.Append(synthPatch(initial + i)); err != nil {
				t.Errorf("append with flaky secondary: %v", err)
				return
			}
		}
	}()
	reqs := []Request{
		{Collection: shardTestCol, NoCache: true},
		{Collection: shardTestCol, Filter: &FilterSpec{Field: "label", Str: strp("car")}, NoCache: true},
		{Collection: shardTestCol, OrderBy: "score", Limit: 8, NoCache: true},
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := svc.Query(ctx, reqs[(c+i)%len(reqs)]); err != nil {
					t.Errorf("query during replica failure: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	r := mustQuery(t, svc, Request{Collection: shardTestCol, NoCache: true})
	if r.Value != initial+appends {
		t.Fatalf("post-hammer count = %d, want %d", r.Value, initial+appends)
	}
	st := svc.Stats()
	if st.ReplicaAppendErrors == 0 {
		t.Fatal("flaky secondary produced zero replica append errors (test is vacuous)")
	}
	demoted := 0
	for i := 0; i < 3; i++ {
		if len(sdb.InSyncReplicas(i)) == 1 {
			demoted++
		}
	}
	if demoted == 0 {
		t.Fatal("no replica was demoted despite dropped writes")
	}
	for _, info := range sdb.ShardInfos() {
		for _, r := range info.OutOfSync {
			if r != 1 {
				t.Fatalf("out-of-sync replica %d, only replica 1 was flaky", r)
			}
		}
	}
}

// TestHTTPOverloadAndTimeout pins the HTTP error contract for the two
// retryable failures: admission overflow maps to 429 and a query that
// exceeds its deadline maps to 504, both with Retry-After.
func TestHTTPOverloadAndTimeout(t *testing.T) {
	stallAll := fault.Config{Seed: 17, Rules: []fault.Rule{
		{Point: fault.FragmentStall, Shard: fault.Any, Replica: fault.Any, Prob: 1, Stall: 600 * time.Millisecond},
	}}
	_, svc := synthReplicated(t, 1, 1, 60, Config{Workers: 1, QueueDepth: 1, Faults: stallAll})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Deadline exceeded -> 504 + Retry-After (per-request timeout_ms).
	resp := post(`{"collection":"` + shardTestCol + `","no_cache":true,"timeout_ms":100}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 missing Retry-After")
	}

	// Overload -> 429 + Retry-After: wedge the single worker and the
	// one queue slot with stalled queries, then probe.
	var wg sync.WaitGroup
	for _, label := range []string{"car", "bus"} {
		wg.Add(1)
		go func(label string) {
			defer wg.Done()
			post(`{"collection":"` + shardTestCol + `","no_cache":true,"timeout_ms":400,` +
				`"filter":{"field":"label","str":"` + label + `"}}`)
		}(label)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.InFlight >= 1 && st.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker + queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp = post(`{"collection":"` + shardTestCol + `","no_cache":true,"filter":{"field":"label","str":"pedestrian"}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query over a full queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	wg.Wait()
}

// TestAutoResyncAfterReplicaKill: every secondary replica drops every
// client append (a "killed" replica), demoting it on first write. The
// anti-entropy loop must stream the missed suffix back and re-promote
// without any operator action — and afterwards, hedged reads landing on
// the repaired replicas must be byte-identical to a fault-free twin
// holding the same data.
func TestAutoResyncAfterReplicaKill(t *testing.T) {
	const initial, appends = 60, 90
	cfg := Config{
		Workers:        2,
		HedgeAfter:     5 * time.Millisecond,
		ResyncInterval: 15 * time.Millisecond,
		Faults: fault.Config{Seed: 23, Rules: []fault.Rule{
			// Replica 1 misses every client append...
			{Point: fault.AppendError, Shard: fault.Any, Replica: 1, Prob: 1},
			// ...and every primary stalls on reads, so post-repair queries
			// hedge onto the replicas the resync rebuilt.
			{Point: fault.FragmentStall, Shard: fault.Any, Replica: 0, Prob: 1, Stall: 200 * time.Millisecond},
		}},
	}
	sdb, svc := synthReplicated(t, 3, 2, initial, cfg)
	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := sc.Append(synthPatch(initial + i)); err != nil {
			t.Fatalf("append with killed replicas: %v", err)
		}
	}
	// The append fault stays armed (it only hits client appends; the
	// repair stream commits directly on the replica), so once the burst
	// stops the loop converges to fully in-sync.
	deadline := time.Now().Add(10 * time.Second)
	for len(sdb.OutOfSyncReplicas()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replicas never healed: %+v", sdb.OutOfSyncReplicas())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := svc.Stats()
	if st.ReplicaResyncs == 0 || st.ResyncRows == 0 {
		t.Fatalf("healed with resyncs=%d rows=%d, want both nonzero", st.ReplicaResyncs, st.ResyncRows)
	}
	if st.OutOfSyncReplicas != 0 {
		t.Fatalf("stats report %d out-of-sync replicas after heal", st.OutOfSyncReplicas)
	}

	// Fault-free twin with identical contents (patch ids are assigned by
	// the same deterministic counter, so placement matches too).
	hdb, healthy := synthReplicated(t, 3, 2, initial, Config{Workers: 2})
	hsc, err := hdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := hsc.Append(synthPatch(initial + i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for qi, req := range queryMatrix() {
		hr, err := healthy.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d fault-free: %v", qi, err)
		}
		cr, err := svc.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d post-repair: %v", qi, err)
		}
		if hg, cg := goldenKey(t, hr), goldenKey(t, cr); hg != cg {
			t.Errorf("query %d diverges on resynced replicas:\n  healthy: %s\n  repaired: %s", qi, hg, cg)
		}
	}
	if svc.Stats().HedgedFragments == 0 {
		t.Fatal("stalled primaries produced zero hedges (repaired replicas never served reads)")
	}
}

// TestTornResyncReadyzHeals: while repairs keep tearing (injected
// resync-error), demoted replicas stay demoted and /readyz reports
// not-ready with per-shard detail; healing the storage fault lets the
// backoff-paced loop finish a repair and flip readiness back.
func TestTornResyncReadyzHeals(t *testing.T) {
	const initial = 90
	cfg := Config{
		Workers:        2,
		ResyncInterval: 10 * time.Millisecond,
		Faults: fault.Config{Seed: 29, Rules: []fault.Rule{
			{Point: fault.AppendError, Shard: fault.Any, Replica: 1, Prob: 1},
			{Point: fault.ResyncError, Shard: fault.Any, Replica: 1, Prob: 1},
		}},
	}
	sdb, svc := synthReplicated(t, 2, 2, initial, cfg)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	getReady := func() (int, struct {
		Ready     bool              `json:"ready"`
		OutOfSync []core.ReplicaLag `json:"out_of_sync"`
	}) {
		t.Helper()
		var body struct {
			Ready     bool              `json:"ready"`
			OutOfSync []core.ReplicaLag `json:"out_of_sync"`
		}
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := getReady(); code != http.StatusOK || !body.Ready {
		t.Fatalf("fresh service /readyz = %d ready=%v, want 200 ready", code, body.Ready)
	}

	sc, err := sdb.Collection(shardTestCol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := sc.Append(synthPatch(initial + i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(sdb.OutOfSyncReplicas()) == 0 {
		t.Fatal("appends with a dead secondary demoted nothing")
	}
	// Give the loop several sweeps' worth of torn repair attempts.
	time.Sleep(60 * time.Millisecond)
	if resyncs, _ := sdb.ResyncStats(); resyncs != 0 {
		t.Fatalf("torn resyncs promoted replicas: %d completions", resyncs)
	}
	code, body := getReady()
	if code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz during torn repairs = %d ready=%v, want 503 not-ready", code, body.Ready)
	}
	if len(body.OutOfSync) == 0 || body.OutOfSync[0].Replica != 1 {
		t.Fatalf("/readyz detail = %+v, want replica-1 lags", body.OutOfSync)
	}

	// Heal the storage fault: the next (backoff-paced) repair succeeds.
	sdb.SetFaults(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := getReady()
		if code == http.StatusOK && body.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never recovered: %d %+v", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resyncs, rows := sdb.ResyncStats()
	if resyncs == 0 || rows == 0 {
		t.Fatalf("healed with resyncs=%d rows=%d, want both nonzero", resyncs, rows)
	}
}

// TestDegradedHTTPResponseShape: the JSON surface carries the
// degradation annotation verbatim.
func TestDegradedHTTPResponseShape(t *testing.T) {
	deadShard0 := fault.Config{Seed: 19, Rules: []fault.Rule{
		{Point: fault.FragmentError, Shard: 0, Replica: fault.Any, Prob: 1},
	}}
	_, svc := synthReplicated(t, 2, 2, 80, Config{Workers: 2, Faults: deadShard0})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "application/json",
		bytes.NewBufferString(`{"collection":"`+shardTestCol+`","allow_partial":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allow_partial over a dead shard = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Value         int   `json:"value"`
		Degraded      bool  `json:"degraded"`
		MissingShards []int `json:"missing_shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded || len(body.MissingShards) != 1 || body.MissingShards[0] != 0 {
		t.Fatalf("degraded JSON = %+v, want degraded with missing shard 0", body)
	}
}
