package service

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestFingerprintIgnoresDeadOrderFields: execution returns before the
// order/limit stage for similarity-join requests, so OrderBy/Desc/Limit
// must not fragment their cache keys — identical answers, one entry.
func TestFingerprintIgnoresDeadOrderFields(t *testing.T) {
	base := Request{
		Collection: "c",
		SimJoin:    &SimJoinSpec{Field: "emb", Eps: 0.2, MinCluster: 2},
		Distinct:   true,
	}
	withOrder := base
	withOrder.OrderBy, withOrder.Desc, withOrder.Limit = "score", true, 7
	if base.fingerprint(3, 42) != withOrder.fingerprint(3, 42) {
		t.Fatal("simjoin fingerprint varies with ignored OrderBy/Desc/Limit (cache fragmentation)")
	}
	// Plain filter queries DO execute order/limit: the fields must count.
	plain := Request{Collection: "c"}
	ordered := plain
	ordered.OrderBy, ordered.Limit = "score", 7
	if plain.fingerprint(3, 42) == ordered.fingerprint(3, 42) {
		t.Fatal("order/limit dropped from a query whose result they shape")
	}
	desc := ordered
	desc.Desc = true
	if ordered.fingerprint(3, 42) == desc.fingerprint(3, 42) {
		t.Fatal("desc dropped from an ordered query's fingerprint")
	}
}

// TestFingerprintRangeBounds: range bounds are semantic inputs — set vs
// absent and differing values must all key distinctly, and a range
// filter must never collide with an equality filter on the same field.
func TestFingerprintRangeBounds(t *testing.T) {
	mk := func(min, max *float64) Request {
		return Request{Collection: "c", Filter: &FilterSpec{Field: "score", Min: min, Max: max}}
	}
	keys := map[string]string{}
	for name, req := range map[string]Request{
		"min1":     mk(fp(1), nil),
		"max1":     mk(nil, fp(1)),
		"min1max2": mk(fp(1), fp(2)),
		"min0max2": mk(fp(0), fp(2)),
		"eq1":      {Collection: "c", Filter: &FilterSpec{Field: "score", Float: fp(1)}},
	} {
		keys[name] = string(req.fingerprint(3, 42))
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("fingerprint collision between %s and %s", prev, name)
		}
		seen[k] = name
	}
}

// TestRangeFilterValidation: structural and schema-level range errors
// are plan-time rejections.
func TestRangeFilterValidation(t *testing.T) {
	_, svc := synthUnsharded(t, 50, Config{Workers: 1})
	ctx := context.Background()
	for name, req := range map[string]Request{
		"mixed eq+range": {Collection: shardTestCol,
			Filter: &FilterSpec{Field: "score", Float: fp(1), Min: fp(0)}},
		"empty range": {Collection: shardTestCol,
			Filter: &FilterSpec{Field: "score", Min: fp(2), Max: fp(2)}},
		"string field": {Collection: shardTestCol,
			Filter: &FilterSpec{Field: "label", Min: fp(0)}},
		"vector field": {Collection: shardTestCol,
			Filter: &FilterSpec{Field: "emb", Max: fp(1)}},
		"undeclared field": {Collection: shardTestCol,
			Filter: &FilterSpec{Field: "ghost", Min: fp(0)}},
	} {
		if _, err := svc.Query(ctx, req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRangeFilterResults: the columnar range path returns exactly the
// row-predicate reference set — over int and float fields, open and
// closed bounds, sharded and unsharded, with the column-scan plan label
// surfaced on both.
func TestRangeFilterResults(t *testing.T) {
	const rows = 300
	// Row-side reference: synthPatch(i) has score = i%4, rank = i%6.
	refCount := func(field string, lo, hi float64) int {
		n := 0
		for i := 0; i < rows; i++ {
			var v float64
			if field == "score" {
				v = float64(i % 4)
			} else {
				v = float64(i % 6)
			}
			if v >= lo && v < hi {
				n++
			}
		}
		return n
	}
	cases := []struct {
		field    string
		min, max *float64
		lo, hi   float64
	}{
		{"score", fp(1), fp(3), 1, 3},
		{"score", fp(2), nil, 2, 1e300},
		{"rank", nil, fp(4), -1e300, 4},
		{"rank", fp(1.5), fp(4.5), 1.5, 4.5}, // fractional bounds over ints
	}
	_, plain := synthUnsharded(t, rows, Config{Workers: 2})
	_, sharded := synthSharded(t, 3, rows, Config{Workers: 2})
	ctx := context.Background()
	for _, tc := range cases {
		req := Request{Collection: shardTestCol,
			Filter: &FilterSpec{Field: tc.field, Min: tc.min, Max: tc.max}, NoCache: true}
		want := refCount(tc.field, tc.lo, tc.hi)
		for label, svc := range map[string]*Service{"unsharded": plain, "sharded-3": sharded} {
			r, err := svc.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s %s[%v,%v): %v", label, tc.field, tc.lo, tc.hi, err)
			}
			if r.Value != want {
				t.Errorf("%s %s[%v,%v): value %d, want %d", label, tc.field, tc.lo, tc.hi, r.Value, want)
			}
			if !strings.Contains(r.Plan, "column-scan("+tc.field+")") {
				t.Errorf("%s %s range plan %q lacks the column-scan label", label, tc.field, r.Plan)
			}
		}
	}
	// Ordered range rows keep the columnar order-by path and global sort.
	r, err := plain.Query(ctx, Request{Collection: shardTestCol,
		Filter:  &FilterSpec{Field: "rank", Min: fp(2), Max: fp(5)},
		OrderBy: "score", Desc: true, Limit: 9, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("ordered range returned %d rows", len(r.Rows))
	}
	prev := r.Rows[0]["score"].(float64)
	for _, row := range r.Rows[1:] {
		if got := row["score"].(float64); got > prev {
			t.Fatalf("ordered range rows not descending: %g after %g", got, prev)
		} else {
			prev = got
		}
		if rank := row["rank"].(int64); rank < 2 || rank >= 5 {
			t.Fatalf("row escapes range bound: rank %d", rank)
		}
	}
}

// TestBTreeRangeFilterMatchesColumnScan: the B-tree range path is a
// physical-plan swap — same rows and counts as the column scan under
// every bound shape, with its own plan label, sharded and unsharded.
func TestBTreeRangeFilterMatchesColumnScan(t *testing.T) {
	const rows = 300
	cases := []struct {
		field    string
		min, max *float64
	}{
		{"score", fp(1), fp(3)},
		{"score", fp(2), nil},
		{"score", nil, fp(3)},
		{"rank", fp(1.5), fp(4.5)}, // fractional bounds over ints
		{"rank", fp(2), nil},
		{"rank", nil, fp(4)},
		{"score", fp(7), nil}, // empty result
	}
	_, plain := synthUnsharded(t, rows, Config{Workers: 2})
	_, sharded := synthSharded(t, 3, rows, Config{Workers: 2})
	ctx := context.Background()
	for _, tc := range cases {
		scan := Request{Collection: shardTestCol,
			Filter: &FilterSpec{Field: tc.field, Min: tc.min, Max: tc.max}, NoCache: true}
		indexed := scan
		f := *scan.Filter
		f.UseIndex = true
		indexed.Filter = &f
		for label, svc := range map[string]*Service{"unsharded": plain, "sharded-3": sharded} {
			sr, err := svc.Query(ctx, scan)
			if err != nil {
				t.Fatalf("%s scan %s: %v", label, tc.field, err)
			}
			ir, err := svc.Query(ctx, indexed)
			if err != nil {
				t.Fatalf("%s indexed %s: %v", label, tc.field, err)
			}
			if ir.Value != sr.Value {
				t.Errorf("%s %s: btree value %d, column scan %d", label, tc.field, ir.Value, sr.Value)
			}
			if !strings.Contains(ir.Plan, "btree-index("+tc.field+")") {
				t.Errorf("%s %s: indexed plan %q lacks the btree-index label", label, tc.field, ir.Plan)
			}
			if strings.Contains(sr.Plan, "btree-index") {
				t.Errorf("%s %s: scan plan %q took the index path uninvited", label, tc.field, sr.Plan)
			}
		}
		// Unsharded rows are snapshot-ordered on both paths: identical.
		sr, _ := plain.Query(ctx, scan)
		ir, _ := plain.Query(ctx, indexed)
		if !reflect.DeepEqual(sr.Rows, ir.Rows) {
			t.Errorf("%s[%v,%v): btree rows diverge from column scan", tc.field, tc.min, tc.max)
		}
	}
}

// TestResponseSizeBytesCountsWideValues: nested and wide values must
// register their real footprint so wide rows cannot game LRU accounting.
func TestResponseSizeBytesCountsWideValues(t *testing.T) {
	narrow := &Response{Rows: []map[string]any{{"a": int64(1)}}}
	wide := &Response{Rows: []map[string]any{{
		"a": map[string]any{
			"x": strings.Repeat("v", 400),
			"y": []any{1.0, 2.0, 3.0, strings.Repeat("w", 200)},
		},
	}}}
	n, w := narrow.sizeBytes(), wide.sizeBytes()
	if w <= n {
		t.Fatalf("wide row accounted %d <= narrow %d", w, n)
	}
	if w < 600 {
		t.Fatalf("wide row accounted %d bytes; nested payload alone is >600", w)
	}
	vec := &Response{Rows: []map[string]any{{"v": []any{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}}}}
	if vec.sizeBytes() < narrow.sizeBytes()+8*16 {
		t.Fatalf("slice value accounted %d bytes (flat-8 undercount)", vec.sizeBytes())
	}
}
